// Package kddcache is a reproduction of "Improving RAID Performance Using
// an Endurable SSD Cache" (Li, Feng, Hua, Wang — ICPP 2016): the KDD
// (Keeping Data and Deltas) SSD-cache management scheme for parity-based
// RAID, together with the full substrate it runs on — a byte-accurate
// RAID-0/1/5/6 engine, HDD and flash (FTL) device models on a
// deterministic virtual-time engine, delta codecs, an NVRAM-buffered
// circular metadata log, and the write-through / write-around / LeavO
// baselines the paper compares against.
//
// This package is the public facade. A System bundles an SSD-cached RAID
// array behind a chosen policy:
//
//	sys, err := kddcache.New(kddcache.Options{
//		Policy:     kddcache.KDD,
//		CachePages: 262144,            // 1 GB of 4KB pages
//		DataMode:   true,              // carry real bytes end to end
//	})
//	...
//	sys.Write(lba, page)
//	sys.Read(lba, buf)
//
// The experiment harness that regenerates every table and figure of the
// paper's evaluation is exposed through the Experiment* functions and the
// cmd/ tools.
package kddcache

import (
	"errors"
	"fmt"

	"kddcache/internal/blockdev"
	"kddcache/internal/core"
	"kddcache/internal/harness"
	"kddcache/internal/qos"
	"kddcache/internal/raid"
	"kddcache/internal/sim"
	"kddcache/internal/stats"
	"kddcache/internal/trace"
	"kddcache/internal/workload"
)

// PageSize is the fixed page size in bytes (the paper's 4KB).
const PageSize = blockdev.PageSize

// Policy selects the cache management scheme.
type Policy string

// Available policies. The first five are the paper's evaluation lineup;
// WB, NVB and PLog are extra baselines this repo implements to make the
// paper's prose claims measurable (write-back's RPO violation, §I's
// NVRAM-buffering limits, and §V-A's Parity Logging lineage).
const (
	Nossd Policy = "Nossd" // no cache: direct RAID access
	WT    Policy = "WT"    // write-through
	WA    Policy = "WA"    // write-around
	LeavO Policy = "LeavO" // old+new versions, delayed parity (SAC'15)
	KDD   Policy = "KDD"   // the paper's scheme
	WB    Policy = "WB"    // write-back (loses data on SSD failure)
	NVB   Policy = "NVB"   // NVRAM write buffer with full-stripe destage
	PLog  Policy = "PLog"  // parity logging (ISCA'93)
)

// Options configures a System. Zero values select the paper's defaults
// (5-disk RAID-5, 64KB chunks, 1GB cache, 0.59% metadata partition,
// 256-way sets, KDD at 25% content locality).
type Options struct {
	Policy     Policy
	CachePages int64   // SSD cache capacity in pages
	DeltaMean  float64 // KDD modelled content locality (timing mode)
	MetaFrac   float64 // metadata partition share of the SSD
	Ways       int     // set associativity

	Disks      int        // RAID member count
	DiskPages  int64      // member capacity in pages
	ChunkPages int64      // RAID chunk size in pages
	Level      raid.Level // RAID level (default RAID-5)
	Backend    string     // array backend: "kdd" (parity RAID, default) or "lsraid" (log-structured)

	// Timing enables the HDD/SSD latency models; DataMode carries real
	// bytes (and runs the real ZRLE delta codec under KDD).
	Timing   bool
	DataMode bool

	Seed uint64
}

// System is an SSD-cached RAID storage stack.
type System struct {
	st  *harness.Stack
	now sim.Time
	qos *qos.Controller
}

// New builds a System.
func New(o Options) (*System, error) {
	hs, err := harness.Build(harness.StackOpts{
		Policy:     harness.PolicyKind(o.Policy),
		DeltaMean:  o.DeltaMean,
		CachePages: o.CachePages,
		MetaFrac:   o.MetaFrac,
		Ways:       o.Ways,
		Timing:     o.Timing,
		DataMode:   o.DataMode,
		Disks:      o.Disks,
		DiskPages:  o.DiskPages,
		ChunkPages: o.ChunkPages,
		Level:      o.Level,
		Backend:    o.Backend,
		Seed:       o.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &System{st: hs}, nil
}

// Pages returns the logical capacity of the backing array in pages.
func (s *System) Pages() int64 { return s.st.Array.Pages() }

// Now returns the current virtual time.
func (s *System) Now() sim.Time { return s.now }

// Advance moves virtual time forward (e.g. to model idle periods, which
// trigger background cleaning).
func (s *System) Advance(d sim.Time) {
	s.now += d
	s.st.Policy.Clean(s.now, false) //nolint:errcheck // background best-effort
}

// Read reads one page at lba into buf (len >= PageSize; may be nil in
// timing mode) and returns the virtual request latency.
func (s *System) Read(lba int64, buf []byte) (sim.Time, error) {
	done, err := s.st.Policy.Read(s.now, lba, buf)
	if err != nil {
		return 0, err
	}
	lat := done - s.now
	s.now = done
	return lat, nil
}

// Write writes one page at lba from buf and returns the virtual latency.
func (s *System) Write(lba int64, buf []byte) (sim.Time, error) {
	done, err := s.st.Policy.Write(s.now, lba, buf)
	if err != nil {
		return 0, err
	}
	lat := done - s.now
	s.now = done
	return lat, nil
}

// Flush drains all delayed parity updates and persists metadata.
func (s *System) Flush() error {
	done, err := s.st.Policy.Flush(s.now)
	if err != nil {
		return err
	}
	s.now = sim.MaxTime(s.now, done)
	return nil
}

// Stats returns the cache counters accumulated so far.
func (s *System) Stats() stats.CacheStats { return *s.st.Policy.Stats() }

// RAIDStats returns the array's operation counters.
func (s *System) RAIDStats() raid.Stats { return s.st.Array.Stats() }

// StaleParityRows returns how many parity rows are currently stale
// (delayed by KDD/LeavO write hits).
func (s *System) StaleParityRows() int { return s.st.Array.StaleRows() }

// FailDisk injects a failure of RAID member i.
func (s *System) FailDisk(i int) { s.st.Array.FailDisk(i) }

// RepairDisk replaces failed member i with a fresh device and rebuilds
// it. With the paper's semantics, call Flush first on a KDD/LeavO system
// so stale parities are repaired before the rebuild (§III-E2).
func (s *System) RepairDisk(i int) error {
	var fresh blockdev.Device
	if s.st.Opts.DataMode {
		fresh = blockdev.NewNullDataDevice("fresh", s.st.Opts.DiskPages)
	} else {
		fresh = blockdev.NewNullDevice("fresh", s.st.Opts.DiskPages)
	}
	done, err := s.st.Array.ReplaceDisk(s.now, i, fresh)
	if err != nil {
		return err
	}
	s.now = sim.MaxTime(s.now, done)
	return nil
}

// ResyncAfterSSDLoss re-synchronises stale parities directly from the
// array's data (the SSD-failure recovery path, §III-E2). The cache
// contents are considered lost; a fresh System should be built for
// continued caching.
func (s *System) ResyncAfterSSDLoss() error {
	done, err := s.st.Array.Resync(s.now)
	if err != nil {
		return err
	}
	s.now = sim.MaxTime(s.now, done)
	return nil
}

// ErrNotKDD is returned by KDD-specific operations on other policies.
var ErrNotKDD = errors.New("kddcache: operation requires the KDD policy")

// FailSSD fail-stops the cache SSD: every subsequent cache-device op
// returns blockdev.ErrFailed. A KDD system detects this on its next
// request, performs an emergency parity fold, and continues in
// pass-through mode with no user-visible error; other policies surface
// the device failure to the caller.
func (s *System) FailSSD() { s.st.SSDInj.Fail() }

// CacheHealth reports the KDD health state machine's current state
// (Normal, Degraded, Bypass, or Rebuilding).
func (s *System) CacheHealth() (core.Health, error) {
	k, ok := s.st.Policy.(*core.KDD)
	if !ok {
		return 0, ErrNotKDD
	}
	return k.Health(), nil
}

// ReattachSSD replaces a failed cache SSD with a fresh device of the same
// geometry and re-attaches the KDD cache online. The metadata log is
// re-initialised on the new medium and the cache warms back up through
// ordinary admission; the old cache contents died with the old device.
func (s *System) ReattachSSD() error {
	if _, ok := s.st.Policy.(*core.KDD); !ok {
		return ErrNotKDD
	}
	return s.st.ReattachSSD(s.now)
}

// CrashAndRecover simulates a power failure on a KDD system: the volatile
// primary map is discarded and rebuilt from the on-SSD metadata log plus
// the NVRAM buffers (§III-E1). The System continues with the recovered
// cache.
func (s *System) CrashAndRecover() error {
	k, ok := s.st.Policy.(*core.KDD)
	if !ok {
		return ErrNotKDD
	}
	if k.Log() == nil {
		return fmt.Errorf("kddcache: metadata log disabled; recovery impossible")
	}
	cfg := core.Config{
		SSD:        s.st.SSDDev,
		Backend:    s.st.Array,
		CachePages: s.st.Opts.CachePages,
		Ways:       s.st.Opts.Ways,
		MetaStart:  0,
		MetaPages:  s.st.SSDDev.Pages() - s.st.Opts.CachePages,
		Codec:      k.Codec(),
	}
	k2, done, err := core.Restore(cfg, s.now, k.Log().Counters(), k.Log().BufferedEntries(), k.Staging())
	if err != nil {
		return err
	}
	s.st.Policy = k2
	s.now = sim.MaxTime(s.now, done)
	return nil
}

// Trace replays a uniform-format trace through the system and returns
// the mean response time.
func (s *System) Trace(tr *trace.Trace) (*harness.Result, error) {
	return harness.RunTrace(s.st, tr)
}

// ---------------------------------------------------------------------------
// Multi-tenant QoS surface.

// SetQoS attaches a per-tenant admission controller to the System,
// parameterised by a "name:rate:weight[:burst]" comma-separated tenant
// list (the kddsim -tenants syntax). Tenant indices in ReadTenant /
// WriteTenant refer to this list's order. An empty spec detaches the
// controller.
func (s *System) SetQoS(tenants string) error {
	if tenants == "" {
		s.qos = nil
		return nil
	}
	specs, err := qos.ParseTenants(tenants)
	if err != nil {
		return err
	}
	ctl, err := qos.NewController(qos.Config{Tenants: specs, Start: s.now})
	if err != nil {
		return err
	}
	s.qos = ctl
	return nil
}

// tenantAdmit runs the System-boundary admission check: deadline first
// (absolute virtual time; 0 disables it), then the controller verdict.
// The returned error is a typed qos rejection (ErrDeadlineExceeded,
// ErrThrottled with a retry hint, or ErrShed); the request was not
// served.
func (s *System) tenantAdmit(tenant int, deadline sim.Time) (qos.Verdict, error) {
	if s.qos == nil {
		return qos.VerdictAdmit, nil
	}
	if deadline > 0 && s.now > deadline {
		s.qos.NoteDeadline(tenant)
		return 0, fmt.Errorf("kddcache: tenant %d: %w", tenant, qos.ErrDeadlineExceeded)
	}
	d := s.qos.Admit(s.now, tenant)
	if err := s.qos.Err(tenant, d); err != nil {
		return 0, err
	}
	return d.Verdict, nil
}

// ReadTenant is Read with tenant attribution and an optional absolute
// deadline, enforced at the System boundary before any engine work. A
// bypass-rung verdict on a KDD system serves the read with cache
// admission suspended (no read-fill); other policies serve it normally.
func (s *System) ReadTenant(tenant int, deadline sim.Time, lba int64, buf []byte) (sim.Time, error) {
	v, err := s.tenantAdmit(tenant, deadline)
	if err != nil {
		return 0, err
	}
	if k, ok := s.st.Policy.(*core.KDD); ok && v == qos.VerdictBypass {
		done, err := k.ReadNoAdmit(s.now, lba, buf)
		if err != nil {
			return 0, err
		}
		lat := done - s.now
		s.now = done
		return lat, nil
	}
	return s.Read(lba, buf)
}

// WriteTenant is Write under the same boundary: a bypass-rung verdict
// on a KDD system goes write-through on a miss instead of allocating.
func (s *System) WriteTenant(tenant int, deadline sim.Time, lba int64, buf []byte) (sim.Time, error) {
	v, err := s.tenantAdmit(tenant, deadline)
	if err != nil {
		return 0, err
	}
	if k, ok := s.st.Policy.(*core.KDD); ok && v == qos.VerdictBypass {
		done, err := k.WriteNoAdmit(s.now, lba, buf)
		if err != nil {
			return 0, err
		}
		lat := done - s.now
		s.now = done
		return lat, nil
	}
	return s.Write(lba, buf)
}

// QoSCounters returns the per-tenant admission tallies, in the order of
// the SetQoS tenant list (nil without a controller).
func (s *System) QoSCounters() []qos.Counters {
	if s.qos == nil {
		return nil
	}
	return s.qos.Snapshot()
}

// QoSRung returns tenant t's current degradation-ladder rung.
func (s *System) QoSRung(t int) (int, error) {
	if s.qos == nil {
		return 0, fmt.Errorf("kddcache: no QoS controller attached")
	}
	if t < 0 || t >= s.qos.Tenants() {
		return 0, fmt.Errorf("kddcache: tenant %d out of range", t)
	}
	return s.qos.Rung(t), nil
}

// ---------------------------------------------------------------------------
// Experiment facade.

// ExperimentScale is the default scale for quick experiment runs (full
// paper-sized runs use 1.0 via the cmd tools).
const ExperimentScale = 0.02

// SetParallelism sets the worker-pool width used by every experiment
// driver. Each experiment fans its independent (workload × policy × sweep
// point) simulations over the pool; outputs are byte-identical at any
// width. n <= 0 restores the default, GOMAXPROCS.
func SetParallelism(n int) { harness.SetParallelism(n) }

// SetDefaultBackend sets the array backend ("kdd" or "lsraid") used by
// every subsequently built System and experiment stack whose Options
// leave Backend empty. The empty string restores the default, "kdd".
func SetDefaultBackend(name string) { harness.SetDefaultBackend(name) }

// Experiments maps experiment names to their runners, each returning the
// formatted table the paper's figure/table corresponds to.
var Experiments = map[string]func(scale float64) (string, error){
	"table1": func(s float64) (string, error) { return harness.TableI(s) },
	"fig4": func(s float64) (string, error) {
		out, _, err := harness.Fig4(s)
		return out, err
	},
	"fig5": harness.Fig5,
	"fig6": harness.Fig6,
	"fig7": harness.Fig7,
	"fig8": harness.Fig8,
	"fig9": func(s float64) (string, error) {
		out, _, err := harness.Fig9(s)
		return out, err
	},
	"fig10": func(s float64) (string, error) {
		out, _, err := harness.Fig10(s)
		return out, err
	},
	"fig11": func(s float64) (string, error) {
		out, _, err := harness.Fig11(s)
		return out, err
	},
	"table2":              harness.TableII,
	"ablation-partition":  harness.AblationPartition,
	"ablation-reclaim":    harness.AblationReclaim,
	"ablation-metalog":    harness.AblationMetaLog,
	"lifetime":            harness.LifetimeSummary,
	"recovery-tradeoff":   harness.RecoveryTradeoff,
	"degraded":            harness.DegradedPerformance,
	"rebuild-impact":      harness.RebuildImpact,
	"ablation-admission":  harness.AblationAdmission,
	"motivation":          harness.Motivation,
	"phases":              harness.PhaseBreakdown,
	"sweep-associativity": harness.AblationAssociativity,
	"sweep-staging":       harness.AblationStaging,
	"saturation": func(s float64) (string, error) {
		out, _, err := harness.Saturation(s)
		return out, err
	},
	"noisy-neighbor": func(s float64) (string, error) {
		out, _, err := harness.NoisyNeighbor(s)
		return out, err
	},
	"lsraid-compare": harness.LSRaidCompare,
}

// RunExperiment executes one named experiment at the given scale.
func RunExperiment(name string, scale float64) (string, error) {
	f, ok := Experiments[name]
	if !ok {
		return "", fmt.Errorf("kddcache: unknown experiment %q", name)
	}
	return f(scale)
}

// SeriesExperiments maps the experiments that produce plottable series to
// runners returning (x-axis name, series); use stats.WriteCSV/WriteJSON
// to export them.
var SeriesExperiments = map[string]func(scale float64) (string, []stats.Series, error){
	"fig4": func(s float64) (string, []stats.Series, error) {
		_, series, err := harness.Fig4(s)
		return "metaPartPct", series, err
	},
	"fig9": func(s float64) (string, []stats.Series, error) {
		_, series, err := harness.Fig9(s)
		return "workloadIdx", series, err
	},
	"fig10": func(s float64) (string, []stats.Series, error) {
		_, series, err := harness.Fig10(s)
		return "readRatePct", series, err
	},
	"fig11": func(s float64) (string, []stats.Series, error) {
		_, series, err := harness.Fig11(s)
		return "readRatePct", series, err
	},
	"saturation": func(s float64) (string, []stats.Series, error) {
		_, series, err := harness.Saturation(s)
		return "offeredKIOPS", series, err
	},
	"noisy-neighbor": func(s float64) (string, []stats.Series, error) {
		_, series, err := harness.NoisyNeighbor(s)
		return "armIdx", series, err
	},
}

// Workloads returns the paper's Table I workload specifications.
func Workloads() []workload.Spec { return workload.TableI() }
