module kddcache

go 1.22
