//go:build !kddbug

package metalog

// bugBatchAckEarly is the shard-plane mutation switch for the checker's
// self-test: the kddbug build tag flips it to true, making FlushBatch
// remove entries from the NVRAM metadata buffer BEFORE the shard-tagged
// page holding them is durable — acking the batch ahead of the barrier.
// A crash on that write ordinal then loses the mappings of already-acked
// operations, the exact failure the NVRAM-until-durable rule prevents.
// The shard mutation test proves internal/check catches the violation;
// production builds compile the constant false and the bugged path away.
const bugBatchAckEarly = false
