package metalog

import (
	"testing"

	"kddcache/internal/blockdev"
	"kddcache/internal/sim"
)

// BenchmarkPut measures the metadata-buffer insert path including page
// flushes and log GC.
func BenchmarkPut(b *testing.B) {
	dev := blockdev.NewNullDevice("ssd", 1<<20)
	l := New(dev, 0, 1024, 0.9)
	rng := sim.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := Entry{State: StateClean, DazPage: uint32(rng.Uint64n(100000)), DezPage: NoDez}
		if _, err := l.Put(0, e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecover measures the head-to-tail log replay after a crash.
func BenchmarkRecover(b *testing.B) {
	dev := blockdev.NewNullDataDevice("ssd", 1<<20)
	l := New(dev, 0, 1024, 0.9)
	for i := 0; i < 200*EntriesPerPage; i++ {
		e := Entry{State: StateClean, DazPage: uint32(i % 60000), DezPage: NoDez}
		if _, err := l.Put(0, e); err != nil {
			b.Fatal(err)
		}
	}
	ctr := *l.Counters()
	buffered := l.BufferedEntries()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := ctr
		l2 := Restore(dev, 0, 1024, 0.9, &c, buffered)
		if _, _, err := l2.Recover(0); err != nil {
			b.Fatal(err)
		}
	}
}
