package metalog

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"kddcache/internal/blockdev"
	"kddcache/internal/nvram"
)

// makeTaggedPage builds a shard-tagged ("KS") metadata page image.
func makeTaggedPage(t *testing.T, shard uint8, shardSeq uint32, entries []Entry) []byte {
	t.Helper()
	page := make([]byte, blockdev.PageSize)
	used := 0
	for _, e := range entries {
		if used+e.encSize() > batchPagePayload {
			t.Fatalf("test page overflows: %d entries", len(entries))
		}
		used += e.encode(page[batchPageHdrLen+used:])
	}
	binary.LittleEndian.PutUint16(page[0:], batchPageMagic)
	binary.LittleEndian.PutUint16(page[2:], uint16(used))
	binary.LittleEndian.PutUint32(page[4:], crc32.ChecksumIEEE(page[batchPageHdrLen:batchPageHdrLen+used]))
	page[8] = shard
	binary.LittleEndian.PutUint32(page[10:], shardSeq)
	return page
}

// lastWins folds a replay stream into its final per-DazPage mapping.
func lastWins(replay []Entry) map[uint32]Entry {
	m := make(map[uint32]Entry)
	for _, e := range replay {
		m[e.DazPage] = e
	}
	return m
}

// TestBatchRoundtrip proves the batched path (PutBuffered + FlushBatch)
// persists the same mapping a Put-based log would: full pages commit with
// the shard tag, partial pages stay in NVRAM, and recovery rebuilds the
// identical last-writer-wins map.
func TestBatchRoundtrip(t *testing.T) {
	dev := blockdev.NewNullDataDevice("ssd", 64)
	l := New(dev, 0, 16, 0)
	const n = 600 // several pages' worth of Clean entries
	for i := 0; i < n; i++ {
		l.PutBuffered(Entry{State: StateClean, DazPage: uint32(i), RaidLBA: uint32(i * 3), DezPage: NoDez})
	}
	if _, err := l.FlushBatch(0, 2); err != nil {
		t.Fatalf("FlushBatch: %v", err)
	}
	if l.bufBytes >= blockdev.PageSize {
		t.Fatalf("FlushBatch left %d buffered bytes (>= one page)", l.bufBytes)
	}
	if l.LivePages() == 0 {
		t.Fatal("FlushBatch committed no pages")
	}
	// Crash now: rebuild from the device + NVRAM snapshot.
	r := Restore(dev, 0, 16, 0, l.Counters(), l.BufferedEntries())
	replay, _, err := r.Recover(0)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	m := lastWins(replay)
	if len(m) != n {
		t.Fatalf("recovered %d mappings, want %d", len(m), n)
	}
	for i := 0; i < n; i++ {
		e, ok := m[uint32(i)]
		if !ok || e.State != StateClean || e.RaidLBA != uint32(i*3) {
			t.Fatalf("daz %d recovered wrong: %+v (ok=%v)", i, e, ok)
		}
	}
	// The per-shard sequence must resume past every surviving page.
	if next := r.shardSeqs[2]; next == 0 {
		t.Fatal("recovered log lost shard 2's batch sequence")
	}
}

// TestAdversarialInterleavedReplay is the regression test for the
// single-writer replay assumption: shard-tagged pages landing on flash
// OUT of per-shard order must still replay in shard-sequence order.
// Physically the log holds shard 0's NEWER page before its OLDER one; a
// physical-order replay would resurrect the superseded mapping.
func TestAdversarialInterleavedReplay(t *testing.T) {
	dev := blockdev.NewNullDataDevice("ssd", 64)
	const start, npages = 0, 8
	// Physical seq 0: shard 0, shardSeq 1 — the NEWER state of daz 100.
	// Physical seq 1: shard 0, shardSeq 0 — the OLDER state of daz 100.
	// Physical seq 2: shard 1, shardSeq 0 — unrelated lane, between them.
	pages := [][]byte{
		makeTaggedPage(t, 0, 1, []Entry{{State: StateClean, DazPage: 100, RaidLBA: 7, DezPage: NoDez}}),
		makeTaggedPage(t, 0, 0, []Entry{{State: StateOld, DazPage: 100, RaidLBA: 5, DezPage: 130, DezLen: 32}}),
		makeTaggedPage(t, 1, 0, []Entry{{State: StateClean, DazPage: 200, RaidLBA: 9, DezPage: NoDez}}),
	}
	for seq, p := range pages {
		if _, err := dev.WritePages(0, start+int64(seq%npages), 1, p); err != nil {
			t.Fatalf("seed page %d: %v", seq, err)
		}
	}
	ctr := &nvram.Counters{Head: 0, Tail: uint64(len(pages))}
	l := Restore(dev, start, npages, 0, ctr, nil)
	replay, _, err := l.Recover(0)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	m := lastWins(replay)
	got, ok := m[100]
	if !ok {
		t.Fatal("daz 100 lost in recovery")
	}
	if got.State != StateClean || got.RaidLBA != 7 {
		t.Fatalf("daz 100 resolved to the physically-later but logically-older entry: %+v", got)
	}
	if e := m[200]; e.State != StateClean || e.RaidLBA != 9 {
		t.Fatalf("unrelated shard 1 mapping damaged: %+v", e)
	}
	// Fresh batch sequences must not collide with surviving pages.
	if l.shardSeqs[0] != 2 || l.shardSeqs[1] != 1 {
		t.Fatalf("shard seqs not resumed: %v", l.shardSeqs)
	}
}

// TestMixedTaggedUntaggedReplay proves legacy "KL" pages and tagged "KS"
// pages coexist in one log: untagged pages keep physical order and the
// in-shard reorder still applies around them.
func TestMixedTaggedUntaggedReplay(t *testing.T) {
	dev := blockdev.NewNullDataDevice("ssd", 64)
	l := New(dev, 0, 16, 0)
	// Commit one untagged page via the classic path.
	for i := 0; i < 400; i++ {
		if _, err := l.Put(0, Entry{State: StateClean, DazPage: uint32(i), RaidLBA: uint32(i), DezPage: NoDez}); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	// Then a tagged batch that supersedes a slice of them.
	for i := 0; i < 100; i++ {
		l.PutBuffered(Entry{State: StateFree, DazPage: uint32(i), DezPage: NoDez})
	}
	if _, err := l.FlushBatchAll(0, 3); err != nil {
		t.Fatalf("FlushBatchAll: %v", err)
	}
	r := Restore(dev, 0, 16, 0, l.Counters(), l.BufferedEntries())
	replay, _, err := r.Recover(0)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	m := lastWins(replay)
	for i := 0; i < 100; i++ {
		if e := m[uint32(i)]; e.State != StateFree {
			t.Fatalf("daz %d: tagged Free did not supersede untagged Clean: %+v", i, e)
		}
	}
	for i := 150; i < 400; i++ {
		if e := m[uint32(i)]; e.State != StateClean {
			t.Fatalf("daz %d: untagged Clean lost: %+v", i, e)
		}
	}
}

// TestTaggedPageCorruptionLoud proves a torn or bit-flipped tagged page
// fails recovery with ErrLogCorrupt instead of silently dropping
// mappings.
func TestTaggedPageCorruptionLoud(t *testing.T) {
	dev := blockdev.NewNullDataDevice("ssd", 64)
	page := makeTaggedPage(t, 0, 0, []Entry{{State: StateClean, DazPage: 1, RaidLBA: 2, DezPage: NoDez}})
	page[batchPageHdrLen] ^= 0x40 // flip a payload bit after checksumming
	if _, err := dev.WritePages(0, 0, 1, page); err != nil {
		t.Fatal(err)
	}
	ctr := &nvram.Counters{Head: 0, Tail: 1}
	l := Restore(dev, 0, 8, 0, ctr, nil)
	if _, _, err := l.Recover(0); !errors.Is(err, ErrLogCorrupt) {
		t.Fatalf("corrupt tagged page recovered silently: err=%v", err)
	}
}

// TestBatchDurabilityPoint pins the crash contract of the batched path:
// entries inserted by PutBuffered survive in the NVRAM snapshot even when
// NO FlushBatch ever ran — insertion, not the flush, is the durability
// point.
func TestBatchDurabilityPoint(t *testing.T) {
	dev := blockdev.NewNullDataDevice("ssd", 64)
	l := New(dev, 0, 16, 0)
	l.PutBuffered(Entry{State: StateClean, DazPage: 42, RaidLBA: 8, DezPage: NoDez})
	buffered := l.BufferedEntries()
	if len(buffered) != 1 {
		t.Fatalf("NVRAM snapshot holds %d entries, want 1", len(buffered))
	}
	r := Restore(dev, 0, 16, 0, l.Counters(), buffered)
	replay, _, err := r.Recover(0)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	m := lastWins(replay)
	if e := m[42]; e.State != StateClean || e.RaidLBA != 8 {
		t.Fatalf("unflushed buffered entry lost across crash: %+v", e)
	}
}
