package metalog

import (
	"testing"

	"kddcache/internal/blockdev"
)

// TestReinitEmptiesLog: Reinit must leave the log logically empty purely
// through the NVRAM counters — zero device I/O — so that it works on a
// dead device, and a subsequent Recover must scan nothing. Lifetime I/O
// stats survive (they feed endurance accounting).
func TestReinitEmptiesLog(t *testing.T) {
	dev := blockdev.NewNullDataDevice("ssd", 64)
	l := New(dev, 0, 64, 0.5)
	for i := 0; i < 400; i++ {
		if _, err := l.Put(0, Entry{State: StateClean, DazPage: uint32(i), RaidLBA: uint32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Flush(0); err != nil {
		t.Fatal(err)
	}
	if l.LivePages() == 0 {
		t.Fatal("setup: nothing committed")
	}
	before := l.Stats()
	writesBefore := dev.Writes()

	l.Reinit(nil)

	if dev.Writes() != writesBefore {
		t.Fatal("Reinit touched the device")
	}
	if c := l.Counters(); c.Head != 0 || c.Tail != 0 {
		t.Fatalf("counters not reset: head=%d tail=%d", c.Head, c.Tail)
	}
	if l.LivePages() != 0 {
		t.Fatalf("%d live pages after Reinit", l.LivePages())
	}
	if n := len(l.BufferedEntries()); n != 0 {
		t.Fatalf("%d buffered entries after Reinit", n)
	}
	if l.Stats() != before {
		t.Fatal("Reinit must preserve lifetime stats")
	}
	ents, _, err := l.Recover(0)
	if err != nil {
		t.Fatalf("recover over reinitialised log: %v", err)
	}
	if len(ents) != 0 {
		t.Fatalf("recover found %d entries in an empty log", len(ents))
	}

	// The log must be usable again after Reinit (re-attach path).
	if _, err := l.Put(0, Entry{State: StateClean, DazPage: 1, RaidLBA: 9}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Flush(0); err != nil {
		t.Fatal(err)
	}
	if l.LivePages() == 0 {
		t.Fatal("log unusable after Reinit")
	}
}
