package metalog

import (
	"errors"
	"testing"
	"testing/quick"

	"kddcache/internal/blockdev"
	"kddcache/internal/sim"
)

func newLog(npages int64) (*Log, *blockdev.NullDevice) {
	dev := blockdev.NewNullDataDevice("ssd", npages+1024)
	return New(dev, 0, npages, 0.9), dev
}

func entry(daz uint32, st State) Entry {
	return Entry{State: st, DazPage: daz, RaidLBA: daz * 3, DezPage: NoDez}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(st uint8, daz, raid, dez uint32, off, ln uint16, raw bool) bool {
		e := Entry{State: State(st % 3), DazPage: daz, DezPage: NoDez, DezRaw: raw}
		switch e.State {
		case StateClean:
			e.RaidLBA = raid
		case StateOld:
			e.RaidLBA = raid
			e.DezPage = dez
			e.DezOff = off
			e.DezLen = ln
		}
		var b [OldEntrySize]byte
		n := e.encode(b[:])
		if n != e.encSize() {
			return false
		}
		got, m, ok := decodeEntry(b[:])
		return ok && m == n && got == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsBlank(t *testing.T) {
	var b [OldEntrySize]byte
	if _, _, ok := decodeEntry(b[:]); ok {
		t.Fatal("blank slot decoded as entry")
	}
}

// cleanPerPage is how many clean entries fill one metadata page.
const cleanPerPage = 4096 / CleanEntrySize

func TestFlushHappensAtFullPage(t *testing.T) {
	l, dev := newLog(64)
	i := 0
	for ; l.bufBytes+CleanEntrySize <= 4096; i++ {
		if _, err := l.Put(0, entry(uint32(i), StateClean)); err != nil {
			t.Fatal(err)
		}
	}
	if dev.Writes() != 0 {
		t.Fatal("flushed before the page filled")
	}
	if _, err := l.Put(0, entry(9999, StateClean)); err != nil {
		t.Fatal(err)
	}
	if dev.Writes() != 1 || l.Stats().PagesWritten != 1 {
		t.Fatalf("writes=%d pages=%d", dev.Writes(), l.Stats().PagesWritten)
	}
	if l.LivePages() != 1 {
		t.Fatalf("LivePages = %d", l.LivePages())
	}
}

func TestBufferCoalescesSameDazPage(t *testing.T) {
	l, dev := newLog(64)
	for i := 0; i < 10*EntriesPerPage; i++ {
		// Same key over and over: buffer never grows, nothing flushes.
		if _, err := l.Put(0, entry(5, StateClean)); err != nil {
			t.Fatal(err)
		}
	}
	if dev.Writes() != 0 {
		t.Fatalf("coalescing failed: %d writes", dev.Writes())
	}
	if got := l.BufferedEntries(); len(got) != 1 || got[0].DazPage != 5 {
		t.Fatalf("buffer = %+v", got)
	}
}

func TestRecoveryRebuildsMapping(t *testing.T) {
	l, dev := newLog(128)
	// Log a few pages worth plus a partial buffer.
	const total = cleanPerPage*3 + 17
	for i := 0; i < total; i++ {
		st := StateClean
		e := entry(uint32(i), st)
		if i%5 == 0 {
			e.State = StateOld
			e.DezPage = uint32(i % 7)
			e.DezOff = uint16(i % 4096)
			e.DezLen = uint16(i % 2048)
		}
		if _, err := l.Put(0, e); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: volatile state gone; NVRAM (counters + buffer) survives.
	l2 := Restore(dev, 0, 128, 0.9, l.Counters(), l.BufferedEntries())
	replay, _, err := l2.Recover(0)
	if err != nil {
		t.Fatal(err)
	}
	// Last-writer-wins per DazPage must equal the original inserts.
	final := map[uint32]Entry{}
	for _, e := range replay {
		final[e.DazPage] = e
	}
	if len(final) != total {
		t.Fatalf("recovered %d entries, want %d", len(final), total)
	}
	for i := 0; i < total; i++ {
		e, ok := final[uint32(i)]
		if !ok {
			t.Fatalf("entry %d missing after recovery", i)
		}
		if e.RaidLBA != uint32(i*3) {
			t.Fatalf("entry %d corrupted: %+v", i, e)
		}
		if i%5 == 0 {
			if e.State != StateOld || e.DezPage != uint32(i%7) ||
				e.DezOff != uint16(i%4096) || e.DezLen != uint16(i%2048) {
				t.Fatalf("old entry %d lost delta fields: %+v", i, e)
			}
		} else if e.DezPage != NoDez {
			t.Fatalf("clean entry %d grew a delta: %+v", i, e)
		}
	}
}

func TestRecoveryAfterOverwrites(t *testing.T) {
	l, dev := newLog(128)
	// Write entry for page 1 with an old value, flush it, then a new one.
	old := entry(1, StateClean)
	old.RaidLBA = 111
	if _, err := l.Put(0, old); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cleanPerPage; i++ { // force a flush carrying 'old'
		if _, err := l.Put(0, entry(uint32(100+i), StateClean)); err != nil {
			t.Fatal(err)
		}
	}
	newer := entry(1, StateOld)
	newer.RaidLBA = 222
	if _, err := l.Put(0, newer); err != nil {
		t.Fatal(err)
	}
	l2 := Restore(dev, 0, 128, 0.9, l.Counters(), l.BufferedEntries())
	replay, _, err := l2.Recover(0)
	if err != nil {
		t.Fatal(err)
	}
	final := map[uint32]Entry{}
	for _, e := range replay {
		final[e.DazPage] = e
	}
	if final[1].RaidLBA != 222 || final[1].State != StateOld {
		t.Fatalf("latest entry lost: %+v", final[1])
	}
}

func TestGCReclaimsAndPreservesLiveEntries(t *testing.T) {
	l, _ := newLog(8) // tiny partition: GC exercised hard
	live := map[uint32]uint32{}
	// Insert many updates over a window of keys so old pages hold dead
	// entries.
	for i := 0; i < EntriesPerPage*50; i++ {
		k := uint32(i % 600)
		e := entry(k, StateClean)
		e.RaidLBA = uint32(i)
		if _, err := l.Put(0, e); err != nil {
			t.Fatal(err)
		}
		live[k] = uint32(i)
	}
	if l.Stats().GCRuns == 0 {
		t.Fatal("GC never ran on a tiny partition")
	}
	if l.LivePages() > 8 {
		t.Fatalf("live pages %d exceed partition", l.LivePages())
	}
	// Everything must still recover correctly.
	l2 := Restore(l.dev, 0, 8, 0.9, l.Counters(), l.BufferedEntries())
	replay, _, err := l2.Recover(0)
	if err != nil {
		t.Fatal(err)
	}
	final := map[uint32]Entry{}
	for _, e := range replay {
		final[e.DazPage] = e
	}
	for k, want := range live {
		if final[k].RaidLBA != want {
			t.Fatalf("key %d: got %d want %d", k, final[k].RaidLBA, want)
		}
	}
}

func TestGCDropsFreeMarkers(t *testing.T) {
	l, _ := newLog(8)
	// Alternate clean/free for the same keys: frees supersede, and GC
	// should drop free markers at the head rather than relogging them.
	for i := 0; i < EntriesPerPage*40; i++ {
		k := uint32(i % 100)
		st := StateClean
		if i%2 == 1 {
			st = StateFree
		}
		if _, err := l.Put(0, entry(k, st)); err != nil {
			t.Fatal(err)
		}
	}
	// The log must not be full and must still be operable.
	if l.LivePages() >= 8 {
		t.Fatalf("log did not reclaim: %d live pages", l.LivePages())
	}
}

func TestLogFullErrorWhenEverythingLive(t *testing.T) {
	l, _ := newLog(2) // absurdly small: every entry distinct and live
	var err error
	for i := 0; i < EntriesPerPage*10; i++ {
		if _, err = l.Put(0, entry(uint32(i), StateClean)); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrLogFull) {
		t.Fatalf("err = %v, want ErrLogFull", err)
	}
}

func TestFlushPartialPage(t *testing.T) {
	l, dev := newLog(64)
	for i := 0; i < 5; i++ {
		if _, err := l.Put(0, entry(uint32(i), StateClean)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Flush(0); err != nil {
		t.Fatal(err)
	}
	if dev.Writes() != 1 {
		t.Fatalf("writes = %d", dev.Writes())
	}
	if len(l.BufferedEntries()) != 0 {
		t.Fatal("buffer not drained")
	}
	// Idempotent on empty buffer.
	if _, err := l.Flush(0); err != nil {
		t.Fatal(err)
	}
	if dev.Writes() != 1 {
		t.Fatal("empty flush wrote a page")
	}
}

func TestRecoverEmptyLog(t *testing.T) {
	l, _ := newLog(16)
	replay, _, err := l.Recover(0)
	if err != nil || len(replay) != 0 {
		t.Fatalf("replay=%v err=%v", replay, err)
	}
}

func TestWrapAroundPhysicalAddressing(t *testing.T) {
	l, _ := newLog(4)
	// Push enough distinct-but-reused keys through to wrap the partition
	// several times.
	for round := 0; round < 20; round++ {
		for k := uint32(0); k < cleanPerPage+10; k++ {
			e := entry(k, StateClean)
			e.RaidLBA = uint32(round)
			if _, err := l.Put(0, e); err != nil {
				t.Fatal(err)
			}
		}
	}
	if l.Counters().Tail < 20 {
		t.Fatalf("tail=%d; expected many committed pages", l.Counters().Tail)
	}
	l2 := Restore(l.dev, 0, 4, 0.9, l.Counters(), l.BufferedEntries())
	replay, _, err := l2.Recover(0)
	if err != nil {
		t.Fatal(err)
	}
	final := map[uint32]Entry{}
	for _, e := range replay {
		final[e.DazPage] = e
	}
	for k := uint32(0); k < cleanPerPage+10; k++ {
		if final[k].RaidLBA != 19 {
			t.Fatalf("key %d final round %d, want 19", k, final[k].RaidLBA)
		}
	}
}

func TestTimingChargedToDevice(t *testing.T) {
	dev := blockdev.NewNullDevice("ssd", 4096)
	dev.Latency = 300 * sim.Microsecond
	l := New(dev, 0, 64, 0.9)
	var done sim.Time
	var err error
	for i := 0; i <= cleanPerPage; i++ {
		done, err = l.Put(0, entry(uint32(i), StateClean))
		if err != nil {
			t.Fatal(err)
		}
	}
	if done != 300*sim.Microsecond {
		t.Fatalf("flush completion = %v, want 300µs", done)
	}
}

func TestRandomCrashRecoveryProperty(t *testing.T) {
	// Random updates with a crash at a random point: recovery must agree
	// with a flat shadow map for every key that was ever inserted.
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		l, dev := newLog(16)
		shadow := map[uint32]Entry{}
		n := 200 + int(rng.Uint64n(2000))
		for i := 0; i < n; i++ {
			k := uint32(rng.Uint64n(400))
			st := StateClean
			switch rng.Intn(3) {
			case 1:
				st = StateOld
			case 2:
				st = StateFree
			}
			e := entry(k, st)
			e.RaidLBA = uint32(i)
			if _, err := l.Put(0, e); err != nil {
				return false
			}
			shadow[k] = e
		}
		// Crash now (no flush): NVRAM buffer + counters survive.
		l2 := Restore(dev, 0, 16, 0.9, l.Counters(), l.BufferedEntries())
		replay, _, err := l2.Recover(0)
		if err != nil {
			return false
		}
		final := map[uint32]Entry{}
		for _, e := range replay {
			final[e.DazPage] = e
		}
		for k, want := range shadow {
			got, ok := final[k]
			if want.State == StateFree {
				// Free markers may be dropped by GC once they are the only
				// record; absence is equivalent to free.
				if ok && got.State != StateFree {
					return false
				}
				continue
			}
			if !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGCPageEquivalent(t *testing.T) {
	s := Stats{ReinsertedBytes: int64(3 * 4096)}
	if s.GCPageEquivalent() != 3 {
		t.Fatalf("GCPageEquivalent = %d", s.GCPageEquivalent())
	}
}

func TestNewValidation(t *testing.T) {
	dev := blockdev.NewNullDevice("d", 100)
	for _, f := range []func(){
		func() { New(dev, 0, 1, 0.9) },
		func() { New(dev, 0, 16, -1) },
		func() { New(dev, 0, 16, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
