package metalog

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"kddcache/internal/blockdev"
	"kddcache/internal/obs"
	"kddcache/internal/sim"
)

// This file implements the sharded data plane's batched append path.
//
// Lanes of the shard plane share one metadata log (one NVRAM buffer, one
// circular partition, one tail). In batch mode an operation's entries are
// inserted into the NVRAM buffer immediately — insertion is the
// durability point, exactly as in Put, so the RPO-zero contract is
// untouched — but the page flushes that Put would perform inline are
// deferred to one FlushBatch call at the end of the shard's batch: one
// fsync-equivalent barrier per batch instead of one per entry.
//
// Pages committed by FlushBatch carry an extended header ("KS" magic)
// tagging the flushing shard and a per-shard batch sequence number.
// Recovery uses the tags to tolerate interleaved multi-writer logs: pages
// of the same shard replay in shard-sequence order even if a future
// multi-tail design (or an adversarial test) lands them on flash out of
// order. Pages from Put/Flush keep the legacy "KL" header; the two kinds
// may be mixed freely in one log.

// Shard-tagged page header layout:
//
//	bytes 0-1   magic "KS"
//	bytes 2-3   used: encoded entry bytes following the header
//	bytes 4-7   CRC-32 (IEEE) of those entry bytes
//	byte  8     shard tag of the flushing writer
//	byte  9     reserved (zero)
//	bytes 10-13 per-shard batch sequence number
//	bytes 14-15 reserved (zero)
const (
	batchPageMagic   = 0x534B // "KS"
	batchPageHdrLen  = 16
	batchPagePayload = blockdev.PageSize - batchPageHdrLen
)

// pageTag identifies a committed page's writer. Untagged ("KL") pages
// form the legacy single-writer stream.
type pageTag struct {
	tagged   bool
	shard    uint8
	shardSeq uint32
}

// PutBuffered records a mapping entry in the NVRAM metadata buffer
// WITHOUT flushing any full page to flash. The insert is the durability
// point (atomic-in-NVRAM, same as Put); the deferred page commits are
// issued by the next FlushBatch. Safe for concurrent use.
func (l *Log) PutBuffered(e Entry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.bufInsert(e)
}

// FlushBatch commits every full page's worth of buffered entries to the
// log tail in one barrier, tagging each page with the flushing shard and
// its next batch sequence number. Partial pages stay in NVRAM (they are
// durable there). Returns the virtual completion time of the flash
// writes, t if none were needed. Safe for concurrent use.
func (l *Log) FlushBatch(t sim.Time, shard uint8) (sim.Time, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	done := t
	// Same loop bound as Put: GC reinsertion can refill the buffer, and a
	// log full of live entries cannot make progress.
	for rounds := l.npages + 2; l.bufBytes >= blockdev.PageSize; rounds-- {
		if rounds <= 0 {
			return t, ErrLogFull
		}
		c, err := l.flushTaggedPage(t, shard)
		if err != nil {
			return t, err
		}
		done = sim.MaxTime(done, c)
	}
	return done, nil
}

// FlushBatchAll drains the buffer completely (final partial page
// included) through the tagged path — the plane's quiesce barrier.
func (l *Log) FlushBatchAll(t sim.Time, shard uint8) (sim.Time, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	done := t
	for len(l.buf) > 0 {
		c, err := l.flushTaggedPage(t, shard)
		if err != nil {
			return t, err
		}
		done = sim.MaxTime(done, c)
	}
	return done, nil
}

// flushTaggedPage commits one shard-tagged page of buffered entries at
// the tail. Mirrors flushPage, with the extended header and the
// per-shard sequence bookkeeping. Caller holds l.mu.
func (l *Log) flushTaggedPage(t sim.Time, shard uint8) (sim.Time, error) {
	if len(l.buf) == 0 {
		return t, nil
	}
	sp := l.tr.Begin(t, obs.PhaseMetaAppend)
	if err := l.maybeGC(t); err != nil {
		sp.End(t)
		return t, err
	}
	var page [blockdev.PageSize]byte
	var flushed []Entry
	used := 0
	for _, k := range l.bufOrder {
		e, ok := l.buf[k]
		if !ok {
			continue
		}
		if used+e.encSize() > batchPagePayload {
			break
		}
		used += e.encode(page[batchPageHdrLen+used:])
		flushed = append(flushed, e)
	}
	shardSeq := l.shardSeqs[shard]
	binary.LittleEndian.PutUint16(page[0:], batchPageMagic)
	binary.LittleEndian.PutUint16(page[2:], uint16(used))
	binary.LittleEndian.PutUint32(page[4:],
		crc32.ChecksumIEEE(page[batchPageHdrLen:batchPageHdrLen+used]))
	page[8] = shard
	binary.LittleEndian.PutUint32(page[10:], shardSeq)
	if bugBatchAckEarly {
		// MUTATION (kddbug build tag): treat the batch as committed before
		// its page is durable — the entries leave NVRAM ahead of the write
		// ack. A crash on this very write ordinal then loses the mappings
		// of already-acked operations, which the shard checker must catch.
		l.bufRemove(flushed)
	}
	seq := l.ctr.Tail
	phys := l.start + int64(seq%uint64(l.npages))
	var buf []byte
	if l.dataMode() {
		buf = page[:]
	}
	done, err := l.dev.WritePages(t, phys, 1, buf)
	if err != nil {
		// The page never acked: entries stay in NVRAM, tail and shard seq
		// untouched — a crash here is repaired from NVRAM alone.
		sp.End(t)
		return t, err
	}
	l.ctr.Tail++
	l.shardSeqs[shard] = shardSeq + 1
	if !bugBatchAckEarly {
		// Only now that the page is durable do the entries leave NVRAM.
		l.bufRemove(flushed)
	}
	l.pageLists[seq] = flushed
	for _, e := range flushed {
		l.latest[e.DazPage] = seq
		l.stats.EntriesLogged++
	}
	l.stats.PagesWritten++
	sp.End(done)
	return done, nil
}

// bufRemove drops flushed entries from the NVRAM buffer. Caller holds
// l.mu.
func (l *Log) bufRemove(flushed []Entry) {
	for _, e := range flushed {
		delete(l.buf, e.DazPage)
		l.bufBytes -= e.encSize()
	}
	kept := l.bufOrder[:0]
	for _, k := range l.bufOrder {
		if _, ok := l.buf[k]; ok {
			kept = append(kept, k)
		}
	}
	l.bufOrder = kept
}

// arrangeReplay computes the page replay order for recovery: pages keep
// their physical (head→tail) positions, except that pages sharing a shard
// tag are permuted within the positions that shard occupies so they
// replay in shard-sequence order. Untagged pages — a single-writer stream
// by construction — never move. This is what makes replay tolerant of
// shard-tagged interleaving: a multi-writer log whose pages landed on
// flash out of per-shard order still rebuilds each shard's last-writer-
// wins map correctly, while cross-shard relative order (which only
// matters for pages addressing the same DazPage, something the plane's
// disjoint lane regions rule out) stays physical.
func arrangeReplay(pages []recoveredPage) []recoveredPage {
	positions := make(map[uint8][]int)
	for i, p := range pages {
		if p.tag.tagged {
			positions[p.tag.shard] = append(positions[p.tag.shard], i)
		}
	}
	out := make([]recoveredPage, len(pages))
	copy(out, pages)
	for _, idxs := range positions {
		if len(idxs) < 2 {
			continue
		}
		group := make([]recoveredPage, len(idxs))
		for k, i := range idxs {
			group[k] = pages[i]
		}
		// Insertion sort by shardSeq (stable: equal seqs keep physical
		// order); groups are small and this avoids pulling in sort for a
		// hot path that normally runs on already-ordered logs.
		for a := 1; a < len(group); a++ {
			for b := a; b > 0 && group[b].tag.shardSeq < group[b-1].tag.shardSeq; b-- {
				group[b], group[b-1] = group[b-1], group[b]
			}
		}
		for k, i := range idxs {
			out[i] = group[k]
		}
	}
	return out
}

// recoveredPage is one committed page as seen by Recover: its physical
// log sequence, its entries, and its writer tag.
type recoveredPage struct {
	seq     uint64
	entries []Entry
	tag     pageTag
}

// decodeTaggedPage validates a shard-tagged ("KS") metadata page and
// decodes its entries and tag. The caller has already matched the magic.
func decodeTaggedPage(page []byte, seq uint64, phys int64) ([]Entry, pageTag, error) {
	used := int(binary.LittleEndian.Uint16(page[2:]))
	if used > batchPagePayload {
		return nil, pageTag{}, fmt.Errorf("%w: log seq %d (ssd page %d): entry bytes %d overflow the page",
			ErrLogCorrupt, seq, phys, used)
	}
	if got := crc32.ChecksumIEEE(page[batchPageHdrLen : batchPageHdrLen+used]); got != binary.LittleEndian.Uint32(page[4:]) {
		return nil, pageTag{}, fmt.Errorf("%w: log seq %d (ssd page %d): checksum mismatch", ErrLogCorrupt, seq, phys)
	}
	tag := pageTag{
		tagged:   true,
		shard:    page[8],
		shardSeq: binary.LittleEndian.Uint32(page[10:]),
	}
	var entries []Entry
	for i := 0; i < used; {
		e, n, ok := decodeEntry(page[batchPageHdrLen+i : batchPageHdrLen+used])
		if !ok {
			return nil, pageTag{}, fmt.Errorf("%w: log seq %d (ssd page %d): undecodable entry at offset %d",
				ErrLogCorrupt, seq, phys, i)
		}
		entries = append(entries, e)
		i += n
	}
	return entries, tag, nil
}
