// Package metalog implements KDD's persistent cache metadata: a fixed
// partition at the beginning of the SSD managed as a circular log
// (§III-B/C). Mapping entries accumulate in an NVRAM metadata buffer and
// are committed one full page at a time at the log tail; reclamation is
// oldest-first from the head, reinserting still-valid entries into the
// buffer. The head/tail counters live in NVRAM. Recovery rebuilds the
// mapping by scanning the log from head to tail and then overlaying the
// NVRAM buffer.
package metalog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"kddcache/internal/blockdev"
	"kddcache/internal/nvram"
	"kddcache/internal/obs"
	"kddcache/internal/sim"
)

// State is the cache-page state recorded in mapping entries (§III-B).
type State uint8

// Page states. A Free entry records the reclamation of a DAZ page.
const (
	StateFree State = iota
	StateClean
	StateOld
	StateDelta // never logged (DEZ mapping is embedded in Old entries); present for completeness
)

func (s State) String() string {
	switch s {
	case StateFree:
		return "free"
	case StateClean:
		return "clean"
	case StateOld:
		return "old"
	case StateDelta:
		return "delta"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// NoDez marks entries without an associated DEZ delta.
const NoDez = ^uint32(0)

// Entry is one persistent mapping record. Encoding is variable-size,
// following §III-C: "mapping entries in the primary map have different
// required fields for different kinds of pages" — a free record needs
// only the cache page, a clean record adds the storage LBA, and an old
// record adds the delta location tuple. LBAs are 4 bytes (16TB
// addressability at 4KB pages).
type Entry struct {
	State   State
	DazPage uint32 // cache page index holding the data (lba_daz)
	RaidLBA uint32 // storage address of the data (lba_raid)
	DezPage uint32 // cache page holding the delta, or NoDez (lba_dez)
	DezOff  uint16 // byte offset of the delta within the DEZ page
	DezLen  uint16 // encoded delta length in bytes
	DezRaw  bool   // delta is a raw full page, not an encoding
}

// On-flash entry sizes per state: 1 type byte + fields.
const (
	FreeEntrySize  = 1 + 4             // type, daz
	CleanEntrySize = 1 + 4 + 4         // type, daz, raid
	OldEntrySize   = 1 + 4 + 4 + 4 + 4 // type, daz, raid, dez, off+len
)

// EntriesPerPage is the nominal entry density of a metadata page (used
// for buffer-sizing heuristics by LeavO's uncoalesced model; the log
// itself packs variable-size entries).
const EntriesPerPage = blockdev.PageSize / 20

// ErrLogFull is returned when the circular log cannot reclaim space
// because every entry is live; the partition is undersized.
var ErrLogFull = errors.New("metalog: log full of live entries; metadata partition too small")

// ErrLogCorrupt is returned by Recover when a committed metadata page
// fails validation (bad magic, impossible length, or checksum mismatch).
// Recovery NEVER silently drops or guesses around such a page: the
// primary map rebuilt from it would be wrong, which is worse than
// failing the recovery and falling back to a full resync.
var ErrLogCorrupt = errors.New("metalog: corrupt metadata page")

// Each committed metadata page carries an 8-byte header so recovery can
// tell a genuine log page from garbage and can detect corruption the
// device-level checksum cannot: silent bit-flips (checksummed after the
// damage) and torn in-page writes that persisted only a prefix.
//
//	bytes 0-1  magic
//	bytes 2-3  used: encoded entry bytes following the header
//	bytes 4-7  CRC-32 (IEEE) of those entry bytes
const (
	logPageMagic   = 0x4C4B // "KL"
	logPageHdrLen  = 8
	logPagePayload = blockdev.PageSize - logPageHdrLen
)

// ErrVolatileDevice is returned by Recover when the SSD device carries no
// bytes (timing-only mode): committed metadata pages cannot be read back,
// so pretending to recover would silently lose the mapping. Build the
// stack with a data-backed SSD for crash-recovery experiments.
var ErrVolatileDevice = errors.New("metalog: cannot recover from a timing-only device that persisted no bytes")

// encSize returns the on-flash size of e.
func (e Entry) encSize() int {
	switch e.State {
	case StateFree:
		return FreeEntrySize
	case StateOld:
		return OldEntrySize
	default:
		return CleanEntrySize
	}
}

// typeByte encodes state (+1 so 0 terminates a page) and the raw flag.
func (e Entry) typeByte() byte {
	t := byte(e.State) + 1
	if e.DezRaw {
		t |= 0x80
	}
	return t
}

// encode writes e into b and returns the bytes consumed.
func (e Entry) encode(b []byte) int {
	b[0] = e.typeByte()
	binary.LittleEndian.PutUint32(b[1:], e.DazPage)
	switch e.State {
	case StateFree:
		return FreeEntrySize
	case StateOld:
		binary.LittleEndian.PutUint32(b[5:], e.RaidLBA)
		binary.LittleEndian.PutUint32(b[9:], e.DezPage)
		binary.LittleEndian.PutUint16(b[13:], e.DezOff)
		binary.LittleEndian.PutUint16(b[15:], e.DezLen)
		return OldEntrySize
	default:
		binary.LittleEndian.PutUint32(b[5:], e.RaidLBA)
		return CleanEntrySize
	}
}

// decodeEntry parses one entry at the start of b; n is the bytes
// consumed, ok is false at the page terminator or on garbage.
func decodeEntry(b []byte) (e Entry, n int, ok bool) {
	if len(b) < FreeEntrySize || b[0] == 0 {
		return Entry{}, 0, false
	}
	raw := b[0]&0x80 != 0
	st := State(b[0]&0x7F) - 1
	if st > StateOld {
		return Entry{}, 0, false
	}
	e = Entry{State: st, DezRaw: raw, DazPage: binary.LittleEndian.Uint32(b[1:]), DezPage: NoDez}
	switch st {
	case StateFree:
		return e, FreeEntrySize, true
	case StateOld:
		if len(b) < OldEntrySize {
			return Entry{}, 0, false
		}
		e.RaidLBA = binary.LittleEndian.Uint32(b[5:])
		e.DezPage = binary.LittleEndian.Uint32(b[9:])
		e.DezOff = binary.LittleEndian.Uint16(b[13:])
		e.DezLen = binary.LittleEndian.Uint16(b[15:])
		return e, OldEntrySize, true
	default:
		if len(b) < CleanEntrySize {
			return Entry{}, 0, false
		}
		e.RaidLBA = binary.LittleEndian.Uint32(b[5:])
		return e, CleanEntrySize, true
	}
}

// inBuffer marks an entry whose latest version is in the NVRAM buffer.
const inBuffer = ^uint64(0)

// Stats counts metadata traffic.
type Stats struct {
	PagesWritten      int64 // metadata pages committed to flash
	EntriesLogged     int64 // entries committed (including reinsertions)
	ReinsertedEntries int64 // entries re-logged by GC
	ReinsertedBytes   int64 // encoded bytes re-logged by GC
	GCRuns            int64
	Recoveries        int64
}

// GCPageEquivalent returns GC traffic expressed in whole metadata pages.
func (s Stats) GCPageEquivalent() int64 {
	return s.ReinsertedBytes / blockdev.PageSize
}

// Log is the circular metadata log plus its NVRAM metadata buffer.
//
// A Log may be shared by every lane of a sharded plane: the public
// mutating surface is serialized by an internal mutex, so concurrent
// shard workers can Put/PutBuffered/FlushBatch against one log. The
// Counters pointer itself is handed out unlocked — callers snapshot it
// only at quiesce barriers (crash snapshots) or mutate it from the single
// lane that owns the rebuild pump.
type Log struct {
	mu     sync.Mutex
	dev    blockdev.Device
	start  int64 // first page of the metadata partition on the SSD
	npages int64 // partition size in pages

	ctr *nvram.Counters

	// shardSeqs tracks the next per-shard batch sequence for FlushBatch's
	// tagged pages; rebuilt from the surviving pages on recovery.
	shardSeqs map[uint8]uint32

	// NVRAM metadata buffer: coalescing map with stable insertion order.
	bufOrder []uint32 // DazPage keys in arrival order
	buf      map[uint32]Entry
	bufBytes int // total encoded size of buffered entries

	// Volatile acceleration structures (rebuilt on recovery, §III-C: "KDD
	// maintains a list in memory for each metadata page").
	pageLists map[uint64][]Entry // page seq -> entries it holds
	latest    map[uint32]uint64  // DazPage -> seq of page with its newest entry, or inBuffer

	// gcThreshold is the live fraction of the partition above which GC
	// reclaims head pages.
	gcThreshold float64

	stats Stats

	tr *obs.Tracer
}

// SetTracer installs a span tracer (nil disables tracing). Page commits
// appear as meta_append spans nested inside the operation that forced
// them.
func (l *Log) SetTracer(tr *obs.Tracer) { l.tr = tr }

// New creates a log over [start, start+npages) of dev with fresh NVRAM
// counters. gcThreshold in (0,1]; 0 selects the 0.9 default.
func New(dev blockdev.Device, start, npages int64, gcThreshold float64) *Log {
	if npages < 2 {
		panic("metalog: partition needs at least 2 pages")
	}
	if gcThreshold == 0 {
		gcThreshold = 0.9
	}
	if gcThreshold <= 0 || gcThreshold > 1 {
		panic("metalog: bad GC threshold")
	}
	return &Log{
		dev:         dev,
		start:       start,
		npages:      npages,
		ctr:         &nvram.Counters{},
		shardSeqs:   make(map[uint8]uint32),
		buf:         make(map[uint32]Entry),
		pageLists:   make(map[uint64][]Entry),
		latest:      make(map[uint32]uint64),
		gcThreshold: gcThreshold,
	}
}

// Counters exposes the NVRAM head/tail counters (handed to recovery after
// a simulated power failure).
func (l *Log) Counters() *nvram.Counters { return l.ctr }

// BufferedEntries returns the NVRAM metadata buffer contents in insertion
// order (what survives a crash alongside the counters).
func (l *Log) BufferedEntries() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Entry, 0, len(l.bufOrder))
	for _, k := range l.bufOrder {
		if e, ok := l.buf[k]; ok {
			out = append(out, e)
		}
	}
	return out
}

// Stats returns a snapshot of metadata traffic counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// LivePages returns the number of committed pages currently in the log.
func (l *Log) LivePages() int64 { return int64(l.ctr.Live()) }

// Reinit wipes the log back to empty: fresh NVRAM counters (head == tail,
// so a later Recover scans zero device pages — crucially this works even
// when the old device is dead, because nothing is read or written), empty
// metadata buffer, and cleared acceleration structures. If dev is non-nil
// the log switches to it (a replacement SSD on re-attach); it must have
// the same partition geometry. Traffic stats are preserved — they count
// lifetime metadata I/O, which a re-attach does not undo.
func (l *Log) Reinit(dev blockdev.Device) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if dev != nil {
		l.dev = dev
	}
	// The RAID member-rebuild checkpoint shares the NVRAM counter block
	// but belongs to the array, not the log: wiping the log (a cache
	// failover) must not lose a half-done rebuild's watermark.
	l.ctr = &nvram.Counters{
		RebuildActive: l.ctr.RebuildActive,
		RebuildDisk:   l.ctr.RebuildDisk,
		RebuildRow:    l.ctr.RebuildRow,
	}
	l.bufOrder = nil
	l.buf = make(map[uint32]Entry)
	l.bufBytes = 0
	l.pageLists = make(map[uint64][]Entry)
	l.latest = make(map[uint32]uint64)
	l.shardSeqs = make(map[uint8]uint32)
}

// Put records a mapping entry. When the buffer fills a page, the page is
// committed to the log tail; when the log passes the GC threshold, head
// pages are reclaimed. Returns the virtual completion time of any flash
// writes performed (t if none).
func (l *Log) Put(t sim.Time, e Entry) (sim.Time, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.bufInsert(e)
	done := t
	// Bound the flush loop: GC reinsertion can refill the buffer, and if
	// every entry in the log is live no amount of cleaning makes progress
	// — the partition is undersized.
	for rounds := l.npages + 2; l.bufBytes >= blockdev.PageSize; rounds-- {
		if rounds <= 0 {
			return t, ErrLogFull
		}
		c, err := l.flushPage(t)
		if err != nil {
			return t, err
		}
		done = sim.MaxTime(done, c)
	}
	return done, nil
}

// bufInsert adds or coalesces an entry in the NVRAM metadata buffer.
func (l *Log) bufInsert(e Entry) {
	if prev, ok := l.buf[e.DazPage]; ok {
		l.bufBytes -= prev.encSize()
	} else {
		l.bufOrder = append(l.bufOrder, e.DazPage)
	}
	l.buf[e.DazPage] = e
	l.bufBytes += e.encSize()
	l.latest[e.DazPage] = inBuffer
}

// flushPage commits up to EntriesPerPage buffered entries to the tail.
func (l *Log) flushPage(t sim.Time) (sim.Time, error) {
	if len(l.buf) == 0 {
		return t, nil
	}
	sp := l.tr.Begin(t, obs.PhaseMetaAppend)
	// Make room first so tail never collides with head.
	if err := l.maybeGC(t); err != nil {
		sp.End(t)
		return t, err
	}
	var page [blockdev.PageSize]byte
	var flushed []Entry
	used := 0
	for _, k := range l.bufOrder {
		e, ok := l.buf[k]
		if !ok {
			continue
		}
		if used+e.encSize() > logPagePayload {
			break
		}
		used += e.encode(page[logPageHdrLen+used:])
		flushed = append(flushed, e)
	}
	binary.LittleEndian.PutUint16(page[0:], logPageMagic)
	binary.LittleEndian.PutUint16(page[2:], uint16(used))
	binary.LittleEndian.PutUint32(page[4:],
		crc32.ChecksumIEEE(page[logPageHdrLen:logPageHdrLen+used]))
	seq := l.ctr.Tail
	phys := l.start + int64(seq%uint64(l.npages))
	var buf []byte
	if l.dataMode() {
		buf = page[:]
	}
	done, err := l.dev.WritePages(t, phys, 1, buf)
	if err != nil {
		// The page never acked. The entries stay in the NVRAM buffer and
		// the tail counter untouched, so a crash here is repaired from
		// NVRAM alone — committing an entry to Put is atomic-in-NVRAM.
		sp.End(t)
		return t, err
	}
	l.ctr.Tail++
	// Only now that the page is durable do the entries leave NVRAM.
	for _, e := range flushed {
		delete(l.buf, e.DazPage)
		l.bufBytes -= e.encSize()
	}
	kept := l.bufOrder[:0]
	for _, k := range l.bufOrder {
		if _, ok := l.buf[k]; ok {
			kept = append(kept, k)
		}
	}
	l.bufOrder = kept
	l.pageLists[seq] = flushed
	for _, e := range flushed {
		l.latest[e.DazPage] = seq
		l.stats.EntriesLogged++
	}
	l.stats.PagesWritten++
	sp.End(done)
	return done, nil
}

// Flush commits all buffered entries (final partial page included); used
// on clean shutdown and before planned failovers.
func (l *Log) Flush(t sim.Time) (sim.Time, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	done := t
	for len(l.buf) > 0 {
		c, err := l.flushPage(t)
		if err != nil {
			return t, err
		}
		done = sim.MaxTime(done, c)
	}
	return done, nil
}

// maybeGC reclaims head pages while the log is above its threshold.
// Valid entries of the candidate page are reinserted into the metadata
// buffer from the in-memory page list — no flash read needed (§III-C).
func (l *Log) maybeGC(t sim.Time) error {
	max := int64(float64(l.npages) * l.gcThreshold)
	if max < 1 {
		max = 1
	}
	guard := l.npages * 2 // bound the work; a full-live log cannot make progress
	for l.LivePages() >= max {
		if guard--; guard < 0 {
			return ErrLogFull
		}
		head := l.ctr.Head
		if head == l.ctr.Tail {
			return nil
		}
		l.stats.GCRuns++
		for _, e := range l.pageLists[head] {
			if l.latest[e.DazPage] != head {
				continue // superseded later; dead
			}
			if e.State == StateFree {
				// Head is the oldest page: no earlier entry can exist that
				// this free marker must supersede, so it can be dropped.
				delete(l.latest, e.DazPage)
				continue
			}
			l.bufInsert(e)
			l.stats.ReinsertedEntries++
			l.stats.ReinsertedBytes += int64(e.encSize())
		}
		delete(l.pageLists, head)
		l.ctr.Head++
		// Reinsertions may refill the buffer past a page; the caller's
		// flush loop handles that.
		if l.bufBytes >= blockdev.PageSize && l.LivePages() < max {
			break
		}
	}
	return nil
}

func (l *Log) dataMode() bool {
	if s, ok := l.dev.(blockdev.Storer); ok {
		return s.Store() != nil
	}
	return false
}

// Recover rebuilds a log's volatile structures after a power failure: it
// re-reads every live metadata page from flash (head to tail), replays
// the entries in commit order, then overlays the NVRAM buffer. It returns
// the final surviving mapping entries in replay order so the cache can
// rebuild its primary map (§III-E1).
//
// Replay order is NOT blindly the physical head→tail order: pages
// committed through the shard-tagged batch path carry a per-shard
// sequence number, and pages of the same shard replay in that order even
// when they interleave out of order on flash. Untagged pages — the
// single-writer Put/Flush stream — keep physical order, as does the
// relative order across writers. A log written by one writer is replayed
// exactly as before; an adversarially interleaved multi-writer log
// still rebuilds each writer's last-writer-wins map correctly.
//
// The receiver must have been constructed with Restore (same device,
// partition, counters and buffered entries as before the crash).
func (l *Log) Recover(t sim.Time) ([]Entry, sim.Time, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.dataMode() && l.ctr.Live() > 0 {
		return nil, t, ErrVolatileDevice
	}
	l.stats.Recoveries++
	l.pageLists = make(map[uint64][]Entry)
	l.latest = make(map[uint32]uint64)
	l.shardSeqs = make(map[uint8]uint32)
	var page [blockdev.PageSize]byte
	done := t
	var pages []recoveredPage
	for seq := l.ctr.Head; seq != l.ctr.Tail; seq++ {
		phys := l.start + int64(seq%uint64(l.npages))
		var buf []byte
		if l.dataMode() {
			buf = page[:]
		}
		c, err := l.dev.ReadPages(t, phys, 1, buf)
		if err != nil {
			// A detectable media error on a log page is unrecoverable from
			// this replica; surface it with enough context to act on.
			return nil, t, fmt.Errorf("metalog: recovery read of log seq %d (ssd page %d): %w", seq, phys, err)
		}
		done = sim.MaxTime(done, c)
		rp := recoveredPage{seq: seq}
		if l.dataMode() {
			if binary.LittleEndian.Uint16(page[0:]) == batchPageMagic {
				rp.entries, rp.tag, err = decodeTaggedPage(page[:], seq, phys)
			} else {
				rp.entries, err = decodePage(page[:], seq, phys)
			}
			if err != nil {
				return nil, t, err
			}
		}
		if rp.tag.tagged && rp.tag.shardSeq >= l.shardSeqs[rp.tag.shard] {
			l.shardSeqs[rp.tag.shard] = rp.tag.shardSeq + 1
		}
		pages = append(pages, rp)
	}
	var replay []Entry
	for _, rp := range arrangeReplay(pages) {
		// pageLists and latest are keyed by the PHYSICAL page holding the
		// entries — GC reclaims physical head pages — while replay (and the
		// latest-wins resolution) follows the arranged order.
		l.pageLists[rp.seq] = rp.entries
		for _, e := range rp.entries {
			l.latest[e.DazPage] = rp.seq
			replay = append(replay, e)
		}
	}
	// Overlay NVRAM buffer (newest state per DazPage).
	for _, k := range l.bufOrder {
		if e, ok := l.buf[k]; ok {
			l.latest[e.DazPage] = inBuffer
			replay = append(replay, e)
		}
	}
	return replay, done, nil
}

// decodePage validates one committed metadata page (header magic, length
// bound, payload checksum) and decodes its entries. Any mismatch is a
// loud ErrLogCorrupt carrying the page's log sequence and SSD address.
func decodePage(page []byte, seq uint64, phys int64) ([]Entry, error) {
	if binary.LittleEndian.Uint16(page[0:]) != logPageMagic {
		return nil, fmt.Errorf("%w: log seq %d (ssd page %d): bad magic", ErrLogCorrupt, seq, phys)
	}
	used := int(binary.LittleEndian.Uint16(page[2:]))
	if used > logPagePayload {
		return nil, fmt.Errorf("%w: log seq %d (ssd page %d): entry bytes %d overflow the page",
			ErrLogCorrupt, seq, phys, used)
	}
	if got := crc32.ChecksumIEEE(page[logPageHdrLen : logPageHdrLen+used]); got != binary.LittleEndian.Uint32(page[4:]) {
		return nil, fmt.Errorf("%w: log seq %d (ssd page %d): checksum mismatch", ErrLogCorrupt, seq, phys)
	}
	var entries []Entry
	for i := 0; i < used; {
		e, n, ok := decodeEntry(page[logPageHdrLen+i : logPageHdrLen+used])
		if !ok {
			return nil, fmt.Errorf("%w: log seq %d (ssd page %d): undecodable entry at offset %d",
				ErrLogCorrupt, seq, phys, i)
		}
		entries = append(entries, e)
		i += n
	}
	return entries, nil
}

// Restore reconstructs a Log handle around surviving NVRAM state after a
// crash: same device and partition, the NVRAM counters, and the NVRAM
// metadata buffer contents in order. Call Recover next.
func Restore(dev blockdev.Device, start, npages int64, gcThreshold float64,
	ctr *nvram.Counters, buffered []Entry) *Log {
	l := New(dev, start, npages, gcThreshold)
	l.ctr = ctr
	for _, e := range buffered {
		l.bufInsert(e)
	}
	return l
}
