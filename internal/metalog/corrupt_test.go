package metalog

import (
	"errors"
	"strings"
	"testing"

	"kddcache/internal/blockdev"
)

// fillPages commits at least minPages full metadata pages and returns the
// flat shadow of what was logged.
func fillPages(t *testing.T, l *Log, minPages int64) map[uint32]Entry {
	t.Helper()
	shadow := map[uint32]Entry{}
	for i := 0; l.LivePages() < minPages; i++ {
		e := entry(uint32(i), StateClean)
		e.RaidLBA = uint32(i * 3)
		if _, err := l.Put(0, e); err != nil {
			t.Fatal(err)
		}
		shadow[e.DazPage] = e
	}
	return shadow
}

func TestRecoverDetectsSilentCorruption(t *testing.T) {
	l, dev := newLog(64)
	fillPages(t, l, 3)
	// Flip a bit in a committed page AND refresh the device checksum:
	// only the log's own page CRC can catch this.
	head := l.Counters().Head
	phys := int64(head % 64)
	if !dev.Store().CorruptPageSilently(phys, 199) {
		t.Fatal("no page to corrupt")
	}
	l2 := Restore(dev, 0, 64, 0.9, l.Counters(), l.BufferedEntries())
	_, _, err := l2.Recover(0)
	if !errors.Is(err, ErrLogCorrupt) {
		t.Fatalf("err = %v, want ErrLogCorrupt", err)
	}
	if !strings.Contains(err.Error(), "ssd page") {
		t.Fatalf("error lacks page location: %v", err)
	}
}

func TestRecoverDetectsTruncatedPage(t *testing.T) {
	l, dev := newLog(64)
	fillPages(t, l, 2)
	// A torn in-page write: prefix (header included) persisted, tail
	// zeroed, device checksum self-consistent. The payload CRC must fail.
	phys := int64(l.Counters().Head % 64)
	if !dev.Store().TruncatePage(phys, 256) {
		t.Fatal("no page to truncate")
	}
	l2 := Restore(dev, 0, 64, 0.9, l.Counters(), l.BufferedEntries())
	_, _, err := l2.Recover(0)
	if !errors.Is(err, ErrLogCorrupt) {
		t.Fatalf("err = %v, want ErrLogCorrupt", err)
	}
}

func TestRecoverSurfacesMediaError(t *testing.T) {
	l, dev := newLog(64)
	fillPages(t, l, 2)
	// Detectable bit-rot: the device itself reports ErrMedia; recovery
	// must propagate it with the page location, not skip the page.
	phys := int64(l.Counters().Head % 64)
	if !dev.Store().CorruptPage(phys, 40) {
		t.Fatal("no page to corrupt")
	}
	l2 := Restore(dev, 0, 64, 0.9, l.Counters(), l.BufferedEntries())
	_, _, err := l2.Recover(0)
	if !errors.Is(err, blockdev.ErrMedia) {
		t.Fatalf("err = %v, want ErrMedia", err)
	}
	if !strings.Contains(err.Error(), "recovery read") {
		t.Fatalf("error lacks context: %v", err)
	}
}

func TestRecoverRejectsForeignPage(t *testing.T) {
	l, dev := newLog(64)
	fillPages(t, l, 2)
	// Overwrite a live log page with bytes that were never a log page
	// (magic missing). Must be rejected, not decoded as garbage entries.
	phys := int64(l.Counters().Head % 64)
	junk := make([]byte, blockdev.PageSize)
	for i := range junk {
		junk[i] = byte(i*7 + 1)
	}
	if _, err := dev.WritePages(0, phys, 1, junk); err != nil {
		t.Fatal(err)
	}
	l2 := Restore(dev, 0, 64, 0.9, l.Counters(), l.BufferedEntries())
	_, _, err := l2.Recover(0)
	if !errors.Is(err, ErrLogCorrupt) {
		t.Fatalf("err = %v, want ErrLogCorrupt", err)
	}
	if !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("error lacks cause: %v", err)
	}
}

func TestRecoverRepairsTornTailFromNVRAM(t *testing.T) {
	// A crash DURING a page commit: the write never acked, so the NVRAM
	// counters still exclude the page and the NVRAM buffer still holds
	// its entries. Recovery must ignore the torn page (it is past the
	// tail) and rebuild the mapping from NVRAM alone.
	l, dev := newLog(64)
	var shadow []Entry
	for i := 0; l.bufBytes+CleanEntrySize < blockdev.PageSize; i++ {
		e := entry(uint32(i), StateClean)
		e.RaidLBA = uint32(i * 3)
		if _, err := l.Put(0, e); err != nil {
			t.Fatal(err)
		}
		shadow = append(shadow, e)
	}
	// NVRAM state as of the crash point: counters and buffer BEFORE the
	// commit the crash will tear.
	ctr := *l.Counters()
	buffered := l.BufferedEntries()
	if len(buffered) != len(shadow) {
		t.Fatalf("setup: %d buffered, want %d", len(buffered), len(shadow))
	}
	// Trigger the commit, then tear the page it wrote.
	if _, err := l.Put(0, entry(99999, StateClean)); err != nil {
		t.Fatal(err)
	}
	if l.Counters().Tail != ctr.Tail+1 {
		t.Fatalf("setup: commit did not happen (tail %d)", l.Counters().Tail)
	}
	if !dev.Store().TruncatePage(int64(ctr.Tail%64), 100) {
		t.Fatal("no tail page to tear")
	}
	l2 := Restore(dev, 0, 64, 0.9, &ctr, buffered)
	replay, _, err := l2.Recover(0)
	if err != nil {
		t.Fatalf("recovery over torn un-acked tail: %v", err)
	}
	final := map[uint32]Entry{}
	for _, e := range replay {
		final[e.DazPage] = e
	}
	for _, want := range shadow {
		if got, ok := final[want.DazPage]; !ok || got != want {
			t.Fatalf("entry %d lost or wrong after NVRAM repair: %+v", want.DazPage, got)
		}
	}
}
