package metalog

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"kddcache/internal/blockdev"
)

// FuzzEntryDecode: decodeEntry on arbitrary bytes must reject cleanly or
// produce an entry whose re-encoding is byte-exact — the log's replay
// correctness rides on decode∘encode being the identity.
func FuzzEntryDecode(f *testing.F) {
	for _, e := range []Entry{
		{State: StateFree, DazPage: 7},
		{State: StateClean, DazPage: 7, RaidLBA: 99},
		{State: StateOld, DazPage: 7, RaidLBA: 99, DezPage: 3, DezOff: 512, DezLen: 128},
		{State: StateOld, DazPage: 7, RaidLBA: 99, DezPage: 3, DezOff: 0, DezLen: 4096, DezRaw: true},
	} {
		buf := make([]byte, OldEntrySize)
		n := e.encode(buf)
		f.Add(buf[:n])
	}
	f.Add([]byte{0})                // page terminator
	f.Add([]byte{0x80, 1, 2, 3, 4}) // raw flag with state bits zero
	f.Add([]byte{0x05, 1, 2, 3, 4}) // state out of range
	f.Fuzz(func(t *testing.T, b []byte) {
		e, n, ok := decodeEntry(b)
		if !ok {
			if n != 0 {
				t.Fatalf("rejected input consumed %d bytes", n)
			}
			return
		}
		if n < FreeEntrySize || n > OldEntrySize || n > len(b) {
			t.Fatalf("consumed %d bytes of %d", n, len(b))
		}
		if e.encSize() != n {
			t.Fatalf("encSize %d != consumed %d", e.encSize(), n)
		}
		out := make([]byte, OldEntrySize)
		m := e.encode(out)
		if m != n || !bytes.Equal(out[:m], b[:n]) {
			t.Fatalf("re-encode not byte-exact:\n in  %x\n out %x", b[:n], out[:m])
		}
	})
}

// FuzzPageDecode: decodePage on an arbitrary page image must either
// return ErrLogCorrupt or yield entries whose sequential re-encoding
// reproduces the page's used payload exactly.
func FuzzPageDecode(f *testing.F) {
	// A valid committed page with three entries.
	page := make([]byte, blockdev.PageSize)
	used := 0
	for _, e := range []Entry{
		{State: StateClean, DazPage: 1, RaidLBA: 10},
		{State: StateOld, DazPage: 2, RaidLBA: 20, DezPage: 5, DezOff: 100, DezLen: 50},
		{State: StateFree, DazPage: 3},
	} {
		used += e.encode(page[logPageHdrLen+used:])
	}
	binary.LittleEndian.PutUint16(page[0:], logPageMagic)
	binary.LittleEndian.PutUint16(page[2:], uint16(used))
	binary.LittleEndian.PutUint32(page[4:], crc32.ChecksumIEEE(page[logPageHdrLen:logPageHdrLen+used]))
	f.Add(page)
	// An empty committed page (zero used bytes, checksum of nothing).
	empty := make([]byte, blockdev.PageSize)
	binary.LittleEndian.PutUint16(empty[0:], logPageMagic)
	binary.LittleEndian.PutUint32(empty[4:], crc32.ChecksumIEEE(nil))
	f.Add(empty)
	f.Add(make([]byte, blockdev.PageSize)) // bad magic
	f.Fuzz(func(t *testing.T, b []byte) {
		page := make([]byte, blockdev.PageSize)
		copy(page, b)
		entries, err := decodePage(page, 1, 42)
		if err != nil {
			return
		}
		used := int(binary.LittleEndian.Uint16(page[2:]))
		out := make([]byte, logPagePayload)
		off := 0
		for _, e := range entries {
			off += e.encode(out[off:])
		}
		if off != used || !bytes.Equal(out[:off], page[logPageHdrLen:logPageHdrLen+used]) {
			t.Fatalf("re-encoded payload diverges: %d bytes vs used %d", off, used)
		}
	})
}
