package metalog

import (
	"testing"

	"kddcache/internal/obs"
)

// TestTracerOnAppend checks that every flushed log page emits exactly
// one balanced meta_append span.
func TestTracerOnAppend(t *testing.T) {
	l, _ := newLog(64)
	dig := obs.NewDigest()
	tr := obs.NewTracer(dig)
	l.SetTracer(tr)

	for i := uint32(0); i < 100; i++ {
		if _, err := l.Put(0, entry(i, StateClean)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Flush(0); err != nil {
		t.Fatal(err)
	}

	if err := tr.Err(); err != nil {
		t.Fatalf("trace integrity: %v", err)
	}
	if n := tr.OpenSpans(); n != 0 {
		t.Fatalf("%d spans left open", n)
	}
	if got, want := dig.Spans(), uint64(l.Stats().PagesWritten); got != want {
		t.Fatalf("sink saw %d meta_append spans, want %d (one per page written)", got, want)
	}
	if dig.Spans() == 0 {
		t.Fatal("no pages flushed — test needs more entries")
	}
}
