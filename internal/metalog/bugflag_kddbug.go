//go:build kddbug

package metalog

// Mutation build: FlushBatch acks the batch (entries leave NVRAM) before
// its shard-tagged page is durable. See bugflag.go.
const bugBatchAckEarly = true
