package harness

import (
	"fmt"

	"kddcache/internal/core"
	"kddcache/internal/qos"
	"kddcache/internal/sim"
	"kddcache/internal/stats"
	"kddcache/internal/trace"
)

// QoSTenantResult is one tenant's outcome of a controller-gated replay.
type QoSTenantResult struct {
	Name string
	qos.Counters
	Latency *stats.Histogram // served requests only, from original arrival
}

// QoSResult is a full controller-gated replay: the usual run result
// (served requests only) plus the per-tenant admission breakdown.
type QoSResult struct {
	Run     *Result
	Tenants []QoSTenantResult
}

// RunTraceQoS replays a trace through the stack with every request
// gated by the admission controller, single-threaded in timestamp order
// (the kddsim -tenants path). One token is charged per request
// regardless of its page count. Throttled requests retry inline at
// their RetryAfter hint until admitted, shed, or past their deadline
// (arrival + deadline margin; 0 disables deadlines); rejected requests
// are counted, not failed — only engine errors fail the replay. On a
// KDD stack a bypass-rung verdict serves the request with cache
// admission suspended; other policies have no admission to suspend and
// serve it normally.
func RunTraceQoS(st *Stack, tr *trace.Trace, ctl *qos.Controller, deadline sim.Time) (*QoSResult, error) {
	if ctl == nil {
		return nil, fmt.Errorf("harness: RunTraceQoS needs a controller")
	}
	res := &Result{Policy: st.Policy.Name(), Latency: stats.NewHistogram(1 << 16)}
	per := make([]*stats.Histogram, ctl.Tenants())
	for i := range per {
		per[i] = stats.NewHistogram(1 << 14)
	}
	kdd, _ := st.Policy.(*core.KDD)

	var prev sim.Time
	for i, req := range tr.Requests {
		if st.PerRequest != nil {
			st.PerRequest(i)
		}
		if i > 0 && req.Time-prev > IdleCleanGap {
			if _, err := st.Policy.Clean(prev, false); err != nil {
				return nil, fmt.Errorf("idle clean: %w", err)
			}
		}
		prev = req.Time

		at := req.Time
		var dl sim.Time
		if deadline > 0 {
			dl = req.Time + deadline
		}
		verdict := qos.VerdictAdmit
		served := true
		for {
			if dl > 0 && at > dl {
				ctl.NoteDeadline(req.Tenant)
				served = false
				break
			}
			d := ctl.Admit(at, req.Tenant)
			if d.Verdict == qos.VerdictThrottle {
				if d.RetryAfter > at {
					at = d.RetryAfter
				} else {
					at++
				}
				continue
			}
			verdict = d.Verdict
			served = d.Verdict != qos.VerdictShed
			break
		}
		if !served {
			continue
		}

		done := at
		for p := 0; p < req.Pages; p++ {
			var c sim.Time
			var err error
			lba := req.LBA + int64(p)
			switch {
			case verdict == qos.VerdictBypass && kdd != nil && req.Op == trace.Read:
				c, err = kdd.ReadNoAdmit(at, lba, nil)
			case verdict == qos.VerdictBypass && kdd != nil:
				c, err = kdd.WriteNoAdmit(at, lba, nil)
			case req.Op == trace.Read:
				c, err = st.Policy.Read(at, lba, nil)
			default:
				c, err = st.Policy.Write(at, lba, nil)
			}
			if err != nil {
				return nil, fmt.Errorf("%s lba %d: %w", req.Op, lba, err)
			}
			if c > done {
				done = c
			}
		}
		lat := int64(done - req.Time)
		res.Latency.Observe(lat)
		if req.Tenant >= 0 && req.Tenant < len(per) {
			per[req.Tenant].Observe(lat)
		}
		if done > res.Duration {
			res.Duration = done
		}
	}
	res.Cache = st.Policy.Stats()

	out := &QoSResult{Run: res}
	for i, c := range ctl.Snapshot() {
		out.Tenants = append(out.Tenants, QoSTenantResult{
			Name: ctl.Name(i), Counters: c, Latency: per[i],
		})
	}
	return out, nil
}
