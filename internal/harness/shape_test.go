package harness

import (
	"testing"

	"kddcache/internal/workload"
)

// Shape tests for the figure curves themselves: the qualitative
// relationships the paper's plots exhibit must hold at every sweep point,
// not just the endpoints.

// TestFig6ShapeMonotonicity asserts the Figure 6 curve properties on
// Fin1: every policy's SSD writes weakly decrease as the cache grows
// (fewer misses to fill), and the KDD family stays ordered by content
// locality at each point.
func TestFig6ShapeMonotonicity(t *testing.T) {
	sr, err := sweep(workload.Fin1.Scale(0.006), 1.0, true)
	if err != nil {
		t.Fatal(err)
	}
	curves := map[string][]float64{}
	for _, s := range sr.traffic {
		curves[s.Label] = s.Y
	}
	for label, ys := range curves {
		for i := 1; i < len(ys); i++ {
			// Allow tiny non-monotonic jitter (<3%) from set-hash effects.
			if ys[i] > ys[i-1]*1.03 {
				t.Errorf("%s: SSD writes rose with cache size: %.1f -> %.1f at point %d",
					label, ys[i-1], ys[i], i)
			}
		}
	}
	for i := range curves["KDD-25%"] {
		if !(curves["KDD-12%"][i] <= curves["KDD-25%"][i] &&
			curves["KDD-25%"][i] <= curves["KDD-50%"][i]) {
			t.Errorf("point %d: KDD locality ordering broken: %.1f / %.1f / %.1f",
				i, curves["KDD-12%"][i], curves["KDD-25%"][i], curves["KDD-50%"][i])
		}
		if curves["KDD-50%"][i] >= curves["WT"][i] {
			t.Errorf("point %d: KDD-50%% (%.1f) not below WT (%.1f)",
				i, curves["KDD-50%"][i], curves["WT"][i])
		}
		if curves["WA"][i] > curves["KDD-12%"][i] {
			t.Errorf("point %d: WA (%.1f) above KDD-12%% (%.1f) on a write-dominant trace",
				i, curves["WA"][i], curves["KDD-12%"][i])
		}
	}
}

// TestFig5ShapeHitRatioMonotone asserts hit ratios weakly increase with
// cache size for every policy on both write-dominant traces.
func TestFig5ShapeHitRatioMonotone(t *testing.T) {
	for _, spec := range []workload.Spec{workload.Fin1, workload.Hm0} {
		sr, err := sweep(spec.Scale(0.006), 1.0, false)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range sr.hit {
			for i := 1; i < len(s.Y); i++ {
				if s.Y[i]+0.01 < s.Y[i-1] {
					t.Errorf("%s/%s: hit ratio fell with cache size: %.4f -> %.4f",
						spec.Name, s.Label, s.Y[i-1], s.Y[i])
				}
			}
		}
	}
}
