package harness

import (
	"testing"

	"kddcache/internal/qos"
	"kddcache/internal/sim"
	"kddcache/internal/trace"
)

// qosTrace builds a two-tenant interleaved stream: tenant 0 ("big")
// trickles well inside its budget while tenant 1 ("small", 1 kIOPS,
// burst 1) floods a burst every millisecond — sustained overload that
// must walk small down the ladder while big never feels it.
func qosTrace() *trace.Trace {
	tr := &trace.Trace{Name: "qos-two-tenant"}
	for ms := int64(0); ms < 100; ms++ {
		at := sim.Time(ms) * sim.Millisecond
		if ms%5 == 0 {
			tr.Requests = append(tr.Requests, trace.Request{
				Time: at, Op: trace.Write, LBA: 4096 + ms, Pages: 1, Tenant: 0,
			})
		}
		for i := int64(0); i < 20; i++ {
			op := trace.Write
			if i%3 == 0 {
				op = trace.Read
			}
			tr.Requests = append(tr.Requests, trace.Request{
				Time: at + sim.Time(i), Op: op, LBA: (ms*7 + i) % 512, Pages: 1, Tenant: 1,
			})
		}
	}
	return tr
}

func qosReplay(t *testing.T, deadline sim.Time) *QoSResult {
	t.Helper()
	st, err := Build(StackOpts{
		Policy: PolicyKDD, DeltaMean: 0.25,
		CachePages: 1024, DiskPages: 65536, Timing: true, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	specs, err := qos.ParseTenants("big:10000:4,small:1000:1:1")
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := qos.NewController(qos.Config{Tenants: specs})
	if err != nil {
		t.Fatal(err)
	}
	qr, err := RunTraceQoS(st, qosTrace(), ctl, deadline)
	if err != nil {
		t.Fatal(err)
	}
	return qr
}

// TestRunTraceQoS covers the controller-gated replay (the kddsim
// -tenants path): the flooding tenant is throttled, shed, and demoted
// to the bypass rung, the in-budget tenant sails through untouched, and
// the per-tenant tallies conserve the offered load.
func TestRunTraceQoS(t *testing.T) {
	qr := qosReplay(t, 2*sim.Millisecond)
	if len(qr.Tenants) != 2 {
		t.Fatalf("got %d tenants, want 2", len(qr.Tenants))
	}
	big, small := qr.Tenants[0], qr.Tenants[1]
	if big.Name != "big" || small.Name != "small" {
		t.Fatalf("tenant names %q/%q", big.Name, small.Name)
	}
	if big.Throttled != 0 || big.Shed != 0 || big.Bypassed != 0 {
		t.Fatalf("in-budget tenant was degraded: %+v", big.Counters)
	}
	if big.Admitted != big.Offered {
		t.Fatalf("in-budget tenant: admitted %d of %d offered", big.Admitted, big.Offered)
	}
	if small.Throttled == 0 {
		t.Error("flooding tenant never throttled")
	}
	if small.Shed == 0 {
		t.Error("flooding tenant never shed")
	}
	if small.Bypassed == 0 {
		t.Error("flooding tenant never reached the bypass rung")
	}
	for _, tn := range qr.Tenants {
		if got := tn.Admitted + tn.Bypassed + tn.Throttled + tn.Shed; got != tn.Offered {
			t.Errorf("%s: offered %d but verdicts sum to %d", tn.Name, tn.Offered, got)
		}
	}
	if qr.Run.Latency.Count() == 0 {
		t.Fatal("no served request was measured")
	}
	if small.Latency.Count() == 0 || big.Latency.Count() == 0 {
		t.Fatal("per-tenant latency histograms empty")
	}

	// Deterministic: the same replay yields the same tallies.
	again := qosReplay(t, 2*sim.Millisecond)
	for i := range qr.Tenants {
		if qr.Tenants[i].Counters != again.Tenants[i].Counters {
			t.Fatalf("replay not deterministic: %+v vs %+v",
				qr.Tenants[i].Counters, again.Tenants[i].Counters)
		}
	}
}

// TestRunTraceQoSDeadline proves deadline enforcement: with a tight
// deadline the throttle-retry loop gives up on requests whose hints
// land past it, and those rejections are tallied, not served. Without
// deadlines the same trace records none.
func TestRunTraceQoSDeadline(t *testing.T) {
	tight := qosReplay(t, 500*sim.Microsecond)
	if tight.Tenants[1].Deadline == 0 {
		t.Error("tight deadline never rejected a retry")
	}
	off := qosReplay(t, 0)
	if n := off.Tenants[1].Deadline; n != 0 {
		t.Errorf("deadlines disabled but %d recorded", n)
	}
}
