package harness

import (
	"strings"
	"testing"
)

// TestLSRaidCompareSweep runs the backend head-to-head at a small scale
// and checks the structural claims the experiment exists to make: both
// arms complete, the log-structured arm actually pays GC (the log must
// wrap), and the parity arm pays more member writes per user write.
func TestLSRaidCompareSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("head-to-head sweep is slow")
	}
	// 0.004 is the smallest scale whose write volume wraps the log and
	// forces the lsraid arm into steady-state GC.
	res, err := LSRaidCompareSweep(0.004)
	if err != nil {
		t.Fatal(err)
	}
	if res.KddMeanMs <= 0 || res.LsMeanMs <= 0 || res.KddP99Ms <= 0 || res.LsP99Ms <= 0 {
		t.Fatalf("degenerate latencies: %+v", res)
	}
	if res.LsGCSegs == 0 || res.LsGCCopies == 0 {
		t.Fatalf("log never wrapped — GC cost unmeasured: %+v", res)
	}
	if res.KddWriteAmp <= res.LsWriteAmp {
		t.Fatalf("parity arm should amplify more than the log arm: kdd=%.3f lsraid=%.3f",
			res.KddWriteAmp, res.LsWriteAmp)
	}
	if !strings.Contains(res.Table, "kdd") || !strings.Contains(res.Table, "lsraid") {
		t.Fatalf("table missing arms:\n%s", res.Table)
	}
}
