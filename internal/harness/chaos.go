package harness

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"

	"kddcache/internal/blockdev"
	"kddcache/internal/core"
	"kddcache/internal/delta"
	"kddcache/internal/obs"
	"kddcache/internal/raid"
	"kddcache/internal/raidiface"
	"kddcache/internal/sim"
)

// Chaos drives the full KDD stack (SSD cache + RAID-5 backend) through
// randomized, seeded fault schedules and verifies end-to-end integrity
// after each one. Every schedule runs a mixed read/write workload against
// a byte-exact oracle while a fault plan injects latent media errors,
// transient glitches, silent bit-rot, torn-write crashes, or fail-stop
// disk losses; afterwards the rig checks cache invariants, flushes, runs
// a patrol scrub, verifies the array contents directly, and proves parity
// by failing a disk and re-reading through reconstruction. Each schedule
// is executed twice and must produce bit-identical results (fingerprints)
// — fault injection is deterministic given the seed.

// Chaos stack geometry: small enough that a scrub pass is cheap, large
// enough that the footprint overflows the cache and exercises eviction,
// cleaning, and the DEZ machinery.
const (
	chaosDisks     = 5
	chaosDiskPages = 1024
	chaosChunk     = 8
)

// ChaosOpts parameterises a chaos run.
type ChaosOpts struct {
	Schedules  int    // distinct fault schedules (default 24)
	Ops        int    // workload operations per schedule (default 500)
	Footprint  int64  // distinct LBAs touched (default 640)
	CachePages int64  // SSD cache data pages (default 512)
	Seed       uint64 // master seed (default 0xC0FFEE)
	Parallel   int    // worker-pool width for schedules (0 = harness default)
	// Kind restricts the run to a comma-separated set of plan kinds
	// (e.g. "ssd-kill,ssd-reattach"); empty runs every plan.
	Kind string
}

func (o ChaosOpts) withDefaults() ChaosOpts {
	if o.Schedules == 0 {
		o.Schedules = 24
	}
	if o.Ops == 0 {
		o.Ops = 500
	}
	if o.Footprint == 0 {
		o.Footprint = 640
	}
	if o.CachePages == 0 {
		o.CachePages = 512
	}
	if o.Seed == 0 {
		o.Seed = 0xC0FFEE
	}
	return o
}

// ChaosScheduleResult summarises one schedule (one seeded fault plan).
type ChaosScheduleResult struct {
	Schedule int
	Kind     string
	Seed     uint64

	Crashes       int   // power losses injected (and recovered from)
	Detected      int64 // media-error detection events across all layers (a fault observed at both the device and the RAID layer counts at each)
	Repaired      int64 // pages/rows healed (scrub, read-repair, row heals, emergency folds)
	StaleFolds    int   // ops retried after folding deltas into stale parity
	Unrecoverable int   // rows reported unrecoverable (only the dedicated plan expects any)
	Failovers     int64 // cache transitions into pass-through (breaker trips + fail-stops)
	Reattaches    int64 // successful cache re-attachments
	SpareAttaches int64 // hot spares auto-attached by the rebuild pump
	RebuildRows   int64 // member rows reconstructed by the paced rebuild

	Spans       uint64 // spans emitted by the always-on tracer
	TraceDigest uint64 // FNV-1a of the canonical trace bytes; equal across reruns

	Fingerprint uint64 // digest of final content + counters; equal across reruns
	Violations  []string
}

// ChaosReport aggregates all schedules of a run.
type ChaosReport struct {
	Opts    ChaosOpts
	Results []ChaosScheduleResult
}

// Violations flattens every schedule's violations with a schedule prefix.
func (r *ChaosReport) Violations() []string {
	var all []string
	for _, res := range r.Results {
		for _, v := range res.Violations {
			all = append(all, fmt.Sprintf("schedule %d (%s, seed %#x): %s",
				res.Schedule, res.Kind, res.Seed, v))
		}
	}
	return all
}

// Table renders the per-schedule summary.
func (r *ChaosReport) Table() string {
	var b strings.Builder
	b.WriteString("== Chaos: randomized partial-fault schedules over the KDD stack ==\n")
	fmt.Fprintf(&b, "%3s  %-14s %-18s %7s %9s %9s %6s %6s %6s %5s %6s %6s %5s %8s  %-16s %s\n",
		"#", "kind", "seed", "crashes", "detected", "repaired", "folds", "unrec", "failov", "reatt", "spares", "rbrows", "viol", "spans", "tracedigest", "fingerprint")
	var crashes, unrec, viol int
	var detected, repaired, failov, reatt, spares, rbrows int64
	for _, res := range r.Results {
		fmt.Fprintf(&b, "%3d  %-14s %-18s %7d %9d %9d %6d %6d %6d %5d %6d %6d %5d %8d  %016x %016x\n",
			res.Schedule, res.Kind, fmt.Sprintf("%#x", res.Seed),
			res.Crashes, res.Detected, res.Repaired, res.StaleFolds,
			res.Unrecoverable, res.Failovers, res.Reattaches,
			res.SpareAttaches, res.RebuildRows,
			len(res.Violations), res.Spans, res.TraceDigest, res.Fingerprint)
		crashes += res.Crashes
		detected += res.Detected
		repaired += res.Repaired
		failov += res.Failovers
		reatt += res.Reattaches
		spares += res.SpareAttaches
		rbrows += res.RebuildRows
		unrec += res.Unrecoverable
		viol += len(res.Violations)
	}
	fmt.Fprintf(&b, "\n%d schedules: %d crashes recovered, %d media errors detected, "+
		"%d repairs, %d cache failovers, %d reattaches, %d spare attaches, "+
		"%d rebuild rows, %d unrecoverable rows, %d violations\n",
		len(r.Results), crashes, detected, repaired, failov, reatt, spares, rbrows, unrec, viol)
	if viol == 0 {
		b.WriteString("PASS: zero invariant violations, zero undetected corruption\n")
	} else {
		b.WriteString("FAIL:\n")
		for _, v := range r.Violations() {
			b.WriteString("  " + v + "\n")
		}
	}
	return b.String()
}

// Chaos runs every schedule twice (same seed) and reports the results.
// Determinism failures are recorded as violations on the first run.
// Schedules are independent (each builds its own rig, devices, and RNG
// streams from the derived seed), so they execute on the shared worker
// pool; results land in schedule order regardless of completion order.
func Chaos(o ChaosOpts) *ChaosReport {
	o = o.withDefaults()
	rep := &ChaosReport{Opts: o}
	// Schedule jobs never return errors: violations are data, recorded in
	// the per-schedule result, so one bad schedule can't mask the rest.
	plans := chaosPlans
	if o.Kind != "" {
		want := make(map[string]bool)
		for _, k := range strings.Split(o.Kind, ",") {
			want[strings.TrimSpace(k)] = true
		}
		plans = nil
		for _, p := range chaosPlans {
			if want[p.kind] {
				plans = append(plans, p)
			}
		}
		if len(plans) == 0 {
			return rep
		}
	}
	results, _ := fanOutN(o.Parallel, o.Schedules, func(i int) (ChaosScheduleResult, error) {
		plan := plans[i%len(plans)]
		seed := o.Seed + uint64(i)*0x9E3779B97F4A7C15
		run := func() *ChaosScheduleResult {
			if plan.custom != nil {
				return plan.custom(seed, o)
			}
			return runChaosSchedule(plan, seed, o)
		}
		res := run()
		rerun := run()
		if res.Fingerprint != rerun.Fingerprint {
			res.Violations = append(res.Violations, fmt.Sprintf(
				"nondeterministic: fingerprint %016x vs %016x on rerun",
				res.Fingerprint, rerun.Fingerprint))
		}
		res.Schedule = i
		return *res, nil
	})
	rep.Results = results
	return rep
}

// chaosPlan is one fault-injection strategy; the schedule driver is shared.
type chaosPlan struct {
	kind                string
	level               raid.Level                    // array level (zero = RAID-5)
	disks               int                           // member count (zero = chaosDisks)
	spares              int                           // hot spares parked at build time
	cfg                 func(*core.Config, ChaosOpts) // tweak the KDD config before core.New
	setup               func(*chaosRig)
	everyOp             func(*chaosRig, int)
	finish              func(*chaosRig)
	rearmCrash          bool // re-arm a crash point after every recovery
	expectUnrecoverable bool // the plan deliberately exhausts redundancy
	skipDegradedProof   bool

	// custom replaces the shared single-engine schedule driver entirely
	// (the sharded-plane plans live in their own rig); it must be fully
	// deterministic for the given seed — the run-twice fingerprint
	// comparison applies to custom drivers too.
	custom func(seed uint64, o ChaosOpts) *ChaosScheduleResult
}

// pendingChaosWrite is a write that errored because the crash point hit
// mid-operation: afterwards the page must read back as either the old or
// the new content — anything else is torn-write corruption.
type pendingChaosWrite struct {
	lba      int64
	old, new []byte
}

// chaosRig is one schedule's stack plus its oracle and tallies.
type chaosRig struct {
	o    ChaosOpts
	plan *chaosPlan
	rng  *sim.RNG
	mut  *delta.Mutator

	members []*blockdev.NullDevice
	arr     raidiface.Array
	inj     *blockdev.FaultInjector // SSD-side injector
	cfg     core.Config
	kdd     *core.KDD

	oracle  map[int64][]byte
	written []int64 // oracle keys in first-write order (maps don't iterate deterministically)
	pending *pendingChaosWrite
	halt    bool

	dig *obs.Digest // trace digest sink: spans survive crashes bit-for-bit
	tr  *obs.Tracer

	flips       int            // silent/detectable corruptions actually applied
	flippedRows map[int64]bool // rows already holding an injected member fault
	proofFailed int            // disk deliberately failed by the degraded proof (-1 = none)
	detectedKDD int64          // cache-layer media errors harvested across KDD instances
	lastScrub   raid.ScrubReport

	// Rebuild-pump counters banked across KDD instances (crash recoveries
	// replace the instance), plus window-tracking state for the rebuild
	// plans.
	spareAttaches      int64
	rebuildSteps       int64
	rebuildRows        int64
	rebuildsDone       int64
	rebuildResumes     int  // crash recoveries that re-opened a rebuild window from the NVRAM checkpoint
	secondKillInWindow bool // the plan's second member failure landed inside an open rebuild window

	res *ChaosScheduleResult
}

func newChaosRig(plan *chaosPlan, seed uint64, o ChaosOpts) *chaosRig {
	c := &chaosRig{
		o:           o,
		plan:        plan,
		rng:         sim.NewRNG(seed),
		mut:         delta.NewMutator(seed^0xD00D, 0.25),
		oracle:      make(map[int64][]byte),
		flippedRows: make(map[int64]bool),
		proofFailed: -1,
		res:         &ChaosScheduleResult{Kind: plan.kind, Seed: seed},
	}
	level := plan.level
	if level == 0 {
		level = raid.Level5
	}
	nDisks := plan.disks
	if nDisks == 0 {
		nDisks = chaosDisks
	}
	var members []blockdev.Device
	for i := 0; i < nDisks; i++ {
		d := blockdev.NewNullDataDevice(fmt.Sprintf("d%d", i), chaosDiskPages)
		c.members = append(c.members, d)
		members = append(members, d)
	}
	arr, err := raid.New(raid.Config{Level: level, ChunkPages: chaosChunk}, members)
	if err != nil {
		panic(err) // static geometry; cannot fail
	}
	c.arr = arr
	for i := 0; i < plan.spares; i++ {
		if err := arr.AddSpare(blockdev.NewNullDataDevice(fmt.Sprintf("spare%d", i), chaosDiskPages)); err != nil {
			panic(err) // spare geometry matches by construction
		}
	}
	// The tracer runs on every schedule: its digest is folded into the
	// fingerprint, so span structure must survive crashes, failovers, and
	// re-attachments deterministically too.
	c.dig = obs.NewDigest()
	c.tr = obs.NewTracer(c.dig)
	arr.SetTracer(c.tr)
	inner := blockdev.NewNullDataDevice("ssd", 64+o.CachePages+64)
	c.inj = blockdev.NewFaultInjector(inner, seed^0xFA17)
	c.cfg = core.Config{
		SSD:        c.inj,
		Backend:    arr,
		CachePages: o.CachePages,
		Ways:       32,
		MetaStart:  0,
		MetaPages:  64,
		Codec:      delta.ZRLE{},
		Tracer:     c.tr,
	}
	if plan.cfg != nil {
		plan.cfg(&c.cfg, o)
	}
	k, err := core.New(c.cfg)
	if err != nil {
		panic(err)
	}
	c.kdd = k
	return c
}

func runChaosSchedule(plan *chaosPlan, seed uint64, o ChaosOpts) *ChaosScheduleResult {
	c := newChaosRig(plan, seed, o)
	if plan.setup != nil {
		plan.setup(c)
	}
	for i := 0; i < o.Ops && !c.halt; i++ {
		if plan.everyOp != nil {
			plan.everyOp(c, i)
		}
		lba := c.pickLBA()
		if c.rng.Float64() < 0.6 {
			c.doWrite(lba)
		} else {
			c.doRead(lba)
		}
		if c.inj.Crashed() {
			c.restore()
		}
	}
	// Disarm any pending crash point and fault profiles: the verification
	// phase measures what the faults left behind, not new ones.
	c.inj.ClearCrash()
	c.inj.SetProfile(blockdev.FaultProfile{})
	for i := range c.members {
		c.arr.Injector(i).SetProfile(blockdev.FaultProfile{})
	}
	if !c.halt {
		c.verify()
		if plan.finish != nil {
			plan.finish(c)
		}
	}
	c.harvestKDD()
	c.res.SpareAttaches = c.spareAttaches
	c.res.RebuildRows = c.rebuildRows
	c.res.Detected = c.inj.MediaErrors() + c.arr.Stats().MediaErrors + c.detectedKDD
	for i := range c.members {
		c.res.Detected += c.arr.Injector(i).MediaErrors()
	}
	c.res.Repaired += c.arr.Stats().ReadRepairs
	if err := c.tr.Err(); err != nil {
		c.violf("trace integrity: %v", err)
	}
	if n := c.tr.OpenSpans(); n != 0 {
		c.violf("%d spans leaked open at end of schedule", n)
	}
	c.res.Spans = c.dig.Spans()
	c.res.TraceDigest = c.dig.Sum64()
	c.res.Fingerprint = c.fingerprint()
	return c.res
}

func (c *chaosRig) violf(format string, args ...any) {
	c.res.Violations = append(c.res.Violations, fmt.Sprintf(format, args...))
}

// harvestKDD folds the current KDD instance's counters into the result
// (instances are replaced across crash recoveries).
func (c *chaosRig) harvestKDD() {
	ks := c.kdd.Stats()
	c.res.Repaired += ks.RowsHealed + ks.FoldRMWs + ks.FoldResyncs
	c.detectedKDD += ks.SSDMediaErrors
	c.res.Failovers += ks.Failovers
	c.res.Reattaches += ks.Reattaches
	c.spareAttaches += ks.SpareAttaches
	c.rebuildSteps += ks.RebuildSteps
	c.rebuildRows += ks.RebuildRows
	c.rebuildsDone += ks.RebuildsDone
}

// pumpRebuildStats returns the rebuild-pump counters summed across every
// KDD instance this schedule has run: restore() banks each pre-crash
// instance's stats, and the live instance's are added on top. Finish
// hooks use this — the final harvest has not run when they execute.
func (c *chaosRig) pumpRebuildStats() (attaches, steps, rows, done int64) {
	ks := c.kdd.Stats()
	return c.spareAttaches + ks.SpareAttaches,
		c.rebuildSteps + ks.RebuildSteps,
		c.rebuildRows + ks.RebuildRows,
		c.rebuildsDone + ks.RebuildsDone
}

// writtenLBA draws a random LBA that has actually been written, so
// targeted corruption always lands on a live page even in short runs.
func (c *chaosRig) writtenLBA() (int64, bool) {
	if len(c.written) == 0 {
		return 0, false
	}
	return c.written[c.rng.Intn(len(c.written))], true
}

// pickLBA draws from the footprint with a hot front eighth.
func (c *chaosRig) pickLBA() int64 {
	if c.rng.Float64() < 0.5 {
		return int64(c.rng.Uint64n(uint64(c.o.Footprint / 8)))
	}
	return int64(c.rng.Uint64n(uint64(c.o.Footprint)))
}

// foldRetry reports whether err is the loud stale-parity refusal — parity
// deliberately left stale by WriteNoParity cannot reconstruct — and if so
// folds the pending deltas (making the rows consistent) so the caller can
// retry.
func (c *chaosRig) foldRetry(err error) bool {
	if !errors.Is(err, raid.ErrStaleParity) {
		return false
	}
	if _, cerr := c.kdd.Clean(0, true); cerr != nil {
		c.violf("fold after stale-parity refusal: %v", cerr)
		return false
	}
	c.res.StaleFolds++
	return true
}

func (c *chaosRig) doWrite(lba int64) {
	page := make([]byte, blockdev.PageSize)
	prev, existed := c.oracle[lba]
	if existed {
		copy(page, prev)
		c.mut.Mutate(page)
	} else {
		c.mut.FillRandom(page)
	}
	_, err := c.kdd.Write(0, lba, page)
	if err != nil && c.foldRetry(err) {
		_, err = c.kdd.Write(0, lba, page)
	}
	if err == nil {
		if !existed {
			c.written = append(c.written, lba)
		}
		c.oracle[lba] = page
		return
	}
	if c.inj.Crashed() {
		// The crash hit mid-write: old or new may be durable. The first
		// post-recovery read pins which one the oracle keeps.
		old := c.oracle[lba]
		if old == nil {
			old = make([]byte, blockdev.PageSize)
		}
		c.pending = &pendingChaosWrite{lba: lba, old: old, new: page}
		return
	}
	c.violf("write %d failed: %v", lba, err)
}

func (c *chaosRig) doRead(lba int64) {
	buf := make([]byte, blockdev.PageSize)
	_, err := c.kdd.Read(0, lba, buf)
	if err != nil && c.foldRetry(err) {
		_, err = c.kdd.Read(0, lba, buf)
	}
	if err != nil {
		if c.inj.Crashed() {
			return // the crash interrupted the read; recovery handles it
		}
		c.violf("read %d failed: %v", lba, err)
		return
	}
	want := c.oracle[lba]
	if want == nil {
		want = make([]byte, blockdev.PageSize)
	}
	if !bytes.Equal(buf, want) {
		c.violf("read %d returned wrong data (undetected corruption)", lba)
	}
}

// armNext arms the next torn-write crash point at a random distance.
// The distance window shrinks with -ops so short schedules still crash
// at least once instead of running out of writes before the trigger.
func (c *chaosRig) armNext() {
	span := c.o.Ops / 4
	if span > 120 {
		span = 120
	}
	if span < 1 {
		span = 1
	}
	c.inj.ArmCrash(int64(10+c.rng.Intn(span)), c.rng.Intn(3), c.rng.Intn(blockdev.PageSize))
}

// restore recovers from an injected power loss: snapshot the NVRAM state
// (log counters + buffered entries + staging), clear the crash, and bring
// up a fresh KDD instance via the RPO-zero recovery path.
func (c *chaosRig) restore() {
	c.res.Crashes++
	c.harvestKDD()
	ctr := c.kdd.Log().Counters()
	buffered := c.kdd.Log().BufferedEntries()
	staging := c.kdd.Staging()
	c.inj.ClearCrash()
	// The rebuild watermark is volatile array software state: the power
	// loss forgets it, and recovery must resume from the checkpoint the
	// engine persisted in NVRAM — or the un-rebuilt region of the target
	// would silently be served as valid zeros.
	c.arr.CrashRebuildState()
	k, _, err := core.Restore(c.cfg, 0, ctr, buffered, staging)
	if err != nil {
		c.violf("restore after crash: %v", err)
		c.halt = true
		return
	}
	c.kdd = k
	if c.arr.RebuildActive() {
		c.rebuildResumes++
	}
	if err := k.CheckInvariants(); err != nil {
		c.violf("post-restore invariants: %v", err)
	}
	// Every span must have closed on the error path that surfaced the
	// crash; a leak here would corrupt attribution for the whole rest of
	// the schedule.
	if n := c.tr.OpenSpans(); n != 0 {
		c.violf("%d spans open across crash recovery", n)
	}
	if p := c.pending; p != nil {
		c.pending = nil
		buf := make([]byte, blockdev.PageSize)
		_, existed := c.oracle[p.lba]
		if _, err := k.Read(0, p.lba, buf); err != nil {
			c.violf("post-restore read %d: %v", p.lba, err)
		} else if bytes.Equal(buf, p.new) {
			if !existed {
				c.written = append(c.written, p.lba)
			}
			c.oracle[p.lba] = p.new
		} else if bytes.Equal(buf, p.old) {
			if !existed {
				c.written = append(c.written, p.lba)
			}
			c.oracle[p.lba] = p.old
		} else {
			c.violf("post-restore read %d matches neither old nor new content", p.lba)
		}
	}
	if c.plan.rearmCrash {
		c.armNext()
	}
}

// verify is the post-workload integrity chain: invariants, cache-path
// read-verify, flush, patrol scrub, direct array verify, and a degraded
// re-read proving the parity actually reconstructs the data.
func (c *chaosRig) verify() {
	if err := c.kdd.CheckInvariants(); err != nil {
		c.violf("invariants: %v", err)
	}
	for lba := int64(0); lba < c.o.Footprint; lba++ {
		c.doRead(lba)
	}
	if _, err := c.kdd.Flush(0); err != nil {
		c.violf("flush: %v", err)
		return
	}
	if n := c.arr.StaleRows(); n != 0 {
		c.violf("%d stale rows after flush", n)
	}
	if err := c.kdd.CheckInvariants(); err != nil {
		c.violf("post-flush invariants: %v", err)
	}
	// Drive any open rebuild window to completion and attach remaining
	// parked spares before judging the array: whenever a spare was
	// available the acceptance bar is full redundancy, and the scrub,
	// content sweep, and degraded proof below all want a settled array.
	// The workload's own pump activity did the paced part; this loop is
	// the backstop for windows still open at schedule end. Deltas are
	// folded before each attach (§III-E: parity_update precedes rebuild).
	for guard := 0; !c.arr.Healthy(); guard++ {
		if guard > len(c.members)+2 {
			c.violf("verify: array did not settle to full redundancy")
			break
		}
		if c.arr.RebuildActive() {
			if _, _, _, err := c.arr.RebuildStep(0, int(chaosDiskPages)); err != nil {
				c.violf("verify: rebuild step: %v", err)
				break
			}
			continue
		}
		if c.arr.SpareCount() == 0 {
			break // degraded with no spare left: a legal end state
		}
		if _, err := c.kdd.Clean(0, true); err != nil {
			c.violf("verify: delta fold before spare attach: %v", err)
			break
		}
		_, started, err := c.arr.StartSpareRebuild(0)
		if err != nil {
			c.violf("verify: spare attach: %v", err)
			break
		}
		if !started {
			break
		}
	}
	_, rep, err := c.arr.Scrub(0)
	if err != nil {
		c.violf("scrub: %v", err)
		return
	}
	c.lastScrub = rep
	c.res.Repaired += rep.MediaRepaired + rep.ParityFixed
	c.res.Unrecoverable += len(rep.Unrecoverable)
	if len(rep.Unrecoverable) > 0 && !c.plan.expectUnrecoverable {
		c.violf("scrub reported unrecoverable rows %v", rep.Unrecoverable)
	}
	zero := make([]byte, blockdev.PageSize)
	buf := make([]byte, blockdev.PageSize)
	for lba := int64(0); lba < c.o.Footprint; lba++ {
		want := c.oracle[lba]
		if want == nil {
			want = zero
		}
		if _, err := c.arr.ReadPages(0, lba, 1, buf); err != nil {
			c.violf("array read %d: %v", lba, err)
			continue
		}
		if !bytes.Equal(buf, want) {
			c.violf("array content mismatch at %d", lba)
		}
	}
	if c.plan.skipDegradedProof || !c.arr.Healthy() {
		return
	}
	// Parity proof: drop one member and re-read everything through
	// reconstruction. Wrong parity anywhere in the footprint shows up
	// here as a mismatch.
	c.proofFailed = c.rng.Intn(len(c.members))
	c.arr.FailDisk(c.proofFailed)
	for lba := int64(0); lba < c.o.Footprint; lba++ {
		want := c.oracle[lba]
		if want == nil {
			want = zero
		}
		if _, err := c.arr.ReadPages(0, lba, 1, buf); err != nil {
			c.violf("degraded read %d: %v", lba, err)
			continue
		}
		if !bytes.Equal(buf, want) {
			c.violf("degraded reconstruction mismatch at %d", lba)
		}
	}
}

// fingerprint digests the oracle contents and the schedule tallies; two
// runs of the same seed must agree bit for bit.
func (c *chaosRig) fingerprint() uint64 {
	h := fnv.New64a()
	lbas := make([]int64, 0, len(c.oracle))
	for lba := range c.oracle {
		lbas = append(lbas, lba)
	}
	sort.Slice(lbas, func(i, j int) bool { return lbas[i] < lbas[j] })
	var w [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(w[:], v)
		h.Write(w[:])
	}
	for _, lba := range lbas {
		put(uint64(lba))
		h.Write(c.oracle[lba])
	}
	put(uint64(c.res.Crashes))
	put(uint64(c.res.Detected))
	put(uint64(c.res.Repaired))
	put(uint64(c.res.StaleFolds))
	put(uint64(c.res.Unrecoverable))
	put(uint64(c.res.Failovers))
	put(uint64(c.res.Reattaches))
	put(uint64(c.res.SpareAttaches))
	put(uint64(c.res.RebuildRows))
	put(c.res.Spans)
	put(c.res.TraceDigest)
	put(uint64(len(c.res.Violations)))
	return h.Sum64()
}

// cacheDataPage returns a random SSD page inside the cache data partition.
func (c *chaosRig) cacheDataPage() int64 {
	return c.cfg.MetaStart + c.cfg.MetaPages + int64(c.rng.Uint64n(uint64(c.o.CachePages)))
}

// corruptSomeCachePage flips one bit in a cache data page that actually
// holds data, scanning the partition from a random start so short runs
// with sparse caches still land their corruption. Returns false only if
// the cache data partition is completely empty.
func (c *chaosRig) corruptSomeCachePage() bool {
	base := c.cfg.MetaStart + c.cfg.MetaPages
	start := int64(c.rng.Uint64n(uint64(c.o.CachePages)))
	bit := uint(c.rng.Intn(blockdev.PageSize * 8))
	for j := int64(0); j < c.o.CachePages; j++ {
		if c.inj.Store().CorruptPage(base+(start+j)%c.o.CachePages, bit) {
			return true
		}
	}
	return false
}

// memberStore returns disk i's backing MemStore for corruption injection.
func (c *chaosRig) memberStore(i int) *blockdev.MemStore {
	return c.members[i].Store()
}

// chaosProfile scales the probabilistic fault rates inversely with the
// op count so the expected number of injected faults stays constant:
// a short -ops run at the default rates could finish fault-free and
// trip the "no media errors surfaced" assertions spuriously. The cap
// keeps rates well under the bounded-retry resilience — at much higher
// rates, back-to-back transient faults outlast the retries and single
// rows collect latent faults faster than repair can clear them.
func (c *chaosRig) chaosProfile() blockdev.FaultProfile {
	scale := 500 / float64(c.o.Ops)
	return blockdev.FaultProfile{
		TransientProb: math.Min(0.05, 0.01*scale),
		LatentProb:    math.Min(0.05, 0.005*scale),
	}
}

var chaosPlans = []*chaosPlan{
	{
		// Probabilistic latent + transient media errors on the SSD cache:
		// exercises ssdRead retry, recoverHit fallback, and row healing.
		kind: "ssd-latent",
		setup: func(c *chaosRig) {
			c.inj.SetProfile(c.chaosProfile())
		},
		finish: func(c *chaosRig) {
			if c.inj.MediaErrors() == 0 {
				// A short, read-light schedule can dodge the probabilistic
				// profile entirely. Backstop: mark every cache data page
				// latent-bad and re-read the footprint — the first cache
				// hit must trip the media fallback (and heal itself), so a
				// populated cache cannot stay error-free.
				base := c.cfg.MetaStart + c.cfg.MetaPages
				for p := int64(0); p < c.o.CachePages; p++ {
					c.inj.InjectBadPage(base + p)
				}
				for _, lba := range c.written {
					c.doRead(lba)
					if c.inj.MediaErrors() > 0 {
						break
					}
				}
			}
			if c.inj.MediaErrors() == 0 {
				c.violf("ssd-latent: no media errors surfaced")
			}
		},
	},
	{
		// Detectable bit-rot on SSD cache pages (checksummed): reads must
		// fall back to RAID and heal, never serve the rotten bytes.
		kind: "ssd-rot",
		everyOp: func(c *chaosRig, i int) {
			if i%13 == 4 {
				if c.corruptSomeCachePage() {
					c.flips++
				}
			}
		},
		finish: func(c *chaosRig) {
			if c.flips == 0 {
				c.violf("ssd-rot: no corruptions landed")
			}
		},
	},
	{
		// Probabilistic latent + transient faults on two RAID members:
		// the read path must repair single pages from redundancy without
		// declaring the member failed.
		kind: "member-latent",
		setup: func(c *chaosRig) {
			// Latent (erasure-like) faults go to one member only: RAID-5
			// tolerates a single erasure per row, and two latent-faulted
			// members will eventually land persistent bad pages in the
			// same row — a genuine double failure the dedicated
			// "unrecoverable" plan covers deliberately. The second member
			// gets transient faults only, which bounded retries absorb.
			p := c.chaosProfile()
			c.arr.Injector(1).SetProfile(p)
			c.arr.Injector(3).SetProfile(blockdev.FaultProfile{TransientProb: p.TransientProb})
		},
		finish: func(c *chaosRig) {
			for _, d := range []int{1, 3} {
				inj := c.arr.Injector(d)
				// The degraded proof fail-stops one disk on purpose; only a
				// failure NOT caused by the proof means media errors
				// escalated to fail-stop.
				if inj.Failed() && d != c.proofFailed {
					c.violf("member-latent: disk %d was declared failed by media errors", d)
				}
				if c.members[d].Reads() == 0 {
					c.violf("member-latent: disk %d served no reads", d)
				}
			}
			if c.arr.Injector(1).MediaErrors()+c.arr.Injector(3).MediaErrors() == 0 {
				c.violf("member-latent: no media errors surfaced")
			}
		},
	},
	{
		// Detectable bit-rot on member data pages: read-repair or the
		// patrol scrub must reconstruct them from parity.
		kind: "member-rot",
		everyOp: func(c *chaosRig, i int) {
			if i%17 == 6 {
				lba, ok := c.writtenLBA()
				if !ok {
					return
				}
				bit := uint(c.rng.Intn(blockdev.PageSize * 8))
				disk, page := c.arr.DataLocation(lba)
				// RAID-5 tolerates one erasure per row: a second fault in
				// a not-yet-repaired row would be genuinely unrecoverable
				// (the dedicated plan covers that case deliberately).
				if c.flippedRows[page] {
					return
				}
				if c.memberStore(disk).CorruptPage(page, bit) {
					c.flips++
					c.flippedRows[page] = true
				}
			}
		},
		finish: func(c *chaosRig) {
			if c.flips == 0 {
				c.violf("member-rot: no corruptions landed")
			}
			if c.lastScrub.MediaRepaired == 0 && c.arr.Stats().ReadRepairs == 0 {
				c.violf("member-rot: nothing was repaired despite %d corruptions", c.flips)
			}
		},
	},
	{
		// Silent bit-flips on parity pages: invisible to normal reads,
		// only the scrub's parity verification can find and fix them —
		// proven end to end by the degraded re-read afterwards.
		kind: "parity-rot",
		everyOp: func(c *chaosRig, i int) {
			if i%16 == 7 {
				lba, ok := c.writtenLBA()
				if !ok {
					return
				}
				bit := uint(c.rng.Intn(blockdev.PageSize * 8))
				pDisk, _, page := c.arr.ParityLocation(lba)
				if c.memberStore(pDisk).CorruptPageSilently(page, bit) {
					c.flips++
				}
			}
		},
		finish: func(c *chaosRig) {
			if c.flips == 0 {
				c.violf("parity-rot: no corruptions landed")
			}
			if c.lastScrub.ParityFixed == 0 {
				c.violf("parity-rot: scrub fixed no parity despite %d silent flips", c.flips)
			}
		},
	},
	{
		// Torn-write power losses: the crash point fires mid-write and
		// tears the in-flight page; recovery must come back consistent
		// every time, with the interrupted write atomically old or new.
		kind:       "crash-torn",
		rearmCrash: true,
		setup:      func(c *chaosRig) { c.armNext() },
		finish: func(c *chaosRig) {
			if c.res.Crashes == 0 {
				c.violf("crash-torn: no crash fired")
			}
		},
	},
	{
		// Patrol scrub racing the live workload (stale rows, cleaner
		// activity) while both tiers take targeted faults.
		kind: "scrub-race",
		everyOp: func(c *chaosRig, i int) {
			if i%11 == 3 {
				c.inj.InjectTransient(c.cacheDataPage(), 1)
			}
			if i%17 == 5 {
				if lba, ok := c.writtenLBA(); ok {
					disk, page := c.arr.DataLocation(lba)
					if !c.flippedRows[page] &&
						c.memberStore(disk).CorruptPage(page, uint(c.rng.Intn(blockdev.PageSize*8))) {
						c.flips++
						c.flippedRows[page] = true
					}
				}
			}
			if i%40 == 25 {
				_, rep, err := c.arr.Scrub(0)
				if err != nil {
					c.violf("mid-run scrub: %v", err)
					return
				}
				c.res.Repaired += rep.MediaRepaired + rep.ParityFixed
				if len(rep.Unrecoverable) > 0 {
					c.violf("mid-run scrub reported unrecoverable rows %v", rep.Unrecoverable)
				}
			}
		},
	},
	{
		// Fail-stop disk loss mid-workload, then flush (parity update
		// precedes rebuild, §III-E) and rebuild onto a fresh member.
		kind: "fail-rebuild",
		everyOp: func(c *chaosRig, i int) {
			switch i {
			case c.o.Ops / 3:
				c.arr.FailDisk(1)
			case 2 * c.o.Ops / 3:
				if _, err := c.kdd.Flush(0); err != nil {
					c.violf("pre-rebuild flush: %v", err)
					return
				}
				fresh := blockdev.NewNullDataDevice("d1r", chaosDiskPages)
				if _, err := c.arr.ReplaceDisk(0, 1, fresh); err != nil {
					c.violf("rebuild: %v", err)
				}
			}
		},
		finish: func(c *chaosRig) {
			if len(c.arr.FailedDisks()) != 0 && c.arr.Healthy() {
				c.violf("fail-rebuild: inconsistent failure state")
			}
		},
	},
	{
		// Redundancy exhausted on purpose: both the data page and the
		// parity page of one row go bad. The array must refuse loudly
		// (ErrUnrecoverable) — never serve zeros — and the scrub must
		// report the row instead of patching it.
		kind:                "unrecoverable",
		expectUnrecoverable: true,
		skipDegradedProof:   true,
		finish: func(c *chaosRig) {
			lba := c.o.Footprint / 2
			if _, ok := c.oracle[lba]; !ok {
				// Extremely unlikely with the default footprint, but keep
				// the probe honest: pick the first written lba.
				for l := int64(0); l < c.o.Footprint; l++ {
					if _, ok := c.oracle[l]; ok {
						lba = l
						break
					}
				}
			}
			dDisk, dPage := c.arr.DataLocation(lba)
			pDisk, _, pPage := c.arr.ParityLocation(lba)
			c.arr.Injector(dDisk).InjectBadPage(dPage)
			c.arr.Injector(pDisk).InjectBadPage(pPage)
			buf := make([]byte, blockdev.PageSize)
			if _, err := c.arr.ReadPages(0, lba, 1, buf); !errors.Is(err, raid.ErrUnrecoverable) {
				c.violf("double fault read %d: want ErrUnrecoverable, got %v", lba, err)
			}
			_, rep, err := c.arr.Scrub(0)
			if err != nil {
				c.violf("scrub with double fault: %v", err)
				return
			}
			found := false
			for _, row := range rep.Unrecoverable {
				if row == dPage {
					found = true
				}
			}
			if !found {
				c.violf("scrub did not report row %d unrecoverable", dPage)
			}
			c.res.Unrecoverable += len(rep.Unrecoverable)
			// Clear the marks (the stored bytes were never altered) and
			// confirm the array is whole again.
			c.arr.Injector(dDisk).ClearBadPage(dPage)
			c.arr.Injector(pDisk).ClearBadPage(pPage)
			if _, rep, err = c.arr.Scrub(0); err != nil || len(rep.Unrecoverable) != 0 {
				c.violf("post-clear scrub: err=%v unrecoverable=%v", err, rep.Unrecoverable)
			}
			if _, err := c.arr.ReadPages(0, lba, 1, buf); err != nil {
				c.violf("post-clear read %d: %v", lba, err)
			} else if want := c.oracle[lba]; want != nil && !bytes.Equal(buf, want) {
				c.violf("post-clear content mismatch at %d", lba)
			}
		},
	},
	{
		// Whole-SSD fail-stop mid-trace: the cache must fold its stale
		// parity, drop to pass-through, and serve every remaining request
		// from the RAID without a single user-visible error.
		kind: "ssd-kill",
		everyOp: func(c *chaosRig, i int) {
			if i == c.o.Ops/2 {
				c.inj.Fail()
			}
		},
		finish: func(c *chaosRig) {
			if h := c.kdd.Health(); h != core.HealthBypass {
				c.violf("ssd-kill: health %v, want bypass", h)
			}
			ks := c.kdd.Stats()
			if ks.Failovers == 0 {
				c.violf("ssd-kill: failover never engaged")
			}
			if ks.PassReads+ks.PassWrites == 0 {
				c.violf("ssd-kill: no pass-through traffic after the kill")
			}
		},
	},
	{
		// SSD dies a handful of device ops into a forced cleaning pass, so
		// the failure lands deep inside a multi-I/O internal path (row
		// cleaning, DEZ commit) rather than neatly between requests.
		kind: "ssd-kill-clean",
		everyOp: func(c *chaosRig, i int) {
			if i == c.o.Ops/2 {
				c.inj.FailAfterOps = c.inj.Ops() + 5
				if _, err := c.kdd.Clean(0, true); err != nil {
					c.violf("ssd-kill-clean: clean surfaced %v", err)
				}
			}
		},
		finish: func(c *chaosRig) {
			if h := c.kdd.Health(); h != core.HealthBypass {
				c.violf("ssd-kill-clean: health %v, want bypass", h)
			}
			if c.kdd.Stats().Failovers == 0 {
				c.violf("ssd-kill-clean: failover never engaged")
			}
		},
	},
	{
		// Media-error storm trips the sliding-window breaker into Degraded
		// pass-through; once the storm passes and the bad-page marks are
		// cleared, a half-open probe re-admits traffic and the cache comes
		// back through Rebuilding to Normal. The breaker knobs scale with
		// the schedule length so that the trip, at least one failed probe,
		// and the recovering probe all fit inside even a short run (the
		// storm occupies ops/5..3*ops/5; defaults sized for 1000-op runs
		// would push the first probe past the end of a 200-op schedule).
		kind: "ssd-breaker",
		cfg: func(cfg *core.Config, o ChaosOpts) {
			cfg.BreakerWindow = max(4, o.Ops/25)
			cfg.BreakerThreshold = max(2, cfg.BreakerWindow/2)
			cfg.BreakerBackoff = int64(max(2, o.Ops/50))
			cfg.RebuildProbation = 2
		},
		everyOp: func(c *chaosRig, i int) {
			switch i {
			case c.o.Ops / 5:
				c.inj.SetProfile(blockdev.FaultProfile{LatentProb: 1})
			case 3 * c.o.Ops / 5:
				c.inj.SetProfile(blockdev.FaultProfile{})
				for p := int64(0); p < c.inj.Pages(); p++ {
					c.inj.ClearBadPage(p)
				}
			}
		},
		finish: func(c *chaosRig) {
			ks := c.kdd.Stats()
			if ks.BreakerTrips == 0 {
				c.violf("ssd-breaker: breaker never tripped")
			}
			if ks.BreakerProbes == 0 {
				c.violf("ssd-breaker: no probes ran")
			}
			if h := c.kdd.Health(); h != core.HealthNormal && h != core.HealthRebuilding {
				c.violf("ssd-breaker: health %v after the storm cleared", h)
			}
		},
	},
	{
		// Kill the SSD outright, then repair the medium and re-attach the
		// cache mid-trace; it must warm back up and then survive a second
		// kill (reattach-then-rekill).
		kind: "ssd-reattach",
		everyOp: func(c *chaosRig, i int) {
			switch i {
			case c.o.Ops / 4:
				c.inj.Fail()
			case c.o.Ops / 2:
				if h := c.kdd.Health(); h != core.HealthBypass {
					c.violf("ssd-reattach: health %v before reattach, want bypass", h)
				}
				c.inj.Repair(blockdev.NewNullDataDevice("ssd", 64+c.o.CachePages+64))
				if err := c.kdd.Reattach(0, nil); err != nil {
					c.violf("ssd-reattach: %v", err)
				}
			case 3 * c.o.Ops / 4:
				c.inj.Fail()
			}
		},
		finish: func(c *chaosRig) {
			ks := c.kdd.Stats()
			if ks.Reattaches != 1 {
				c.violf("ssd-reattach: %d reattaches, want 1", ks.Reattaches)
			}
			if ks.Failovers < 2 {
				c.violf("ssd-reattach: %d failovers, want 2 (kill + rekill)", ks.Failovers)
			}
			if h := c.kdd.Health(); h != core.HealthBypass {
				c.violf("ssd-reattach: health %v after rekill, want bypass", h)
			}
		},
	},
	{
		// Fail-stop a member with a hot spare parked: the pump must fold
		// the pending deltas (§III-E), attach the spare, and pace the
		// rebuild against the live workload until full redundancy returns
		// — all without a single wrong byte served from the half-rebuilt
		// window.
		kind:   "disk-kill",
		spares: 1,
		everyOp: func(c *chaosRig, i int) {
			if i == c.o.Ops/3 {
				c.arr.FailDisk(1)
			}
		},
		finish: func(c *chaosRig) {
			attaches, _, rows, _ := c.pumpRebuildStats()
			if attaches == 0 {
				c.violf("disk-kill: the pump never attached the spare")
			}
			if rows == 0 {
				c.violf("disk-kill: no rebuild rows were pumped under foreground load")
			}
			if c.arr.Stats().RebuildsCompleted == 0 {
				c.violf("disk-kill: rebuild never completed")
			}
			// The degraded proof runs only on a fully redundant array, so
			// proofFailed doubles as the post-rebuild health witness.
			if c.proofFailed < 0 {
				c.violf("disk-kill: array not fully redundant after verify")
			}
			if lost := c.arr.LostRows(); len(lost) != 0 {
				c.violf("disk-kill: %d rows lost during a single-failure rebuild", len(lost))
			}
		},
	},
	{
		// Power losses landing inside the rebuild window: the watermark is
		// volatile, so every recovery must resume from the NVRAM checkpoint
		// — restarting from zero is merely slow, but forgetting the window
		// would serve the un-rebuilt region as zeros.
		kind:       "rebuild-crash",
		spares:     1,
		rearmCrash: true,
		everyOp: func(c *chaosRig, i int) {
			switch i {
			case c.o.Ops / 3:
				c.arr.FailDisk(1)
			case c.o.Ops/3 + 5:
				// Arm once the window is open; the 1024-row rebuild spans
				// >120 ops, so this crash deterministically lands inside it.
				if !c.inj.Crashed() {
					c.armNext()
				}
			}
		},
		finish: func(c *chaosRig) {
			if c.res.Crashes == 0 {
				c.violf("rebuild-crash: no crash fired")
			}
			if c.rebuildResumes == 0 {
				c.violf("rebuild-crash: no recovery resumed a rebuild from the checkpoint")
			}
			if c.arr.Stats().RebuildsCompleted == 0 {
				c.violf("rebuild-crash: rebuild never completed across the crashes")
			}
			if c.proofFailed < 0 {
				c.violf("rebuild-crash: array not fully redundant after verify")
			}
			if lost := c.arr.LostRows(); len(lost) != 0 {
				c.violf("rebuild-crash: %d rows lost", len(lost))
			}
		},
	},
	{
		// RAID-6 with two hot spares: a second member dies while the first
		// rebuild window is still open. Double redundancy keeps every row
		// reconstructable (two erasures above the watermark); the pump
		// finishes the first rebuild, then attaches the second spare.
		kind:   "double-kill",
		level:  raid.Level6,
		disks:  6,
		spares: 2,
		everyOp: func(c *chaosRig, i int) {
			switch i {
			case c.o.Ops / 4:
				c.arr.FailDisk(1)
			case c.o.Ops / 3:
				c.secondKillInWindow = c.arr.RebuildActive()
				c.arr.FailDisk(3)
			}
		},
		finish: func(c *chaosRig) {
			if !c.secondKillInWindow {
				c.violf("double-kill: second failure missed the rebuild window")
			}
			attaches, _, _, _ := c.pumpRebuildStats()
			if attaches < 2 {
				c.violf("double-kill: %d spare attaches, want 2", attaches)
			}
			if n := c.arr.Stats().RebuildsCompleted; n < 2 {
				c.violf("double-kill: %d rebuilds completed, want 2", n)
			}
			if c.proofFailed < 0 {
				c.violf("double-kill: array not fully redundant after verify")
			}
			if lost := c.arr.LostRows(); len(lost) != 0 {
				c.violf("double-kill: %d rows lost despite RAID-6 redundancy", len(lost))
			}
		},
	},
	{
		// One lane of the sharded plane loses its SSD slice mid-batch:
		// that lane alone folds to pass-through while the other seven
		// keep serving from cache (chaoslane.go has the full driver).
		kind:   "ssd-lane-kill",
		custom: runLaneKillSchedule,
	},
}
