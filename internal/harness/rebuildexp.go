package harness

import (
	"fmt"
	"strings"

	"kddcache/internal/sim"
	"kddcache/internal/stats"
	"kddcache/internal/trace"
	"kddcache/internal/workload"
)

// RebuildImpact measures the rebuild-window tension behind §III-E: how
// fast the array regains full redundancy after a member fail-stop versus
// what the reconstruction traffic does to foreground tail latency. The
// KDD stack parks a hot spare and lets the engine's token-bucket pump
// pace the rebuild between requests (RebuildRateMax rows when the disks
// were idle, RebuildRateMin under foreground RAID pressure); the Nossd
// baseline has no engine to pace it and drives Array.RebuildStep at the
// fixed max rate after every request. One third into the trace a member
// dies; the table compares per-phase p99 response times, the virtual time
// from failure to a fully redundant array, and the rows reconstructed
// while foreground requests were in flight.
func RebuildImpact(scale float64) (string, error) {
	spec := workload.Fin2.Scale(scale)
	spec.MeanIOPS = 100
	tr := workload.Synthesize(spec)
	cachePages := roundWays(int64(0.25*float64(spec.UniqueTotal)), 256)
	diskPages := spec.UniqueTotal/4 + 8192
	diskPages -= diskPages % 16
	failAt := len(tr.Requests) / 3

	type impactRow struct {
		name              string
		healthyP99, rbP99 float64 // per-phase p99 response (ms)
		rebuild           sim.Time
		fgRows, drainRows int64
	}
	kinds := []PolicyKind{PolicyNossd, PolicyKDD}
	rows, err := fanOut(len(kinds), func(ki int) (impactRow, error) {
		pk := kinds[ki]
		o := StackOpts{
			Policy: pk, DeltaMean: 0.25,
			CachePages: cachePages, DiskPages: diskPages,
			Timing: true, Seed: spec.Seed,
		}
		if pk == PolicyKDD {
			o.Spares = 1
		}
		st, err := Build(o)
		if err != nil {
			return impactRow{}, err
		}
		healthy := stats.NewHistogram(1 << 14)
		during := stats.NewHistogram(1 << 14)
		var failTime, redundantAt, end sim.Time
		rebuilt := false
		for i, req := range tr.Requests {
			if i == failAt {
				st.Array.FailDisk(2)
				failTime = req.Time
				if pk != PolicyKDD {
					// No cache engine: repair any stale parity first (a
					// no-op for Nossd, kept for policy generality) and open
					// the rebuild window directly onto a fresh member.
					if _, err := st.Policy.Flush(req.Time); err != nil {
						return impactRow{}, fmt.Errorf("%s pre-rebuild flush: %w", pk, err)
					}
					if _, err := st.Array.StartRebuild(req.Time, 2, freshMember(st, diskPages)); err != nil {
						return impactRow{}, fmt.Errorf("%s start rebuild: %w", pk, err)
					}
				}
			}
			done := req.Time
			for p := 0; p < req.Pages; p++ {
				var c sim.Time
				var err error
				if req.Op == trace.Read {
					c, err = st.Policy.Read(req.Time, req.LBA+int64(p), nil)
				} else {
					c, err = st.Policy.Write(req.Time, req.LBA+int64(p), nil)
				}
				if err != nil {
					return impactRow{}, fmt.Errorf("%s %s lba %d: %w", pk, req.Op, req.LBA+int64(p), err)
				}
				if c > done {
					done = c
				}
			}
			if pk != PolicyKDD && i >= failAt && st.Array.RebuildActive() {
				// Fixed-rate driver for the cache-less baseline.
				c, _, _, err := st.Array.RebuildStep(done, 8)
				if err != nil {
					return impactRow{}, fmt.Errorf("%s rebuild step: %w", pk, err)
				}
				if c > done {
					done = c
				}
			}
			switch {
			case i < failAt:
				healthy.Observe(int64(done - req.Time))
			case !rebuilt:
				during.Observe(int64(done - req.Time))
			}
			if done > end {
				end = done
			}
			if i >= failAt && !rebuilt && !st.Array.RebuildActive() && len(st.Array.FailedDisks()) == 0 {
				rebuilt = true
				redundantAt = done
			}
		}
		fgRows := st.Array.Stats().RebuildRows
		if !rebuilt {
			// The trace ended inside the window (or, for a very short
			// trace, before the pump could attach the spare): drain the
			// rebuild at full speed and charge the remainder to the clock.
			if _, err := st.Policy.Flush(end); err != nil {
				return impactRow{}, fmt.Errorf("%s drain flush: %w", pk, err)
			}
			if !st.Array.RebuildActive() {
				if _, _, err := st.Array.StartSpareRebuild(end); err != nil {
					return impactRow{}, fmt.Errorf("%s drain spare attach: %w", pk, err)
				}
			}
			for st.Array.RebuildActive() {
				c, _, _, err := st.Array.RebuildStep(end, 1024)
				if err != nil {
					return impactRow{}, fmt.Errorf("%s drain rebuild: %w", pk, err)
				}
				end = c
			}
			rebuilt = true
			redundantAt = end
		}
		return impactRow{
			name:       st.Policy.Name(),
			healthyP99: float64(healthy.Percentile(99)) / float64(sim.Millisecond),
			rbP99:      float64(during.Percentile(99)) / float64(sim.Millisecond),
			rebuild:    redundantAt - failTime,
			fgRows:     fgRows,
			drainRows:  st.Array.Stats().RebuildRows - fgRows,
		}, nil
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("== Rebuild impact: time to full redundancy vs foreground tail latency ==\n")
	fmt.Fprintf(&b, "%-8s %16s %16s %16s %10s %11s\n",
		"policy", "healthy p99 (ms)", "rebuild p99 (ms)", "rebuild time", "fg rows", "drain rows")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-8s %16.2f %16.2f %16v %10d %11d\n",
			row.name, row.healthyP99, row.rbP99, row.rebuild, row.fgRows, row.drainRows)
	}
	b.WriteString("\nThe paced rebuild hides reconstruction behind idle gaps; the cache absorbs\nthe reads that would otherwise queue behind it.\n")
	return b.String(), nil
}
