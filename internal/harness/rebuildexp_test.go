package harness

import (
	"strings"
	"testing"
)

// TestRebuildImpact runs the rebuild-impact experiment at a tiny scale:
// both policies must reach full redundancy (a rebuild time is printed,
// not "-"), and the table must carry one row per compared policy.
func TestRebuildImpact(t *testing.T) {
	out, err := RebuildImpact(0.002)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Nossd", "KDD-25%", "rebuild time"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) == 0 || (f[0] != "Nossd" && f[0] != "KDD-25%") {
			continue
		}
		if strings.Contains(line, " - ") {
			t.Fatalf("policy %s never reached full redundancy:\n%s", f[0], out)
		}
	}
}

// TestRebuildImpactDeterministic: the experiment fans simulations over the
// worker pool; its table must be byte-identical at any width.
func TestRebuildImpactDeterministic(t *testing.T) {
	SetParallelism(1)
	a, errA := RebuildImpact(0.002)
	SetParallelism(4)
	b, errB := RebuildImpact(0.002)
	SetParallelism(0)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if a != b {
		t.Fatalf("serial and parallel tables diverge:\n--- serial\n%s--- parallel\n%s", a, b)
	}
}
