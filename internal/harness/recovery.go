package harness

import (
	"fmt"
	"strings"

	"kddcache/internal/core"
	"kddcache/internal/sim"
	"kddcache/internal/workload"
)

// RecoveryTradeoff quantifies §III-B's sizing tension for the metadata
// partition: "configuring the persistent log with more metadata pages can
// reduce the cleaning cost at the expense of crash recovery performance."
// For each partition size it replays a workload on the timing stack,
// crashes, and measures both the metadata GC traffic and the virtual time
// the recovery scan takes (reading every live log page from flash).
func RecoveryTradeoff(scale float64) (string, error) {
	spec := workload.Fin1.Scale(scale)
	tr := workload.Synthesize(spec)
	cachePages := roundWays(int64(0.2*float64(spec.UniqueTotal)), 256)
	diskPages := spec.UniqueTotal/4 + 8192
	diskPages -= diskPages % 16

	type tradeoffPoint struct {
		pagesWritten int64
		gcPages      int64
		livePages    int64
		recovery     sim.Time
	}
	fracs := []float64{0.0039, 0.0059, 0.0098, 0.0197, 0.0394}
	points, err := fanOut(len(fracs), func(i int) (tradeoffPoint, error) {
		mf := fracs[i]
		st, err := Build(StackOpts{
			Policy: PolicyKDD, DeltaMean: 0.25,
			CachePages: cachePages, MetaFrac: mf,
			DiskPages: diskPages, Timing: true, SSDData: true, Seed: spec.Seed,
		})
		if err != nil {
			return tradeoffPoint{}, err
		}
		r, err := RunTrace(st, tr)
		if err != nil {
			return tradeoffPoint{}, fmt.Errorf("recovery tradeoff mf=%.4f: %w", mf, err)
		}
		k := st.Policy.(*core.KDD)
		ls := k.Log().Stats()

		// Crash at the end of the run; measure the recovery scan.
		_, done, err := core.Restore(st.KDDConfig, r.Duration,
			k.Log().Counters(), k.Log().BufferedEntries(), k.Staging())
		if err != nil {
			return tradeoffPoint{}, fmt.Errorf("restore mf=%.4f: %w", mf, err)
		}
		return tradeoffPoint{
			pagesWritten: ls.PagesWritten,
			gcPages:      ls.GCPageEquivalent(),
			livePages:    k.Log().LivePages(),
			recovery:     done - r.Duration,
		}, nil
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("== Recovery tradeoff: metadata partition size vs GC cost and crash-recovery time ==\n")
	fmt.Fprintf(&b, "%-12s %12s %12s %14s %16s\n",
		"partition", "meta pages", "GC pages", "live log pages", "recovery time")
	for i, mf := range fracs {
		p := points[i]
		fmt.Fprintf(&b, "%11.2f%% %12d %12d %14d %16v\n",
			mf*100, p.pagesWritten, p.gcPages, p.livePages, p.recovery)
	}
	b.WriteString("\nBigger partitions cut GC relogging but lengthen the head-to-tail recovery scan.\n")
	return b.String(), nil
}

// DegradedPerformance measures mean response time in three array states —
// healthy, degraded (one disk lost), and during rebuild — for WT and KDD.
// The paper motivates KDD partly by this cost: "user requests will be
// adversely affected by the re-synchronization of RAID storage" (§II-B).
func DegradedPerformance(scale float64) (string, error) {
	spec := workload.Fin2.Scale(scale)
	spec.MeanIOPS = 100
	tr := workload.Synthesize(spec)
	cachePages := roundWays(int64(0.25*float64(spec.UniqueTotal)), 256)
	diskPages := spec.UniqueTotal/4 + 8192
	diskPages -= diskPages % 16

	// Split the trace into three equal phases.
	third := len(tr.Requests) / 3

	type degradedRow struct {
		name                    string
		healthy, degraded, post float64
	}
	kinds := []PolicyKind{PolicyWT, PolicyKDD}
	rows, err := fanOut(len(kinds), func(i int) (degradedRow, error) {
		pk := kinds[i]
		st, err := Build(StackOpts{
			Policy: pk, DeltaMean: 0.25,
			CachePages: cachePages, DiskPages: diskPages,
			Timing: true, Seed: spec.Seed,
		})
		if err != nil {
			return degradedRow{}, err
		}
		phase := func(reqs int, from int) (float64, sim.Time, error) {
			cp := *tr
			cp.Requests = tr.Requests[from : from+reqs]
			r, err := RunTrace(st, &cp)
			if err != nil {
				return 0, 0, err
			}
			return r.MeanResponseMs(), r.Duration, nil
		}
		healthy, end1, err := phase(third, 0)
		if err != nil {
			return degradedRow{}, err
		}
		st.Array.FailDisk(2)
		if _, err := st.Policy.Flush(end1); err != nil {
			return degradedRow{}, err
		}
		degraded, end2, err := phase(third, third)
		if err != nil {
			return degradedRow{}, err
		}
		// Rebuild onto a fresh disk, then measure the final phase.
		fresh := freshMember(st, diskPages)
		if _, err := st.Array.ReplaceDisk(end2, 2, fresh); err != nil {
			return degradedRow{}, fmt.Errorf("%s rebuild: %w", pk, err)
		}
		post, _, err := phase(len(tr.Requests)-2*third, 2*third)
		if err != nil {
			return degradedRow{}, err
		}
		return degradedRow{name: st.Policy.Name(), healthy: healthy, degraded: degraded, post: post}, nil
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("== Degraded-mode performance: mean response time (ms) by array state ==\n")
	fmt.Fprintf(&b, "%-8s %12s %12s %14s\n", "policy", "healthy", "degraded", "post-rebuild")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-8s %12.2f %12.2f %14.2f\n", row.name, row.healthy, row.degraded, row.post)
	}
	b.WriteString("\nDegraded reads pay full-row reconstruction; caching absorbs part of the hit.\n")
	return b.String(), nil
}
