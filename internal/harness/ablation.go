package harness

import (
	"fmt"
	"strings"

	"kddcache/internal/stats"
	"kddcache/internal/trace"
	"kddcache/internal/workload"
)

// Ablation benches for the design decisions DESIGN.md calls out. Each
// config point is an independent simulation, fanned over the worker pool;
// tables are assembled in config order after the pool drains.

// AblationPartition compares KDD's dynamic DAZ/DEZ mixing against a fixed
// partition reserving a share of the sets for deltas (§III-B argues the
// fixed split is hard to size; dynamic adapts to the workload).
func AblationPartition(scale float64) (string, error) {
	spec := workload.Fin1.Scale(scale)
	tr := workload.Synthesize(spec)
	cachePages := roundWays(int64(0.15*float64(spec.UniqueTotal)), 256)
	nsets := int(cachePages / 256)

	all := []struct {
		label   string
		dezSets int
	}{
		{"dynamic", 0},
		{"fixed-6%", nsets * 6 / 100},
		{"fixed-12%", nsets * 12 / 100},
		{"fixed-25%", nsets / 4},
	}
	// Tiny scales can round a fixed share down to zero sets, which would
	// alias the dynamic config; skip those points.
	configs := all[:0]
	for _, c := range all {
		if c.dezSets == 0 && c.label != "dynamic" {
			continue
		}
		configs = append(configs, c)
	}
	results, err := fanOut(len(configs), func(i int) (*Result, error) {
		r, err := runSim(spec, tr, StackOpts{
			Policy: PolicyKDD, DeltaMean: 0.25,
			CachePages: cachePages, FixedDEZSets: configs[i].dezSets,
		})
		if err != nil {
			return nil, fmt.Errorf("ablation partition %s: %w", configs[i].label, err)
		}
		return r, nil
	})
	if err != nil {
		return "", err
	}
	hit := stats.Series{Label: "hit ratio"}
	wr := stats.Series{Label: "SSD writes(Kpg)"}
	var labels []string
	for i, c := range configs {
		r := results[i]
		hit.X = append(hit.X, float64(i))
		hit.Y = append(hit.Y, r.Cache.HitRatio())
		wr.X = append(wr.X, float64(i))
		wr.Y = append(wr.Y, float64(r.Cache.SSDWrites())/1000)
		labels = append(labels, c.label)
	}
	series := []stats.Series{hit, wr}
	var b strings.Builder
	b.WriteString("== Ablation: dynamic vs fixed DAZ/DEZ partition (Fin1, KDD-25%) ==\n")
	fmt.Fprintf(&b, "configs: %s\n", strings.Join(labels, ", "))
	b.WriteString(stats.Table("partition ablation", "config#", series))
	return b.String(), nil
}

// AblationReclaim compares reclaim scheme 2 (drop old pages — the paper's
// choice) against scheme 1 (re-materialise the latest version as Clean),
// quantifying §III-D's "marginal benefit at the expense of more cache
// writes".
func AblationReclaim(scale float64) (string, error) {
	spec := workload.Fin1.Scale(scale)
	tr := workload.Synthesize(spec)
	cachePages := roundWays(int64(0.15*float64(spec.UniqueTotal)), 256)

	configs := []struct {
		label       string
		materialise bool
	}{{"2:drop", false}, {"1:materialise", true}}
	results, err := fanOut(len(configs), func(i int) (*Result, error) {
		r, err := runSim(spec, tr, StackOpts{
			Policy: PolicyKDD, DeltaMean: 0.25,
			CachePages: cachePages, ReclaimMaterialize: configs[i].materialise,
		})
		if err != nil {
			return nil, fmt.Errorf("ablation reclaim %s: %w", configs[i].label, err)
		}
		return r, nil
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("== Ablation: reclaim scheme 2 (drop) vs scheme 1 (materialise) — Fin1, KDD-25% ==\n")
	fmt.Fprintf(&b, "%-14s %12s %16s %12s\n", "scheme", "hit ratio", "SSD writes(Kpg)", "reclaims")
	for i, c := range configs {
		r := results[i]
		fmt.Fprintf(&b, "%-14s %12.4f %16.1f %12d\n",
			c.label, r.Cache.HitRatio(), float64(r.Cache.SSDWrites())/1000, r.Cache.Reclaims)
	}
	return b.String(), nil
}

// AblationMetaLog isolates the circular metadata log's contribution:
// KDD with the log, KDD with metadata persistence disabled (lower bound),
// and LeavO's uncoalesced per-update persistence (upper bound).
func AblationMetaLog(scale float64) (string, error) {
	spec := workload.Fin1.Scale(scale)
	tr := workload.Synthesize(spec)
	cachePages := roundWays(int64(0.15*float64(spec.UniqueTotal)), 256)

	configs := []struct {
		label string
		opts  StackOpts
	}{
		{"KDD circular log", StackOpts{Policy: PolicyKDD, DeltaMean: 0.25, CachePages: cachePages}},
		{"KDD no persistence", StackOpts{Policy: PolicyKDD, DeltaMean: 0.25, CachePages: cachePages, DisableMetaLog: true}},
		{"LeavO per-update", StackOpts{Policy: PolicyLeavO, CachePages: cachePages}},
	}
	results, err := fanOut(len(configs), func(i int) (*Result, error) {
		r, err := runSim(spec, tr, configs[i].opts)
		if err != nil {
			return nil, fmt.Errorf("ablation metalog %s: %w", configs[i].label, err)
		}
		return r, nil
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("== Ablation: metadata persistence (Fin1) ==\n")
	fmt.Fprintf(&b, "%-22s %14s %14s %12s\n", "config", "meta(Kpg)", "total(Kpg)", "meta share")
	for i, c := range configs {
		r := results[i]
		meta := r.Cache.MetaWrites + r.Cache.MetaGCWrites
		fmt.Fprintf(&b, "%-22s %14.1f %14.1f %11.2f%%\n",
			c.label, float64(meta)/1000, float64(r.Cache.SSDWrites())/1000,
			r.Cache.MetaShare()*100)
	}
	return b.String(), nil
}

// AblationAdmission measures the §V-C extension: a LARC-style selective
// admission filter in front of KDD, which trims one-touch allocation
// writes at some hit-ratio cost.
func AblationAdmission(scale float64) (string, error) {
	specs := []workload.Spec{workload.Fin1.Scale(scale), workload.Web0.Scale(scale)}
	traces, err := fanOut(len(specs), func(i int) (*workloadTrace, error) {
		return &workloadTrace{spec: specs[i], tr: workload.Synthesize(specs[i])}, nil
	})
	if err != nil {
		return "", err
	}
	modes := []bool{false, true}
	results, err := fanOut(len(specs)*len(modes), func(i int) (*Result, error) {
		wt := traces[i/len(modes)]
		sel := modes[i%len(modes)]
		cachePages := roundWays(int64(0.15*float64(wt.spec.UniqueTotal)), 256)
		r, err := runSim(wt.spec, wt.tr, StackOpts{
			Policy: PolicyKDD, DeltaMean: 0.25,
			CachePages: cachePages, SelectiveAdmission: sel,
		})
		if err != nil {
			return nil, fmt.Errorf("ablation admission: %w", err)
		}
		return r, nil
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("== Extension: LARC-style selective admission on KDD-25% ==\n")
	fmt.Fprintf(&b, "%-12s %-12s %10s %14s %12s %12s\n",
		"workload", "admission", "hit", "SSD writes", "allocs", "rejects")
	for si, wt := range traces {
		for mi, sel := range modes {
			r := results[si*len(modes)+mi]
			mode := "always"
			if sel {
				mode = "LARC"
			}
			fmt.Fprintf(&b, "%-12s %-12s %10.4f %14d %12d %12d\n",
				wt.spec.Name, mode, r.Cache.HitRatio(), r.Cache.SSDWrites(),
				r.Cache.ReadFills+r.Cache.WriteAllocs, r.Cache.AdmissionRejects)
		}
	}
	return b.String(), nil
}

// workloadTrace pairs a scaled spec with its synthesized trace.
type workloadTrace struct {
	spec workload.Spec
	tr   *trace.Trace
}

// LifetimeSummary reports the headline endurance result: SSD write
// traffic per policy on a write-dominant trace and the implied lifetime
// improvement of KDD over LeavO and WT (the paper's "up to 5.1×").
func LifetimeSummary(scale float64) (string, error) {
	spec := workload.Hm0.Scale(scale)
	tr := workload.Synthesize(spec)
	// "Up to 5.1×" is a best case: it appears at the largest cache sizes,
	// where write hits dominate and LeavO pays a whole page per update.
	cachePages := roundWays(int64(0.8*float64(spec.UniqueTotal)), 256)

	lineup := Policies(false, true, KDDLevels)
	counts, err := fanOut(len(lineup), func(i int) (int64, error) {
		po := lineup[i]
		po.CachePages = cachePages
		r, err := runSim(spec, tr, po)
		if err != nil {
			return 0, fmt.Errorf("lifetime %s: %w", policyLabel(po), err)
		}
		return r.Cache.SSDWrites(), nil
	})
	if err != nil {
		return "", err
	}
	writes := map[string]int64{}
	order := []string{}
	for i, po := range lineup {
		label := policyLabel(po)
		writes[label] = counts[i]
		order = append(order, label)
	}
	var b strings.Builder
	b.WriteString("== SSD lifetime summary (Hm0) ==\n")
	fmt.Fprintf(&b, "%-10s %14s %12s %12s\n", "policy", "SSD writes", "vs WT", "vs LeavO")
	for _, l := range order {
		fmt.Fprintf(&b, "%-10s %14d %11.2fx %11.2fx\n", l, writes[l],
			stats.Improvement(writes["WT"], writes[l]),
			stats.Improvement(writes["LeavO"], writes[l]))
	}
	return b.String(), nil
}
