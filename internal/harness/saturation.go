package harness

import (
	"fmt"
	"strings"

	"kddcache/internal/blockdev"
	"kddcache/internal/delta"
	"kddcache/internal/raid"
	"kddcache/internal/shard"
	"kddcache/internal/sim"
	"kddcache/internal/stats"
	"kddcache/internal/trace"
	"kddcache/internal/workload"
)

// The saturation experiment measures what the sharded data plane buys:
// latency versus offered load at shard counts 1, 2, 4 and 8, driven by
// an open-loop arrival stream (clients keep offering load regardless of
// completions — the only way a saturation knee is visible).
//
// The plane runs for real in goroutine mode — every request executes on
// the concurrent engine and any error fails the experiment — while
// latency comes from a deterministic virtual-time model layered on the
// plane's own routing: each shard worker is a serial server with a fixed
// per-op CPU cost, so a request's start time is max(arrival, its shard's
// busy clock). That models exactly the resource sharding parallelizes
// (the single-threaded engine compute) and keeps the measured curves
// byte-stable across runs and machines, which is what lets CI gate on
// the scaling ratio. Wall-clock timing of the goroutine pool would
// measure the host scheduler, not the design.
//
// sustained(N) is the highest grid load whose p99 stays within the SLO;
// the headline metric is sustained(4)/sustained(1), gated at >= 2x.
const (
	// satOpCost is the modelled per-op engine compute charged to the
	// owning shard's serial clock.
	satOpCost = 25 * sim.Microsecond

	// satSLO is the p99 latency budget a load point must meet to count
	// as sustained: 20x the service cost, i.e. the curve may queue but
	// not stand up the saturation wall.
	satSLO = 20 * satOpCost

	// satBatch is the plane batch size: arrivals are chunked so write
	// coalescing and the per-lane metadata barriers see realistic
	// batches.
	satBatch = 256

	satFootprint = 4096 // distinct pages touched
	satDiskPages = 2048 // per RAID member
	satMembers   = 5    // 4 data + 1 parity (level 5)
	satChunk     = 8    // pages per chunk
)

// satShardCounts is the sweep's shard axis.
var satShardCounts = []int{1, 2, 4, 8}

// satGrid is the offered-load axis, as multiples of one shard's service
// capacity (1/satOpCost = 40k IOPS). It extends past 8x a single shard's
// knee so the widest plane also saturates within the sweep.
var satGrid = []float64{0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 5.0, 6.0}

// SaturationResult is one full sweep: the rendered table, the plottable
// per-shard-count series, and the sustained-load summary the perf gate
// consumes.
type SaturationResult struct {
	Table  string
	Series []stats.Series

	// SustainedIOPS maps shard count to the highest offered load (IOPS)
	// whose p99 met the SLO (0 if even the lightest point missed it).
	SustainedIOPS map[int]float64

	// Scaling4x1 is sustained(4)/sustained(1), the tentpole metric.
	Scaling4x1 float64
}

// satCell is one (shards, offered load) measurement.
type satCell struct {
	shards  int
	offered float64 // IOPS
	p99     sim.Time
}

// SaturationSweep runs the full grid. scale multiplies the request count
// per cell; the load grid itself is fixed (offered RATE is the x-axis
// and must not drift with scale).
func SaturationSweep(scale float64) (SaturationResult, error) {
	requests := int64(24000 * scale)
	if requests < 2000 {
		requests = 2000
	}
	baseIOPS := float64(sim.Second / satOpCost)

	type key struct{ si, gi int }
	var cells []key
	for si := range satShardCounts {
		for gi := range satGrid {
			cells = append(cells, key{si, gi})
		}
	}
	measured, err := fanOut(len(cells), func(i int) (satCell, error) {
		shards := satShardCounts[cells[i].si]
		offered := satGrid[cells[i].gi] * baseIOPS
		p99, err := saturationCell(shards, offered, requests)
		return satCell{shards: shards, offered: offered, p99: p99}, err
	})
	if err != nil {
		return SaturationResult{}, err
	}

	res := SaturationResult{SustainedIOPS: map[int]float64{}}
	byShards := map[int][]satCell{}
	for _, c := range measured {
		byShards[c.shards] = append(byShards[c.shards], c)
	}
	for _, n := range satShardCounts {
		s := stats.Series{Label: fmt.Sprintf("shards=%d", n)}
		for _, c := range byShards[n] {
			s.X = append(s.X, c.offered/1000)
			s.Y = append(s.Y, c.p99.Millis())
			if c.p99 <= satSLO && c.offered > res.SustainedIOPS[n] {
				res.SustainedIOPS[n] = c.offered
			}
		}
		res.Series = append(res.Series, s)
	}
	if res.SustainedIOPS[1] > 0 {
		res.Scaling4x1 = res.SustainedIOPS[4] / res.SustainedIOPS[1]
	}

	var b strings.Builder
	b.WriteString(stats.Table(
		fmt.Sprintf("Saturation: p99 latency (ms) vs offered load (kIOPS), %d requests/cell", requests),
		"offeredKIOPS", res.Series))
	fmt.Fprintf(&b, "SLO p99 <= %v (service %v)\n", satSLO, satOpCost)
	for _, n := range satShardCounts {
		fmt.Fprintf(&b, "sustained(shards=%d) = %.0f kIOPS\n", n, res.SustainedIOPS[n]/1000)
	}
	fmt.Fprintf(&b, "scaling sustained(4)/sustained(1) = %.2fx (gate >= 2x)\n", res.Scaling4x1)
	res.Table = b.String()
	return res, nil
}

// saturationCell builds a fresh plane in goroutine mode, replays one
// open-loop arrival stream through it in batches, and returns the p99 of
// the virtual-time latency model.
func saturationCell(shards int, offeredIOPS float64, requests int64) (sim.Time, error) {
	var members []blockdev.Device
	for i := 0; i < satMembers; i++ {
		members = append(members, blockdev.NewNullDevice(fmt.Sprintf("sat-d%d", i), satDiskPages))
	}
	arr, err := raid.New(raid.Config{Level: raid.Level5, ChunkPages: satChunk}, members)
	if err != nil {
		return 0, err
	}
	const metaPages = 128
	const cachePages = 1024
	ssd := blockdev.NewNullDevice("sat-ssd", metaPages+cachePages+64)
	p, err := shard.New(shard.Config{
		SSD:        ssd,
		Backend:    arr,
		CachePages: cachePages,
		Ways:       64,
		MetaPages:  metaPages,
		Codec:      func(lane int) delta.Codec { return delta.NewModelled(0x5A7<<8|uint64(lane), 0.25) },
		Shards:     shards,
		Goroutines: true,
		Coalesce:   true,
	})
	if err != nil {
		return 0, err
	}
	defer p.Close()

	tr := workload.OpenLoop{
		Name:        fmt.Sprintf("sat-%.0f", offeredIOPS),
		Clients:     16,
		OfferedIOPS: offeredIOPS,
		Requests:    requests,
		Footprint:   satFootprint,
		ReadRatio:   0.7,
		Theta:       0.9,
		Seed:        0x5A70,
	}.Generate()

	hist := stats.NewHistogram(1 << 14)
	clock := make([]sim.Time, shards)
	ops := make([]shard.Op, 0, satBatch)
	flush := func(t sim.Time) error {
		if len(ops) == 0 {
			return nil
		}
		for i, r := range p.RunBatch(t, ops) {
			if r.Err != nil {
				return fmt.Errorf("saturation: op %d (lba %d): %w", i, ops[i].LBA, r.Err)
			}
		}
		ops = ops[:0]
		return nil
	}
	for _, req := range tr.Requests {
		// Virtual-time latency: the owning shard is a serial server.
		s := p.ShardOf(p.LaneOf(req.LBA))
		start := req.Time
		if clock[s] > start {
			start = clock[s]
		}
		fin := start + satOpCost
		clock[s] = fin
		hist.Observe(int64(fin - req.Time))

		kind := shard.OpWrite
		if req.Op == trace.Read {
			kind = shard.OpRead
		}
		ops = append(ops, shard.Op{Kind: kind, LBA: req.LBA})
		if len(ops) == satBatch {
			if err := flush(req.Time); err != nil {
				return 0, err
			}
		}
	}
	if err := flush(tr.Requests[len(tr.Requests)-1].Time); err != nil {
		return 0, err
	}
	if _, err := p.Quiesce(tr.Requests[len(tr.Requests)-1].Time); err != nil {
		return 0, fmt.Errorf("saturation: quiesce: %w", err)
	}
	return sim.Time(hist.Percentile(99)), nil
}

// Saturation renders the latency-vs-offered-load sweep (the experiment
// registry entry point).
func Saturation(scale float64) (string, []stats.Series, error) {
	res, err := SaturationSweep(scale)
	return res.Table, res.Series, err
}
