package harness

import (
	"strings"
	"testing"

	"kddcache/internal/workload"
)

// Small scales keep tests fast; shapes must already hold there.
const tinyScale = 0.004

func TestBuildAllPolicies(t *testing.T) {
	for _, p := range []PolicyKind{PolicyNossd, PolicyWT, PolicyWA, PolicyLeavO, PolicyKDD} {
		st, err := Build(StackOpts{Policy: p, CachePages: 4096, DiskPages: 65536})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if st.Policy == nil {
			t.Fatalf("%s: nil policy", p)
		}
	}
	if _, err := Build(StackOpts{Policy: "bogus"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestBuildTimingStack(t *testing.T) {
	st, err := Build(StackOpts{Policy: PolicyKDD, CachePages: 4096, DiskPages: 65536, Timing: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.FlashModel == nil || len(st.Disks) != 5 {
		t.Fatal("timing stack missing device models")
	}
}

func TestRunTraceBasics(t *testing.T) {
	spec := workload.Fin1.Scale(tinyScale)
	tr := workload.Synthesize(spec)
	st, err := Build(simOptsWith(spec, PolicyWT, 0, roundWays(spec.UniqueTotal/5, 256)))
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunTrace(st, tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cache.Requests() != spec.ReadPages+spec.WritePages {
		t.Fatalf("processed %d requests, trace has %d",
			r.Cache.Requests(), spec.ReadPages+spec.WritePages)
	}
	if r.Latency.Count() == 0 {
		t.Fatal("no latencies observed")
	}
}

func simOptsWith(spec workload.Spec, p PolicyKind, deltaMean float64, cachePages int64) StackOpts {
	o := simOpts(spec, cachePages)
	o.Policy = p
	o.DeltaMean = deltaMean
	return o
}

// runPolicies sweeps one cache size over the policy lineup and returns
// hit ratios and SSD writes by label.
func runPolicies(t *testing.T, spec workload.Spec, frac float64) (map[string]float64, map[string]int64) {
	t.Helper()
	tr := workload.Synthesize(spec)
	hits := map[string]float64{}
	writes := map[string]int64{}
	for _, po := range Policies(false, true, KDDLevels) {
		label := string(po.Policy)
		if po.Policy == PolicyKDD {
			label = po.label()
		}
		po.CachePages = roundWays(int64(frac*float64(spec.UniqueTotal)), 256)
		r, err := runSim(spec, tr, po)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		hits[label] = r.Cache.HitRatio()
		writes[label] = r.Cache.SSDWrites()
	}
	return hits, writes
}

// label formats a lineup entry's display name.
func (o StackOpts) label() string {
	if o.Policy == PolicyKDD {
		switch {
		case o.DeltaMean >= 0.40:
			return "KDD-50%"
		case o.DeltaMean >= 0.20:
			return "KDD-25%"
		default:
			return "KDD-12%"
		}
	}
	return string(o.Policy)
}

// TestPaperShapeWriteDominant asserts the Figure 5/6 relationships on the
// write-dominant Fin1: WT >= KDD >= LeavO on hit ratio, and KDD's SSD
// writes far below WT and LeavO, ordered by content locality.
func TestPaperShapeWriteDominant(t *testing.T) {
	spec := workload.Fin1.Scale(0.008)
	hits, writes := runPolicies(t, spec, 0.15)

	if hits["WT"]+1e-9 < hits["KDD-25%"] && hits["WT"] < hits["KDD-25%"]-0.03 {
		t.Errorf("WT hit ratio %.3f well below KDD-25%% %.3f", hits["WT"], hits["KDD-25%"])
	}
	if hits["KDD-25%"] < hits["LeavO"]-0.02 {
		t.Errorf("KDD-25%% hit %.3f below LeavO %.3f", hits["KDD-25%"], hits["LeavO"])
	}
	// Stronger locality -> higher hit ratio for KDD.
	if hits["KDD-12%"]+0.02 < hits["KDD-50%"] {
		t.Errorf("KDD-12%% (%.3f) should beat KDD-50%% (%.3f)", hits["KDD-12%"], hits["KDD-50%"])
	}
	// Write traffic ordering: LeavO worst, then WT, then KDD levels, WA least.
	if writes["LeavO"] <= writes["WT"] {
		t.Errorf("LeavO writes %d not above WT %d", writes["LeavO"], writes["WT"])
	}
	if writes["KDD-50%"] >= writes["WT"] {
		t.Errorf("KDD-50%% writes %d not below WT %d", writes["KDD-50%"], writes["WT"])
	}
	if !(writes["KDD-12%"] < writes["KDD-25%"] && writes["KDD-25%"] < writes["KDD-50%"]) {
		t.Errorf("KDD writes not ordered by locality: %v", writes)
	}
	if writes["WA"] >= writes["WT"] {
		t.Errorf("WA writes %d not below WT %d on write-dominant trace", writes["WA"], writes["WT"])
	}
	// Headline: lifetime improvement over LeavO should be clear even at
	// this moderate cache size (the paper's "up to 5.1×" appears at the
	// largest caches; TestLifetimeImprovementLargeCache covers that).
	if imp := float64(writes["LeavO"]) / float64(writes["KDD-12%"]); imp < 1.5 {
		t.Errorf("KDD-12%% lifetime improvement over LeavO only %.2fx", imp)
	}
}

// TestLifetimeImprovementLargeCache checks the headline endurance claim
// at a large cache, where redundant versions and uncoalesced metadata
// hurt LeavO the most.
func TestLifetimeImprovementLargeCache(t *testing.T) {
	spec := workload.Hm0.Scale(0.008)
	_, writes := runPolicies(t, spec, 0.4)
	if imp := float64(writes["LeavO"]) / float64(writes["KDD-12%"]); imp < 2.2 {
		t.Errorf("large-cache KDD-12%% improvement over LeavO only %.2fx", imp)
	}
	if imp := float64(writes["WT"]) / float64(writes["KDD-12%"]); imp < 2.0 {
		t.Errorf("large-cache KDD-12%% improvement over WT only %.2fx", imp)
	}
}

// TestPaperShapeReadDominant asserts the Figure 7/8 relationships on
// Fin2: the traffic gap narrows because read fills dominate.
func TestPaperShapeReadDominant(t *testing.T) {
	spec := workload.Fin2.Scale(0.008)
	hits, writes := runPolicies(t, spec, 0.15)
	if hits["LeavO"] > hits["WT"]+0.02 {
		t.Errorf("LeavO hit %.3f above WT %.3f on read-dominant trace", hits["LeavO"], hits["WT"])
	}
	if writes["KDD-25%"] >= writes["WT"] {
		t.Errorf("KDD writes %d not below WT %d", writes["KDD-25%"], writes["WT"])
	}
	// Reduction should be smaller than on write-dominant traces: the gap
	// between KDD and WA narrows.
	ratioWD := func() float64 {
		s := workload.Fin1.Scale(0.008)
		_, w := runPolicies(t, s, 0.15)
		return float64(w["KDD-25%"]) / float64(w["WA"])
	}()
	ratioRD := float64(writes["KDD-25%"]) / float64(writes["WA"])
	if ratioRD > ratioWD*1.5 && ratioRD > 3 {
		t.Errorf("read-dominant KDD/WA ratio %.2f should be closer than write-dominant %.2f",
			ratioRD, ratioWD)
	}
}

func TestTableIOutput(t *testing.T) {
	out, err := TableI(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"Fin1", "Fin2", "Hm0", "Web0", "target"} {
		if !strings.Contains(out, w) {
			t.Fatalf("Table I output missing %q:\n%s", w, out)
		}
	}
}

func TestFig4MetaShareDecreasesWithPartitionSize(t *testing.T) {
	out, series, err := Fig4(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Figure 4") || len(series) != 4 {
		t.Fatalf("fig4 output malformed:\n%s", out)
	}
	for _, se := range series {
		if len(se.Y) != 4 {
			t.Fatalf("series %s has %d points", se.Label, len(se.Y))
		}
		// Larger partitions must not increase the metadata share much;
		// at the paper's 0.59%+ the share should be small (<10% even at
		// tiny scale; the paper reports <1.8% at full scale).
		if se.Y[1] > 12 {
			t.Errorf("%s: meta share %.2f%% at 0.59%% partition is too high", se.Label, se.Y[1])
		}
		if se.Y[3] > se.Y[0]+1e-9 && se.Y[3] > se.Y[0]*1.2 {
			t.Errorf("%s: meta share grew with partition size: %v", se.Label, se.Y)
		}
	}
}

func TestFig9LatencyOrdering(t *testing.T) {
	out, series, err := Fig9(0.002)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Figure 9") {
		t.Fatal("missing title")
	}
	byLabel := map[string][]float64{}
	for _, se := range series {
		byLabel[se.Label] = se.Y
	}
	// KDD must beat Nossd and WT on the write-dominant traces (index 0 =
	// Fin1, 2 = Hm0), the paper's headline latency result.
	for _, wi := range []int{0, 2} {
		if byLabel["KDD"][wi] >= byLabel["Nossd"][wi] {
			t.Errorf("workload %d: KDD %.2fms not below Nossd %.2fms",
				wi, byLabel["KDD"][wi], byLabel["Nossd"][wi])
		}
		if byLabel["KDD"][wi] >= byLabel["WT"][wi] {
			t.Errorf("workload %d: KDD %.2fms not below WT %.2fms",
				wi, byLabel["KDD"][wi], byLabel["WT"][wi])
		}
	}
	// KDD roughly matches LeavO (within 2x) everywhere.
	for wi := range byLabel["KDD"] {
		if byLabel["KDD"][wi] > 2*byLabel["LeavO"][wi] {
			t.Errorf("workload %d: KDD %.2fms far above LeavO %.2fms",
				wi, byLabel["KDD"][wi], byLabel["LeavO"][wi])
		}
	}
}

func TestFig10And11ClosedLoop(t *testing.T) {
	out10, s10, err := Fig10(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out10, "Figure 10") {
		t.Fatal("fig10 title missing")
	}
	lat := map[string][]float64{}
	for _, se := range s10 {
		lat[se.Label] = se.Y
	}
	// At 0% reads KDD must beat WT and Nossd decisively.
	if lat["KDD"][0] >= lat["WT"][0] || lat["KDD"][0] >= lat["Nossd"][0] {
		t.Errorf("0%% reads: KDD %.2f, WT %.2f, Nossd %.2f",
			lat["KDD"][0], lat["WT"][0], lat["Nossd"][0])
	}

	_, s11, err := Fig11(0.01)
	if err != nil {
		t.Fatal(err)
	}
	wr := map[string][]float64{}
	for _, se := range s11 {
		wr[se.Label] = se.Y
	}
	// WA has the least writes; KDD below WT and LeavO at every read rate.
	for i := range fioReadRates {
		if wr["KDD"][i] >= wr["WT"][i] {
			t.Errorf("rr %d: KDD writes %.1f not below WT %.1f", i, wr["KDD"][i], wr["WT"][i])
		}
		if wr["KDD"][i] >= wr["LeavO"][i] {
			t.Errorf("rr %d: KDD writes %.1f not below LeavO %.1f", i, wr["KDD"][i], wr["LeavO"][i])
		}
		if wr["WA"][i] > wr["WT"][i] {
			t.Errorf("rr %d: WA writes %.1f above WT %.1f", i, wr["WA"][i], wr["WT"][i])
		}
	}
	// The WA-KDD gap narrows as the read rate rises.
	gap0 := wr["KDD"][0] / wr["WA"][0]
	gap3 := wr["KDD"][3] / wr["WA"][3]
	if gap3 > gap0 {
		t.Errorf("KDD/WA gap widened with read rate: %.2f -> %.2f", gap0, gap3)
	}
}

func TestTableIIDerived(t *testing.T) {
	out, err := TableII(0.01)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"WT", "WA", "LeavO", "KDD"} {
		if !strings.Contains(out, w) {
			t.Fatalf("Table II missing %s:\n%s", w, out)
		}
	}
}

func TestAblations(t *testing.T) {
	if out, err := AblationPartition(tinyScale); err != nil || !strings.Contains(out, "dynamic") {
		t.Fatalf("partition ablation: %v\n%s", err, out)
	}
	if out, err := AblationReclaim(tinyScale); err != nil || !strings.Contains(out, "materialise") {
		t.Fatalf("reclaim ablation: %v\n%s", err, out)
	}
	if out, err := AblationMetaLog(tinyScale); err != nil || !strings.Contains(out, "circular log") {
		t.Fatalf("metalog ablation: %v\n%s", err, out)
	}
}

func TestLifetimeSummary(t *testing.T) {
	out, err := LifetimeSummary(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "vs LeavO") {
		t.Fatalf("lifetime summary malformed:\n%s", out)
	}
}

func TestFigures5Through8Render(t *testing.T) {
	for name, f := range map[string]func(float64) (string, error){
		"Fig5": Fig5, "Fig6": Fig6, "Fig7": Fig7, "Fig8": Fig8,
	} {
		out, err := f(tinyScale)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(out, "cache(Kpg)") {
			t.Fatalf("%s output malformed:\n%s", name, out)
		}
	}
}
