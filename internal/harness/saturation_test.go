package harness

import (
	"strings"
	"testing"
)

// The saturation sweep is the acceptance experiment for the sharded
// plane: its virtual-time latency model must be fully deterministic
// (same scale, same bytes) and must show shards=4 sustaining at least
// twice the offered load of shards=1 at the same p99 SLO.

func TestSaturationDeterministic(t *testing.T) {
	a, err := SaturationSweep(0.01)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SaturationSweep(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if a.Table != b.Table {
		t.Fatalf("saturation reruns diverged:\n%s\nvs\n%s", a.Table, b.Table)
	}
}

func TestSaturationScalingGate(t *testing.T) {
	res, err := SaturationSweep(0.01)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range satShardCounts {
		if res.SustainedIOPS[n] <= 0 {
			t.Fatalf("shards=%d sustained nothing:\n%s", n, res.Table)
		}
	}
	if res.Scaling4x1 < 2.0 {
		t.Fatalf("scaling 4/1 = %.2fx below the 2x floor:\n%s", res.Scaling4x1, res.Table)
	}
	// Sustained load must be monotone in the shard count: more workers
	// never sustain less.
	for i := 1; i < len(satShardCounts); i++ {
		lo, hi := satShardCounts[i-1], satShardCounts[i]
		if res.SustainedIOPS[hi] < res.SustainedIOPS[lo] {
			t.Fatalf("sustained(%d)=%.0f < sustained(%d)=%.0f:\n%s",
				hi, res.SustainedIOPS[hi], lo, res.SustainedIOPS[lo], res.Table)
		}
	}
	if !strings.Contains(res.Table, "scaling sustained(4)/sustained(1)") {
		t.Fatalf("table missing the scaling summary:\n%s", res.Table)
	}
}
