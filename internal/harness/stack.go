// Package harness wires the substrates into the paper's two experimental
// rigs — the trace-driven cache simulator (§IV-A) and the prototype-style
// timing stack (§IV-B) — and regenerates every table and figure of the
// evaluation section.
package harness

import (
	"fmt"
	"sync/atomic"

	"kddcache/internal/blockdev"
	"kddcache/internal/cache"
	"kddcache/internal/core"
	"kddcache/internal/delta"
	"kddcache/internal/hdd"
	"kddcache/internal/lsraid"
	"kddcache/internal/obs"
	"kddcache/internal/raid"
	"kddcache/internal/raidiface"
	"kddcache/internal/sim"
	"kddcache/internal/ssd"
)

// PolicyKind selects a cache management scheme.
type PolicyKind string

// The five schemes of the evaluation, plus two extra baselines this repo
// implements to make the paper's motivations demonstrable: WB (write-back
// — excluded by §IV-A1 for its RPO violation) and NVB (NVRAM write
// buffering — §I's limited alternative).
const (
	PolicyNossd PolicyKind = "Nossd"
	PolicyWT    PolicyKind = "WT"
	PolicyWA    PolicyKind = "WA"
	PolicyLeavO PolicyKind = "LeavO"
	PolicyKDD   PolicyKind = "KDD"
	PolicyWB    PolicyKind = "WB"
	PolicyNVB   PolicyKind = "NVB"
	PolicyPLog  PolicyKind = "PLog"
)

// defaultBackend is the process-wide array-backend selection applied
// when StackOpts.Backend is empty; empty means "kdd".
var defaultBackend atomic.Value // string

// SetDefaultBackend sets the array backend every subsequently built
// stack uses when StackOpts.Backend is empty: "kdd" (parity RAID with
// the delayed-parity protocol) or "lsraid" (log-structured full-stripe
// appends). The empty string restores the default, "kdd". This is the
// hook the -backend CLI flags hang off, so a whole experiment sweep
// flips backend without threading the option through every call site.
func SetDefaultBackend(name string) { defaultBackend.Store(name) }

// DefaultBackend returns the effective process-wide backend name.
func DefaultBackend() string {
	if v, _ := defaultBackend.Load().(string); v != "" {
		return v
	}
	return "kdd"
}

// StackOpts configures one experiment stack.
type StackOpts struct {
	Policy PolicyKind

	// Backend selects the array implementation under the cache: "kdd"
	// (default; parity RAID + the paper's delayed-parity protocol) or
	// "lsraid" (log-structured backend — full-stripe appends, no parity
	// debt). Empty selects the process-wide DefaultBackend(). The lsraid
	// stack is built with oversized members so its logical capacity
	// equals the kdd geometry's (Disks-1)*DiskPages — head-to-head runs
	// see identical address spaces.
	Backend string

	// DeltaMean sets KDD's modelled content locality (0.50/0.25/0.12 for
	// KDD-50%/25%/12%). Ignored by other policies.
	DeltaMean float64

	// CachePages is the SSD cache data capacity in 4KB pages.
	CachePages int64
	// MetaFrac is the metadata partition share of the SSD (paper default
	// 0.59%); used by KDD's circular log and LeavO's metadata region.
	MetaFrac float64
	// Ways is set associativity (default 256).
	Ways int

	// Timing selects realistic device models (HDD seek curves, SSD flash
	// latencies with FTL) instead of zero-latency null devices. Null
	// devices are the right choice for pure hit-ratio/write-traffic
	// simulation; timing mode is the "prototype".
	Timing bool

	// DataMode backs every device with real bytes so the stack carries
	// and verifies actual data (delta codecs run for real). Combines with
	// Timing.
	DataMode bool

	// SSDData backs only the SSD with real bytes, so the metadata log
	// genuinely persists while the rest of the stack stays in fast
	// timing mode — what crash-recovery timing experiments need.
	SSDData bool

	// Disks and DiskPages shape the RAID-5 array (paper: 5 disks, 64KB
	// chunks).
	Disks      int
	DiskPages  int64
	ChunkPages int64
	Level      raid.Level

	// Seed drives every stochastic component.
	Seed uint64

	// Spares parks this many hot-spare member devices on the array at
	// build time; the KDD engine auto-attaches one when a member fails
	// and paces the rebuild against foreground traffic.
	Spares int

	// RebuildRateMin/Max override the KDD rebuild pump's token refill in
	// rows per operation (under / free of foreground RAID pressure). Zero
	// keeps the engine defaults (1/8); RebuildRateMax < 0 disables the
	// pump so the caller drives Array.RebuildStep itself.
	RebuildRateMin int
	RebuildRateMax int

	// NVBPages sizes the NVRAM write buffer for PolicyNVB (default 2048
	// pages = 8MB: NVRAM is small "for power and cost efficiency").
	NVBPages int

	// PLogPages sizes the parity-log region for PolicyPLog (default 4096
	// pages on a dedicated log disk).
	PLogPages int64

	// KDD knobs for ablations.
	FixedDEZSets       int
	ReclaimMaterialize bool
	DisableMetaLog     bool
	SelectiveAdmission bool
	HighWater          float64
	LowWater           float64

	// Obs, when non-nil, threads its span tracer through every layer of
	// the stack (core engine, RAID array, SSD flash model, member disks)
	// so a run emits a deterministic per-phase trace. Nil disables tracing
	// with zero overhead.
	Obs *obs.Obs
}

// withDefaults fills zero fields with the paper's configuration.
func (o StackOpts) withDefaults() StackOpts {
	if o.Policy == "" {
		o.Policy = PolicyKDD
	}
	if o.DeltaMean == 0 {
		o.DeltaMean = 0.25
	}
	if o.CachePages == 0 {
		o.CachePages = 262144 // 1GB
	}
	if o.MetaFrac == 0 {
		o.MetaFrac = 0.0059
	}
	if o.Ways == 0 {
		o.Ways = 256
	}
	if o.Disks == 0 {
		o.Disks = 5
	}
	if o.ChunkPages == 0 {
		o.ChunkPages = 16 // 64KB
	}
	if o.Level == 0 {
		o.Level = raid.Level5
	}
	if o.DiskPages == 0 {
		o.DiskPages = 1 << 20 // 4GB per member
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Backend == "" {
		o.Backend = DefaultBackend()
	}
	return o
}

// Stack is a ready-to-run experiment rig.
type Stack struct {
	Policy cache.Policy
	Array  raidiface.Array
	SSDDev blockdev.Device
	// SSDInj is the fault injector wrapping the SSD (SSDDev == SSDInj),
	// through which whole-cache-device failure is injected mid-run.
	SSDInj *blockdev.FaultInjector
	// FlashModel is the FTL-level SSD model (nil with null devices).
	FlashModel *ssd.Device
	// Disks holds the HDD models (nil entries with null devices).
	Disks []*hdd.Disk
	Opts  StackOpts
	// KDDConfig is the core configuration used when Policy is KDD
	// (zero value otherwise); crash-recovery experiments rebuild from it.
	KDDConfig core.Config
	// PerRequest, when set, is invoked with the request index before each
	// trace request is issued — the hook kddsim's -kill-ssd-at and
	// -reattach-at flags are built on.
	PerRequest func(i int)
}

// Build assembles a stack.
func Build(o StackOpts) (*Stack, error) {
	o = o.withDefaults()

	// Member disks. The lsraid backend needs physically larger members to
	// present the same logical capacity as the kdd parity geometry: the
	// log keeps reserve segments plus GC headroom, so member size is
	// derived from the target (Disks-1)*DiskPages logical space.
	const lsSegRows = 32
	memberPages := o.DiskPages
	if o.Backend == "lsraid" {
		segPages := int64(lsSegRows) * int64(o.Disks-1)
		target := int64(o.Disks-1) * o.DiskPages
		needSegs := (target+segPages-1)/segPages + 16 // reserve(2)+open slack(2)+GC headroom
		memberPages = needSegs * lsSegRows
	}
	var members []blockdev.Device
	var disks []*hdd.Disk
	for i := 0; i < o.Disks; i++ {
		name := fmt.Sprintf("hdd%d", i)
		switch {
		case o.Timing && o.DataMode:
			d := hdd.NewData(name, hdd.DefaultConfig(memberPages), o.Seed+uint64(i)*7)
			disks = append(disks, d)
			members = append(members, d)
		case o.Timing:
			d := hdd.New(name, hdd.DefaultConfig(memberPages), o.Seed+uint64(i)*7)
			disks = append(disks, d)
			members = append(members, d)
		case o.DataMode:
			members = append(members, blockdev.NewNullDataDevice(name, memberPages))
		default:
			members = append(members, blockdev.NewNullDevice(name, memberPages))
		}
	}
	var array raidiface.Array
	switch o.Backend {
	case "kdd":
		a, err := raid.New(raid.Config{Level: o.Level, ChunkPages: o.ChunkPages}, members)
		if err != nil {
			return nil, err
		}
		array = a
	case "lsraid":
		a, err := lsraid.New(lsraid.Config{
			ChunkPages:   o.ChunkPages,
			SegRows:      lsSegRows,
			LogicalPages: int64(o.Disks-1) * o.DiskPages,
			Seed:         o.Seed ^ 0x15AA1D,
		}, members)
		if err != nil {
			return nil, err
		}
		array = a
	default:
		return nil, fmt.Errorf("harness: unknown backend %q", o.Backend)
	}
	for i := 0; i < o.Spares; i++ {
		if err := array.AddSpare(buildMember(o, fmt.Sprintf("spare%d", i), memberPages, 1900+uint64(i)*7)); err != nil {
			return nil, err
		}
	}
	var tr *obs.Tracer
	if o.Obs != nil {
		tr = o.Obs.Tracer
		array.SetTracer(tr)
		for _, d := range disks {
			d.SetTracer(tr)
		}
	}

	// SSD sizing: cache pages plus the metadata partition.
	metaPages := int64(float64(o.CachePages) / (1 - o.MetaFrac) * o.MetaFrac)
	if metaPages < 8 {
		metaPages = 8
	}
	ssdPages := o.CachePages + metaPages
	var ssdDev blockdev.Device
	var flash *ssd.Device
	ssdBytes := o.DataMode || o.SSDData
	switch {
	case o.Timing && ssdBytes:
		flash = ssd.NewData("ssd", ssd.DefaultConfig(ssdPages))
		ssdDev = flash
	case o.Timing:
		flash = ssd.New("ssd", ssd.DefaultConfig(ssdPages))
		ssdDev = flash
	case ssdBytes:
		ssdDev = blockdev.NewNullDataDevice("ssd", ssdPages)
	default:
		ssdDev = blockdev.NewNullDevice("ssd", ssdPages)
	}
	if flash != nil {
		flash.SetTracer(tr)
	}
	// Every stack gets a fault injector around the SSD so whole-cache
	// failure can be injected into any experiment. It is pass-through
	// (zero latency, no fault profile) until armed.
	ssdInj := blockdev.NewFaultInjector(ssdDev, o.Seed^0x55D)
	ssdDev = ssdInj

	st := &Stack{Array: array, SSDDev: ssdDev, SSDInj: ssdInj, FlashModel: flash, Disks: disks, Opts: o}
	switch o.Policy {
	case PolicyNossd:
		st.Policy = cache.NewNossd(array)
	case PolicyWT:
		st.Policy = cache.NewWT(ssdDev, array, o.CachePages, metaPages, o.Ways)
	case PolicyWA:
		st.Policy = cache.NewWA(ssdDev, array, o.CachePages, metaPages, o.Ways)
	case PolicyLeavO:
		st.Policy = cache.NewLeavO(ssdDev, array, o.CachePages, metaPages, o.Ways, 0, metaPages)
	case PolicyWB:
		st.Policy = cache.NewWB(ssdDev, array, o.CachePages, metaPages, o.Ways)
	case PolicyNVB:
		nvb := o.NVBPages
		if nvb == 0 {
			nvb = 2048
		}
		st.Policy = cache.NewNVB(array, nvb)
	case PolicyPLog:
		cap := o.PLogPages
		if cap == 0 {
			cap = 4096
		}
		var logDev blockdev.Device
		if o.Timing {
			ld := hdd.New("logdisk", hdd.DefaultConfig(cap), o.Seed+7777)
			ld.SetTracer(tr)
			logDev = ld
		} else {
			logDev = blockdev.NewNullDevice("logdisk", cap)
		}
		st.Policy = cache.NewPLog(array, logDev, cap)
	case PolicyKDD:
		var codec delta.Codec = delta.NewModelled(o.Seed+99, o.DeltaMean)
		if o.DataMode {
			codec = delta.ZRLE{} // real bytes: run the real codec
		}
		st.KDDConfig = core.Config{
			SSD:                ssdDev,
			Backend:            array,
			CachePages:         o.CachePages,
			Ways:               o.Ways,
			MetaStart:          0,
			MetaPages:          metaPages,
			Codec:              codec,
			FixedDEZSets:       o.FixedDEZSets,
			ReclaimMaterialize: o.ReclaimMaterialize,
			DisableMetaLog:     o.DisableMetaLog,
			SelectiveAdmission: o.SelectiveAdmission,
			HighWater:          o.HighWater,
			LowWater:           o.LowWater,
			RebuildRateMin:     o.RebuildRateMin,
			RebuildRateMax:     o.RebuildRateMax,
			Tracer:             tr,
		}
		k, err := core.New(st.KDDConfig)
		if err != nil {
			return nil, err
		}
		st.Policy = k
	default:
		return nil, fmt.Errorf("harness: unknown policy %q", o.Policy)
	}
	return st, nil
}

// FreshSSD builds a replacement cache device matching the stack's device
// mode and geometry (for SSD re-attach experiments).
func (st *Stack) FreshSSD() blockdev.Device {
	pages := st.SSDInj.Inner().Pages()
	ssdBytes := st.Opts.DataMode || st.Opts.SSDData
	switch {
	case st.Opts.Timing && ssdBytes:
		return ssd.NewData("ssd", ssd.DefaultConfig(pages))
	case st.Opts.Timing:
		return ssd.New("ssd", ssd.DefaultConfig(pages))
	case ssdBytes:
		return blockdev.NewNullDataDevice("ssd", pages)
	default:
		return blockdev.NewNullDevice("ssd", pages)
	}
}

// ReattachSSD repairs a failed (or fault-ridden) cache SSD with a fresh
// device of the same geometry and re-attaches the KDD cache online: the
// metadata log is re-initialised on the new medium and the cache warms
// back up through ordinary admission. The previous cache contents died
// with the old device; the array — kept consistent by the emergency fold
// at failover — is the source of truth.
func (st *Stack) ReattachSSD(now sim.Time) error {
	k, ok := st.Policy.(*core.KDD)
	if !ok {
		return fmt.Errorf("harness: reattach requires the KDD policy, have %s", st.Policy.Name())
	}
	fresh := st.FreshSSD()
	st.SSDInj.FailAfterOps = 0 // Repair preserves the arm; clear it explicitly
	st.SSDInj.Repair(fresh)
	if f, ok := fresh.(*ssd.Device); ok {
		if st.Opts.Obs != nil {
			f.SetTracer(st.Opts.Obs.Tracer)
		}
		st.FlashModel = f
	}
	return k.Reattach(now, nil)
}

// PublishMetrics writes every layer's counters into reg: the policy's
// cache statistics, the KDD engine internals (when KDD is the policy),
// the RAID member-I/O accounting, the SSD FTL counters, and the member
// disks' service counters.
func (st *Stack) PublishMetrics(reg *obs.Registry) {
	obs.PublishCacheStats(reg, st.Policy.Stats())
	if k, ok := st.Policy.(*core.KDD); ok {
		k.PublishMetrics(reg)
	}
	st.Array.PublishMetrics(reg)
	if st.FlashModel != nil {
		st.FlashModel.PublishMetrics(reg)
	}
	for _, d := range st.Disks {
		d.PublishMetrics(reg)
	}
}

// buildMember constructs one member-class device honoring the stack's
// device mode — used for hot spares at build time and for rebuild
// replacements.
func buildMember(o StackOpts, name string, diskPages int64, seedOff uint64) blockdev.Device {
	switch {
	case o.Timing && o.DataMode:
		return hdd.NewData(name, hdd.DefaultConfig(diskPages), o.Seed+seedOff)
	case o.Timing:
		return hdd.New(name, hdd.DefaultConfig(diskPages), o.Seed+seedOff)
	case o.DataMode:
		return blockdev.NewNullDataDevice(name, diskPages)
	default:
		return blockdev.NewNullDevice(name, diskPages)
	}
}

// freshMember builds a replacement disk matching the stack's device mode
// (for rebuild experiments).
func freshMember(st *Stack, diskPages int64) blockdev.Device {
	return buildMember(st.Opts, "fresh", diskPages, 991)
}

// FreshMember builds a replacement member disk matching the stack's
// device mode and geometry, for disk-kill/replace experiments driven from
// the cmd tools.
func (st *Stack) FreshMember() blockdev.Device {
	return freshMember(st, st.Opts.withDefaults().DiskPages)
}
