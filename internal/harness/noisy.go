package harness

import (
	"container/heap"
	"errors"
	"fmt"
	"strings"

	"kddcache/internal/blockdev"
	"kddcache/internal/delta"
	"kddcache/internal/qos"
	"kddcache/internal/raid"
	"kddcache/internal/shard"
	"kddcache/internal/sim"
	"kddcache/internal/stats"
	"kddcache/internal/trace"
	"kddcache/internal/workload"
)

// The noisy-neighbor experiment measures what the QoS layer buys: one
// tenant floods at 10x its budget while two in-budget victims keep
// working, and the question is how far the victims' p99 moves from the
// p99 they see with the aggressor absent.
//
// Three arms, identical except for the aggressor and the controller:
//
//	isolated     victims only, QoS on  — the baseline p99
//	protected    all tenants,  QoS on  — the tentpole claim
//	unprotected  all tenants,  QoS off — the damage being prevented
//
// As in the saturation experiment, the plane runs for real in goroutine
// mode (every admitted request executes on the concurrent engine; any
// engine error fails the arm) while latency comes from a deterministic
// virtual-time model layered on the plane's routing: each shard is a
// serial server with a fixed per-op compute cost. The service ORDER
// differs per arm on purpose — with QoS on, each shard serves its
// backlog through a weighted-fair queue over the tenant weights (the
// admission queue the tentpole adds); with QoS off there is no fairness
// anywhere, so the backlog drains in plain arrival order and the
// aggressor's flood queues ahead of the victims.
//
// Throttled requests retry at their RetryAfter hint through a min-heap
// of (time, seq) events; latency is always measured from the ORIGINAL
// arrival, and every request carries deadline = arrival + nnDeadline so
// an eternally-throttled request eventually dies with ErrDeadlineExceeded
// instead of retrying forever.
const (
	// nnOpCost is the modelled per-op engine compute (as the saturation
	// sweep): one shard serves 1/nnOpCost = 40k IOPS.
	nnOpCost = 25 * sim.Microsecond

	// nnShards fixes the plane width: 4 shards = 160k IOPS capacity.
	nnShards = 4

	// nnBatch is the plane batch size for the event-driven replay.
	nnBatch = 256

	// nnDeadline is each request's deadline margin past its arrival.
	// With the controller's 100µs doubling backoff this allows a few
	// retries before the deadline kills a still-throttled request.
	nnDeadline = sim.Millisecond

	// nnWindow is the controller's hysteresis window. 2ms makes the
	// aggressor walk the whole ladder (throttle -> shed -> bypass)
	// within even the shortest run.
	nnWindow = 2 * sim.Millisecond

	nnVictimFoot = 1024 // pages per victim footprint
	nnAggFoot    = 2048 // aggressor footprint
	nnDiskPages  = 2048 // per RAID member
	nnMembers    = 5    // 4 data + 1 parity
	nnChunk      = 8    // pages per chunk

	// nnServeDepth bounds the per-tenant service-model queue; it only
	// needs to exceed any backlog the arms can build.
	nnServeDepth = 1 << 20
)

// nnTenantSpec is the tenant sheet, deliberately routed through the
// production flag parser. Budgets: each victim gets 24k IOPS (15% of
// capacity) at weights 4 and 2; the aggressor gets 16k (10%) at weight
// 1, so under sustained overload it demotes first.
const nnTenantSpec = "victim-a:24000:4,victim-b:24000:2,aggressor:16000:1"

// nnOffered is each tenant's offered rate (IOPS). Victims run inside
// their budgets; the aggressor floods at 10x its 16k budget — one full
// plane's worth of capacity on its own.
var nnOffered = []float64{16000, 16000, 160000}

// nnArm is one experiment arm.
type nnArm struct {
	name      string
	aggressor bool // include the flooding tenant's stream
	protected bool // attach the QoS controller
}

var nnArms = []nnArm{
	{name: "isolated", aggressor: false, protected: true},
	{name: "protected", aggressor: true, protected: true},
	{name: "unprotected", aggressor: true, protected: false},
}

// nnTenantOut is one tenant's outcome in one arm.
type nnTenantOut struct {
	qos.Counters
	Served int64
	P99    sim.Time
	Mean   sim.Time
}

// nnArmOut is one arm's full outcome.
type nnArmOut struct {
	tenants []nnTenantOut
	aggRung int // aggressor's final ladder rung (protected arms)
}

// NoisyResult is the full experiment: the rendered table, plottable
// per-tenant p99 series, and the ratios the bench gate consumes.
type NoisyResult struct {
	Table  string
	Series []stats.Series

	// VictimP99Ratio is max over victims of protected-p99/isolated-p99:
	// the interference the QoS layer lets through. Gated <= 2x.
	VictimP99Ratio float64

	// UnprotectedRatio is the same ratio with QoS off — the damage the
	// layer prevents. Must exceed VictimP99Ratio for the story to hold.
	UnprotectedRatio float64

	// Aggressor outcomes in the protected arm.
	AggThrottled, AggShed, AggBypassed, AggDeadline int64
	AggRung                                         int
}

// nnEvent is one pending request (first attempt or throttle retry).
type nnEvent struct {
	at       sim.Time // this attempt's arrival
	orig     sim.Time // original arrival: latency is measured from here
	deadline sim.Time
	seq      int64 // global tie-break; retries allocate fresh ones
	tenant   int
	kind     shard.OpKind
	lba      int64
}

// nnHeap is a min-heap of events keyed (at, seq).
type nnHeap []nnEvent

func (h nnHeap) Len() int { return len(h) }
func (h nnHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h nnHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *nnHeap) Push(x interface{}) { *h = append(*h, x.(nnEvent)) }
func (h *nnHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// nnJob is one admitted request in the service model.
type nnJob struct {
	at, orig sim.Time
	tenant   int
}

// nnServer is one shard's serial server. With a WFQ attached the
// backlog drains weighted-fair over tenants; without one it drains in
// plain arrival (push) order.
type nnServer struct {
	clock sim.Time
	wfq   *qos.WFQ
	jobs  []nnJob // WFQ payload store (indices)
	fifo  []nnJob
	head  int
}

func (s *nnServer) push(j nnJob) {
	if s.wfq != nil {
		if !s.wfq.Push(j.tenant, int64(len(s.jobs))) {
			panic("harness: noisy-neighbor service queue overflow")
		}
		s.jobs = append(s.jobs, j)
		return
	}
	s.fifo = append(s.fifo, j)
}

// drainTo serves backlog while the server's clock is before t.
func (s *nnServer) drainTo(t sim.Time, observe func(tenant int, lat sim.Time)) {
	for s.clock < t {
		var j nnJob
		if s.wfq != nil {
			_, v, ok := s.wfq.Pop()
			if !ok {
				return
			}
			j = s.jobs[v]
		} else {
			if s.head >= len(s.fifo) {
				return
			}
			j = s.fifo[s.head]
			s.head++
		}
		start := s.clock
		if j.at > start {
			start = j.at
		}
		fin := start + nnOpCost
		s.clock = fin
		observe(j.tenant, fin-j.orig)
	}
}

// noisyArm runs one arm for dur of virtual time and returns per-tenant
// outcomes. Deterministic: the plane's QoS gate runs in submission
// order, the event heap orders by (time, seq), and the service model is
// pure integer virtual time.
func noisyArm(arm nnArm, dur sim.Time) (nnArmOut, error) {
	specs, err := qos.ParseTenants(nnTenantSpec)
	if err != nil {
		return nnArmOut{}, err
	}
	var ctl *qos.Controller
	if arm.protected {
		ctl, err = qos.NewController(qos.Config{Tenants: specs, Window: nnWindow})
		if err != nil {
			return nnArmOut{}, err
		}
	}

	var members []blockdev.Device
	for i := 0; i < nnMembers; i++ {
		members = append(members, blockdev.NewNullDevice(fmt.Sprintf("nn-d%d", i), nnDiskPages))
	}
	arr, err := raid.New(raid.Config{Level: raid.Level5, ChunkPages: nnChunk}, members)
	if err != nil {
		return nnArmOut{}, err
	}
	const metaPages = 128
	const cachePages = 1024
	ssd := blockdev.NewNullDevice("nn-ssd", metaPages+cachePages+64)
	p, err := shard.New(shard.Config{
		SSD:        ssd,
		Backend:    arr,
		CachePages: cachePages,
		Ways:       64,
		MetaPages:  metaPages,
		Codec:      func(lane int) delta.Codec { return delta.NewModelled(0x9057<<8|uint64(lane), 0.25) },
		Shards:     nnShards,
		Goroutines: true,
		Coalesce:   true,
		QoS:        ctl,
	})
	if err != nil {
		return nnArmOut{}, err
	}
	defer p.Close()

	// Per-tenant arrival streams with disjoint footprints, merged into
	// one time-ordered multi-tenant stream.
	bases := []int64{0, nnVictimFoot, 2 * nnVictimFoot}
	foots := []int64{nnVictimFoot, nnVictimFoot, nnAggFoot}
	var streams []*trace.Trace
	for i, spec := range specs {
		if i == 2 && !arm.aggressor {
			break
		}
		streams = append(streams, workload.OpenLoop{
			Name:        spec.Name,
			Clients:     8,
			OfferedIOPS: nnOffered[i],
			Requests:    int64(nnOffered[i] * float64(dur) / float64(sim.Second)),
			Footprint:   foots[i],
			LBABase:     bases[i],
			ReadRatio:   0.7,
			Theta:       0.9,
			Seed:        0x9057 + uint64(i),
			Tenant:      i,
		}.Generate())
	}
	tr := workload.MergeTenants("noisy-"+arm.name, streams...)

	h := make(nnHeap, 0, len(tr.Requests))
	for i, r := range tr.Requests {
		kind := shard.OpWrite
		if r.Op == trace.Read {
			kind = shard.OpRead
		}
		h = append(h, nnEvent{
			at: r.Time, orig: r.Time, deadline: r.Time + nnDeadline,
			seq: int64(i), tenant: r.Tenant, kind: kind, lba: r.LBA,
		})
	}
	heap.Init(&h)
	nextSeq := int64(len(tr.Requests))

	hists := make([]*stats.Histogram, len(specs))
	for i := range hists {
		hists[i] = stats.NewHistogram(1 << 14)
	}
	observe := func(tenant int, lat sim.Time) { hists[tenant].Observe(int64(lat)) }
	servers := make([]*nnServer, nnShards)
	for s := range servers {
		srv := &nnServer{}
		if arm.protected {
			srv.wfq = qos.NewWFQ(qos.Weights(specs), nnServeDepth)
		}
		servers[s] = srv
	}

	// manual is the per-tenant tally for the unprotected arm (no
	// controller to count for us there).
	manual := make([]qos.Counters, len(specs))

	ops := make([]shard.Op, 0, nnBatch)
	evs := make([]nnEvent, 0, nnBatch)
	flush := func() error {
		if len(ops) == 0 {
			return nil
		}
		t := evs[len(evs)-1].at
		for i, r := range p.RunBatch(t, ops) {
			ev := evs[i]
			switch {
			case r.Err == nil:
				// Admitted (or bypassed, or coalesced away — the request
				// still completed): charge it to its shard's serial server.
				manual[ev.tenant].Offered++
				manual[ev.tenant].Admitted++
				s := servers[p.ShardOf(p.LaneOf(ev.lba))]
				s.drainTo(ev.at, observe)
				s.push(nnJob{at: ev.at, orig: ev.orig, tenant: ev.tenant})
			case errors.Is(r.Err, qos.ErrThrottled):
				var rej *qos.Reject
				if errors.As(r.Err, &rej) && rej.RetryAfter > ev.at {
					heap.Push(&h, nnEvent{
						at: rej.RetryAfter, orig: ev.orig, deadline: ev.deadline,
						seq: nextSeq, tenant: ev.tenant, kind: ev.kind, lba: ev.lba,
					})
					nextSeq++
				}
			case errors.Is(r.Err, qos.ErrShed):
			case errors.Is(r.Err, qos.ErrDeadlineExceeded):
			default:
				return fmt.Errorf("noisy-neighbor %s: op %d (tenant %d lba %d): %w",
					arm.name, i, ev.tenant, ev.lba, r.Err)
			}
		}
		ops = ops[:0]
		evs = evs[:0]
		return nil
	}
	var lastAt sim.Time
	for h.Len() > 0 {
		ev := heap.Pop(&h).(nnEvent)
		lastAt = ev.at
		evs = append(evs, ev)
		ops = append(ops, shard.Op{
			Kind: ev.kind, LBA: ev.lba,
			Tenant: ev.tenant, At: ev.at, Deadline: ev.deadline,
		})
		if len(ops) == nnBatch {
			if err := flush(); err != nil {
				return nnArmOut{}, err
			}
		}
	}
	if err := flush(); err != nil {
		return nnArmOut{}, err
	}
	for _, s := range servers {
		s.drainTo(sim.Time(1)<<62, observe)
	}
	if _, err := p.Quiesce(dur); err != nil {
		return nnArmOut{}, fmt.Errorf("noisy-neighbor %s: quiesce: %w", arm.name, err)
	}
	if err := p.CheckInvariants(); err != nil {
		return nnArmOut{}, fmt.Errorf("noisy-neighbor %s: %w", arm.name, err)
	}
	if ctl != nil && !ctl.Conserved(lastAt) {
		return nnArmOut{}, fmt.Errorf("noisy-neighbor %s: token-bucket conservation violated", arm.name)
	}

	out := nnArmOut{tenants: make([]nnTenantOut, len(specs))}
	counts := manual
	if ctl != nil {
		counts = ctl.Snapshot()
		out.aggRung = ctl.Rung(2)
	}
	for i := range specs {
		out.tenants[i] = nnTenantOut{
			Counters: counts[i],
			Served:   hists[i].Count(),
			P99:      sim.Time(hists[i].Percentile(99)),
			Mean:     sim.Time(int64(hists[i].Mean())),
		}
	}
	return out, nil
}

// NoisyNeighborSweep runs all three arms. scale stretches the run's
// virtual duration (scale 1.0 = one virtual second, floored at 20ms so
// the hysteresis ladder always has windows to walk).
func NoisyNeighborSweep(scale float64) (NoisyResult, error) {
	dur := sim.Time(float64(sim.Second) * scale)
	if dur < 20*sim.Millisecond {
		dur = 20 * sim.Millisecond
	}
	arms, err := fanOut(len(nnArms), func(i int) (nnArmOut, error) {
		return noisyArm(nnArms[i], dur)
	})
	if err != nil {
		return NoisyResult{}, err
	}
	specs, err := qos.ParseTenants(nnTenantSpec)
	if err != nil {
		return NoisyResult{}, err
	}

	ratio := func(armIdx int) float64 {
		worst := 0.0
		for v := 0; v < 2; v++ { // the two victims
			iso := arms[0].tenants[v].P99
			if iso <= 0 {
				continue
			}
			r := float64(arms[armIdx].tenants[v].P99) / float64(iso)
			if r > worst {
				worst = r
			}
		}
		return worst
	}
	res := NoisyResult{
		VictimP99Ratio:   ratio(1),
		UnprotectedRatio: ratio(2),
		AggThrottled:     arms[1].tenants[2].Throttled,
		AggShed:          arms[1].tenants[2].Shed,
		AggBypassed:      arms[1].tenants[2].Bypassed,
		AggDeadline:      arms[1].tenants[2].Deadline,
		AggRung:          arms[1].aggRung,
	}
	for ti, spec := range specs {
		s := stats.Series{Label: spec.Name}
		for ai := range nnArms {
			s.X = append(s.X, float64(ai))
			s.Y = append(s.Y, arms[ai].tenants[ti].P99.Millis())
		}
		res.Series = append(res.Series, s)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "== Noisy neighbor: per-tenant p99 under a 10x flood, %v virtual run ==\n", dur)
	fmt.Fprintf(&b, "tenants: %s (aggressor offers %.0fk IOPS against a %.0fk budget)\n",
		nnTenantSpec, nnOffered[2]/1000, float64(specs[2].RateIOPS)/1000)
	fmt.Fprintf(&b, "%-12s %-10s %9s %9s %9s %9s %9s %9s %10s %10s\n",
		"arm", "tenant", "offered", "admitted", "bypassed", "throttled", "shed", "deadline", "p99(us)", "mean(us)")
	for ai, arm := range nnArms {
		for ti, spec := range specs {
			t := arms[ai].tenants[ti]
			fmt.Fprintf(&b, "%-12s %-10s %9d %9d %9d %9d %9d %9d %10.0f %10.0f\n",
				arm.name, spec.Name, t.Offered, t.Admitted, t.Bypassed,
				t.Throttled, t.Shed, t.Deadline,
				float64(t.P99)/float64(sim.Microsecond),
				float64(t.Mean)/float64(sim.Microsecond))
		}
	}
	fmt.Fprintf(&b, "victim p99 ratio, QoS on  = %.2fx (gate <= 2x)\n", res.VictimP99Ratio)
	fmt.Fprintf(&b, "victim p99 ratio, QoS off = %.2fx\n", res.UnprotectedRatio)
	fmt.Fprintf(&b, "aggressor ladder rung = %d (0 throttle, 1 shed, 2 bypass)\n", res.AggRung)
	res.Table = b.String()
	return res, nil
}

// NoisyNeighbor renders the experiment (the registry entry point).
func NoisyNeighbor(scale float64) (string, []stats.Series, error) {
	res, err := NoisyNeighborSweep(scale)
	return res.Table, res.Series, err
}
