package harness

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"kddcache/internal/obs"
	"kddcache/internal/sim"
	"kddcache/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// tinyTracedStack replays a small fixed mixed workload through a traced
// KDD timing stack. Everything about it is deterministic (arithmetic
// LBA sequence, fixed seed), so its trace and metrics bytes can be
// pinned by golden files.
func tinyTracedStack(t *testing.T) (*Stack, *obs.Obs) {
	t.Helper()
	ob := obs.New()
	st, err := Build(StackOpts{
		Policy: PolicyKDD, DeltaMean: 0.25,
		CachePages: 512, DiskPages: 65536, Timing: true, Seed: 7,
		Obs: ob,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := &trace.Trace{Name: "tiny"}
	at := sim.Time(0)
	for i := 0; i < 240; i++ {
		op := trace.Write
		if i%3 == 0 {
			op = trace.Read
		}
		tr.Requests = append(tr.Requests, trace.Request{
			Time: at, Op: op, LBA: int64((i * 61 % 500) * 8), Pages: 1 + i%4,
		})
		at += sim.Millisecond / 2
	}
	r, err := RunTrace(st, tr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Policy.Flush(r.Duration); err != nil {
		t.Fatal(err)
	}
	if err := ob.Tracer.Err(); err != nil {
		t.Fatalf("trace integrity: %v", err)
	}
	if n := ob.Tracer.OpenSpans(); n != 0 {
		t.Fatalf("%d spans still open after flush", n)
	}
	return st, ob
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v — run `go test ./internal/harness -run Golden -update` to create it", err)
	}
	if !bytes.Equal(got, want) {
		gl, wl := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if !bytes.Equal(gl[i], wl[i]) {
				t.Fatalf("%s differs from golden at line %d:\n got: %s\nwant: %s\n(run with -update to regenerate)",
					name, i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("%s differs from golden in length: got %d bytes, want %d (run with -update to regenerate)",
			name, len(got), len(want))
	}
}

// TestObsGoldenArtifacts pins the exact JSONL trace and Prometheus text
// of the tiny traced run — the wire formats are part of the contract.
func TestObsGoldenArtifacts(t *testing.T) {
	st, ob := tinyTracedStack(t)
	checkGolden(t, "tiny.golden.jsonl", ob.TraceJSONL())

	reg := obs.NewRegistry()
	st.PublishMetrics(reg)
	ob.Publish(reg)
	if err := reg.Validate(); err != nil {
		t.Fatal(err)
	}
	var pb bytes.Buffer
	if err := reg.WritePrometheus(&pb); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "tiny.golden.prom", pb.Bytes())
}

// TestTraceProperties checks structural invariants over every span of a
// real decoded trace: IDs unique and increasing in emit order, parents
// emitted before children within the same tree, Req naming the tree's
// root, root begins non-decreasing across trees, and End never before
// Begin.
func TestTraceProperties(t *testing.T) {
	_, ob := tinyTracedStack(t)
	recs, err := obs.ReadTrace(bytes.NewReader(ob.TraceJSONL()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("empty trace")
	}
	seen := make(map[uint64]bool, len(recs))
	inTree := make(map[uint64]obs.Record) // id -> record, current tree only
	var root obs.Record
	var lastRootBegin sim.Time
	var lastID uint64
	for i, r := range recs {
		if seen[r.ID] {
			t.Fatalf("record %d: duplicate id %d", i, r.ID)
		}
		seen[r.ID] = true
		if r.ID <= lastID {
			t.Fatalf("record %d: id %d not increasing (prev %d)", i, r.ID, lastID)
		}
		lastID = r.ID
		if r.End < r.Begin {
			t.Fatalf("record %d (id %d, %s): End %d < Begin %d", i, r.ID, r.Phase, r.End, r.Begin)
		}
		if r.Parent == 0 {
			if r.Req != r.ID {
				t.Fatalf("root %d: Req = %d, want own id", r.ID, r.Req)
			}
			if r.Begin < lastRootBegin {
				t.Fatalf("root %d begins at %d, before previous root at %d", r.ID, r.Begin, lastRootBegin)
			}
			lastRootBegin = r.Begin
			root = r
			inTree = map[uint64]obs.Record{r.ID: r}
			continue
		}
		if r.Req != root.ID {
			t.Fatalf("span %d: Req = %d, want enclosing root %d", r.ID, r.Req, root.ID)
		}
		par, ok := inTree[r.Parent]
		if !ok {
			t.Fatalf("span %d: parent %d not emitted earlier in its tree", r.ID, r.Parent)
		}
		if r.Begin < par.Begin {
			t.Fatalf("span %d begins at %d, before its parent %d at %d", r.ID, r.Begin, par.ID, par.Begin)
		}
		inTree[r.ID] = r
	}
	// The run must have produced all three root kinds.
	roots := map[string]bool{}
	for _, r := range recs {
		if r.Parent == 0 {
			roots[r.Phase.String()] = true
		}
	}
	for _, want := range []string{"read", "write", "flush"} {
		if !roots[want] {
			t.Errorf("no %q root span in trace (roots seen: %v)", want, roots)
		}
	}
}

// TestPhaseArtifactsDeterministic is the observability determinism
// contract: the phases experiment's trace and metrics bytes must be
// identical at any worker-pool width and across same-seed reruns.
func TestPhaseArtifactsDeterministic(t *testing.T) {
	defer SetParallelism(0)
	const scale = 0.0005

	SetParallelism(1)
	tr1, pm1, err := PhaseArtifacts(scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr1) == 0 || len(pm1) == 0 {
		t.Fatalf("empty artifacts: trace=%d prom=%d bytes", len(tr1), len(pm1))
	}
	for _, w := range []int{4, 16} {
		SetParallelism(w)
		trw, pmw, err := PhaseArtifacts(scale)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(tr1, trw) {
			t.Fatalf("trace bytes differ between -parallel 1 and %d", w)
		}
		if !bytes.Equal(pm1, pmw) {
			t.Fatalf("metrics bytes differ between -parallel 1 and %d", w)
		}
	}
	SetParallelism(1)
	tr2, pm2, err := PhaseArtifacts(scale)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tr1, tr2) || !bytes.Equal(pm1, pm2) {
		t.Fatal("same-seed rerun produced different artifact bytes")
	}
}

// TestPhaseBreakdownRenders sanity-checks the human-readable table.
func TestPhaseBreakdownRenders(t *testing.T) {
	defer SetParallelism(0)
	out, err := PhaseBreakdown(0.0005)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fin1", "all workloads", "raid_write", "share"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("phase table missing %q:\n%s", want, out)
		}
	}
}

// TestObsOverheadRun exercises both arms of the harnessbench overhead
// comparison so the bench path stays compiling and deterministic.
func TestObsOverheadRun(t *testing.T) {
	for _, traced := range []bool{false, true} {
		if err := ObsOverheadRun(0.0005, traced); err != nil {
			t.Fatalf("traced=%v: %v", traced, err)
		}
	}
}
