package harness

import (
	"fmt"
	"strings"

	"kddcache/internal/sim"
	"kddcache/internal/workload"
)

// LSRaidResult is the structured form of the backend head-to-head:
// small-write response times and member write amplification for the
// parity backend versus the log-structured backend, both under the same
// KDD cache and the same seeded write-dominant trace. Virtual-time
// deterministic, so the numbers are stable gate inputs.
type LSRaidResult struct {
	Table       string
	KddMeanMs   float64
	LsMeanMs    float64
	KddP99Ms    float64
	LsP99Ms     float64
	KddWriteAmp float64 // member page writes per user page written
	LsWriteAmp  float64
	LsGCCopies  int64
	LsGCSegs    int64
}

// LSRaidCompareSweep runs the head-to-head and returns the structured
// result. The workload is Fin1 — the paper's write-dominant OLTP trace,
// the small-write worst case parity RAID pays RMW for: the kdd arm
// repays parity through the delayed-parity protocol, the lsraid arm
// absorbs the same writes as full-stripe log appends and pays with
// segment GC copy-forward instead.
func LSRaidCompareSweep(scale float64) (LSRaidResult, error) {
	spec := workload.Fin1.Scale(scale)
	// Open-loop replay: keep the arrival rate below the parity arm's
	// RMW-limited service rate so the comparison measures per-request
	// cost, not queueing collapse.
	spec.MeanIOPS = 120
	tr := workload.Synthesize(spec)
	userWrites := tr.Stats().WritePages
	cachePages := roundWays(int64(0.2*float64(spec.UniqueTotal)), 256)
	// Size the array so the write volume wraps the log roughly twice:
	// the lsraid arm then pays its real steady-state GC copy-forward
	// cost instead of filling virgin segments for the whole run.
	diskPages := spec.UniqueTotal/4 + 2048
	diskPages -= diskPages % 32

	type row struct {
		name     string
		mean     float64
		p99      float64
		writeAmp float64
		gcCopies int64
		gcSegs   int64
	}
	backends := []string{"kdd", "lsraid"}
	rows, err := fanOut(len(backends), func(i int) (row, error) {
		st, err := Build(StackOpts{
			Policy: PolicyKDD, Backend: backends[i], DeltaMean: 0.25,
			CachePages: cachePages, DiskPages: diskPages,
			Timing: true, Seed: spec.Seed,
		})
		if err != nil {
			return row{}, err
		}
		res, err := RunTrace(st, tr)
		if err != nil {
			return row{}, err
		}
		if _, err := st.Policy.Flush(res.Duration); err != nil {
			return row{}, err
		}
		rs := st.Array.Stats()
		// Member page writes: the parity engine issues user data through
		// WriteNoParity (NoParityWr) and parity repayments separately;
		// the log engine counts committed member pages in DataWrites and
		// ParityWrites directly (NoParityWr there tracks protocol
		// acceptances, not member I/O — adding it would double count).
		memberWrites := rs.DataWrites + rs.ParityWrites
		if backends[i] == "kdd" {
			memberWrites += rs.NoParityWr
		}
		return row{
			name:     backends[i],
			mean:     res.MeanResponseMs(),
			p99:      float64(res.Latency.Percentile(99)) / float64(sim.Millisecond),
			writeAmp: float64(memberWrites) / float64(userWrites),
			gcCopies: rs.GCCopies,
			gcSegs:   rs.GCSegments,
		}, nil
	})
	if err != nil {
		return LSRaidResult{}, err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "== Backend head-to-head: %s (small-write worst case) ==\n", spec.Name)
	fmt.Fprintf(&b, "%-8s %10s %10s %10s %12s %10s\n",
		"backend", "mean ms", "p99 ms", "write amp", "gc copies", "gc segs")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %10.3f %10.3f %10.3f %12d %10d\n",
			r.name, r.mean, r.p99, r.writeAmp, r.gcCopies, r.gcSegs)
	}
	out := LSRaidResult{
		Table:       b.String(),
		KddMeanMs:   rows[0].mean,
		LsMeanMs:    rows[1].mean,
		KddP99Ms:    rows[0].p99,
		LsP99Ms:     rows[1].p99,
		KddWriteAmp: rows[0].writeAmp,
		LsWriteAmp:  rows[1].writeAmp,
		LsGCCopies:  rows[1].gcCopies,
		LsGCSegs:    rows[1].gcSegs,
	}
	return out, nil
}

// LSRaidCompare is the Experiments-map wrapper returning the formatted
// table.
func LSRaidCompare(scale float64) (string, error) {
	r, err := LSRaidCompareSweep(scale)
	return r.Table, err
}
