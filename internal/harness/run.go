package harness

import (
	"fmt"

	"kddcache/internal/sim"
	"kddcache/internal/stats"
	"kddcache/internal/trace"
	"kddcache/internal/workload"
)

// Result carries everything a figure needs from one run.
type Result struct {
	Policy   string
	Cache    *stats.CacheStats
	Latency  *stats.Histogram // response times in ns (timing runs)
	Duration sim.Time         // virtual time of the last completion
}

// MeanResponseMs returns the mean response time in milliseconds.
func (r *Result) MeanResponseMs() float64 {
	return r.Latency.Mean() / float64(sim.Millisecond)
}

// IdleCleanGap is the idle interval after which the background cleaner is
// woken ("the system has been idle for a certain period", §III-D).
const IdleCleanGap = 200 * sim.Millisecond

// RunTrace replays a trace through the stack open-loop: requests are
// issued at their recorded timestamps regardless of completions, matching
// the paper's RAIDmeter replay.
func RunTrace(st *Stack, tr *trace.Trace) (*Result, error) {
	res := &Result{Policy: st.Policy.Name(), Latency: stats.NewHistogram(1 << 16)}
	var prev sim.Time
	for i, req := range tr.Requests {
		if st.PerRequest != nil {
			st.PerRequest(i)
		}
		// Idle cleaning only fires between consecutive requests: prev is
		// zero before the first request, and a trace that starts late must
		// not trigger a cleaner pass before any request has been issued.
		if i > 0 && req.Time-prev > IdleCleanGap {
			if _, err := st.Policy.Clean(prev, false); err != nil {
				return nil, fmt.Errorf("idle clean: %w", err)
			}
		}
		prev = req.Time
		done := req.Time
		for p := 0; p < req.Pages; p++ {
			var c sim.Time
			var err error
			if req.Op == trace.Read {
				c, err = st.Policy.Read(req.Time, req.LBA+int64(p), nil)
			} else {
				c, err = st.Policy.Write(req.Time, req.LBA+int64(p), nil)
			}
			if err != nil {
				return nil, fmt.Errorf("%s lba %d: %w", req.Op, req.LBA+int64(p), err)
			}
			if c > done {
				done = c
			}
		}
		res.Latency.Observe(int64(done - req.Time))
		if done > res.Duration {
			res.Duration = done
		}
	}
	res.Cache = st.Policy.Stats()
	return res, nil
}

// RunClosedLoop drives the FIO-style benchmark: spec.Threads workers each
// issue their next request the moment the previous one completes
// ("requests are generated back to back with a limited request queue",
// §IV-B1).
func RunClosedLoop(st *Stack, spec workload.FIOSpec) (*Result, error) {
	gen := workload.NewFIOGen(spec)
	res := &Result{Policy: st.Policy.Name(), Latency: stats.NewHistogram(1 << 16)}
	free := make([]sim.Time, spec.Threads)
	for {
		req, ok := gen.Next()
		if !ok {
			break
		}
		// Pick the earliest-free thread.
		th := 0
		for i := 1; i < len(free); i++ {
			if free[i] < free[th] {
				th = i
			}
		}
		start := free[th]
		var done sim.Time
		var err error
		if req.Op == trace.Read {
			done, err = st.Policy.Read(start, req.LBA, nil)
		} else {
			done, err = st.Policy.Write(start, req.LBA, nil)
		}
		if err != nil {
			return nil, err
		}
		free[th] = done
		res.Latency.Observe(int64(done - start))
		if done > res.Duration {
			res.Duration = done
		}
	}
	res.Cache = st.Policy.Stats()
	return res, nil
}

// Policies returns the evaluation's policy lineup for a figure. KDD
// appears once per content-locality level when levels is non-empty.
func Policies(withNossd, withWA bool, kddLevels []float64) []StackOpts {
	var out []StackOpts
	if withNossd {
		out = append(out, StackOpts{Policy: PolicyNossd})
	}
	if withWA {
		out = append(out, StackOpts{Policy: PolicyWA})
	}
	out = append(out, StackOpts{Policy: PolicyWT}, StackOpts{Policy: PolicyLeavO})
	for _, m := range kddLevels {
		out = append(out, StackOpts{Policy: PolicyKDD, DeltaMean: m})
	}
	return out
}
