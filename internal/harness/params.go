package harness

import (
	"fmt"
	"strings"

	"kddcache/internal/blockdev"
	"kddcache/internal/core"
	"kddcache/internal/delta"
	"kddcache/internal/raid"
	"kddcache/internal/workload"
)

// Parameter-sensitivity experiments for the simulator knobs §IV-A1 lists
// ("cache size, page size, cache associativity, NVRAM buffer size, etc.").

// AblationAssociativity sweeps the set associativity. Higher associativity
// approaches global LRU (better hit ratios, slower lookups in real HW);
// the stripe-aligned mapping needs sets at least as large as a stripe.
func AblationAssociativity(scale float64) (string, error) {
	spec := workload.Fin1.Scale(scale)
	tr := workload.Synthesize(spec)
	cachePages := roundWays(int64(0.15*float64(spec.UniqueTotal)), 1024)

	waySizes := []int{32, 64, 256, 1024}
	results, err := fanOut(len(waySizes), func(i int) (*Result, error) {
		r, err := runSim(spec, tr, StackOpts{
			Policy: PolicyKDD, DeltaMean: 0.25,
			CachePages: cachePages, Ways: waySizes[i],
		})
		if err != nil {
			return nil, fmt.Errorf("associativity %d: %w", waySizes[i], err)
		}
		return r, nil
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("== Parameter sweep: set associativity (Fin1, KDD-25%) ==\n")
	fmt.Fprintf(&b, "%-8s %10s %14s %12s\n", "ways", "hit", "SSD writes", "evictions")
	for i, ways := range waySizes {
		r := results[i]
		fmt.Fprintf(&b, "%-8d %10.4f %14d %12d\n",
			ways, r.Cache.HitRatio(), r.Cache.SSDWrites(), r.Cache.Evictions)
	}
	return b.String(), nil
}

// AblationStaging sweeps the NVRAM staging buffer size: a larger buffer
// coalesces more deltas before each DEZ commit (fewer, denser delta
// pages) at the cost of more battery-backed RAM.
func AblationStaging(scale float64) (string, error) {
	spec := workload.Fin1.Scale(scale)
	tr := workload.Synthesize(spec)
	cachePages := roundWays(int64(0.15*float64(spec.UniqueTotal)), 256)
	diskPages := spec.UniqueTotal/4 + 4096
	diskPages -= diskPages % 16

	type stagingPoint struct {
		deltaCommits int64
		ssdWrites    int64
		coalesced    int64
	}
	sizes := []int{1, 4, 16, 64}
	points, err := fanOut(len(sizes), func(i int) (stagingPoint, error) {
		st, err := buildKDDWithStaging(cachePages, diskPages, sizes[i], spec.Seed)
		if err != nil {
			return stagingPoint{}, err
		}
		r, err := RunTrace(st, tr)
		if err != nil {
			return stagingPoint{}, fmt.Errorf("staging %d: %w", sizes[i], err)
		}
		if _, err := st.Policy.Flush(r.Duration); err != nil {
			return stagingPoint{}, err
		}
		k := st.Policy.(*core.KDD)
		return stagingPoint{
			deltaCommits: k.Stats().DeltaCommits,
			ssdWrites:    k.Stats().SSDWrites(),
			coalesced:    k.Staging().Coalesced,
		}, nil
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("== Parameter sweep: NVRAM staging buffer (Fin1, KDD-25%) ==\n")
	fmt.Fprintf(&b, "%-12s %14s %14s %12s\n", "staging", "DEZ commits", "SSD writes", "coalesced")
	for i, pages := range sizes {
		fmt.Fprintf(&b, "%-12s %14d %14d %12d\n",
			fmt.Sprintf("%dKB", pages*4),
			points[i].deltaCommits, points[i].ssdWrites, points[i].coalesced)
	}
	b.WriteString("\nBigger buffers coalesce more repeat updates before committing a DEZ page.\n")
	return b.String(), nil
}

// buildKDDWithStaging assembles a KDD stack with an explicit staging size
// (StackOpts does not expose it; this mirrors Build's null-device path).
func buildKDDWithStaging(cachePages, diskPages int64, stagingPages int, seed uint64) (*Stack, error) {
	var members []blockdev.Device
	for i := 0; i < 5; i++ {
		members = append(members, blockdev.NewNullDevice(fmt.Sprintf("d%d", i), diskPages))
	}
	array, err := raid.New(raid.Config{Level: raid.Level5, ChunkPages: 16}, members)
	if err != nil {
		return nil, err
	}
	metaPages := int64(float64(cachePages) * 0.0059 / (1 - 0.0059))
	if metaPages < 8 {
		metaPages = 8
	}
	ssdDev := blockdev.NewNullDevice("ssd", cachePages+metaPages)
	cfg := core.Config{
		SSD: ssdDev, Backend: array,
		CachePages: cachePages, Ways: 256,
		MetaStart: 0, MetaPages: metaPages,
		Codec:        delta.NewModelled(seed+99, 0.25),
		StagingBytes: stagingPages * blockdev.PageSize,
	}
	k, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Stack{Policy: k, Array: array, SSDDev: ssdDev, KDDConfig: cfg,
		Opts: StackOpts{Policy: PolicyKDD, CachePages: cachePages, DiskPages: diskPages}}, nil
}
