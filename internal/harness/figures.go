package harness

import (
	"fmt"
	"strings"

	"kddcache/internal/stats"
	"kddcache/internal/trace"
	"kddcache/internal/workload"
)

// Scale shrinks every experiment proportionally (footprints, request
// counts, cache sizes). 1.0 reproduces paper-sized runs; tests and quick
// benches use much smaller values — the curves keep their shape because
// cache sizes scale with footprints.
//
// KDDLevels are the content-locality levels evaluated throughout
// (§IV-A2): average delta compression ratios 50%, 25%, 12%.
var KDDLevels = []float64{0.50, 0.25, 0.12}

// cacheFractions are the cache-size sweep points as fractions of each
// workload's unique-page footprint (the paper sweeps absolute page counts
// per trace; fractions preserve the relative coverage at any scale).
var cacheFractions = []float64{0.05, 0.10, 0.20, 0.40, 0.80}

// simOpts builds the trace-driven simulator stack options (§IV-A1): null
// devices, Table-I workload footprint, given cache size.
func simOpts(spec workload.Spec, cachePages int64) StackOpts {
	diskPages := spec.UniqueTotal/4 + 4096 // 5-disk RAID-5: 4 data chunks
	diskPages -= diskPages % 16
	return StackOpts{
		CachePages: cachePages,
		DiskPages:  diskPages,
		Seed:       spec.Seed,
	}
}

// roundWays rounds a cache size to whole sets.
func roundWays(pages int64, ways int) int64 {
	if pages < int64(ways) {
		return int64(ways)
	}
	return pages - pages%int64(ways)
}

// policyLabel is the sweep-figure legend label for a lineup entry.
func policyLabel(po StackOpts) string {
	if po.Policy == PolicyKDD {
		return fmt.Sprintf("KDD-%d%%", int(po.DeltaMean*100+0.5))
	}
	return string(po.Policy)
}

// runSim replays a synthesized workload through one policy and returns
// the result.
func runSim(spec workload.Spec, tr *trace.Trace, o StackOpts) (*Result, error) {
	// Preserve every policy knob from o; only geometry comes from the
	// workload.
	base := o
	geo := simOpts(spec, o.CachePages)
	base.DiskPages = geo.DiskPages
	base.Seed = geo.Seed
	st, err := Build(base)
	if err != nil {
		return nil, err
	}
	r, err := RunTrace(st, tr)
	if err != nil {
		return nil, err
	}
	if _, err := st.Policy.Flush(r.Duration); err != nil {
		return nil, err
	}
	r.Cache = st.Policy.Stats()
	return r, nil
}

// synthesizeAll scales and synthesizes every workload concurrently. The
// returned traces are read-only and safe to share across jobs.
func synthesizeAll(specs []workload.Spec, scale float64) ([]workload.Spec, []*trace.Trace, error) {
	scaled := make([]workload.Spec, len(specs))
	traces, err := fanOut(len(specs), func(i int) (*trace.Trace, error) {
		scaled[i] = specs[i].Scale(scale)
		return workload.Synthesize(scaled[i]), nil
	})
	if err != nil {
		return nil, nil, err
	}
	return scaled, traces, nil
}

// TableI formats the synthesized workload characteristics next to the
// paper's Table I targets.
func TableI(scale float64) (string, error) {
	specs := workload.TableI()
	_, traces, err := synthesizeAll(specs, scale)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== Table I: workload characteristics (scale %.3g) ==\n", scale)
	fmt.Fprintf(&b, "%-12s %14s %14s %14s %12s %12s %10s\n",
		"Workload", "Unique(tot)", "Unique(rd)", "Unique(wr)", "Reads", "Writes", "RdRatio")
	for i, spec := range specs {
		st := traces[i].Stats()
		fmt.Fprintf(&b, "%-12s %14d %14d %14d %12d %12d %10.2f\n",
			spec.Name, st.UniqueTotal, st.UniqueRead, st.UniqueWrite,
			st.ReadPages, st.WritePages, st.ReadRatio)
		fmt.Fprintf(&b, "%-12s %14d %14d %14d %12d %12d %10.2f  (paper x scale)\n",
			"  target", int64(float64(spec.UniqueTotal)*scale),
			int64(float64(spec.UniqueRead)*scale), int64(float64(spec.UniqueWrite)*scale),
			int64(float64(spec.ReadPages)*scale), int64(float64(spec.WritePages)*scale),
			spec.ReadRatio())
	}
	return b.String(), nil
}

// Fig4 explores metadata partition sizing: the share of cache write
// traffic spent on metadata I/O for partition sizes 0.39–0.98% of the
// SSD, per workload, at a representative cache size. KDD-25%.
func Fig4(scale float64) (string, []stats.Series, error) {
	fractions := []float64{0.0039, 0.0059, 0.0078, 0.0098}
	specs := workload.TableI()
	scaled, traces, err := synthesizeAll(specs, scale)
	if err != nil {
		return "", nil, err
	}
	nf := len(fractions)
	ys, err := fanOut(len(specs)*nf, func(i int) (float64, error) {
		si, fi := i/nf, i%nf
		s, mf := scaled[si], fractions[fi]
		cachePages := roundWays(int64(0.2*float64(s.UniqueTotal)), 256)
		r, err := runSim(s, traces[si], StackOpts{
			Policy: PolicyKDD, DeltaMean: 0.25,
			CachePages: cachePages, MetaFrac: mf,
		})
		if err != nil {
			return 0, fmt.Errorf("fig4 %s mf=%.4f: %w", specs[si].Name, mf, err)
		}
		return r.Cache.MetaShare() * 100, nil
	})
	if err != nil {
		return "", nil, err
	}
	var series []stats.Series
	for si, spec := range specs {
		se := stats.Series{Label: spec.Name}
		for fi, mf := range fractions {
			se.X = append(se.X, mf*100)
			se.Y = append(se.Y, ys[si*nf+fi])
		}
		series = append(series, se)
	}
	return stats.Table("Figure 4: metadata I/O share (%) vs metadata partition size (% of SSD)",
		"meta part(%)", series), series, nil
}

// sweepResult bundles the per-policy curves of one workload sweep.
type sweepResult struct {
	workload string
	hit      []stats.Series // hit ratio per policy
	traffic  []stats.Series // SSD writes (pages) per policy
}

// sweepPoint is one (policy × cache size) measurement.
type sweepPoint struct {
	x, hit, traffic float64
}

// sweepAll runs the cache-size sweep of all policies over every workload,
// fanning the independent (workload × policy × size) points over the
// worker pool in one flat batch.
func sweepAll(specs []workload.Spec, scale float64, withWA bool) ([]*sweepResult, error) {
	scaled, traces, err := synthesizeAll(specs, scale)
	if err != nil {
		return nil, err
	}
	lineup := Policies(false, withWA, KDDLevels)
	nf := len(cacheFractions)
	perSpec := len(lineup) * nf
	pts, err := fanOut(len(specs)*perSpec, func(i int) (sweepPoint, error) {
		si := i / perSpec
		po := lineup[(i%perSpec)/nf]
		frac := cacheFractions[i%nf]
		s := scaled[si]
		po.CachePages = roundWays(int64(frac*float64(s.UniqueTotal)), 256)
		r, err := runSim(s, traces[si], po)
		if err != nil {
			return sweepPoint{}, fmt.Errorf("sweep %s %s: %w", specs[si].Name, policyLabel(po), err)
		}
		return sweepPoint{
			x:       float64(po.CachePages) / 1000,
			hit:     r.Cache.HitRatio(),
			traffic: float64(r.Cache.SSDWrites()) / 1000,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]*sweepResult, len(specs))
	for si, spec := range specs {
		sr := &sweepResult{workload: spec.Name}
		for pi, po := range lineup {
			label := policyLabel(po)
			hit := stats.Series{Label: label}
			traffic := stats.Series{Label: label}
			for fi := range cacheFractions {
				p := pts[si*perSpec+pi*nf+fi]
				hit.X = append(hit.X, p.x)
				hit.Y = append(hit.Y, p.hit)
				traffic.X = append(traffic.X, p.x)
				traffic.Y = append(traffic.Y, p.traffic)
			}
			sr.hit = append(sr.hit, hit)
			sr.traffic = append(sr.traffic, traffic)
		}
		out[si] = sr
	}
	return out, nil
}

// sweep runs a cache-size sweep of all policies over one workload.
func sweep(spec workload.Spec, scale float64, withWA bool) (*sweepResult, error) {
	srs, err := sweepAll([]workload.Spec{spec}, scale, withWA)
	if err != nil {
		return nil, err
	}
	return srs[0], nil
}

// hitOnly filters WA out of hit-ratio figures (the paper omits WA there:
// all writes bypass the cache).
func hitOnly(sr *sweepResult) []stats.Series {
	var out []stats.Series
	for _, s := range sr.hit {
		if s.Label != string(PolicyWA) {
			out = append(out, s)
		}
	}
	return out
}

// Fig5 and Fig6: write-dominant traces (Fin1, Hm0).
// Fig7 and Fig8: read-dominant traces (Fin2, Web0).

// FigHitRatio renders a hit-ratio figure (Fig. 5 or 7) for the given
// workloads.
func FigHitRatio(title string, specs []workload.Spec, scale float64) (string, error) {
	srs, err := sweepAll(specs, scale, true)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for i, spec := range specs {
		b.WriteString(stats.Table(
			fmt.Sprintf("%s — %s: hit ratio vs cache size (Kpages)", title, spec.Name),
			"cache(Kpg)", hitOnly(srs[i])))
	}
	return b.String(), nil
}

// FigWriteTraffic renders an SSD write-traffic figure (Fig. 6 or 8).
func FigWriteTraffic(title string, specs []workload.Spec, scale float64) (string, error) {
	srs, err := sweepAll(specs, scale, true)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for i, spec := range specs {
		b.WriteString(stats.Table(
			fmt.Sprintf("%s — %s: SSD writes (Kpages) vs cache size (Kpages)", title, spec.Name),
			"cache(Kpg)", srs[i].traffic))
	}
	return b.String(), nil
}

// Fig5 is the write-dominant hit-ratio figure.
func Fig5(scale float64) (string, error) {
	return FigHitRatio("Figure 5", []workload.Spec{workload.Fin1, workload.Hm0}, scale)
}

// Fig6 is the write-dominant SSD-write-traffic figure.
func Fig6(scale float64) (string, error) {
	return FigWriteTraffic("Figure 6", []workload.Spec{workload.Fin1, workload.Hm0}, scale)
}

// Fig7 is the read-dominant hit-ratio figure.
func Fig7(scale float64) (string, error) {
	return FigHitRatio("Figure 7", []workload.Spec{workload.Fin2, workload.Web0}, scale)
}

// Fig8 is the read-dominant SSD-write-traffic figure.
func Fig8(scale float64) (string, error) {
	return FigWriteTraffic("Figure 8", []workload.Spec{workload.Fin2, workload.Web0}, scale)
}

// replayIOPS sets the open-loop replay rate per workload: roughly the
// natural rates of the original traces, low enough that the cacheless
// baseline saturates but does not diverge.
var replayIOPS = map[string]float64{
	"Fin1": 80, "Fin2": 120, "Hm0": 80, "Web0": 110,
}

// Fig9 measures average response time via open-loop trace replay on the
// timing stack (HDD models + flash model): the prototype experiment of
// §IV-B2. KDD runs at medium content locality (25%), like the paper.
func Fig9(scale float64) (string, []stats.Series, error) {
	lineup := Policies(true, true, []float64{0.25})
	specs := workload.TableI()
	nw := len(specs)
	ys, err := fanOut(len(lineup)*nw, func(i int) (float64, error) {
		po, spec := lineup[i/nw], specs[i%nw]
		label := string(po.Policy)
		if po.Policy == PolicyKDD {
			label = "KDD"
		}
		s := spec.Scale(scale)
		s.MeanIOPS = replayIOPS[spec.Name]
		tr := workload.Synthesize(s)
		o := simOpts(s, roundWays(int64(0.25*float64(s.UniqueTotal)), 256))
		o.Policy = po.Policy
		o.DeltaMean = po.DeltaMean
		o.Timing = true
		st, err := Build(o)
		if err != nil {
			return 0, err
		}
		r, err := RunTrace(st, tr)
		if err != nil {
			return 0, fmt.Errorf("fig9 %s %s: %w", spec.Name, label, err)
		}
		return r.MeanResponseMs(), nil
	})
	if err != nil {
		return "", nil, err
	}
	var series []stats.Series
	for pi, po := range lineup {
		label := string(po.Policy)
		if po.Policy == PolicyKDD {
			label = "KDD"
		}
		se := stats.Series{Label: label}
		for wi := range specs {
			se.X = append(se.X, float64(wi))
			se.Y = append(se.Y, ys[pi*nw+wi])
		}
		series = append(series, se)
	}
	var b strings.Builder
	b.WriteString("== Figure 9: average response time (ms), open-loop replay ==\n")
	b.WriteString("(x: 0=Fin1 1=Fin2 2=Hm0 3=Web0)\n")
	b.WriteString(stats.Table("Figure 9", "workload#", series))
	return b.String(), series, nil
}

// fioReadRates are the §IV-B3 sweep points.
var fioReadRates = []float64{0, 0.25, 0.50, 0.75}

// runFIO executes the closed-loop benchmark for one policy and read rate.
func runFIO(po StackOpts, readRate, scale float64) (*Result, error) {
	spec := workload.DefaultFIO(readRate).Scale(scale)
	// Cache = 1GB scaled; working set 1.6GB scaled (larger than cache,
	// like the paper).
	cachePages := roundWays(int64(262144*scale), 256)
	o := StackOpts{
		Policy:     po.Policy,
		DeltaMean:  0.25, // paper: medium content locality for prototype runs
		CachePages: cachePages,
		DiskPages:  roundWays(spec.WorkingSetPages/2+8192, 16),
		Timing:     true,
		Seed:       7,
	}
	st, err := Build(o)
	if err != nil {
		return nil, err
	}
	return RunClosedLoop(st, spec)
}

// fioSweep fans the (policy × read rate) closed-loop grid over the worker
// pool and returns results indexed [policy][read rate].
func fioSweep(lineup []StackOpts, scale float64, figure string) ([][]*Result, error) {
	nr := len(fioReadRates)
	flat, err := fanOut(len(lineup)*nr, func(i int) (*Result, error) {
		po, rr := lineup[i/nr], fioReadRates[i%nr]
		label := string(po.Policy)
		if po.Policy == PolicyKDD {
			label = "KDD"
		}
		r, err := runFIO(po, rr, scale)
		if err != nil {
			return nil, fmt.Errorf("%s %s rr=%.2f: %w", figure, label, rr, err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	out := make([][]*Result, len(lineup))
	for pi := range lineup {
		out[pi] = flat[pi*nr : (pi+1)*nr]
	}
	return out, nil
}

// Fig10 is the closed-loop average response time sweep over read rates.
func Fig10(scale float64) (string, []stats.Series, error) {
	lineup := Policies(true, true, []float64{0.25})
	results, err := fioSweep(lineup, scale, "fig10")
	if err != nil {
		return "", nil, err
	}
	var series []stats.Series
	for pi, po := range lineup {
		label := string(po.Policy)
		if po.Policy == PolicyKDD {
			label = "KDD"
		}
		se := stats.Series{Label: label}
		for ri, rr := range fioReadRates {
			se.X = append(se.X, rr*100)
			se.Y = append(se.Y, results[pi][ri].MeanResponseMs())
		}
		series = append(series, se)
	}
	return stats.Table("Figure 10: average response time (ms) vs read rate (%), FIO closed loop",
		"read rate(%)", series), series, nil
}

// Fig11 is the closed-loop SSD write traffic sweep over read rates.
func Fig11(scale float64) (string, []stats.Series, error) {
	lineup := Policies(false, true, []float64{0.25})
	results, err := fioSweep(lineup, scale, "fig11")
	if err != nil {
		return "", nil, err
	}
	var series []stats.Series
	for pi, po := range lineup {
		label := string(po.Policy)
		if po.Policy == PolicyKDD {
			label = "KDD"
		}
		se := stats.Series{Label: label}
		for ri, rr := range fioReadRates {
			se.X = append(se.X, rr*100)
			se.Y = append(se.Y, float64(results[pi][ri].Cache.SSDWrites())/1000)
		}
		series = append(series, se)
	}
	return stats.Table("Figure 11: SSD write traffic (Kpages) vs read rate (%), FIO closed loop",
		"read rate(%)", series), series, nil
}

// TableII derives the qualitative policy comparison from a quick
// closed-loop run at 25% reads.
func TableII(scale float64) (string, error) {
	type row struct {
		name    string
		latency float64
		writes  int64
	}
	lineup := Policies(false, true, []float64{0.25})
	rows, err := fanOut(len(lineup), func(i int) (row, error) {
		po := lineup[i]
		label := string(po.Policy)
		if po.Policy == PolicyKDD {
			label = "KDD"
		}
		r, err := runFIO(po, 0.25, scale)
		if err != nil {
			return row{}, err
		}
		return row{label, r.MeanResponseMs(), r.Cache.SSDWrites()}, nil
	})
	if err != nil {
		return "", err
	}
	// Latency is "Low" if within 1.3x of the best; endurance is "Good" if
	// SSD writes within 2x of the fewest (WA's read-fill-only floor).
	bestLat, bestWr := rows[0].latency, rows[0].writes
	for _, r := range rows[1:] {
		if r.latency < bestLat {
			bestLat = r.latency
		}
		if r.writes < bestWr {
			bestWr = r.writes
		}
	}
	var b strings.Builder
	b.WriteString("== Table II: comparison of caching policies (derived) ==\n")
	fmt.Fprintf(&b, "%-10s %14s %16s %12s %14s\n", "Policy", "I/O latency", "SSD endurance", "mean(ms)", "SSD writes")
	for _, r := range rows {
		lat := "High"
		if r.latency <= 1.3*bestLat {
			lat = "Low"
		}
		end := "Bad"
		if float64(r.writes) <= 2.0*float64(bestWr) {
			end = "Good"
		}
		fmt.Fprintf(&b, "%-10s %14s %16s %12.2f %14d\n", r.name, lat, end, r.latency, r.writes)
	}
	return b.String(), nil
}
