package harness

import (
	"strings"
	"testing"
)

// TestParameterSweeps smoke-runs the §IV-A1 knob sweeps at a tiny scale:
// every sweep point must simulate cleanly and emit one table row.
func TestParameterSweeps(t *testing.T) {
	cases := []struct {
		name string
		run  func(float64) (string, error)
		rows []string
	}{
		{"associativity", AblationAssociativity, []string{"32", "64", "256", "1024"}},
		{"staging", AblationStaging, []string{"== Parameter sweep"}},
	}
	for _, c := range cases {
		out, err := c.run(0.004)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		for _, want := range c.rows {
			if !strings.Contains(out, want) {
				t.Fatalf("%s: output missing %q:\n%s", c.name, want, out)
			}
		}
	}
}
