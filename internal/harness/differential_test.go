package harness

// The differential battery: the SAME seeded trace is replayed through
// two full KDD cache stacks that differ only in the array backend — the
// paper's parity RAID with delayed parity ("kdd") versus the
// log-structured backend ("lsraid") — and the two executions must be
// indistinguishable at the cache boundary: every read returns
// byte-identical data, and the cache engine's recovered-metadata digest
// matches at every flush barrier. Three trace families (uniform, SPC,
// MSR) cover all parser front ends, and the whole battery runs under
// FanOut at widths 1, 4, and 16 so the race detector sees the
// concurrent-replay shape CI uses.

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"kddcache/internal/blockdev"
	"kddcache/internal/core"
	"kddcache/internal/trace"
	"kddcache/internal/workload"
)

// diffGeometry is deliberately small: footprint and cache sized so the
// replay exercises eviction, DEZ packing, cleaning, and (on the lsraid
// side) segment GC within a few thousand requests.
func diffStack(t *testing.T, backend string, seed uint64) *Stack {
	t.Helper()
	st, err := Build(StackOpts{
		Policy:     PolicyKDD,
		Backend:    backend,
		DataMode:   true,
		Disks:      5,
		DiskPages:  2048,
		ChunkPages: 4,
		CachePages: 512,
		Ways:       16,
		Seed:       seed,
	})
	if err != nil {
		t.Fatalf("build %s stack: %v", backend, err)
	}
	return st
}

// diffTrace materialises one family's trace. All three families derive
// from seeded Table I synthetic workloads, then round-trip through the
// family's on-disk format and parser, so the battery drives the exact
// request streams the replay tools would.
func diffTrace(t *testing.T, family string, seed uint64) *trace.Trace {
	t.Helper()
	spec := workload.Fin1.Scale(0.0006)
	spec.Seed = seed
	tr := workload.Synthesize(spec)
	switch family {
	case "uniform":
		var buf bytes.Buffer
		if err := trace.WriteUniform(&buf, tr); err != nil {
			t.Fatal(err)
		}
		out, err := trace.ParseUniform("uniform", &buf)
		if err != nil {
			t.Fatal(err)
		}
		return out
	case "spc":
		var sb strings.Builder
		for _, r := range tr.Requests {
			op := "W"
			if r.Op == trace.Read {
				op = "R"
			}
			fmt.Fprintf(&sb, "0,%d,%d,%s,%.6f\n",
				r.LBA*(blockdev.PageSize/512), int64(r.Pages)*blockdev.PageSize,
				op, r.Time.Seconds())
		}
		out, err := trace.ParseSPC("spc", strings.NewReader(sb.String()))
		if err != nil {
			t.Fatal(err)
		}
		return out
	case "msr":
		var sb strings.Builder
		for _, r := range tr.Requests {
			op := "Write"
			if r.Op == trace.Read {
				op = "Read"
			}
			// Timestamp in Windows 100ns ticks, offset and size in bytes.
			fmt.Fprintf(&sb, "%d,host,0,%s,%d,%d,0\n",
				int64(r.Time)/100, op,
				r.LBA*blockdev.PageSize, int64(r.Pages)*blockdev.PageSize)
		}
		out, err := trace.ParseMSR("msr", strings.NewReader(sb.String()))
		if err != nil {
			t.Fatal(err)
		}
		return out
	default:
		t.Fatalf("unknown family %q", family)
		return nil
	}
}

// diffPage derives the deterministic content for a write: a pure
// function of (lba, op ordinal) so both stacks are fed identical bytes.
func diffPage(lba int64, ord int) []byte {
	p := make([]byte, blockdev.PageSize)
	for i := 0; i < len(p); i += 8 {
		v := uint64(lba)*0x9E3779B97F4A7C15 + uint64(ord)*0x2545F4914F6CDD1D + uint64(i)
		p[i] = byte(v)
		p[i+1] = byte(v >> 8)
		p[i+2] = byte(v >> 16)
		p[i+3] = byte(v >> 24)
	}
	return p
}

// runDifferential replays one family through a kdd and an lsraid stack
// in lockstep and fails on the first observable divergence.
func runDifferential(t *testing.T, family string, seed uint64) {
	kdd := diffStack(t, "kdd", seed)
	ls := diffStack(t, "lsraid", seed)
	if kp, lp := kdd.Array.Pages(), ls.Array.Pages(); kp != lp {
		t.Fatalf("logical capacity mismatch: kdd %d vs lsraid %d", kp, lp)
	}
	tr := diffTrace(t, family, seed)
	logical := kdd.Array.Pages()
	kcore, ok := kdd.Policy.(*core.KDD)
	if !ok {
		t.Fatalf("kdd stack policy is %T", kdd.Policy)
	}
	lcore, ok := ls.Policy.(*core.KDD)
	if !ok {
		t.Fatalf("lsraid stack policy is %T", ls.Policy)
	}
	kbuf := make([]byte, blockdev.PageSize)
	lbuf := make([]byte, blockdev.PageSize)
	ord, reads, flushes := 0, 0, 0
	for i, r := range tr.Requests {
		for p := 0; p < r.Pages; p++ {
			lba := (r.LBA + int64(p)) % logical
			ord++
			if r.Op == trace.Write {
				data := diffPage(lba, ord)
				if _, err := kdd.Policy.Write(r.Time, lba, data); err != nil {
					t.Fatalf("%s op %d: kdd write %d: %v", family, i, lba, err)
				}
				if _, err := ls.Policy.Write(r.Time, lba, data); err != nil {
					t.Fatalf("%s op %d: lsraid write %d: %v", family, i, lba, err)
				}
			} else {
				if _, err := kdd.Policy.Read(r.Time, lba, kbuf); err != nil {
					t.Fatalf("%s op %d: kdd read %d: %v", family, i, lba, err)
				}
				if _, err := ls.Policy.Read(r.Time, lba, lbuf); err != nil {
					t.Fatalf("%s op %d: lsraid read %d: %v", family, i, lba, err)
				}
				if !bytes.Equal(kbuf, lbuf) {
					t.Fatalf("%s op %d: read %d diverged between backends", family, i, lba)
				}
				reads++
			}
		}
		// Flush barrier every 500 requests: drain ALL delayed state on
		// both sides and compare the engines' recovered-metadata digests.
		if i%500 == 499 {
			if _, err := kdd.Policy.Flush(r.Time); err != nil {
				t.Fatalf("%s op %d: kdd flush: %v", family, i, err)
			}
			if _, err := ls.Policy.Flush(r.Time); err != nil {
				t.Fatalf("%s op %d: lsraid flush: %v", family, i, err)
			}
			if kd, ld := kcore.StateDigest(), lcore.StateDigest(); kd != ld {
				t.Fatalf("%s op %d: state digest diverged at flush barrier: %016x vs %016x", family, i, kd, ld)
			}
			if n := kdd.Array.StaleRows(); n != 0 {
				t.Fatalf("%s op %d: kdd has %d stale rows after flush", family, i, n)
			}
			if n := ls.Array.StaleRows(); n != 0 {
				t.Fatalf("%s op %d: lsraid has %d stale rows after flush", family, i, n)
			}
			flushes++
		}
	}
	if reads == 0 || flushes == 0 {
		t.Fatalf("%s: battery too small: %d reads, %d flush barriers", family, reads, flushes)
	}
	// Final barrier plus a full-footprint sweep through the cache.
	if _, err := kdd.Policy.Flush(0); err != nil {
		t.Fatal(err)
	}
	if _, err := ls.Policy.Flush(0); err != nil {
		t.Fatal(err)
	}
	if kd, ld := kcore.StateDigest(), lcore.StateDigest(); kd != ld {
		t.Fatalf("%s: final state digest diverged: %016x vs %016x", family, kd, ld)
	}
	maxLBA := tr.MaxLBA()
	if maxLBA >= logical {
		maxLBA = logical - 1
	}
	for lba := int64(0); lba <= maxLBA; lba++ {
		if _, err := kdd.Policy.Read(0, lba, kbuf); err != nil {
			t.Fatalf("%s sweep: kdd read %d: %v", family, lba, err)
		}
		if _, err := ls.Policy.Read(0, lba, lbuf); err != nil {
			t.Fatalf("%s sweep: lsraid read %d: %v", family, lba, err)
		}
		if !bytes.Equal(kbuf, lbuf) {
			t.Fatalf("%s sweep: lba %d diverged", family, lba)
		}
	}
}

// TestDifferentialBackends runs the three-family battery at FanOut
// widths 1, 4, and 16. Each job is self-contained (its own pair of
// stacks), so any width must produce the same verdict; 16 exceeds the
// job count, exercising the pool's saturation path under -race.
func TestDifferentialBackends(t *testing.T) {
	families := []string{"uniform", "spc", "msr"}
	seeds := []uint64{11, 23}
	type job struct {
		family string
		seed   uint64
	}
	var jobs []job
	for _, f := range families {
		for _, s := range seeds {
			jobs = append(jobs, job{f, s})
		}
	}
	for _, width := range []int{1, 4, 16} {
		width := width
		t.Run(fmt.Sprintf("parallel%d", width), func(t *testing.T) {
			if testing.Short() && width == 4 {
				t.Skip("short mode: widths 1 and 16 bracket the pool shapes")
			}
			_, err := FanOut(width, len(jobs), func(i int) (struct{}, error) {
				runDifferential(t, jobs[i].family, jobs[i].seed)
				return struct{}{}, nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}
