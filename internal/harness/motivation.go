package harness

import (
	"fmt"
	"strings"

	"kddcache/internal/workload"
)

// Motivation reproduces the paper's §I argument against NVRAM buffering:
// with random small writes, an NVRAM write buffer rarely assembles full
// stripes, so once it fills, write latency collapses to RAID small-write
// speed — while KDD's SSD-sized cache keeps absorbing hits. Also includes
// write-back (WB) to show its latency floor (and its §IV-A1 exclusion is
// demonstrated in the cache package's tests).
func Motivation(scale float64) (string, error) {
	spec := workload.Fin1.Scale(scale)
	spec.MeanIOPS = 80
	tr := workload.Synthesize(spec)
	diskPages := spec.UniqueTotal/4 + 8192
	diskPages -= diskPages % 16
	cachePages := roundWays(int64(0.25*float64(spec.UniqueTotal)), 256)

	configs := []struct {
		label string
		opts  StackOpts
	}{
		// NVRAM sizes scale with the footprint like everything else: real
		// arrays pair MBs of NVRAM with TBs of storage, so the buffer
		// covers well under 1% of the working set.
		{"Nossd", StackOpts{Policy: PolicyNossd}},
		{"PLog", StackOpts{Policy: PolicyPLog, PLogPages: spec.UniqueTotal / 2}},
		{"NVB-0.5%", StackOpts{Policy: PolicyNVB, NVBPages: int(spec.UniqueTotal / 200)}},
		{"NVB-2%", StackOpts{Policy: PolicyNVB, NVBPages: int(spec.UniqueTotal / 50)}},
		{"WB", StackOpts{Policy: PolicyWB, CachePages: cachePages}},
		{"KDD", StackOpts{Policy: PolicyKDD, DeltaMean: 0.25, CachePages: cachePages}},
	}
	results, err := fanOut(len(configs), func(i int) (*Result, error) {
		o := configs[i].opts
		o.DiskPages = diskPages
		o.Timing = true
		o.Seed = spec.Seed
		if o.CachePages == 0 {
			o.CachePages = cachePages // unused by Nossd/NVB but keeps SSD sizing valid
		}
		st, err := Build(o)
		if err != nil {
			return nil, err
		}
		r, err := RunTrace(st, tr)
		if err != nil {
			return nil, fmt.Errorf("motivation %s: %w", configs[i].label, err)
		}
		return r, nil
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("== Motivation (§I): why NVRAM buffering is not enough ==\n")
	fmt.Fprintf(&b, "%-14s %14s %14s %16s\n", "policy", "mean (ms)", "p95 (ms)", "full stripes")
	for i, c := range configs {
		r := results[i]
		fmt.Fprintf(&b, "%-14s %14.2f %14.2f %16d\n",
			c.label, r.MeanResponseMs(),
			float64(r.Latency.Percentile(95))/1e6, r.Cache.SmallWritesSaved)
	}
	b.WriteString("\nNVB (§I) helps only marginally: poor disk-level locality keeps full stripes\n")
	b.WriteString("rare, so sustained writes still pay the small-write penalty. Parity logging\n")
	b.WriteString("(§V-A) fixes writes (~2x over Nossd) but caches no reads and keeps its\n")
	b.WriteString("update images in RAM. WB has a low mean but a brutal destage tail — and\n")
	b.WriteString("loses data on SSD failure. KDD matches PLog's write relief while adding\n")
	b.WriteString("an SSD-sized read cache, RPO-0 durability, and flash wear control.\n")
	return b.String(), nil
}
