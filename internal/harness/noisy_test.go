package harness

import (
	"strings"
	"testing"

	"kddcache/internal/qos"
)

// TestNoisyNeighborIsolation is the tentpole acceptance test: with the
// QoS layer on, one tenant flooding at 10x its budget moves the
// victims' p99 by at most 2x over their aggressor-free baseline, while
// the aggressor itself is throttled, shed, and walked down the ladder
// to the bypass rung. The unprotected arm must be strictly worse — that
// is the interference being prevented.
func TestNoisyNeighborIsolation(t *testing.T) {
	res, err := NoisyNeighborSweep(0.02)
	if err != nil {
		t.Fatal(err)
	}
	if res.VictimP99Ratio <= 0 {
		t.Fatalf("victim p99 ratio %v; isolated baseline missing", res.VictimP99Ratio)
	}
	if res.VictimP99Ratio > 2.0 {
		t.Errorf("victim p99 ratio %.2fx exceeds the 2x isolation gate", res.VictimP99Ratio)
	}
	if res.UnprotectedRatio <= res.VictimP99Ratio {
		t.Errorf("unprotected ratio %.2fx not worse than protected %.2fx; QoS bought nothing",
			res.UnprotectedRatio, res.VictimP99Ratio)
	}
	if res.AggThrottled == 0 {
		t.Error("aggressor never throttled")
	}
	if res.AggShed == 0 {
		t.Error("aggressor never shed")
	}
	if res.AggDeadline == 0 {
		t.Error("no aggressor retry ever died on its deadline")
	}
	if res.AggRung != qos.RungBypass {
		t.Errorf("aggressor finished on rung %d, want bypass (%d)", res.AggRung, qos.RungBypass)
	}
	for _, want := range []string{"victim-a", "aggressor", "isolated", "unprotected"} {
		if !strings.Contains(res.Table, want) {
			t.Errorf("table missing %q:\n%s", want, res.Table)
		}
	}
	if len(res.Series) != 3 {
		t.Fatalf("got %d series, want one per tenant", len(res.Series))
	}
}

// TestDeterministicNoisyAcrossParallelism proves the experiment's
// rendered output is byte-identical at any worker-pool width: the QoS
// gate, the retry heap and the service model are all virtual-time
// deterministic, and the goroutine-mode plane never leaks scheduling
// into the measurements.
func TestDeterministicNoisyAcrossParallelism(t *testing.T) {
	defer SetParallelism(0)

	SetParallelism(1)
	serial, serialSeries, err := NoisyNeighbor(0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(serialSeries) == 0 {
		t.Fatal("registry entry point dropped the tenant series")
	}
	for _, par := range []int{4, 16} {
		SetParallelism(par)
		got, err := NoisyNeighborSweep(0.02)
		if err != nil {
			t.Fatalf("parallel=%d: %v", par, err)
		}
		if got.Table != serial {
			t.Fatalf("noisy-neighbor output differs between -parallel 1 and -parallel %d:\n--- serial ---\n%s\n--- parallel ---\n%s",
				par, serial, got.Table)
		}
	}
}
