package harness

import (
	"testing"

	"kddcache/internal/workload"
)

func TestClosedLoopDeterminism(t *testing.T) {
	run := func() (float64, int64) {
		st, err := Build(StackOpts{
			Policy: PolicyKDD, DeltaMean: 0.25,
			CachePages: 2048, DiskPages: 65536, Timing: true, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		spec := workload.DefaultFIO(0.25).Scale(0.005)
		r, err := RunClosedLoop(st, spec)
		if err != nil {
			t.Fatal(err)
		}
		return r.MeanResponseMs(), r.Cache.SSDWrites()
	}
	m1, w1 := run()
	m2, w2 := run()
	if m1 != m2 || w1 != w2 {
		t.Fatalf("closed loop not deterministic: %f/%d vs %f/%d", m1, w1, m2, w2)
	}
}

func TestClosedLoopThreadBound(t *testing.T) {
	// With one thread everything serializes; with 16 the virtual duration
	// must shrink substantially (throughput scales with concurrency until
	// the devices saturate).
	duration := func(threads int) float64 {
		st, err := Build(StackOpts{
			Policy: PolicyWT, CachePages: 1024, DiskPages: 65536,
			Timing: true, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		spec := workload.DefaultFIO(0.5).Scale(0.002)
		spec.Threads = threads
		r, err := RunClosedLoop(st, spec)
		if err != nil {
			t.Fatal(err)
		}
		return r.Duration.Seconds()
	}
	d1 := duration(1)
	d16 := duration(16)
	// Speedup is bounded by device-level parallelism (5 spindles, and an
	// RMW occupies two of them per phase), not by thread count; anything
	// clearly above 1x demonstrates the closed loop overlaps requests.
	if d16 >= d1*3/4 {
		t.Fatalf("16 threads (%.2fs) not faster than 1 (%.2fs)", d16, d1)
	}
}

func TestRunTraceIdleTriggersCleaner(t *testing.T) {
	// A trace with a long idle gap must wake the cleaner: stale rows
	// present before the gap are repaired without an explicit Flush.
	spec := workload.Fin1.Scale(0.002)
	spec.MeanIOPS = 50
	tr := workload.Synthesize(spec)
	// Insert a 10-second gap two-thirds in.
	cut := 2 * len(tr.Requests) / 3
	for i := cut; i < len(tr.Requests); i++ {
		tr.Requests[i].Time += 10_000_000_000
	}
	st, err := Build(simOptsWith(spec, PolicyKDD, 0.25, roundWays(spec.UniqueTotal/5, 256)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunTrace(st, tr); err != nil {
		t.Fatal(err)
	}
	if st.Policy.Stats().CleanerRuns == 0 {
		t.Fatal("idle gap did not wake the cleaner")
	}
}

func TestMotivationOutput(t *testing.T) {
	out, err := Motivation(0.004)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"Nossd", "PLog", "NVB", "WB", "KDD"} {
		if !containsLine(out, w) {
			t.Fatalf("missing %q in:\n%s", w, out)
		}
	}
}

func containsLine(out, w string) bool {
	return len(out) > 0 && (stringIndex(out, w) >= 0)
}

func stringIndex(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestPoliciesLineup(t *testing.T) {
	all := Policies(true, true, []float64{0.5, 0.25})
	if len(all) != 6 {
		t.Fatalf("lineup size %d", len(all))
	}
	if all[0].Policy != PolicyNossd || all[1].Policy != PolicyWA {
		t.Fatalf("lineup order wrong: %+v", all[:2])
	}
	none := Policies(false, false, nil)
	if len(none) != 2 {
		t.Fatalf("minimal lineup size %d", len(none))
	}
}
