package harness

import (
	"bytes"
	"fmt"
	"strings"

	"kddcache/internal/obs"
	"kddcache/internal/workload"
)

// This file implements the "phases" experiment: an open-loop replay of the
// Table-I workloads through the KDD timing stack with the span tracer
// attached, producing the per-phase latency attribution the paper's prose
// argues about (where does a cached write spend its time — NVRAM staging,
// metalog append, or the RAID small-write?) as hard numbers. Each workload
// runs with its own tracer so the fan-out stays deterministic at any
// worker-pool width; profiles are merged in workload order afterwards.

// phaseOut is one workload's observability harvest.
type phaseOut struct {
	name  string
	ob    *obs.Obs
	st    *Stack
	spans uint64
}

// phaseRun replays one Table-I workload through a traced KDD stack.
func phaseRun(spec workload.Spec, scale float64) (*phaseOut, error) {
	s := spec.Scale(scale)
	s.MeanIOPS = replayIOPS[spec.Name]
	tr := workload.Synthesize(s)
	o := simOpts(s, roundWays(int64(0.25*float64(s.UniqueTotal)), 256))
	o.Policy = PolicyKDD
	o.DeltaMean = 0.25
	o.Timing = true
	ob := obs.New()
	o.Obs = ob
	st, err := Build(o)
	if err != nil {
		return nil, err
	}
	r, err := RunTrace(st, tr)
	if err != nil {
		return nil, fmt.Errorf("phases %s: %w", spec.Name, err)
	}
	if _, err := st.Policy.Flush(r.Duration); err != nil {
		return nil, fmt.Errorf("phases %s flush: %w", spec.Name, err)
	}
	if err := ob.Tracer.Err(); err != nil {
		return nil, fmt.Errorf("phases %s trace: %w", spec.Name, err)
	}
	if n := ob.Tracer.OpenSpans(); n != 0 {
		return nil, fmt.Errorf("phases %s: %d spans still open after flush", spec.Name, n)
	}
	return &phaseOut{name: spec.Name, ob: ob, st: st, spans: ob.Tracer.Spans()}, nil
}

// phaseRuns fans the Table-I workloads over the worker pool and merges
// their observability output in workload order (deterministic at any
// pool width).
func phaseRuns(scale float64) ([]*phaseOut, error) {
	specs := workload.TableI()
	return fanOut(len(specs), func(i int) (*phaseOut, error) {
		return phaseRun(specs[i], scale)
	})
}

// PhaseBreakdown regenerates the per-phase latency attribution table:
// one profile block per workload plus the all-workload merge.
func PhaseBreakdown(scale float64) (string, error) {
	outs, err := phaseRuns(scale)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("== Phase-attributed latency (KDD, open-loop replay) ==\n")
	merged := obs.NewProfile()
	for _, po := range outs {
		fmt.Fprintf(&b, "\n-- %s (%d spans) --\n", po.name, po.spans)
		b.WriteString(po.ob.Profile().Table())
		merged.Merge(po.ob.Profile())
	}
	b.WriteString("\n-- all workloads --\n")
	b.WriteString(merged.Table())
	return b.String(), nil
}

// ObsOverheadRun replays the Fin1 workload through the KDD timing stack
// once, with or without the span tracer attached. harnessbench times
// both variants to bound the observability overhead; the determinism
// tests assert the bound stays within budget.
func ObsOverheadRun(scale float64, traced bool) error {
	spec := workload.TableI()[0]
	s := spec.Scale(scale)
	s.MeanIOPS = replayIOPS[spec.Name]
	tr := workload.Synthesize(s)
	o := simOpts(s, roundWays(int64(0.25*float64(s.UniqueTotal)), 256))
	o.Policy = PolicyKDD
	o.DeltaMean = 0.25
	o.Timing = true
	if traced {
		o.Obs = obs.New()
		defer o.Obs.Release() // recycle ring storage across timing runs
	}
	st, err := Build(o)
	if err != nil {
		return err
	}
	r, err := RunTrace(st, tr)
	if err != nil {
		return err
	}
	_, err = st.Policy.Flush(r.Duration)
	return err
}

// PhaseArtifacts produces the machine-readable observability artifacts of
// the phases experiment: the concatenated JSONL trace (per-workload
// tracers back to back, in Table-I order) and the Prometheus text
// exposition of the merged registry. Both are byte-identical at any
// worker-pool width and across same-seed runs; the golden tests pin them.
func PhaseArtifacts(scale float64) (trace, prom []byte, err error) {
	outs, err := phaseRuns(scale)
	if err != nil {
		return nil, nil, err
	}
	reg := obs.NewRegistry()
	merged := obs.NewProfile()
	var buf bytes.Buffer
	for _, po := range outs {
		buf.Write(po.ob.TraceJSONL())
		merged.Merge(po.ob.Profile())
	}
	// Registry contents come from the last workload's stack (device and
	// engine counters) plus the merged phase profile: a representative,
	// fully-populated exposition with every metric family present.
	outs[len(outs)-1].st.PublishMetrics(reg)
	merged.Publish(reg)
	if err := reg.Validate(); err != nil {
		return nil, nil, err
	}
	var pb bytes.Buffer
	if err := reg.WritePrometheus(&pb); err != nil {
		return nil, nil, err
	}
	return buf.Bytes(), pb.Bytes(), nil
}
