package harness

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the deterministic fan-out runner every experiment
// driver is built on. An experiment is a set of fully independent jobs —
// one (workload × policy × sweep point) simulation each, every job
// building its own stack, devices, and RNG streams from StackOpts.Seed —
// so they can execute concurrently on a bounded worker pool while the
// rendered tables and CSVs stay byte-identical to a serial run: results
// are collected into a slice indexed by submission order, and all
// assembly/formatting happens after the pool drains.
//
// Error semantics: the first failure observed cancels all not-yet-started
// jobs; jobs already in flight run to completion. After the pool drains,
// the error of the lowest-numbered failed job is returned, which is the
// same error a serial run would report whenever a single job is at fault.

// maxParallel is the configured pool width; 0 selects GOMAXPROCS.
var maxParallel atomic.Int64

// SetParallelism sets the worker-pool width used by every experiment
// driver (figures, tables, ablations, chaos schedules). n <= 0 restores
// the default, GOMAXPROCS.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	maxParallel.Store(int64(n))
}

// Parallelism returns the effective worker-pool width.
func Parallelism() int {
	if n := int(maxParallel.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// fanOutN runs n independent jobs f(0..n-1) on a pool of at most parallel
// workers (parallel <= 0 selects Parallelism()) and returns their results
// in index order. Jobs must be self-contained: they may share read-only
// inputs (a synthesized trace, a workload spec slice) but must not write
// to anything another job reads.
func fanOutN[T any](parallel, n int, f func(i int) (T, error)) ([]T, error) {
	if parallel <= 0 {
		parallel = Parallelism()
	}
	if parallel > n {
		parallel = n
	}
	out := make([]T, n)
	if parallel <= 1 {
		// Serial fast path: identical scheduling to the pre-parallel
		// drivers, stopping at the first error.
		for i := 0; i < n; i++ {
			v, err := f(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				v, err := f(i)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// fanOut is fanOutN at the configured Parallelism().
func fanOut[T any](n int, f func(i int) (T, error)) ([]T, error) {
	return fanOutN[T](0, n, f)
}

// FanOut exposes the runner to sibling packages (the crash-consistency
// checker fans its per-fault-site replay runs out on it): n independent
// jobs on at most parallel workers (<= 0 selects Parallelism()), results
// in index order, first error cancels not-yet-started jobs.
func FanOut[T any](parallel, n int, f func(i int) (T, error)) ([]T, error) {
	return fanOutN[T](parallel, n, f)
}
