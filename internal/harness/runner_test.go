package harness

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"kddcache/internal/sim"
	"kddcache/internal/stats"
	"kddcache/internal/trace"
)

// TestFanOutOrderAndWidths checks results land in submission order at
// every pool width, including widths above the job count.
func TestFanOutOrderAndWidths(t *testing.T) {
	const n = 37
	for _, par := range []int{1, 2, 3, 8, 64} {
		got, err := fanOutN(par, n, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("parallel=%d: %v", par, err)
		}
		if len(got) != n {
			t.Fatalf("parallel=%d: got %d results", par, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("parallel=%d: out[%d] = %d, want %d", par, i, v, i*i)
			}
		}
	}
}

// TestFanOutReturnsLowestIndexError checks the parallel error matches what
// a serial run would report: the lowest-numbered failing job wins, even
// when a later job fails first in wall-clock time.
func TestFanOutReturnsLowestIndexError(t *testing.T) {
	errLow := errors.New("low")
	for _, par := range []int{1, 4} {
		_, err := fanOutN(par, 16, func(i int) (int, error) {
			switch i {
			case 3:
				return 0, errLow
			case 11:
				return 0, errors.New("high")
			}
			return i, nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("parallel=%d: got %v, want the lowest-index error", par, err)
		}
	}
}

// TestFanOutCancelsAfterError checks a failure stops the pool from
// starting the long tail of remaining jobs.
func TestFanOutCancelsAfterError(t *testing.T) {
	var started atomic.Int64
	boom := errors.New("boom")
	_, err := fanOutN(2, 10_000, func(i int) (int, error) {
		started.Add(1)
		if i == 0 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	// Worker 2 may race a handful of jobs past the failure flag, but the
	// overwhelming majority must never start.
	if s := started.Load(); s > 1000 {
		t.Fatalf("%d jobs started after the failure; cancellation is broken", s)
	}
}

// countingPolicy records Clean invocations; everything else is inert.
type countingPolicy struct {
	cleans int
	st     stats.CacheStats
}

func (p *countingPolicy) Name() string { return "counting" }
func (p *countingPolicy) Read(t sim.Time, lba int64, buf []byte) (sim.Time, error) {
	return t, nil
}
func (p *countingPolicy) Write(t sim.Time, lba int64, buf []byte) (sim.Time, error) {
	return t, nil
}
func (p *countingPolicy) Clean(t sim.Time, force bool) (sim.Time, error) {
	p.cleans++
	return t, nil
}
func (p *countingPolicy) Flush(t sim.Time) (sim.Time, error) { return t, nil }
func (p *countingPolicy) Stats() *stats.CacheStats           { return &p.st }

// TestRunTraceNoIdleCleanBeforeFirstRequest is the regression test for the
// spurious time-zero cleaner pass: prev starts at 0, so a trace whose
// first request arrives later than IdleCleanGap used to trigger an idle
// clean before any request had been issued.
func TestRunTraceNoIdleCleanBeforeFirstRequest(t *testing.T) {
	late := IdleCleanGap * 10
	mk := func(times ...sim.Time) *trace.Trace {
		tr := &trace.Trace{}
		for _, at := range times {
			tr.Requests = append(tr.Requests, trace.Request{
				Time: at, Op: trace.Read, LBA: 0, Pages: 1,
			})
		}
		return tr
	}

	p := &countingPolicy{}
	if _, err := RunTrace(&Stack{Policy: p}, mk(late, late+sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if p.cleans != 0 {
		t.Fatalf("late-starting trace triggered %d idle cleans before/within a gapless run", p.cleans)
	}

	// A genuine idle gap between two requests must still trigger one.
	p = &countingPolicy{}
	if _, err := RunTrace(&Stack{Policy: p}, mk(late, late*3)); err != nil {
		t.Fatal(err)
	}
	if p.cleans != 1 {
		t.Fatalf("mid-trace idle gap triggered %d cleans, want 1", p.cleans)
	}
}

// TestExperimentsDeterministicAcrossParallelism is the tentpole's
// acceptance test: a representative sweep experiment (Fig6) must render
// byte-identical output serially and at several pool widths.
func TestExperimentsDeterministicAcrossParallelism(t *testing.T) {
	defer SetParallelism(0)

	SetParallelism(1)
	serial, err := Fig6(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 4} {
		SetParallelism(par)
		got, err := Fig6(tinyScale)
		if err != nil {
			t.Fatalf("parallel=%d: %v", par, err)
		}
		if got != serial {
			t.Fatalf("fig6 output differs between -parallel 1 and -parallel %d:\n--- serial ---\n%s\n--- parallel ---\n%s",
				par, serial, got)
		}
	}
}

// TestChaosDeterministicAcrossParallelism runs a small chaos batch
// serially and in parallel; the rendered table (fingerprints included)
// must match byte for byte.
func TestChaosDeterministicAcrossParallelism(t *testing.T) {
	opts := ChaosOpts{Schedules: 4, Ops: 160, Parallel: 1}
	serial := Chaos(opts).Table()
	opts.Parallel = 4
	parallel := Chaos(opts).Table()
	if serial != parallel {
		t.Fatalf("chaos table differs between serial and parallel runs:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
	if v := Chaos(opts).Violations(); len(v) != 0 {
		t.Fatalf("chaos violations: %v", v)
	}
}

// TestParallelismKnob pins the SetParallelism/Parallelism contract.
func TestParallelismKnob(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(3)
	if got := Parallelism(); got != 3 {
		t.Fatalf("Parallelism() = %d after SetParallelism(3)", got)
	}
	SetParallelism(-5)
	if got := Parallelism(); got < 1 {
		t.Fatalf("Parallelism() = %d after reset; want >= 1", got)
	}
	// Sanity: the pool actually works at the configured width.
	out, err := fanOut(5, func(i int) (string, error) { return fmt.Sprint(i), nil })
	if err != nil || len(out) != 5 {
		t.Fatalf("fanOut under knob: %v %v", out, err)
	}
}
