package harness

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"kddcache/internal/blockdev"
	"kddcache/internal/core"
	"kddcache/internal/delta"
	"kddcache/internal/obs"
	"kddcache/internal/raid"
	"kddcache/internal/raidiface"
	"kddcache/internal/shard"
	"kddcache/internal/sim"
)

// ssd-lane-kill: the sharded data plane loses one lane's slice of the
// SSD mid-workload. The lane regions are disjoint [MetaStart+MetaPages +
// lane*lanePages, +lanePages) partitions of the shared device, so a
// range fail-stop models the death of one die/channel: exactly one lane
// sees ErrFailed, fails over to pass-through (HealthBypass), and keeps
// serving from the RAID — which always holds current data, because KDD
// dispatches every write to the array. The other seven lanes must not
// notice. The plane runs the deterministic scheduler (the byte-identical
// contract the custom driver's run-twice fingerprint leans on) at a
// shard count that groups the dead lane with live ones, proving the
// fold-to-bypass is lane-scoped, not shard-scoped.

const (
	laneKillBatch = 32 // ops per RunBatch
	laneKillPokes = 12 // killed-lane reads per poke batch
)

// laneKillRig is one ssd-lane-kill schedule's plane, oracle and tallies.
type laneKillRig struct {
	o   ChaosOpts
	rng *sim.RNG
	mut *delta.Mutator

	arr   raidiface.Array
	inj   *blockdev.FaultInjector
	plane *shard.Plane
	dig   *obs.Digest

	dataStart int64
	lanePages int64
	killLane  int

	oracle  map[int64][]byte
	written []int64 // oracle keys in first-write order

	res *ChaosScheduleResult
}

func (c *laneKillRig) violf(format string, args ...any) {
	c.res.Violations = append(c.res.Violations, fmt.Sprintf(format, args...))
}

func newLaneKillRig(seed uint64, o ChaosOpts) *laneKillRig {
	c := &laneKillRig{
		o:      o,
		rng:    sim.NewRNG(seed),
		mut:    delta.NewMutator(seed^0xD00D, 0.25),
		oracle: make(map[int64][]byte),
		res:    &ChaosScheduleResult{Kind: "ssd-lane-kill", Seed: seed},
	}
	var members []blockdev.Device
	for i := 0; i < chaosDisks; i++ {
		members = append(members, blockdev.NewNullDataDevice(fmt.Sprintf("d%d", i), chaosDiskPages))
	}
	arr, err := raid.New(raid.Config{Level: raid.Level5, ChunkPages: chaosChunk}, members)
	if err != nil {
		panic(err) // static geometry; cannot fail
	}
	c.arr = arr
	const metaPages = 64
	inner := blockdev.NewNullDataDevice("ssd", metaPages+o.CachePages+64)
	c.inj = blockdev.NewFaultInjector(inner, seed^0xFA17)
	c.dig = obs.NewDigest()
	p, err := shard.New(shard.Config{
		SSD:        c.inj,
		Backend:    arr,
		CachePages: o.CachePages,
		Ways:       16,
		MetaStart:  0,
		MetaPages:  metaPages,
		Codec:      func(int) delta.Codec { return delta.ZRLE{} },
		Shards:     4, // two lanes per shard: the dead lane shares a worker with a live one
		Coalesce:   true,
		Tracer:     obs.NewTracer(c.dig),
	})
	if err != nil {
		panic(err)
	}
	c.plane = p
	c.dataStart = metaPages
	c.lanePages = o.CachePages / shard.Lanes
	// Kill the lane owning a randomly drawn footprint LBA: lanes are a
	// hash of the stripe index, so with a small footprint some lanes own
	// no stripes at all — killing one of those would prove nothing.
	c.killLane = p.LaneOf(int64(c.rng.Uint64n(uint64(o.Footprint))))
	return c
}

// runBatch submits ops, walks the results in submission order against a
// live view of the oracle (handling in-batch read-after-write and
// write-after-write coalescing exactly), and folds surviving writes in.
// Every op must succeed: the lane kill is absorbed by per-lane failover
// and must never surface a user-visible error.
func (c *laneKillRig) runBatch(t sim.Time, ops []shard.Op) {
	res := c.plane.RunBatch(t, ops)
	view := make(map[int64][]byte, len(ops))
	for i, op := range ops {
		if err := res[i].Err; err != nil {
			c.violf("batch t=%d op %d (%s lba %d): %v", t, i, opKindName(op.Kind), op.LBA, err)
			continue
		}
		switch op.Kind {
		case shard.OpWrite:
			view[op.LBA] = op.Buf
		case shard.OpRead:
			want, ok := view[op.LBA]
			if !ok {
				want = c.oracle[op.LBA]
			}
			if !pageEqual(op.Buf, want) {
				c.violf("read lba %d (lane %d) returned wrong content", op.LBA, c.plane.LaneOf(op.LBA))
			}
		}
	}
	// Fold surviving writes into the oracle in submission order — the
	// `written` order feeds poke-target selection, so it must not depend
	// on map iteration.
	for _, op := range ops {
		if op.Kind != shard.OpWrite || view[op.LBA] == nil {
			continue
		}
		if _, seen := c.oracle[op.LBA]; !seen {
			c.written = append(c.written, op.LBA)
		}
		c.oracle[op.LBA] = view[op.LBA]
		delete(view, op.LBA)
	}
}

func opKindName(k shard.OpKind) string {
	if k == shard.OpWrite {
		return "write"
	}
	return "read"
}

// pageEqual compares a read buffer against the oracle page; a nil oracle
// entry means the LBA was never written and must read back as zeros.
func pageEqual(got, want []byte) bool {
	for i, b := range got {
		w := byte(0)
		if want != nil {
			w = want[i]
		}
		if b != w {
			return false
		}
	}
	return true
}

// laneLBAs returns up to n footprint LBAs routed to the given lane,
// preferring already-written ones so pokes land on live cache state.
func (c *laneKillRig) laneLBAs(lane, n int) []int64 {
	var out []int64
	for _, lba := range c.written {
		if c.plane.LaneOf(lba) == lane {
			out = append(out, lba)
			if len(out) == n {
				return out
			}
		}
	}
	for lba := int64(0); lba < c.o.Footprint && len(out) < n; lba++ {
		if c.plane.LaneOf(lba) == lane {
			out = append(out, lba)
		}
	}
	return out
}

// runLaneKillSchedule is the custom driver for the ssd-lane-kill plan.
func runLaneKillSchedule(seed uint64, o ChaosOpts) *ChaosScheduleResult {
	c := newLaneKillRig(seed, o)
	defer c.plane.Close()

	nBatches := (o.Ops + laneKillBatch - 1) / laneKillBatch
	killAt := nBatches / 2
	t := sim.Time(0)
	for b := 0; b < nBatches; b++ {
		if b == killAt {
			// Fail-stop exactly one lane's slice of the cache data
			// partition. The lane discovers it mid-RunBatch, on its next
			// SSD touch (a hit read, a delta write, a read-fill), and
			// folds to bypass without surfacing an error.
			c.inj.FailRange(c.dataStart+int64(c.killLane)*c.lanePages, c.lanePages)
		}
		t = sim.Time(b+1) * sim.Millisecond
		ops := make([]shard.Op, 0, laneKillBatch)
		for len(ops) < laneKillBatch {
			lba := int64(c.rng.Uint64n(uint64(o.Footprint)))
			if c.rng.Float64() < 0.6 {
				page := make([]byte, blockdev.PageSize)
				if prev := c.oracle[lba]; prev != nil {
					copy(page, prev)
					c.mut.Mutate(page)
				} else {
					c.mut.FillRandom(page)
				}
				ops = append(ops, shard.Op{Kind: shard.OpWrite, LBA: lba, Buf: page})
			} else {
				ops = append(ops, shard.Op{Kind: shard.OpRead, LBA: lba, Buf: make([]byte, blockdev.PageSize)})
			}
		}
		c.runBatch(t, ops)
	}

	// Poke the killed lane twice: read misses on a dead lane read-fill
	// into the dead region (the fault is swallowed, the failover armed),
	// and the next operation completes the transition — so two batches
	// guarantee HealthBypass even if the main loop barely touched the
	// lane after the kill.
	for poke := 0; poke < 2; poke++ {
		t += sim.Millisecond
		var ops []shard.Op
		for _, lba := range c.laneLBAs(c.killLane, laneKillPokes) {
			ops = append(ops, shard.Op{Kind: shard.OpRead, LBA: lba, Buf: make([]byte, blockdev.PageSize)})
		}
		c.runBatch(t, ops)
	}

	// Final sweep: every LBA the oracle knows, in sorted order — the
	// dead lane serves from RAID, the live lanes from cache, and both
	// must return byte-exact content.
	lbas := make([]int64, 0, len(c.oracle))
	for lba := range c.oracle {
		lbas = append(lbas, lba)
	}
	sort.Slice(lbas, func(i, j int) bool { return lbas[i] < lbas[j] })
	for start := 0; start < len(lbas); start += laneKillBatch {
		end := start + laneKillBatch
		if end > len(lbas) {
			end = len(lbas)
		}
		t += sim.Millisecond
		var ops []shard.Op
		for _, lba := range lbas[start:end] {
			ops = append(ops, shard.Op{Kind: shard.OpRead, LBA: lba, Buf: make([]byte, blockdev.PageSize)})
		}
		c.runBatch(t, ops)
	}

	// The killed lane must have folded to bypass and served through it;
	// the other seven lanes must still be Normal with zero pass-through.
	for lane := 0; lane < shard.Lanes; lane++ {
		k := c.plane.Lane(lane)
		ls := k.Stats()
		if lane == c.killLane {
			if h := k.Health(); h != core.HealthBypass {
				c.violf("killed lane %d health %v, want bypass", lane, h)
			}
			if ls.PassReads+ls.PassWrites == 0 {
				c.violf("killed lane %d never served in pass-through", lane)
			}
			if ls.Failovers == 0 {
				c.violf("killed lane %d recorded no failover", lane)
			}
		} else {
			if h := k.Health(); h != core.HealthNormal {
				c.violf("surviving lane %d health %v, want normal", lane, h)
			}
			if ls.PassReads+ls.PassWrites != 0 {
				c.violf("surviving lane %d served %d ops in pass-through", lane, ls.PassReads+ls.PassWrites)
			}
		}
	}

	if _, err := c.plane.Quiesce(t); err != nil {
		c.violf("quiesce: %v", err)
	}
	if err := c.plane.CheckInvariants(); err != nil {
		c.violf("invariants: %v", err)
	}

	agg := c.plane.Stats()
	c.res.Failovers = agg.Failovers
	c.res.Repaired = agg.RowsHealed + agg.FoldRMWs + agg.FoldResyncs
	c.res.Detected = c.inj.MediaErrors()
	c.res.Spans = c.dig.Spans()
	c.res.TraceDigest = c.dig.Sum64()

	h := fnv.New64a()
	var w [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(w[:], v)
		h.Write(w[:])
	}
	put(c.plane.StateDigest())
	put(uint64(c.killLane))
	put(uint64(agg.Failovers))
	put(uint64(agg.PassReads + agg.PassWrites))
	put(uint64(agg.FoldRMWs))
	put(uint64(agg.FoldResyncs))
	put(uint64(c.plane.CoalescedWrites()))
	for _, lba := range lbas {
		put(uint64(lba))
		h.Write(c.oracle[lba])
	}
	put(c.res.Spans)
	put(c.res.TraceDigest)
	put(uint64(len(c.res.Violations)))
	c.res.Fingerprint = h.Sum64()
	return c.res
}
