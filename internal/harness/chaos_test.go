package harness

import (
	"strings"
	"testing"
)

// TestChaos runs the full default chaos suite: at least 20 distinct
// seeded fault schedules, each executed twice (determinism), with zero
// invariant violations and zero undetected corruption.
func TestChaos(t *testing.T) {
	rep := Chaos(ChaosOpts{})
	if len(rep.Results) < 20 {
		t.Fatalf("want >= 20 schedules, got %d", len(rep.Results))
	}
	if v := rep.Violations(); len(v) != 0 {
		t.Fatalf("%d violations:\n%s", len(v), strings.Join(v, "\n"))
	}

	kinds := make(map[string]bool)
	var crashes, unrec int
	var detected, repaired int64
	for _, res := range rep.Results {
		kinds[res.Kind] = true
		crashes += res.Crashes
		detected += res.Detected
		repaired += res.Repaired
		unrec += res.Unrecoverable
		if res.Unrecoverable > 0 && res.Kind != "unrecoverable" {
			t.Errorf("schedule %d (%s): unexpected unrecoverable rows", res.Schedule, res.Kind)
		}
	}
	for _, plan := range chaosPlans {
		if !kinds[plan.kind] {
			t.Errorf("plan %q never ran", plan.kind)
		}
	}
	if crashes == 0 {
		t.Error("no crash was injected across all schedules")
	}
	if detected == 0 {
		t.Error("no media error was detected across all schedules")
	}
	if repaired == 0 {
		t.Error("nothing was repaired across all schedules")
	}
	if unrec == 0 {
		t.Error("the unrecoverable plan reported no unrecoverable rows")
	}
}

// TestChaosSSD runs only the whole-SSD-failure plans: fail-stop kill,
// kill landing mid-clean, a breaker-tripping media storm, and
// reattach-then-rekill. `make chaos-ssd` runs this under the race
// detector; the acceptance bar is zero user-visible errors while the
// RAID members stay healthy.
func TestChaosSSD(t *testing.T) {
	const kinds = "ssd-kill,ssd-kill-clean,ssd-breaker,ssd-reattach"
	rep := Chaos(ChaosOpts{Kind: kinds, Schedules: 8})
	if v := rep.Violations(); len(v) != 0 {
		t.Fatalf("%d violations:\n%s", len(v), strings.Join(v, "\n"))
	}
	seen := make(map[string]bool)
	var failovers, reattaches int64
	for _, res := range rep.Results {
		seen[res.Kind] = true
		failovers += res.Failovers
		reattaches += res.Reattaches
	}
	for _, k := range strings.Split(kinds, ",") {
		if !seen[k] {
			t.Errorf("plan %q never ran", k)
		}
	}
	if failovers == 0 {
		t.Error("no cache failover engaged across the SSD-failure schedules")
	}
	if reattaches == 0 {
		t.Error("no reattach completed")
	}
}

// TestChaosRebuild runs only the rebuild-window plans: a member kill with
// a hot spare (the pump attaches and paces the rebuild under load), power
// losses landing inside the rebuild window (recovery resumes from the
// NVRAM checkpoint), and a second member kill mid-window on RAID-6.
// `make chaos-rebuild` runs this under the race detector; the acceptance
// bar is full redundancy, zero lost rows, and deterministic fingerprints.
func TestChaosRebuild(t *testing.T) {
	const kinds = "disk-kill,rebuild-crash,double-kill"
	rep := Chaos(ChaosOpts{Kind: kinds, Schedules: 9})
	if v := rep.Violations(); len(v) != 0 {
		t.Fatalf("%d violations:\n%s", len(v), strings.Join(v, "\n"))
	}
	seen := make(map[string]bool)
	var attaches, rows int64
	var crashes int
	for _, res := range rep.Results {
		seen[res.Kind] = true
		attaches += res.SpareAttaches
		rows += res.RebuildRows
		crashes += res.Crashes
	}
	for _, k := range strings.Split(kinds, ",") {
		if !seen[k] {
			t.Errorf("plan %q never ran", k)
		}
	}
	if attaches == 0 {
		t.Error("no spare was attached across the rebuild schedules")
	}
	if rows == 0 {
		t.Error("no rebuild rows were pumped across the rebuild schedules")
	}
	if crashes == 0 {
		t.Error("no crash landed inside a rebuild window")
	}
}

// TestChaosLaneKill runs only the sharded-plane lane-kill plan: one
// lane's slice of the SSD fail-stops mid-batch, that lane alone must
// fold to pass-through with zero user-visible errors, and the other
// seven lanes keep serving from cache. `make qos-test` runs this under
// the race detector alongside the noisy-neighbor isolation proof.
func TestChaosLaneKill(t *testing.T) {
	rep := Chaos(ChaosOpts{Kind: "ssd-lane-kill", Schedules: 6})
	if v := rep.Violations(); len(v) != 0 {
		t.Fatalf("%d violations:\n%s", len(v), strings.Join(v, "\n"))
	}
	if len(rep.Results) != 6 {
		t.Fatalf("got %d schedules, want 6", len(rep.Results))
	}
	for _, res := range rep.Results {
		if res.Kind != "ssd-lane-kill" {
			t.Fatalf("schedule %d ran plan %q", res.Schedule, res.Kind)
		}
		// Exactly one failover per schedule: the killed lane and only the
		// killed lane left the cache path.
		if res.Failovers != 1 {
			t.Errorf("schedule %d: %d failovers, want exactly 1", res.Schedule, res.Failovers)
		}
	}
}

// TestChaosSeedSensitivity checks that different master seeds change the
// schedule fingerprints (the fault streams really are seed-driven).
func TestChaosSeedSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("two extra chaos runs")
	}
	a := Chaos(ChaosOpts{Schedules: len(chaosPlans), Seed: 1})
	b := Chaos(ChaosOpts{Schedules: len(chaosPlans), Seed: 2})
	same := 0
	for i := range a.Results {
		if a.Results[i].Fingerprint == b.Results[i].Fingerprint {
			same++
		}
	}
	if same == len(a.Results) {
		t.Error("fingerprints identical across different master seeds")
	}
}
