package harness

import (
	"strings"
	"testing"

	"kddcache/internal/trace"
	"kddcache/internal/workload"
)

func TestRecoveryTradeoffOutput(t *testing.T) {
	out, err := RecoveryTradeoff(0.004)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"partition", "recovery time", "0.39%", "3.94%"} {
		if !strings.Contains(out, w) {
			t.Fatalf("missing %q in:\n%s", w, out)
		}
	}
	// The qualitative tradeoff must be visible: parse the GC-pages and
	// recovery columns from first and last rows.
	lines := strings.Split(out, "\n")
	var rows []string
	for _, l := range lines {
		if strings.Contains(l, "%") && !strings.Contains(l, "partition") &&
			!strings.Contains(l, "Bigger") {
			rows = append(rows, l)
		}
	}
	if len(rows) < 5 {
		t.Fatalf("expected 5 rows, got %d:\n%s", len(rows), out)
	}
}

func TestDegradedPerformanceOutput(t *testing.T) {
	out, err := DegradedPerformance(0.004)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"healthy", "degraded", "post-rebuild", "WT", "KDD"} {
		if !strings.Contains(out, w) {
			t.Fatalf("missing %q in:\n%s", w, out)
		}
	}
}

func TestAblationAdmissionOutput(t *testing.T) {
	out, err := AblationAdmission(0.004)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"LARC", "always", "rejects"} {
		if !strings.Contains(out, w) {
			t.Fatalf("missing %q in:\n%s", w, out)
		}
	}
}

func TestSelectiveAdmissionReducesAllocWritesInSim(t *testing.T) {
	spec := wlFin1Tiny()
	tr := synth(spec)
	cache := roundWays(int64(0.1*float64(spec.UniqueTotal)), 256)
	base, err := runSim(spec, tr, StackOpts{Policy: PolicyKDD, DeltaMean: 0.25, CachePages: cache})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := runSim(spec, tr, StackOpts{Policy: PolicyKDD, DeltaMean: 0.25,
		CachePages: cache, SelectiveAdmission: true})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Cache.AdmissionRejects == 0 {
		t.Fatal("filter never rejected")
	}
	baseAllocs := base.Cache.ReadFills + base.Cache.WriteAllocs
	selAllocs := sel.Cache.ReadFills + sel.Cache.WriteAllocs
	if selAllocs >= baseAllocs {
		t.Fatalf("allocation writes not reduced: %d vs %d", selAllocs, baseAllocs)
	}
}

// helpers shared by the extension tests.
func wlFin1Tiny() workload.Spec { return workload.Fin1.Scale(0.004) }

func synth(s workload.Spec) *trace.Trace { return workload.Synthesize(s) }
