// Package sched is the execution seam of the sharded data plane: it
// decides WHERE shard-affine work runs without changing WHAT runs.
//
// The shard plane (internal/shard) partitions cache state into lanes and
// groups lanes into shards; every piece of work it submits is pinned to
// one shard. A Scheduler guarantees exactly one ordering property —
// items submitted to the same shard run serially, in submission order —
// and leaves everything else to the implementation:
//
//   - Deterministic runs every item inline on the submitting goroutine,
//     single-stepped in global submission order. Output is a pure
//     function of the submission sequence, which is what the model
//     checker, the chaos harness, and the figure drivers need: the same
//     seed produces byte-identical results at any shard count.
//   - Pool runs one worker goroutine per shard with a FIFO queue, for
//     real concurrency in throughput mode. Cross-shard completion order
//     is whatever the Go scheduler makes it; per-shard order still holds.
//
// Both implementations satisfy the same interface, so core.Restore,
// failover, and rebuild pacing run identically under either — the plane
// never branches on which scheduler it was given beyond batching policy.
package sched

import "sync"

// Scheduler executes shard-affine work items. Items submitted to the
// same shard run serially in submission order; items on different shards
// may run concurrently. Submit may block when a shard's queue is full.
type Scheduler interface {
	// Shards returns the execution width the scheduler was built for.
	Shards() int
	// Submit enqueues fn on the given shard (0 <= shard < Shards()).
	Submit(shard int, fn func())
	// Wait blocks until every submitted item has finished.
	Wait()
	// Deterministic reports whether execution order is a pure function
	// of submission order (the virtual-time single-stepped mode).
	Deterministic() bool
	// Close releases worker resources. The scheduler must not be used
	// after Close; Close implies Wait.
	Close()
}

// deterministic is the virtual-time scheduler: Submit runs fn inline, so
// global execution order IS submission order and a run is reproducible
// from its seed alone.
type deterministic struct {
	shards int
}

// NewDeterministic returns the single-stepped scheduler.
func NewDeterministic(shards int) Scheduler {
	if shards < 1 {
		panic("sched: need at least one shard")
	}
	return &deterministic{shards: shards}
}

func (d *deterministic) Shards() int { return d.shards }

func (d *deterministic) Submit(shard int, fn func()) {
	if shard < 0 || shard >= d.shards {
		panic("sched: shard out of range")
	}
	fn()
}

func (d *deterministic) Wait()               {}
func (d *deterministic) Deterministic() bool { return true }
func (d *deterministic) Close()              {}

// queueDepth bounds each shard worker's pending queue; Submit blocks when
// the queue is full, which back-pressures the producer instead of growing
// memory without bound.
const queueDepth = 256

// pool runs one goroutine per shard. The per-shard channel provides the
// serial-per-shard ordering guarantee; the WaitGroup provides Wait.
type pool struct {
	queues []chan func()
	wg     sync.WaitGroup // in-flight items
	done   sync.WaitGroup // worker goroutines
	closed bool
	mu     sync.Mutex
}

// NewPool returns the real-goroutine scheduler with one worker per shard.
func NewPool(shards int) Scheduler {
	if shards < 1 {
		panic("sched: need at least one shard")
	}
	p := &pool{queues: make([]chan func(), shards)}
	for i := range p.queues {
		q := make(chan func(), queueDepth)
		p.queues[i] = q
		p.done.Add(1)
		go func() {
			defer p.done.Done()
			for fn := range q {
				fn()
				p.wg.Done()
			}
		}()
	}
	return p
}

func (p *pool) Shards() int { return len(p.queues) }

func (p *pool) Submit(shard int, fn func()) {
	if shard < 0 || shard >= len(p.queues) {
		panic("sched: shard out of range")
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		panic("sched: submit after Close")
	}
	p.wg.Add(1)
	p.mu.Unlock()
	p.queues[shard] <- fn
}

func (p *pool) Wait()               { p.wg.Wait() }
func (p *pool) Deterministic() bool { return false }

func (p *pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.wg.Wait()
	for _, q := range p.queues {
		close(q)
	}
	p.done.Wait()
}
