package sched

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestDeterministicInline proves Submit runs work inline in submission
// order: the observed sequence is exactly the submission sequence.
func TestDeterministicInline(t *testing.T) {
	s := NewDeterministic(4)
	defer s.Close()
	if !s.Deterministic() {
		t.Fatal("deterministic scheduler reports Deterministic()=false")
	}
	if s.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", s.Shards())
	}
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.Submit(i%4, func() { got = append(got, i) })
	}
	s.Wait()
	for i, v := range got {
		if v != i {
			t.Fatalf("execution order diverged from submission order at %d: got %d", i, v)
		}
	}
}

// TestPoolPerShardOrder proves the goroutine pool preserves per-shard FIFO
// order even under concurrent cross-shard execution.
func TestPoolPerShardOrder(t *testing.T) {
	const shards, perShard = 8, 500
	s := NewPool(shards)
	defer s.Close()
	if s.Deterministic() {
		t.Fatal("pool scheduler reports Deterministic()=true")
	}
	seqs := make([][]int, shards)
	var mu sync.Mutex
	for i := 0; i < shards*perShard; i++ {
		shard, n := i%shards, i/shards
		s.Submit(shard, func() {
			mu.Lock()
			seqs[shard] = append(seqs[shard], n)
			mu.Unlock()
		})
	}
	s.Wait()
	for shard, seq := range seqs {
		if len(seq) != perShard {
			t.Fatalf("shard %d ran %d items, want %d", shard, len(seq), perShard)
		}
		for i, v := range seq {
			if v != i {
				t.Fatalf("shard %d execution order broken at %d: got %d", shard, i, v)
			}
		}
	}
}

// TestPoolWaitBarrier proves Wait observes every side effect of submitted
// work (it is the plane's quiesce barrier).
func TestPoolWaitBarrier(t *testing.T) {
	s := NewPool(3)
	defer s.Close()
	var n atomic.Int64
	const items = 3000
	for i := 0; i < items; i++ {
		s.Submit(i%3, func() { n.Add(1) })
	}
	s.Wait()
	if got := n.Load(); got != items {
		t.Fatalf("after Wait: %d items ran, want %d", got, items)
	}
	// The scheduler must be reusable after a Wait.
	s.Submit(0, func() { n.Add(1) })
	s.Wait()
	if got := n.Load(); got != items+1 {
		t.Fatalf("after second Wait: %d, want %d", got, items+1)
	}
}

// TestPoolCloseIdempotent proves Close drains in-flight work and may be
// called twice.
func TestPoolCloseIdempotent(t *testing.T) {
	s := NewPool(2)
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		s.Submit(i%2, func() { n.Add(1) })
	}
	s.Close()
	s.Close()
	if got := n.Load(); got != 100 {
		t.Fatalf("Close lost work: %d of 100 ran", got)
	}
}

// TestSubmitRangePanics pins the contract that out-of-range shards are
// caller bugs, not silent misroutes.
func TestSubmitRangePanics(t *testing.T) {
	for _, s := range []Scheduler{NewDeterministic(2), NewPool(2)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%T: out-of-range Submit did not panic", s)
				}
			}()
			s.Submit(2, func() {})
		}()
		s.Close()
	}
}
