package blockdev

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"kddcache/internal/sim"
)

func TestOpString(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" || OpTrim.String() != "trim" {
		t.Fatal("Op strings wrong")
	}
	if Op(9).String() != "op(9)" {
		t.Fatal("unknown op string wrong")
	}
}

func TestCheckRange(t *testing.T) {
	if err := CheckRange(0, 10, 10); err != nil {
		t.Fatalf("valid range rejected: %v", err)
	}
	for _, c := range []struct {
		lba   int64
		count int
	}{{-1, 1}, {0, 11}, {10, 1}, {0, -1}} {
		if err := CheckRange(c.lba, c.count, 10); !errors.Is(err, ErrOutOfRange) {
			t.Fatalf("lba=%d count=%d: err=%v, want ErrOutOfRange", c.lba, c.count, err)
		}
	}
}

func TestCheckBuf(t *testing.T) {
	if err := CheckBuf(nil, 5); err != nil {
		t.Fatalf("nil buf rejected: %v", err)
	}
	if err := CheckBuf(make([]byte, 2*PageSize), 2); err != nil {
		t.Fatalf("exact buf rejected: %v", err)
	}
	if err := CheckBuf(make([]byte, PageSize+1), 1); !errors.Is(err, ErrBadBuffer) {
		t.Fatalf("short buf accepted: %v", err)
	}
}

func TestMemStoreReadWriteTrim(t *testing.T) {
	m := NewMemStore(100)
	page := make([]byte, PageSize)
	for i := range page {
		page[i] = byte(i)
	}
	m.WritePage(7, page)
	got := make([]byte, PageSize)
	m.ReadPage(7, got)
	if !bytes.Equal(got, page) {
		t.Fatal("read back mismatch")
	}
	// Unwritten pages read as zero.
	m.ReadPage(8, got)
	for _, b := range got {
		if b != 0 {
			t.Fatal("unwritten page not zero")
		}
	}
	if m.Written() != 1 {
		t.Fatalf("Written = %d", m.Written())
	}
	m.TrimPage(7)
	m.ReadPage(7, got)
	for _, b := range got {
		if b != 0 {
			t.Fatal("trimmed page not zero")
		}
	}
}

func TestMemStoreCloneIsDeep(t *testing.T) {
	m := NewMemStore(10)
	page := bytes.Repeat([]byte{0xAA}, PageSize)
	m.WritePage(1, page)
	c := m.Clone()
	page2 := bytes.Repeat([]byte{0xBB}, PageSize)
	m.WritePage(1, page2)
	got := make([]byte, PageSize)
	c.ReadPage(1, got)
	if got[0] != 0xAA {
		t.Fatal("clone shares storage with original")
	}
	if c.Pages() != 10 {
		t.Fatalf("clone capacity = %d", c.Pages())
	}
}

func TestNullDeviceDataMode(t *testing.T) {
	d := NewNullDataDevice("null0", 64)
	buf := bytes.Repeat([]byte{3}, 2*PageSize)
	if _, err := d.WritePages(0, 10, 2, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2*PageSize)
	if _, err := d.ReadPages(0, 10, 2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf) {
		t.Fatal("data mismatch")
	}
	if d.Reads() != 1 || d.Writes() != 1 {
		t.Fatalf("op counts %d/%d", d.Reads(), d.Writes())
	}
	if _, err := d.TrimPages(0, 10, 2); err != nil {
		t.Fatal(err)
	}
	if d.Store().Written() != 0 {
		t.Fatal("trim did not discard pages")
	}
}

func TestNullDeviceTimingModeAndLatency(t *testing.T) {
	d := NewNullDevice("null1", 64)
	d.Latency = 100
	done, err := d.ReadPages(50, 0, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if done != 150 {
		t.Fatalf("completion = %d, want 150", done)
	}
	if _, err := d.ReadPages(0, 60, 8, nil); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("range not checked: %v", err)
	}
	if _, err := d.WritePages(0, 0, 1, make([]byte, 1)); !errors.Is(err, ErrBadBuffer) {
		t.Fatalf("buffer not checked: %v", err)
	}
}

func TestFaultDeviceFailAndRepair(t *testing.T) {
	inner := NewNullDataDevice("d0", 16)
	f := NewFaultDevice(inner)
	if f.Failed() {
		t.Fatal("fresh device reports failed")
	}
	if _, err := f.WritePages(0, 0, 1, bytes.Repeat([]byte{1}, PageSize)); err != nil {
		t.Fatal(err)
	}
	f.Fail()
	if !f.Failed() {
		t.Fatal("Fail did not stick")
	}
	if _, err := f.ReadPages(0, 0, 1, make([]byte, PageSize)); !errors.Is(err, ErrFailed) {
		t.Fatalf("failed device served a read: %v", err)
	}
	if _, err := f.TrimPages(0, 0, 1); !errors.Is(err, ErrFailed) {
		t.Fatalf("failed device served a trim: %v", err)
	}
	fresh := NewNullDataDevice("d0'", 16)
	f.Repair(fresh)
	if f.Failed() {
		t.Fatal("repair did not clear failure")
	}
	buf := make([]byte, PageSize)
	if _, err := f.ReadPages(0, 0, 1, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0 {
		t.Fatal("repaired device should be fresh/zeroed")
	}
}

func TestFaultDeviceFailAfterOps(t *testing.T) {
	f := NewFaultDevice(NewNullDevice("d", 16))
	f.FailAfterOps = 3
	var err error
	ok := 0
	for i := 0; i < 10; i++ {
		_, err = f.ReadPages(0, 0, 1, nil)
		if err == nil {
			ok++
		}
	}
	if ok != 3 {
		t.Fatalf("device served %d ops before failing, want 3", ok)
	}
	if !errors.Is(err, ErrFailed) {
		t.Fatalf("err = %v", err)
	}
}

func TestFaultDeviceTrimPassthroughWithoutTrimmer(t *testing.T) {
	// A device that does not implement Trimmer: trims are accepted and
	// ignored.
	f := NewFaultDevice(plainDevice{})
	if _, err := f.TrimPages(5, 0, 1); err != nil {
		t.Fatal(err)
	}
}

type plainDevice struct{}

func (plainDevice) Name() string { return "plain" }
func (plainDevice) Pages() int64 { return 8 }
func (plainDevice) ReadPages(t sim.Time, lba int64, count int, buf []byte) (sim.Time, error) {
	return t, nil
}
func (plainDevice) WritePages(t sim.Time, lba int64, count int, buf []byte) (sim.Time, error) {
	return t, nil
}

func TestMemStoreRoundTripProperty(t *testing.T) {
	f := func(lba uint16, fill byte) bool {
		m := NewMemStore(1 << 17)
		page := bytes.Repeat([]byte{fill}, PageSize)
		m.WritePage(int64(lba), page)
		got := make([]byte, PageSize)
		m.ReadPage(int64(lba), got)
		return bytes.Equal(got, page)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 64}); err != nil {
		t.Fatal(err)
	}
}
