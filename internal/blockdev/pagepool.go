package blockdev

import "sync"

// Page-buffer pool. Content mode allocates single-page scratch buffers
// on nearly every operation — read staging, parity accumulators, delta
// expansion — and at simulation rates those allocations dominate GC
// pressure. The pool recycles them.
//
// Ownership rules (see DESIGN.md "Performance"):
//
//   - GetPage returns a buffer with ARBITRARY content; callers that
//     accumulate into it (XOR/parity targets) must use GetZeroPage.
//   - PutPage hands the buffer back; the caller must not retain any
//     reference to it afterwards. Double-put is a caller bug the pool
//     cannot detect.
//   - Only return buffers whose lifetime provably ends: never a buffer
//     stored into a cache, staged as an NVRAM delta, or handed to a
//     device that retains it. When in doubt, don't put — an unpooled
//     buffer is garbage, never a correctness bug.
//   - PutPage silently drops buffers of the wrong shape, so foreign
//     slices (sub-slices of multi-page buffers, nil in timing mode) are
//     always safe to pass.
var pagePool = sync.Pool{New: func() any { return new([PageSize]byte) }}

// GetPage returns a PageSize scratch buffer with arbitrary content.
func GetPage() []byte { return pagePool.Get().(*[PageSize]byte)[:] }

// GetZeroPage returns a zeroed PageSize buffer — for XOR and parity
// accumulators that fold pages into an all-zero start state.
func GetZeroPage() []byte {
	b := GetPage()
	clear(b)
	return b
}

// PutPage returns a buffer obtained from GetPage to the pool. Buffers
// that are nil (timing mode) or not exactly one pooled page are ignored.
func PutPage(b []byte) {
	if len(b) != PageSize || cap(b) != PageSize {
		return
	}
	pagePool.Put((*[PageSize]byte)(b))
}
