// Package blockdev defines the block-device abstractions shared by the HDD
// and SSD models, the RAID engine, and the cache layers.
//
// All addressing is in fixed-size pages (4KB by default): an LBA is a page
// number, not a byte offset. Devices operate in one of two modes:
//
//   - data mode: Read/Write carry real page payloads backed by an in-memory
//     store, so end-to-end correctness (parity math, delta reconstruction,
//     recovery) is verifiable byte-for-byte;
//   - timing mode: payloads may be nil and only the latency/queueing model
//     and operation counters are exercised, which is what the trace-driven
//     simulator uses to process millions of requests quickly.
//
// Every operation takes the virtual arrival time and returns the virtual
// completion time, following the next-free-time simulation style of
// internal/sim.
package blockdev

import (
	"errors"
	"fmt"

	"kddcache/internal/sim"
)

// PageSize is the default page size in bytes used throughout the system,
// matching the paper's 4KB configuration.
const PageSize = 4096

// Op identifies a block operation type.
type Op uint8

const (
	OpRead Op = iota
	OpWrite
	OpTrim
)

func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpTrim:
		return "trim"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Errors returned by devices. The taxonomy distinguishes three failure
// scopes so upper layers can react proportionately:
//
//   - ErrFailed: the whole device is gone (fail-stop). RAID declares the
//     member failed and serves degraded until ReplaceDisk.
//   - ErrMedia: one page (or a small range) is unreadable — a latent
//     sector error, detected bit-rot, or a transient glitch. The device
//     as a whole is healthy; RAID reconstructs just the lost page from
//     redundancy and writes it back (read-repair) instead of failing the
//     member.
//   - ErrCrashed: a simulated power-loss point was crossed mid-write;
//     the in-flight write may have torn (a prefix of its pages, or a
//     prefix of a page, persisted). The caller treats this as the crash
//     moment and runs recovery.
var (
	ErrOutOfRange = errors.New("blockdev: LBA out of range")
	ErrFailed     = errors.New("blockdev: device failed")
	ErrMedia      = errors.New("blockdev: unreadable page (media error)")
	ErrCrashed    = errors.New("blockdev: device lost power mid-write (crash point)")
	ErrBadBuffer  = errors.New("blockdev: buffer is not a whole page")
)

// IOError wraps a device error with the device name, operation, and LBA it
// occurred on, so upper layers can attribute failures to a specific device
// (the cache's failover path must distinguish "the SSD died" from "a RAID
// member died") and logs name the failing component. It is transparent to
// errors.Is/errors.As via Unwrap, so existing taxonomy checks
// (errors.Is(err, ErrMedia) etc.) keep working unchanged.
type IOError struct {
	Dev string // device name (Device.Name())
	Op  Op     // operation that failed
	LBA int64  // start LBA of the failed range
	Err error  // underlying taxonomy error
}

func (e *IOError) Error() string {
	return fmt.Sprintf("%s: %s lba %d: %v", e.Dev, e.Op, e.LBA, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *IOError) Unwrap() error { return e.Err }

// WrapIOError attaches device/op/LBA context to err unless err already
// carries it (no double wrapping across stacked injectors).
func WrapIOError(dev string, op Op, lba int64, err error) error {
	if err == nil {
		return nil
	}
	var ioe *IOError
	if errors.As(err, &ioe) {
		return err
	}
	return &IOError{Dev: dev, Op: op, LBA: lba, Err: err}
}

// Device is a page-addressed block device with virtual-time semantics.
//
// ReadPages/WritePages cover [lba, lba+count). In data mode buf must be
// count*PageSize bytes; in timing mode buf may be nil.
type Device interface {
	// Name identifies the device in logs and stats.
	Name() string
	// Pages returns the device capacity in pages.
	Pages() int64
	// ReadPages reads count pages starting at lba, arriving at time t,
	// and returns the virtual completion time.
	ReadPages(t sim.Time, lba int64, count int, buf []byte) (sim.Time, error)
	// WritePages writes count pages starting at lba.
	WritePages(t sim.Time, lba int64, count int, buf []byte) (sim.Time, error)
}

// Trimmer is implemented by devices that support discarding pages (the SSD
// model uses trims to free invalidated cache pages in the FTL).
type Trimmer interface {
	TrimPages(t sim.Time, lba int64, count int) (sim.Time, error)
}

// CheckRange validates [lba, lba+count) against a capacity.
func CheckRange(lba int64, count int, pages int64) error {
	if count < 0 || lba < 0 || lba+int64(count) > pages {
		return fmt.Errorf("%w: lba=%d count=%d pages=%d", ErrOutOfRange, lba, count, pages)
	}
	return nil
}

// CheckBuf validates that buf is nil (timing mode) or exactly count pages.
func CheckBuf(buf []byte, count int) error {
	if buf != nil && len(buf) != count*PageSize {
		return fmt.Errorf("%w: len=%d want %d", ErrBadBuffer, len(buf), count*PageSize)
	}
	return nil
}
