package blockdev

// MemStore is a sparse in-memory page store used as the backing bytes for
// data-mode devices. Pages never written read back as all-zero, like a
// fresh disk.
type MemStore struct {
	pages map[int64][]byte
	cap   int64
}

// NewMemStore returns a store with the given capacity in pages.
func NewMemStore(pages int64) *MemStore {
	return &MemStore{pages: make(map[int64][]byte), cap: pages}
}

// Pages returns the capacity in pages.
func (m *MemStore) Pages() int64 { return m.cap }

// ReadPage copies page lba into dst (one page).
func (m *MemStore) ReadPage(lba int64, dst []byte) {
	if p, ok := m.pages[lba]; ok {
		copy(dst, p)
		return
	}
	for i := range dst[:PageSize] {
		dst[i] = 0
	}
}

// WritePage stores one page at lba.
func (m *MemStore) WritePage(lba int64, src []byte) {
	p, ok := m.pages[lba]
	if !ok {
		p = make([]byte, PageSize)
		m.pages[lba] = p
	}
	copy(p, src[:PageSize])
}

// TrimPage discards the page at lba; subsequent reads return zeros.
func (m *MemStore) TrimPage(lba int64) {
	delete(m.pages, lba)
}

// Written returns the number of distinct pages currently stored.
func (m *MemStore) Written() int { return len(m.pages) }

// Clone returns a deep copy (used to snapshot device state for
// crash-recovery tests).
func (m *MemStore) Clone() *MemStore {
	c := NewMemStore(m.cap)
	for lba, p := range m.pages {
		cp := make([]byte, PageSize)
		copy(cp, p)
		c.pages[lba] = cp
	}
	return c
}
