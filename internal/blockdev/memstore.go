package blockdev

import (
	"fmt"
	"hash/crc32"
)

// MemStore is a sparse in-memory page store used as the backing bytes for
// data-mode devices. Pages never written read back as all-zero, like a
// fresh disk.
//
// Every stored page carries a CRC32 checksum, computed on write and
// verified by ReadPageChecked: this is the per-page integrity metadata
// real drives keep alongside each sector, and it is what turns silent
// bit-rot into a detectable media error. CorruptPage flips bits without
// refreshing the checksum (detectable corruption); CorruptPageSilently
// refreshes it too, modelling corruption the device itself cannot see —
// only cross-device redundancy checks (parity scrub) can catch that.
type MemStore struct {
	pages map[int64][]byte
	sums  map[int64]uint32
	cap   int64
}

// Storer is satisfied by any data-mode device (or wrapper that can see
// through to one) whose bytes live in a MemStore. Test rigs and recovery
// paths use it to reach the backing bytes for checksum sweeps and
// corruption injection without caring which device wrapper they hold.
type Storer interface {
	Store() *MemStore
}

// NewMemStore returns a store with the given capacity in pages.
func NewMemStore(pages int64) *MemStore {
	return &MemStore{
		pages: make(map[int64][]byte),
		sums:  make(map[int64]uint32),
		cap:   pages,
	}
}

// Pages returns the capacity in pages.
func (m *MemStore) Pages() int64 { return m.cap }

// ReadPage copies page lba into dst (one page) without integrity
// verification. Prefer ReadPageChecked on device read paths.
func (m *MemStore) ReadPage(lba int64, dst []byte) {
	if p, ok := m.pages[lba]; ok {
		copy(dst, p)
		return
	}
	for i := range dst[:PageSize] {
		dst[i] = 0
	}
}

// ReadPageChecked copies page lba into dst and verifies its checksum,
// returning ErrMedia (wrapped with the LBA) when the stored bytes no
// longer match the checksum recorded at write time.
func (m *MemStore) ReadPageChecked(lba int64, dst []byte) error {
	p, ok := m.pages[lba]
	if !ok {
		for i := range dst[:PageSize] {
			dst[i] = 0
		}
		return nil
	}
	if crc32.ChecksumIEEE(p) != m.sums[lba] {
		return fmt.Errorf("%w: checksum mismatch at page %d", ErrMedia, lba)
	}
	copy(dst, p)
	return nil
}

// WritePage stores one page at lba and records its checksum.
func (m *MemStore) WritePage(lba int64, src []byte) {
	p, ok := m.pages[lba]
	if !ok {
		p = make([]byte, PageSize)
		m.pages[lba] = p
	}
	copy(p, src[:PageSize])
	m.sums[lba] = crc32.ChecksumIEEE(p)
}

// TrimPage discards the page at lba; subsequent reads return zeros.
func (m *MemStore) TrimPage(lba int64) {
	delete(m.pages, lba)
	delete(m.sums, lba)
}

// Written returns the number of distinct pages currently stored.
func (m *MemStore) Written() int { return len(m.pages) }

// VerifyPage reports whether the page at lba passes its checksum
// (unwritten pages trivially pass).
func (m *MemStore) VerifyPage(lba int64) bool {
	p, ok := m.pages[lba]
	if !ok {
		return true
	}
	return crc32.ChecksumIEEE(p) == m.sums[lba]
}

// CorruptPage flips one bit of the stored page WITHOUT refreshing the
// checksum: detectable corruption (bit-rot the drive's per-sector ECC/CRC
// catches). Reads through ReadPageChecked will return ErrMedia until the
// page is rewritten. No-op on unwritten pages (they have no bits to rot).
func (m *MemStore) CorruptPage(lba int64, bit uint) bool {
	p, ok := m.pages[lba]
	if !ok {
		return false
	}
	p[(bit/8)%PageSize] ^= 1 << (bit % 8)
	return true
}

// CorruptPageSilently flips one bit AND refreshes the checksum, modelling
// corruption introduced before the checksum was computed (e.g. in a buggy
// controller's RAM): the device cannot detect it; only a parity scrub
// across devices can. No-op on unwritten pages.
func (m *MemStore) CorruptPageSilently(lba int64, bit uint) bool {
	if !m.CorruptPage(lba, bit) {
		return false
	}
	m.sums[lba] = crc32.ChecksumIEEE(m.pages[lba])
	return true
}

// TruncatePage keeps the first keep bytes of the stored page, zeroes the
// rest, and refreshes the checksum — a torn in-page write that persisted
// only a prefix (the tail never reached the medium, so the device sees a
// self-consistent page). No-op on unwritten pages.
func (m *MemStore) TruncatePage(lba int64, keep int) bool {
	p, ok := m.pages[lba]
	if !ok {
		return false
	}
	if keep < 0 {
		keep = 0
	}
	if keep > PageSize {
		keep = PageSize
	}
	for i := keep; i < PageSize; i++ {
		p[i] = 0
	}
	m.sums[lba] = crc32.ChecksumIEEE(p)
	return true
}

// Clone returns a deep copy (used to snapshot device state for
// crash-recovery tests).
func (m *MemStore) Clone() *MemStore {
	c := NewMemStore(m.cap)
	for lba, p := range m.pages {
		cp := make([]byte, PageSize)
		copy(cp, p)
		c.pages[lba] = cp
		c.sums[lba] = m.sums[lba]
	}
	return c
}
