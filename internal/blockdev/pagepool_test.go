package blockdev

import "testing"

func TestPagePoolRoundTrip(t *testing.T) {
	b := GetPage()
	if len(b) != PageSize || cap(b) != PageSize {
		t.Fatalf("GetPage shape = len %d cap %d", len(b), cap(b))
	}
	for i := range b {
		b[i] = 0xA5
	}
	PutPage(b)

	z := GetZeroPage()
	if len(z) != PageSize {
		t.Fatalf("GetZeroPage len = %d", len(z))
	}
	for i, v := range z {
		if v != 0 {
			t.Fatalf("GetZeroPage byte %d = %#x after a dirty page was pooled", i, v)
		}
	}
	PutPage(z)
}

func TestPutPageDropsForeignShapes(t *testing.T) {
	// None of these may enter the pool (or panic): nil timing-mode
	// buffers, short slices, and sub-slices of multi-page buffers whose
	// capacity extends past PageSize.
	PutPage(nil)
	PutPage(make([]byte, 16))
	PutPage(make([]byte, PageSize, 2*PageSize))
	multi := make([]byte, 3*PageSize)
	PutPage(multi[:PageSize])

	// The pool still serves correctly-shaped pages afterwards.
	b := GetPage()
	if len(b) != PageSize || cap(b) != PageSize {
		t.Fatalf("GetPage shape after foreign puts = len %d cap %d", len(b), cap(b))
	}
	PutPage(b)
}
