package blockdev

import (
	"fmt"
	"sync"
	"sync/atomic"

	"kddcache/internal/sim"
)

// FaultProfile configures seeded probabilistic fault injection. All draws
// come from one xorshift stream seeded at construction, so a given op
// sequence produces the identical fault sequence on every run — chaos
// schedules are reproducible bit for bit.
type FaultProfile struct {
	// TransientProb is the per-read-op probability of a transient error:
	// the op returns ErrMedia but leaves no mark, so an immediate retry
	// succeeds (a recoverable glitch — vibration, a marginal read).
	TransientProb float64
	// LatentProb is the per-read-op probability that the first page of
	// the range develops a latent sector error: the op fails with
	// ErrMedia and the page stays unreadable until it is rewritten
	// (remap-on-write), exactly how latent sector errors surface in the
	// field — discovered on read, cleared by reallocation.
	LatentProb float64
}

// FaultInjector wraps a Device and injects failures at three scopes:
//
//   - whole-device fail-stop (Fail / FailAfterOps → ErrFailed), the
//     paper's §III-E scenarios;
//   - per-page media faults (InjectBadPage / InjectTransient / the
//     probabilistic FaultProfile → ErrMedia), the partial-fault regime a
//     patrol scrub and read-repair must handle;
//   - crash points (ArmCrash → ErrCrashed) that tear an in-flight
//     multi-page write, persisting only a prefix.
//
// The inner device is swapped atomically by Repair, and all mutable
// fault state is mutex-guarded, so injection is safe against concurrent
// I/O (covered by a -race test).
type FaultInjector struct {
	inner  atomic.Pointer[Device]
	failed atomic.Bool

	// FailAfterOps, if > 0, fails the device automatically after that many
	// operations have been issued (for deterministic mid-workload faults).
	FailAfterOps int64
	ops          atomic.Int64

	mu         sync.Mutex
	rng        *sim.RNG
	profile    FaultProfile
	badPages   map[int64]int // lba -> remaining read failures; <0 = until rewritten
	deadRanges []failRange   // fail-stopped page regions (FailRange)
	crashed  bool
	crashIn  int64 // write ops until the crash point (when armed > 0)
	tornKeep int   // whole pages of the torn write to persist
	tornByte int   // extra bytes of the following page to persist

	// Op-trace recording for fault-site enumeration (faultsite.go).
	recording bool
	recorded  []OpRecord

	mediaErrs atomic.Int64
}

// FaultDevice is the historical name of FaultInjector, kept so existing
// callers and tests read naturally for the fail-stop-only use case.
type FaultDevice = FaultInjector

// NewFaultDevice wraps inner with fault injection (unseeded: probabilistic
// profiles get the fixed default stream).
func NewFaultDevice(inner Device) *FaultInjector { return NewFaultInjector(inner, 0) }

// NewFaultInjector wraps inner; seed drives the probabilistic fault
// stream (0 selects a fixed default seed).
func NewFaultInjector(inner Device, seed uint64) *FaultInjector {
	f := &FaultInjector{
		rng:      sim.NewRNG(seed),
		badPages: make(map[int64]int),
	}
	f.inner.Store(&inner)
	return f
}

// Inner returns the wrapped device (swapped atomically by Repair).
func (f *FaultInjector) Inner() Device { return *f.inner.Load() }

// Fail marks the device failed.
func (f *FaultInjector) Fail() { f.failed.Store(true) }

// failRange is one fail-stopped page region, [start, end).
type failRange struct{ start, end int64 }

// FailRange fail-stops the region [start, start+count): every operation
// touching it returns ErrFailed while the rest of the device keeps
// serving. This models the loss of one region of the medium — a die, a
// channel, a shard lane's slice — without whole-device death; Failed()
// stays false.
func (f *FaultInjector) FailRange(start, count int64) {
	if count <= 0 {
		return
	}
	f.mu.Lock()
	f.deadRanges = append(f.deadRanges, failRange{start, start + count})
	f.mu.Unlock()
}

// rangeFault reports ErrFailed when [lba, lba+count) touches a
// fail-stopped region.
func (f *FaultInjector) rangeFault(lba int64, count int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	end := lba + int64(count)
	for _, r := range f.deadRanges {
		if lba < r.end && r.start < end {
			return fmt.Errorf("%w: pages %d-%d dead", ErrFailed, r.start, r.end-1)
		}
	}
	return nil
}

// Repair replaces the device with a fresh (zeroed) one of the same size;
// the caller is responsible for rebuilding contents (RAID rebuild). The
// swap is atomic with respect to in-flight operations, and all page-level
// fault state is cleared along with the old medium. An armed crash point
// (ArmCrash) survives the swap: it models node power loss, which does not
// care that the medium behind this slot is new.
func (f *FaultInjector) Repair(fresh Device) {
	f.mu.Lock()
	f.badPages = make(map[int64]int)
	f.deadRanges = nil
	f.mu.Unlock()
	f.inner.Store(&fresh)
	f.failed.Store(false)
	f.ops.Store(0)
}

// Failed reports whether the device has failed.
func (f *FaultInjector) Failed() bool { return f.failed.Load() }

// SetProfile installs a probabilistic fault profile (zero value disables).
func (f *FaultInjector) SetProfile(p FaultProfile) {
	f.mu.Lock()
	f.profile = p
	f.mu.Unlock()
}

// InjectBadPage marks one page with a latent sector error: reads covering
// it return ErrMedia until the page is rewritten.
func (f *FaultInjector) InjectBadPage(lba int64) {
	f.mu.Lock()
	f.badPages[lba] = -1
	f.mu.Unlock()
}

// InjectTransient makes the next fails reads covering lba return
// ErrMedia, after which the page reads fine again (no rewrite needed).
func (f *FaultInjector) InjectTransient(lba int64, fails int) {
	if fails <= 0 {
		return
	}
	f.mu.Lock()
	f.badPages[lba] = fails
	f.mu.Unlock()
}

// ClearBadPage removes any media fault on lba.
func (f *FaultInjector) ClearBadPage(lba int64) {
	f.mu.Lock()
	delete(f.badPages, lba)
	f.mu.Unlock()
}

// BadPages returns the number of pages currently marked unreadable.
func (f *FaultInjector) BadPages() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.badPages)
}

// MediaErrors returns how many operations this injector failed with
// ErrMedia (injected transients, latent hits, and probabilistic faults).
func (f *FaultInjector) MediaErrors() int64 { return f.mediaErrs.Load() }

// Ops returns the number of operations issued since construction/Repair.
func (f *FaultInjector) Ops() int64 { return f.ops.Load() }

// ArmCrash schedules a power-loss point: after afterWrites more write
// ops, the triggering write persists only tornPages whole pages (plus
// tornBytes of the next page) and returns ErrCrashed; every later
// operation returns ErrCrashed until ClearCrash. This models the torn
// multi-page write a real crash leaves behind.
func (f *FaultInjector) ArmCrash(afterWrites int64, tornPages, tornBytes int) {
	f.mu.Lock()
	f.crashIn = afterWrites + 1
	f.tornKeep = tornPages
	f.tornByte = tornBytes
	f.mu.Unlock()
}

// ClearCrash restores power: operations flow again (what persisted stays
// torn).
func (f *FaultInjector) ClearCrash() {
	f.mu.Lock()
	f.crashed = false
	f.crashIn = 0
	f.mu.Unlock()
}

// Crashed reports whether the device is past its crash point.
func (f *FaultInjector) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

func (f *FaultInjector) step() error {
	if f.failed.Load() {
		return ErrFailed
	}
	n := f.ops.Add(1)
	if f.FailAfterOps > 0 && n > f.FailAfterOps {
		f.failed.Store(true)
		return ErrFailed
	}
	return nil
}

// readFault consults per-page marks and the probabilistic profile for a
// read of [lba, lba+count); it returns a non-nil error when the read must
// fail with a media error.
func (f *FaultInjector) readFault(lba int64, count int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	for i := int64(0); i < int64(count); i++ {
		left, ok := f.badPages[lba+i]
		if !ok {
			continue
		}
		if left > 0 {
			if left == 1 {
				delete(f.badPages, lba+i)
			} else {
				f.badPages[lba+i] = left - 1
			}
		}
		f.mediaErrs.Add(1)
		return fmt.Errorf("%w: page %d", ErrMedia, lba+i)
	}
	if f.profile.TransientProb > 0 || f.profile.LatentProb > 0 {
		// Two draws per op keeps the stream in lockstep with the op
		// sequence regardless of outcomes.
		t := f.rng.Float64()
		l := f.rng.Float64()
		if l < f.profile.LatentProb {
			f.badPages[lba] = -1
			f.mediaErrs.Add(1)
			return fmt.Errorf("%w: page %d (latent)", ErrMedia, lba)
		}
		if t < f.profile.TransientProb {
			f.mediaErrs.Add(1)
			return fmt.Errorf("%w: page %d (transient)", ErrMedia, lba)
		}
	}
	return nil
}

// writeFault handles crash points and remap-on-write for a write covering
// [lba, lba+count). It returns (tornPages, tornBytes, err): err == nil
// means the write proceeds in full; err == ErrCrashed with tornPages >= 0
// means only that prefix persists.
func (f *FaultInjector) writeFault(lba int64, count int) (int, int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return 0, 0, ErrCrashed
	}
	if f.crashIn > 0 {
		f.crashIn--
		if f.crashIn == 0 {
			f.crashed = true
			keep := f.tornKeep
			if keep > count {
				keep = count
			}
			return keep, f.tornByte, ErrCrashed
		}
	}
	// A successful write reallocates any bad pages it covers.
	for i := int64(0); i < int64(count); i++ {
		delete(f.badPages, lba+i)
	}
	return 0, 0, nil
}

// Name implements Device.
func (f *FaultInjector) Name() string { return f.Inner().Name() }

// Pages implements Device.
func (f *FaultInjector) Pages() int64 { return f.Inner().Pages() }

// ReadPages implements Device. Injected and propagated errors are wrapped
// in IOError so callers can attribute the failure to this device.
func (f *FaultInjector) ReadPages(t sim.Time, lba int64, count int, buf []byte) (sim.Time, error) {
	if err := f.step(); err != nil {
		return t, WrapIOError(f.Name(), OpRead, lba, err)
	}
	if err := f.rangeFault(lba, count); err != nil {
		return t, WrapIOError(f.Name(), OpRead, lba, err)
	}
	f.record(false, lba, count)
	if err := f.readFault(lba, count); err != nil {
		return t, WrapIOError(f.Name(), OpRead, lba, err)
	}
	done, err := f.Inner().ReadPages(t, lba, count, buf)
	return done, WrapIOError(f.Name(), OpRead, lba, err)
}

// WritePages implements Device. Injected and propagated errors are wrapped
// in IOError so callers can attribute the failure to this device.
func (f *FaultInjector) WritePages(t sim.Time, lba int64, count int, buf []byte) (sim.Time, error) {
	if err := f.step(); err != nil {
		return t, WrapIOError(f.Name(), OpWrite, lba, err)
	}
	if err := f.rangeFault(lba, count); err != nil {
		return t, WrapIOError(f.Name(), OpWrite, lba, err)
	}
	f.record(true, lba, count)
	torn, tornBytes, err := f.writeFault(lba, count)
	if err == nil {
		done, werr := f.Inner().WritePages(t, lba, count, buf)
		return done, WrapIOError(f.Name(), OpWrite, lba, werr)
	}
	if torn > 0 || tornBytes > 0 {
		f.tearWrite(t, lba, count, buf, torn, tornBytes)
	}
	return t, WrapIOError(f.Name(), OpWrite, lba, err)
}

// tearWrite persists the prefix of a crashed write: torn whole pages and
// tornBytes of the page after them (via read-modify-write so the rest of
// that page keeps its old content, like a real torn sector).
func (f *FaultInjector) tearWrite(t sim.Time, lba int64, count int, buf []byte, torn, tornBytes int) {
	inner := f.Inner()
	if torn > 0 {
		var pre []byte
		if buf != nil {
			pre = buf[:torn*PageSize]
		}
		inner.WritePages(t, lba, torn, pre) //nolint:errcheck // crash path is best-effort
	}
	if tornBytes > 0 && torn < count && buf != nil {
		old := make([]byte, PageSize)
		inner.ReadPages(t, lba+int64(torn), 1, old) //nolint:errcheck // zeros on error
		copy(old, buf[torn*PageSize:torn*PageSize+min(tornBytes, PageSize)])
		inner.WritePages(t, lba+int64(torn), 1, old) //nolint:errcheck // crash path
	}
}

// TrimPages implements Trimmer when the inner device does.
func (f *FaultInjector) TrimPages(t sim.Time, lba int64, count int) (sim.Time, error) {
	if err := f.step(); err != nil {
		return t, WrapIOError(f.Name(), OpTrim, lba, err)
	}
	if err := f.rangeFault(lba, count); err != nil {
		return t, WrapIOError(f.Name(), OpTrim, lba, err)
	}
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		// Power is off: a trim past the crash point must not reach the
		// medium, or "durable" state would mutate after the power loss.
		return t, WrapIOError(f.Name(), OpTrim, lba, ErrCrashed)
	}
	if tr, ok := f.Inner().(Trimmer); ok {
		done, err := tr.TrimPages(t, lba, count)
		return done, WrapIOError(f.Name(), OpTrim, lba, err)
	}
	return t, nil
}

// Store exposes the inner device's backing store when it has one (nil
// otherwise) so corruption helpers and data-mode sniffing see through the
// injector.
func (f *FaultInjector) Store() *MemStore {
	if s, ok := f.Inner().(Storer); ok {
		return s.Store()
	}
	return nil
}

// NullDevice is a zero-latency device that stores data when constructed
// with a MemStore, or nothing in timing mode. It is useful in unit tests
// for layers above the device models.
type NullDevice struct {
	name  string
	pages int64
	store *MemStore // nil in timing mode
	// Latency is added to each operation's completion (0 by default).
	Latency sim.Time
	reads   atomic.Int64
	writes  atomic.Int64
}

// NewNullDevice returns a timing-mode null device.
func NewNullDevice(name string, pages int64) *NullDevice {
	return &NullDevice{name: name, pages: pages}
}

// NewNullDataDevice returns a data-mode null device backed by memory.
func NewNullDataDevice(name string, pages int64) *NullDevice {
	return &NullDevice{name: name, pages: pages, store: NewMemStore(pages)}
}

// Name implements Device.
func (d *NullDevice) Name() string { return d.name }

// Pages implements Device.
func (d *NullDevice) Pages() int64 { return d.pages }

// Reads returns the number of read ops issued.
func (d *NullDevice) Reads() int64 { return d.reads.Load() }

// Writes returns the number of write ops issued.
func (d *NullDevice) Writes() int64 { return d.writes.Load() }

// Store exposes the backing store (nil in timing mode).
func (d *NullDevice) Store() *MemStore { return d.store }

// ReadPages implements Device. Data-mode reads verify per-page checksums
// and surface mismatches as ErrMedia (detected bit-rot).
func (d *NullDevice) ReadPages(t sim.Time, lba int64, count int, buf []byte) (sim.Time, error) {
	if err := CheckRange(lba, count, d.pages); err != nil {
		return t, err
	}
	if err := CheckBuf(buf, count); err != nil {
		return t, err
	}
	d.reads.Add(1)
	if d.store != nil && buf != nil {
		for i := 0; i < count; i++ {
			if err := d.store.ReadPageChecked(lba+int64(i), buf[i*PageSize:(i+1)*PageSize]); err != nil {
				return t, err
			}
		}
	}
	return t + d.Latency, nil
}

// WritePages implements Device.
func (d *NullDevice) WritePages(t sim.Time, lba int64, count int, buf []byte) (sim.Time, error) {
	if err := CheckRange(lba, count, d.pages); err != nil {
		return t, err
	}
	if err := CheckBuf(buf, count); err != nil {
		return t, err
	}
	d.writes.Add(1)
	if d.store != nil && buf != nil {
		for i := 0; i < count; i++ {
			d.store.WritePage(lba+int64(i), buf[i*PageSize:(i+1)*PageSize])
		}
	}
	return t + d.Latency, nil
}

// TrimPages implements Trimmer.
func (d *NullDevice) TrimPages(t sim.Time, lba int64, count int) (sim.Time, error) {
	if err := CheckRange(lba, count, d.pages); err != nil {
		return t, err
	}
	if d.store != nil {
		for i := 0; i < count; i++ {
			d.store.TrimPage(lba + int64(i))
		}
	}
	return t, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

var (
	_ Device  = (*NullDevice)(nil)
	_ Trimmer = (*NullDevice)(nil)
	_ Device  = (*FaultInjector)(nil)
	_ Trimmer = (*FaultInjector)(nil)
)
