package blockdev

import (
	"sync/atomic"

	"kddcache/internal/sim"
)

// FaultDevice wraps a Device and injects failures: once Fail is called,
// every subsequent operation returns ErrFailed. This models whole-device
// loss (SSD failure, HDD failure) in the paper's §III-E recovery scenarios.
type FaultDevice struct {
	Inner  Device
	failed atomic.Bool

	// FailAfterOps, if > 0, fails the device automatically after that many
	// operations have been issued (for deterministic mid-workload faults).
	FailAfterOps int64
	ops          atomic.Int64
}

// NewFaultDevice wraps inner.
func NewFaultDevice(inner Device) *FaultDevice {
	return &FaultDevice{Inner: inner}
}

// Fail marks the device failed.
func (f *FaultDevice) Fail() { f.failed.Store(true) }

// Repair replaces the device with a fresh (zeroed) one of the same size;
// the caller is responsible for rebuilding contents (RAID rebuild).
func (f *FaultDevice) Repair(fresh Device) {
	f.Inner = fresh
	f.failed.Store(false)
	f.ops.Store(0)
}

// Failed reports whether the device has failed.
func (f *FaultDevice) Failed() bool { return f.failed.Load() }

func (f *FaultDevice) step() error {
	if f.failed.Load() {
		return ErrFailed
	}
	n := f.ops.Add(1)
	if f.FailAfterOps > 0 && n > f.FailAfterOps {
		f.failed.Store(true)
		return ErrFailed
	}
	return nil
}

// Name implements Device.
func (f *FaultDevice) Name() string { return f.Inner.Name() }

// Pages implements Device.
func (f *FaultDevice) Pages() int64 { return f.Inner.Pages() }

// ReadPages implements Device.
func (f *FaultDevice) ReadPages(t sim.Time, lba int64, count int, buf []byte) (sim.Time, error) {
	if err := f.step(); err != nil {
		return t, err
	}
	return f.Inner.ReadPages(t, lba, count, buf)
}

// WritePages implements Device.
func (f *FaultDevice) WritePages(t sim.Time, lba int64, count int, buf []byte) (sim.Time, error) {
	if err := f.step(); err != nil {
		return t, err
	}
	return f.Inner.WritePages(t, lba, count, buf)
}

// TrimPages implements Trimmer when the inner device does.
func (f *FaultDevice) TrimPages(t sim.Time, lba int64, count int) (sim.Time, error) {
	if err := f.step(); err != nil {
		return t, err
	}
	if tr, ok := f.Inner.(Trimmer); ok {
		return tr.TrimPages(t, lba, count)
	}
	return t, nil
}

// NullDevice is a zero-latency device that stores data when constructed
// with a MemStore, or nothing in timing mode. It is useful in unit tests
// for layers above the device models.
type NullDevice struct {
	name  string
	pages int64
	store *MemStore // nil in timing mode
	// Latency is added to each operation's completion (0 by default).
	Latency sim.Time
	reads   atomic.Int64
	writes  atomic.Int64
}

// NewNullDevice returns a timing-mode null device.
func NewNullDevice(name string, pages int64) *NullDevice {
	return &NullDevice{name: name, pages: pages}
}

// NewNullDataDevice returns a data-mode null device backed by memory.
func NewNullDataDevice(name string, pages int64) *NullDevice {
	return &NullDevice{name: name, pages: pages, store: NewMemStore(pages)}
}

// Name implements Device.
func (d *NullDevice) Name() string { return d.name }

// Pages implements Device.
func (d *NullDevice) Pages() int64 { return d.pages }

// Reads returns the number of read ops issued.
func (d *NullDevice) Reads() int64 { return d.reads.Load() }

// Writes returns the number of write ops issued.
func (d *NullDevice) Writes() int64 { return d.writes.Load() }

// Store exposes the backing store (nil in timing mode).
func (d *NullDevice) Store() *MemStore { return d.store }

// ReadPages implements Device.
func (d *NullDevice) ReadPages(t sim.Time, lba int64, count int, buf []byte) (sim.Time, error) {
	if err := CheckRange(lba, count, d.pages); err != nil {
		return t, err
	}
	if err := CheckBuf(buf, count); err != nil {
		return t, err
	}
	d.reads.Add(1)
	if d.store != nil && buf != nil {
		for i := 0; i < count; i++ {
			d.store.ReadPage(lba+int64(i), buf[i*PageSize:(i+1)*PageSize])
		}
	}
	return t + d.Latency, nil
}

// WritePages implements Device.
func (d *NullDevice) WritePages(t sim.Time, lba int64, count int, buf []byte) (sim.Time, error) {
	if err := CheckRange(lba, count, d.pages); err != nil {
		return t, err
	}
	if err := CheckBuf(buf, count); err != nil {
		return t, err
	}
	d.writes.Add(1)
	if d.store != nil && buf != nil {
		for i := 0; i < count; i++ {
			d.store.WritePage(lba+int64(i), buf[i*PageSize:(i+1)*PageSize])
		}
	}
	return t + d.Latency, nil
}

// TrimPages implements Trimmer.
func (d *NullDevice) TrimPages(t sim.Time, lba int64, count int) (sim.Time, error) {
	if err := CheckRange(lba, count, d.pages); err != nil {
		return t, err
	}
	if d.store != nil {
		for i := 0; i < count; i++ {
			d.store.TrimPage(lba + int64(i))
		}
	}
	return t, nil
}

var (
	_ Device  = (*NullDevice)(nil)
	_ Trimmer = (*NullDevice)(nil)
	_ Device  = (*FaultDevice)(nil)
	_ Trimmer = (*FaultDevice)(nil)
)
