package blockdev

import (
	"fmt"
	"sort"

	"kddcache/internal/sim"
)

// This file is the fault-site enumeration API the model checker
// (internal/check) is built on. Instead of hand-writing fault schedules,
// the checker records the device-op trace of one fault-free "profile" run
// and derives from it every fault the injector knows how to arm: a
// torn-write crash point at every write ordinal (the PR 1 ArmCrash
// machinery) and a latent plus a transient media site at every page the
// run touched. Each site is then replayed in its own run — the op-stream
// prefix up to the site is identical to the profile run, so write-ordinal
// crash points land on exactly the operation they were enumerated from.

// FaultKind classifies an armable fault site.
type FaultKind uint8

// The three armable site kinds, mirroring the injector's fault scopes
// (whole-device fail-stop is exercised separately by the degraded proof).
const (
	// FaultCrashTorn is a power loss firing on one write op, persisting
	// only a torn prefix of it (ArmCrash).
	FaultCrashTorn FaultKind = iota
	// FaultLatent is a latent sector error: the page reads ErrMedia until
	// it is rewritten (InjectBadPage).
	FaultLatent
	// FaultTransient is a recoverable glitch: the next Fails reads of the
	// page fail, then it reads fine again (InjectTransient).
	FaultTransient
	// FaultFailStop is a whole-device fail-stop firing after WriteOp total
	// operations (FailAfterOps): every operation from then on returns
	// ErrFailed until Repair. Enumerated for the cache SSD only — it
	// checks the "acked data survives whole-cache loss" property, which
	// the failover path must uphold by folding stale parity and dropping
	// to pass-through instead of erroring.
	FaultFailStop
)

func (k FaultKind) String() string {
	switch k {
	case FaultCrashTorn:
		return "crash-torn"
	case FaultLatent:
		return "latent"
	case FaultTransient:
		return "transient"
	case FaultFailStop:
		return "fail-stop"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// OpRecord is one device operation captured while recording is on.
type OpRecord struct {
	Write bool
	LBA   int64
	Count int
}

// FaultSite identifies one armable fault discovered by enumeration.
type FaultSite struct {
	Kind FaultKind

	// Crash-site fields: WriteOp is the 0-based ordinal of the write op
	// (counted from arming) the crash fires on; TornPages whole pages plus
	// TornBytes of the next page persist. Fail-stop sites reuse WriteOp as
	// the total-op count the device survives before dying (FailAfterOps).
	WriteOp   int64
	TornPages int
	TornBytes int

	// Media-site fields: the faulted page, and for transients how many
	// consecutive reads fail.
	LBA   int64
	Fails int
}

// String renders the site compactly for violation reports; feeding the
// same seed back to the checker re-derives the identical site list, so
// the ordinal/page shown here is enough to replay one counterexample.
func (s FaultSite) String() string {
	switch s.Kind {
	case FaultCrashTorn:
		return fmt.Sprintf("crash@write%d(torn=%d+%dB)", s.WriteOp, s.TornPages, s.TornBytes)
	case FaultLatent:
		return fmt.Sprintf("latent@page%d", s.LBA)
	case FaultFailStop:
		return fmt.Sprintf("failstop@op%d", s.WriteOp)
	default:
		return fmt.Sprintf("transient@page%d(x%d)", s.LBA, s.Fails)
	}
}

// RecordOps toggles op-trace recording. Turning it on clears any prior
// trace, so a profile run records exactly the ops issued after the call.
func (f *FaultInjector) RecordOps(on bool) {
	f.mu.Lock()
	f.recording = on
	if on {
		f.recorded = nil
	}
	f.mu.Unlock()
}

// Recorded returns a copy of the captured op trace.
func (f *FaultInjector) Recorded() []OpRecord {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]OpRecord, len(f.recorded))
	copy(out, f.recorded)
	return out
}

// record captures one op when recording is on.
func (f *FaultInjector) record(write bool, lba int64, count int) {
	f.mu.Lock()
	if f.recording {
		f.recorded = append(f.recorded, OpRecord{Write: write, LBA: lba, Count: count})
	}
	f.mu.Unlock()
}

// Arm installs one enumerated fault site on the injector.
func (f *FaultInjector) Arm(s FaultSite) {
	switch s.Kind {
	case FaultCrashTorn:
		f.ArmCrash(s.WriteOp, s.TornPages, s.TornBytes)
	case FaultLatent:
		f.InjectBadPage(s.LBA)
	case FaultTransient:
		f.InjectTransient(s.LBA, s.Fails)
	case FaultFailStop:
		f.FailAfterOps = s.WriteOp
	}
}

// transientDepth is the read-failure count enumerated for transient
// sites: both the cache's ssdRead and the array's member-read retry loops
// allow two retries, so two consecutive failures is exactly the deepest
// glitch the stack promises to absorb — the boundary worth checking.
const transientDepth = 2

// EnumerateSites derives every armable fault site from a recorded op
// trace: one torn-write crash point per write ordinal (tear geometry
// drawn deterministically from seed) plus a latent and a transient media
// site per distinct page the trace touched. The order is deterministic —
// crash sites by ordinal, then media sites by page — so a seed fully
// identifies each site by its index.
func EnumerateSites(trace []OpRecord, seed uint64) []FaultSite {
	rng := sim.NewRNG(seed)
	var sites []FaultSite
	pages := make(map[int64]struct{})
	var writeOp int64
	for _, op := range trace {
		for i := 0; i < op.Count; i++ {
			pages[op.LBA+int64(i)] = struct{}{}
		}
		if !op.Write {
			continue
		}
		torn := 0
		if op.Count > 1 {
			torn = rng.Intn(op.Count)
		}
		sites = append(sites, FaultSite{
			Kind:      FaultCrashTorn,
			WriteOp:   writeOp,
			TornPages: torn,
			TornBytes: rng.Intn(PageSize),
		})
		writeOp++
	}
	sorted := make([]int64, 0, len(pages))
	for p := range pages {
		sorted = append(sorted, p)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, p := range sorted {
		sites = append(sites,
			FaultSite{Kind: FaultLatent, LBA: p, Fails: -1},
			FaultSite{Kind: FaultTransient, LBA: p, Fails: transientDepth})
	}
	return sites
}

// EnumerateFailStopSites derives up to n whole-device fail-stop sites from
// a recorded op trace: op ordinals strided evenly across the run, so the
// device dies early, mid-run, and late. It is kept separate from
// EnumerateSites because fail-stop only makes sense for the cache SSD —
// killing a RAID member mid-run is the degraded-mode regime, already
// exercised by the checker's reconstruction proof.
func EnumerateFailStopSites(trace []OpRecord, n int) []FaultSite {
	total := int64(len(trace))
	if total == 0 || n <= 0 {
		return nil
	}
	if int64(n) > total {
		n = int(total)
	}
	sites := make([]FaultSite, 0, n)
	seen := make(map[int64]struct{}, n)
	for i := 0; i < n; i++ {
		// 1-based survivor count: op ordinal k means the device completes
		// k ops then fails on op k+1 (FailAfterOps semantics).
		op := total * int64(i+1) / int64(n+1)
		if op < 1 {
			op = 1
		}
		if _, dup := seen[op]; dup {
			continue
		}
		seen[op] = struct{}{}
		sites = append(sites, FaultSite{Kind: FaultFailStop, WriteOp: op})
	}
	return sites
}
