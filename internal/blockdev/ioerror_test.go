package blockdev

import (
	"errors"
	"testing"
)

func TestIOErrorWrapUnwrap(t *testing.T) {
	err := WrapIOError("ssd", OpRead, 42, ErrFailed)
	if !errors.Is(err, ErrFailed) {
		t.Fatal("wrapped error lost errors.Is(ErrFailed)")
	}
	var ioe *IOError
	if !errors.As(err, &ioe) {
		t.Fatal("wrapped error not errors.As-extractable")
	}
	if ioe.Dev != "ssd" || ioe.Op != OpRead || ioe.LBA != 42 {
		t.Fatalf("attribution lost: %+v", ioe)
	}
	if WrapIOError("ssd", OpRead, 1, nil) != nil {
		t.Fatal("wrapping nil must stay nil")
	}
}

func TestIOErrorNoDoubleWrap(t *testing.T) {
	inner := WrapIOError("hdd0", OpWrite, 7, ErrMedia)
	outer := WrapIOError("ssd", OpRead, 99, inner)
	var ioe *IOError
	if !errors.As(outer, &ioe) {
		t.Fatal("not an IOError")
	}
	// The first attribution wins: re-wrapping would hide which device
	// actually faulted.
	if ioe.Dev != "hdd0" || ioe.LBA != 7 {
		t.Fatalf("double wrap replaced the original attribution: %+v", ioe)
	}
}

func TestFailedInjectorWrapsErrors(t *testing.T) {
	f := NewFaultInjector(NewNullDataDevice("ssd", 16), 1)
	f.Fail()
	_, err := f.ReadPages(0, 3, 1, make([]byte, PageSize))
	if !errors.Is(err, ErrFailed) {
		t.Fatalf("want ErrFailed, got %v", err)
	}
	var ioe *IOError
	if !errors.As(err, &ioe) {
		t.Fatalf("fail-stop error not attributed: %v", err)
	}
	if ioe.Dev != "ssd" || ioe.Op != OpRead || ioe.LBA != 3 {
		t.Fatalf("wrong attribution: %+v", ioe)
	}
}

func TestEnumerateFailStopSites(t *testing.T) {
	trace := make([]OpRecord, 100)
	sites := EnumerateFailStopSites(trace, 8)
	if len(sites) != 8 {
		t.Fatalf("want 8 sites, got %d", len(sites))
	}
	prev := int64(0)
	for _, s := range sites {
		if s.Kind != FaultFailStop {
			t.Fatalf("wrong kind: %v", s.Kind)
		}
		if s.WriteOp <= prev || s.WriteOp >= int64(len(trace)) {
			t.Fatalf("ordinal %d out of order or out of range", s.WriteOp)
		}
		prev = s.WriteOp
	}
	// A 2-op trace collapses to a single deduped ordinal.
	if got := EnumerateFailStopSites(trace[:2], 8); len(got) != 1 || got[0].WriteOp != 1 {
		t.Fatalf("short trace: want one site at op 1, got %v", got)
	}
	if EnumerateFailStopSites(nil, 8) != nil {
		t.Fatal("empty trace must yield no sites")
	}
}
