package blockdev

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
)

func fillPage(b byte) []byte { return bytes.Repeat([]byte{b}, PageSize) }

func TestInjectBadPageLatentUntilRewrite(t *testing.T) {
	f := NewFaultInjector(NewNullDataDevice("d", 16), 1)
	if _, err := f.WritePages(0, 3, 1, fillPage(7)); err != nil {
		t.Fatal(err)
	}
	f.InjectBadPage(3)
	buf := make([]byte, PageSize)
	// Latent: every read fails until the page is rewritten.
	for i := 0; i < 3; i++ {
		if _, err := f.ReadPages(0, 3, 1, buf); !errors.Is(err, ErrMedia) {
			t.Fatalf("read %d: err = %v, want ErrMedia", i, err)
		}
	}
	if f.Failed() {
		t.Fatal("media error must not fail the whole device")
	}
	// Neighbouring pages are unaffected.
	if _, err := f.ReadPages(0, 4, 1, buf); err != nil {
		t.Fatalf("healthy page: %v", err)
	}
	// Remap-on-write clears the fault.
	if _, err := f.WritePages(0, 3, 1, fillPage(9)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadPages(0, 3, 1, buf); err != nil {
		t.Fatalf("after rewrite: %v", err)
	}
	if buf[0] != 9 {
		t.Fatal("rewritten page content wrong")
	}
	if f.MediaErrors() != 3 {
		t.Fatalf("MediaErrors = %d, want 3", f.MediaErrors())
	}
}

func TestInjectTransientSucceedsOnRetry(t *testing.T) {
	f := NewFaultInjector(NewNullDataDevice("d", 16), 1)
	if _, err := f.WritePages(0, 5, 1, fillPage(1)); err != nil {
		t.Fatal(err)
	}
	f.InjectTransient(5, 2)
	buf := make([]byte, PageSize)
	for i := 0; i < 2; i++ {
		if _, err := f.ReadPages(0, 5, 1, buf); !errors.Is(err, ErrMedia) {
			t.Fatalf("transient read %d: err = %v", i, err)
		}
	}
	if _, err := f.ReadPages(0, 5, 1, buf); err != nil {
		t.Fatalf("retry after transient: %v", err)
	}
	if buf[0] != 1 {
		t.Fatal("transient fault must not lose data")
	}
}

func TestChecksumCorruptionDetectedThroughDevice(t *testing.T) {
	d := NewNullDataDevice("d", 16)
	if _, err := d.WritePages(0, 2, 1, fillPage(0xAB)); err != nil {
		t.Fatal(err)
	}
	d.Store().CorruptPage(2, 12345)
	buf := make([]byte, PageSize)
	if _, err := d.ReadPages(0, 2, 1, buf); !errors.Is(err, ErrMedia) {
		t.Fatalf("corrupt page served: %v", err)
	}
	// A silent flip refreshes the checksum: the device cannot see it.
	if _, err := d.WritePages(0, 2, 1, fillPage(0xAB)); err != nil {
		t.Fatal(err)
	}
	d.Store().CorruptPageSilently(2, 12345)
	if _, err := d.ReadPages(0, 2, 1, buf); err != nil {
		t.Fatalf("silent corruption must pass device checks: %v", err)
	}
}

func TestFaultProfileDeterministic(t *testing.T) {
	run := func() (errsAt []int, total int64) {
		f := NewFaultInjector(NewNullDataDevice("d", 64), 42)
		f.SetProfile(FaultProfile{TransientProb: 0.1, LatentProb: 0.05})
		buf := make([]byte, PageSize)
		for i := 0; i < 200; i++ {
			lba := int64(i % 64)
			if _, err := f.ReadPages(0, lba, 1, buf); err != nil {
				errsAt = append(errsAt, i)
				// Clear latent marks by rewriting so both runs see the
				// same per-page state evolution.
				if _, werr := f.WritePages(0, lba, 1, fillPage(1)); werr != nil {
					t.Fatal(werr)
				}
			}
		}
		return errsAt, f.MediaErrors()
	}
	a, na := run()
	b, nb := run()
	if na == 0 {
		t.Fatal("profile injected no faults; probabilities too low for the test")
	}
	if na != nb || len(a) != len(b) {
		t.Fatalf("fault counts differ: %d vs %d", na, nb)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault sequence diverges at %d: op %d vs %d", i, a[i], b[i])
		}
	}
}

func TestArmCrashTearsMultiPageWrite(t *testing.T) {
	f := NewFaultInjector(NewNullDataDevice("d", 16), 1)
	old := fillPage(0x11)
	for lba := int64(0); lba < 3; lba++ {
		if _, err := f.WritePages(0, lba, 1, old); err != nil {
			t.Fatal(err)
		}
	}
	// Crash on the very next write, persisting 1 whole page + 100 bytes.
	f.ArmCrash(0, 1, 100)
	newBuf := make([]byte, 3*PageSize)
	for i := range newBuf {
		newBuf[i] = 0x22
	}
	if _, err := f.WritePages(0, 0, 3, newBuf); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	// Everything after the crash point fails until power is restored.
	if _, err := f.ReadPages(0, 0, 1, make([]byte, PageSize)); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash read: %v", err)
	}
	f.ClearCrash()
	got := make([]byte, PageSize)
	// Page 0 persisted in full.
	if _, err := f.ReadPages(0, 0, 1, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0x22 || got[PageSize-1] != 0x22 {
		t.Fatal("first page of torn write should persist in full")
	}
	// Page 1 is torn: 100 new bytes, old tail.
	if _, err := f.ReadPages(0, 1, 1, got); err != nil {
		t.Fatal(err)
	}
	if got[99] != 0x22 || got[100] != 0x11 {
		t.Fatalf("torn page wrong: got[99]=%#x got[100]=%#x", got[99], got[100])
	}
	// Page 2 never reached the medium.
	if _, err := f.ReadPages(0, 2, 1, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0x11 {
		t.Fatal("page past the crash point must keep old content")
	}
}

func TestArmCrashAfterNWrites(t *testing.T) {
	f := NewFaultInjector(NewNullDataDevice("d", 16), 1)
	f.ArmCrash(2, 0, 0) // two writes succeed, the third crashes with nothing persisted
	for i := int64(0); i < 2; i++ {
		if _, err := f.WritePages(0, i, 1, fillPage(5)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if _, err := f.WritePages(0, 2, 1, fillPage(5)); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	if !f.Crashed() {
		t.Fatal("Crashed() false after crash point")
	}
	f.ClearCrash()
	got := make([]byte, PageSize)
	if _, err := f.ReadPages(0, 2, 1, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Fatal("crashed write with tornPages=0 must persist nothing")
	}
}

// TestRepairConcurrentWithIO exercises the Repair/in-flight-op race under
// the race detector: the inner-device swap must be safe against
// concurrent reads and writes. Timing-mode devices are used so the only
// shared state is the injector's own.
func TestRepairConcurrentWithIO(t *testing.T) {
	f := NewFaultInjector(NewNullDevice("d", 1024), 1)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				lba := int64((g*251 + i) % 1024)
				if g%2 == 0 {
					f.ReadPages(0, lba, 1, nil) //nolint:errcheck // liveness only
				} else {
					f.WritePages(0, lba, 1, nil) //nolint:errcheck
				}
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		f.Fail()
		f.Repair(NewNullDevice("d'", 1024))
		f.InjectBadPage(int64(i % 1024))
		f.Inner().Pages() //nolint:errcheck // concurrent Inner() load
	}
	close(stop)
	wg.Wait()
	if f.Failed() {
		t.Fatal("final Repair should leave the device healthy")
	}
}

// TestFaultAccessors covers the inspection surface the chaos harness
// and checker use: error rendering, bad-page bookkeeping, op counters,
// site stringification, and checksum verification helpers.
func TestFaultAccessors(t *testing.T) {
	ioe := &IOError{Dev: "ssd0", Op: OpWrite, LBA: 42, Err: ErrMedia}
	if s := ioe.Error(); !strings.Contains(s, "ssd0") || !strings.Contains(s, "42") {
		t.Fatalf("IOError.Error() = %q", s)
	}

	f := NewFaultInjector(NewNullDataDevice("d", 16), 1)
	ms := f.Store()
	if ms == nil {
		t.Fatal("Store() lost the inner MemStore")
	}
	buf := make([]byte, PageSize)
	if _, err := f.WritePages(0, 5, 1, buf); err != nil {
		t.Fatal(err)
	}
	f.InjectTransient(5, 1)
	if n := f.BadPages(); n != 1 {
		t.Fatalf("BadPages = %d, want 1", n)
	}
	f.ClearBadPage(5)
	if n := f.BadPages(); n != 0 {
		t.Fatalf("BadPages after clear = %d, want 0", n)
	}
	if f.Ops() == 0 {
		t.Fatal("Ops counter never advanced")
	}

	if !ms.VerifyPage(5) || !ms.VerifyPage(9999) {
		t.Fatal("VerifyPage failed on a good/unwritten page")
	}
	if ms.TruncatePage(9999, 10) {
		t.Fatal("TruncatePage succeeded on an unwritten page")
	}
	if !ms.TruncatePage(5, 10) || !ms.VerifyPage(5) {
		t.Fatal("TruncatePage left an inconsistent page")
	}

	for _, site := range []FaultSite{
		{Kind: FaultCrashTorn, WriteOp: 3, TornPages: 1, TornBytes: 7},
		{Kind: FaultLatent, LBA: 8},
		{Kind: FaultTransient, LBA: 9, Fails: 2},
		{Kind: FaultFailStop, WriteOp: 2},
	} {
		if site.Kind.String() == "" || site.String() == "" {
			t.Fatalf("empty String() for %+v", site)
		}
	}
}
