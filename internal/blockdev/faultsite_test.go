package blockdev

import (
	"errors"
	"testing"
)

// Recording captures exactly the ops issued while enabled, in order.
func TestRecordOpsCapturesTrace(t *testing.T) {
	f := NewFaultInjector(NewNullDataDevice("d", 64), 1)
	buf := make([]byte, PageSize)
	f.WritePages(0, 3, 1, buf) // before recording: ignored
	f.RecordOps(true)
	f.WritePages(0, 5, 1, buf)
	f.ReadPages(0, 5, 1, buf)
	f.WritePages(0, 7, 1, buf)
	f.RecordOps(false)
	f.ReadPages(0, 7, 1, buf) // after recording: ignored
	want := []OpRecord{
		{Write: true, LBA: 5, Count: 1},
		{Write: false, LBA: 5, Count: 1},
		{Write: true, LBA: 7, Count: 1},
	}
	got := f.Recorded()
	if len(got) != len(want) {
		t.Fatalf("recorded %d ops, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("op %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// Enumeration yields one crash site per write ordinal and a latent plus a
// transient site per distinct page, deterministically for a given seed.
func TestEnumerateSites(t *testing.T) {
	trace := []OpRecord{
		{Write: true, LBA: 10, Count: 2}, // pages 10, 11
		{Write: false, LBA: 11, Count: 1},
		{Write: true, LBA: 20, Count: 1},
	}
	sites := EnumerateSites(trace, 42)
	// 2 crash sites (writes) + 3 distinct pages x {latent, transient}.
	if len(sites) != 2+3*2 {
		t.Fatalf("enumerated %d sites, want 8", len(sites))
	}
	if sites[0].Kind != FaultCrashTorn || sites[0].WriteOp != 0 {
		t.Errorf("site 0 = %v, want crash at write 0", sites[0])
	}
	if sites[1].Kind != FaultCrashTorn || sites[1].WriteOp != 1 {
		t.Errorf("site 1 = %v, want crash at write 1", sites[1])
	}
	wantPages := []int64{10, 10, 11, 11, 20, 20}
	for i, s := range sites[2:] {
		if s.LBA != wantPages[i] {
			t.Errorf("media site %d at page %d, want %d", i, s.LBA, wantPages[i])
		}
		wantKind := FaultLatent
		if i%2 == 1 {
			wantKind = FaultTransient
		}
		if s.Kind != wantKind {
			t.Errorf("media site %d kind %v, want %v", i, s.Kind, wantKind)
		}
	}
	again := EnumerateSites(trace, 42)
	for i := range sites {
		if sites[i] != again[i] {
			t.Fatalf("enumeration not deterministic at site %d: %v vs %v",
				i, sites[i], again[i])
		}
	}
}

// Arm dispatches each site kind to the matching injection primitive.
func TestArmDispatch(t *testing.T) {
	buf := make([]byte, PageSize)

	f := NewFaultInjector(NewNullDataDevice("d", 64), 1)
	f.Arm(FaultSite{Kind: FaultLatent, LBA: 9})
	if _, err := f.ReadPages(0, 9, 1, buf); !errors.Is(err, ErrMedia) {
		t.Fatalf("latent site read: %v, want ErrMedia", err)
	}
	if _, err := f.ReadPages(0, 9, 1, buf); !errors.Is(err, ErrMedia) {
		t.Fatalf("latent persists until rewritten; got %v", err)
	}

	f = NewFaultInjector(NewNullDataDevice("d", 64), 1)
	f.Arm(FaultSite{Kind: FaultTransient, LBA: 4, Fails: 2})
	for i := 0; i < 2; i++ {
		if _, err := f.ReadPages(0, 4, 1, buf); !errors.Is(err, ErrMedia) {
			t.Fatalf("transient read %d: %v, want ErrMedia", i, err)
		}
	}
	if _, err := f.ReadPages(0, 4, 1, buf); err != nil {
		t.Fatalf("transient should clear after %d fails: %v", 2, err)
	}

	f = NewFaultInjector(NewNullDataDevice("d", 64), 1)
	f.Arm(FaultSite{Kind: FaultCrashTorn, WriteOp: 1, TornPages: 0, TornBytes: 0})
	if _, err := f.WritePages(0, 0, 1, buf); err != nil {
		t.Fatalf("write before crash ordinal: %v", err)
	}
	if _, err := f.WritePages(0, 1, 1, buf); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write at crash ordinal: %v, want ErrCrashed", err)
	}
	if !f.Crashed() {
		t.Fatal("injector not crashed after site fired")
	}
}

// A trim issued after the crash point must not reach the medium.
func TestTrimBlockedWhileCrashed(t *testing.T) {
	inner := NewNullDataDevice("d", 64)
	f := NewFaultInjector(inner, 1)
	buf := make([]byte, PageSize)
	buf[0] = 0xAB
	f.WritePages(0, 5, 1, buf)
	f.ArmCrash(0, 0, 0)
	if _, err := f.WritePages(0, 6, 1, buf); !errors.Is(err, ErrCrashed) {
		t.Fatalf("arming write: %v, want ErrCrashed", err)
	}
	if _, err := f.TrimPages(0, 5, 1); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash trim: %v, want ErrCrashed", err)
	}
	got := make([]byte, PageSize)
	if err := inner.Store().ReadPageChecked(5, got); err != nil {
		t.Fatalf("page 5 after blocked trim: %v", err)
	}
	if got[0] != 0xAB {
		t.Fatal("blocked trim still mutated durable state")
	}
}
