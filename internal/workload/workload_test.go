package workload

import (
	"math"
	"testing"

	"kddcache/internal/trace"
)

func TestSynthesizeMatchesTableI(t *testing.T) {
	// Scaled down 50x for test speed; characteristics must track the spec.
	for _, spec := range TableI() {
		spec := spec.Scale(0.02)
		tr := Synthesize(spec)
		s := tr.Stats()
		wantReqs := spec.ReadPages + spec.WritePages
		if got := s.ReadPages + s.WritePages; got != wantReqs {
			t.Fatalf("%s: requests %d, want %d", spec.Name, got, wantReqs)
		}
		if math.Abs(s.ReadRatio-spec.ReadRatio()) > 0.01 {
			t.Errorf("%s: read ratio %.3f, want %.3f", spec.Name, s.ReadRatio, spec.ReadRatio())
		}
		// Zipf won't touch every page, but the footprint must be within
		// sane range of the spec and never exceed it.
		if s.UniqueTotal > spec.UniqueTotal {
			t.Errorf("%s: unique %d exceeds footprint %d", spec.Name, s.UniqueTotal, spec.UniqueTotal)
		}
		if float64(s.UniqueTotal) < 0.35*float64(spec.UniqueTotal) {
			t.Errorf("%s: unique %d too small vs footprint %d", spec.Name, s.UniqueTotal, spec.UniqueTotal)
		}
		if s.UniqueRead > spec.UniqueRead || s.UniqueWrite > spec.UniqueWrite {
			t.Errorf("%s: per-direction uniques exceed spec: %+v", spec.Name, s)
		}
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	spec := Fin1.Scale(0.002)
	a := Synthesize(spec)
	b := Synthesize(spec)
	if len(a.Requests) != len(b.Requests) {
		t.Fatal("lengths differ")
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs", i)
		}
	}
}

func TestSynthesizeTimestampsMonotone(t *testing.T) {
	tr := Synthesize(Fin2.Scale(0.002))
	for i := 1; i < len(tr.Requests); i++ {
		if tr.Requests[i].Time < tr.Requests[i-1].Time {
			t.Fatal("timestamps not monotone")
		}
	}
	if tr.Requests[len(tr.Requests)-1].Time <= 0 {
		t.Fatal("no time elapsed")
	}
}

func TestSynthesizeTemporalLocality(t *testing.T) {
	// A Zipf-driven stream must concentrate accesses: the most popular 10%
	// of touched pages should carry well over 10% of requests.
	tr := Synthesize(Fin1.Scale(0.01))
	counts := map[int64]int{}
	for _, r := range tr.Requests {
		counts[r.LBA]++
	}
	var freqs []int
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	// Top-10% share.
	total := len(tr.Requests)
	sortDesc(freqs)
	topN := len(freqs) / 10
	top := 0
	for _, c := range freqs[:topN] {
		top += c
	}
	if share := float64(top) / float64(total); share < 0.3 {
		t.Fatalf("top-10%% share = %.3f; no temporal locality", share)
	}
}

func sortDesc(x []int) {
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] > x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}

func TestScaleValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Fin1.Scale(0)
}

func TestSynthesizeInconsistentSpecPanics(t *testing.T) {
	bad := Spec{Name: "bad", UniqueTotal: 100, UniqueRead: 10, UniqueWrite: 10,
		ReadPages: 50, WritePages: 50}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Synthesize(bad)
}

func TestReadRatio(t *testing.T) {
	if r := Fin1.ReadRatio(); math.Abs(r-0.19) > 0.01 {
		t.Fatalf("Fin1 read ratio = %f", r)
	}
	var empty Spec
	if empty.ReadRatio() != 0 {
		t.Fatal("empty spec ratio should be 0")
	}
}

func TestFIOGenBudgetAndMix(t *testing.T) {
	spec := DefaultFIO(0.25).Scale(0.01)
	g := NewFIOGen(spec)
	reads, writes := 0, 0
	seen := map[int64]bool{}
	for {
		r, ok := g.Next()
		if !ok {
			break
		}
		if r.LBA < 0 || r.LBA >= spec.WorkingSetPages {
			t.Fatalf("LBA %d outside working set", r.LBA)
		}
		seen[r.LBA] = true
		if r.Op == trace.Read {
			reads++
		} else {
			writes++
		}
	}
	total := reads + writes
	if int64(total) != spec.TotalPages {
		t.Fatalf("issued %d, want %d", total, spec.TotalPages)
	}
	ratio := float64(reads) / float64(total)
	if math.Abs(ratio-0.25) > 0.03 {
		t.Fatalf("read ratio %.3f, want ~0.25", ratio)
	}
	if g.Remaining() != 0 {
		t.Fatalf("Remaining = %d", g.Remaining())
	}
	if _, ok := g.Next(); ok {
		t.Fatal("generator exceeded budget")
	}
	if len(seen) < 2 {
		t.Fatal("working set barely touched")
	}
}

func TestFIOGenZeroAndFullReadRate(t *testing.T) {
	for _, rate := range []float64{0, 1} {
		g := NewFIOGen(FIOSpec{WorkingSetPages: 100, TotalPages: 500,
			ReadRate: rate, Threads: 4, Alpha: 1.0001, Seed: 3})
		reads := 0
		for {
			r, ok := g.Next()
			if !ok {
				break
			}
			if r.Op == trace.Read {
				reads++
			}
		}
		if rate == 0 && reads != 0 {
			t.Fatalf("rate 0 produced %d reads", reads)
		}
		if rate == 1 && reads != 500 {
			t.Fatalf("rate 1 produced %d reads", reads)
		}
	}
}

func TestFIOSpecValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFIOGen(FIOSpec{})
}

func TestFIOScalePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DefaultFIO(0).Scale(-1)
}
