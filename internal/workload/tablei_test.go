package workload

import (
	"math"
	"testing"
)

// TestTableITargets pins the four built-in specs to the paper's Table I
// numbers: per-direction unique footprints, request volumes (×1,000
// pages), the read ratio each implies, and the structural identities
// every Table I row must satisfy. TestSynthesizeMatchesTableI checks that
// Synthesize tracks the specs; this test checks that the specs themselves
// still say what the paper says.
func TestTableITargets(t *testing.T) {
	cases := []struct {
		spec        Spec
		uniqueTotal int64
		uniqueRead  int64
		uniqueWrite int64
		readPages   int64
		writePages  int64
		readRatio   float64
		writeDom    bool // paper classifies the trace as write-dominant
	}{
		{Fin1, 993_000, 331_000, 966_000, 1_339_000, 5_628_000, 0.19, true},
		{Fin2, 405_000, 271_000, 212_000, 3_562_000, 917_000, 0.80, false},
		{Hm0, 609_000, 488_000, 428_000, 2_880_000, 5_992_000, 0.33, true},
		{Web0, 1_913_000, 1_884_000, 182_000, 4_575_000, 3_186_000, 0.59, false},
	}
	if got := len(TableI()); got != len(cases) {
		t.Fatalf("TableI has %d workloads, want %d", got, len(cases))
	}
	for i, c := range cases {
		s := c.spec
		if TableI()[i].Name != s.Name {
			t.Errorf("TableI()[%d] = %s, want %s (presentation order)", i, TableI()[i].Name, s.Name)
		}
		if s.UniqueTotal != c.uniqueTotal || s.UniqueRead != c.uniqueRead || s.UniqueWrite != c.uniqueWrite {
			t.Errorf("%s: unique pages (%d,%d,%d), want (%d,%d,%d)", s.Name,
				s.UniqueTotal, s.UniqueRead, s.UniqueWrite,
				c.uniqueTotal, c.uniqueRead, c.uniqueWrite)
		}
		if s.ReadPages != c.readPages || s.WritePages != c.writePages {
			t.Errorf("%s: request pages (%d,%d), want (%d,%d)", s.Name,
				s.ReadPages, s.WritePages, c.readPages, c.writePages)
		}
		// Table I prints ratios rounded to two decimals (and rounds Hm0's
		// 0.325 up), so allow one count in the last printed digit.
		if got := s.ReadRatio(); math.Abs(got-c.readRatio) > 0.01 {
			t.Errorf("%s: read ratio %.3f, want %.2f", s.Name, got, c.readRatio)
		}
		if dom := s.WritePages > s.ReadPages; dom != c.writeDom {
			t.Errorf("%s: write-dominant=%v, paper says %v", s.Name, dom, c.writeDom)
		}
		// Structural identities of any Table I row: per-direction sets
		// cover the union, overlap is non-negative, footprint does not
		// exceed the request volume in either direction, and the workload
		// actually exercises both directions.
		if s.UniqueRead > s.UniqueTotal || s.UniqueWrite > s.UniqueTotal {
			t.Errorf("%s: a per-direction unique count exceeds the union", s.Name)
		}
		if s.UniqueRead+s.UniqueWrite < s.UniqueTotal {
			t.Errorf("%s: read and write sets cannot cover the union", s.Name)
		}
		if s.UniqueRead > s.ReadPages || s.UniqueWrite > s.WritePages {
			t.Errorf("%s: more unique pages than request pages", s.Name)
		}
		if s.ReadPages == 0 || s.WritePages == 0 {
			t.Errorf("%s: degenerate single-direction workload", s.Name)
		}
		if s.Theta <= 0 || s.MeanIOPS <= 0 || s.Seed == 0 {
			t.Errorf("%s: generation knobs unset: theta=%v iops=%v seed=%d",
				s.Name, s.Theta, s.MeanIOPS, s.Seed)
		}
	}
}
