// Package workload synthesises the I/O workloads of the paper's
// evaluation. The real SPC Financial and MSR Cambridge traces are not
// redistributable, so Synthesize generates streams matched to the
// characteristics Table I reports for each trace — unique-page footprint
// (total/read/write), request counts, and read ratio — with Zipf temporal
// locality, which is what hit-ratio and write-traffic curves are shaped
// by. The FIO-style closed-loop generator of §IV-B3 (Zipf α=1.0001) is
// here too.
package workload

import (
	"fmt"
	"math"

	"kddcache/internal/sim"
	"kddcache/internal/trace"
)

// Spec describes a synthetic trace in Table I terms. Counts are in 4KB
// pages.
type Spec struct {
	Name        string
	UniqueTotal int64 // distinct pages (union of read and write sets)
	UniqueRead  int64 // distinct pages read
	UniqueWrite int64 // distinct pages written
	ReadPages   int64 // read request pages
	WritePages  int64 // write request pages

	// Theta is the Zipf exponent controlling temporal locality (~0.9
	// matches enterprise traces; must be >0 and !=1 internally).
	Theta float64
	// MeanIOPS sets the arrival rate (exponential interarrivals).
	MeanIOPS float64
	// Seed makes generation reproducible.
	Seed uint64
}

// The four Table I workloads (counts ×1,000 from the paper). MeanIOPS is
// chosen to spread each trace over roughly an hour of virtual time.
var (
	// Fin1 is the write-dominant OLTP trace (read ratio 0.19).
	Fin1 = Spec{Name: "Fin1", UniqueTotal: 993_000, UniqueRead: 331_000,
		UniqueWrite: 966_000, ReadPages: 1_339_000, WritePages: 5_628_000,
		Theta: 0.9, MeanIOPS: 1900, Seed: 101}
	// Fin2 is the read-dominant OLTP trace (read ratio 0.80).
	Fin2 = Spec{Name: "Fin2", UniqueTotal: 405_000, UniqueRead: 271_000,
		UniqueWrite: 212_000, ReadPages: 3_562_000, WritePages: 917_000,
		Theta: 0.9, MeanIOPS: 1250, Seed: 102}
	// Hm0 is the write-dominant MSR hardware-monitoring volume (0.33).
	Hm0 = Spec{Name: "Hm0", UniqueTotal: 609_000, UniqueRead: 488_000,
		UniqueWrite: 428_000, ReadPages: 2_880_000, WritePages: 5_992_000,
		Theta: 0.9, MeanIOPS: 2450, Seed: 103}
	// Web0 is the read-dominant MSR web-server volume (0.59). Its write
	// temporal locality is much higher than its read locality, the
	// property behind the Figure 7 anomaly, so writes use a hotter Zipf.
	Web0 = Spec{Name: "Web0", UniqueTotal: 1_913_000, UniqueRead: 1_884_000,
		UniqueWrite: 182_000, ReadPages: 4_575_000, WritePages: 3_186_000,
		Theta: 0.9, MeanIOPS: 2150, Seed: 104}
)

// TableI returns the four paper workloads in presentation order.
func TableI() []Spec { return []Spec{Fin1, Fin2, Hm0, Web0} }

// Scale returns a copy of s with footprint and request counts multiplied
// by f (used to shrink experiments for tests while preserving shape).
func (s Spec) Scale(f float64) Spec {
	if f <= 0 {
		panic("workload: non-positive scale")
	}
	scale := func(v int64) int64 {
		n := int64(float64(v) * f)
		if n < 1 {
			n = 1
		}
		return n
	}
	s.Name = fmt.Sprintf("%s(x%.3g)", s.Name, f)
	s.UniqueTotal = scale(s.UniqueTotal)
	s.UniqueRead = scale(s.UniqueRead)
	s.UniqueWrite = scale(s.UniqueWrite)
	s.ReadPages = scale(s.ReadPages)
	s.WritePages = scale(s.WritePages)
	return s
}

// ReadRatio returns the spec's read fraction.
func (s Spec) ReadRatio() float64 {
	tot := s.ReadPages + s.WritePages
	if tot == 0 {
		return 0
	}
	return float64(s.ReadPages) / float64(tot)
}

// Synthesize generates a trace matching the spec. The address space is
// laid out as [write-only | shared | read-only] so the unique read/write
// footprints and their overlap match Table I; request targets are drawn
// Zipf-distributed over a per-direction random permutation so that hot
// pages are spread across the footprint rather than clustered at low
// addresses.
func Synthesize(s Spec) *trace.Trace {
	if s.UniqueRead > s.UniqueTotal || s.UniqueWrite > s.UniqueTotal ||
		s.UniqueRead+s.UniqueWrite < s.UniqueTotal {
		panic(fmt.Sprintf("workload: inconsistent footprint in %q", s.Name))
	}
	theta := s.Theta
	if theta == 0 {
		theta = 0.9
	}
	rng := sim.NewRNG(s.Seed)
	// Region layout over [0, UniqueTotal):
	//   [0, writeOnly)                       written only
	//   [writeOnly, writeOnly+shared)        read and written
	//   [writeOnly+shared, total)            read only
	overlap := s.UniqueRead + s.UniqueWrite - s.UniqueTotal
	writeOnly := s.UniqueWrite - overlap

	readBase := writeOnly // read set = [writeOnly, total)
	readSpan := s.UniqueRead
	writeSpan := s.UniqueWrite // write set = [0, writeOnly+overlap)

	readZipf := sim.NewZipf(rng.Split(), theta, uint64(readSpan))
	writeTheta := theta
	if s.Name == Web0.Name || s.Name[:3] == "Web" {
		writeTheta = 1.1 // hotter writes (see Web0 comment)
	}
	writeZipf := sim.NewZipf(rng.Split(), writeTheta, uint64(writeSpan))

	// Per-direction rank->page permutations (lazily built Fisher-Yates
	// would need full arrays anyway; footprints are ~1e6, fine).
	readPerm := randomPermutation(rng.Split(), readSpan)
	writePerm := randomPermutation(rng.Split(), writeSpan)

	total := s.ReadPages + s.WritePages
	iops := s.MeanIOPS
	if iops <= 0 {
		iops = 2000
	}
	meanGap := float64(sim.Second) / iops

	tr := &trace.Trace{Name: s.Name}
	tr.Requests = make([]trace.Request, 0, total)
	var now sim.Time
	readLeft, writeLeft := s.ReadPages, s.WritePages
	for readLeft > 0 || writeLeft > 0 {
		// Choose direction proportional to remaining budget so the final
		// mix matches exactly.
		isRead := false
		if readLeft > 0 && writeLeft > 0 {
			isRead = rng.Float64()*float64(readLeft+writeLeft) < float64(readLeft)
		} else {
			isRead = readLeft > 0
		}
		var req trace.Request
		if isRead {
			page := readBase + readPerm[readZipf.Next()]
			req = trace.Request{Time: now, Op: trace.Read, LBA: page, Pages: 1}
			readLeft--
		} else {
			page := writePerm[writeZipf.Next()]
			req = trace.Request{Time: now, Op: trace.Write, LBA: page, Pages: 1}
			writeLeft--
		}
		tr.Requests = append(tr.Requests, req)
		// Exponential interarrival.
		gap := -meanGap * ln(1-rng.Float64())
		now += sim.Time(gap)
	}
	return tr
}

// randomPermutation returns a permutation of [0, n) as int64 page offsets.
func randomPermutation(rng *sim.RNG, n int64) []int64 {
	p := make([]int64, n)
	for i := range p {
		p[i] = int64(i)
	}
	for i := n - 1; i > 0; i-- {
		j := int64(rng.Uint64n(uint64(i + 1)))
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// ln guards math.Log against the zero argument Float64 can produce, which
// would yield an infinite interarrival gap.
func ln(x float64) float64 {
	if x <= 0 {
		return -30
	}
	return math.Log(x)
}
