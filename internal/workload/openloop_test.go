package workload

import (
	"testing"

	"kddcache/internal/sim"
	"kddcache/internal/trace"
)

func baseOpenLoop() OpenLoop {
	return OpenLoop{
		Name:        "ol",
		Clients:     8,
		OfferedIOPS: 10_000,
		Requests:    20_000,
		Footprint:   4_096,
		ReadRatio:   0.4,
		Seed:        0x01EA,
	}
}

func TestOpenLoopDeterministic(t *testing.T) {
	a := baseOpenLoop().Generate()
	b := baseOpenLoop().Generate()
	if len(a.Requests) != len(b.Requests) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Requests), len(b.Requests))
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs: %+v vs %+v", i, a.Requests[i], b.Requests[i])
		}
	}
}

func TestOpenLoopShape(t *testing.T) {
	o := baseOpenLoop()
	tr := o.Generate()
	if int64(len(tr.Requests)) != o.Requests {
		t.Fatalf("emitted %d of %d requests", len(tr.Requests), o.Requests)
	}
	var reads int64
	var last sim.Time
	for i, r := range tr.Requests {
		if r.Time < last {
			t.Fatalf("request %d out of time order: %d after %d", i, r.Time, last)
		}
		last = r.Time
		if r.LBA < 0 || r.LBA >= o.Footprint {
			t.Fatalf("request %d outside footprint: lba %d", i, r.LBA)
		}
		if r.Op == trace.Read {
			reads++
		}
	}
	ratio := float64(reads) / float64(len(tr.Requests))
	if ratio < o.ReadRatio-0.05 || ratio > o.ReadRatio+0.05 {
		t.Fatalf("read ratio %.3f far from %.2f", ratio, o.ReadRatio)
	}
	// Offered load: total span should approximate Requests/OfferedIOPS
	// seconds (merged Poisson at the aggregate rate).
	wantSpan := float64(o.Requests) / o.OfferedIOPS * float64(sim.Second)
	gotSpan := float64(last)
	if gotSpan < wantSpan*0.9 || gotSpan > wantSpan*1.1 {
		t.Fatalf("span %.0f not within 10%% of %.0f (offered rate off)", gotSpan, wantSpan)
	}
	// Zipf locality: the hottest page should be requested far more often
	// than the uniform expectation.
	counts := make(map[int64]int64)
	var max int64
	for _, r := range tr.Requests {
		counts[r.LBA]++
		if counts[r.LBA] > max {
			max = counts[r.LBA]
		}
	}
	uniform := o.Requests / o.Footprint
	if max < uniform*10 {
		t.Fatalf("hottest page seen %d times; uniform expectation %d — no locality", max, uniform)
	}
}

// TestOpenLoopClientInvariantRate proves the aggregate offered rate does
// not depend on the population size.
func TestOpenLoopClientInvariantRate(t *testing.T) {
	for _, clients := range []int{1, 4, 32} {
		o := baseOpenLoop()
		o.Clients = clients
		tr := o.Generate()
		span := float64(tr.Requests[len(tr.Requests)-1].Time)
		want := float64(o.Requests) / o.OfferedIOPS * float64(sim.Second)
		if span < want*0.85 || span > want*1.15 {
			t.Fatalf("clients=%d: span %.0f vs want %.0f", clients, span, want)
		}
	}
}
