package workload

import (
	"fmt"
	"sort"

	"kddcache/internal/sim"
	"kddcache/internal/trace"
)

// OpenLoop describes an open-loop arrival process: a population of
// independent Poisson clients that submit requests at their own pace
// regardless of completions. Closed-loop generators (FIO-style, above)
// hide saturation — a slow server simply slows its clients down; an
// open-loop stream keeps offering load, which is what latency-vs-load
// saturation curves require. Arrivals are time-stamped only; the driver
// decides what "service" means.
type OpenLoop struct {
	Name string

	// Clients is the population size. Each client is an independent
	// Poisson source with rate OfferedIOPS/Clients; the merged stream is
	// again Poisson at the full offered rate. Default 16.
	Clients int

	// OfferedIOPS is the aggregate arrival rate (requests per virtual
	// second) the population offers.
	OfferedIOPS float64

	// Requests is the total request count to emit, spread evenly over
	// the clients.
	Requests int64

	// Footprint is the distinct-page address span requests draw from.
	Footprint int64

	// ReadRatio is the read fraction in [0,1].
	ReadRatio float64

	// Theta is the Zipf exponent of the page popularity distribution
	// shared by all clients (default 0.9, the enterprise-trace value).
	Theta float64

	// Seed makes the stream reproducible; every derived RNG (per-client
	// clocks, directions, and popularity draws) splits from it.
	Seed uint64

	// Tenant stamps every generated request with a tenant index, so a
	// population can model one tenant's arrival process and several
	// populations merge into a multi-tenant stream (MergeTenants).
	Tenant int

	// LBABase offsets every generated LBA, giving tenants disjoint
	// footprints when the experiment wants no sharing.
	LBABase int64
}

// Generate synthesises the merged arrival stream, sorted by arrival
// time (ties broken by client index, so the output is deterministic).
func (o OpenLoop) Generate() *trace.Trace {
	if o.Clients <= 0 {
		o.Clients = 16
	}
	if o.Theta == 0 {
		o.Theta = 0.9
	}
	if o.OfferedIOPS <= 0 || o.Requests <= 0 || o.Footprint <= 0 {
		panic(fmt.Sprintf("workload: open-loop %q needs positive load, requests and footprint", o.Name))
	}
	rng := sim.NewRNG(o.Seed)
	perm := randomPermutation(rng.Split(), o.Footprint)
	clientRate := o.OfferedIOPS / float64(o.Clients)
	meanGap := float64(sim.Second) / clientRate

	type stamped struct {
		req    trace.Request
		client int
	}
	all := make([]stamped, 0, o.Requests)
	for c := 0; c < o.Clients; c++ {
		n := o.Requests / int64(o.Clients)
		if int64(c) < o.Requests%int64(o.Clients) {
			n++
		}
		crng := rng.Split()
		zipf := sim.NewZipf(rng.Split(), o.Theta, uint64(o.Footprint))
		var now sim.Time
		for i := int64(0); i < n; i++ {
			// Exponential interarrival BEFORE the request: a Poisson
			// process's first event is not at t=0.
			now += sim.Time(-meanGap * ln(1-crng.Float64()))
			op := trace.Write
			if crng.Float64() < o.ReadRatio {
				op = trace.Read
			}
			all = append(all, stamped{
				req: trace.Request{
					Time: now, Op: op, LBA: o.LBABase + perm[zipf.Next()],
					Pages: 1, Tenant: o.Tenant,
				},
				client: c,
			})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].req.Time != all[j].req.Time {
			return all[i].req.Time < all[j].req.Time
		}
		return all[i].client < all[j].client
	})
	tr := &trace.Trace{Name: o.Name, Requests: make([]trace.Request, len(all))}
	for i, s := range all {
		tr.Requests[i] = s.req
	}
	return tr
}

// MergeTenants interleaves several per-tenant arrival streams into one
// multi-tenant trace, ordered by arrival time with ties broken by
// (tenant, input position) — fully deterministic, so multi-tenant
// experiments replay byte-identically.
func MergeTenants(name string, traces ...*trace.Trace) *trace.Trace {
	type tagged struct {
		req  trace.Request
		pos  int
		from int
	}
	var n int
	for _, tr := range traces {
		n += len(tr.Requests)
	}
	all := make([]tagged, 0, n)
	for fi, tr := range traces {
		for i, r := range tr.Requests {
			all = append(all, tagged{req: r, pos: i, from: fi})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].req.Time != all[j].req.Time {
			return all[i].req.Time < all[j].req.Time
		}
		if all[i].req.Tenant != all[j].req.Tenant {
			return all[i].req.Tenant < all[j].req.Tenant
		}
		if all[i].from != all[j].from {
			return all[i].from < all[j].from
		}
		return all[i].pos < all[j].pos
	})
	out := &trace.Trace{Name: name, Requests: make([]trace.Request, len(all))}
	for i, s := range all {
		out.Requests[i] = s.req
	}
	return out
}
