package workload

import (
	"kddcache/internal/sim"
	"kddcache/internal/trace"
)

// FIOSpec mirrors the paper's FIO benchmark configuration (§IV-B3): a
// closed-loop Zipfian workload over a fixed working set, issued by a
// bounded pool of threads.
type FIOSpec struct {
	// WorkingSetPages is the address span touched (paper: 1.6GB working
	// set inside a 4GB span).
	WorkingSetPages int64
	// TotalPages is the number of request pages to issue (paper: 4GB of
	// 4KB accesses).
	TotalPages int64
	// ReadRate is the fraction of reads in [0,1] (paper sweeps 0–0.75).
	ReadRate float64
	// Threads is the closed-loop concurrency (paper: 16).
	Threads int
	// Alpha is the Zipf exponent (paper: 1.0001).
	Alpha float64
	// Seed seeds the generators.
	Seed uint64
}

// DefaultFIO returns the paper's configuration scaled by the given
// working-set pages (the paper uses 1.6GB = 409,600 pages and issues 4GB
// = 1,048,576 page accesses).
func DefaultFIO(readRate float64) FIOSpec {
	return FIOSpec{
		WorkingSetPages: 409_600,
		TotalPages:      1_048_576,
		ReadRate:        readRate,
		Threads:         16,
		Alpha:           1.0001,
		Seed:            7,
	}
}

// Scale shrinks the working set and request count by f, preserving shape.
func (f FIOSpec) Scale(s float64) FIOSpec {
	if s <= 0 {
		panic("workload: non-positive scale")
	}
	f.WorkingSetPages = int64(float64(f.WorkingSetPages) * s)
	if f.WorkingSetPages < 1 {
		f.WorkingSetPages = 1
	}
	f.TotalPages = int64(float64(f.TotalPages) * s)
	if f.TotalPages < 1 {
		f.TotalPages = 1
	}
	return f
}

// FIOGen produces the request stream one request at a time; the
// closed-loop driver calls Next whenever a thread becomes free, so no
// timestamps are attached here.
type FIOGen struct {
	spec FIOSpec
	rng  *sim.RNG
	zipf *sim.Zipf
	perm []int64
	left int64
}

// NewFIOGen builds a generator for the spec.
func NewFIOGen(spec FIOSpec) *FIOGen {
	if spec.Threads < 1 || spec.WorkingSetPages < 1 || spec.TotalPages < 1 {
		panic("workload: invalid FIO spec")
	}
	rng := sim.NewRNG(spec.Seed)
	return &FIOGen{
		spec: spec,
		rng:  rng.Split(),
		zipf: sim.NewZipf(rng.Split(), spec.Alpha, uint64(spec.WorkingSetPages)),
		perm: randomPermutation(rng.Split(), spec.WorkingSetPages),
		left: spec.TotalPages,
	}
}

// Remaining returns how many requests are left.
func (g *FIOGen) Remaining() int64 { return g.left }

// Next returns the next request, or false when the budget is exhausted.
// The Time field is left zero — the closed-loop driver assigns issue
// times.
func (g *FIOGen) Next() (trace.Request, bool) {
	if g.left <= 0 {
		return trace.Request{}, false
	}
	g.left--
	op := trace.Write
	if g.rng.Float64() < g.spec.ReadRate {
		op = trace.Read
	}
	lba := g.perm[g.zipf.Next()]
	return trace.Request{Op: op, LBA: lba, Pages: 1}, true
}
