package shard

import (
	"sync"

	"kddcache/internal/blockdev"
	"kddcache/internal/cache"
	"kddcache/internal/raid"
	"kddcache/internal/sim"
)

// The plane's lanes share one SSD (disjoint page regions plus the common
// metadata partition) and one RAID array. Neither surface is safe for
// concurrent use on its own, so the plane interposes coarse mutex
// wrappers: every device or array CALL is atomic. Compound sequences
// (a cleaner's read-reconstruct-write, a rebuild step) are kept
// conflict-free by the plane's structure instead — a stripe is owned by
// exactly one lane, a lane by exactly one shard worker, and the member
// rebuild is pumped only at batch barriers when no worker is running.
// In deterministic mode the locks are always uncontended; keeping them
// in both modes means one code path.

// lockedDevice serializes a blockdev.Device shared by the lanes. Trim
// support is forwarded when the wrapped device has it.
type lockedDevice struct {
	mu  sync.Mutex
	dev blockdev.Device
}

func newLockedDevice(dev blockdev.Device) *lockedDevice {
	return &lockedDevice{dev: dev}
}

func (d *lockedDevice) Name() string { return d.dev.Name() }

func (d *lockedDevice) Pages() int64 { return d.dev.Pages() }

func (d *lockedDevice) ReadPages(t sim.Time, lba int64, count int, buf []byte) (sim.Time, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dev.ReadPages(t, lba, count, buf)
}

func (d *lockedDevice) WritePages(t sim.Time, lba int64, count int, buf []byte) (sim.Time, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dev.WritePages(t, lba, count, buf)
}

// Store forwards the data-mode probe: core and metalog sniff for a
// MemStore-backed device to decide whether real bytes flow end to end,
// and the wrapper must not mask that.
func (d *lockedDevice) Store() *blockdev.MemStore {
	if s, ok := d.dev.(blockdev.Storer); ok {
		return s.Store()
	}
	return nil
}

func (d *lockedDevice) TrimPages(t sim.Time, lba int64, count int) (sim.Time, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if tr, ok := d.dev.(blockdev.Trimmer); ok {
		return tr.TrimPages(t, lba, count)
	}
	return t, nil
}

var (
	_ blockdev.Device  = (*lockedDevice)(nil)
	_ blockdev.Trimmer = (*lockedDevice)(nil)
)

// lockedBackend serializes a cache.Backend shared by the lanes.
type lockedBackend struct {
	mu sync.Mutex
	b  cache.Backend
}

func newLockedBackend(b cache.Backend) *lockedBackend {
	return &lockedBackend{b: b}
}

func (l *lockedBackend) Pages() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Pages()
}

func (l *lockedBackend) ReadPages(t sim.Time, lba int64, count int, buf []byte) (sim.Time, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.ReadPages(t, lba, count, buf)
}

func (l *lockedBackend) WritePages(t sim.Time, lba int64, count int, buf []byte) (sim.Time, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.WritePages(t, lba, count, buf)
}

func (l *lockedBackend) WriteNoParity(t sim.Time, lba int64, count int, buf []byte) (sim.Time, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.WriteNoParity(t, lba, count, buf)
}

func (l *lockedBackend) WriteRow(t sim.Time, firstLBA int64, buf []byte) (sim.Time, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.WriteRow(t, firstLBA, buf)
}

func (l *lockedBackend) ParityUpdateDelta(t sim.Time, lbas []int64, deltas [][]byte) (sim.Time, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.ParityUpdateDelta(t, lbas, deltas)
}

func (l *lockedBackend) ParityUpdateDeltaBatch(t sim.Time, fixes []raid.RowFix) (sim.Time, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.ParityUpdateDeltaBatch(t, fixes)
}

func (l *lockedBackend) ParityUpdateReconstruct(t sim.Time, lba int64, rowData [][]byte) (sim.Time, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.ParityUpdateReconstruct(t, lba, rowData)
}

func (l *lockedBackend) ResyncRow(t sim.Time, lba int64) (sim.Time, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.ResyncRow(t, lba)
}

func (l *lockedBackend) RowPeers(lba int64) []int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.RowPeers(lba)
}

func (l *lockedBackend) StripePages() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.StripePages()
}

func (l *lockedBackend) StaleRows() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.StaleRows()
}

func (l *lockedBackend) Healthy() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Healthy()
}

func (l *lockedBackend) RebuildActive() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.RebuildActive()
}

func (l *lockedBackend) RebuildTarget() (int, int64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.RebuildTarget()
}

func (l *lockedBackend) RebuildStep(t sim.Time, maxRows int) (sim.Time, int, bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.RebuildStep(t, maxRows)
}

func (l *lockedBackend) ResumeRebuild(disk int, watermark int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.ResumeRebuild(disk, watermark)
}

func (l *lockedBackend) SpareCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.SpareCount()
}

func (l *lockedBackend) StartSpareRebuild(t sim.Time) (sim.Time, bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.StartSpareRebuild(t)
}

var _ cache.Backend = (*lockedBackend)(nil)
