package shard_test

import (
	"fmt"
	"testing"

	"kddcache/internal/blockdev"
	"kddcache/internal/delta"
	"kddcache/internal/nvram"
	"kddcache/internal/raid"
	"kddcache/internal/shard"
	"kddcache/internal/sim"
)

const (
	prigMetaPages  = 64
	prigCachePages = 1024 // 128 pages per lane
	prigWays       = 16
	prigDiskPages  = 4096
	prigChunk      = 8
	prigFootprint  = 2048 // backing LBAs the workload touches
)

// prig is a plane test rig: 5-disk RAID-5, data-mode devices, ZRLE
// codec, and a sequential oracle of backing-store contents.
type prig struct {
	p      *shard.Plane
	arr    *raid.Array
	ssd    *blockdev.NullDevice
	cfg    shard.Config
	oracle map[int64][]byte
	mut    *delta.Mutator
	rng    *sim.RNG
}

func newPRig(t *testing.T, shards int, opts ...func(*shard.Config)) *prig {
	t.Helper()
	var members []blockdev.Device
	for i := 0; i < 5; i++ {
		members = append(members, blockdev.NewNullDataDevice(fmt.Sprintf("d%d", i), prigDiskPages))
	}
	arr, err := raid.New(raid.Config{Level: raid.Level5, ChunkPages: prigChunk}, members)
	if err != nil {
		t.Fatal(err)
	}
	ssd := blockdev.NewNullDataDevice("ssd", prigMetaPages+prigCachePages+64)
	cfg := shard.Config{
		SSD:        ssd,
		Backend:    arr,
		CachePages: prigCachePages,
		Ways:       prigWays,
		MetaStart:  0,
		MetaPages:  prigMetaPages,
		Codec:      func(int) delta.Codec { return delta.ZRLE{} },
		Shards:     shards,
	}
	for _, o := range opts {
		o(&cfg)
	}
	p, err := shard.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return &prig{
		p: p, arr: arr, ssd: ssd, cfg: cfg,
		oracle: make(map[int64][]byte),
		mut:    delta.NewMutator(7, 0.25),
		rng:    sim.NewRNG(0xBEEF),
	}
}

// batch generates n mixed ops (60% writes) over the hot footprint,
// advancing the oracle sequentially — valid for the plane too, because
// per-LBA order is preserved by lane routing.
func (r *prig) batch(n int) ([]shard.Op, [][]byte) {
	ops := make([]shard.Op, 0, n)
	expect := make([][]byte, n)
	for i := 0; i < n; i++ {
		lba := int64(r.rng.Intn(prigFootprint))
		if r.rng.Float64() < 0.6 {
			page := make([]byte, blockdev.PageSize)
			if prev, ok := r.oracle[lba]; ok {
				copy(page, prev)
				r.mut.Mutate(page)
			} else {
				r.mut.FillRandom(page)
			}
			r.oracle[lba] = page
			ops = append(ops, shard.Op{Kind: shard.OpWrite, LBA: lba, Buf: page})
		} else {
			buf := make([]byte, blockdev.PageSize)
			if prev, ok := r.oracle[lba]; ok {
				snap := make([]byte, blockdev.PageSize)
				copy(snap, prev)
				expect[len(ops)] = snap
			}
			ops = append(ops, shard.Op{Kind: shard.OpRead, LBA: lba, Buf: buf})
		}
	}
	return ops, expect
}

// run drives batches batches of size n, checking every result.
func (r *prig) run(t *testing.T, batches, n int) {
	t.Helper()
	for b := 0; b < batches; b++ {
		ops, expect := r.batch(n)
		res := r.p.RunBatch(0, ops)
		for i, rr := range res {
			if rr.Err != nil {
				t.Fatalf("batch %d op %d (%v lba %d): %v", b, i, ops[i].Kind, ops[i].LBA, rr.Err)
			}
			if ops[i].Kind == shard.OpRead && expect[i] != nil {
				if string(ops[i].Buf) != string(expect[i]) {
					t.Fatalf("batch %d: read %d returned wrong data", b, ops[i].LBA)
				}
			}
		}
	}
}

// verifyOracle reads every written LBA back and checks the contents.
func (r *prig) verifyOracle(t *testing.T) {
	t.Helper()
	for lba, want := range r.oracle {
		buf := make([]byte, blockdev.PageSize)
		if _, err := r.p.Read(0, lba, buf); err != nil {
			t.Fatalf("verify read %d: %v", lba, err)
		}
		if string(buf) != string(want) {
			t.Fatalf("verify read %d: wrong data", lba)
		}
	}
}

// TestRoutingProperties pins the dispatch hash: stable, stripe-granular
// (every page of a stripe shares a lane), independent of shard count,
// and reasonably balanced over the lanes.
func TestRoutingProperties(t *testing.T) {
	t.Parallel()
	r := newPRig(t, 4)
	r2 := newPRig(t, 8, func(c *shard.Config) { c.Goroutines = true })
	stripePages := r.arr.StripePages()
	counts := make([]int, shard.Lanes)
	stripes := int(r.arr.Pages() / stripePages)
	for s := 0; s < stripes; s++ {
		base := int64(s) * stripePages
		lane := r.p.LaneOf(base)
		if lane < 0 || lane >= shard.Lanes {
			t.Fatalf("stripe %d routed to lane %d", s, lane)
		}
		counts[lane]++
		for off := int64(1); off < stripePages; off += 7 {
			if got := r.p.LaneOf(base + off); got != lane {
				t.Fatalf("stripe %d split across lanes %d and %d", s, lane, got)
			}
		}
		if r2.p.LaneOf(base) != lane {
			t.Fatalf("stripe %d routed differently at another shard count", s)
		}
	}
	// 512 stripes over 8 lanes: every lane must carry a fair share. A
	// bound of a quarter of the mean catches residue-correlation bugs
	// (the failure mode of reusing the frame's set hash) without being
	// flaky about ordinary imbalance.
	for lane, c := range counts {
		if c < stripes/shard.Lanes/4 {
			t.Fatalf("lane %d owns only %d of %d stripes", lane, c, stripes)
		}
	}
	// Lanes map onto shards statically and onto valid worker indices.
	for lane := 0; lane < shard.Lanes; lane++ {
		if s := r.p.ShardOf(lane); s < 0 || s >= 4 {
			t.Fatalf("lane %d on shard %d of 4", lane, s)
		}
	}
}

// TestDigestEqualityAcrossShards is the satellite-2 property: the same
// workload quiesced at shard counts 1 and N produces identical plane
// state fingerprints, in deterministic mode and in goroutine mode.
func TestDigestEqualityAcrossShards(t *testing.T) {
	t.Parallel()
	type variant struct {
		name       string
		shards     int
		goroutines bool
	}
	base := newPRig(t, 1)
	base.run(t, 30, 32)
	if _, err := base.p.Quiesce(0); err != nil {
		t.Fatal(err)
	}
	want := base.p.StateDigest()
	for _, v := range []variant{
		{"det-2", 2, false}, {"det-4", 4, false}, {"det-8", 8, false},
		{"pool-2", 2, true}, {"pool-4", 4, true}, {"pool-8", 8, true},
	} {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			r := newPRig(t, v.shards, func(c *shard.Config) { c.Goroutines = v.goroutines })
			r.run(t, 30, 32)
			if _, err := r.p.Quiesce(0); err != nil {
				t.Fatal(err)
			}
			if err := r.p.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if got := r.p.StateDigest(); got != want {
				t.Fatalf("digest %#x != shards-1 digest %#x", got, want)
			}
			r.verifyOracle(t)
		})
	}
}

// TestCoalescing pins the supersede rule: within one batch a write is
// dropped when a later write covers the same LBA and no read intervenes,
// and kept when one does.
func TestCoalescing(t *testing.T) {
	t.Parallel()
	r := newPRig(t, 4, func(c *shard.Config) { c.Coalesce = true; c.Goroutines = true })
	pageA := make([]byte, blockdev.PageSize)
	pageB := make([]byte, blockdev.PageSize)
	r.mut.FillRandom(pageA)
	copy(pageB, pageA)
	r.mut.Mutate(pageB)
	readBuf := make([]byte, blockdev.PageSize)
	res := r.p.RunBatch(0, []shard.Op{
		{Kind: shard.OpWrite, LBA: 5, Buf: pageA}, // superseded by the op below
		{Kind: shard.OpWrite, LBA: 5, Buf: pageB},
		{Kind: shard.OpWrite, LBA: 9, Buf: pageA}, // read of 9 intervenes: kept
		{Kind: shard.OpRead, LBA: 9, Buf: readBuf},
		{Kind: shard.OpWrite, LBA: 9, Buf: pageB},
	})
	for i, rr := range res {
		if rr.Err != nil {
			t.Fatalf("op %d: %v", i, rr.Err)
		}
	}
	if !res[0].Coalesced || res[1].Coalesced || res[2].Coalesced || res[4].Coalesced {
		t.Fatalf("coalesce verdicts wrong: %+v", res)
	}
	if string(readBuf) != string(pageA) {
		t.Fatal("read between writes observed the wrong version")
	}
	if got := r.p.CoalescedWrites(); got != 1 {
		t.Fatalf("CoalescedWrites = %d, want 1", got)
	}
	buf := make([]byte, blockdev.PageSize)
	if _, err := r.p.Read(0, 5, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(pageB) {
		t.Fatal("coalesced LBA does not hold the superseding write")
	}
}

// TestPlaneRestore crashes a plane mid-workload (no quiesce) and
// rebuilds it from the metadata log plus the NVRAM snapshots: recovered
// reads must match the oracle, and restoring twice from one snapshot
// must yield equal digests (replay idempotence).
func TestPlaneRestore(t *testing.T) {
	t.Parallel()
	r := newPRig(t, 4)
	r.run(t, 25, 32)
	// Crash: capture NVRAM (log counters + buffer, per-lane staging).
	ctr := r.p.Log().Counters()
	buffered := r.p.Log().BufferedEntries()
	var stagings [shard.Lanes]*nvram.Staging
	for i := 0; i < shard.Lanes; i++ {
		stagings[i] = r.p.Lane(i).Staging()
	}
	restore := func() *shard.Plane {
		t.Helper()
		p2, _, err := shard.Restore(r.cfg, 0, ctr, buffered, stagings)
		if err != nil {
			t.Fatalf("Restore: %v", err)
		}
		t.Cleanup(p2.Close)
		return p2
	}
	p2 := restore()
	if err := p2.CheckInvariants(); err != nil {
		t.Fatalf("recovered plane: %v", err)
	}
	d1 := p2.StateDigest()
	p3 := restore()
	if d2 := p3.StateDigest(); d2 != d1 {
		t.Fatalf("double restore diverged: %#x != %#x", d1, d2)
	}
	// Serve the oracle from the recovered plane.
	old := r.p
	r.p = p2
	r.verifyOracle(t)
	r.p = old
}

// TestRebuildPacing fails a member under a live plane and lets the
// batch-barrier pump drive the spare rebuild to completion, in both
// scheduler modes.
func TestRebuildPacing(t *testing.T) {
	t.Parallel()
	for _, goroutines := range []bool{false, true} {
		goroutines := goroutines
		t.Run(fmt.Sprintf("goroutines=%v", goroutines), func(t *testing.T) {
			t.Parallel()
			r := newPRig(t, 4, func(c *shard.Config) {
				c.Goroutines = goroutines
				// 4096 page-rows per member; pace so ~120 batches finish it.
				c.RebuildRowsPerBatch = 36
			})
			r.run(t, 10, 32)
			if _, err := r.p.Quiesce(0); err != nil {
				t.Fatal(err)
			}
			spare := blockdev.NewNullDataDevice("spare", prigDiskPages)
			if err := r.arr.AddSpare(spare); err != nil {
				t.Fatal(err)
			}
			r.arr.FailDisk(2)
			if _, started, err := r.arr.StartSpareRebuild(0); err != nil || !started {
				t.Fatalf("StartSpareRebuild: started=%v err=%v", started, err)
			}
			// Foreground traffic continues while the barrier pump pays the
			// rebuild down a few rows per batch.
			for i := 0; i < 400 && r.arr.RebuildActive(); i++ {
				r.run(t, 1, 8)
			}
			if r.arr.RebuildActive() {
				t.Fatal("rebuild never completed under the batch pump")
			}
			if !r.arr.Healthy() {
				t.Fatal("array not healthy after rebuild")
			}
			st := r.p.Stats()
			if st.RebuildRows == 0 || st.RebuildsDone != 1 {
				t.Fatalf("pump stats: rows=%d done=%d", st.RebuildRows, st.RebuildsDone)
			}
			if _, err := r.p.Quiesce(0); err != nil {
				t.Fatal(err)
			}
			r.verifyOracle(t)
		})
	}
}

// TestShardCountValidation pins the lane-divisibility rule.
func TestShardCountValidation(t *testing.T) {
	t.Parallel()
	r := newPRig(t, 1)
	bad := r.cfg
	bad.Shards = 3
	if _, err := shard.New(bad); err == nil {
		t.Fatal("shard count 3 accepted over 8 lanes")
	}
	bad = r.cfg
	bad.CachePages = prigCachePages + 4
	if _, err := shard.New(bad); err == nil {
		t.Fatal("non-lane-divisible cache accepted")
	}
}
