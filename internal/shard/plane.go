// Package shard implements the concurrent sharded data plane: a fixed
// set of lanes — each a complete core.KDD over its own slice of the SSD
// cache — dispatched by backing-LBA stripe hash and executed by a
// configurable number of shard workers behind the sched.Scheduler seam.
//
// The state partition count (Lanes) is FIXED; the shard count only
// groups lanes onto execution units. That split is what makes the
// determinism contract possible: under the deterministic scheduler the
// plane produces byte-identical traces, figures, and state fingerprints
// at any shard count, because per-lane state and per-lane operation
// order are functions of the request stream alone. Shards are pure
// throughput: under the goroutine scheduler each worker owns Lanes/N
// lanes and runs them concurrently.
//
// Per batch the plane coalesces superseded writes (a write to an LBA
// overwritten later in the same batch with no intervening read of it is
// dropped), executes each operation under that stripe's lock, and ends
// with one metadata barrier per lane — metalog entries reach NVRAM at
// the operation (the durability point), while their page flushes batch
// into the barrier.
package shard

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"kddcache/internal/blockdev"
	"kddcache/internal/cache"
	"kddcache/internal/core"
	"kddcache/internal/delta"
	"kddcache/internal/metalog"
	"kddcache/internal/obs"
	"kddcache/internal/qos"
	"kddcache/internal/sched"
	"kddcache/internal/sim"
	"kddcache/internal/stats"
)

// Lanes is the fixed number of state partitions. Shard counts must
// divide it. Eight matches the paper-scale geometries the experiments
// use (and the largest shard count the saturation sweep drives).
const Lanes = 8

// stripeLockSlots sizes the plane's striped lock table. Collisions are
// benign (two stripes sharing a mutex serialize, nothing more).
const stripeLockSlots = 64

// ErrStopped is returned for every operation after the plane fail-stops:
// a lane reported a fatal device error (power loss mid-write, whole-SSD
// death), so the remaining queued work is refused untouched — those ops
// never started, never reached NVRAM, and recovery sees exactly the
// state at the instant of the failure. Restore a new plane to continue.
var ErrStopped = errors.New("shard: plane stopped on a fatal device error; restore required")

// fatalErr reports whether a lane error means the shared device is gone
// (as opposed to a semantic, retryable refusal like a stale-parity
// fold-first error).
func fatalErr(err error) bool {
	return errors.Is(err, blockdev.ErrCrashed) || errors.Is(err, blockdev.ErrFailed)
}

// Config assembles a plane.
type Config struct {
	SSD     blockdev.Device
	Backend cache.Backend

	CachePages int64 // total cache capacity, split evenly across lanes
	Ways       int   // set associativity per lane (default 256)

	MetaStart int64 // shared metadata partition start
	MetaPages int64 // shared metadata partition size (>= 2)

	// Codec builds each lane's delta codec. Stateful codecs (the
	// modelled one carries an RNG) must not be shared between lanes, or
	// goroutine-mode runs race and deterministic runs couple lane state.
	Codec func(lane int) delta.Codec

	StagingBytes        int     // per-lane NVRAM staging capacity
	HighWater, LowWater float64 // per-lane cleaner watermarks
	MetaGCThreshold     float64

	// Shards is the execution width: how many workers the lanes are
	// grouped onto. Must divide Lanes; default 1.
	Shards int

	// Goroutines selects the real per-shard worker scheduler. Off, the
	// plane single-steps every operation in submission order — the
	// deterministic mode whose output is byte-identical at any Shards.
	Goroutines bool

	// Coalesce drops writes superseded within a batch. Lane-consistent
	// by construction (only same-LBA operations interact, and an LBA
	// always routes to the same lane), so it preserves the determinism
	// contract across shard counts in both modes.
	Coalesce bool

	// RebuildRowsPerBatch paces the member rebuild: rows reconstructed
	// at each batch barrier while a rebuild window is open. 0 selects
	// the default (8); < 0 disables the pump.
	RebuildRowsPerBatch int

	// Tracer is attached in deterministic mode only (the tracer is not
	// synchronized; goroutine mode would race on it).
	Tracer *obs.Tracer

	// QoS attaches a per-tenant admission controller. RunBatch consults
	// it in submission order on the submitting goroutine — before any
	// work is scheduled — so its decisions are identical at every shard
	// count and in both scheduler modes. Over-budget ops are rejected
	// with typed qos errors; bypass-rung ops are served around cache
	// admission (core.ReadNoAdmit / WriteNoAdmit).
	QoS *qos.Controller
}

// OpKind selects a plane operation.
type OpKind uint8

// Plane operations: page-granular reads and writes, as cache.Policy.
const (
	OpRead OpKind = iota
	OpWrite
)

// Op is one request submitted to the plane.
type Op struct {
	Kind OpKind
	LBA  int64
	Buf  []byte

	// Tenant is the submitting tenant's index for the QoS controller
	// (ignored without one; zero is the untagged/first tenant).
	Tenant int

	// At is the request's arrival time; zero means the batch time. The
	// admission gate and the deadline check use it, so batched replay
	// keeps per-request bucket accounting exact.
	At sim.Time

	// Deadline, when non-zero, is the absolute virtual time after which
	// the request is rejected with qos.ErrDeadlineExceeded instead of
	// being served (enforced at the plane boundary, before execution).
	Deadline sim.Time
}

// Result reports one Op's completion.
type Result struct {
	Done      sim.Time
	Err       error
	Coalesced bool // write superseded within its batch; never executed
	Bypassed  bool // served around cache admission (QoS bypass verdict)
}

// Plane is the sharded data plane.
type Plane struct {
	cfg         Config
	lanes       [Lanes]*core.KDD
	log         *metalog.Log
	sched       sched.Scheduler
	ssd         *lockedDevice
	backend     *lockedBackend
	stripePages int64
	lanePages   int64
	dataStart   int64

	stripeMu [stripeLockSlots]sync.Mutex

	// dead latches after a lane reports a fatal device error (crash or
	// fail-stop): the rest of the batch — and everything after it — is
	// refused with ErrStopped instead of executing against a dead device
	// and smearing half-ordered state across NVRAM. In deterministic mode
	// the latch flips at the same op ordinal regardless of shard count.
	dead atomic.Bool

	// Batch-scope bookkeeping, touched only between Wait barriers or
	// under stickyMu.
	coalesced    int64
	rebuildSteps int64
	rebuildRows  int64
	rebuildsDone int64
	stickyMu     sync.Mutex
	sticky       error // first barrier-flush failure, surfaced at Quiesce
}

// withDefaults fills zero fields and validates the geometry.
func (c Config) withDefaults() (Config, error) {
	if c.SSD == nil || c.Backend == nil || c.Codec == nil {
		return c, fmt.Errorf("shard: SSD, Backend and Codec are required")
	}
	if c.Ways == 0 {
		c.Ways = 256
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Shards < 1 || c.Shards > Lanes || Lanes%c.Shards != 0 {
		return c, fmt.Errorf("shard: shard count %d must divide the %d lanes", c.Shards, Lanes)
	}
	if c.CachePages%Lanes != 0 {
		return c, fmt.Errorf("shard: cache of %d pages not divisible into %d lanes", c.CachePages, Lanes)
	}
	if c.CachePages/Lanes < int64(c.Ways) {
		return c, fmt.Errorf("shard: lane cache of %d pages below one %d-way set", c.CachePages/Lanes, c.Ways)
	}
	if c.MetaPages < 2 {
		return c, fmt.Errorf("shard: metadata partition needs >=2 pages")
	}
	if c.RebuildRowsPerBatch == 0 {
		c.RebuildRowsPerBatch = 8
	}
	return c, nil
}

// laneConfig assembles lane i's core configuration around the shared
// devices and log.
func (c Config) laneConfig(i int, ssd blockdev.Device, backend cache.Backend,
	log *metalog.Log) core.Config {
	lanePages := c.CachePages / Lanes
	cc := core.Config{
		SSD:             ssd,
		Backend:         backend,
		CachePages:      lanePages,
		Ways:            c.Ways,
		MetaStart:       c.MetaStart,
		MetaPages:       c.MetaPages,
		Codec:           c.Codec(i),
		StagingBytes:    c.StagingBytes,
		HighWater:       c.HighWater,
		LowWater:        c.LowWater,
		MetaGCThreshold: c.MetaGCThreshold,
		SharedLog:       log,
		DataStart:       c.MetaStart + c.MetaPages + int64(i)*lanePages,
		Lane:            uint8(i),
		BatchMeta:       true,
		// The breaker votes per lane but the SSD fails as a whole; only
		// fail-stop failover (which every lane observes identically) is
		// meaningful here, so the per-lane breakers are disabled.
		BreakerWindow: -1,
		// The plane paces the member rebuild at its batch barriers; the
		// per-lane pumps would race each other on the shared array.
		RebuildRateMax: -1,
	}
	if !c.Goroutines {
		cc.Tracer = c.Tracer
	}
	return cc
}

// New builds a plane with fresh lanes.
func New(cfg Config) (*Plane, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	p := newShell(cfg)
	p.log = metalog.New(p.ssd, cfg.MetaStart, cfg.MetaPages, cfg.MetaGCThreshold)
	if !cfg.Goroutines {
		p.log.SetTracer(cfg.Tracer)
	}
	for i := 0; i < Lanes; i++ {
		k, err := core.New(cfg.laneConfig(i, p.ssd, p.backend, p.log))
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("shard: lane %d: %w", i, err)
		}
		p.lanes[i] = k
	}
	return p, nil
}

// newShell builds everything but the log and lanes (shared with
// Restore). cfg has been validated.
func newShell(cfg Config) *Plane {
	p := &Plane{
		cfg:         cfg,
		ssd:         newLockedDevice(cfg.SSD),
		backend:     newLockedBackend(cfg.Backend),
		stripePages: cfg.Backend.StripePages(),
		lanePages:   cfg.CachePages / Lanes,
		dataStart:   cfg.MetaStart + cfg.MetaPages,
	}
	if cfg.Goroutines {
		p.sched = sched.NewPool(cfg.Shards)
	} else {
		p.sched = sched.NewDeterministic(cfg.Shards)
	}
	return p
}

// Close releases the scheduler's workers. The plane is unusable after.
func (p *Plane) Close() { p.sched.Close() }

// LaneOf routes a backing LBA to its lane: hash of the stripe index, so
// a stripe's pages — and everything the engine does for them — belong to
// exactly one lane. The mix constant differs from the frame's set hash
// on purpose: reusing it would correlate lane and set residues and leave
// most of each lane's sets unreachable.
func (p *Plane) LaneOf(lba int64) int {
	h := uint64(lba/p.stripePages) * 0xBF58476D1CE4E5B9
	h ^= h >> 29
	return int(h % Lanes)
}

// ShardOf maps a lane to the worker that owns it.
func (p *Plane) ShardOf(lane int) int { return lane % p.sched.Shards() }

// Lane exposes lane i's engine (tests, the checker).
func (p *Plane) Lane(i int) *core.KDD { return p.lanes[i] }

// Log exposes the shared metadata log.
func (p *Plane) Log() *metalog.Log { return p.log }

// Deterministic reports whether the plane single-steps.
func (p *Plane) Deterministic() bool { return p.sched.Deterministic() }

// CoalescedWrites returns the number of writes dropped as superseded.
func (p *Plane) CoalescedWrites() int64 { return p.coalesced }

// note records the first asynchronous failure for surfacing at Quiesce.
func (p *Plane) note(err error) {
	if err == nil {
		return
	}
	p.stickyMu.Lock()
	if p.sticky == nil {
		p.sticky = err
	}
	p.stickyMu.Unlock()
}

// coalesceSkips marks writes superseded later in ops: same LBA written
// again with no read of it in between. One backward scan suffices — only
// same-LBA operations interact, and an LBA always lands on one lane, so
// the result is identical whether computed globally or per shard queue.
// Ops the admission gate already rejected (drop) do not participate: a
// shed write never executes, so it must not supersede an earlier one.
func (p *Plane) coalesceSkips(ops []Op, drop []bool) []bool {
	if !p.cfg.Coalesce {
		return nil
	}
	skip := make([]bool, len(ops))
	willWrite := make(map[int64]bool)
	for i := len(ops) - 1; i >= 0; i-- {
		if drop != nil && drop[i] {
			continue
		}
		switch ops[i].Kind {
		case OpWrite:
			if willWrite[ops[i].LBA] {
				skip[i] = true
			} else {
				willWrite[ops[i].LBA] = true
			}
		case OpRead:
			delete(willWrite, ops[i].LBA)
		}
	}
	return skip
}

// gate runs the admission boundary over a batch in submission order on
// the submitting goroutine: deadline enforcement first, then the QoS
// controller's verdict. It fills res for rejected ops and returns the
// drop mask plus the bypass mask (nil when nothing was rejected or
// bypassed). Running strictly before any scheduling is what keeps the
// controller single-threaded and the verdict sequence independent of
// shard count.
func (p *Plane) gate(t sim.Time, ops []Op, res []Result) (drop, bypass []bool) {
	ctl := p.cfg.QoS
	for i := range ops {
		at := ops[i].At
		if at == 0 {
			at = t
		}
		if ops[i].Deadline > 0 && at > ops[i].Deadline {
			if ctl != nil {
				ctl.NoteDeadline(ops[i].Tenant)
			}
			if drop == nil {
				drop = make([]bool, len(ops))
			}
			drop[i] = true
			res[i] = Result{Done: at, Err: fmt.Errorf(
				"shard: tenant %d lba %d: %w", ops[i].Tenant, ops[i].LBA, qos.ErrDeadlineExceeded)}
			continue
		}
		if ctl == nil {
			continue
		}
		d := ctl.Admit(at, ops[i].Tenant)
		switch d.Verdict {
		case qos.VerdictAdmit:
		case qos.VerdictBypass:
			if bypass == nil {
				bypass = make([]bool, len(ops))
			}
			bypass[i] = true
		case qos.VerdictThrottle:
			if !p.cfg.Goroutines {
				p.cfg.Tracer.Mark(at, obs.PhaseQoSThrottle, ops[i].LBA)
			}
			if drop == nil {
				drop = make([]bool, len(ops))
			}
			drop[i] = true
			res[i] = Result{Done: at, Err: ctl.Err(ops[i].Tenant, d)}
		case qos.VerdictShed:
			if !p.cfg.Goroutines {
				p.cfg.Tracer.Mark(at, obs.PhaseQoSShed, ops[i].LBA)
			}
			if drop == nil {
				drop = make([]bool, len(ops))
			}
			drop[i] = true
			res[i] = Result{Done: at, Err: ctl.Err(ops[i].Tenant, d)}
		}
	}
	return drop, bypass
}

// exec runs one operation on its lane under the stripe lock. A plane
// that has fail-stopped refuses the op untouched.
func (p *Plane) exec(t sim.Time, op Op, bypass bool) Result {
	if p.dead.Load() {
		return Result{Done: t, Err: ErrStopped}
	}
	if op.At != 0 {
		t = op.At
	}
	lane := p.LaneOf(op.LBA)
	mu := &p.stripeMu[uint64(op.LBA/p.stripePages)%stripeLockSlots]
	mu.Lock()
	defer mu.Unlock()
	var r Result
	switch {
	case op.Kind == OpRead && bypass:
		r.Done, r.Err = p.lanes[lane].ReadNoAdmit(t, op.LBA, op.Buf)
		r.Bypassed = true
	case op.Kind == OpRead:
		r.Done, r.Err = p.lanes[lane].Read(t, op.LBA, op.Buf)
	case bypass:
		r.Done, r.Err = p.lanes[lane].WriteNoAdmit(t, op.LBA, op.Buf)
		r.Bypassed = true
	default:
		r.Done, r.Err = p.lanes[lane].Write(t, op.LBA, op.Buf)
	}
	if fatalErr(r.Err) {
		p.dead.Store(true)
	}
	return r
}

// RunBatch dispatches a batch of operations across the shards and waits
// for the barrier: every op executed (or coalesced away), one metadata
// page-flush barrier per lane, one rebuild pacing step. Results are in
// input order. In deterministic mode ops run inline in input order
// regardless of shard count; in goroutine mode each shard executes its
// lanes' subsequence in order, concurrently with the other shards.
func (p *Plane) RunBatch(t sim.Time, ops []Op) []Result {
	res := make([]Result, len(ops))
	drop, bypass := p.gate(t, ops, res)
	skip := p.coalesceSkips(ops, drop)
	for i := range ops {
		if drop != nil && drop[i] {
			continue
		}
		if skip != nil && skip[i] {
			res[i] = Result{Done: t, Coalesced: true}
			p.coalesced++
			continue
		}
		i := i
		byp := bypass != nil && bypass[i]
		p.sched.Submit(p.ShardOf(p.LaneOf(ops[i].LBA)), func() {
			res[i] = p.exec(t, ops[i], byp)
		})
	}
	// One tagged page-flush barrier per lane, in lane order (inline in
	// deterministic mode, per-worker FIFO in goroutine mode). A stopped
	// plane skips the barriers: the buffered entries are already at their
	// durability point in NVRAM, and the device is gone.
	for lane := 0; lane < Lanes; lane++ {
		lane := lane
		p.sched.Submit(p.ShardOf(lane), func() {
			if p.dead.Load() {
				return
			}
			if _, err := p.lanes[lane].FlushMetaBatch(t); err != nil {
				if fatalErr(err) {
					p.dead.Store(true)
				}
				p.note(fmt.Errorf("shard: lane %d meta barrier: %w", lane, err))
			}
		})
	}
	p.sched.Wait()
	p.pumpRebuild(t)
	return res
}

// Read serves one read through the batch machinery.
func (p *Plane) Read(t sim.Time, lba int64, buf []byte) (sim.Time, error) {
	r := p.RunBatch(t, []Op{{Kind: OpRead, LBA: lba, Buf: buf}})[0]
	return r.Done, r.Err
}

// Write serves one write through the batch machinery.
func (p *Plane) Write(t sim.Time, lba int64, buf []byte) (sim.Time, error) {
	r := p.RunBatch(t, []Op{{Kind: OpWrite, LBA: lba, Buf: buf}})[0]
	return r.Done, r.Err
}

// pumpRebuild reconstructs the next member-rebuild rows at the batch
// barrier. Runs with no workers in flight, so the array and the NVRAM
// checkpoint are touched single-threaded.
func (p *Plane) pumpRebuild(t sim.Time) {
	rows := p.cfg.RebuildRowsPerBatch
	if rows <= 0 || p.dead.Load() || !p.backend.RebuildActive() {
		return
	}
	_, n, complete, err := p.backend.RebuildStep(t, rows)
	if err != nil {
		p.note(fmt.Errorf("shard: rebuild step: %w", err))
		return
	}
	p.rebuildSteps++
	p.rebuildRows += int64(n)
	if complete {
		p.rebuildsDone++
	}
	p.checkpointRebuild()
}

// checkpointRebuild mirrors the rebuild watermark into the shared log's
// NVRAM counters (the plane-level twin of the lane pump's checkpoint).
func (p *Plane) checkpointRebuild() {
	ctr := p.log.Counters()
	disk, row, active := p.backend.RebuildTarget()
	ctr.RebuildActive = active
	ctr.RebuildDisk = int32(disk)
	ctr.RebuildRow = row
}

// Quiesce drains the plane: worker barrier, every lane's stale parities
// flushed, the metadata buffer fully committed (final partial page
// included). Returns the latest completion time and the first error —
// including any failure noted asynchronously at a batch barrier.
func (p *Plane) Quiesce(t sim.Time) (sim.Time, error) {
	p.sched.Wait()
	if p.dead.Load() {
		return t, ErrStopped
	}
	done := t
	for lane := 0; lane < Lanes; lane++ {
		d, err := p.lanes[lane].Flush(t)
		if err != nil {
			return done, fmt.Errorf("shard: lane %d flush: %w", lane, err)
		}
		done = sim.MaxTime(done, d)
	}
	d, err := p.log.FlushBatchAll(t, 0)
	if err != nil {
		return done, fmt.Errorf("shard: final meta barrier: %w", err)
	}
	done = sim.MaxTime(done, d)
	p.stickyMu.Lock()
	err = p.sticky
	p.sticky = nil
	p.stickyMu.Unlock()
	return done, err
}

// StateDigest folds the lanes' digests in lane order: an I/O-free
// fingerprint of the whole plane, independent of shard count. Call at a
// barrier (e.g. after Quiesce) — lane digests read live engine state.
func (p *Plane) StateDigest() uint64 {
	h := fnv.New64a()
	var w [8]byte
	for _, k := range p.lanes {
		d := k.StateDigest()
		for b := 0; b < 8; b++ {
			w[b] = byte(d >> (8 * b))
		}
		h.Write(w[:])
	}
	return h.Sum64()
}

// CheckInvariants validates every lane. Call at a barrier.
func (p *Plane) CheckInvariants() error {
	for i, k := range p.lanes {
		if err := k.CheckInvariants(); err != nil {
			return fmt.Errorf("shard: lane %d: %w", i, err)
		}
	}
	return nil
}

// Stats sums the lanes' counters, the shared log's traffic (counted
// once — lanes skip it), and the plane-level rebuild pump. Call at a
// barrier.
func (p *Plane) Stats() *stats.CacheStats {
	var agg stats.CacheStats
	for _, k := range p.lanes {
		agg.Add(k.Stats())
	}
	ls := p.log.Stats()
	gc := ls.GCPageEquivalent()
	agg.MetaWrites = ls.PagesWritten - gc
	agg.MetaGCWrites = gc
	agg.RebuildSteps += p.rebuildSteps
	agg.RebuildRows += p.rebuildRows
	agg.RebuildsDone += p.rebuildsDone
	return &agg
}
