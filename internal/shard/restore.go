package shard

import (
	"fmt"

	"kddcache/internal/core"
	"kddcache/internal/metalog"
	"kddcache/internal/nvram"
	"kddcache/internal/sim"
)

// Restore reconstructs a plane after a simulated power failure. The
// shared metadata log is recovered ONCE — its interleaving-tolerant
// replay already orders every shard's tagged pages — and the replay
// stream is then demultiplexed to the lanes by DAZ page range, each lane
// rebuilding from exactly the entries addressing its SSD region. ctr and
// buffered come from the crashed plane's log NVRAM; stagings[i] is lane
// i's NVRAM staging buffer (nil entries mean an empty buffer). The
// member-rebuild window is re-opened once, at plane level.
//
// Restore is idempotent: rebuilding twice from one NVRAM snapshot yields
// equal StateDigests (the shard checker proves this per crash site).
func Restore(cfg Config, t sim.Time, ctr *nvram.Counters,
	buffered []metalog.Entry, stagings [Lanes]*nvram.Staging) (*Plane, sim.Time, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, t, err
	}
	p := newShell(cfg)
	p.log = metalog.Restore(p.ssd, cfg.MetaStart, cfg.MetaPages,
		cfg.MetaGCThreshold, ctr, buffered)
	if !cfg.Goroutines {
		p.log.SetTracer(cfg.Tracer)
	}
	replay, done, err := p.log.Recover(t)
	if err != nil {
		p.Close()
		return nil, t, err
	}
	laneReplay, err := p.demux(replay)
	if err != nil {
		p.Close()
		return nil, t, err
	}
	for i := 0; i < Lanes; i++ {
		k, err := core.RestoreWithLog(cfg.laneConfig(i, p.ssd, p.backend, p.log),
			p.log, laneReplay[i], stagings[i])
		if err != nil {
			p.Close()
			return nil, t, fmt.Errorf("shard: restoring lane %d: %w", i, err)
		}
		p.lanes[i] = k
	}
	// One array, one checkpoint: the rebuild window re-opens at plane
	// level, not per lane (eight resumes would be idempotent but the
	// checkpoint rewrite must happen exactly once per restore).
	if ctr.RebuildActive {
		if err := p.backend.ResumeRebuild(int(ctr.RebuildDisk), ctr.RebuildRow); err != nil {
			p.Close()
			return nil, t, fmt.Errorf("shard: resuming member rebuild: %w", err)
		}
		p.checkpointRebuild()
	}
	return p, done, nil
}

// demux splits a recovered replay stream by lane: every entry's DAZ page
// falls in exactly one lane's region of the cache data partition.
func (p *Plane) demux(replay []metalog.Entry) ([Lanes][]metalog.Entry, error) {
	var out [Lanes][]metalog.Entry
	for _, e := range replay {
		lane := (int64(e.DazPage) - p.dataStart) / p.lanePages
		if int64(e.DazPage) < p.dataStart || lane < 0 || lane >= Lanes {
			return out, fmt.Errorf("shard: recovered entry for cache page %d outside every lane", e.DazPage)
		}
		out[lane] = append(out[lane], e)
	}
	return out, nil
}
