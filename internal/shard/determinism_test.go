package shard_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"kddcache/internal/blockdev"
	"kddcache/internal/delta"
	"kddcache/internal/obs"
	"kddcache/internal/raid"
	"kddcache/internal/shard"
	"kddcache/internal/sim"
)

// This file is the cross-shard determinism battery (the plane's central
// contract): in deterministic mode, one seed produces BYTE-identical
// output — the full operation log, the span trace, the stats table, and
// the state fingerprint — at every shard count, and independently of the
// test binary's -parallel level (the subtests all run t.Parallel, so
// `go test -parallel N` interleaves them). CI runs this under -race at
// -parallel 1, 4 and 16.

// detRun executes the canonical seeded workload at the given shard count
// and returns every observable byte: a log line per op result, the JSONL
// trace fingerprint, the quiesced stats table, and the plane digest.
func detRun(t *testing.T, shards int, coalesce bool) []byte {
	t.Helper()
	var members []blockdev.Device
	for i := 0; i < 5; i++ {
		members = append(members, blockdev.NewNullDataDevice(fmt.Sprintf("d%d", i), prigDiskPages))
	}
	arr, err := raid.New(raid.Config{Level: raid.Level5, ChunkPages: prigChunk}, members)
	if err != nil {
		t.Fatal(err)
	}
	ssd := blockdev.NewNullDataDevice("ssd", prigMetaPages+prigCachePages+64)
	traceDig := obs.NewDigest()
	p, err := shard.New(shard.Config{
		SSD:        ssd,
		Backend:    arr,
		CachePages: prigCachePages,
		Ways:       prigWays,
		MetaStart:  0,
		MetaPages:  prigMetaPages,
		Codec:      func(int) delta.Codec { return delta.ZRLE{} },
		Shards:     shards,
		Coalesce:   coalesce,
		Tracer:     obs.NewTracer(traceDig),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var out bytes.Buffer
	rng := sim.NewRNG(0x5EED)
	mut := delta.NewMutator(11, 0.25)
	pages := make(map[int64][]byte)
	for b := 0; b < 25; b++ {
		ops := make([]shard.Op, 0, 32)
		for i := 0; i < 32; i++ {
			lba := int64(rng.Intn(prigFootprint))
			if rng.Float64() < 0.6 {
				page := make([]byte, blockdev.PageSize)
				if prev, ok := pages[lba]; ok {
					copy(page, prev)
					mut.Mutate(page)
				} else {
					mut.FillRandom(page)
				}
				pages[lba] = page
				ops = append(ops, shard.Op{Kind: shard.OpWrite, LBA: lba, Buf: page})
			} else {
				ops = append(ops, shard.Op{Kind: shard.OpRead, LBA: lba, Buf: make([]byte, blockdev.PageSize)})
			}
		}
		for i, r := range p.RunBatch(0, ops) {
			fmt.Fprintf(&out, "b%d op%d kind=%d lba=%d done=%d err=%v coalesced=%v\n",
				b, i, ops[i].Kind, ops[i].LBA, r.Done, r.Err, r.Coalesced)
		}
	}
	done, err := p.Quiesce(0)
	if err != nil {
		t.Fatalf("quiesce: %v", err)
	}
	fmt.Fprintf(&out, "quiesce done=%d\n", done)
	fmt.Fprintf(&out, "digest=%#x\n", p.StateDigest())
	fmt.Fprintf(&out, "trace spans=%d fp=%#x\n", traceDig.Spans(), traceDig.Sum64())
	fmt.Fprintf(&out, "coalesced=%d\n", p.CoalescedWrites())
	out.WriteString(p.Stats().String())
	return out.Bytes()
}

var (
	detBaselineOnce sync.Once
	detBaseline     map[bool][]byte
)

// baseline computes the shards=1 reference output once per -parallel
// level's worth of subtests (coalescing on and off).
func baseline(t *testing.T) map[bool][]byte {
	detBaselineOnce.Do(func() {
		detBaseline = map[bool][]byte{
			false: detRun(t, 1, false),
			true:  detRun(t, 1, true),
		}
	})
	return detBaseline
}

// TestDeterministicByteIdentical proves the contract at shard counts
// 2, 4 and 8, with coalescing both off and on.
func TestDeterministicByteIdentical(t *testing.T) {
	t.Parallel()
	base := baseline(t)
	for _, shards := range []int{2, 4, 8} {
		for _, coalesce := range []bool{false, true} {
			shards, coalesce := shards, coalesce
			t.Run(fmt.Sprintf("shards=%d/coalesce=%v", shards, coalesce), func(t *testing.T) {
				t.Parallel()
				got := detRun(t, shards, coalesce)
				want := base[coalesce]
				if !bytes.Equal(got, want) {
					t.Fatalf("output diverged from shards=1 (%d vs %d bytes)\nfirst divergence: %s",
						len(got), len(want), firstDiff(got, want))
				}
			})
		}
	}
}

// TestDeterministicRepeatable proves a re-run of the same configuration
// is byte-identical to itself (no hidden global state).
func TestDeterministicRepeatable(t *testing.T) {
	t.Parallel()
	a := detRun(t, 4, true)
	b := detRun(t, 4, true)
	if !bytes.Equal(a, b) {
		t.Fatalf("same-config reruns diverged: %s", firstDiff(a, b))
	}
}

// firstDiff renders the first differing line of two outputs.
func firstDiff(a, b []byte) string {
	la := bytes.Split(a, []byte("\n"))
	lb := bytes.Split(b, []byte("\n"))
	n := len(la)
	if len(lb) < n {
		n = len(lb)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(la[i], lb[i]) {
			return fmt.Sprintf("line %d: %q vs %q", i+1, la[i], lb[i])
		}
	}
	return fmt.Sprintf("line counts differ: %d vs %d", len(la), len(lb))
}
