package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGZeroSeedRemapped(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck stream")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %f", f)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(9)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) only produced %d distinct values", len(seen))
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGUint64nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Uint64n(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(123)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %f, want ~1", variance)
	}
}

func TestGaussianClipping(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		v := r.Gaussian(0.25, 0.25, 0.02, 1.0)
		if v < 0.02 || v > 1.0 {
			t.Fatalf("Gaussian escaped clip range: %f", v)
		}
	}
}

func TestGaussianMeanApprox(t *testing.T) {
	r := NewRNG(77)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Gaussian(0.5, 0.125, 0.02, 1.0)
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("clipped Gaussian mean = %f, want ~0.5", mean)
	}
}

func TestSplitDecorrelated(t *testing.T) {
	parent := NewRNG(42)
	child := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("parent and child streams collided %d times", same)
	}
}

func TestZipfRange(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		z := NewZipf(r, 1.0001, 1000)
		for i := 0; i < 100; i++ {
			v := z.Next()
			if v >= 1000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(99)
	z := NewZipf(r, 1.0001, 100000)
	const n = 200000
	counts := make(map[uint64]int)
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	// Rank 0 must be far more popular than a mid-tail rank, and the head
	// (top 1% of ranks) must hold a dominant share of accesses for this
	// close-to-1 exponent.
	if counts[0] < 50*counts[50000]+1 {
		t.Fatalf("rank 0 count %d not dominant vs rank 50000 count %d",
			counts[0], counts[50000])
	}
	head := 0
	for k, v := range counts {
		if k < 1000 {
			head += v
		}
	}
	if float64(head)/n < 0.3 {
		t.Fatalf("head share = %f, expected strong skew", float64(head)/n)
	}
}

func TestZipfPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewZipf(NewRNG(1), 0, 100)
}
