// Package sim provides a deterministic virtual-time engine used by all
// timing experiments in this repository.
//
// The engine has two cooperating parts:
//
//   - a Clock with an event heap, for things that happen at a point in
//     virtual time (background cleaner wake-ups, idle detection);
//   - Stations, which model devices as multi-server FIFO queues using
//     "next free time" bookkeeping, the standard technique for
//     trace-driven storage simulation.
//
// All times are expressed as Time, a nanosecond count since simulation
// start. Nothing in this package reads the wall clock, so simulations are
// exactly reproducible.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Common durations, also in nanoseconds (Time doubles as a duration).
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis reports t as floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Event is a callback scheduled on a Clock.
type Event struct {
	when Time
	seq  uint64 // tie-break so equal-time events fire in schedule order
	fn   func(now Time)

	index int // heap index; -1 once popped or cancelled
}

// Cancelled reports whether the event was cancelled or has already fired.
func (e *Event) Cancelled() bool { return e.index < 0 }

// When returns the virtual time the event is scheduled for.
func (e *Event) When() Time { return e.when }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Clock is a virtual clock with an event queue. The zero value is ready to
// use and starts at time 0.
type Clock struct {
	now    Time
	seq    uint64
	events eventHeap
}

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward to t, firing any events scheduled at or
// before t in time order. Advance never moves the clock backwards; if t is
// in the past it only fires events due at or before the current time.
func (c *Clock) Advance(t Time) {
	for len(c.events) > 0 && c.events[0].when <= t {
		e := heap.Pop(&c.events).(*Event)
		if e.when > c.now {
			c.now = e.when
		}
		e.fn(c.now)
	}
	if t > c.now {
		c.now = t
	}
}

// Drain fires every remaining event in time order and leaves the clock at
// the time of the last event.
func (c *Clock) Drain() {
	for len(c.events) > 0 {
		e := heap.Pop(&c.events).(*Event)
		if e.when > c.now {
			c.now = e.when
		}
		e.fn(c.now)
	}
}

// Pending reports the number of scheduled events.
func (c *Clock) Pending() int { return len(c.events) }

// NextEvent returns the time of the earliest scheduled event and true, or
// zero and false if none are scheduled.
func (c *Clock) NextEvent() (Time, bool) {
	if len(c.events) == 0 {
		return 0, false
	}
	return c.events[0].when, true
}

// At schedules fn to run at absolute time t. Times in the past fire on the
// next Advance. The returned Event may be passed to Cancel.
func (c *Clock) At(t Time, fn func(now Time)) *Event {
	e := &Event{when: t, seq: c.seq, fn: fn}
	c.seq++
	heap.Push(&c.events, e)
	return e
}

// After schedules fn to run d after the current time.
func (c *Clock) After(d Time, fn func(now Time)) *Event {
	return c.At(c.now+d, fn)
}

// Cancel removes a scheduled event. Cancelling an event that already fired
// is a no-op.
func (c *Clock) Cancel(e *Event) {
	if e == nil || e.index < 0 {
		return
	}
	heap.Remove(&c.events, e.index)
	e.index = -1
}
