package sim

// Station models a device (or a channel inside a device) as a set of
// identical servers fed by a single FIFO queue, using next-free-time
// bookkeeping: a job arriving at time t starts on the earliest-free server
// no sooner than t and completes start+service later.
//
// This is the classic analytic queueing shortcut for trace-driven storage
// simulation: the full request stream is processed in arrival order, and
// each layer returns the completion time for a request given its arrival
// time. Background work (cleaner I/O) occupies servers the same way, so
// foreground requests naturally queue behind it.
type Station struct {
	name string
	free []Time // next free time per server

	// Accumulated statistics.
	jobs     int64
	busy     Time // total service time issued
	lastDone Time // completion time of the latest job
}

// NewStation returns a station with the given number of parallel servers.
// servers must be >= 1.
func NewStation(name string, servers int) *Station {
	if servers < 1 {
		panic("sim: station needs at least one server")
	}
	return &Station{name: name, free: make([]Time, servers)}
}

// Name returns the station's name.
func (s *Station) Name() string { return s.name }

// Servers returns the number of parallel servers.
func (s *Station) Servers() int { return len(s.free) }

// Submit enqueues a job arriving at time t with the given service time and
// returns its completion time.
func (s *Station) Submit(t, service Time) Time {
	// Pick the server that frees up earliest.
	best := 0
	for i := 1; i < len(s.free); i++ {
		if s.free[i] < s.free[best] {
			best = i
		}
	}
	start := t
	if s.free[best] > start {
		start = s.free[best]
	}
	done := start + service
	s.free[best] = done
	s.jobs++
	s.busy += service
	if done > s.lastDone {
		s.lastDone = done
	}
	return done
}

// SubmitAt is Submit for a specific server index; used when a device maps
// addresses to fixed internal channels.
func (s *Station) SubmitAt(server int, t, service Time) Time {
	start := t
	if s.free[server] > start {
		start = s.free[server]
	}
	done := start + service
	s.free[server] = done
	s.jobs++
	s.busy += service
	if done > s.lastDone {
		s.lastDone = done
	}
	return done
}

// FreeAt returns the earliest time any server is free.
func (s *Station) FreeAt() Time {
	best := s.free[0]
	for _, f := range s.free[1:] {
		if f < best {
			best = f
		}
	}
	return best
}

// LastCompletion returns the completion time of the latest-finishing job
// submitted so far.
func (s *Station) LastCompletion() Time { return s.lastDone }

// Jobs returns the number of jobs submitted.
func (s *Station) Jobs() int64 { return s.jobs }

// BusyTime returns the total service time issued across all servers.
func (s *Station) BusyTime() Time { return s.busy }

// Utilization returns busy time divided by (servers × horizon).
func (s *Station) Utilization(horizon Time) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(s.busy) / (float64(horizon) * float64(len(s.free)))
}

// Reset clears queues and statistics.
func (s *Station) Reset() {
	for i := range s.free {
		s.free[i] = 0
	}
	s.jobs, s.busy, s.lastDone = 0, 0, 0
}

// MaxTime returns the later of a and b.
func MaxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// MinTime returns the earlier of a and b.
func MinTime(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}
