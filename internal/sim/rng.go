package sim

import "math"

// RNG is a small, fast, seedable random number generator (xorshift64*).
// Every stochastic component in the simulator owns its own RNG so that
// experiments are reproducible and components do not perturb each other's
// streams. math/rand would work too, but a local implementation keeps the
// exact stream stable across Go releases.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed (0 is remapped to a fixed
// non-zero constant, since xorshift cannot hold state 0).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a uniform int in [0, n). n must be > 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform uint64 in [0, n). n must be > 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Box–Muller).
func (r *RNG) NormFloat64() float64 {
	for {
		u1 := r.Float64()
		if u1 == 0 {
			continue
		}
		u2 := r.Float64()
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// Gaussian returns a normal variate with the given mean and standard
// deviation, clipped to [lo, hi].
func (r *RNG) Gaussian(mean, stddev, lo, hi float64) float64 {
	v := mean + stddev*r.NormFloat64()
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return v
}

// Split derives an independent generator from this one. The child stream is
// decorrelated from the parent by mixing in a fixed odd constant.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64()*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9)
}

// Zipf draws from a Zipf distribution over [0, n) with exponent alpha > 0
// using rejection-inversion (Hörmann/Derflinger), suitable for the large n
// used by the FIO-style generator.
type Zipf struct {
	rng              *RNG
	n                float64
	alpha            float64
	oneMinusQ        float64
	oneMinusQInv     float64
	hIntegralX1      float64
	hIntegralNum     float64
	s                float64
	hIntegralXHalfN  float64
	uniformUpperLimt float64
}

// NewZipf returns a Zipf sampler over [0, n) with exponent alpha.
// alpha must be > 0 and may be arbitrarily close to 1 (the FIO benchmark in
// the paper uses 1.0001).
func NewZipf(rng *RNG, alpha float64, n uint64) *Zipf {
	if alpha <= 0 || n == 0 {
		panic("sim: invalid Zipf parameters")
	}
	z := &Zipf{rng: rng, n: float64(n), alpha: alpha}
	z.oneMinusQ = 1 - alpha
	z.oneMinusQInv = 1 / z.oneMinusQ
	z.hIntegralX1 = z.hIntegral(1.5) - 1
	z.hIntegralNum = z.hIntegral(z.n + 0.5)
	z.s = 2 - z.hIntegralInv(z.hIntegral(2.5)-z.h(2))
	z.hIntegralXHalfN = z.hIntegral(0.5)
	z.uniformUpperLimt = z.hIntegralNum - z.hIntegralXHalfN
	return z
}

func (z *Zipf) h(x float64) float64 { return math.Exp(-z.alpha * math.Log(x)) }

func (z *Zipf) hIntegral(x float64) float64 {
	logX := math.Log(x)
	return helper2((1-z.alpha)*logX) * logX
}

func (z *Zipf) hIntegralInv(x float64) float64 {
	t := x * z.oneMinusQ
	if t < -1 {
		t = -1
	}
	return math.Exp(helper1(t) * x)
}

// helper1 computes log1p(x)/x with a series near zero.
func helper1(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Log1p(x) / x
	}
	return 1 - x*(0.5-x*(1.0/3.0-0.25*x))
}

// helper2 computes expm1(x)/x with a series near zero.
func helper2(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Expm1(x) / x
	}
	return 1 + x*0.5*(1+x*(1.0/3.0)*(1+0.25*x))
}

// Next draws the next Zipf variate in [0, n), 0 being the most popular rank.
func (z *Zipf) Next() uint64 {
	for {
		u := z.hIntegralXHalfN + z.rng.Float64()*z.uniformUpperLimt
		x := z.hIntegralInv(u)
		k := math.Floor(x + 0.5)
		if k < 1 {
			k = 1
		} else if k > z.n {
			k = z.n
		}
		if k-x <= z.s || u >= z.hIntegral(k+0.5)-z.h(k) {
			return uint64(k) - 1
		}
	}
}
