package sim

import (
	"testing"
)

func TestClockAdvanceFiresInOrder(t *testing.T) {
	var c Clock
	var got []int
	c.At(30, func(Time) { got = append(got, 3) })
	c.At(10, func(Time) { got = append(got, 1) })
	c.At(20, func(Time) { got = append(got, 2) })
	c.Advance(25)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got %v, want [1 2]", got)
	}
	if c.Now() != 25 {
		t.Fatalf("Now = %d, want 25", c.Now())
	}
	c.Advance(100)
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("got %v, want [1 2 3]", got)
	}
}

func TestClockEqualTimeFIFO(t *testing.T) {
	var c Clock
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		c.At(5, func(Time) { got = append(got, i) })
	}
	c.Advance(5)
	for i, v := range got {
		if v != i {
			t.Fatalf("equal-time events fired out of order: %v", got)
		}
	}
}

func TestClockEventTimeSetsNow(t *testing.T) {
	var c Clock
	var at Time
	c.At(42, func(now Time) { at = now })
	c.Advance(100)
	if at != 42 {
		t.Fatalf("event fired at %d, want 42", at)
	}
}

func TestClockCancel(t *testing.T) {
	var c Clock
	fired := false
	e := c.At(10, func(Time) { fired = true })
	c.Cancel(e)
	c.Advance(20)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Fatal("event should report cancelled")
	}
	c.Cancel(e) // double cancel is a no-op
	c.Cancel(nil)
}

func TestClockAfterAndDrain(t *testing.T) {
	var c Clock
	c.Advance(100)
	var times []Time
	c.After(50, func(now Time) { times = append(times, now) })
	c.After(10, func(now Time) { times = append(times, now) })
	c.Drain()
	if len(times) != 2 || times[0] != 110 || times[1] != 150 {
		t.Fatalf("times = %v, want [110 150]", times)
	}
	if c.Now() != 150 {
		t.Fatalf("Now = %d, want 150", c.Now())
	}
}

func TestClockNestedScheduling(t *testing.T) {
	var c Clock
	var got []Time
	c.At(10, func(now Time) {
		got = append(got, now)
		c.After(5, func(now Time) { got = append(got, now) })
	})
	c.Advance(20)
	if len(got) != 2 || got[0] != 10 || got[1] != 15 {
		t.Fatalf("got %v, want [10 15]", got)
	}
}

func TestClockNextEventAndPending(t *testing.T) {
	var c Clock
	if _, ok := c.NextEvent(); ok {
		t.Fatal("empty clock reported a next event")
	}
	c.At(7, func(Time) {})
	c.At(3, func(Time) {})
	if n, ok := c.NextEvent(); !ok || n != 3 {
		t.Fatalf("NextEvent = %d,%v want 3,true", n, ok)
	}
	if c.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", c.Pending())
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ns"},
		{2 * Microsecond, "2.000µs"},
		{3 * Millisecond, "3.000ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestStationFIFOQueueing(t *testing.T) {
	s := NewStation("disk", 1)
	d1 := s.Submit(0, 100)
	d2 := s.Submit(10, 100) // arrives while busy; queues
	d3 := s.Submit(500, 100)
	if d1 != 100 || d2 != 200 || d3 != 600 {
		t.Fatalf("completions = %d,%d,%d want 100,200,600", d1, d2, d3)
	}
	if s.Jobs() != 3 || s.BusyTime() != 300 {
		t.Fatalf("jobs=%d busy=%d", s.Jobs(), s.BusyTime())
	}
}

func TestStationParallelServers(t *testing.T) {
	s := NewStation("ssd", 2)
	d1 := s.Submit(0, 100)
	d2 := s.Submit(0, 100) // second server
	d3 := s.Submit(0, 100) // queues behind the first to free
	if d1 != 100 || d2 != 100 || d3 != 200 {
		t.Fatalf("completions = %d,%d,%d want 100,100,200", d1, d2, d3)
	}
	// Server 0 took jobs 1 and 3 (free at 200); server 1 frees at 100.
	if got := s.FreeAt(); got != 100 {
		t.Fatalf("FreeAt = %d, want 100", got)
	}
	if got := s.LastCompletion(); got != 200 {
		t.Fatalf("LastCompletion = %d, want 200", got)
	}
}

func TestStationSubmitAt(t *testing.T) {
	s := NewStation("chan", 4)
	d1 := s.SubmitAt(2, 0, 50)
	d2 := s.SubmitAt(2, 0, 50)
	d3 := s.SubmitAt(3, 0, 50)
	if d1 != 50 || d2 != 100 || d3 != 50 {
		t.Fatalf("completions = %d,%d,%d want 50,100,50", d1, d2, d3)
	}
}

func TestStationUtilizationAndReset(t *testing.T) {
	s := NewStation("d", 2)
	s.Submit(0, 100)
	s.Submit(0, 100)
	if u := s.Utilization(100); u != 1.0 {
		t.Fatalf("utilization = %f, want 1.0", u)
	}
	s.Reset()
	if s.Jobs() != 0 || s.BusyTime() != 0 || s.FreeAt() != 0 {
		t.Fatal("reset did not clear state")
	}
	if u := s.Utilization(0); u != 0 {
		t.Fatalf("utilization at zero horizon = %f", u)
	}
}

func TestStationPanicsOnZeroServers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStation("bad", 0)
}

func TestMinMaxTime(t *testing.T) {
	if MaxTime(1, 2) != 2 || MaxTime(2, 1) != 2 {
		t.Fatal("MaxTime broken")
	}
	if MinTime(1, 2) != 1 || MinTime(2, 1) != 1 {
		t.Fatal("MinTime broken")
	}
}
