package model

import (
	"strings"
	"testing"
)

func page(b byte) []byte {
	p := make([]byte, 64)
	for i := range p {
		p[i] = b
	}
	return p
}

func TestAckedWriteMustSurvive(t *testing.T) {
	m := New()
	m.Write(7, page(1))
	if err := m.Check(7, page(1)); err != nil {
		t.Fatalf("acked content rejected: %v", err)
	}
	if err := m.Check(7, page(2)); err == nil {
		t.Fatal("divergent content accepted")
	}
	if err := m.Check(9, make([]byte, 64)); err != nil {
		t.Fatalf("zeros on unwritten page rejected: %v", err)
	}
	if err := m.Check(9, page(3)); err == nil {
		t.Fatal("non-zero content on unwritten page accepted")
	}
}

func TestCrashWriteResolvesOldOrNewAndPins(t *testing.T) {
	for _, pin := range []byte{1, 2} {
		m := New()
		m.Write(5, page(1))
		m.CrashWrite(5, page(2))
		if got := m.Unresolved(); len(got) != 1 || got[0] != 5 {
			t.Fatalf("unresolved = %v, want [5]", got)
		}
		if _, ok := m.Value(5); ok {
			t.Fatal("unresolved page reported a value")
		}
		if err := m.Check(5, page(pin)); err != nil {
			t.Fatalf("pin to version %d: %v", pin, err)
		}
		// Pinned: the other version is now a violation.
		other := byte(3 - pin)
		if err := m.Check(5, page(other)); err == nil {
			t.Fatalf("oscillation to version %d accepted after pin", other)
		}
		if v, ok := m.Value(5); !ok || v[0] != pin {
			t.Fatalf("Value after pin = %v,%v", v, ok)
		}
	}
}

func TestCrashWriteTornContentRejected(t *testing.T) {
	m := New()
	m.Write(5, page(1))
	m.CrashWrite(5, page(2))
	err := m.Check(5, page(9))
	if err == nil || !strings.Contains(err.Error(), "torn") {
		t.Fatalf("torn content: %v", err)
	}
}

func TestCrashWriteOnUnwrittenPageOldIsZeros(t *testing.T) {
	m := New()
	m.CrashWrite(4, page(2))
	if err := m.Check(4, make([]byte, 64)); err != nil {
		t.Fatalf("old (zeros) rejected: %v", err)
	}
}

func TestFootprintIncludesInflight(t *testing.T) {
	m := New()
	m.Write(3, page(1))
	m.CrashWrite(8, page(2))
	fp := m.Footprint()
	if len(fp) != 2 || fp[0] != 3 || fp[1] != 8 {
		t.Fatalf("footprint = %v, want [3 8]", fp)
	}
}
