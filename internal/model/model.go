// Package model is the deliberately dumb reference model of the stack's
// user-visible contract: a flat page store with crash semantics. It knows
// nothing about caches, deltas, parity, or logs — which is the point. The
// checker (internal/check) drives the real KDD+RAID stack and this model
// through the same operations and flags any observable divergence.
//
// Crash semantics:
//
//   - An acked write survives any crash: once Write returns, every later
//     read must see exactly those bytes until the next write.
//   - A write in flight when the power fails resolves to old-or-new: the
//     first post-recovery read may see either version, but whichever it
//     sees is pinned — later reads must agree (no oscillation, no third
//     value).
//   - Unwritten pages read as zeros.
package model

import (
	"bytes"
	"fmt"
	"sort"
)

// pending is a write that was in flight at a crash: until pinned by the
// first post-recovery read, the page may legally hold either version.
type pending struct {
	old, new []byte
}

// Model is the reference store.
type Model struct {
	pages    map[int64][]byte
	inflight map[int64]*pending
}

// New returns an empty model (every page zeros).
func New() *Model {
	return &Model{
		pages:    make(map[int64][]byte),
		inflight: make(map[int64]*pending),
	}
}

// isZero reports whether b is all zero bytes (the content of pages never
// written; the model carries no page-size assumption of its own).
func isZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// Write records an acked write: data must survive any future crash.
func (m *Model) Write(lba int64, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	m.pages[lba] = cp
	delete(m.inflight, lba)
}

// CrashWrite records a write that was in flight when the power failed:
// the page may now hold the previous acked content or newData, resolved
// at the first post-recovery read.
func (m *Model) CrashWrite(lba int64, newData []byte) {
	old := make([]byte, len(newData))
	copy(old, m.pages[lba]) // zeros when never written
	cp := make([]byte, len(newData))
	copy(cp, newData)
	m.inflight[lba] = &pending{old: old, new: cp}
}

// Check validates an observed read of lba against the model, pinning any
// unresolved in-flight write to the version observed. A non-nil error is
// a contract violation (lost acked write, torn content, oscillation).
func (m *Model) Check(lba int64, got []byte) error {
	if p, ok := m.inflight[lba]; ok {
		switch {
		case bytes.Equal(got, p.new):
			m.pages[lba] = p.new
		case bytes.Equal(got, p.old):
			m.pages[lba] = p.old
		default:
			return fmt.Errorf("model: page %d matches neither old nor new version of the in-flight write (torn)", lba)
		}
		delete(m.inflight, lba)
		return nil
	}
	if want, ok := m.pages[lba]; ok {
		if !bytes.Equal(got, want) {
			return fmt.Errorf("model: page %d diverges from acked content", lba)
		}
	} else if !isZero(got) {
		return fmt.Errorf("model: never-written page %d is not zeros", lba)
	}
	return nil
}

// Value returns the expected content of lba (nil means all zeros) and
// whether it is resolved (false while an in-flight write is unpinned).
func (m *Model) Value(lba int64) ([]byte, bool) {
	if _, ok := m.inflight[lba]; ok {
		return nil, false
	}
	return m.pages[lba], true
}

// Unresolved lists pages with unpinned in-flight writes, sorted.
func (m *Model) Unresolved() []int64 {
	out := make([]int64, 0, len(m.inflight))
	for lba := range m.inflight {
		out = append(out, lba)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Footprint lists every page ever written (acked or in flight), sorted.
func (m *Model) Footprint() []int64 {
	seen := make(map[int64]struct{}, len(m.pages)+len(m.inflight))
	for lba := range m.pages {
		seen[lba] = struct{}{}
	}
	for lba := range m.inflight {
		seen[lba] = struct{}{}
	}
	out := make([]int64, 0, len(seen))
	for lba := range seen {
		out = append(out, lba)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
