package nvram

import (
	"testing"

	"kddcache/internal/blockdev"
	"kddcache/internal/delta"
)

func sd(daz int64, n int) StagedDelta {
	return StagedDelta{DazPage: daz, RaidLBA: daz * 10, D: delta.Delta{Len: n}}
}

func TestStagingPutGetDrop(t *testing.T) {
	s := NewStaging(4 * blockdev.PageSize)
	s.Put(sd(1, 100))
	s.Put(sd(2, 200))
	if s.Len() != 2 || s.Bytes() != 300 {
		t.Fatalf("len=%d bytes=%d", s.Len(), s.Bytes())
	}
	d, ok := s.Get(1)
	if !ok || d.D.Len != 100 {
		t.Fatalf("Get(1) = %+v, %v", d, ok)
	}
	s.Drop(1)
	if _, ok := s.Get(1); ok {
		t.Fatal("dropped delta still present")
	}
	if s.Bytes() != 200 || s.Invalidated != 1 {
		t.Fatalf("bytes=%d invalidated=%d", s.Bytes(), s.Invalidated)
	}
	s.Drop(99) // no-op
}

func TestStagingCoalescing(t *testing.T) {
	s := NewStaging(4 * blockdev.PageSize)
	s.Put(sd(7, 500))
	s.Put(sd(7, 50)) // newer delta replaces older in place
	if s.Len() != 1 || s.Bytes() != 50 || s.Coalesced != 1 {
		t.Fatalf("len=%d bytes=%d coalesced=%d", s.Len(), s.Bytes(), s.Coalesced)
	}
	d, _ := s.Get(7)
	if d.D.Len != 50 {
		t.Fatal("old delta survived coalescing")
	}
}

func TestStagingFullAndPackPageFIFO(t *testing.T) {
	s := NewStaging(blockdev.PageSize)
	for i := int64(0); i < 5; i++ {
		s.Put(sd(i, 1000))
	}
	if !s.Full() {
		t.Fatal("buffer should be full")
	}
	packed := s.PackPage()
	// 4 deltas of 1000 bytes fit a 4096-byte page; FIFO order.
	if len(packed) != 4 {
		t.Fatalf("packed %d deltas, want 4", len(packed))
	}
	for i, d := range packed {
		if d.DazPage != int64(i) {
			t.Fatalf("packed out of FIFO order: %v", packed)
		}
	}
	if s.Len() != 1 || s.Bytes() != 1000 {
		t.Fatalf("leftover len=%d bytes=%d", s.Len(), s.Bytes())
	}
}

func TestStagingPackSkipsTombstones(t *testing.T) {
	s := NewStaging(blockdev.PageSize)
	s.Put(sd(1, 1000))
	s.Put(sd(2, 1000))
	s.Put(sd(3, 1000))
	s.Drop(2)
	packed := s.PackPage()
	if len(packed) != 2 || packed[0].DazPage != 1 || packed[1].DazPage != 3 {
		t.Fatalf("packed = %+v", packed)
	}
	if s.Len() != 0 {
		t.Fatalf("leftover %d", s.Len())
	}
}

func TestStagingPackEmptyReturnsNil(t *testing.T) {
	s := NewStaging(blockdev.PageSize)
	if got := s.PackPage(); got != nil {
		t.Fatalf("PackPage on empty = %v", got)
	}
}

func TestStagingOversizeDeltaAlonePerPage(t *testing.T) {
	s := NewStaging(blockdev.PageSize)
	s.Put(sd(1, blockdev.PageSize)) // raw full-page delta
	s.Put(sd(2, 10))
	packed := s.PackPage()
	if len(packed) != 1 || packed[0].DazPage != 1 {
		t.Fatalf("packed = %+v", packed)
	}
	packed = s.PackPage()
	if len(packed) != 1 || packed[0].DazPage != 2 {
		t.Fatalf("second pack = %+v", packed)
	}
}

func TestStagingAllSurvivesForRecovery(t *testing.T) {
	s := NewStaging(8 * blockdev.PageSize)
	s.Put(sd(1, 10))
	s.Put(sd(2, 20))
	s.Drop(1)
	all := s.All()
	if len(all) != 1 || all[0].DazPage != 2 {
		t.Fatalf("All = %+v", all)
	}
}

func TestStagingIndexConsistentAfterPack(t *testing.T) {
	s := NewStaging(blockdev.PageSize)
	for i := int64(0); i < 8; i++ {
		s.Put(sd(i, 700))
	}
	s.PackPage()
	// Remaining deltas must still be addressable and coalescible.
	for i := int64(0); i < 8; i++ {
		if d, ok := s.Get(i); ok {
			s.Put(sd(i, d.D.Len/2))
		}
	}
	if s.Len() == 0 {
		t.Fatal("expected leftovers after single pack")
	}
	for _, d := range s.All() {
		if got, ok := s.Get(d.DazPage); !ok || got.D.Len != d.D.Len {
			t.Fatal("index out of sync with fifo")
		}
	}
}

func TestStagingPanicsOnTinyCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStaging(100)
}

func TestCountersLive(t *testing.T) {
	c := Counters{Head: 3, Tail: 10}
	if c.Live() != 7 {
		t.Fatalf("Live = %d", c.Live())
	}
}
