// Package nvram models the battery-backed RAM the paper assumes storage
// arrays provide (§III-B): the delta staging buffer, the metadata buffer,
// and the metadata log head/tail counters. Contents survive simulated
// power failures — on crash the volatile structures (the primary map) are
// discarded while these objects are handed to the recovery procedure
// intact, which is exactly the persistence contract NVRAM provides.
package nvram

import (
	"kddcache/internal/blockdev"
	"kddcache/internal/delta"
)

// StagedDelta is one delta waiting in the staging buffer, keyed by the
// cached DAZ page it applies to.
type StagedDelta struct {
	DazPage int64 // SSD cache page index of the old version (lba_daz)
	RaidLBA int64 // storage address of the data (lba_raid)
	D       delta.Delta
}

// Staging is the FIFO delta staging buffer with write coalescing: "only
// the newest version of delta for one DAZ page is maintained" (§III-C).
// When enough delta bytes accumulate to fill a flash page, PackPage
// drains the oldest deltas into one DEZ page image.
type Staging struct {
	capBytes int
	fifo     []StagedDelta // arrival order, coalesced
	index    map[int64]int // DazPage -> position in fifo (-1 = tombstone)
	bytes    int

	// Statistics.
	Coalesced   int64 // deltas replaced in place by a newer version
	Invalidated int64 // deltas dropped because the page was reclaimed
}

// NewStaging returns a staging buffer that packs a page once capBytes of
// deltas are queued. capBytes must be at least one page.
func NewStaging(capBytes int) *Staging {
	if capBytes < blockdev.PageSize {
		panic("nvram: staging buffer smaller than one page")
	}
	return &Staging{capBytes: capBytes, index: make(map[int64]int)}
}

// Len returns the number of live staged deltas.
func (s *Staging) Len() int { return len(s.index) }

// Bytes returns the total encoded bytes of live staged deltas.
func (s *Staging) Bytes() int { return s.bytes }

// Full reports whether the buffer has reached its capacity and a page
// should be packed and committed to DEZ.
func (s *Staging) Full() bool { return s.bytes >= s.capBytes }

// Put stages a delta for the given DAZ page, replacing any older staged
// delta for the same page (write coalescing).
func (s *Staging) Put(d StagedDelta) {
	if pos, ok := s.index[d.DazPage]; ok {
		s.bytes -= s.fifo[pos].D.Len
		s.fifo[pos] = d
		s.bytes += d.D.Len
		s.Coalesced++
		return
	}
	s.index[d.DazPage] = len(s.fifo)
	s.fifo = append(s.fifo, d)
	s.bytes += d.D.Len
}

// Get returns the staged delta for a DAZ page, if any.
func (s *Staging) Get(dazPage int64) (StagedDelta, bool) {
	pos, ok := s.index[dazPage]
	if !ok {
		return StagedDelta{}, false
	}
	return s.fifo[pos], true
}

// Drop removes a staged delta (the DAZ page was reclaimed or superseded).
func (s *Staging) Drop(dazPage int64) {
	pos, ok := s.index[dazPage]
	if !ok {
		return
	}
	s.bytes -= s.fifo[pos].D.Len
	s.fifo[pos].DazPage = -1 // tombstone; compacted on PackPage
	delete(s.index, dazPage)
	s.Invalidated++
}

// PackPage drains the oldest staged deltas that together fit a flash page
// and returns them. The caller writes them to one DEZ page and updates
// its mapping entries. Returns nil when the buffer is empty.
func (s *Staging) PackPage() []StagedDelta {
	var out []StagedDelta
	used := 0
	i := 0
	for ; i < len(s.fifo); i++ {
		d := s.fifo[i]
		if d.DazPage < 0 {
			continue // tombstone
		}
		if used+d.D.Len > blockdev.PageSize {
			break
		}
		used += d.D.Len
		out = append(out, d)
		delete(s.index, d.DazPage)
		s.bytes -= d.D.Len
	}
	// Compact the consumed prefix and rebuild positions.
	s.fifo = append(s.fifo[:0], s.fifo[i:]...)
	for p := range s.index {
		delete(s.index, p)
	}
	for pos, d := range s.fifo {
		if d.DazPage >= 0 {
			s.index[d.DazPage] = pos
		}
	}
	return out
}

// All returns the live staged deltas in FIFO order (recovery reads these
// back after a power failure).
func (s *Staging) All() []StagedDelta {
	var out []StagedDelta
	for _, d := range s.fifo {
		if d.DazPage >= 0 {
			out = append(out, d)
		}
	}
	return out
}

// Counters are the metadata-log head and tail sequence numbers, stored in
// NVRAM so recovery knows the live extent of the circular log (§III-B),
// plus the RAID rebuild checkpoint: the watermark is volatile array state,
// so recovery needs an NVRAM copy to resume a half-done rebuild instead of
// silently serving the un-rebuilt region as zeros.
type Counters struct {
	Head uint64 // oldest live metadata page sequence number
	Tail uint64 // next metadata page sequence number to write

	// RAID member-rebuild checkpoint, updated after every rebuild step.
	RebuildActive bool
	RebuildDisk   int32 // member being rebuilt
	RebuildRow    int64 // rows [0, RebuildRow) are reconstructed
}

// Live returns the number of live metadata pages.
func (c *Counters) Live() uint64 { return c.Tail - c.Head }
