// Package delta implements the delta machinery at the heart of KDD: the
// "compressed XORs of the current version of data and the old version"
// (§III-A) that are packed into Delta Zone pages.
//
// Three codecs are provided:
//
//   - ZRLE: XOR + zero-run-length encoding. Real-world deltas are sparse
//     (5–20% of bits change, §II-C), so their XOR is mostly zero bytes and
//     run-length coding captures it at lzo-like speed. This is the
//     prototype-path stand-in for the paper's lzo.
//   - Flate: XOR + DEFLATE via compress/flate; slower, denser.
//   - Modelled: draws the compression ratio from a clipped Gaussian, the
//     exact assumption the paper's simulator makes ("delta compression
//     ratio values follow Gaussian distribution with an average equaling
//     50%, 25%, and 12%", §IV-A2). Used by the trace-driven simulator,
//     which carries no real bytes.
package delta

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"kddcache/internal/blockdev"
	"kddcache/internal/sim"
)

// Errors returned by codecs.
var (
	ErrCorrupt  = errors.New("delta: corrupt encoding")
	ErrNoBytes  = errors.New("delta: modelled delta carries no bytes")
	ErrTooLarge = errors.New("delta: encoded delta exceeds a page")
)

// Delta is an encoded difference between two versions of a page.
type Delta struct {
	Bytes []byte // encoded payload; nil when produced by the modelled codec
	Len   int    // encoded length in bytes (== len(Bytes) when present)
	Raw   bool   // payload is the full new page, not an encoding (incompressible fallback)
}

// NewRaw returns an incompressible-delta fallback carrying the full new
// page verbatim. KDD falls back to raw when a delta encodes to at least a
// page, so DEZ space is never wasted on expansion.
func NewRaw(newPage []byte) Delta {
	cp := make([]byte, blockdev.PageSize)
	copy(cp, newPage)
	return Delta{Bytes: cp, Len: blockdev.PageSize, Raw: true}
}

// ApplyAny reconstructs the new page from old and d into out, handling
// both codec-encoded and raw deltas.
func ApplyAny(c Codec, old []byte, d Delta, out []byte) error {
	if d.Raw {
		if d.Bytes == nil {
			return ErrNoBytes
		}
		copy(out[:blockdev.PageSize], d.Bytes)
		return nil
	}
	return c.Apply(old, d, out)
}

// Ratio returns the delta size as a fraction of a page.
func (d Delta) Ratio() float64 { return float64(d.Len) / float64(blockdev.PageSize) }

// Codec encodes and applies page deltas.
type Codec interface {
	// Name identifies the codec in stats and ablation benches.
	Name() string
	// Encode produces the delta that transforms old into new. Both pages
	// must be PageSize long, except for the modelled codec which accepts
	// nil pages.
	Encode(old, new []byte) Delta
	// Apply reconstructs new from old and the delta into out (PageSize).
	Apply(old []byte, d Delta, out []byte) error
}

// ---------------------------------------------------------------------------
// ZRLE: XOR + zero-run-length encoding.

// ZRLE is the fast XOR+RLE codec. The zero value is ready to use.
type ZRLE struct{}

// Name implements Codec.
func (ZRLE) Name() string { return "zrle" }

// Encode implements Codec. Encoding format: repeated groups of
// (uvarint zeroRun, uvarint litLen, litLen literal bytes) over the XOR of
// the two pages; trailing zeros are implicit.
func (ZRLE) Encode(old, new []byte) Delta {
	if len(old) < blockdev.PageSize || len(new) < blockdev.PageSize {
		panic("delta: ZRLE.Encode needs two full pages")
	}
	var x [blockdev.PageSize]byte
	for i := range x {
		x[i] = old[i] ^ new[i]
	}
	out := []byte{} // non-nil: nil marks modelled deltas
	var tmp [binary.MaxVarintLen64]byte
	i := 0
	for i < len(x) {
		runStart := i
		for i < len(x) && x[i] == 0 {
			i++
		}
		zeroRun := i - runStart
		if i == len(x) {
			break // trailing zeros are implicit
		}
		litStart := i
		// A literal run ends at the next stretch of >=4 zeros (shorter
		// zero stretches cost more as tokens than as literals).
		zeros := 0
		for i < len(x) {
			if x[i] == 0 {
				zeros++
				if zeros >= 4 {
					i -= zeros - 1
					break
				}
			} else {
				zeros = 0
			}
			i++
		}
		litEnd := i
		for litEnd > litStart && x[litEnd-1] == 0 {
			litEnd--
		}
		n := binary.PutUvarint(tmp[:], uint64(zeroRun))
		out = append(out, tmp[:n]...)
		n = binary.PutUvarint(tmp[:], uint64(litEnd-litStart))
		out = append(out, tmp[:n]...)
		out = append(out, x[litStart:litEnd]...)
		i = litEnd
	}
	return Delta{Bytes: out, Len: len(out)}
}

// Apply implements Codec.
func (ZRLE) Apply(old []byte, d Delta, out []byte) error {
	if d.Bytes == nil {
		return ErrNoBytes
	}
	if len(old) < blockdev.PageSize || len(out) < blockdev.PageSize {
		panic("delta: ZRLE.Apply needs full pages")
	}
	copy(out[:blockdev.PageSize], old[:blockdev.PageSize])
	buf := d.Bytes
	pos := 0
	for len(buf) > 0 {
		zeroRun, n := binary.Uvarint(buf)
		if n <= 0 {
			return ErrCorrupt
		}
		buf = buf[n:]
		litLen, n := binary.Uvarint(buf)
		if n <= 0 {
			return ErrCorrupt
		}
		buf = buf[n:]
		pos += int(zeroRun)
		if pos+int(litLen) > blockdev.PageSize || int(litLen) > len(buf) {
			return ErrCorrupt
		}
		for i := 0; i < int(litLen); i++ {
			out[pos+i] ^= buf[i]
		}
		buf = buf[litLen:]
		pos += int(litLen)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Flate: XOR + DEFLATE.

// Flate compresses the XOR with DEFLATE (compress/flate), the stdlib
// stand-in for heavier general-purpose compressors.
type Flate struct {
	// Level is the flate compression level; 0 means flate.DefaultCompression.
	Level int
}

// Name implements Codec.
func (Flate) Name() string { return "flate" }

// Encode implements Codec.
func (f Flate) Encode(old, new []byte) Delta {
	if len(old) < blockdev.PageSize || len(new) < blockdev.PageSize {
		panic("delta: Flate.Encode needs two full pages")
	}
	x := blockdev.GetPage() // every byte assigned by the XOR below
	defer blockdev.PutPage(x)
	for i := range x {
		x[i] = old[i] ^ new[i]
	}
	lvl := f.Level
	if lvl == 0 {
		lvl = flate.DefaultCompression
	}
	var b bytes.Buffer
	w, err := flate.NewWriter(&b, lvl)
	if err != nil {
		panic(fmt.Sprintf("delta: flate writer: %v", err))
	}
	if _, err := w.Write(x); err != nil {
		panic(fmt.Sprintf("delta: flate write: %v", err))
	}
	if err := w.Close(); err != nil {
		panic(fmt.Sprintf("delta: flate close: %v", err))
	}
	return Delta{Bytes: b.Bytes(), Len: b.Len()}
}

// Apply implements Codec.
func (Flate) Apply(old []byte, d Delta, out []byte) error {
	if d.Bytes == nil {
		return ErrNoBytes
	}
	r := flate.NewReader(bytes.NewReader(d.Bytes))
	defer r.Close()
	x := blockdev.GetPage() // fully filled by ReadFull or abandoned
	defer blockdev.PutPage(x)
	if _, err := io.ReadFull(r, x); err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	for i := 0; i < blockdev.PageSize; i++ {
		out[i] = old[i] ^ x[i]
	}
	return nil
}

// ---------------------------------------------------------------------------
// Modelled: Gaussian-sized deltas for the trace-driven simulator.

// Modelled draws delta sizes from a clipped Gaussian, matching the
// paper's simulation assumption. It carries no bytes and cannot Apply.
type Modelled struct {
	rng    *sim.RNG
	mean   float64 // mean compression ratio, e.g. 0.25 for "KDD-25%"
	stddev float64
	lo, hi float64
}

// NewModelled returns a modelled codec with the given mean compression
// ratio (fraction of a page). The standard deviation defaults to mean/4
// and samples are clipped to [2%, 100%] of a page.
func NewModelled(seed uint64, meanRatio float64) *Modelled {
	if meanRatio <= 0 || meanRatio > 1 {
		panic("delta: mean ratio out of (0,1]")
	}
	return &Modelled{
		rng:    sim.NewRNG(seed),
		mean:   meanRatio,
		stddev: meanRatio / 4,
		lo:     0.02,
		hi:     1.0,
	}
}

// Name implements Codec.
func (m *Modelled) Name() string { return fmt.Sprintf("model-%d%%", int(m.mean*100+0.5)) }

// MeanRatio returns the configured mean compression ratio.
func (m *Modelled) MeanRatio() float64 { return m.mean }

// Encode implements Codec; pages are ignored and may be nil.
func (m *Modelled) Encode(_, _ []byte) Delta {
	r := m.rng.Gaussian(m.mean, m.stddev, m.lo, m.hi)
	n := int(r * float64(blockdev.PageSize))
	if n < 1 {
		n = 1
	}
	if n > blockdev.PageSize {
		n = blockdev.PageSize
	}
	return Delta{Len: n}
}

// Apply implements Codec; modelled deltas carry no bytes.
func (m *Modelled) Apply(_ []byte, _ Delta, _ []byte) error { return ErrNoBytes }

var (
	_ Codec = ZRLE{}
	_ Codec = Flate{}
	_ Codec = (*Modelled)(nil)
)
