package delta

import (
	"kddcache/internal/blockdev"
	"kddcache/internal/sim"
)

// Mutator generates "new versions" of pages with controlled content
// locality: it rewrites clustered runs of bytes so that only roughly
// targetRatio of each page changes, reproducing the workload property the
// paper exploits ("only 5% to 20% of bits inside a data block are changed
// on a write operation", §II-C).
type Mutator struct {
	rng    *sim.RNG
	target float64
}

// NewMutator returns a mutator whose rewrites change about targetRatio of
// each page's bytes (0 < targetRatio <= 1).
func NewMutator(seed uint64, targetRatio float64) *Mutator {
	if targetRatio <= 0 || targetRatio > 1 {
		panic("delta: target ratio out of (0,1]")
	}
	return &Mutator{rng: sim.NewRNG(seed), target: targetRatio}
}

// Mutate rewrites page in place, changing ~target fraction of its bytes in
// a handful of clustered runs (real updates touch fields/records, not
// random single bytes).
func (m *Mutator) Mutate(page []byte) {
	if len(page) < blockdev.PageSize {
		panic("delta: Mutate needs a full page")
	}
	toChange := int(m.target * float64(blockdev.PageSize))
	if toChange < 1 {
		toChange = 1
	}
	// Spread the change over 1-8 runs.
	runs := 1 + m.rng.Intn(8)
	if runs > toChange {
		runs = toChange
	}
	per := toChange / runs
	for r := 0; r < runs; r++ {
		n := per
		if r == runs-1 {
			n = toChange - per*(runs-1)
		}
		if n <= 0 {
			continue
		}
		start := m.rng.Intn(blockdev.PageSize - n + 1)
		for i := 0; i < n; i++ {
			page[start+i] = byte(m.rng.Uint64())
		}
	}
}

// FillRandom fills page with random bytes (an initial version).
func (m *Mutator) FillRandom(page []byte) {
	for i := range page {
		page[i] = byte(m.rng.Uint64())
	}
}
