package delta

import (
	"bytes"
	"testing"
	"testing/quick"

	"kddcache/internal/blockdev"
)

// Worst-case encoded sizes. ZRLE breaks literal runs only at zero runs of
// >= 4, so a fully incompressible XOR image costs the page plus a few
// varint headers; flate's stored-block framing adds a handful of bytes.
// The KDD write path falls back to NewRaw at >= PageSize, so DEZ space
// never holds an expanded delta — the bounds here keep that fallback
// sufficient.
const (
	zrleWorstCase  = blockdev.PageSize + 8
	flateWorstCase = blockdev.PageSize + 64
)

// pageShapes builds the content families the cache actually sees: clean
// rewrites, sparse OLTP-style mutations, dense mutations, incompressible
// pages, and first writes over zeros.
func pageShapes(seed uint64) [][2][]byte {
	mut := NewMutator(seed, 0.05)
	dense := NewMutator(seed^1, 0.40)
	var shapes [][2][]byte
	add := func(old, new []byte) { shapes = append(shapes, [2][]byte{old, new}) }

	base := make([]byte, blockdev.PageSize)
	mut.FillRandom(base)
	same := make([]byte, blockdev.PageSize)
	copy(same, base)
	add(base, same) // identical rewrite

	sparse := make([]byte, blockdev.PageSize)
	copy(sparse, base)
	mut.Mutate(sparse)
	add(base, sparse) // ~5% changed

	heavy := make([]byte, blockdev.PageSize)
	copy(heavy, base)
	dense.Mutate(heavy)
	add(base, heavy) // ~40% changed

	random := make([]byte, blockdev.PageSize)
	dense.FillRandom(random)
	add(base, random) // unrelated content: incompressible XOR

	add(make([]byte, blockdev.PageSize), random) // first write over zeros
	return shapes
}

// packedRoundTrip runs the full DEZ life of a delta: encode, pack the
// payload into a shared page image at an offset, unpack by slicing the
// recorded extent back out, and apply to the old page. It returns the
// reconstruction and the encoded delta.
func packedRoundTrip(t *testing.T, c Codec, old, new []byte, off int) ([]byte, Delta) {
	t.Helper()
	d := c.Encode(old, new)
	if d.Len >= blockdev.PageSize {
		d = NewRaw(new) // the KDD write path's incompressible fallback
	}
	if d.Len != len(d.Bytes) {
		t.Fatalf("%s: Len %d != len(Bytes) %d", c.Name(), d.Len, len(d.Bytes))
	}
	image := make([]byte, blockdev.PageSize+d.Len+off)
	copy(image[off:], d.Bytes)
	unpacked := Delta{Bytes: image[off : off+d.Len], Len: d.Len, Raw: d.Raw}
	out := make([]byte, blockdev.PageSize)
	if err := ApplyAny(c, old, unpacked, out); err != nil {
		t.Fatalf("%s: apply: %v", c.Name(), err)
	}
	return out, d
}

// TestRoundTripShapes: compress→pack→unpack→apply reproduces the new page
// for every codec over every content family, and every encoded delta
// respects its codec's worst-case bound.
func TestRoundTripShapes(t *testing.T) {
	codecs := []struct {
		c     Codec
		bound int
	}{
		{ZRLE{}, zrleWorstCase},
		{Flate{}, flateWorstCase},
	}
	for _, tc := range codecs {
		for i, sh := range pageShapes(0xBEEF + uint64(len(tc.c.Name()))) {
			old, new := sh[0], sh[1]
			raw := tc.c.Encode(old, new)
			if raw.Len > tc.bound {
				t.Errorf("%s shape %d: encoded %d bytes, bound %d", tc.c.Name(), i, raw.Len, tc.bound)
			}
			for _, off := range []int{0, 1, 517} {
				got, d := packedRoundTrip(t, tc.c, old, new, off)
				if !bytes.Equal(got, new) {
					t.Fatalf("%s shape %d off %d: reconstruction diverges", tc.c.Name(), i, off)
				}
				if d.Len > blockdev.PageSize {
					t.Fatalf("%s shape %d: post-fallback delta %d exceeds a page", tc.c.Name(), i, d.Len)
				}
			}
		}
	}
}

// TestRoundTripQuick: the same property over randomized page pairs driven
// by testing/quick — arbitrary old/new content, arbitrary pack offset.
func TestRoundTripQuick(t *testing.T) {
	for _, c := range []Codec{ZRLE{}, Flate{}} {
		c := c
		f := func(oldSeed, newSeed uint64, ratio16 uint16, off uint16) bool {
			old := make([]byte, blockdev.PageSize)
			NewMutator(oldSeed, 0.5).FillRandom(old)
			new := make([]byte, blockdev.PageSize)
			copy(new, old)
			// +1 keeps the ratio inside NewMutator's (0,1] domain: a raw
			// ratio16 divisible by 1000 would panic.
			NewMutator(newSeed, float64(ratio16%1000+1)/1000).Mutate(new)
			got, _ := packedRoundTrip(t, c, old, new, int(off%2048))
			return bytes.Equal(got, new)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

// TestEncodeDeterministic: encoding is a pure function — the DEZ replay
// path depends on byte-identical re-encodes.
func TestEncodeDeterministic(t *testing.T) {
	for _, c := range []Codec{ZRLE{}, Flate{}} {
		for i, sh := range pageShapes(0xD151) {
			a := c.Encode(sh[0], sh[1])
			b := c.Encode(sh[0], sh[1])
			if a.Len != b.Len || a.Raw != b.Raw || !bytes.Equal(a.Bytes, b.Bytes) {
				t.Errorf("%s shape %d: encode not deterministic", c.Name(), i)
			}
		}
	}
}
