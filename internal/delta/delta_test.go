package delta

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"kddcache/internal/blockdev"
	"kddcache/internal/sim"
)

func randomPage(rng *sim.RNG) []byte {
	p := make([]byte, blockdev.PageSize)
	for i := range p {
		p[i] = byte(rng.Uint64())
	}
	return p
}

func TestZRLERoundTripIdentical(t *testing.T) {
	rng := sim.NewRNG(1)
	old := randomPage(rng)
	d := ZRLE{}.Encode(old, old)
	if d.Len > 2 {
		t.Fatalf("identical pages encode to %d bytes, want <=2", d.Len)
	}
	out := make([]byte, blockdev.PageSize)
	if err := (ZRLE{}).Apply(old, d, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, old) {
		t.Fatal("round trip mismatch")
	}
}

func TestZRLERoundTripProperty(t *testing.T) {
	codec := ZRLE{}
	f := func(seed uint64, ratioPct uint8) bool {
		rng := sim.NewRNG(seed)
		old := randomPage(rng)
		ratio := float64(ratioPct%100+1) / 100
		mut := NewMutator(seed+1, ratio)
		newPage := make([]byte, blockdev.PageSize)
		copy(newPage, old)
		mut.Mutate(newPage)
		d := codec.Encode(old, newPage)
		out := make([]byte, blockdev.PageSize)
		if err := codec.Apply(old, d, out); err != nil {
			return false
		}
		return bytes.Equal(out, newPage)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestZRLECompressionTracksContentLocality(t *testing.T) {
	codec := ZRLE{}
	for _, target := range []float64{0.12, 0.25, 0.50} {
		rng := sim.NewRNG(7)
		mut := NewMutator(11, target)
		var sum float64
		const n = 200
		for i := 0; i < n; i++ {
			old := randomPage(rng)
			newPage := make([]byte, blockdev.PageSize)
			copy(newPage, old)
			mut.Mutate(newPage)
			sum += codec.Encode(old, newPage).Ratio()
		}
		avg := sum / n
		// The encoded ratio should land near the mutation target (runs may
		// overlap, shrinking it; token overhead grows it slightly).
		if avg < target*0.5 || avg > target*1.3 {
			t.Errorf("target %.0f%%: mean encoded ratio %.3f out of range", target*100, avg)
		}
	}
}

func TestZRLEWorstCaseBounded(t *testing.T) {
	rng := sim.NewRNG(3)
	old := randomPage(rng)
	new2 := randomPage(rng) // completely different page
	d := ZRLE{}.Encode(old, new2)
	if d.Len > blockdev.PageSize+64 {
		t.Fatalf("worst-case delta %d bytes; expansion too large", d.Len)
	}
	out := make([]byte, blockdev.PageSize)
	if err := (ZRLE{}).Apply(old, d, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, new2) {
		t.Fatal("worst-case round trip failed")
	}
}

func TestZRLECorruptInput(t *testing.T) {
	old := make([]byte, blockdev.PageSize)
	out := make([]byte, blockdev.PageSize)
	// Literal length pointing beyond the page.
	bad := Delta{Bytes: []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F, 1, 1}, Len: 8}
	if err := (ZRLE{}).Apply(old, bad, out); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if err := (ZRLE{}).Apply(old, Delta{Len: 10}, out); !errors.Is(err, ErrNoBytes) {
		t.Fatalf("err = %v, want ErrNoBytes", err)
	}
}

func TestFlateRoundTrip(t *testing.T) {
	codec := Flate{}
	rng := sim.NewRNG(5)
	mut := NewMutator(6, 0.25)
	old := randomPage(rng)
	newPage := make([]byte, blockdev.PageSize)
	copy(newPage, old)
	mut.Mutate(newPage)
	d := codec.Encode(old, newPage)
	if d.Len >= blockdev.PageSize {
		t.Fatalf("flate did not compress a 25%% delta: %d bytes", d.Len)
	}
	out := make([]byte, blockdev.PageSize)
	if err := codec.Apply(old, d, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, newPage) {
		t.Fatal("flate round trip mismatch")
	}
	if err := codec.Apply(old, Delta{Bytes: []byte{1, 2, 3}, Len: 3}, out); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if err := codec.Apply(old, Delta{Len: 3}, out); !errors.Is(err, ErrNoBytes) {
		t.Fatalf("err = %v, want ErrNoBytes", err)
	}
}

func TestModelledGaussianMean(t *testing.T) {
	for _, mean := range []float64{0.12, 0.25, 0.50} {
		m := NewModelled(9, mean)
		var sum float64
		const n = 20000
		for i := 0; i < n; i++ {
			d := m.Encode(nil, nil)
			if d.Bytes != nil {
				t.Fatal("modelled delta should not carry bytes")
			}
			if d.Len < 1 || d.Len > blockdev.PageSize {
				t.Fatalf("modelled delta length %d out of range", d.Len)
			}
			sum += d.Ratio()
		}
		avg := sum / n
		if math.Abs(avg-mean) > 0.01 {
			t.Errorf("mean %.2f: sampled mean %.4f", mean, avg)
		}
		if m.MeanRatio() != mean {
			t.Errorf("MeanRatio = %f", m.MeanRatio())
		}
	}
}

func TestModelledApplyRejected(t *testing.T) {
	m := NewModelled(1, 0.25)
	if err := m.Apply(nil, Delta{Len: 5}, nil); !errors.Is(err, ErrNoBytes) {
		t.Fatalf("err = %v", err)
	}
}

func TestModelledPanicsOnBadRatio(t *testing.T) {
	for _, r := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("ratio %f should panic", r)
				}
			}()
			NewModelled(1, r)
		}()
	}
}

func TestCodecNames(t *testing.T) {
	if (ZRLE{}).Name() != "zrle" || (Flate{}).Name() != "flate" {
		t.Fatal("codec names wrong")
	}
	if NewModelled(1, 0.25).Name() != "model-25%" {
		t.Fatalf("modelled name = %s", NewModelled(1, 0.25).Name())
	}
}

func TestMutatorChangesApproxTarget(t *testing.T) {
	for _, target := range []float64{0.05, 0.25, 0.75} {
		mut := NewMutator(13, target)
		rng := sim.NewRNG(14)
		var frac float64
		const n = 100
		for i := 0; i < n; i++ {
			old := randomPage(rng)
			cp := make([]byte, blockdev.PageSize)
			copy(cp, old)
			mut.Mutate(cp)
			diff := 0
			for j := range cp {
				if cp[j] != old[j] {
					diff++
				}
			}
			frac += float64(diff) / float64(blockdev.PageSize)
		}
		frac /= n
		// Overlapping runs and identical random bytes shave a little off.
		if frac < target*0.5 || frac > target*1.05 {
			t.Errorf("target %.2f: mean changed fraction %.3f", target, frac)
		}
	}
}

func TestMutatorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMutator(1, 0)
}

func TestZRLEDeltaRatioHelper(t *testing.T) {
	d := Delta{Len: blockdev.PageSize / 4}
	if math.Abs(d.Ratio()-0.25) > 1e-12 {
		t.Fatalf("Ratio = %f", d.Ratio())
	}
}
