package delta

import (
	"fmt"
	"testing"

	"kddcache/internal/blockdev"
	"kddcache/internal/sim"
)

// Codec ablation: ZRLE (the lzo stand-in) vs flate at the paper's three
// content-locality levels. Reported custom metric: encoded bytes/op.
func BenchmarkCodecs(b *testing.B) {
	for _, ratio := range []float64{0.12, 0.25, 0.50} {
		rng := sim.NewRNG(1)
		mut := NewMutator(2, ratio)
		old := make([]byte, blockdev.PageSize)
		for i := range old {
			old[i] = byte(rng.Uint64())
		}
		newPage := make([]byte, blockdev.PageSize)
		copy(newPage, old)
		mut.Mutate(newPage)

		for _, codec := range []Codec{ZRLE{}, Flate{}} {
			b.Run(fmt.Sprintf("%s/encode/%d%%", codec.Name(), int(ratio*100)), func(b *testing.B) {
				b.SetBytes(blockdev.PageSize)
				b.ReportAllocs()
				var last Delta
				for i := 0; i < b.N; i++ {
					last = codec.Encode(old, newPage)
				}
				b.ReportMetric(float64(last.Len), "deltaBytes/op")
			})
			d := codec.Encode(old, newPage)
			out := make([]byte, blockdev.PageSize)
			b.Run(fmt.Sprintf("%s/apply/%d%%", codec.Name(), int(ratio*100)), func(b *testing.B) {
				b.SetBytes(blockdev.PageSize)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := codec.Apply(old, d, out); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkModelledEncode(b *testing.B) {
	m := NewModelled(1, 0.25)
	for i := 0; i < b.N; i++ {
		_ = m.Encode(nil, nil)
	}
}

func BenchmarkMutator(b *testing.B) {
	mut := NewMutator(1, 0.25)
	page := make([]byte, blockdev.PageSize)
	mut.FillRandom(page)
	b.SetBytes(blockdev.PageSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mut.Mutate(page)
	}
}
