package core

import "container/list"

// ghostLRU is an address-only LRU used for selective cache admission,
// after LARC (Huang et al., MSST'13) — one of the schemes §V-C notes
// "can be deployed in KDD to further reduce the amount of writes to SSD".
// A page is admitted to the real cache only on its second miss within the
// ghost window, filtering one-touch traffic out of the allocation stream.
type ghostLRU struct {
	cap   int
	ll    *list.List // front = most recent; values are int64 LBAs
	index map[int64]*list.Element
}

func newGhostLRU(capacity int) *ghostLRU {
	if capacity < 1 {
		capacity = 1
	}
	return &ghostLRU{cap: capacity, ll: list.New(), index: make(map[int64]*list.Element)}
}

// Admit reports whether lba should be admitted now (it was seen recently)
// and records this touch either way.
func (g *ghostLRU) Admit(lba int64) bool {
	if el, ok := g.index[lba]; ok {
		// Second touch: promote to the real cache and drop the ghost.
		g.ll.Remove(el)
		delete(g.index, lba)
		return true
	}
	g.index[lba] = g.ll.PushFront(lba)
	for g.ll.Len() > g.cap {
		back := g.ll.Back()
		g.ll.Remove(back)
		delete(g.index, back.Value.(int64))
	}
	return false
}

// Len returns the current ghost population.
func (g *ghostLRU) Len() int { return g.ll.Len() }
