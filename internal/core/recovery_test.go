package core_test

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"kddcache/internal/blockdev"
	"kddcache/internal/core"
	"kddcache/internal/raid"
	"kddcache/internal/sim"
)

// crash simulates a power failure: volatile state (the KDD object and its
// primary map) is discarded, while the SSD contents and the NVRAM
// (counters, metadata buffer, staging buffer) survive and feed Restore.
func (r *rig) crash(t *testing.T) {
	t.Helper()
	ctr := r.kdd.Log().Counters()
	buffered := r.kdd.Log().BufferedEntries()
	staging := r.kdd.Staging()
	k2, _, err := core.Restore(r.cfg, 0, ctr, buffered, staging)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	r.kdd = k2
}

func TestPowerFailureRecoveryBasic(t *testing.T) {
	r := newRig(t, 256)
	for lba := int64(0); lba < 80; lba++ {
		r.write(t, lba)
	}
	for lba := int64(0); lba < 80; lba += 2 {
		r.write(t, lba) // half become Old with deltas
	}
	r.crash(t)
	if err := r.kdd.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Read-your-writes must hold across the crash, including Old pages
	// whose deltas were in NVRAM or DEZ.
	r.verifyCache(t)
	r.verifyRAID(t)
	// Hits should still be hits (cache content preserved).
	before := r.kdd.Stats().ReadHits
	buf := make([]byte, blockdev.PageSize)
	if _, err := r.kdd.Read(0, 0, buf); err != nil {
		t.Fatal(err)
	}
	if r.kdd.Stats().ReadHits != before+1 {
		t.Fatal("recovered cache lost its contents")
	}
}

func TestPowerFailureRecoveryThenFlushAndDiskLoss(t *testing.T) {
	r := newRig(t, 256)
	for lba := int64(0); lba < 100; lba++ {
		r.write(t, lba)
	}
	for lba := int64(0); lba < 100; lba += 3 {
		r.write(t, lba)
	}
	r.crash(t)
	// The recovered instance must be able to repair all stale parity.
	if _, err := r.kdd.Flush(0); err != nil {
		t.Fatal(err)
	}
	if r.array.StaleRows() != 0 {
		t.Fatalf("stale rows after recovered flush: %d", r.array.StaleRows())
	}
	r.array.FailDisk(3)
	r.verifyRAID(t)
}

func TestCrashAfterHeavyChurnProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := newRig(t, 128)
		rng := sim.NewRNG(seed)
		for i := 0; i < 600; i++ {
			r.write(t, int64(rng.Uint64n(400)))
			if i%173 == 172 {
				if _, err := r.kdd.Clean(0, false); err != nil {
					return false
				}
			}
		}
		r.crash(t)
		if err := r.kdd.CheckInvariants(); err != nil {
			t.Logf("invariants: %v", err)
			return false
		}
		buf := make([]byte, blockdev.PageSize)
		for lba, want := range r.oracle {
			if _, err := r.kdd.Read(0, lba, buf); err != nil {
				t.Logf("read %d: %v", lba, err)
				return false
			}
			if !bytes.Equal(buf, want) {
				t.Logf("mismatch at %d", lba)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleCrash(t *testing.T) {
	r := newRig(t, 128)
	for lba := int64(0); lba < 50; lba++ {
		r.write(t, lba)
		r.write(t, lba)
	}
	r.crash(t)
	for lba := int64(50); lba < 80; lba++ {
		r.write(t, lba)
	}
	r.crash(t)
	r.verifyCache(t)
	if err := r.kdd.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSSDFailureResync(t *testing.T) {
	// §III-E2: on SSD failure the cache is lost, but the RAID can be
	// resynchronised via reconstruct-write because data blocks were
	// always dispatched.
	r := newRig(t, 256)
	for lba := int64(0); lba < 100; lba++ {
		r.write(t, lba)
		r.write(t, lba)
	}
	if r.array.StaleRows() == 0 {
		t.Fatal("expected stale rows before SSD failure")
	}
	// SSD dies: cache and its staged deltas are gone. Resync from data.
	if _, err := r.array.Resync(0); err != nil {
		t.Fatal(err)
	}
	if r.array.StaleRows() != 0 {
		t.Fatal("resync incomplete")
	}
	r.array.FailDisk(0)
	r.verifyRAID(t)
}

func TestSSDFailureBeforeResyncIsVulnerabilityWindow(t *testing.T) {
	// The LeavO weakness the paper highlights (§I): SSD loss followed by
	// a disk failure before resync can lose data. Demonstrate the window
	// exists, then that resync closes it.
	r := newRig(t, 256)
	r.write(t, 7)
	r.write(t, 7) // stale parity on 7's row
	r.array.FailDisk(raidDiskOf(t, r.array, 7))
	buf := make([]byte, blockdev.PageSize)
	_, err := r.array.ReadPages(0, 7, 1, buf)
	if !errors.Is(err, raid.ErrStaleParity) {
		t.Fatalf("expected stale-parity data loss, got %v", err)
	}
}

// raidDiskOf finds the member disk holding lba's data page by failing
// none and asking the layout via RowPeers+trial; simplest is to probe
// each disk: fail it, check if a healthy-path read still works.
func raidDiskOf(t *testing.T, a *raid.Array, lba int64) int {
	t.Helper()
	// The data disk is the one whose failure turns reads of lba into
	// degraded reads. Probe by reading per-disk counters.
	before := make([]int64, a.Disks())
	// Use the stats delta of a direct read.
	st0 := a.Stats()
	buf := make([]byte, blockdev.PageSize)
	if _, err := a.ReadPages(0, lba, 1, buf); err != nil {
		t.Fatal(err)
	}
	_ = before
	_ = st0
	// Cheap trick: the read went to exactly one disk; find the disk whose
	// read counter incremented by checking all members via their Inner
	// devices.
	for i := 0; i < a.Disks(); i++ {
		if d, ok := memberReads(a, i); ok && d > 0 {
			// Heuristic: re-read and see if this member increments again.
			r1, _ := memberReads(a, i)
			if _, err := a.ReadPages(0, lba, 1, buf); err != nil {
				t.Fatal(err)
			}
			r2, _ := memberReads(a, i)
			if r2 > r1 {
				return i
			}
		}
	}
	t.Fatal("could not locate data disk")
	return -1
}

func memberReads(a *raid.Array, i int) (int64, bool) {
	type reader interface{ Reads() int64 }
	d, ok := a.Member(i).(reader)
	if !ok {
		return 0, false
	}
	return d.Reads(), true
}

func TestHDDFailureFlushThenRebuild(t *testing.T) {
	// §III-E2: HDD fails → KDD updates all parities first, then the RAID
	// rebuild runs; all data must survive.
	r := newRig(t, 256)
	for lba := int64(0); lba < 120; lba++ {
		r.write(t, lba)
	}
	for lba := int64(0); lba < 120; lba += 2 {
		r.write(t, lba)
	}
	r.array.FailDisk(2)
	// §III-E order: update all parity blocks first (rows whose parity
	// lives on the dead disk are resolved by the rebuild's recompute),
	// then rebuild.
	if _, err := r.kdd.Flush(0); err != nil {
		t.Fatal(err)
	}
	if r.array.StaleRows() != 0 {
		t.Fatalf("degraded flush left %d stale rows", r.array.StaleRows())
	}
	fresh := blockdev.NewNullDataDevice("fresh", 4096)
	if _, err := r.array.ReplaceDisk(0, 2, fresh); err != nil {
		t.Fatal(err)
	}
	r.verifyRAID(t)
	r.verifyCache(t)
	// A different disk may now fail and everything must still survive.
	r.array.FailDisk(4)
	r.verifyRAID(t)
}

func TestRecoveryRejectsDisabledLog(t *testing.T) {
	r := newRig(t, 128, func(c *core.Config) { c.DisableMetaLog = true })
	r.write(t, 1)
	cfg := r.cfg
	if _, _, err := core.Restore(cfg, 0, nil, nil, nil); err == nil {
		t.Fatal("recovery with disabled log should fail")
	}
}

func TestDisableMetaLogAblation(t *testing.T) {
	r := newRig(t, 256, func(c *core.Config) { c.DisableMetaLog = true })
	for lba := int64(0); lba < 80; lba++ {
		r.write(t, lba)
		r.write(t, lba)
	}
	r.verifyCache(t)
	if r.kdd.Stats().MetaWrites != 0 {
		t.Fatal("disabled log still wrote metadata")
	}
	if r.kdd.Log() != nil {
		t.Fatal("log object present despite ablation")
	}
}

func TestFixedPartitionAblation(t *testing.T) {
	r := newRig(t, 256, func(c *core.Config) { c.FixedDEZSets = 2 })
	for lba := int64(0); lba < 120; lba++ {
		r.write(t, lba)
	}
	for lba := int64(0); lba < 120; lba++ {
		r.write(t, lba)
	}
	r.verifyCache(t)
	if err := r.kdd.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// All delta pages must live in the reserved sets.
	f := r.kdd.Frame()
	for i := int32(0); int64(i) < f.Pages(); i++ {
		if f.Slot(i).State == 3 /* Delta */ {
			if set := int(i) / f.Ways(); set < f.DataSets() {
				t.Fatalf("delta page in data set %d", set)
			}
		}
	}
}

func TestReclaimMaterializeAblation(t *testing.T) {
	r := newRig(t, 256, func(c *core.Config) { c.ReclaimMaterialize = true })
	for lba := int64(0); lba < 100; lba++ {
		r.write(t, lba)
		r.write(t, lba)
	}
	if _, err := r.kdd.Flush(0); err != nil {
		t.Fatal(err)
	}
	// Scheme 1 keeps the pages cached: reads after flush should hit.
	before := r.kdd.Stats().ReadHits
	buf := make([]byte, blockdev.PageSize)
	for lba := int64(0); lba < 100; lba++ {
		if _, err := r.kdd.Read(0, lba, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, r.oracle[lba]) {
			t.Fatalf("materialized page %d wrong", lba)
		}
	}
	if r.kdd.Stats().ReadHits-before < 90 {
		t.Fatal("materialize kept too few pages cached")
	}
	if err := r.kdd.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
