package core

import (
	"fmt"

	"kddcache/internal/sim"
)

// This file paces the RAID member rebuild (§III-E) against foreground
// traffic. The array owns the mechanics — raid.Array.RebuildStep
// reconstructs a bounded batch of member rows — and KDD owns the policy:
// when to attach a hot spare, how many rows each foreground operation
// releases, and persisting the progress watermark in NVRAM so a power
// failure mid-rebuild resumes instead of silently serving the un-rebuilt
// region. (This is the MEMBER rebuild; the cache health machine's
// HealthRebuilding probation in failover.go is unrelated.)
//
// Pacing is a token bucket measured in member rows, refilled once per
// top-level operation: RebuildRateMax rows when the operation was served
// without touching the array (the disks were idle anyway), RebuildRateMin
// rows when it issued RAID I/O (foreground pressure — the rebuild yields).
// The bucket is capped at four max-refills so an idle stretch cannot bank
// an unbounded burst that would then stall a foreground burst behind it.

// pumpRebuild runs at the end of every successful Read/Write: it
// auto-attaches a parked hot spare to a failed member (folding every
// pending delta first — §III-E repairs parity BEFORE rebuild), releases
// rebuild tokens, steps the array, and checkpoints the watermark.
// Background failures are recorded via stick and surface on the next
// operation; they never fail the foreground op that triggered the pump.
func (k *KDD) pumpRebuild(t sim.Time) {
	if k.cfg.RebuildRateMax < 0 {
		return
	}
	if !k.backend.RebuildActive() {
		if k.backend.Healthy() || k.backend.SpareCount() == 0 {
			return
		}
		k.spareAttach(t)
		return
	}
	refill := k.cfg.RebuildRateMax
	if k.st.RAIDReads+k.st.RAIDWrites > k.fgMark {
		refill = k.cfg.RebuildRateMin
	}
	k.rbTokens += refill
	if cap := 4 * k.cfg.RebuildRateMax; k.rbTokens > cap {
		k.rbTokens = cap
	}
	if k.rbTokens < 1 {
		return
	}
	_, rows, complete, err := k.backend.RebuildStep(t, k.rbTokens)
	k.rbTokens -= rows
	k.st.RebuildRows += int64(rows)
	if rows > 0 {
		k.st.RebuildSteps++
	}
	if complete {
		k.st.RebuildsDone++
		k.rbTokens = 0
	}
	k.checkpointRebuild()
	if err != nil {
		k.stick(fmt.Errorf("core: rebuild step: %w", err))
	}
}

// spareAttach opens a rebuild window onto a parked hot spare. The §III-E
// ordering demands every stale parity be repaired first: a stale row plus
// a missing member is unreconstructable, so the deltas are folded before
// the first rebuild I/O. In pass-through mode the cache is empty (the
// failover already folded), so the fold is a no-op there by construction.
func (k *KDD) spareAttach(t sim.Time) {
	if len(k.oldDeltas) > 0 {
		if _, err := k.cleanPass(t, true); err != nil {
			if k.ssdFault(err) {
				k.failover(t, HealthBypass)
			} else {
				k.stick(fmt.Errorf("core: delta fold before spare attach: %w", err))
				return
			}
		}
	}
	_, started, err := k.backend.StartSpareRebuild(t)
	if err != nil {
		k.stick(fmt.Errorf("core: spare attach: %w", err))
		return
	}
	if !started {
		return
	}
	k.st.SpareAttaches++
	k.rbTokens = 0
	k.checkpointRebuild()
}

// checkpointRebuild mirrors the array's rebuild watermark into the NVRAM
// counters block. The watermark itself is volatile array state; this copy
// is what lets core.Restore re-open a half-done rebuild window after a
// power failure. Called after every step, so the checkpoint is never more
// than one step behind — resuming from it re-reconstructs at most one
// batch of rows, which is idempotent.
func (k *KDD) checkpointRebuild() {
	if k.log == nil {
		return
	}
	ctr := k.log.Counters()
	disk, row, active := k.backend.RebuildTarget()
	ctr.RebuildActive = active
	ctr.RebuildDisk = int32(disk)
	ctr.RebuildRow = row
}
