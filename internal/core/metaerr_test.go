package core_test

import (
	"fmt"
	"strings"
	"testing"

	"kddcache/internal/blockdev"
	"kddcache/internal/core"
	"kddcache/internal/delta"
	"kddcache/internal/raid"
	"kddcache/internal/sim"
)

// flakyMetaSSD fails every write landing in the metadata partition while
// armed; cache-data writes pass through untouched.
type flakyMetaSSD struct {
	blockdev.Device
	metaPages int64
	fail      bool
}

func (f *flakyMetaSSD) WritePages(t sim.Time, lba int64, count int, buf []byte) (sim.Time, error) {
	if f.fail && lba < f.metaPages {
		return t, fmt.Errorf("meta partition write %d: %w", lba, blockdev.ErrMedia)
	}
	return f.Device.WritePages(t, lba, count, buf)
}

// TestMetaLogFailureSurfacesOnNextOp proves metadata-log flush failures on
// paths that cannot return them (read-fill logging, eviction logging,
// best-effort cleaning) are not swallowed: the error is recorded and the
// next top-level operation fails with it, as the RPO-zero design promises.
// Entries stay buffered in NVRAM across the failure, so once the device
// recovers the instance keeps working and the backlog flushes.
func TestMetaLogFailureSurfacesOnNextOp(t *testing.T) {
	var members []blockdev.Device
	for i := 0; i < 5; i++ {
		members = append(members, blockdev.NewNullDevice(fmt.Sprintf("d%d", i), 8192))
	}
	a, err := raid.New(raid.Config{Level: raid.Level5, ChunkPages: 8}, members)
	if err != nil {
		t.Fatal(err)
	}
	// The NVRAM metadata buffer coalesces entries by cache page, so the
	// cache must hold more distinct pages than fit in one log page
	// (~450 clean entries) or no flush — and no failure — ever happens.
	ssd := &flakyMetaSSD{Device: blockdev.NewNullDevice("ssd", 64+1024), metaPages: 64}
	k, err := core.New(core.Config{
		SSD: ssd, Backend: a,
		CachePages: 1024, Ways: 32,
		MetaStart: 0, MetaPages: 64,
		Codec: delta.NewModelled(1, 0.25),
	})
	if err != nil {
		t.Fatal(err)
	}

	// A few ops while the device is healthy.
	for lba := int64(0); lba < 32; lba++ {
		if _, err := k.Read(0, lba, nil); err != nil {
			t.Fatalf("healthy read %d: %v", lba, err)
		}
	}

	// Arm the failure and keep issuing read misses: fills and evictions log
	// clean/free entries until the NVRAM buffer reaches a page and the
	// flush hits the bad device. The failing logPut happens inside fill and
	// evictClean — neither can return an error — so the only correct
	// outcome is a later Read reporting it.
	ssd.fail = true
	var surfaced error
	for lba := int64(32); lba < 8000; lba++ {
		if _, err := k.Read(0, lba, nil); err != nil {
			surfaced = err
			break
		}
	}
	if surfaced == nil {
		t.Fatal("metadata-log write failure was swallowed: no operation surfaced it")
	}
	if !strings.Contains(surfaced.Error(), "meta partition write") {
		t.Fatalf("surfaced error does not identify the metadata failure: %v", surfaced)
	}

	// Repair the device: the instance must still be usable, and the flush
	// must drain the retained NVRAM backlog without error.
	ssd.fail = false
	// Drain any stickies recorded by ops issued between the failed flush
	// and the surfaced error.
	for i := 0; i < 4 && err == nil; i++ {
		_, err = k.Read(0, 5, nil)
	}
	if err != nil {
		t.Fatalf("read after repair: %v", err)
	}
	if _, err := k.Flush(0); err != nil {
		t.Fatalf("flush after repair: %v", err)
	}
}

// TestRejectsGeometriesBeyondUint32 is the regression test for the silent
// metalog.Entry truncation: DazPage and RaidLBA are uint32 on flash, so
// any geometry with page addresses >= 2^32 must be rejected loudly at
// construction instead of corrupting recovery metadata at runtime.
func TestRejectsGeometriesBeyondUint32(t *testing.T) {
	smallArray := func() *raid.Array {
		var members []blockdev.Device
		for i := 0; i < 5; i++ {
			members = append(members, blockdev.NewNullDevice(fmt.Sprintf("d%d", i), 4096))
		}
		a, err := raid.New(raid.Config{Level: raid.Level5, ChunkPages: 8}, members)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	hugeArray := func() *raid.Array {
		// 4 data members x 2^31 pages = 2^33 backend pages: RaidLBA would
		// wrap. Null devices and the sparse array keep this allocation-free.
		var members []blockdev.Device
		for i := 0; i < 5; i++ {
			members = append(members, blockdev.NewNullDevice(fmt.Sprintf("d%d", i), int64(1)<<31))
		}
		a, err := raid.New(raid.Config{Level: raid.Level5, ChunkPages: 16}, members)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}

	// Cache partition extending past 2^32 SSD pages: DazPage would wrap.
	_, err := core.New(core.Config{
		SSD:        blockdev.NewNullDevice("ssd", (int64(1)<<32)+8192),
		Backend:    smallArray(),
		CachePages: int64(1) << 32, Ways: 256,
		MetaStart: 0, MetaPages: 64,
		Codec: delta.NewModelled(1, 0.25),
	})
	if err == nil || !strings.Contains(err.Error(), "uint32") {
		t.Fatalf("huge cache accepted (or unclear error): %v", err)
	}

	// Backend larger than 2^32 pages: RaidLBA would wrap.
	cfg := core.Config{
		SSD:        blockdev.NewNullDevice("ssd", 1024),
		Backend:    hugeArray(),
		CachePages: 512, Ways: 32,
		MetaStart: 0, MetaPages: 64,
		Codec: delta.NewModelled(1, 0.25),
	}
	if _, err := core.New(cfg); err == nil || !strings.Contains(err.Error(), "uint32") {
		t.Fatalf("huge backend accepted (or unclear error): %v", err)
	}

	// Without the metadata log nothing is encoded as uint32, so the same
	// backend is fine (the no-persistence ablation supports any geometry).
	cfg.DisableMetaLog = true
	if _, err := core.New(cfg); err != nil {
		t.Fatalf("huge backend rejected with metadata log disabled: %v", err)
	}
}
