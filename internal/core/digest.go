package core

import (
	"hash/fnv"
	"sort"
)

// StateDigest returns an I/O-free fingerprint of the engine's recovered
// metadata: frame slot states and bindings, delta records, DEZ occupancy,
// and the NVRAM staging buffer contents. The checker restores twice from
// one NVRAM snapshot and compares digests to prove metadata-log replay is
// idempotent — reads are not used for that comparison because serving a
// read mutates state (fills write the SSD).
func (k *KDD) StateDigest() uint64 {
	h := fnv.New64a()
	var w [8]byte
	put := func(v uint64) {
		w[0] = byte(v)
		w[1] = byte(v >> 8)
		w[2] = byte(v >> 16)
		w[3] = byte(v >> 24)
		w[4] = byte(v >> 32)
		w[5] = byte(v >> 40)
		w[6] = byte(v >> 48)
		w[7] = byte(v >> 56)
		h.Write(w[:])
	}
	putBool := func(b bool) {
		if b {
			put(1)
		} else {
			put(0)
		}
	}
	for i := int32(0); int64(i) < k.frame.Pages(); i++ {
		s := k.frame.Slot(i)
		put(uint64(s.State))
		put(uint64(s.RaidLBA))
		od, ok := k.oldDeltas[i]
		putBool(ok)
		if ok {
			putBool(od.staged)
			put(uint64(od.dez))
			put(uint64(od.off))
			put(uint64(od.length))
			putBool(od.raw)
		}
	}
	dez := make([]int32, 0, len(k.dezPages))
	for slot := range k.dezPages {
		dez = append(dez, slot)
	}
	sort.Slice(dez, func(i, j int) bool { return dez[i] < dez[j] })
	for _, slot := range dez {
		dp := k.dezPages[slot]
		put(uint64(slot))
		put(uint64(dp.valid))
		put(uint64(dp.used))
	}
	for _, sd := range k.staging.All() {
		put(uint64(sd.DazPage))
		put(uint64(sd.RaidLBA))
		put(uint64(sd.D.Len))
		putBool(sd.D.Raw)
		h.Write(sd.D.Bytes)
	}
	put(uint64(k.health))
	// Member-rebuild window: two restores from one NVRAM snapshot must
	// resume to the same watermark (or both collapse the window).
	disk, row, active := k.backend.RebuildTarget()
	putBool(active)
	put(uint64(disk))
	put(uint64(row))
	return h.Sum64()
}
