package core

import (
	"kddcache/internal/obs"
	"kddcache/internal/sim"
)

// This file is the QoS bypass surface: serving a tenant's traffic with
// cache admission suspended. The coherence argument is the same one the
// failover machinery relies on (failover.go): KDD always dispatches
// write data to the RAID, so the array's data pages are always current
// and a pass-through read is always correct; only parity may be stale,
// and the RAID layer already resyncs stale rows on demand. Bypass
// therefore serves existing cache HITS through the normal paths (their
// cached state stays coherent) and only suppresses NEW admission — no
// read-fill on a miss, write-through on a write miss.

// ReadNoAdmit serves one read with cache admission suspended (the QoS
// degradation ladder's bypass rung). Identical to Read except that a
// miss performs no read-fill.
func (k *KDD) ReadNoAdmit(t sim.Time, lba int64, buf []byte) (done sim.Time, err error) {
	var sp obs.Span
	if k.tr != nil {
		sp = k.tr.BeginLBA(t, obs.PhaseRead, lba)
	}
	if err = k.preOp(t); err != nil {
		sp.End(t)
		return t, err
	}
	k.st.Reads++
	if k.passThrough() {
		done, err = k.passRead(t, lba, buf)
	} else {
		done, err = k.readCached(t, lba, buf, false)
		if err != nil && k.ssdFault(err) {
			k.failover(t, HealthBypass)
			done, err = k.passRead(t, lba, buf)
		}
	}
	if err != nil {
		sp.End(done)
		return done, err
	}
	k.pumpRebuild(done)
	sp.End(done)
	return done, nil
}

// WriteNoAdmit serves one write with cache admission suspended: a miss
// goes write-through (conventional parity write, no allocation), a hit
// takes the normal delta path.
func (k *KDD) WriteNoAdmit(t sim.Time, lba int64, buf []byte) (done sim.Time, err error) {
	var sp obs.Span
	if k.tr != nil {
		sp = k.tr.BeginLBA(t, obs.PhaseWrite, lba)
	}
	if err = k.preOp(t); err != nil {
		sp.End(t)
		return t, err
	}
	k.st.Writes++
	if k.passThrough() {
		done, err = k.passWrite(t, lba, buf)
	} else {
		done, err = k.writeCached(t, lba, buf, false)
		if err != nil && k.ssdFault(err) {
			k.failover(t, HealthBypass)
			done, err = k.passWrite(t, lba, buf)
		}
	}
	if err != nil {
		sp.End(done)
		return done, err
	}
	k.pumpRebuild(done)
	sp.End(done)
	return done, nil
}
