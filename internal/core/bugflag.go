//go:build !kddbug

package core

// bugDezLogFirst is the mutation switch for the checker's self-test: the
// kddbug build tag flips it to true, making commitDez log the old-page
// mapping entries BEFORE the DEZ page they point at is durable (and skip
// the re-staging undo on failure) — the exact crash-ordering bug the
// DEZ-durable-before-log rule exists to prevent. The mutation test proves
// internal/check catches the resulting violation; production builds
// compile the constant false and the bugged path away.
const bugDezLogFirst = false
