package core_test

import (
	"testing"

	"kddcache/internal/blockdev"
	"kddcache/internal/core"
	"kddcache/internal/obs"
)

// measureHitAllocs reports allocations per cached read hit and write hit.
func measureHitAllocs(t *testing.T, traced bool) (readHit, writeHit float64) {
	t.Helper()
	var tr *obs.Tracer
	if traced {
		tr = obs.New().Tracer
	}
	r := newRig(t, 1024, func(c *core.Config) { c.Tracer = tr })
	const lba = 17
	r.write(t, lba) // miss: admitted Clean
	r.write(t, lba) // hit: page goes Old with a staged delta
	buf := make([]byte, blockdev.PageSize)
	readHit = testing.AllocsPerRun(200, func() {
		if _, err := r.kdd.Read(0, lba, buf); err != nil {
			t.Fatal(err)
		}
	})
	page := make([]byte, blockdev.PageSize)
	copy(page, r.oracle[lba])
	writeHit = testing.AllocsPerRun(200, func() {
		r.mut.Mutate(page)
		if _, err := r.kdd.Write(0, lba, page); err != nil {
			t.Fatal(err)
		}
	})
	return readHit, writeHit
}

// TestHitAllocRegression pins the allocation budget of the cached hot
// paths. The pre-pool baselines (measured before the page pool and the
// binary span ring landed) were:
//
//	untraced: read hit 1.0 allocs/op, write hit 3.0 allocs/op
//	traced:   read hit 3.0 allocs/op, write hit 3.0 allocs/op
//
// With pooled page buffers a read hit allocates nothing and a write hit
// only allocates its delta encoding (the Delta payload bytes, which are
// retained by the staging area and so cannot be pooled). The ceilings
// below sit halfway between the new steady-state counts and the old
// baselines: loose enough to tolerate an occasional sync.Pool miss
// after a GC, tight enough that reintroducing any per-op page
// allocation or per-span formatting fails the test.
func TestHitAllocRegression(t *testing.T) {
	for _, tc := range []struct {
		traced              bool
		readCeil, writeCeil float64
	}{
		{traced: false, readCeil: 0.5, writeCeil: 2.5},
		{traced: true, readCeil: 0.5, writeCeil: 2.5},
	} {
		rh, wh := measureHitAllocs(t, tc.traced)
		t.Logf("traced=%v read-hit allocs/op=%.2f write-hit allocs/op=%.2f", tc.traced, rh, wh)
		if rh > tc.readCeil {
			t.Errorf("traced=%v: read hit allocates %.2f/op, budget %.1f (pre-pool baseline was 1.0 untraced, 3.0 traced)",
				tc.traced, rh, tc.readCeil)
		}
		if wh > tc.writeCeil {
			t.Errorf("traced=%v: write hit allocates %.2f/op, budget %.1f (pre-pool baseline was 3.0)",
				tc.traced, wh, tc.writeCeil)
		}
	}
}
