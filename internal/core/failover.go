package core

import (
	"errors"
	"fmt"
	"sort"

	"kddcache/internal/blockdev"
	"kddcache/internal/cache"
	"kddcache/internal/delta"
	"kddcache/internal/nvram"
	"kddcache/internal/obs"
	"kddcache/internal/sim"
)

// This file implements the cache failure-domain survival subsystem: a
// per-device health state machine that keeps user I/O flowing when the
// cache SSD degrades or dies outright. The safety argument rests on the
// same invariant the media-fault handling uses (media.go): KDD always
// dispatches data to the RAID, so the only thing that lives solely on the
// SSD is the cheap parity repair — the delta. Losing the whole device
// therefore costs performance, never data, PROVIDED every stale parity is
// recomputed before the deltas are abandoned (the emergency fold).
//
// State machine:
//
//	Normal ──breaker trip──────────────▶ Degraded
//	Normal ──SSD fail-stop─────────────▶ Bypass
//	Degraded ──SSD fail-stop───────────▶ Bypass
//	Degraded ──half-open probe passes──▶ Rebuilding
//	Bypass ──Reattach──────────────────▶ Rebuilding
//	Rebuilding ──probation expires─────▶ Normal
//	Rebuilding ──trip / fail-stop──────▶ Degraded / Bypass
//
// Degraded and Bypass are both pass-through modes: reads and writes go
// straight to the RAID with conventional parity maintenance, the metadata
// log is quiesced (re-initialised to empty, which touches no device
// bytes), and nothing is admitted. They differ only in the exit: Degraded
// assumes the device may recover (media-error storm, firmware hiccup) and
// probes it with exponential backoff; Bypass assumes it is gone for good
// and waits for an explicit Reattach.
//
// Failover triggers on blockdev.ErrFailed attributed to the cache device
// — the injector's fail-stop. ErrCrashed is deliberately NOT a failover
// trigger: it models a whole-stack power loss, and the correct response
// is crash recovery (core.Restore), not failover; the crash-consistency
// checker depends on that meaning.

// Health is the cache device's position in the failover state machine.
type Health uint8

const (
	// HealthNormal: the cache is fully operational.
	HealthNormal Health = iota
	// HealthDegraded: the breaker tripped on the SSD's media-error rate;
	// I/O passes through to RAID while half-open probes with exponential
	// backoff test whether the device has recovered.
	HealthDegraded
	// HealthBypass: the SSD fail-stopped; I/O passes through to RAID
	// until an explicit Reattach.
	HealthBypass
	// HealthRebuilding: the device passed a probe (or was re-attached)
	// and the cache is warming back up through ordinary admission; a
	// probation period of clean operation stands between it and Normal.
	HealthRebuilding
)

func (h Health) String() string {
	switch h {
	case HealthNormal:
		return "normal"
	case HealthDegraded:
		return "degraded"
	case HealthBypass:
		return "bypass"
	case HealthRebuilding:
		return "rebuilding"
	default:
		return fmt.Sprintf("health(%d)", uint8(h))
	}
}

// Health returns the cache device's current health state.
func (k *KDD) Health() Health { return k.health }

// passThrough reports whether I/O is currently bypassing the cache.
func (k *KDD) passThrough() bool {
	return k.health == HealthDegraded || k.health == HealthBypass
}

// ssdFault reports whether err is a fail-stop of the cache device
// specifically. Attribution comes from the IOError wrapper when present;
// without one, a device that can report its own failed state is asked
// directly. Member fail-stops (IOError naming a disk) return false — the
// RAID layer owns those.
func (k *KDD) ssdFault(err error) bool {
	if err == nil || !errors.Is(err, blockdev.ErrFailed) {
		return false
	}
	var ioe *blockdev.IOError
	if errors.As(err, &ioe) {
		return ioe.Dev == k.ssd.Name()
	}
	type failer interface{ Failed() bool }
	if f, ok := k.ssd.(failer); ok {
		return f.Failed()
	}
	return false
}

// noteSwallowed records an SSD fail-stop observed on a path that swallows
// errors (read-fill); the next top-level operation fails over.
func (k *KDD) noteSwallowed(err error) {
	if k.ssdFault(err) {
		k.deadSSD = true
	}
}

// preOp runs at the top of every public operation: it advances the op
// clock, surfaces sticky metadata errors (swallowing those caused by a
// dead SSD — the failover absorbs them), performs any pending health
// transition, and drives probes and the rebuild probation.
func (k *KDD) preOp(t sim.Time) error {
	k.opSeq++
	// Snapshot the RAID traffic counters: if they advance during this
	// operation, it hit the array, and the rebuild pump refills at the
	// throttled rate (rebuild.go).
	k.fgMark = k.st.RAIDReads + k.st.RAIDWrites
	if err := k.takeSticky(); err != nil {
		if k.ssdFault(err) {
			k.deadSSD = true
		} else {
			return err
		}
	}
	if k.deadSSD {
		k.deadSSD = false
		k.failover(t, HealthBypass)
	} else if k.tripPending {
		k.tripPending = false
		k.failover(t, HealthDegraded)
	}
	if k.health == HealthDegraded && k.opSeq >= k.probeAfter {
		k.maybeProbe(t)
	}
	if k.health == HealthRebuilding {
		k.rebuildLeft--
		if k.rebuildLeft <= 0 {
			k.health = HealthNormal
		}
	}
	return nil
}

// breakerObserve feeds one SSD read outcome (the final verdict after
// retries) into the sliding-window circuit breaker. Only observed while
// traffic actually flows through the cache; a full window with
// BreakerThreshold persistent failures trips the breaker, which takes
// effect at the next preOp (tripping mid-operation would yank state out
// from under the running code path).
func (k *KDD) breakerObserve(fail bool) {
	if k.cfg.BreakerWindow <= 0 || k.tripPending ||
		(k.health != HealthNormal && k.health != HealthRebuilding) {
		return
	}
	if k.breaker == nil {
		k.breaker = make([]bool, k.cfg.BreakerWindow)
	}
	if k.breakerFill == k.cfg.BreakerWindow {
		if k.breaker[k.breakerPos] {
			k.breakerFail--
		}
	} else {
		k.breakerFill++
	}
	k.breaker[k.breakerPos] = fail
	if fail {
		k.breakerFail++
	}
	k.breakerPos = (k.breakerPos + 1) % k.cfg.BreakerWindow
	if k.breakerFail >= k.cfg.BreakerThreshold {
		k.tripPending = true
		k.st.BreakerTrips++
	}
}

// resetBreaker empties the observation window.
func (k *KDD) resetBreaker() {
	k.breakerPos = 0
	k.breakerFill = 0
	k.breakerFail = 0
	k.tripPending = false
}

// failover moves the cache into a pass-through state (Degraded on a
// breaker trip, Bypass on fail-stop). Stale parities are repaired first
// — after this the deltas are gone — then the in-memory cache state is
// dropped and the metadata log re-initialised to empty, which needs no
// device I/O: a dead SSD cannot veto its own demotion. A later
// core.Restore over the re-initialised log scans zero pages and comes up
// as an empty, Normal cache.
func (k *KDD) failover(t sim.Time, target Health) {
	if k.passThrough() {
		// Already passing through; only the Degraded → Bypass escalation
		// (the suspect device then died for real) changes anything, and
		// the cache is already empty — no second fold.
		if target == HealthBypass {
			k.health = HealthBypass
		}
		return
	}
	k.st.Failovers++
	if err := k.emergencyFold(t); err != nil {
		// A member failed mid-fold: genuinely unrecoverable territory
		// (double failure). Surface it on the next operation rather than
		// losing it — the transition itself still completes so I/O that
		// can be served keeps flowing.
		k.stick(fmt.Errorf("core: emergency parity fold: %w", err))
	}
	if k.log != nil {
		if k.sharedLog {
			// The log belongs to the shard plane and carries every lane's
			// mappings: re-initialising it here would wipe the healthy
			// lanes' metadata. Retract only this lane's own live mappings
			// with Free tombstones instead (buffered — no device I/O, so a
			// dead SSD cannot veto the demotion any more than Reinit could).
			k.freeAllMappings(t)
		} else {
			k.log.Reinit(nil)
		}
	}
	k.dropCache()
	k.health = target
	if target == HealthDegraded {
		k.backoffOps = k.cfg.BreakerBackoff
		k.probeAfter = k.opSeq + k.backoffOps
	}
	k.resetBreaker()
}

// emergencyFold recomputes the parity of every row that still depends on
// a delta, without trusting the failing SSD at all: rows whose deltas are
// all still staged in NVRAM (and not raw, which would need the old page
// from flash) fold cheaply via the delta RMW; everything else — DEZ-
// committed deltas, raw deltas — is recomputed from member data via
// ResyncRow. The members always hold the current bytes (every write was
// dispatched), so the resync is always correct; the RMW is merely the
// cheap path. Row order is sorted for deterministic I/O sequences.
func (k *KDD) emergencyFold(t sim.Time) error {
	if len(k.oldDeltas) == 0 {
		return nil
	}
	sp := k.tr.Begin(t, obs.PhaseFold)
	done := t
	k.st.EmergencyFolds++
	rows := make(map[int64][]peerInfo)
	for slot := range k.oldDeltas {
		lba := k.frame.Slot(slot).RaidLBA
		key := k.backend.RowPeers(lba)[0]
		rows[key] = append(rows[key], peerInfo{lba: lba, slot: slot})
	}
	keys := make([]int64, 0, len(rows))
	for key := range rows {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var firstErr error
	for _, key := range keys {
		peers := rows[key]
		sort.Slice(peers, func(i, j int) bool { return peers[i].lba < peers[j].lba })
		if c, ok := k.foldRowRMW(t, peers); ok {
			k.st.FoldRMWs++
			done = sim.MaxTime(done, c)
			continue
		}
		c, err := k.backend.ResyncRow(t, key)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		k.st.FoldResyncs++
		done = sim.MaxTime(done, c)
	}
	sp.End(done)
	return firstErr
}

// foldRowRMW attempts the cheap fold of one row from NVRAM-staged deltas
// only (no SSD I/O). Reports whether the row's parity is repaired, and
// when it is, the virtual time the repair completed.
func (k *KDD) foldRowRMW(t sim.Time, peers []peerInfo) (sim.Time, bool) {
	lbas := make([]int64, 0, len(peers))
	var deltas [][]byte
	if k.dataMode {
		deltas = make([][]byte, 0, len(peers))
	}
	for _, pi := range peers {
		od := k.oldDeltas[pi.slot]
		if !od.staged {
			return t, false
		}
		lbas = append(lbas, pi.lba)
		if !k.dataMode {
			continue
		}
		sd, ok := k.staging.Get(k.cacheLBA(pi.slot))
		if !ok || sd.D.Raw {
			// Raw deltas are new-version bytes, not XORs: expanding one
			// needs the old page from the SSD we no longer trust.
			return t, false
		}
		xor := blockdev.GetZeroPage()
		deltas = append(deltas, xor)
		if err := k.codec.Apply(xor, sd.D, xor); err != nil {
			return t, false
		}
	}
	c, err := k.backend.ParityUpdateDelta(t, lbas, deltas)
	for _, x := range deltas {
		blockdev.PutPage(x)
	}
	if err != nil {
		return t, false
	}
	return c, true
}

// freeAllMappings appends a Free tombstone for every mapped DAZ page of
// this lane, so recovery over the plane's shared log sees the lane
// empty. DEZ pages carry no entries of their own (Old entries reference
// them), so retracting the DAZ mappings is complete. Tombstones reach
// NVRAM immediately (buffered batch mode); their page flush rides the
// next plane barrier.
func (k *KDD) freeAllMappings(t sim.Time) {
	for slot := int32(0); slot < int32(k.frame.Pages()); slot++ {
		switch k.frame.Slot(slot).State {
		case cache.Clean, cache.Old:
		default:
			continue
		}
		if _, err := k.logPut(t, k.freeEntry(slot)); err != nil {
			if k.ssdFault(err) {
				// The whole device is gone, the shared log's pages with it;
				// what follows is plane-level recovery, not this lane's.
				return
			}
			k.stick(fmt.Errorf("core: retracting lane mappings: %w", err))
			return
		}
	}
}

// dropCache resets every in-memory cache structure to empty: fresh frame,
// no delta records, no DEZ occupancy, empty NVRAM staging. Pure memory —
// no device I/O, no log entries (the log is wiped separately).
func (k *KDD) dropCache() {
	k.frame = cache.NewFrame(k.cfg.CachePages, k.cfg.Ways, k.backend.StripePages())
	if k.cfg.FixedDEZSets > 0 {
		k.frame.SetDataSets(k.frame.Sets() - k.cfg.FixedDEZSets)
	}
	k.oldDeltas = make(map[int32]oldDelta)
	k.dezPages = make(map[int32]*dezPage)
	k.staging = nvram.NewStaging(k.cfg.StagingBytes)
	k.metaErr = nil
}

// maybeProbe runs one half-open probe while Degraded: success moves to
// Rebuilding (traffic re-admitted under probation), failure doubles the
// backoff.
func (k *KDD) maybeProbe(t sim.Time) {
	k.st.BreakerProbes++
	if k.probeSSD(t) {
		k.health = HealthRebuilding
		k.rebuildLeft = k.cfg.RebuildProbation
		k.resetBreaker()
		return
	}
	k.backoffOps *= 2
	k.probeAfter = k.opSeq + k.backoffOps
}

// probeSSD exercises the device both ways. The read targets the first
// metadata page, which the probe never rewrites: latent errors clear on
// rewrite (remap-on-write), so a write-then-read-back probe alone would
// always pass on a device still riddled with bad pages. The write/read
// pair targets the first cache page, free in every pass-through state
// (the cache was dropped).
func (k *KDD) probeSSD(t sim.Time) bool {
	var buf []byte
	if k.dataMode {
		buf = blockdev.GetZeroPage() // probe writes the buffer as-is
		defer blockdev.PutPage(buf)
	}
	if k.log != nil {
		if _, err := k.ssd.ReadPages(t, k.cfg.MetaStart, 1, buf); err != nil {
			return false
		}
	}
	if _, err := k.ssd.WritePages(t, k.cacheLBA(0), 1, buf); err != nil {
		return false
	}
	if _, err := k.ssd.ReadPages(t, k.cacheLBA(0), 1, buf); err != nil {
		return false
	}
	return true
}

// passRead serves a read in pass-through mode: straight from the RAID,
// no admission.
func (k *KDD) passRead(t sim.Time, lba int64, buf []byte) (sim.Time, error) {
	k.st.PassReads++
	k.st.ReadMisses++
	k.st.RAIDReads++
	return k.backend.ReadPages(t, lba, 1, buf)
}

// passWrite serves a write in pass-through mode: conventional RAID write
// with immediate parity maintenance, no admission.
func (k *KDD) passWrite(t sim.Time, lba int64, buf []byte) (sim.Time, error) {
	k.st.PassWrites++
	k.st.WriteMiss++
	k.st.RAIDWrites++
	return k.backend.WritePages(t, lba, 1, buf)
}

// Reattach brings the cache back online after Bypass (or forces the
// issue while Degraded): the metadata log partition is wiped and
// re-initialised, in-memory state rebuilt empty, and the cache warms
// back up through the ordinary admission path under Rebuilding
// probation. A non-nil dev replaces the cache device (it must fit the
// configured geometry); nil re-attaches the existing device — the
// harness's injector, whose medium was swapped by Repair. The device is
// probed first; a failed probe leaves the current state untouched.
func (k *KDD) Reattach(t sim.Time, dev blockdev.Device) error {
	if k.health == HealthNormal || k.health == HealthRebuilding {
		return fmt.Errorf("core: reattach while cache is %v", k.health)
	}
	if k.sharedLog {
		// Reinit would wipe the plane's shared log under the other lanes;
		// lane recovery is a plane-level restore, not a per-lane reattach.
		return fmt.Errorf("core: reattach of a shard-plane lane; restore the plane instead")
	}
	if dev != nil {
		if need := k.cfg.MetaStart + k.cfg.MetaPages + k.cfg.CachePages; need > dev.Pages() {
			return fmt.Errorf("core: replacement SSD too small: need %d pages, have %d",
				need, dev.Pages())
		}
		k.ssd = dev
		k.cfg.SSD = dev
		dm := false
		if s, ok := dev.(blockdev.Storer); ok {
			dm = s.Store() != nil
		}
		if _, modelled := k.codec.(*delta.Modelled); modelled {
			dm = false
		}
		k.dataMode = dm
	}
	if !k.probeSSD(t) {
		return fmt.Errorf("core: reattach probe failed; cache stays in %v", k.health)
	}
	if k.log != nil {
		k.log.Reinit(k.cfg.SSD)
	}
	k.dropCache()
	k.health = HealthRebuilding
	k.rebuildLeft = k.cfg.RebuildProbation
	k.resetBreaker()
	k.backoffOps = 0
	k.probeAfter = 0
	k.deadSSD = false
	k.st.Reattaches++
	return nil
}
