package core_test

import (
	"bytes"
	"testing"

	"kddcache/internal/blockdev"
	"kddcache/internal/core"
	"kddcache/internal/delta"
	"kddcache/internal/raid"
	"kddcache/internal/sim"
)

// newFailRig is newFaultRig with config overrides (breaker knobs and
// friends).
func newFailRig(t *testing.T, cachePages int64, opts ...func(*core.Config)) (*rig, *blockdev.FaultInjector) {
	t.Helper()
	var members []blockdev.Device
	for i := 0; i < 5; i++ {
		members = append(members, blockdev.NewNullDataDevice("d", 4096))
	}
	a, err := raid.New(raid.Config{Level: raid.Level5, ChunkPages: 8}, members)
	if err != nil {
		t.Fatal(err)
	}
	inner := blockdev.NewNullDataDevice("ssd", cachePages+256)
	fi := blockdev.NewFaultInjector(inner, 7)
	cfg := core.Config{
		SSD:        fi,
		Backend:    a,
		CachePages: cachePages,
		Ways:       32,
		MetaStart:  0,
		MetaPages:  64,
		Codec:      delta.ZRLE{},
	}
	for _, o := range opts {
		o(&cfg)
	}
	k, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{
		ssd: inner, array: a, kdd: k, cfg: cfg,
		oracle: make(map[int64][]byte),
		mut:    delta.NewMutator(5, 0.25),
		rng:    sim.NewRNG(42),
	}, fi
}

// read checks one lba against the oracle through the cache.
func (r *rig) read(t *testing.T, lba int64) {
	t.Helper()
	buf := make([]byte, blockdev.PageSize)
	if _, err := r.kdd.Read(0, lba, buf); err != nil {
		t.Fatalf("read %d: %v", lba, err)
	}
	if want := r.oracle[lba]; want != nil && !bytes.Equal(buf, want) {
		t.Fatalf("lba %d: wrong data", lba)
	}
}

// populate seeds the rig with writes plus write hits, leaving staged
// deltas and stale parity behind — the state an emergency fold must
// repair.
func (r *rig) populate(t *testing.T) {
	t.Helper()
	for lba := int64(0); lba < 40; lba++ {
		r.write(t, lba)
	}
	for lba := int64(0); lba < 40; lba += 2 {
		r.write(t, lba)
	}
	if r.array.StaleRows() == 0 {
		t.Fatal("setup: no stale parity to fold")
	}
}

func TestSSDFailStopEntersBypassWithoutUserError(t *testing.T) {
	r, fi := newFailRig(t, 256)
	r.populate(t)
	fi.Fail()

	// The very next request must succeed (write goes straight to RAID).
	r.write(t, 100)
	if got := r.kdd.Health(); got != core.HealthBypass {
		t.Fatalf("health = %v, want bypass", got)
	}
	st := r.kdd.Stats()
	if st.Failovers != 1 || st.EmergencyFolds != 1 {
		t.Fatalf("failover accounting: failovers=%d folds=%d", st.Failovers, st.EmergencyFolds)
	}
	if st.FoldRMWs+st.FoldResyncs == 0 {
		t.Fatal("fold repaired no rows")
	}
	if r.array.StaleRows() != 0 {
		t.Fatalf("%d stale rows survived the emergency fold", r.array.StaleRows())
	}
	// Every read — old cached data included — is served from the RAID.
	r.verifyCache(t)
	if r.kdd.Stats().PassReads == 0 {
		t.Fatal("reads not routed through pass-through")
	}
	// Flush is a quiesced no-op; invariants hold on the dropped cache.
	if _, err := r.kdd.Flush(0); err != nil {
		t.Fatalf("flush in bypass: %v", err)
	}
	if err := r.kdd.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The folded parity is genuinely correct: degraded reconstruction.
	r.array.FailDisk(2)
	r.verifyRAID(t)
}

func TestSSDFailStopDuringCleanIsAbsorbed(t *testing.T) {
	r, fi := newFailRig(t, 256)
	r.populate(t)
	// Die on the next device op: the failure lands inside the cleaning
	// pass, which must route it into failover instead of surfacing it.
	fi.FailAfterOps = fi.Ops()
	if _, err := r.kdd.Clean(0, true); err != nil {
		t.Fatalf("clean over dying SSD surfaced %v", err)
	}
	if got := r.kdd.Health(); got != core.HealthBypass {
		t.Fatalf("health = %v, want bypass", got)
	}
	if r.array.StaleRows() != 0 {
		t.Fatal("stale parity survived the failover")
	}
	r.write(t, 7)
	r.read(t, 7)
	r.verifyRAID(t)
}

func TestBreakerTripProbeBackoffRecovery(t *testing.T) {
	r, fi := newFailRig(t, 256, func(c *core.Config) {
		c.BreakerWindow = 8
		c.BreakerThreshold = 4
		c.BreakerBackoff = 4
		c.RebuildProbation = 2
	})
	r.write(t, 1)
	// Media-error storm: every SSD read fails persistently. Each cache
	// hit heals itself from RAID but feeds the breaker one failure.
	fi.SetProfile(blockdev.FaultProfile{LatentProb: 1})
	for i := 0; i < 20 && r.kdd.Health() == core.HealthNormal; i++ {
		r.read(t, 1)
	}
	if got := r.kdd.Health(); got != core.HealthDegraded {
		t.Fatalf("health = %v, want degraded", got)
	}
	st := r.kdd.Stats()
	if st.BreakerTrips == 0 || st.Failovers == 0 {
		t.Fatalf("trip accounting: %+v", st)
	}
	// The first half-open probe runs against the still-bad device: it
	// must fail and leave the cache degraded (backoff doubles).
	for i := 0; i < 6; i++ {
		r.read(t, 1)
	}
	if r.kdd.Stats().BreakerProbes == 0 {
		t.Fatal("no probe ran")
	}
	if got := r.kdd.Health(); got != core.HealthDegraded {
		t.Fatalf("probe against bad device recovered to %v", got)
	}
	// Storm passes: clear the profile and the latent marks it left
	// (including the ones failed probes put on the metadata page).
	fi.SetProfile(blockdev.FaultProfile{})
	for p := int64(0); p < fi.Pages(); p++ {
		fi.ClearBadPage(p)
	}
	sawRebuilding := false
	for i := 0; i < 40 && r.kdd.Health() != core.HealthNormal; i++ {
		r.read(t, 1)
		if r.kdd.Health() == core.HealthRebuilding {
			sawRebuilding = true
		}
	}
	if got := r.kdd.Health(); got != core.HealthNormal {
		t.Fatalf("health = %v after the storm cleared, want normal", got)
	}
	if !sawRebuilding {
		t.Fatal("recovery skipped the rebuilding probation")
	}
	if r.kdd.Stats().BreakerProbes < 2 {
		t.Fatalf("want a failed and a successful probe, got %d", r.kdd.Stats().BreakerProbes)
	}
	// Admission genuinely resumed: a fresh write allocates a cache slot.
	allocs := r.kdd.Stats().WriteAllocs
	r.write(t, 50)
	if r.kdd.Stats().WriteAllocs == allocs {
		t.Fatal("admission did not resume after recovery")
	}
	if err := r.kdd.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReattachWithFreshDevice(t *testing.T) {
	r, fi := newFailRig(t, 256, func(c *core.Config) { c.RebuildProbation = 4 })
	r.populate(t)
	fi.Fail()
	r.write(t, 3) // → bypass
	if got := r.kdd.Health(); got != core.HealthBypass {
		t.Fatalf("health = %v, want bypass", got)
	}
	fresh := blockdev.NewNullDataDevice("ssd2", r.cfg.CachePages+256)
	if err := r.kdd.Reattach(0, fresh); err != nil {
		t.Fatal(err)
	}
	if got := r.kdd.Health(); got != core.HealthRebuilding {
		t.Fatalf("health = %v after reattach, want rebuilding", got)
	}
	// Warm back up past the probation.
	for i := int64(0); i < 8; i++ {
		r.write(t, 200+i)
	}
	if got := r.kdd.Health(); got != core.HealthNormal {
		t.Fatalf("health = %v after probation, want normal", got)
	}
	// The cache is caching again: a repeat write is a hit with a staged
	// delta, and a repeat read is a hit.
	hits := r.kdd.Stats().WriteHits
	r.write(t, 200)
	if r.kdd.Stats().WriteHits == hits {
		t.Fatal("write hit not served from the re-attached cache")
	}
	if r.kdd.Stats().Reattaches != 1 {
		t.Fatalf("reattaches = %d", r.kdd.Stats().Reattaches)
	}
	r.verifyCache(t)
	if _, err := r.kdd.Flush(0); err != nil {
		t.Fatal(err)
	}
	if r.array.StaleRows() != 0 {
		t.Fatal("stale rows after post-reattach flush")
	}
	if err := r.kdd.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	r.array.FailDisk(1)
	r.verifyRAID(t)
}

func TestReattachRejectedWhileHealthy(t *testing.T) {
	r, _ := newFailRig(t, 256)
	if err := r.kdd.Reattach(0, nil); err == nil {
		t.Fatal("reattach of a healthy cache must be rejected")
	}
}

func TestReattachTooSmallDeviceRejected(t *testing.T) {
	r, fi := newFailRig(t, 256)
	r.write(t, 1)
	fi.Fail()
	r.write(t, 2) // → bypass
	tiny := blockdev.NewNullDataDevice("tiny", 64)
	if err := r.kdd.Reattach(0, tiny); err == nil {
		t.Fatal("undersized replacement must be rejected")
	}
	if got := r.kdd.Health(); got != core.HealthBypass {
		t.Fatalf("failed reattach changed health to %v", got)
	}
}

func TestRestoreInBypassComesUpFreshAndIdempotent(t *testing.T) {
	r, fi := newFailRig(t, 256)
	r.populate(t)
	fi.Fail()
	r.write(t, 3) // → bypass; log reinitialised via NVRAM counters only
	k1, _, err := core.Restore(r.cfg, 0, r.kdd.Log().Counters(), r.kdd.Log().BufferedEntries(), r.kdd.Staging())
	if err != nil {
		t.Fatalf("restore with dead SSD: %v", err)
	}
	k2, _, err := core.Restore(r.cfg, 0, r.kdd.Log().Counters(), r.kdd.Log().BufferedEntries(), r.kdd.Staging())
	if err != nil {
		t.Fatalf("second restore: %v", err)
	}
	if d1, d2 := k1.StateDigest(), k2.StateDigest(); d1 != d2 {
		t.Fatalf("restore not idempotent: %016x vs %016x", d1, d2)
	}
	if got := k1.Health(); got != core.HealthNormal {
		t.Fatalf("restored health = %v, want normal (empty cache)", got)
	}
	// A read through the restored instance is served from the RAID even
	// though the SSD is still dead (the admission failure is absorbed).
	buf := make([]byte, blockdev.PageSize)
	if _, err := k1.Read(0, 3, buf); err != nil {
		t.Fatalf("read through restored instance: %v", err)
	}
	if !bytes.Equal(buf, r.oracle[3]) {
		t.Fatal("restored instance served wrong data")
	}
}
