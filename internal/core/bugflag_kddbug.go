//go:build kddbug

package core

// Mutation build: commitDez logs mapping entries before the DEZ page is
// durable. See bugflag.go.
const bugDezLogFirst = true
