package core

import (
	"errors"

	"kddcache/internal/blockdev"
	"kddcache/internal/cache"
	"kddcache/internal/sim"
)

// This file implements KDD's handling of partial SSD faults (media
// errors on individual cache pages). The invariant that makes every
// fallback possible: KDD always dispatches the data to RAID (write hits
// via WriteNoParity, misses via WritePages), so the current version of
// every page survives the loss of any cache page. What a lost cache page
// CAN take with it is the ability to repair stale parity cheaply — the
// delta XORs against the old version — so healing swaps the delta RMW
// for a full parity recompute from member data (Backend.ResyncRow).

// mediaRetries bounds how often an SSD read is retried on ErrMedia
// before the fallback path runs: transient glitches succeed on retry,
// persistent faults (latent errors, detected bit-rot) do not.
const mediaRetries = 2

// ssdRead reads one SSD cache page with bounded retry on media errors.
// The final outcome — one observation per call, regardless of retries —
// feeds the health state machine's circuit breaker (failover.go).
func (k *KDD) ssdRead(t sim.Time, lba int64, buf []byte) (sim.Time, error) {
	done, err := k.ssd.ReadPages(t, lba, 1, buf)
	for r := 0; err != nil && errors.Is(err, blockdev.ErrMedia) && r < mediaRetries; r++ {
		k.st.MediaRetries++
		done, err = k.ssd.ReadPages(done, lba, 1, buf)
	}
	if err != nil && errors.Is(err, blockdev.ErrMedia) {
		k.st.SSDMediaErrors++
		k.breakerObserve(true)
	} else if err == nil {
		k.breakerObserve(false)
	}
	return done, err
}

// recoverHit serves a cache hit whose SSD page(s) can no longer be read.
// The current data always lives on RAID too, so the read falls back
// there; the damaged slot is then healed — for an Old slot by healing
// the whole row, for a Clean slot by retiring the binding — and the
// bytes just read are re-admitted through the ordinary fill path. The
// retire-then-refill shape (never repair in place) means a crash tearing
// the repair write lands on a page no mapping trusts.
func (k *KDD) recoverHit(t sim.Time, lba int64, slot int32, buf []byte) (sim.Time, error) {
	k.st.MediaFallbacks++
	k.st.RAIDReads++
	done, err := k.backend.ReadPages(t, lba, 1, buf)
	if err != nil {
		return t, err
	}
	if k.frame.Slot(slot).State == cache.Old {
		c, err := k.healRow(done, lba)
		if err != nil {
			return t, err
		}
		done = sim.MaxTime(done, c)
	} else if err := k.retireSlot(done, slot); err != nil {
		return t, err
	}
	// The slot was released; re-admit so the next hit is served from
	// flash again (bytes-before-mapping, like any fill).
	k.fill(done, lba, buf)
	return done, nil
}

// retireSlot unbinds a Clean/Old slot and tears down any delta record,
// logging the free entry. Paths that would otherwise overwrite a mapped
// page in place with DIFFERENT bytes must retire it first: an in-place
// overwrite torn by a crash leaves stale bytes behind a mapping the
// metadata log already trusts — silent stale reads after recovery.
func (k *KDD) retireSlot(t sim.Time, slot int32) error {
	if od, ok := k.oldDeltas[slot]; ok {
		if od.staged {
			k.staging.Drop(k.cacheLBA(slot))
		} else {
			k.releaseDez(t, od.dez)
		}
		delete(k.oldDeltas, slot)
	}
	k.frame.Release(slot, true)
	k.trimSlot(t, slot)
	_, err := k.logPut(t, k.freeEntry(slot))
	return err
}

// healRow recovers every Old page of lba's parity row after a media
// error made its delta machinery unusable (a DAZ old copy or a DEZ delta
// page is gone). Parity goes first: the members always hold the current
// bytes (every write was dispatched), so a full recompute makes the row
// consistent no matter which cache page died. Only then is each Old
// peer's now-obsolete delta machinery torn down and its slot freed — no
// SSD data writes at all. A crash at any point leaves a state recovery
// already understands: peers still Old read correctly (their old copies
// were never overwritten), and the cleaner's delta RMW is gated on row
// staleness, so it cannot fold obsolete deltas into the fresh parity.
func (k *KDD) healRow(t sim.Time, lba int64) (sim.Time, error) {
	done, err := k.backend.ResyncRow(t, lba)
	if err != nil {
		return t, err
	}
	for _, p := range k.backend.RowPeers(lba) {
		slot := k.frame.Lookup(p)
		if slot == cache.NoSlot || k.frame.Slot(slot).State != cache.Old {
			continue
		}
		if err := k.retireSlot(t, slot); err != nil {
			return t, err
		}
	}
	k.st.RowsHealed++
	return done, nil
}

// writeHitHeal handles a write hit whose DAZ old copy is unreadable: no
// delta can be generated against it, so the row's pending deltas are
// healed away and this write degrades to the conventional parity path
// with a fresh write-allocate.
func (k *KDD) writeHitHeal(t sim.Time, lba int64, slot int32, buf []byte) (sim.Time, error) {
	k.st.MediaFallbacks++
	if k.frame.Slot(slot).State == cache.Old {
		if _, err := k.healRow(t, lba); err != nil {
			return t, err
		}
	} else if err := k.retireSlot(t, slot); err != nil {
		return t, err
	}
	return k.writeAllocate(t, lba, buf)
}
