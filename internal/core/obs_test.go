package core_test

import (
	"bytes"
	"testing"

	"kddcache/internal/core"
	"kddcache/internal/obs"
)

// TestTracerAndMetrics runs real traffic through a traced KDD instance
// and checks span balance, the JSONL trace, and the engine metrics.
func TestTracerAndMetrics(t *testing.T) {
	ob := obs.New()
	r := newRig(t, 1024, func(c *core.Config) { c.Tracer = ob.Tracer })
	if r.kdd.Tracer() != ob.Tracer {
		t.Fatal("Tracer() does not return the configured tracer")
	}

	for i := 0; i < 50; i++ {
		r.write(t, int64(i%20))
	}
	r.verifyCache(t)
	if _, err := r.kdd.Flush(0); err != nil {
		t.Fatal(err)
	}

	if err := ob.Tracer.Err(); err != nil {
		t.Fatalf("trace integrity: %v", err)
	}
	if n := ob.Tracer.OpenSpans(); n != 0 {
		t.Fatalf("%d spans left open", n)
	}
	recs, err := obs.ReadTrace(bytes.NewReader(ob.TraceJSONL()))
	if err != nil {
		t.Fatal(err)
	}
	roots := map[obs.Phase]int{}
	for _, rec := range recs {
		if rec.Parent == 0 {
			roots[rec.Phase]++
		}
	}
	if roots[obs.PhaseWrite] != 50 {
		t.Fatalf("trace has %d write roots, want 50", roots[obs.PhaseWrite])
	}
	if roots[obs.PhaseRead] == 0 || roots[obs.PhaseFlush] == 0 {
		t.Fatalf("missing read/flush roots: %v", roots)
	}

	reg := obs.NewRegistry()
	r.kdd.PublishMetrics(reg)
	obs.PublishCacheStats(reg, r.kdd.Stats())
	if err := reg.Validate(); err != nil {
		t.Fatal(err)
	}
	if v, ok := reg.Counter("kdd_ops_total"); !ok || v == 0 {
		t.Fatalf("kdd_ops_total = %d,%v, want >0", v, ok)
	}
	if v, ok := reg.Counter("metalog_pages_written_total"); !ok || v == 0 {
		t.Fatalf("metalog_pages_written_total = %d,%v, want >0", v, ok)
	}
}
