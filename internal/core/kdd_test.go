package core_test

import (
	"bytes"
	"testing"
	"testing/quick"

	"kddcache/internal/blockdev"
	"kddcache/internal/cache"
	"kddcache/internal/core"
	"kddcache/internal/delta"
	"kddcache/internal/raid"
	"kddcache/internal/sim"
)

// rig is a full data-mode KDD stack with a flat oracle.
type rig struct {
	ssd   *blockdev.NullDevice
	array *raid.Array
	kdd   *core.KDD
	cfg   core.Config

	oracle map[int64][]byte
	mut    *delta.Mutator
	rng    *sim.RNG
}

// newRig builds a 5-disk RAID-5 with a KDD cache of cachePages pages,
// ZRLE codec, 25% content locality.
func newRig(t *testing.T, cachePages int64, opts ...func(*core.Config)) *rig {
	t.Helper()
	var members []blockdev.Device
	for i := 0; i < 5; i++ {
		members = append(members, blockdev.NewNullDataDevice("d", 4096))
	}
	a, err := raid.New(raid.Config{Level: raid.Level5, ChunkPages: 8}, members)
	if err != nil {
		t.Fatal(err)
	}
	ssd := blockdev.NewNullDataDevice("ssd", cachePages+256)
	cfg := core.Config{
		SSD:        ssd,
		Backend:    a,
		CachePages: cachePages,
		Ways:       32,
		MetaStart:  0,
		MetaPages:  64,
		Codec:      delta.ZRLE{},
	}
	for _, o := range opts {
		o(&cfg)
	}
	k, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{
		ssd: ssd, array: a, kdd: k, cfg: cfg,
		oracle: make(map[int64][]byte),
		mut:    delta.NewMutator(5, 0.25),
		rng:    sim.NewRNG(42),
	}
}

// write issues a content-local update of lba through KDD.
func (r *rig) write(t *testing.T, lba int64) {
	t.Helper()
	page := make([]byte, blockdev.PageSize)
	if prev, ok := r.oracle[lba]; ok {
		copy(page, prev)
		r.mut.Mutate(page)
	} else {
		r.mut.FillRandom(page)
	}
	if _, err := r.kdd.Write(0, lba, page); err != nil {
		t.Fatalf("write %d: %v", lba, err)
	}
	r.oracle[lba] = page
}

// verifyCache checks read-your-writes through the cache.
func (r *rig) verifyCache(t *testing.T) {
	t.Helper()
	buf := make([]byte, blockdev.PageSize)
	for lba, want := range r.oracle {
		if _, err := r.kdd.Read(0, lba, buf); err != nil {
			t.Fatalf("read %d: %v", lba, err)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("lba %d: cache served wrong data", lba)
		}
	}
}

// verifyRAID checks the array contents directly (data is always
// dispatched to RAID in KDD).
func (r *rig) verifyRAID(t *testing.T) {
	t.Helper()
	buf := make([]byte, blockdev.PageSize)
	for lba, want := range r.oracle {
		if _, err := r.array.ReadPages(0, lba, 1, buf); err != nil {
			t.Fatalf("raid read %d: %v", lba, err)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("lba %d: RAID holds wrong data", lba)
		}
	}
}

func TestWriteMissThenHitBasics(t *testing.T) {
	r := newRig(t, 256)
	r.write(t, 10) // miss: parity write, cached clean
	st := r.kdd.Stats()
	if st.WriteMiss != 1 || st.WriteAllocs != 1 {
		t.Fatalf("miss accounting: %+v", st)
	}
	if r.array.StaleRows() != 0 {
		t.Fatal("write miss must not delay parity")
	}
	r.write(t, 10) // hit: no-parity write + staged delta
	st = r.kdd.Stats()
	if st.WriteHits != 1 || st.SmallWritesSaved != 1 {
		t.Fatalf("hit accounting: %+v", st)
	}
	if r.array.StaleRows() != 1 {
		t.Fatal("write hit should delay parity")
	}
	if r.kdd.Staging().Len() != 1 {
		t.Fatal("delta not staged")
	}
	r.verifyCache(t)
	r.verifyRAID(t)
	if err := r.kdd.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReadOldCombinesStagedDelta(t *testing.T) {
	r := newRig(t, 256)
	r.write(t, 5)
	r.write(t, 5) // now Old with staged delta
	buf := make([]byte, blockdev.PageSize)
	if _, err := r.kdd.Read(0, 5, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, r.oracle[5]) {
		t.Fatal("combine(old, staged delta) wrong")
	}
	if r.kdd.Stats().ReadHits != 1 {
		t.Fatal("old-page read not counted as hit")
	}
}

func TestDezCommitAndReadFromDez(t *testing.T) {
	r := newRig(t, 512)
	// Update many distinct pages so the staging buffer (4 pages = 16KB)
	// fills and commits DEZ pages.
	for lba := int64(0); lba < 100; lba++ {
		r.write(t, lba)
	}
	for lba := int64(0); lba < 100; lba++ {
		r.write(t, lba)
	}
	st := r.kdd.Stats()
	if st.DeltaCommits == 0 {
		t.Fatal("staging never committed a DEZ page")
	}
	if r.kdd.Frame().Count(cache.Delta) == 0 {
		t.Fatal("no delta pages in frame")
	}
	r.verifyCache(t) // many reads now combine from DEZ pages
	if err := r.kdd.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaCoalescingInvalidatesCommitted(t *testing.T) {
	r := newRig(t, 512)
	for lba := int64(0); lba < 60; lba++ {
		r.write(t, lba)
	}
	for lba := int64(0); lba < 60; lba++ {
		r.write(t, lba) // deltas staged/committed
	}
	// Third wave supersedes: committed DEZ deltas must be invalidated.
	for lba := int64(0); lba < 60; lba++ {
		r.write(t, lba)
	}
	r.verifyCache(t)
	if err := r.kdd.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCleanerRepairsParityAndReclaims(t *testing.T) {
	r := newRig(t, 256, func(c *core.Config) {
		c.HighWater = 0.15
		c.LowWater = 0.05
	})
	for wave := 0; wave < 2; wave++ {
		for lba := int64(0); lba < 120; lba++ {
			r.write(t, lba)
		}
	}
	st := r.kdd.Stats()
	if st.ParityUpdates == 0 || st.Reclaims == 0 {
		t.Fatalf("cleaner never ran: %+v", st)
	}
	r.verifyCache(t)
	// Force-flush the rest, then verify the array is self-consistent.
	if _, err := r.kdd.Flush(0); err != nil {
		t.Fatal(err)
	}
	if r.array.StaleRows() != 0 {
		t.Fatalf("flush left %d stale rows", r.array.StaleRows())
	}
	if r.kdd.DirtyPages() != 0 {
		t.Fatalf("flush left %d dirty pages", r.kdd.DirtyPages())
	}
	r.array.FailDisk(1)
	r.verifyRAID(t) // degraded reads must reconstruct everything
	if err := r.kdd.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestParityReconstructWhenRowFullyCached(t *testing.T) {
	r := newRig(t, 1024)
	// A row is 4 pages (4 data chunks, chunk=8 → peers at same offset).
	peers := r.array.RowPeers(0)
	if len(peers) != 4 {
		t.Fatalf("peers = %v", peers)
	}
	for _, p := range peers {
		r.write(t, p) // admit all — fully cached row
	}
	for _, p := range peers {
		r.write(t, p) // update all — all Old now
	}
	before := r.array.Stats().RebuildReads
	if _, err := r.kdd.Flush(0); err != nil {
		t.Fatal(err)
	}
	// Reconstruct-write reads nothing from disk.
	if got := r.array.Stats().RebuildReads; got != before {
		t.Fatalf("reconstruct path read %d disk pages", got-before)
	}
	r.array.FailDisk(0)
	r.verifyRAID(t)
}

func TestRawDeltaFallbackForIncompressibleWrites(t *testing.T) {
	r := newRig(t, 256)
	lba := int64(3)
	page := make([]byte, blockdev.PageSize)
	r.mut.FillRandom(page)
	if _, err := r.kdd.Write(0, lba, page); err != nil {
		t.Fatal(err)
	}
	r.oracle[lba] = append([]byte(nil), page...)
	// Completely new random content: XOR is dense, delta incompressible.
	page2 := make([]byte, blockdev.PageSize)
	r.mut.FillRandom(page2)
	if _, err := r.kdd.Write(0, lba, page2); err != nil {
		t.Fatal(err)
	}
	r.oracle[lba] = page2
	r.verifyCache(t)
	if _, err := r.kdd.Flush(0); err != nil {
		t.Fatal(err)
	}
	r.array.FailDisk(2)
	r.verifyRAID(t)
}

func TestEvictionPressureSmallCache(t *testing.T) {
	r := newRig(t, 64) // tiny: 2 sets of 32
	for i := 0; i < 2000; i++ {
		r.write(t, int64(r.rng.Uint64n(300)))
	}
	if r.kdd.Stats().Evictions == 0 {
		t.Fatal("no evictions under pressure")
	}
	r.verifyCache(t)
	r.verifyRAID(t)
	if err := r.kdd.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomMixedOpsOracleProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := newRig(t, 128)
		rng := sim.NewRNG(seed)
		buf := make([]byte, blockdev.PageSize)
		for i := 0; i < 800; i++ {
			lba := int64(rng.Uint64n(500))
			switch {
			case rng.Float64() < 0.55:
				page := make([]byte, blockdev.PageSize)
				if prev, ok := r.oracle[lba]; ok {
					copy(page, prev)
					r.mut.Mutate(page)
				} else {
					r.mut.FillRandom(page)
				}
				if _, err := r.kdd.Write(0, lba, page); err != nil {
					t.Logf("write: %v", err)
					return false
				}
				r.oracle[lba] = page
			default:
				want, ok := r.oracle[lba]
				if _, err := r.kdd.Read(0, lba, buf); err != nil {
					t.Logf("read: %v", err)
					return false
				}
				if ok && !bytes.Equal(buf, want) {
					t.Logf("read mismatch at %d", lba)
					return false
				}
			}
			if i%200 == 199 {
				if _, err := r.kdd.Clean(0, false); err != nil {
					return false
				}
			}
		}
		if err := r.kdd.CheckInvariants(); err != nil {
			t.Logf("invariants: %v", err)
			return false
		}
		if _, err := r.kdd.Flush(0); err != nil {
			return false
		}
		return r.array.StaleRows() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

func TestTimingModeWithModelledCodec(t *testing.T) {
	// Timing mode: nil buffers, modelled Gaussian deltas — the simulator
	// configuration for Figures 4-8.
	var members []blockdev.Device
	for i := 0; i < 5; i++ {
		members = append(members, blockdev.NewNullDevice("d", 65536))
	}
	a, err := raid.New(raid.Config{Level: raid.Level5, ChunkPages: 16}, members)
	if err != nil {
		t.Fatal(err)
	}
	ssd := blockdev.NewNullDevice("ssd", 8192)
	k, err := core.New(core.Config{
		SSD: ssd, Backend: a, CachePages: 4096, Ways: 64,
		MetaStart: 0, MetaPages: 48,
		Codec: delta.NewModelled(3, 0.25),
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(8)
	for i := 0; i < 30000; i++ {
		lba := int64(rng.Uint64n(8000))
		if rng.Float64() < 0.3 {
			if _, err := k.Read(0, lba, nil); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := k.Write(0, lba, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := k.Stats()
	if st.DeltaCommits == 0 || st.MetaWrites == 0 {
		t.Fatalf("timing-mode KDD idle: %+v", st)
	}
	if st.SSDWrites() >= st.Requests() {
		t.Fatalf("KDD wrote %d pages for %d requests; delta packing absent",
			st.SSDWrites(), st.Requests())
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Flush(0); err != nil {
		t.Fatal(err)
	}
	if a.StaleRows() != 0 {
		t.Fatal("stale rows after flush")
	}
}

func TestNameReflectsCodec(t *testing.T) {
	r := newRig(t, 64)
	if r.kdd.Name() != "KDD(zrle)" {
		t.Fatalf("name = %s", r.kdd.Name())
	}
	r2 := newRig(t, 64, func(c *core.Config) { c.Codec = delta.NewModelled(1, 0.12) })
	if r2.kdd.Name() != "KDD-12%" {
		t.Fatalf("name = %s", r2.kdd.Name())
	}
}

func TestConfigValidation(t *testing.T) {
	good := func() core.Config {
		return core.Config{
			SSD:     blockdev.NewNullDevice("s", 4096),
			Backend: mustArray(t),
			Codec:   delta.ZRLE{}, CachePages: 256, Ways: 32,
			MetaStart: 0, MetaPages: 16,
		}
	}
	if _, err := core.New(good()); err != nil {
		t.Fatal(err)
	}
	bads := []func(*core.Config){
		func(c *core.Config) { c.SSD = nil },
		func(c *core.Config) { c.Backend = nil },
		func(c *core.Config) { c.Codec = nil },
		func(c *core.Config) { c.CachePages = 8 },
		func(c *core.Config) { c.MetaPages = 0 },
		func(c *core.Config) { c.CachePages = 100000 },
		func(c *core.Config) { c.HighWater = 0.1; c.LowWater = 0.2 },
		func(c *core.Config) { c.FixedDEZSets = 100 },
	}
	for i, b := range bads {
		cfg := good()
		b(&cfg)
		if _, err := core.New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func mustArray(t *testing.T) *raid.Array {
	t.Helper()
	var members []blockdev.Device
	for i := 0; i < 5; i++ {
		members = append(members, blockdev.NewNullDevice("d", 4096))
	}
	a, err := raid.New(raid.Config{Level: raid.Level5, ChunkPages: 8}, members)
	if err != nil {
		t.Fatal(err)
	}
	return a
}
