package core_test

import (
	"testing"

	"kddcache/internal/blockdev"
	"kddcache/internal/core"
	"kddcache/internal/sim"
)

func TestSelectiveAdmissionFiltersOneTouch(t *testing.T) {
	r := newRig(t, 256, func(c *core.Config) { c.SelectiveAdmission = true })
	// First touch of every page: nothing is admitted.
	for lba := int64(0); lba < 50; lba++ {
		r.write(t, lba)
	}
	st := r.kdd.Stats()
	if st.WriteAllocs != 0 {
		t.Fatalf("one-touch pages were cached: %d allocs", st.WriteAllocs)
	}
	if st.AdmissionRejects != 50 {
		t.Fatalf("rejects = %d, want 50", st.AdmissionRejects)
	}
	// Second touch: admitted.
	for lba := int64(0); lba < 50; lba++ {
		r.write(t, lba)
	}
	st = r.kdd.Stats()
	if st.WriteAllocs != 50 {
		t.Fatalf("second-touch pages not cached: %d allocs", st.WriteAllocs)
	}
	// Third touch: write hits with deltas.
	for lba := int64(0); lba < 50; lba++ {
		r.write(t, lba)
	}
	if r.kdd.Stats().WriteHits != 50 {
		t.Fatalf("write hits = %d", r.kdd.Stats().WriteHits)
	}
	r.verifyCache(t)
	r.verifyRAID(t)
	if err := r.kdd.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSelectiveAdmissionReducesAllocationWrites(t *testing.T) {
	// A scan-heavy workload (mostly one-touch pages, small hot set): the
	// filter must cut SSD writes substantially without hurting
	// correctness.
	run := func(selective bool) (int64, float64) {
		r := newRig(t, 128, func(c *core.Config) { c.SelectiveAdmission = selective })
		rng := sim.NewRNG(77)
		for i := 0; i < 4000; i++ {
			var lba int64
			if rng.Float64() < 0.5 {
				lba = int64(rng.Uint64n(64)) // hot set
			} else {
				lba = 64 + int64(i) // scan: every page once
			}
			r.write(t, lba)
		}
		r.verifyCache(t)
		return r.kdd.Stats().SSDWrites(), r.kdd.Stats().HitRatio()
	}
	always, hitAlways := run(false)
	larc, hitLARC := run(true)
	if larc >= always {
		t.Fatalf("selective admission did not reduce writes: %d vs %d", larc, always)
	}
	if hitLARC < hitAlways*0.8 {
		t.Fatalf("selective admission destroyed hit ratio: %.3f vs %.3f", hitLARC, hitAlways)
	}
}

func TestGhostLRUBoundedAndRecency(t *testing.T) {
	r := newRig(t, 256, func(c *core.Config) { c.SelectiveAdmission = true })
	// Touch far more unique pages than the ghost capacity (= cache pages
	// = 256): the ghost must stay bounded, and pages evicted from the
	// ghost need two fresh touches again.
	for lba := int64(0); lba < 2000; lba++ {
		r.write(t, lba)
	}
	st := r.kdd.Stats()
	if st.WriteAllocs != 0 {
		t.Fatalf("unique-scan admitted %d pages", st.WriteAllocs)
	}
	// Page 0 was evicted from the ghost long ago: next touch is still a
	// first touch.
	r.write(t, 0)
	if r.kdd.Stats().WriteAllocs != 0 {
		t.Fatal("ghost retained an entry beyond its capacity")
	}
	r.write(t, 0)
	if r.kdd.Stats().WriteAllocs != 1 {
		t.Fatal("second touch within window not admitted")
	}
}

func TestSelectiveAdmissionCrashRecovery(t *testing.T) {
	r := newRig(t, 128, func(c *core.Config) { c.SelectiveAdmission = true })
	for lba := int64(0); lba < 60; lba++ {
		r.write(t, lba)
		r.write(t, lba)
		r.write(t, lba)
	}
	r.crash(t)
	r.verifyCache(t)
	if err := r.kdd.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	_ = blockdev.PageSize
}
