package core_test

import (
	"testing"

	"kddcache/internal/blockdev"
	"kddcache/internal/core"
	"kddcache/internal/delta"
	"kddcache/internal/hdd"
	"kddcache/internal/raid"
	"kddcache/internal/sim"
)

// latencyRig builds a KDD stack over fixed-latency null devices so the
// paper's latency arguments can be asserted exactly:
// disk ops cost 10ms, SSD ops 0.3ms.
func latencyRig(t *testing.T) (*core.KDD, *raid.Array) {
	t.Helper()
	var members []blockdev.Device
	for i := 0; i < 5; i++ {
		d := blockdev.NewNullDevice("d", 65536)
		d.Latency = 10 * sim.Millisecond
		members = append(members, d)
	}
	a, err := raid.New(raid.Config{Level: raid.Level5, ChunkPages: 16}, members)
	if err != nil {
		t.Fatal(err)
	}
	ssd := blockdev.NewNullDevice("ssd", 8192)
	ssd.Latency = 300 * sim.Microsecond
	k, err := core.New(core.Config{
		SSD: ssd, Backend: a, CachePages: 4096, Ways: 64,
		MetaStart: 0, MetaPages: 64,
		Codec: delta.NewModelled(1, 0.25),
	})
	if err != nil {
		t.Fatal(err)
	}
	return k, a
}

// TestWriteMissPaysSmallWritePenalty asserts the 4-I/O read-modify-write
// cost structure on a miss: two serialized disk phases = 20ms.
func TestWriteMissPaysSmallWritePenalty(t *testing.T) {
	k, _ := latencyRig(t)
	done, err := k.Write(0, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if done < 20*sim.Millisecond {
		t.Fatalf("write miss completed in %v; RMW needs 2 disk phases (20ms)", done)
	}
}

// TestWriteHitSkipsParity asserts the paper's headline latency win: a
// write hit is a single disk write (~10ms), not an RMW (~20ms), because
// the parity update is deferred.
func TestWriteHitSkipsParity(t *testing.T) {
	k, a := latencyRig(t)
	if _, err := k.Write(0, 100, nil); err != nil {
		t.Fatal(err)
	}
	start := 1000 * sim.Millisecond
	done, err := k.Write(start, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	lat := done - start
	if lat != 10*sim.Millisecond {
		t.Fatalf("write hit latency %v, want exactly one 10ms disk write", lat)
	}
	if a.StaleRows() != 1 {
		t.Fatal("parity not deferred")
	}
}

// TestReadHitServedFromFlash asserts read hits cost SSD latency, not disk
// latency.
func TestReadHitServedFromFlash(t *testing.T) {
	k, _ := latencyRig(t)
	if _, err := k.Write(0, 100, nil); err != nil {
		t.Fatal(err)
	}
	start := 1000 * sim.Millisecond
	done, err := k.Read(start, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	lat := done - start
	if lat >= sim.Millisecond {
		t.Fatalf("read hit latency %v; should be flash-speed", lat)
	}
}

// TestReadOldCombineCost asserts the old+delta combine adds only the
// documented "tens of microseconds" on top of the flash reads.
func TestReadOldCombineCost(t *testing.T) {
	k, _ := latencyRig(t)
	if _, err := k.Write(0, 100, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Write(sim.Second, 100, nil); err != nil {
		t.Fatal(err)
	}
	start := 10 * sim.Second
	done, err := k.Read(start, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	lat := done - start
	// One or two 300µs flash reads + 20µs combine.
	if lat > 700*sim.Microsecond {
		t.Fatalf("old-page read hit cost %v; combine should be cheap", lat)
	}
	if lat < 300*sim.Microsecond {
		t.Fatalf("old-page read hit cost %v; must include a flash read", lat)
	}
}

// TestCleanerBackgroundWorkDelaysForeground asserts cleaning shares the
// disk queues (HDD models queue, unlike null devices): a foreground
// request issued while a forced clean is in flight waits behind the
// parity repairs.
func TestCleanerBackgroundWorkDelaysForeground(t *testing.T) {
	var members []blockdev.Device
	for i := 0; i < 5; i++ {
		members = append(members, hdd.New("d", hdd.DefaultConfig(65536), uint64(i+1)))
	}
	a, err := raid.New(raid.Config{Level: raid.Level5, ChunkPages: 16}, members)
	if err != nil {
		t.Fatal(err)
	}
	k, err := core.New(core.Config{
		SSD: blockdev.NewNullDevice("ssd", 8192), Backend: a,
		CachePages: 4096, Ways: 64, MetaStart: 0, MetaPages: 64,
		Codec: delta.NewModelled(1, 0.25),
	})
	if err != nil {
		t.Fatal(err)
	}
	var now sim.Time
	for lba := int64(0); lba < 50; lba++ {
		if now, err = k.Write(now, lba, nil); err != nil {
			t.Fatal(err)
		}
	}
	tEnd := now + sim.Second
	for lba := int64(0); lba < 50; lba++ {
		if _, err := k.Write(tEnd, lba, nil); err != nil {
			t.Fatal(err)
		}
	}
	busyBefore := sim.Time(0)
	for _, m := range members {
		busyBefore += m.(*hdd.Disk).BusyTime()
	}
	cleanDone, err := k.Clean(tEnd, true)
	if err != nil {
		t.Fatal(err)
	}
	if cleanDone <= tEnd {
		t.Fatal("forced clean did no work")
	}
	busyAfter := sim.Time(0)
	for _, m := range members {
		busyAfter += m.(*hdd.Disk).BusyTime()
	}
	// The parity repairs consumed real disk time on the shared queues,
	// which is what delays foreground requests issued meanwhile.
	if busyAfter-busyBefore < 50*sim.Millisecond {
		t.Fatalf("cleaner consumed only %v of disk time", busyAfter-busyBefore)
	}
	// And a foreground read issued at the same instant still completes
	// (sharing, not starvation).
	if _, err := k.Read(tEnd, 60000, nil); err != nil {
		t.Fatal(err)
	}
}

// TestStagingBufferSizeControlsCommitCadence: a bigger NVRAM staging
// buffer packs the same deltas into the same number of DEZ pages but
// commits later.
func TestStagingBufferSizeControlsCommitCadence(t *testing.T) {
	commitsAt := func(stagingBytes int) int64 {
		var members []blockdev.Device
		for i := 0; i < 5; i++ {
			members = append(members, blockdev.NewNullDevice("d", 65536))
		}
		a, err := raid.New(raid.Config{Level: raid.Level5, ChunkPages: 16}, members)
		if err != nil {
			t.Fatal(err)
		}
		k, err := core.New(core.Config{
			SSD: blockdev.NewNullDevice("ssd", 8192), Backend: a,
			CachePages: 4096, Ways: 64, MetaStart: 0, MetaPages: 64,
			Codec:        delta.NewModelled(1, 0.25),
			StagingBytes: stagingBytes,
		})
		if err != nil {
			t.Fatal(err)
		}
		for lba := int64(0); lba < 100; lba++ {
			if _, err := k.Write(0, lba, nil); err != nil {
				t.Fatal(err)
			}
		}
		for lba := int64(0); lba < 100; lba++ {
			if _, err := k.Write(0, lba, nil); err != nil {
				t.Fatal(err)
			}
		}
		return k.Stats().DeltaCommits
	}
	small := commitsAt(blockdev.PageSize)
	large := commitsAt(16 * blockdev.PageSize)
	if small == 0 || large == 0 {
		t.Fatalf("no commits: small=%d large=%d", small, large)
	}
	if large > small {
		t.Fatalf("larger staging buffer committed MORE pages (%d > %d)", large, small)
	}
}
