package core_test

import (
	"testing"

	"kddcache/internal/blockdev"
)

// driveUntilHealthy issues mixed foreground traffic until the array's
// rebuild window closes (or the op budget runs out), returning the number
// of operations it took.
func (r *rig) driveUntilHealthy(t *testing.T, maxOps int) int {
	t.Helper()
	buf := make([]byte, blockdev.PageSize)
	for i := 0; i < maxOps; i++ {
		if r.array.Healthy() {
			return i
		}
		lba := int64(i % 120)
		if i%3 == 0 {
			r.write(t, lba)
		} else {
			if _, err := r.kdd.Read(0, lba, buf); err != nil {
				t.Fatalf("read %d during rebuild: %v", lba, err)
			}
		}
	}
	t.Fatalf("rebuild never completed within %d foreground ops", maxOps)
	return maxOps
}

// scrubCleanCore asserts parity is consistent everywhere and nothing was
// lost.
func (r *rig) scrubCleanCore(t *testing.T) {
	t.Helper()
	_, rep, err := r.array.Scrub(0)
	if err != nil {
		t.Fatalf("scrub: %v", err)
	}
	if rep.ParityFixed != 0 || len(rep.Unrecoverable) != 0 {
		t.Fatalf("scrub found damage after rebuild: fixed=%d unrecoverable=%v",
			rep.ParityFixed, rep.Unrecoverable)
	}
}

func TestPumpAutoAttachesSpareAndRebuildsOnline(t *testing.T) {
	r := newRig(t, 256)
	for lba := int64(0); lba < 120; lba++ {
		r.write(t, lba)
	}
	for lba := int64(0); lba < 120; lba += 2 {
		r.write(t, lba) // stage deltas: the attach must fold them first
	}
	if err := r.array.AddSpare(blockdev.NewNullDataDevice("spare", 4096)); err != nil {
		t.Fatal(err)
	}
	r.array.FailDisk(1)

	r.driveUntilHealthy(t, 20000)

	st := r.kdd.Stats()
	if st.SpareAttaches != 1 {
		t.Fatalf("SpareAttaches = %d, want 1", st.SpareAttaches)
	}
	if st.RebuildsDone != 1 {
		t.Fatalf("RebuildsDone = %d, want 1", st.RebuildsDone)
	}
	// Online means interleaved: the whole disk must not have gone in one
	// burst between two foreground ops.
	if st.RebuildSteps < 10 {
		t.Fatalf("rebuild finished in %d steps; not interleaved", st.RebuildSteps)
	}
	if r.array.StaleRows() != 0 {
		t.Fatalf("stale rows after rebuild: %d", r.array.StaleRows())
	}
	if lost := r.array.LostRows(); len(lost) != 0 {
		t.Fatalf("lost rows after single-failure rebuild: %v", lost)
	}
	r.verifyCache(t)
	r.verifyRAID(t)
	r.scrubCleanCore(t)
}

func TestPumpThrottlesUnderForegroundPressure(t *testing.T) {
	// With pressure detection, ops that hit the RAID refill at the min
	// rate; a pure cache-hit stream refills at the max rate. Compare the
	// ops-to-completion of the two regimes on identical geometry.
	complete := func(misses bool) int {
		r := newRig(t, 256)
		for lba := int64(0); lba < 120; lba++ {
			r.write(t, lba)
		}
		if _, err := r.kdd.Flush(0); err != nil {
			t.Fatal(err)
		}
		if err := r.array.AddSpare(blockdev.NewNullDataDevice("spare", 4096)); err != nil {
			t.Fatal(err)
		}
		r.array.FailDisk(1)
		buf := make([]byte, blockdev.PageSize)
		for i := 0; i < 40000; i++ {
			if r.array.Healthy() {
				return i
			}
			lba := int64(i % 120)
			if misses {
				// Far outside the cached set: every read misses and hits
				// the array.
				lba = 1000 + int64(i%2000)
			}
			if _, err := r.kdd.Read(0, lba, buf); err != nil {
				t.Fatalf("read: %v", err)
			}
		}
		t.Fatal("rebuild never completed")
		return 0
	}
	hot := complete(false)
	cold := complete(true)
	if cold <= hot {
		t.Fatalf("rebuild under RAID pressure (%d ops) was not slower than on cache hits (%d ops)", cold, hot)
	}
}

func TestRebuildCheckpointSurvivesCrash(t *testing.T) {
	r := newRig(t, 256)
	for lba := int64(0); lba < 120; lba++ {
		r.write(t, lba)
	}
	if err := r.array.AddSpare(blockdev.NewNullDataDevice("spare", 4096)); err != nil {
		t.Fatal(err)
	}
	r.array.FailDisk(1)

	// Make partial progress, then crash.
	buf := make([]byte, blockdev.PageSize)
	for i := 0; i < 200; i++ {
		if _, err := r.kdd.Read(0, int64(i%120), buf); err != nil {
			t.Fatal(err)
		}
	}
	if !r.array.RebuildActive() {
		t.Fatal("pump never opened the rebuild window")
	}
	_, wmBefore, _ := r.array.RebuildTarget()
	if wmBefore == 0 {
		t.Fatal("no rebuild progress before the crash")
	}

	// The watermark is volatile: a power failure wipes it.
	r.array.CrashRebuildState()
	r.crash(t)

	disk, wm, active := r.array.RebuildTarget()
	if !active {
		t.Fatal("Restore did not resume the rebuild from its checkpoint")
	}
	if disk != 1 {
		t.Fatalf("resumed rebuild targets disk %d, want 1", disk)
	}
	if wm == 0 || wm > wmBefore {
		t.Fatalf("resumed watermark %d, want (0, %d]", wm, wmBefore)
	}

	r.driveUntilHealthy(t, 20000)
	if lost := r.array.LostRows(); len(lost) != 0 {
		t.Fatalf("lost rows after resumed rebuild: %v", lost)
	}
	r.verifyCache(t)
	r.verifyRAID(t)
	r.scrubCleanCore(t)
}
