package core

import "kddcache/internal/obs"

// Tracer returns the tracer threaded through this instance (nil when
// tracing is disabled). The harness uses it to wire chained layers.
func (k *KDD) Tracer() *obs.Tracer { return k.tr }

// PublishMetrics writes the engine's internal state into reg: health
// machine, cleaner gauges, NVRAM staging occupancy, and metadata-log
// counters. The policy-neutral request/traffic counters are published
// separately via obs.PublishCacheStats on Stats().
func (k *KDD) PublishMetrics(reg *obs.Registry) {
	reg.SetGauge("kdd_health_state", "Cache health state (0=Normal 1=Degraded 2=Bypass 3=Rebuilding).", float64(k.health))
	reg.SetGauge("kdd_dirty_pages", "Old+delta page population (the cleaner's gauge).", float64(k.DirtyPages()))
	reg.SetGauge("kdd_cache_pages", "Configured cache data capacity in pages.", float64(k.cfg.CachePages))
	reg.SetCounter("kdd_ops_total", "Top-level operations processed (the breaker's clock).", k.opSeq)
	reg.SetGauge("kdd_breaker_window_failures", "SSD read failures in the breaker's sliding window.", float64(k.breakerFail))

	reg.SetCounter("kdd_rebuild_steps_total", "Member-rebuild steps pumped between foreground operations.", k.st.RebuildSteps)
	reg.SetCounter("kdd_rebuild_rows_pumped_total", "Member rows reconstructed by pumped rebuild steps.", k.st.RebuildRows)
	reg.SetCounter("kdd_spare_attaches_total", "Hot spares auto-attached to failed members.", k.st.SpareAttaches)
	reg.SetGauge("kdd_rebuild_tokens", "Accumulated rebuild-row budget in the pacing bucket.", float64(k.rbTokens))

	reg.SetGauge("kdd_nvram_staged_bytes", "Bytes of deltas staged in NVRAM.", float64(k.staging.Bytes()))
	reg.SetGauge("kdd_nvram_staged_entries", "Delta entries staged in NVRAM.", float64(k.staging.Len()))

	if k.log != nil {
		ls := k.log.Stats()
		reg.SetCounter("metalog_pages_written_total", "Metadata log pages written to flash.", ls.PagesWritten)
		reg.SetCounter("metalog_entries_total", "Metadata entries appended.", ls.EntriesLogged)
		reg.SetCounter("metalog_gc_runs_total", "Metadata log GC runs.", ls.GCRuns)
		reg.SetCounter("metalog_gc_reinserted_entries_total", "Live entries reinserted by log GC.", ls.ReinsertedEntries)
		reg.SetCounter("metalog_recoveries_total", "Log recovery scans performed.", ls.Recoveries)
		reg.SetGauge("metalog_live_pages", "Live pages in the circular metadata log.", float64(k.log.LivePages()))
		reg.SetGauge("metalog_buffered_entries", "Entries buffered in NVRAM awaiting a page flush.", float64(len(k.log.BufferedEntries())))
	}
}
