package core

import (
	"errors"
	"fmt"

	"kddcache/internal/blockdev"
	"kddcache/internal/cache"
	"kddcache/internal/delta"
	"kddcache/internal/metalog"
	"kddcache/internal/nvram"
	"kddcache/internal/obs"
	"kddcache/internal/sim"
)

// Read implements cache.Policy (§III-A): misses fill DAZ; hits on Clean
// pages read straight from flash; hits on Old pages combine the cached
// old version with the newest delta — read concurrently from DAZ and DEZ
// thanks to the SSD's internal parallelism.
//
// A fail-stop of the cache device anywhere underneath does not surface:
// the health machinery fails over to pass-through and the read is served
// from the RAID, which always holds the current data.
func (k *KDD) Read(t sim.Time, lba int64, buf []byte) (done sim.Time, err error) {
	var sp obs.Span
	if k.tr != nil {
		sp = k.tr.BeginLBA(t, obs.PhaseRead, lba)
	}
	if err = k.preOp(t); err != nil {
		sp.End(t)
		return t, err
	}
	k.st.Reads++
	if k.passThrough() {
		done, err = k.passRead(t, lba, buf)
	} else {
		done, err = k.readCached(t, lba, buf, true)
		if err != nil && k.ssdFault(err) {
			k.failover(t, HealthBypass)
			done, err = k.passRead(t, lba, buf)
		}
	}
	if err != nil {
		sp.End(done)
		return done, err
	}
	// Background rebuild work rides behind the response (like maybeClean):
	// it shares the disks from `done` onward but never extends the
	// operation's own completion time.
	k.pumpRebuild(done)
	sp.End(done)
	return done, nil
}

// readCached is the cache-enabled read path. With admit false (a QoS
// bypass verdict) a miss is served straight from the array with no
// read-fill and no ghost-filter update; hits are served normally either
// way — the cached copy is current, so serving it is always coherent.
func (k *KDD) readCached(t sim.Time, lba int64, buf []byte, admit bool) (sim.Time, error) {
	slot := k.frame.Lookup(lba)
	if slot == cache.NoSlot {
		k.st.ReadMisses++
		k.st.RAIDReads++
		done, err := k.backend.ReadPages(t, lba, 1, buf)
		if err != nil {
			return t, err
		}
		if admit {
			k.fill(done, lba, buf)
		}
		return done, nil
	}
	k.st.ReadHits++
	k.frame.Touch(slot)
	switch k.frame.Slot(slot).State {
	case cache.Clean:
		sp := k.tr.BeginLBA(t, obs.PhaseDAZRead, lba)
		done, err := k.ssdRead(t, k.cacheLBA(slot), buf)
		sp.End(done)
		if errors.Is(err, blockdev.ErrMedia) {
			return k.recoverHit(t, lba, slot, buf)
		}
		return done, err
	case cache.Old:
		done, err := k.readOld(t, lba, slot, buf)
		if errors.Is(err, blockdev.ErrMedia) {
			return k.recoverHit(t, lba, slot, buf)
		}
		return done, err
	default:
		return t, fmt.Errorf("core: lookup hit %v slot for lba %d",
			k.frame.Slot(slot).State, lba)
	}
}

// readOld serves a hit on an Old page: old data ⊕ delta.
func (k *KDD) readOld(t sim.Time, lba int64, slot int32, buf []byte) (sim.Time, error) {
	od, ok := k.oldDeltas[slot]
	if !ok {
		return t, fmt.Errorf("%w: old slot %d has no delta record", ErrNotCombinable, slot)
	}
	var oldBuf, dezBuf []byte
	if k.dataMode && buf != nil {
		oldBuf = blockdev.GetPage() // fully overwritten by the DAZ read
	}
	// Both scratch pages are dead once ApplyAny has combined them into
	// buf (d.Bytes may alias dezBuf until then), so release on any exit.
	defer func() {
		blockdev.PutPage(oldBuf)
		blockdev.PutPage(dezBuf)
	}()
	// Read the old version from DAZ.
	spD := k.tr.BeginLBA(t, obs.PhaseDAZRead, lba)
	done, err := k.ssdRead(t, k.cacheLBA(slot), oldBuf)
	spD.End(done)
	if err != nil {
		return t, err
	}
	var d delta.Delta
	if od.staged {
		sd, ok := k.staging.Get(k.cacheLBA(slot))
		if !ok {
			return t, fmt.Errorf("%w: staged delta for slot %d missing", ErrNotCombinable, slot)
		}
		d = sd.D
	} else {
		// Read the DEZ page concurrently with the DAZ read (issued at t).
		if k.dataMode && buf != nil {
			dezBuf = blockdev.GetPage() // fully overwritten by the DEZ read
		}
		spZ := k.tr.BeginLBA(t, obs.PhaseDEZRead, lba)
		c, err := k.ssdRead(t, k.cacheLBA(od.dez), dezBuf)
		spZ.End(c)
		if err != nil {
			return t, err
		}
		done = sim.MaxTime(done, c)
		d = delta.Delta{Len: od.length, Raw: od.raw}
		if dezBuf != nil {
			d.Bytes = dezBuf[od.off : od.off+od.length]
		}
	}
	if k.dataMode && buf != nil {
		if err := delta.ApplyAny(k.codec, oldBuf, d, buf); err != nil {
			return t, fmt.Errorf("%w: %v", ErrNotCombinable, err)
		}
	}
	// Decompress+combine costs "tens of microseconds" (§IV-B2).
	spC := k.tr.Begin(done, obs.PhaseCombine)
	done += 20 * sim.Microsecond
	spC.End(done)
	return done, nil
}

// admitMiss applies the optional LARC-style filter: only pages seen twice
// within the ghost window are worth an allocation write.
func (k *KDD) admitMiss(lba int64) bool {
	if k.ghost == nil {
		return true
	}
	if k.ghost.Admit(lba) {
		return true
	}
	k.st.AdmissionRejects++
	return false
}

// fill admits a page read from RAID into DAZ (read-fill).
func (k *KDD) fill(done sim.Time, lba int64, buf []byte) {
	if !k.admitMiss(lba) {
		return
	}
	slot := k.allocDAZ(done, lba)
	if slot == cache.NoSlot {
		return
	}
	// Bytes on flash BEFORE the mapping: a fill whose write failed (or was
	// torn by a crash) must stay invisible, or recovery would rebuild a
	// Clean mapping onto a page that was never written.
	sp := k.tr.BeginLBA(done, obs.PhaseFill, lba)
	c, err := k.ssd.WritePages(done, k.cacheLBA(slot), 1, buf)
	if err != nil {
		sp.End(done)
		// A fill is best-effort, but a fail-stop here must not be lost:
		// flag it so the next operation fails over instead of grinding
		// through a dead device.
		k.noteSwallowed(err)
		return // slot stays Free; the fill is just skipped
	}
	k.frame.Insert(lba, slot, cache.Clean)
	k.st.ReadFills++
	mc, err := k.logPut(done, k.cleanEntry(slot, lba))
	if err != nil {
		k.stick(fmt.Errorf("core: logging read-fill of lba %d: %w", lba, err))
	}
	sp.End(sim.MaxTime(c, mc))
}

// Write implements cache.Policy (§III-A).
//
// Miss: data cached in DAZ and written to RAID with a conventional parity
// update. Hit: the data goes to RAID withOUT a parity update, and the
// compressed XOR of the cached old version and the new data is staged for
// DEZ. The response completes when the RAID data write completes — delta
// generation overlaps the (much slower) disk write (§IV-B2).
func (k *KDD) Write(t sim.Time, lba int64, buf []byte) (done sim.Time, err error) {
	var sp obs.Span
	if k.tr != nil {
		sp = k.tr.BeginLBA(t, obs.PhaseWrite, lba)
	}
	if err = k.preOp(t); err != nil {
		sp.End(t)
		return t, err
	}
	k.st.Writes++
	if k.passThrough() {
		done, err = k.passWrite(t, lba, buf)
	} else {
		done, err = k.writeCached(t, lba, buf, true)
		if err != nil && k.ssdFault(err) {
			// The cache device died somewhere inside the write. Fail over
			// (folding any stale parity) and re-issue the write conventionally:
			// a duplicate RAID data write is content-idempotent, and the fold
			// has already made the row's parity consistent.
			k.failover(t, HealthBypass)
			done, err = k.passWrite(t, lba, buf)
		}
	}
	if err != nil {
		sp.End(done)
		return done, err
	}
	k.pumpRebuild(done)
	sp.End(done)
	return done, nil
}

// writeCached is the cache-enabled write path. With admit false (a QoS
// bypass verdict) a miss goes write-through — conventional RAID write,
// no allocation, no ghost-filter update — while hits still take the
// normal delta path: an already-cached page must keep its delta
// machinery coherent, and the hit path admits nothing new.
func (k *KDD) writeCached(t sim.Time, lba int64, buf []byte, admit bool) (sim.Time, error) {
	// While the array is degraded, deferring parity would widen the data
	// loss window, so fold every pending delta up front (§III-E repairs
	// parity BEFORE rebuild) and operate write-through until redundancy
	// returns. The immediate fold also keeps deltas from going silently
	// obsolete: a degraded write to a failed member recomputes that row's
	// parity from the survivors, and a delta staged earlier for the row
	// would corrupt the fresh parity if it were still around to be folded
	// after a later write re-marked the row stale.
	if !k.backend.Healthy() && len(k.oldDeltas) > 0 {
		if _, err := k.cleanPass(t, true); err != nil {
			return t, err
		}
	}

	slot := k.frame.Lookup(lba)
	if slot == cache.NoSlot {
		if !admit {
			k.st.WriteMiss++
			k.st.RAIDWrites++
			return k.backend.WritePages(t, lba, 1, buf)
		}
		return k.writeMiss(t, lba, buf)
	}
	k.st.WriteHits++
	k.frame.Touch(slot)

	// Degraded write hits take the conventional path. Never in place: the
	// old binding is retired first, then the page re-admitted like a miss
	// (overwriting a mapped page with different bytes is not crash-safe).
	if !k.backend.Healthy() {
		if err := k.retireSlot(t, slot); err != nil {
			return t, err
		}
		if !admit {
			k.st.RAIDWrites++
			return k.backend.WritePages(t, lba, 1, buf)
		}
		return k.writeAllocate(t, lba, buf)
	}

	// Generate the delta against the version parity still reflects: the
	// DAZ old copy. (For a Clean page that IS the current copy; for an
	// Old page the DAZ copy is unchanged — deltas are always old⊕newest,
	// so replacing the staged/committed delta keeps parity repair a
	// single XOR.)
	var d delta.Delta
	if k.dataMode && buf != nil {
		oldBuf := blockdev.GetPage() // fully overwritten by the DAZ read
		sp := k.tr.BeginLBA(t, obs.PhaseDAZRead, lba)
		c, err := k.ssdRead(t, k.cacheLBA(slot), oldBuf)
		sp.End(c)
		if err != nil {
			blockdev.PutPage(oldBuf)
			if errors.Is(err, blockdev.ErrMedia) {
				// The old version is gone: no delta can describe this
				// update, so heal the row and take the conventional path.
				return k.writeHitHeal(t, lba, slot, buf)
			}
			return t, err
		}
		d = k.codec.Encode(oldBuf, buf)
		blockdev.PutPage(oldBuf) // codecs copy; d never aliases oldBuf
		if d.Len >= blockdev.PageSize {
			d = delta.NewRaw(buf)
		}
	} else {
		d = k.codec.Encode(nil, nil)
	}

	// Dispatch the data to RAID without touching parity. This must come
	// BEFORE the delta is staged: if the data write dies (a member crash
	// tearing it away), a staged delta would describe an update that never
	// landed — recovery would keep it, reads would serve old⊕δ, and the
	// eventual fold would drop the "obsolete" delta and flip the page back
	// to the old bytes. Failing first leaves no trace. The delta itself
	// goes to NVRAM (no device I/O), so no crash point can separate the
	// successful data write from the staging that follows it.
	k.st.RAIDWrites++
	done, err := k.backend.WriteNoParity(t, lba, 1, buf)
	if err != nil {
		return t, err
	}
	k.st.SmallWritesSaved++

	// Supersede any committed DEZ delta for this page.
	if od, ok := k.oldDeltas[slot]; ok && !od.staged {
		k.releaseDez(t, od.dez)
	}
	k.staging.Put(nvram.StagedDelta{DazPage: k.cacheLBA(slot), RaidLBA: lba, D: d})
	k.tr.Mark(t, obs.PhaseNVRAMStage, lba)
	k.oldDeltas[slot] = oldDelta{staged: true}
	if k.frame.Slot(slot).State == cache.Clean {
		k.frame.Transition(slot, cache.Old)
	}

	// Commit a DEZ page if the staging buffer filled.
	if k.staging.Full() {
		sp := k.tr.Begin(t, obs.PhaseDEZPack)
		c, err := k.commitDez(t)
		sp.End(c)
		if err != nil {
			return t, err
		}
	}
	if err := k.maybeClean(done); err != nil {
		return t, err
	}
	return done, nil
}

// writeMiss admits the page and performs a conventional parity write.
func (k *KDD) writeMiss(t sim.Time, lba int64, buf []byte) (sim.Time, error) {
	k.st.WriteMiss++
	if !k.admitMiss(lba) {
		k.st.RAIDWrites++
		return k.backend.WritePages(t, lba, 1, buf)
	}
	return k.writeAllocate(t, lba, buf)
}

// writeAllocate is the conventional write path: RAID write with immediate
// parity maintenance, plus a fresh cache copy that is mapped (and its
// mapping logged) only once its bytes are on flash — so a failed or torn
// allocation write leaves no trace for recovery to trust.
func (k *KDD) writeAllocate(t sim.Time, lba int64, buf []byte) (sim.Time, error) {
	k.st.RAIDWrites++
	raidDone, err := k.backend.WritePages(t, lba, 1, buf)
	if err != nil {
		return t, err
	}
	var ssdDone sim.Time
	if slot := k.allocDAZ(t, lba); slot != cache.NoSlot {
		sp := k.tr.BeginLBA(t, obs.PhaseFill, lba)
		ssdDone, err = k.ssd.WritePages(t, k.cacheLBA(slot), 1, buf)
		if err != nil {
			sp.End(t)
			return t, err
		}
		k.frame.Insert(lba, slot, cache.Clean)
		k.st.WriteAllocs++
		mc, err := k.logPut(t, k.cleanEntry(slot, lba))
		if err != nil {
			sp.End(ssdDone)
			return t, err
		}
		sp.End(sim.MaxTime(ssdDone, mc))
	}
	return sim.MaxTime(raidDone, ssdDone), nil
}

// commitDez packs the staging buffer's oldest deltas into one DEZ page,
// writes it, and logs the updated old-page mappings.
func (k *KDD) commitDez(t sim.Time) (sim.Time, error) {
	// Secure the DEZ page FIRST: cleaning (which may reclaim staged
	// deltas) must never run between draining the staging buffer and
	// recording the new delta locations.
	dezSet := k.frame.LeastDeltaSet()
	if dezSet < 0 {
		// No free page anywhere: run a cleaning pass, then retry once.
		if _, err := k.cleanPass(t, false); err != nil {
			return t, err
		}
		dezSet = k.frame.LeastDeltaSet()
		if dezSet < 0 {
			return t, nil // still full; the write path retries later
		}
	}
	packed := k.staging.PackPage()
	if len(packed) == 0 {
		return t, nil
	}
	dezSlot := k.frame.AllocFree(dezSet)
	k.frame.MarkDelta(dezSlot)

	var image []byte
	if k.dataMode {
		image = blockdev.GetZeroPage() // gaps past the packed tail stay zero
	}
	offs := make([]int, len(packed))
	off := 0
	for i, sd := range packed {
		if image != nil && sd.D.Bytes != nil {
			copy(image[off:], sd.D.Bytes)
		}
		offs[i] = off
		off += sd.D.Len
	}

	if bugDezLogFirst {
		done, err := k.commitDezLogFirst(t, dezSlot, packed, offs, image)
		blockdev.PutPage(image)
		return done, err
	}

	// The DEZ page must be durable BEFORE any mapping entry points at it:
	// a crash between the two would leave Old entries referencing a page
	// that was never written.
	done, err := k.ssd.WritePages(t, k.cacheLBA(dezSlot), 1, image)
	blockdev.PutPage(image) // the device copied it (or ignored it on error)
	if err != nil {
		// Undo: the deltas were only drained into this aborted page, so
		// they go back to NVRAM staging and the slot back to the free pool.
		for _, sd := range packed {
			k.staging.Put(sd)
		}
		k.frame.Release(dezSlot, false)
		k.trimSlot(t, dezSlot)
		return t, err
	}
	dp := &dezPage{}
	k.dezPages[dezSlot] = dp
	for i, sd := range packed {
		slot := k.slotOf(sd.DazPage)
		e := metalog.Entry{
			State:   metalog.StateOld,
			DazPage: uint32(k.cacheLBA(slot)),
			RaidLBA: uint32(sd.RaidLBA),
			DezPage: uint32(k.cacheLBA(dezSlot)),
			DezOff:  uint16(offs[i]),
			DezLen:  uint16(sd.D.Len),
			DezRaw:  sd.D.Raw,
		}
		c, err := k.logPut(t, e)
		if err != nil {
			// The unlogged suffix keeps its deltas staged in NVRAM (their
			// in-memory records still say staged); the logged prefix
			// already points into the durable DEZ page and stands.
			for _, rest := range packed[i:] {
				k.staging.Put(rest)
			}
			if dp.valid == 0 {
				delete(k.dezPages, dezSlot)
				k.frame.Release(dezSlot, false)
				k.trimSlot(t, dezSlot)
			}
			return t, err
		}
		k.oldDeltas[slot] = oldDelta{
			dez: dezSlot, off: offs[i], length: sd.D.Len, raw: sd.D.Raw,
		}
		dp.valid++
		dp.used += sd.D.Len
		done = sim.MaxTime(done, c)
	}
	k.st.DeltaCommits++
	return done, nil
}

// commitDezLogFirst is the kddbug mutation of commitDez (see bugflag.go):
// it logs the old-page mapping entries BEFORE the DEZ page they point at
// is durable, and treats logged entries as owned by the log — no
// re-staging undo on failure. A crash between logging and the DEZ write
// leaves durable Old entries referencing a page that was never written,
// while the deltas themselves are gone from NVRAM: recovery then serves
// stale old data for acked writes, which the checker must catch.
func (k *KDD) commitDezLogFirst(t sim.Time, dezSlot int32,
	packed []nvram.StagedDelta, offs []int, image []byte) (sim.Time, error) {
	dp := &dezPage{}
	k.dezPages[dezSlot] = dp
	done := t
	for i, sd := range packed {
		slot := k.slotOf(sd.DazPage)
		e := metalog.Entry{
			State:   metalog.StateOld,
			DazPage: uint32(k.cacheLBA(slot)),
			RaidLBA: uint32(sd.RaidLBA),
			DezPage: uint32(k.cacheLBA(dezSlot)),
			DezOff:  uint16(offs[i]),
			DezLen:  uint16(sd.D.Len),
			DezRaw:  sd.D.Raw,
		}
		c, err := k.logPut(t, e)
		if err != nil {
			return t, err
		}
		k.oldDeltas[slot] = oldDelta{
			dez: dezSlot, off: offs[i], length: sd.D.Len, raw: sd.D.Raw,
		}
		dp.valid++
		dp.used += sd.D.Len
		done = sim.MaxTime(done, c)
	}
	c, err := k.ssd.WritePages(t, k.cacheLBA(dezSlot), 1, image)
	if err != nil {
		return t, err
	}
	k.st.DeltaCommits++
	return sim.MaxTime(done, c), nil
}

// releaseDez invalidates one delta in a DEZ page, freeing the page when
// its valid count reaches zero ("the DEZ page cannot be freed until the
// valid count reaches zero", §III-C).
func (k *KDD) releaseDez(t sim.Time, dezSlot int32) {
	dp := k.dezPages[dezSlot]
	if dp == nil {
		return
	}
	dp.valid--
	if dp.valid <= 0 {
		delete(k.dezPages, dezSlot)
		k.frame.Release(dezSlot, false)
		k.trimSlot(t, dezSlot)
	}
}
