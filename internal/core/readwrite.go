package core

import (
	"fmt"

	"kddcache/internal/blockdev"
	"kddcache/internal/cache"
	"kddcache/internal/delta"
	"kddcache/internal/metalog"
	"kddcache/internal/nvram"
	"kddcache/internal/sim"
)

// Read implements cache.Policy (§III-A): misses fill DAZ; hits on Clean
// pages read straight from flash; hits on Old pages combine the cached
// old version with the newest delta — read concurrently from DAZ and DEZ
// thanks to the SSD's internal parallelism.
func (k *KDD) Read(t sim.Time, lba int64, buf []byte) (sim.Time, error) {
	k.st.Reads++
	slot := k.frame.Lookup(lba)
	if slot == cache.NoSlot {
		k.st.ReadMisses++
		k.st.RAIDReads++
		done, err := k.backend.ReadPages(t, lba, 1, buf)
		if err != nil {
			return t, err
		}
		k.fill(done, lba, buf)
		return done, nil
	}
	k.st.ReadHits++
	k.frame.Touch(slot)
	switch k.frame.Slot(slot).State {
	case cache.Clean:
		return k.ssd.ReadPages(t, k.cacheLBA(slot), 1, buf)
	case cache.Old:
		return k.readOld(t, lba, slot, buf)
	default:
		return t, fmt.Errorf("core: lookup hit %v slot for lba %d",
			k.frame.Slot(slot).State, lba)
	}
}

// readOld serves a hit on an Old page: old data ⊕ delta.
func (k *KDD) readOld(t sim.Time, lba int64, slot int32, buf []byte) (sim.Time, error) {
	od, ok := k.oldDeltas[slot]
	if !ok {
		return t, fmt.Errorf("%w: old slot %d has no delta record", ErrNotCombinable, slot)
	}
	var oldBuf []byte
	if k.dataMode && buf != nil {
		oldBuf = make([]byte, blockdev.PageSize)
	}
	// Read the old version from DAZ.
	done, err := k.ssd.ReadPages(t, k.cacheLBA(slot), 1, oldBuf)
	if err != nil {
		return t, err
	}
	var d delta.Delta
	if od.staged {
		sd, ok := k.staging.Get(int64(slot))
		if !ok {
			return t, fmt.Errorf("%w: staged delta for slot %d missing", ErrNotCombinable, slot)
		}
		d = sd.D
	} else {
		// Read the DEZ page concurrently with the DAZ read (issued at t).
		var dezBuf []byte
		if k.dataMode && buf != nil {
			dezBuf = make([]byte, blockdev.PageSize)
		}
		c, err := k.ssd.ReadPages(t, k.cacheLBA(od.dez), 1, dezBuf)
		if err != nil {
			return t, err
		}
		done = sim.MaxTime(done, c)
		d = delta.Delta{Len: od.length, Raw: od.raw}
		if dezBuf != nil {
			d.Bytes = dezBuf[od.off : od.off+od.length]
		}
	}
	if k.dataMode && buf != nil {
		if err := delta.ApplyAny(k.codec, oldBuf, d, buf); err != nil {
			return t, fmt.Errorf("%w: %v", ErrNotCombinable, err)
		}
	}
	// Decompress+combine costs "tens of microseconds" (§IV-B2).
	return done + 20*sim.Microsecond, nil
}

// admitMiss applies the optional LARC-style filter: only pages seen twice
// within the ghost window are worth an allocation write.
func (k *KDD) admitMiss(lba int64) bool {
	if k.ghost == nil {
		return true
	}
	if k.ghost.Admit(lba) {
		return true
	}
	k.st.AdmissionRejects++
	return false
}

// fill admits a page read from RAID into DAZ (read-fill).
func (k *KDD) fill(done sim.Time, lba int64, buf []byte) {
	if !k.admitMiss(lba) {
		return
	}
	slot := k.allocDAZ(done, lba)
	if slot == cache.NoSlot {
		return
	}
	k.frame.Insert(lba, slot, cache.Clean)
	k.st.ReadFills++
	k.ssd.WritePages(done, k.cacheLBA(slot), 1, buf) //nolint:errcheck // background fill
	k.logPut(done, k.cleanEntry(slot, lba))          //nolint:errcheck // surfaces on next op
}

// Write implements cache.Policy (§III-A).
//
// Miss: data cached in DAZ and written to RAID with a conventional parity
// update. Hit: the data goes to RAID withOUT a parity update, and the
// compressed XOR of the cached old version and the new data is staged for
// DEZ. The response completes when the RAID data write completes — delta
// generation overlaps the (much slower) disk write (§IV-B2).
func (k *KDD) Write(t sim.Time, lba int64, buf []byte) (sim.Time, error) {
	k.st.Writes++
	slot := k.frame.Lookup(lba)
	if slot == cache.NoSlot {
		return k.writeMiss(t, lba, buf)
	}
	k.st.WriteHits++
	k.frame.Touch(slot)

	// While the array is degraded, deferring parity would widen the data
	// loss window (§III-E repairs parity BEFORE rebuild); write hits on
	// Clean pages degrade to write-through instead.
	if !k.backend.Healthy() && k.frame.Slot(slot).State == cache.Clean {
		k.st.WriteAllocs++
		ssdDone, err := k.ssd.WritePages(t, k.cacheLBA(slot), 1, buf)
		if err != nil {
			return t, err
		}
		k.st.RAIDWrites++
		raidDone, err := k.backend.WritePages(t, lba, 1, buf)
		if err != nil {
			return t, err
		}
		return sim.MaxTime(ssdDone, raidDone), nil
	}

	// Generate the delta against the version parity still reflects: the
	// DAZ old copy. (For a Clean page that IS the current copy; for an
	// Old page the DAZ copy is unchanged — deltas are always old⊕newest,
	// so replacing the staged/committed delta keeps parity repair a
	// single XOR.)
	var d delta.Delta
	if k.dataMode && buf != nil {
		oldBuf := make([]byte, blockdev.PageSize)
		if _, err := k.ssd.ReadPages(t, k.cacheLBA(slot), 1, oldBuf); err != nil {
			return t, err
		}
		d = k.codec.Encode(oldBuf, buf)
		if d.Len >= blockdev.PageSize {
			d = delta.NewRaw(buf)
		}
	} else {
		d = k.codec.Encode(nil, nil)
	}

	// Supersede any committed DEZ delta for this page.
	if od, ok := k.oldDeltas[slot]; ok && !od.staged {
		k.releaseDez(t, od.dez)
	}
	k.staging.Put(nvram.StagedDelta{DazPage: int64(slot), RaidLBA: lba, D: d})
	k.oldDeltas[slot] = oldDelta{staged: true}
	if k.frame.Slot(slot).State == cache.Clean {
		k.frame.Transition(slot, cache.Old)
	}

	// Dispatch the data to RAID without touching parity.
	k.st.RAIDWrites++
	done, err := k.backend.WriteNoParity(t, lba, 1, buf)
	if err != nil {
		return t, err
	}
	k.st.SmallWritesSaved++

	// Commit a DEZ page if the staging buffer filled.
	if k.staging.Full() {
		if _, err := k.commitDez(t); err != nil {
			return t, err
		}
	}
	if err := k.maybeClean(done); err != nil {
		return t, err
	}
	return done, nil
}

// writeMiss admits the page and performs a conventional parity write.
func (k *KDD) writeMiss(t sim.Time, lba int64, buf []byte) (sim.Time, error) {
	k.st.WriteMiss++
	k.st.RAIDWrites++
	raidDone, err := k.backend.WritePages(t, lba, 1, buf)
	if err != nil {
		return t, err
	}
	if !k.admitMiss(lba) {
		return raidDone, nil
	}
	var ssdDone sim.Time
	if slot := k.allocDAZ(t, lba); slot != cache.NoSlot {
		k.frame.Insert(lba, slot, cache.Clean)
		k.st.WriteAllocs++
		ssdDone, err = k.ssd.WritePages(t, k.cacheLBA(slot), 1, buf)
		if err != nil {
			return t, err
		}
		if _, err := k.logPut(t, k.cleanEntry(slot, lba)); err != nil {
			return t, err
		}
	}
	return sim.MaxTime(raidDone, ssdDone), nil
}

// commitDez packs the staging buffer's oldest deltas into one DEZ page,
// writes it, and logs the updated old-page mappings.
func (k *KDD) commitDez(t sim.Time) (sim.Time, error) {
	// Secure the DEZ page FIRST: cleaning (which may reclaim staged
	// deltas) must never run between draining the staging buffer and
	// recording the new delta locations.
	dezSet := k.frame.LeastDeltaSet()
	if dezSet < 0 {
		// No free page anywhere: run a cleaning pass, then retry once.
		if _, err := k.Clean(t, false); err != nil {
			return t, err
		}
		dezSet = k.frame.LeastDeltaSet()
		if dezSet < 0 {
			return t, nil // still full; the write path retries later
		}
	}
	packed := k.staging.PackPage()
	if len(packed) == 0 {
		return t, nil
	}
	dezSlot := k.frame.AllocFree(dezSet)
	k.frame.MarkDelta(dezSlot)

	var image []byte
	if k.dataMode {
		image = make([]byte, blockdev.PageSize)
	}
	dp := &dezPage{}
	k.dezPages[dezSlot] = dp
	off := 0
	done := t
	for _, sd := range packed {
		slot := int32(sd.DazPage)
		if image != nil && sd.D.Bytes != nil {
			copy(image[off:], sd.D.Bytes)
		}
		k.oldDeltas[slot] = oldDelta{
			dez: dezSlot, off: off, length: sd.D.Len, raw: sd.D.Raw,
		}
		dp.valid++
		dp.used += sd.D.Len
		off += sd.D.Len
		e := metalog.Entry{
			State:   metalog.StateOld,
			DazPage: uint32(k.cacheLBA(slot)),
			RaidLBA: uint32(sd.RaidLBA),
			DezPage: uint32(k.cacheLBA(dezSlot)),
			DezOff:  uint16(k.oldDeltas[slot].off),
			DezLen:  uint16(sd.D.Len),
			DezRaw:  sd.D.Raw,
		}
		c, err := k.logPut(t, e)
		if err != nil {
			return t, err
		}
		done = sim.MaxTime(done, c)
	}
	k.st.DeltaCommits++
	c, err := k.ssd.WritePages(t, k.cacheLBA(dezSlot), 1, image)
	if err != nil {
		return t, err
	}
	return sim.MaxTime(done, c), nil
}

// releaseDez invalidates one delta in a DEZ page, freeing the page when
// its valid count reaches zero ("the DEZ page cannot be freed until the
// valid count reaches zero", §III-C).
func (k *KDD) releaseDez(t sim.Time, dezSlot int32) {
	dp := k.dezPages[dezSlot]
	if dp == nil {
		return
	}
	dp.valid--
	if dp.valid <= 0 {
		delete(k.dezPages, dezSlot)
		k.frame.Release(dezSlot, false)
		k.trimSlot(t, dezSlot)
	}
}
