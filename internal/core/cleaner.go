package core

import (
	"errors"
	"fmt"

	"kddcache/internal/blockdev"
	"kddcache/internal/cache"
	"kddcache/internal/delta"
	"kddcache/internal/obs"
	"kddcache/internal/sim"
)

// This file implements KDD's flushing policy (§III-D): a background
// cleaner generates new parity blocks for stale stripes and reclaims the
// old/delta pages. The cleaner is triggered when old+delta pages exceed a
// threshold, when allocation finds a set pinned solid, or when the replay
// driver detects an idle period. Parity is recomputed by
// reconstruct-write when every data block of the row is cached, otherwise
// by read-modify-write over the decompressed deltas. Reclamation follows
// scheme 2 (drop old pages, invalidate deltas) unless the scheme-1
// ablation is configured.

// maybeClean triggers the cleaner past the high-water mark.
func (k *KDD) maybeClean(t sim.Time) error {
	if float64(k.DirtyPages()) > k.cfg.HighWater*float64(k.frame.Pages()) {
		_, err := k.cleanPass(t, false)
		return err
	}
	return nil
}

// Clean implements cache.Policy: one cleaning pass. force drains every
// stale stripe (used before HDD rebuild and at shutdown). In pass-through
// mode there is nothing to clean — the emergency fold already repaired
// every stale parity — and a cache-device fail-stop mid-pass triggers the
// failover instead of surfacing (internal paths call cleanPass directly so
// their errors route through the owning operation's failover check).
func (k *KDD) Clean(t sim.Time, force bool) (done sim.Time, err error) {
	if k.tr != nil {
		sp := k.tr.Begin(t, obs.PhaseClean)
		defer func() { sp.End(done) }()
	}
	if k.passThrough() {
		return t, nil
	}
	done, err = k.cleanPass(t, force)
	if err != nil && k.ssdFault(err) {
		k.failover(t, HealthBypass)
		return t, nil
	}
	return done, err
}

// cleanPass is the cleaner body.
func (k *KDD) cleanPass(t sim.Time, force bool) (done sim.Time, err error) {
	if k.cleaning {
		return t, nil // re-entrant trigger from allocation inside a pass
	}
	k.cleaning = true
	defer func() { k.cleaning = false }()
	if k.tr != nil {
		sp := k.tr.Begin(t, obs.PhaseCleanPass)
		defer func() { sp.End(done) }()
	}

	low := int64(k.cfg.LowWater * float64(k.frame.Pages()))
	if force {
		low = 0
	}
	done = t
	ran := false
	for k.frame.Count(cache.Old) > 0 && (force || k.DirtyPages() > low) {
		// Take victims in LRU batches; one frame scan amortises over many
		// rows. Entries may stop being Old mid-batch when reclaimed as a
		// row peer of an earlier victim.
		victims := k.frame.OldestSlots(cache.Old, 128)
		if len(victims) == 0 {
			break
		}
		ran = true
		for _, v := range victims {
			if k.frame.Slot(v).State != cache.Old {
				continue
			}
			c, err := k.cleanRow(t, v)
			if err != nil {
				return t, err
			}
			done = sim.MaxTime(done, c)
			t = c // cleaning work is serialized in the background thread
			if !force && k.DirtyPages() <= low {
				break
			}
		}
	}
	if ran {
		k.st.CleanerRuns++
	}
	return done, nil
}

// Flush implements cache.Policy: repair every stale parity (§III-E2:
// "KDD first updates all parity blocks using the parity_update interface
// and then triggers the rebuilding process"). In pass-through mode it is
// a no-op: the emergency fold already repaired every stale parity and the
// metadata log is quiesced.
func (k *KDD) Flush(t sim.Time) (done sim.Time, err error) {
	if k.tr != nil {
		sp := k.tr.Begin(t, obs.PhaseFlush)
		defer func() { sp.End(done) }()
	}
	if err = k.preOp(t); err != nil {
		return t, err
	}
	if k.passThrough() {
		return t, nil
	}
	done, err = k.flushCached(t)
	if err != nil && k.ssdFault(err) {
		k.failover(t, HealthBypass)
		return t, nil
	}
	return done, err
}

// flushCached is the cache-enabled flush body.
func (k *KDD) flushCached(t sim.Time) (sim.Time, error) {
	done, err := k.cleanPass(t, true)
	if err != nil {
		return t, err
	}
	if k.log != nil {
		c, err := k.log.Flush(done)
		if err != nil {
			return t, err
		}
		done = sim.MaxTime(done, c)
	}
	return done, nil
}

// cleanRow repairs the parity row containing the victim Old slot and
// reclaims every Old peer in it, exploiting the stripe-aligned set
// mapping ("they can be reclaimed together during cache cleaning",
// §III-B).
// peerInfo pairs a row peer's storage LBA with its cache slot.
type peerInfo struct {
	lba  int64
	slot int32
}

func (k *KDD) cleanRow(t sim.Time, victim int32) (sim.Time, error) {
	lba := k.frame.Slot(victim).RaidLBA
	peers := k.backend.RowPeers(lba)

	var cached []peerInfo
	var oldPeers []peerInfo
	allCached := true
	for _, p := range peers {
		s := k.frame.Lookup(p)
		if s == cache.NoSlot {
			allCached = false
			continue
		}
		pi := peerInfo{lba: p, slot: s}
		cached = append(cached, pi)
		if k.frame.Slot(s).State == cache.Old {
			oldPeers = append(oldPeers, pi)
		}
	}
	if len(oldPeers) == 0 {
		return t, fmt.Errorf("core: cleanRow found no old pages in row of lba %d", lba)
	}

	k.st.ParityUpdates++
	var done sim.Time
	var err error
	if allCached {
		done, err = k.parityReconstruct(t, peers, cached)
	} else {
		done, err = k.parityRMW(t, oldPeers)
	}
	if err != nil {
		if !errors.Is(err, blockdev.ErrMedia) {
			return t, err
		}
		// An old copy or delta page needed for the repair is unreadable:
		// recompute the parity from the member data instead (the members
		// always hold the current data), then reclaim as usual.
		k.st.MediaFallbacks++
		done, err = k.backend.ResyncRow(t, lba)
		if err != nil {
			return t, err
		}
		k.st.RowsHealed++
	}

	// Reclaim the old pages and invalidate their deltas.
	for _, pi := range oldPeers {
		c, err := k.reclaimOld(done, pi.lba, pi.slot)
		if err != nil {
			return t, err
		}
		done = sim.MaxTime(done, c)
	}
	return done, nil
}

// parityReconstruct recomputes the row's parity from the cached current
// data ("reconstruct-write is only used when all data blocks within the
// stripe are residing in SSD", §III-D) — no disk reads at all.
func (k *KDD) parityReconstruct(t sim.Time, peers []int64, cached []peerInfo) (sim.Time, error) {
	var rowData [][]byte
	if k.dataMode {
		rowData = make([][]byte, len(peers))
		// Row pages are scratch: the backend XORs them into fresh parity
		// and keeps nothing, so they all go back to the pool on exit.
		defer func() {
			for _, b := range rowData {
				blockdev.PutPage(b)
			}
		}()
		bySlot := make(map[int64]int32, len(cached))
		for _, pi := range cached {
			bySlot[pi.lba] = pi.slot
		}
		for i, p := range peers {
			buf := blockdev.GetPage() // fully overwritten by readCurrent
			rowData[i] = buf
			if _, err := k.readCurrent(t, p, bySlot[p], buf); err != nil {
				return t, err
			}
		}
	} else {
		// Timing mode: charge the SSD reads for gathering the row.
		for _, pi := range cached {
			k.ssd.ReadPages(t, k.cacheLBA(pi.slot), 1, nil) //nolint:errcheck // timing only
		}
	}
	return k.backend.ParityUpdateReconstruct(t, peers[0], rowData)
}

// parityRMW repairs parity by XOR-ing the decompressed deltas into the
// stale parity read from disk.
func (k *KDD) parityRMW(t sim.Time, oldPeers []peerInfo) (sim.Time, error) {
	lbas := make([]int64, 0, len(oldPeers))
	var deltas [][]byte
	if k.dataMode {
		deltas = make([][]byte, 0, len(oldPeers))
		// The expanded XOR pages are dead once the backend has folded
		// them into parity; release them on any exit.
		defer func() {
			for _, x := range deltas {
				blockdev.PutPage(x)
			}
		}()
	}
	for _, pi := range oldPeers {
		lbas = append(lbas, pi.lba)
		if !k.dataMode {
			continue
		}
		xor, err := k.expandXor(t, pi.slot)
		if err != nil {
			return t, err
		}
		deltas = append(deltas, xor)
	}
	return k.backend.ParityUpdateDelta(t, lbas, deltas)
}

// readCurrent reads the latest version of a cached page into buf (Clean:
// straight read; Old: old ⊕ delta) without affecting recency.
func (k *KDD) readCurrent(t sim.Time, lba int64, slot int32, buf []byte) (sim.Time, error) {
	switch k.frame.Slot(slot).State {
	case cache.Clean:
		return k.ssdRead(t, k.cacheLBA(slot), buf)
	case cache.Old:
		return k.readOld(t, lba, slot, buf)
	default:
		return t, fmt.Errorf("core: readCurrent on %v slot", k.frame.Slot(slot).State)
	}
}

// expandXor materialises the raw XOR (old ⊕ new) for an Old slot's delta:
// exactly what ParityUpdateDelta folds into the stale parity.
func (k *KDD) expandXor(t sim.Time, slot int32) ([]byte, error) {
	od, ok := k.oldDeltas[slot]
	if !ok {
		return nil, fmt.Errorf("%w: slot %d", ErrNotCombinable, slot)
	}
	var d delta.Delta
	if od.staged {
		sd, ok := k.staging.Get(k.cacheLBA(slot))
		if !ok {
			return nil, fmt.Errorf("%w: staged delta missing for slot %d", ErrNotCombinable, slot)
		}
		d = sd.D
	} else {
		dezBuf := blockdev.GetPage() // fully overwritten by the DEZ read
		defer blockdev.PutPage(dezBuf)
		if _, err := k.ssdRead(t, k.cacheLBA(od.dez), dezBuf); err != nil {
			return nil, err
		}
		d = delta.Delta{Len: od.length, Raw: od.raw, Bytes: dezBuf[od.off : od.off+od.length]}
	}
	// The xor page is returned to the caller, who owns it (parityRMW
	// releases it after the backend folds it into parity).
	xor := blockdev.GetZeroPage()
	if d.Raw {
		// xor = old ⊕ new: need the old page.
		oldBuf := blockdev.GetPage() // fully overwritten by the DAZ read
		if _, err := k.ssdRead(t, k.cacheLBA(slot), oldBuf); err != nil {
			blockdev.PutPage(oldBuf)
			blockdev.PutPage(xor)
			return nil, err
		}
		for i := range xor {
			xor[i] = oldBuf[i] ^ d.Bytes[i]
		}
		blockdev.PutPage(oldBuf)
		return xor, nil
	}
	// Codecs compress the XOR itself, so applying the delta to a zero
	// page decompresses it.
	if err := k.codec.Apply(xor, d, xor); err != nil {
		blockdev.PutPage(xor)
		return nil, fmt.Errorf("%w: %v", ErrNotCombinable, err)
	}
	return xor, nil
}

// reclaimOld retires one Old page after its parity has been repaired.
func (k *KDD) reclaimOld(t sim.Time, lba int64, slot int32) (sim.Time, error) {
	// Invalidate the delta wherever it lives.
	if od, ok := k.oldDeltas[slot]; ok {
		if od.staged {
			k.staging.Drop(k.cacheLBA(slot))
		} else {
			k.releaseDez(t, od.dez)
		}
		delete(k.oldDeltas, slot)
	}
	k.st.Reclaims++

	if k.cfg.ReclaimMaterialize {
		// Scheme 1: keep the latest version cached as Clean. Costs an
		// extra flash program per reclaim (§III-D's "expense of more
		// cache writes"); requires the latest bytes in data mode.
		var buf []byte
		var err error
		if k.dataMode {
			buf = blockdev.GetPage() // fully overwritten by the RAID read
			defer blockdev.PutPage(buf)
			// The delta is gone from the books but the combine must use
			// it; materialisation is done by re-reading from RAID, which
			// already holds the current data (always dispatched).
			if _, err = k.backend.ReadPages(t, lba, 1, buf); err != nil {
				return t, err
			}
			k.st.RAIDReads++
		}
		k.st.WriteAllocs++
		done, err := k.ssd.WritePages(t, k.cacheLBA(slot), 1, buf)
		if err != nil {
			return t, err
		}
		k.frame.Transition(slot, cache.Clean)
		if _, err := k.logPut(t, k.cleanEntry(slot, lba)); err != nil {
			return t, err
		}
		return done, nil
	}

	// Scheme 2 (the paper's choice): drop the old page.
	k.frame.Release(slot, true)
	k.trimSlot(t, slot)
	if _, err := k.logPut(t, k.freeEntry(slot)); err != nil {
		return t, err
	}
	return t, nil
}
