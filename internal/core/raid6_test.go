package core_test

import (
	"bytes"
	"testing"

	"kddcache/internal/blockdev"
	"kddcache/internal/core"
	"kddcache/internal/delta"
	"kddcache/internal/raid"
	"kddcache/internal/sim"
)

// newRig6 builds KDD over a 6-disk RAID-6: the paper's design covers
// "parity-based configuration, such as RAID-5/6" (§III-A), so the delta
// path must maintain both P and Q correctly.
func newRig6(t *testing.T) *rig {
	t.Helper()
	var members []blockdev.Device
	for i := 0; i < 6; i++ {
		members = append(members, blockdev.NewNullDataDevice("d", 4096))
	}
	a, err := raid.New(raid.Config{Level: raid.Level6, ChunkPages: 8}, members)
	if err != nil {
		t.Fatal(err)
	}
	ssd := blockdev.NewNullDataDevice("ssd", 1024)
	cfg := core.Config{
		SSD: ssd, Backend: a, CachePages: 512, Ways: 32,
		MetaStart: 0, MetaPages: 64, Codec: delta.ZRLE{},
	}
	k, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{
		ssd: ssd, array: a, kdd: k, cfg: cfg,
		oracle: make(map[int64][]byte),
		mut:    delta.NewMutator(5, 0.25),
		rng:    sim.NewRNG(42),
	}
}

func TestRAID6KDDDeltaParityRepair(t *testing.T) {
	r := newRig6(t)
	for lba := int64(0); lba < 150; lba++ {
		r.write(t, lba)
	}
	for lba := int64(0); lba < 150; lba += 2 {
		r.write(t, lba) // deltas, stale P AND Q
	}
	if r.array.StaleRows() == 0 {
		t.Fatal("no stale rows")
	}
	r.verifyCache(t)
	if _, err := r.kdd.Flush(0); err != nil {
		t.Fatal(err)
	}
	if r.array.StaleRows() != 0 {
		t.Fatal("flush incomplete")
	}
	// The repaired Q parity must survive a DOUBLE disk failure.
	r.array.FailDisk(0)
	r.array.FailDisk(3)
	r.verifyRAID(t)
}

func TestRAID6KDDDoubleFailureAfterCleanerRuns(t *testing.T) {
	r := newRig6(t)
	// Heavy churn so the background cleaner (not just Flush) repairs
	// parity via both RMW and reconstruct paths.
	rng := sim.NewRNG(9)
	for i := 0; i < 3000; i++ {
		r.write(t, int64(rng.Uint64n(400)))
	}
	if _, err := r.kdd.Flush(0); err != nil {
		t.Fatal(err)
	}
	r.array.FailDisk(1)
	r.array.FailDisk(4)
	r.verifyRAID(t)
	if err := r.kdd.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRAID6KDDCrashRecovery(t *testing.T) {
	r := newRig6(t)
	for lba := int64(0); lba < 100; lba++ {
		r.write(t, lba)
		r.write(t, lba)
	}
	r.crash(t)
	r.verifyCache(t)
	if _, err := r.kdd.Flush(0); err != nil {
		t.Fatal(err)
	}
	r.array.FailDisk(2)
	r.array.FailDisk(5)
	r.verifyRAID(t)
}

func TestRAID6DegradedSingleParityRepair(t *testing.T) {
	// With one disk failed, KDD's flush must still repair rows: either
	// both parities are healthy, one is (fold into the survivor), or the
	// data disk is gone (degraded write path).
	r := newRig6(t)
	for lba := int64(0); lba < 120; lba++ {
		r.write(t, lba)
	}
	for lba := int64(0); lba < 120; lba++ {
		r.write(t, lba)
	}
	r.array.FailDisk(3)
	if _, err := r.kdd.Flush(0); err != nil {
		t.Fatal(err)
	}
	if r.array.StaleRows() != 0 {
		t.Fatalf("degraded RAID-6 flush left %d stale rows", r.array.StaleRows())
	}
	// Rebuild, then verify under a fresh single failure.
	fresh := blockdev.NewNullDataDevice("fresh", 4096)
	if _, err := r.array.ReplaceDisk(0, 3, fresh); err != nil {
		t.Fatal(err)
	}
	r.array.FailDisk(0)
	r.verifyRAID(t)
}

func TestRAID6ReadOldFromDez(t *testing.T) {
	r := newRig6(t)
	// Enough updates to force DEZ commits, then verify combines.
	for lba := int64(0); lba < 80; lba++ {
		r.write(t, lba)
	}
	for lba := int64(0); lba < 80; lba++ {
		r.write(t, lba)
	}
	if r.kdd.Stats().DeltaCommits == 0 {
		t.Fatal("no DEZ commits")
	}
	buf := make([]byte, blockdev.PageSize)
	for lba := int64(0); lba < 80; lba++ {
		if _, err := r.kdd.Read(0, lba, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, r.oracle[lba]) {
			t.Fatalf("lba %d combine wrong on RAID-6 stack", lba)
		}
	}
}
