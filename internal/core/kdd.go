// Package core implements KDD — Keeping Data and Deltas in SSD — the
// paper's primary contribution (§III).
//
// The SSD cache is logically split into a Data Zone (DAZ) holding pages
// as first admitted, and a Delta Zone (DEZ) holding compressed XORs of
// updated pages, dynamically mixed within the same set-associative frame.
// On a write hit KDD writes the data to RAID *without* updating parity
// (one disk I/O instead of four), stages the delta in NVRAM, and packs
// staged deltas into DEZ pages when the staging buffer fills. A
// background cleaner repairs stale parities — reconstruct-write when the
// whole row is cached, read-modify-write from decompressed deltas
// otherwise — and reclaims old/delta pages (reclaim scheme 2 by default).
// Cache metadata persists in a circular log on the SSD with NVRAM
// buffering, giving an RPO of zero across power failures.
package core

import (
	"errors"
	"fmt"

	"kddcache/internal/blockdev"
	"kddcache/internal/cache"
	"kddcache/internal/delta"
	"kddcache/internal/metalog"
	"kddcache/internal/nvram"
	"kddcache/internal/obs"
	"kddcache/internal/sim"
	"kddcache/internal/stats"
)

// ErrNotCombinable reports a read of an Old page whose delta cannot be
// applied (would indicate a bookkeeping bug; surfaced for tests).
var ErrNotCombinable = errors.New("core: cannot combine old page with delta")

// Config assembles a KDD cache instance.
type Config struct {
	SSD     blockdev.Device // cache device (metadata partition + cache pages)
	Backend cache.Backend   // the RAID array

	CachePages int64 // data cache capacity in pages (DAZ+DEZ combined)
	Ways       int   // set associativity

	MetaStart int64 // first page of the metadata partition on the SSD
	MetaPages int64 // metadata partition size in pages (paper: 0.59% of SSD)

	Codec delta.Codec // delta codec (real or modelled)

	StagingBytes int // NVRAM staging buffer capacity in bytes

	// Cleaner thresholds: fractions of cache capacity held by old+delta
	// pages that start/stop background cleaning.
	HighWater float64
	LowWater  float64

	// MetaGCThreshold is the metadata log occupancy triggering its GC
	// (0 = default 0.9).
	MetaGCThreshold float64

	// FixedDEZSets reserves the last N sets exclusively for DEZ pages
	// (the static-partition ablation, §III-B); 0 = dynamic mixing.
	FixedDEZSets int

	// ReclaimMaterialize selects reclaim scheme 1 (§III-D): combine
	// old+delta into the latest version and keep it cached as Clean,
	// instead of dropping the old page (scheme 2, the paper's choice).
	ReclaimMaterialize bool

	// DisableMetaLog turns off metadata persistence entirely (ablation
	// baseline: what the cache write traffic looks like with no
	// durability; recovery is impossible in this mode).
	DisableMetaLog bool

	// SharedLog, when non-nil, attaches an externally-owned metadata log
	// instead of creating one over [MetaStart, MetaStart+MetaPages). The
	// shard plane uses this so all lanes share one circular partition and
	// one NVRAM buffer. The owner handles sizing and recovery sequencing;
	// this instance's Stats skip the (shared) log counters.
	SharedLog *metalog.Log

	// DataStart, when > 0, places the cache data partition at an explicit
	// SSD page instead of MetaStart+MetaPages. Required with SharedLog so
	// each lane addresses a disjoint SSD region.
	DataStart int64

	// Lane tags this instance's batched metadata appends (the shard tag
	// in the log's page headers). Only meaningful with BatchMeta.
	Lane uint8

	// BatchMeta defers metadata page flushes to FlushMetaBatch: entries
	// still enter the NVRAM buffer immediately (the durability point is
	// unchanged) but flash pages commit one barrier per batch instead of
	// one per entry. The caller owns the barrier cadence.
	BatchMeta bool

	// SelectiveAdmission enables a LARC-style ghost-LRU admission filter:
	// pages are cached only on their second miss within a window of
	// CachePages addresses. §V-C lists such filters as complementary to
	// KDD for further reducing allocation writes.
	SelectiveAdmission bool

	// Tracer, when non-nil, records a span for every phase of every
	// operation (obs package). Nil disables tracing at zero cost.
	Tracer *obs.Tracer

	// Circuit-breaker knobs for the cache health state machine
	// (failover.go). All are measured in operations, not virtual time:
	// the timing rigs drive every request at t=0, so op counts are the
	// only clock that always advances. Zero selects the default;
	// BreakerWindow < 0 disables the breaker (fail-stop failover still
	// works).
	BreakerWindow    int   // sliding window of SSD read outcomes (default 64)
	BreakerThreshold int   // persistent failures in window that trip (default 32)
	BreakerBackoff   int64 // ops before the first half-open probe (default 64, doubles)
	RebuildProbation int64 // clean ops in Rebuilding before Normal (default 16)

	// Online member-rebuild pacing (rebuild.go): member rows of rebuild
	// I/O released per foreground operation. Max applies when the op never
	// touched the array (served from cache), Min when it did — foreground
	// pressure throttles the rebuild rather than the other way round.
	// Zero selects the defaults; RebuildRateMax < 0 disables the pump
	// entirely (the harness then drives RebuildStep itself).
	RebuildRateMin int // rows/op under foreground RAID pressure (default 1)
	RebuildRateMax int // rows/op when the array is otherwise idle (default 8)
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Ways == 0 {
		c.Ways = 256
	}
	if c.StagingBytes == 0 {
		c.StagingBytes = 4 * blockdev.PageSize
	}
	// Dirty (old+delta) pages may occupy a substantial share of the cache
	// before cleaning kicks in: keeping recently-updated pages resident
	// is where KDD's hit-ratio advantage over LeavO comes from (and the
	// reason it can beat WT on write-hot traces like Web0, §IV-A3).
	if c.HighWater == 0 {
		c.HighWater = 0.40
	}
	if c.LowWater == 0 {
		c.LowWater = 0.30
	}
	// Breaker defaults are deliberately conservative: half the window must
	// fail before tripping, so the background media-error rates the chaos
	// profiles inject (sub-percent per read) never trigger a failover —
	// only a genuinely sick device does.
	if c.BreakerWindow == 0 {
		c.BreakerWindow = 64
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 32
	}
	if c.BreakerBackoff == 0 {
		c.BreakerBackoff = 64
	}
	if c.RebuildProbation == 0 {
		c.RebuildProbation = 16
	}
	if c.RebuildRateMin == 0 {
		c.RebuildRateMin = 1
	}
	if c.RebuildRateMax == 0 {
		c.RebuildRateMax = 8
	}
	return c
}

// oldDelta locates the newest delta of an Old DAZ page.
type oldDelta struct {
	staged bool  // still in the NVRAM staging buffer
	dez    int32 // DEZ slot (when !staged)
	off    int
	length int
	raw    bool
}

// dezPage tracks a DEZ page's occupancy.
type dezPage struct {
	valid int // live deltas ("valid count", §III-C)
	used  int // bytes consumed
}

// KDD is the cache engine.
type KDD struct {
	cfg     Config
	frame   *cache.Frame
	ssd     blockdev.Device
	backend cache.Backend

	dataStart int64 // first SSD page of the cache data partition

	staging *nvram.Staging
	log     *metalog.Log
	codec   delta.Codec

	oldDeltas map[int32]oldDelta // old DAZ slot -> delta location
	dezPages  map[int32]*dezPage // DEZ slot -> occupancy

	ghost *ghostLRU // nil unless SelectiveAdmission

	// metaErr records a metadata-log failure from a path that cannot
	// return it (eviction, best-effort cleaning); the next top-level
	// operation surfaces and clears it, keeping the RPO-zero claim honest.
	metaErr error

	// Cache health state machine (failover.go).
	health      Health
	opSeq       int64  // top-level operations processed (the breaker's clock)
	breaker     []bool // ring of recent SSD read outcomes (true = failed)
	breakerPos  int
	breakerFill int
	breakerFail int
	tripPending bool  // breaker tripped mid-operation; fail over at next preOp
	deadSSD     bool  // SSD fail-stop observed on a swallowing path
	backoffOps  int64 // current half-open probe backoff (ops)
	probeAfter  int64 // opSeq at which the next probe may run
	rebuildLeft int64 // ops left in Rebuilding probation

	// Member-rebuild pump (rebuild.go) — the RAID rebuild, not the cache
	// health machine's Rebuilding probation above.
	rbTokens int   // accumulated rebuild-row budget
	fgMark   int64 // RAIDReads+RAIDWrites at preOp (foreground-pressure probe)

	st        stats.CacheStats
	dataMode  bool
	sharedLog bool // log belongs to the shard plane, not this instance
	cleaning  bool

	tr *obs.Tracer // nil = tracing disabled
}

// maxMetaAddressable is the page-address ceiling imposed by the metadata
// log's uint32 on-flash encoding (Entry.DazPage / Entry.RaidLBA): 2^32
// pages, i.e. 16 TiB at 4 KiB pages. Geometries beyond it would silently
// truncate recovery metadata.
const maxMetaAddressable = int64(1) << 32

// New builds a KDD cache.
func New(cfg Config) (*KDD, error) {
	cfg = cfg.withDefaults()
	if cfg.SSD == nil || cfg.Backend == nil || cfg.Codec == nil {
		return nil, fmt.Errorf("core: SSD, Backend and Codec are required")
	}
	if cfg.CachePages < int64(cfg.Ways) {
		return nil, fmt.Errorf("core: cache of %d pages below one set", cfg.CachePages)
	}
	if !cfg.DisableMetaLog && cfg.SharedLog == nil && cfg.MetaPages < 2 {
		return nil, fmt.Errorf("core: metadata partition needs >=2 pages")
	}
	if cfg.SharedLog != nil && cfg.DisableMetaLog {
		return nil, fmt.Errorf("core: SharedLog conflicts with DisableMetaLog")
	}
	dataStart := cfg.MetaStart + cfg.MetaPages
	if cfg.DataStart > 0 {
		dataStart = cfg.DataStart
	}
	if dataStart+cfg.CachePages > cfg.SSD.Pages() {
		return nil, fmt.Errorf("core: SSD too small: need %d pages, have %d",
			dataStart+cfg.CachePages, cfg.SSD.Pages())
	}
	if cfg.LowWater >= cfg.HighWater {
		return nil, fmt.Errorf("core: cleaner watermarks inverted")
	}
	if !cfg.DisableMetaLog {
		if end := dataStart + cfg.CachePages; end > maxMetaAddressable {
			return nil, fmt.Errorf("core: SSD cache end page %d exceeds the metadata log's uint32 address space (%d pages); shrink the cache or disable the metadata log", end, maxMetaAddressable)
		}
		if bp := cfg.Backend.Pages(); bp > maxMetaAddressable {
			return nil, fmt.Errorf("core: backend of %d pages exceeds the metadata log's uint32 address space (%d pages); shrink the array or disable the metadata log", bp, maxMetaAddressable)
		}
	}
	k := &KDD{
		cfg:       cfg,
		frame:     cache.NewFrame(cfg.CachePages, cfg.Ways, cfg.Backend.StripePages()),
		ssd:       cfg.SSD,
		backend:   cfg.Backend,
		dataStart: dataStart,
		sharedLog: cfg.SharedLog != nil,
		staging:   nvram.NewStaging(cfg.StagingBytes),
		codec:     cfg.Codec,
		oldDeltas: make(map[int32]oldDelta),
		dezPages:  make(map[int32]*dezPage),
		tr:        cfg.Tracer,
	}
	if cfg.FixedDEZSets > 0 {
		if cfg.FixedDEZSets >= k.frame.Sets() {
			return nil, fmt.Errorf("core: FixedDEZSets %d >= %d sets", cfg.FixedDEZSets, k.frame.Sets())
		}
		k.frame.SetDataSets(k.frame.Sets() - cfg.FixedDEZSets)
	}
	if cfg.SharedLog != nil {
		// Plane-owned log: the plane sets its tracer once for all lanes.
		k.log = cfg.SharedLog
	} else if !cfg.DisableMetaLog {
		k.log = metalog.New(cfg.SSD, cfg.MetaStart, cfg.MetaPages, cfg.MetaGCThreshold)
		k.log.SetTracer(cfg.Tracer)
	}
	if cfg.SelectiveAdmission {
		k.ghost = newGhostLRU(int(cfg.CachePages))
	}
	// Data mode (real pages and real deltas end to end) requires both a
	// byte-backed SSD and a real codec; a modelled codec produces sized
	// placeholders only, even if the SSD could persist bytes (the
	// crash-recovery timing stack uses exactly that combination: real
	// metadata-log bytes, modelled data path).
	if s, ok := cfg.SSD.(blockdev.Storer); ok {
		k.dataMode = s.Store() != nil
	}
	if _, modelled := cfg.Codec.(*delta.Modelled); modelled {
		k.dataMode = false
	}
	return k, nil
}

// Name implements cache.Policy.
func (k *KDD) Name() string {
	if m, ok := k.codec.(*delta.Modelled); ok {
		return fmt.Sprintf("KDD-%d%%", int(m.MeanRatio()*100+0.5))
	}
	return "KDD(" + k.codec.Name() + ")"
}

// Stats implements cache.Policy. Metadata traffic is pulled from the log
// at read time.
func (k *KDD) Stats() *stats.CacheStats {
	if k.log != nil && !k.sharedLog {
		ls := k.log.Stats()
		gc := ls.GCPageEquivalent()
		k.st.MetaWrites = ls.PagesWritten - gc
		k.st.MetaGCWrites = gc
	}
	return &k.st
}

// Frame exposes the slot frame for tests and the harness.
func (k *KDD) Frame() *cache.Frame { return k.frame }

// Staging exposes the NVRAM staging buffer (recovery and tests).
func (k *KDD) Staging() *nvram.Staging { return k.staging }

// Codec returns the delta codec in use (recovery reuses it).
func (k *KDD) Codec() delta.Codec { return k.codec }

// Log exposes the metadata log (recovery and tests); nil when disabled.
func (k *KDD) Log() *metalog.Log { return k.log }

// DirtyPages returns the old+delta page population (the cleaner's gauge).
func (k *KDD) DirtyPages() int64 {
	return k.frame.Count(cache.Old) + k.frame.Count(cache.Delta)
}

// cacheLBA maps a slot index to its SSD page.
func (k *KDD) cacheLBA(slot int32) int64 { return k.dataStart + int64(slot) }

// slotOf maps an SSD page back to a slot index (recovery).
func (k *KDD) slotOf(ssdPage int64) int32 { return int32(ssdPage - k.dataStart) }

// stick records a metadata failure for later surfacing; the first error
// wins (later ones are usually consequences of the first).
func (k *KDD) stick(err error) {
	if err != nil && k.metaErr == nil {
		k.metaErr = err
	}
}

// takeSticky returns and clears any recorded metadata failure. Entries
// stay buffered in NVRAM when a flush fails, so once the error has been
// surfaced the log is still coherent and the instance may continue.
func (k *KDD) takeSticky() error {
	err := k.metaErr
	k.metaErr = nil
	return err
}

// logPut appends a metadata entry unless the log is disabled. In batch
// mode the entry reaches NVRAM at once (durability point) and its page
// flush waits for FlushMetaBatch.
func (k *KDD) logPut(t sim.Time, e metalog.Entry) (sim.Time, error) {
	if k.log == nil {
		return t, nil
	}
	if k.cfg.BatchMeta {
		k.log.PutBuffered(e)
		return t, nil
	}
	return k.log.Put(t, e)
}

// FlushMetaBatch commits this lane's deferred metadata page flushes in
// one barrier (BatchMeta mode). No-op otherwise.
func (k *KDD) FlushMetaBatch(t sim.Time) (sim.Time, error) {
	if k.log == nil || !k.cfg.BatchMeta {
		return t, nil
	}
	return k.log.FlushBatch(t, k.cfg.Lane)
}

// cleanEntry builds the log record for a Clean DAZ page.
func (k *KDD) cleanEntry(slot int32, lba int64) metalog.Entry {
	return metalog.Entry{
		State:   metalog.StateClean,
		DazPage: uint32(k.cacheLBA(slot)),
		RaidLBA: uint32(lba),
		DezPage: metalog.NoDez,
	}
}

// freeEntry builds the log record for a reclaimed DAZ page.
func (k *KDD) freeEntry(slot int32) metalog.Entry {
	return metalog.Entry{
		State:   metalog.StateFree,
		DazPage: uint32(k.cacheLBA(slot)),
		DezPage: metalog.NoDez,
	}
}

// trimSlot hands a released cache page back to the FTL.
func (k *KDD) trimSlot(t sim.Time, slot int32) {
	if tr, ok := k.ssd.(blockdev.Trimmer); ok {
		tr.TrimPages(t, k.cacheLBA(slot), 1) //nolint:errcheck // advisory
	}
}

// evictClean frees the LRU Clean slot in the set (logging the free
// entry), or returns NoSlot if the set holds no evictable page.
func (k *KDD) evictClean(t sim.Time, set int) int32 {
	s := k.frame.EvictLRU(set, cache.Clean)
	if s == cache.NoSlot {
		return cache.NoSlot
	}
	k.st.Evictions++
	k.frame.Release(s, true)
	k.trimSlot(t, s)
	if _, err := k.logPut(t, k.freeEntry(s)); err != nil {
		k.stick(fmt.Errorf("core: logging eviction of slot %d: %w", s, err))
	}
	return s
}

// allocDAZ finds a slot for a data page: free first, then LRU-clean
// eviction. May trigger the cleaner when the set is pinned solid.
func (k *KDD) allocDAZ(t sim.Time, lba int64) int32 {
	set := k.frame.SetOf(lba)
	if s := k.frame.AllocFree(set); s != cache.NoSlot {
		return s
	}
	if s := k.evictClean(t, set); s != cache.NoSlot {
		return s
	}
	// Set is all old/delta pages: a cleaning trigger ("when the SSD cache
	// is full", §III-B).
	if _, err := k.cleanPass(t, false); err != nil {
		k.stick(fmt.Errorf("core: cleaning on full set: %w", err))
	}
	if s := k.frame.AllocFree(set); s != cache.NoSlot {
		return s
	}
	return k.evictClean(t, set)
}

var _ cache.Policy = (*KDD)(nil)
