package core

import (
	"fmt"

	"kddcache/internal/cache"
	"kddcache/internal/metalog"
	"kddcache/internal/nvram"
	"kddcache/internal/sim"
)

// This file implements failure handling (§III-E).
//
// Power failure: the head/tail counters are reconstructed from NVRAM, the
// primary map is rebuilt by replaying the metadata log pages head→tail,
// the NVRAM metadata buffer is overlaid, and finally the mapping entries
// for deltas still in the NVRAM staging buffer are applied.
//
// SSD failure: the cache is lost but every data block was dispatched to
// RAID, so the array resynchronises its stale parities through
// reconstruct-write (driven by raid.Array.Resync; see the harness).
//
// HDD failure: Flush first (parity_update for every stale stripe), then
// the RAID rebuild runs (raid.Array.ReplaceDisk).

// Restore reconstructs a KDD instance after a simulated power failure.
// cfg must describe the same SSD device, backend, and geometry as the
// crashed instance; ctr and buffered come from the crashed instance's
// metadata log NVRAM, and staging is its NVRAM staging buffer. Returns
// the recovered cache and the virtual completion time of the log scan.
func Restore(cfg Config, t sim.Time, ctr *nvram.Counters,
	buffered []metalog.Entry, staging *nvram.Staging) (*KDD, sim.Time, error) {
	if cfg.DisableMetaLog {
		return nil, t, fmt.Errorf("core: cannot recover with the metadata log disabled")
	}
	if cfg.SharedLog != nil {
		return nil, t, fmt.Errorf("core: shared-log lanes recover via RestoreWithLog")
	}
	k, err := New(cfg)
	if err != nil {
		return nil, t, err
	}
	k.log = metalog.Restore(cfg.SSD, cfg.MetaStart, cfg.MetaPages,
		cfg.MetaGCThreshold, ctr, buffered)
	k.log.SetTracer(cfg.Tracer)
	replay, done, err := k.log.Recover(t)
	if err != nil {
		return nil, t, err
	}
	if err := k.rebuildFromReplay(replay, staging); err != nil {
		return nil, t, err
	}
	if err := k.resumeMemberRebuild(ctr); err != nil {
		return nil, t, err
	}
	return k, done, nil
}

// RestoreWithLog rebuilds one lane of the shard plane around an
// already-recovered shared metadata log. The plane recovers the log
// ONCE, demultiplexes the replay stream by cache region, and hands each
// lane only the entries addressing its own DAZ/DEZ pages — this function
// is the per-lane tail of Restore. Member-rebuild resumption is the
// plane's job (one array, one checkpoint), not the lane's.
func RestoreWithLog(cfg Config, log *metalog.Log, replay []metalog.Entry,
	staging *nvram.Staging) (*KDD, error) {
	cfg.SharedLog = log
	k, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if err := k.rebuildFromReplay(replay, staging); err != nil {
		return nil, err
	}
	return k, nil
}

// rebuildFromReplay folds a recovered replay stream and the NVRAM
// staging buffer into a freshly-built instance's maps: the shared tail
// of Restore and RestoreWithLog.
func (k *KDD) rebuildFromReplay(replay []metalog.Entry, staging *nvram.Staging) error {
	// 1. Replay logged entries in commit order; last writer wins.
	for _, e := range replay {
		if err := k.applyEntry(e); err != nil {
			return err
		}
	}

	// 2. Overlay the staging buffer: deltas not yet committed to DEZ.
	// StagedDelta.DazPage holds the SSD cache page — the same persistent
	// naming the metadata log uses — so it must go through slotOf, exactly
	// like applyEntry; casting it to a slot directly is wrong whenever the
	// cache data partition does not start at SSD page 0.
	if staging != nil {
		k.staging = staging
		for _, sd := range staging.All() {
			slot := k.slotOf(sd.DazPage)
			if int(slot) < 0 || int64(slot) >= k.frame.Pages() {
				return fmt.Errorf("core: staged delta references slot %d out of range", slot)
			}
			st := k.frame.Slot(slot).State
			if st != cache.Clean && st != cache.Old {
				// The DAZ page must have been admitted before its delta
				// was staged; a Free slot here means the log lost the
				// admission, which the NVRAM path cannot cause.
				return fmt.Errorf("core: staged delta for %v slot %d", st, slot)
			}
			if st == cache.Clean {
				k.frame.Transition(slot, cache.Old)
			}
			// Newest delta wins over any DEZ-committed one.
			k.oldDeltas[slot] = oldDelta{staged: true}
		}
	}

	// 3. Rebuild DEZ occupancy from the surviving old-page records.
	for slot, od := range k.oldDeltas {
		if od.staged {
			continue
		}
		if k.frame.Slot(od.dez).State != cache.Delta {
			k.frame.MarkDelta(od.dez)
		}
		dp := k.dezPages[od.dez]
		if dp == nil {
			dp = &dezPage{}
			k.dezPages[od.dez] = dp
		}
		dp.valid++
		dp.used += od.length
		_ = slot
	}
	return nil
}

// resumeMemberRebuild re-opens any member-rebuild window from its NVRAM
// checkpoint. The watermark is volatile array state, so the crash wiped
// it (the rig models that via CrashRebuildState); without the resume the
// array would silently serve the un-rebuilt region of the target as
// zeros. Rows between the checkpoint and the true crash-time watermark
// are simply reconstructed again — re-rebuilding a row is idempotent.
// ResumeRebuild no-ops when the target has since failed or the
// checkpoint already covers the disk; re-checkpointing afterwards
// records that collapse, keeping a second Restore identical.
func (k *KDD) resumeMemberRebuild(ctr *nvram.Counters) error {
	if ctr.RebuildActive {
		if err := k.backend.ResumeRebuild(int(ctr.RebuildDisk), ctr.RebuildRow); err != nil {
			return fmt.Errorf("core: resuming member rebuild: %w", err)
		}
		k.checkpointRebuild()
	}
	return nil
}

// applyEntry folds one recovered mapping entry into the frame.
func (k *KDD) applyEntry(e metalog.Entry) error {
	slot := k.slotOf(int64(e.DazPage))
	if slot < 0 || int64(slot) >= k.frame.Pages() {
		return fmt.Errorf("core: recovered entry references cache page %d out of range", e.DazPage)
	}
	switch e.State {
	case metalog.StateFree:
		if k.frame.Slot(slot).State != cache.Free {
			k.frame.Release(slot, true)
		}
		delete(k.oldDeltas, slot)
		return nil
	case metalog.StateClean, metalog.StateOld:
		lba := int64(e.RaidLBA)
		// Unbind whatever the slot previously held and wherever this LBA
		// previously lived, then bind fresh.
		if cur := k.frame.Lookup(lba); cur != cache.NoSlot && cur != slot {
			k.frame.Release(cur, true)
			delete(k.oldDeltas, cur)
		}
		if st := k.frame.Slot(slot).State; st != cache.Free {
			k.frame.Release(slot, true)
			delete(k.oldDeltas, slot)
		}
		if e.State == metalog.StateClean {
			k.frame.Insert(lba, slot, cache.Clean)
			delete(k.oldDeltas, slot)
			return nil
		}
		k.frame.Insert(lba, slot, cache.Old)
		k.oldDeltas[slot] = oldDelta{
			dez:    k.slotOf(int64(e.DezPage)),
			off:    int(e.DezOff),
			length: int(e.DezLen),
			raw:    e.DezRaw,
		}
		return nil
	default:
		return fmt.Errorf("core: recovered entry with unexpected state %v", e.State)
	}
}

// CheckInvariants validates the engine's internal consistency; tests and
// the property suite call it after random operation streams.
func (k *KDD) CheckInvariants() error {
	if err := k.frame.CheckInvariants(); err != nil {
		return err
	}
	// Every Old slot has a delta record, and vice versa.
	var oldCount int64
	for i := int32(0); int64(i) < k.frame.Pages(); i++ {
		if k.frame.Slot(i).State == cache.Old {
			oldCount++
			od, ok := k.oldDeltas[i]
			if !ok {
				return fmt.Errorf("core: old slot %d lacks a delta record", i)
			}
			if od.staged {
				if _, ok := k.staging.Get(k.cacheLBA(i)); !ok {
					return fmt.Errorf("core: old slot %d claims staged delta but buffer has none", i)
				}
			} else if k.frame.Slot(od.dez).State != cache.Delta {
				return fmt.Errorf("core: old slot %d points at non-delta slot %d", i, od.dez)
			}
		}
	}
	if int64(len(k.oldDeltas)) != oldCount {
		return fmt.Errorf("core: %d delta records for %d old slots", len(k.oldDeltas), oldCount)
	}
	// DEZ valid counts equal references from old pages.
	refs := make(map[int32]int)
	for _, od := range k.oldDeltas {
		if !od.staged {
			refs[od.dez]++
		}
	}
	for dez, dp := range k.dezPages {
		if refs[dez] != dp.valid {
			return fmt.Errorf("core: dez slot %d valid=%d but %d references", dez, dp.valid, refs[dez])
		}
		if dp.valid <= 0 {
			return fmt.Errorf("core: dez slot %d retained with valid=%d", dez, dp.valid)
		}
	}
	for dez := range refs {
		if _, ok := k.dezPages[dez]; !ok {
			return fmt.Errorf("core: references to untracked dez slot %d", dez)
		}
	}
	return nil
}
