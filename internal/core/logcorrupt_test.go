package core_test

import (
	"errors"
	"testing"

	"kddcache/internal/core"
	"kddcache/internal/metalog"
)

// TestRestoreFailsLoudOnCorruptMetadataLog: a metadata page corrupted
// between shutdown and restart must abort recovery with a descriptive
// error — a silently mis-rebuilt primary map would serve stale data.
func TestRestoreFailsLoudOnCorruptMetadataLog(t *testing.T) {
	r := newRig(t, 512)
	// Enough distinct entries to commit whole metadata pages.
	for wave := 0; wave < 2; wave++ {
		for lba := int64(0); lba < 300; lba++ {
			r.write(t, lba)
		}
	}
	if _, err := r.kdd.Flush(0); err != nil {
		t.Fatal(err)
	}
	ctr := r.kdd.Log().Counters()
	if ctr.Live() == 0 {
		t.Fatal("setup: no committed metadata pages")
	}
	// Silent bit-flip on a live log page: the device checksum passes, so
	// only the log's own page CRC can reject it.
	phys := r.cfg.MetaStart + int64(ctr.Head%uint64(r.cfg.MetaPages))
	if !r.ssd.Store().CorruptPageSilently(phys, 123) {
		t.Fatal("setup: log page not written")
	}
	_, _, err := core.Restore(r.cfg, 0, ctr, r.kdd.Log().BufferedEntries(), r.kdd.Staging())
	if !errors.Is(err, metalog.ErrLogCorrupt) {
		t.Fatalf("Restore = %v, want ErrLogCorrupt", err)
	}
}
