package core_test

import (
	"bytes"
	"testing"

	"kddcache/internal/blockdev"
	"kddcache/internal/cache"
	"kddcache/internal/core"
	"kddcache/internal/delta"
	"kddcache/internal/raid"
	"kddcache/internal/sim"
)

// cachePageOf maps a frame slot to its SSD page (mirrors KDD.cacheLBA).
func (r *rig) cachePageOf(slot int32) int64 {
	return r.cfg.MetaStart + r.cfg.MetaPages + int64(slot)
}

// slotFor returns the frame slot currently holding lba.
func (r *rig) slotFor(t *testing.T, lba int64) int32 {
	t.Helper()
	s := r.kdd.Frame().Lookup(lba)
	if s == cache.NoSlot {
		t.Fatalf("lba %d not cached", lba)
	}
	return s
}

// corruptSlot flips a bit in the SSD page backing a frame slot so the
// next checked read returns ErrMedia (persistent until rewritten).
func (r *rig) corruptSlot(t *testing.T, slot int32) {
	t.Helper()
	if !r.ssd.Store().CorruptPage(r.cachePageOf(slot), 7) {
		t.Fatalf("slot %d has no written SSD page to corrupt", slot)
	}
}

// newFaultRig is newRig with the SSD wrapped in a FaultInjector, for
// transient-error and crash-point scenarios the bare MemStore corruption
// helpers cannot express.
func newFaultRig(t *testing.T, cachePages int64, seed uint64) (*rig, *blockdev.FaultInjector) {
	t.Helper()
	var members []blockdev.Device
	for i := 0; i < 5; i++ {
		members = append(members, blockdev.NewNullDataDevice("d", 4096))
	}
	a, err := raid.New(raid.Config{Level: raid.Level5, ChunkPages: 8}, members)
	if err != nil {
		t.Fatal(err)
	}
	inner := blockdev.NewNullDataDevice("ssd", cachePages+256)
	fi := blockdev.NewFaultInjector(inner, seed)
	cfg := core.Config{
		SSD:        fi,
		Backend:    a,
		CachePages: cachePages,
		Ways:       32,
		MetaStart:  0,
		MetaPages:  64,
		Codec:      delta.ZRLE{},
	}
	k, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{
		ssd: inner, array: a, kdd: k, cfg: cfg,
		oracle: make(map[int64][]byte),
		mut:    delta.NewMutator(5, 0.25),
		rng:    sim.NewRNG(42),
	}, fi
}

func TestTransientMediaErrorRetrySucceeds(t *testing.T) {
	r, fi := newFaultRig(t, 256, 1)
	r.write(t, 9) // Clean
	slot := r.slotFor(t, 9)
	fi.InjectTransient(r.cachePageOf(slot), 1)
	buf := make([]byte, blockdev.PageSize)
	if _, err := r.kdd.Read(0, 9, buf); err != nil {
		t.Fatalf("read with transient fault: %v", err)
	}
	if !bytes.Equal(buf, r.oracle[9]) {
		t.Fatal("retried read served wrong data")
	}
	st := r.kdd.Stats()
	if st.MediaRetries == 0 {
		t.Fatal("transient error did not count a retry")
	}
	if st.MediaFallbacks != 0 || st.SSDMediaErrors != 0 {
		t.Fatalf("transient error escalated to fallback: %+v", st)
	}
}

func TestCleanHitMediaErrorFallsBackAndHeals(t *testing.T) {
	r := newRig(t, 256)
	r.write(t, 9) // Clean
	slot := r.slotFor(t, 9)
	r.corruptSlot(t, slot)
	buf := make([]byte, blockdev.PageSize)
	if _, err := r.kdd.Read(0, 9, buf); err != nil {
		t.Fatalf("read over corrupted cache page: %v", err)
	}
	if !bytes.Equal(buf, r.oracle[9]) {
		t.Fatal("fallback read served wrong data")
	}
	st := r.kdd.Stats()
	if st.SSDMediaErrors == 0 || st.MediaFallbacks == 0 {
		t.Fatalf("media fallback not accounted: %+v", st)
	}
	// The slot was healed in place: still a hit, served from flash again.
	if got := r.kdd.Frame().Slot(slot).State; got != cache.Clean {
		t.Fatalf("healed slot state = %v", got)
	}
	fallbacks := st.MediaFallbacks
	if _, err := r.kdd.Read(0, 9, buf); err != nil {
		t.Fatal(err)
	}
	if r.kdd.Stats().MediaFallbacks != fallbacks {
		t.Fatal("second read still falling back; slot not healed")
	}
	if err := r.kdd.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOldHitLostDazPageHealsRow(t *testing.T) {
	r := newRig(t, 256)
	r.write(t, 5)
	r.write(t, 5) // Old with staged delta; row parity stale
	if r.array.StaleRows() != 1 {
		t.Fatalf("setup: stale rows = %d", r.array.StaleRows())
	}
	slot := r.slotFor(t, 5)
	r.corruptSlot(t, slot) // the DAZ old copy the delta XORs against
	buf := make([]byte, blockdev.PageSize)
	if _, err := r.kdd.Read(0, 5, buf); err != nil {
		t.Fatalf("read over lost old copy: %v", err)
	}
	if !bytes.Equal(buf, r.oracle[5]) {
		t.Fatal("fallback read served wrong data")
	}
	st := r.kdd.Stats()
	if st.MediaFallbacks == 0 || st.RowsHealed == 0 {
		t.Fatalf("row heal not accounted: %+v", st)
	}
	// Healing re-materialised the page as Clean, dropped the staged delta,
	// and recomputed the row parity from member data.
	if got := r.kdd.Frame().Slot(slot).State; got != cache.Clean {
		t.Fatalf("healed slot state = %v", got)
	}
	if r.kdd.Staging().Len() != 0 {
		t.Fatal("staged delta survived the heal")
	}
	if r.array.StaleRows() != 0 {
		t.Fatal("heal left the row parity stale")
	}
	if err := r.kdd.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	r.verifyCache(t)
	// Parity must be genuinely correct, not just marked fresh.
	r.array.FailDisk(1)
	r.verifyRAID(t)
}

func TestOldHitLostDezPageHealsRow(t *testing.T) {
	r := newRig(t, 512)
	// Two waves over 100 pages commit staged deltas into DEZ pages.
	for lba := int64(0); lba < 100; lba++ {
		r.write(t, lba)
	}
	for lba := int64(0); lba < 100; lba++ {
		r.write(t, lba)
	}
	f := r.kdd.Frame()
	corrupted := 0
	for i := int32(0); int64(i) < f.Pages(); i++ {
		if f.Slot(i).State == cache.Delta {
			if r.ssd.Store().CorruptPage(r.cachePageOf(i), 3) {
				corrupted++
			}
		}
	}
	if corrupted == 0 {
		t.Fatal("setup: no DEZ pages to corrupt")
	}
	// Every read must still return the newest version: Old pages whose
	// committed delta is gone heal their row from RAID.
	r.verifyCache(t)
	st := r.kdd.Stats()
	if st.MediaFallbacks == 0 || st.RowsHealed == 0 {
		t.Fatalf("DEZ loss never healed: %+v", st)
	}
	if err := r.kdd.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.kdd.Flush(0); err != nil {
		t.Fatal(err)
	}
	if r.array.StaleRows() != 0 {
		t.Fatalf("stale rows after flush: %d", r.array.StaleRows())
	}
	r.array.FailDisk(2)
	r.verifyRAID(t)
}

func TestWriteHitHealOnLostOldCopy(t *testing.T) {
	r := newRig(t, 256)
	r.write(t, 5)
	r.write(t, 5) // Old with staged delta
	slot := r.slotFor(t, 5)
	r.corruptSlot(t, slot)
	// The write hit cannot generate a delta against an unreadable old
	// copy: it must heal the row and degrade to the conventional path.
	r.write(t, 5)
	st := r.kdd.Stats()
	if st.MediaFallbacks == 0 {
		t.Fatalf("write-hit heal not accounted: %+v", st)
	}
	if got := r.kdd.Frame().Slot(slot).State; got != cache.Clean {
		t.Fatalf("slot state after write-hit heal = %v", got)
	}
	if r.array.StaleRows() != 0 {
		t.Fatal("write-hit heal left stale parity")
	}
	if err := r.kdd.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	r.verifyCache(t)
	r.array.FailDisk(3)
	r.verifyRAID(t)
}

func TestCleanerFallsBackToResyncOnLostDelta(t *testing.T) {
	r := newRig(t, 512)
	for lba := int64(0); lba < 100; lba++ {
		r.write(t, lba)
	}
	for lba := int64(0); lba < 100; lba++ {
		r.write(t, lba)
	}
	// Corrupt every DEZ page, then make the cleaner repair all parity:
	// the delta RMW hits ErrMedia and must fall back to a full resync.
	f := r.kdd.Frame()
	corrupted := 0
	for i := int32(0); int64(i) < f.Pages(); i++ {
		if f.Slot(i).State == cache.Delta {
			if r.ssd.Store().CorruptPage(r.cachePageOf(i), 11) {
				corrupted++
			}
		}
	}
	if corrupted == 0 {
		t.Fatal("setup: no DEZ pages to corrupt")
	}
	if _, err := r.kdd.Flush(0); err != nil {
		t.Fatalf("flush over corrupted deltas: %v", err)
	}
	st := r.kdd.Stats()
	if st.MediaFallbacks == 0 || st.RowsHealed == 0 {
		t.Fatalf("cleaner never fell back to resync: %+v", st)
	}
	if r.array.StaleRows() != 0 {
		t.Fatalf("stale rows after fallback flush: %d", r.array.StaleRows())
	}
	if r.kdd.DirtyPages() != 0 {
		t.Fatalf("fallback flush left %d dirty pages", r.kdd.DirtyPages())
	}
	if err := r.kdd.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	r.array.FailDisk(0)
	r.verifyRAID(t)
}

// TestRestoreStagedDeltaNonzeroMetaStart is the regression test for the
// Restore bug where staged deltas were applied with the raw SSD page used
// as a slot index instead of going through slotOf. With the cache data
// partition offset from SSD page 0 the two differ, so recovery either
// rejected valid state or corrupted the mapping.
func TestRestoreStagedDeltaNonzeroMetaStart(t *testing.T) {
	r := newRig(t, 256, func(c *core.Config) { c.MetaStart = 128 })
	for lba := int64(0); lba < 40; lba++ {
		r.write(t, lba)
	}
	for lba := int64(0); lba < 40; lba += 2 {
		r.write(t, lba) // Old pages, some deltas still staged in NVRAM
	}
	if r.kdd.Staging().Len() == 0 {
		t.Fatal("setup: no staged deltas at crash time")
	}
	r.crash(t)
	if err := r.kdd.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	r.verifyCache(t)
	r.verifyRAID(t)
	// The recovered instance must still repair all stale parity.
	if _, err := r.kdd.Flush(0); err != nil {
		t.Fatal(err)
	}
	if r.array.StaleRows() != 0 {
		t.Fatalf("stale rows after recovered flush: %d", r.array.StaleRows())
	}
	r.array.FailDisk(1)
	r.verifyRAID(t)
}

func TestRandomMediaFaultsOracleProperty(t *testing.T) {
	// Random corruption of cache-data pages mid-workload: reads must
	// always match the oracle and invariants must always hold, whatever
	// mix of DAZ/DEZ/unused pages the faults land on.
	for _, seed := range []uint64{3, 17, 99} {
		r := newRig(t, 256)
		rng := sim.NewRNG(seed)
		dataStart := r.cfg.MetaStart + r.cfg.MetaPages
		buf := make([]byte, blockdev.PageSize)
		for i := 0; i < 1200; i++ {
			lba := int64(rng.Uint64n(300))
			if rng.Float64() < 0.6 {
				r.write(t, lba)
			} else if want, ok := r.oracle[lba]; ok {
				if _, err := r.kdd.Read(0, lba, buf); err != nil {
					t.Fatalf("seed %d op %d: read %d: %v", seed, i, lba, err)
				}
				if !bytes.Equal(buf, want) {
					t.Fatalf("seed %d op %d: mismatch at %d", seed, i, lba)
				}
			}
			if i%50 == 49 {
				// Corrupt a random page in the cache data partition.
				page := dataStart + int64(rng.Uint64n(uint64(r.cfg.CachePages)))
				r.ssd.Store().CorruptPage(page, uint(rng.Uint64n(8)))
			}
			if i%300 == 299 {
				if _, err := r.kdd.Clean(0, false); err != nil {
					t.Fatalf("seed %d: clean: %v", seed, err)
				}
			}
		}
		if err := r.kdd.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		r.verifyCache(t)
		if _, err := r.kdd.Flush(0); err != nil {
			t.Fatalf("seed %d: flush: %v", seed, err)
		}
		if r.array.StaleRows() != 0 {
			t.Fatalf("seed %d: stale rows after flush", seed)
		}
		r.array.FailDisk(int(seed) % 5)
		r.verifyRAID(t)
	}
}
