package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCacheStatsRatios(t *testing.T) {
	s := &CacheStats{Reads: 60, Writes: 40, ReadHits: 30, WriteHits: 20}
	if got := s.Requests(); got != 100 {
		t.Fatalf("Requests = %d", got)
	}
	if got := s.HitRatio(); got != 0.5 {
		t.Fatalf("HitRatio = %f", got)
	}
	if got := s.ReadHitRatio(); got != 0.5 {
		t.Fatalf("ReadHitRatio = %f", got)
	}
}

func TestCacheStatsEmptyRatios(t *testing.T) {
	var s CacheStats
	if s.HitRatio() != 0 || s.ReadHitRatio() != 0 || s.MetaShare() != 0 {
		t.Fatal("empty stats should report zero ratios")
	}
}

func TestSSDWritesBreakdown(t *testing.T) {
	s := &CacheStats{
		ReadFills: 10, WriteAllocs: 20, DeltaCommits: 5,
		VersionWrite: 3, MetaWrites: 2, MetaGCWrites: 1,
	}
	if got := s.SSDWrites(); got != 41 {
		t.Fatalf("SSDWrites = %d, want 41", got)
	}
	want := 3.0 / 41.0
	if got := s.MetaShare(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("MetaShare = %f, want %f", got, want)
	}
}

func TestCacheStatsAdd(t *testing.T) {
	a := &CacheStats{Reads: 1, Writes: 2, ReadFills: 3, MetaWrites: 4, RAIDReads: 5}
	b := &CacheStats{Reads: 10, Writes: 20, ReadFills: 30, MetaWrites: 40, RAIDReads: 50}
	a.Add(b)
	if a.Reads != 11 || a.Writes != 22 || a.ReadFills != 33 || a.MetaWrites != 44 || a.RAIDReads != 55 {
		t.Fatalf("Add produced %+v", a)
	}
}

func TestCacheStatsString(t *testing.T) {
	s := &CacheStats{Reads: 1, ReadHits: 1}
	if !strings.Contains(s.String(), "hit=1.0000") {
		t.Fatalf("String() = %q", s.String())
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(1024)
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if got := h.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("Mean = %f", got)
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("Min/Max = %d/%d", h.Min(), h.Max())
	}
	p50 := h.Percentile(50)
	if p50 < 40 || p50 > 60 {
		t.Fatalf("P50 = %d, want ~50", p50)
	}
	if h.Percentile(0) != 1 || h.Percentile(100) != 100 {
		t.Fatalf("extreme percentiles wrong: %d %d", h.Percentile(0), h.Percentile(100))
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(0)
	if h.Mean() != 0 || h.Min() != 0 || h.Percentile(50) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramReservoirDecimation(t *testing.T) {
	h := NewHistogram(128)
	for i := int64(0); i < 100000; i++ {
		h.Observe(i)
	}
	if len(h.samples) >= 128 {
		t.Fatalf("reservoir grew to %d, cap 128", len(h.samples))
	}
	if h.Count() != 100000 {
		t.Fatalf("Count = %d", h.Count())
	}
	// Percentiles should remain roughly accurate after decimation.
	p90 := float64(h.Percentile(90))
	if p90 < 80000 || p90 > 99999 {
		t.Fatalf("P90 after decimation = %f", p90)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(1024), NewHistogram(1024)
	for i := int64(1); i <= 10; i++ {
		a.Observe(i)
		b.Observe(i * 100)
	}
	a.Merge(b)
	if a.Count() != 20 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Sum() != 55+5500 {
		t.Fatalf("merged sum = %d", a.Sum())
	}
	bk := a.Buckets()
	var bkSum int64
	for _, c := range bk {
		bkSum += c
	}
	if bkSum != 20 {
		t.Fatalf("bucket counts sum to %d, want 20", bkSum)
	}
	if a.Min() != 1 || a.Max() != 1000 {
		t.Fatalf("merged min/max = %d/%d", a.Min(), a.Max())
	}
	var empty Histogram
	before := a.Count()
	a.Merge(&empty)
	if a.Count() != before {
		t.Fatal("merging empty histogram changed count")
	}
}

func TestHistogramMeanProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		h := NewHistogram(1 << 20)
		var sum int64
		for _, v := range vals {
			h.Observe(int64(v))
			sum += int64(v)
		}
		if len(vals) == 0 {
			return h.Mean() == 0
		}
		want := float64(sum) / float64(len(vals))
		return math.Abs(h.Mean()-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLifetimeModel(t *testing.T) {
	m := DefaultLifetimeModel(262144) // 1GB of 4K pages
	total := m.TotalWritablePages()
	if total <= 0 {
		t.Fatal("non-positive writable pages")
	}
	days := m.LifetimeDays(total / 30)
	if math.Abs(days-30) > 1e-9 {
		t.Fatalf("LifetimeDays = %f, want 30", days)
	}
	if m.LifetimeDays(0) != 0 {
		t.Fatal("zero write rate should yield 0 (undefined) lifetime")
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(510, 100); math.Abs(got-5.1) > 1e-9 {
		t.Fatalf("Improvement = %f, want 5.1", got)
	}
	if Improvement(10, 0) != 0 {
		t.Fatal("division by zero not guarded")
	}
}

func TestTableRendering(t *testing.T) {
	s := []Series{
		{Label: "WT", X: []float64{50, 100}, Y: []float64{0.5, 0.6}},
		{Label: "KDD-25%", X: []float64{50, 100}, Y: []float64{0.45}},
	}
	out := Table("Fig 5 (Fin1)", "cache(Kpages)", s)
	if !strings.Contains(out, "Fig 5 (Fin1)") || !strings.Contains(out, "WT") {
		t.Fatalf("table missing headers:\n%s", out)
	}
	if !strings.Contains(out, "0.4500") || !strings.Contains(out, "-") {
		t.Fatalf("table missing values / placeholder:\n%s", out)
	}
	if Table("empty", "x", nil) == "" {
		t.Fatal("empty table should still include a title")
	}
}

// TestHistogramMergeWeighted pins the weight-aware reservoir merge: a
// long heavily-decimated run merged with a short skip=1 run must not let
// the short run's raw samples swamp the merged percentiles (each sample
// stands for `skip` observations, and the two sides' rates differ).
func TestHistogramMergeWeighted(t *testing.T) {
	a, b := NewHistogram(128), NewHistogram(128)
	for i := int64(0); i < 100000; i++ {
		a.Observe(i) // uniform 0..100k, reservoir decimated ~1000x
	}
	for i := int64(0); i < 200; i++ {
		b.Observe(1000000) // 0.2% of the merged observations
	}
	a.Merge(b)
	if len(a.samples) >= a.maxSamples {
		t.Fatalf("merged reservoir has %d samples, bound %d", len(a.samples), a.maxSamples)
	}
	if a.Count() != 100200 || a.Max() != 1000000 {
		t.Fatalf("merged count/max = %d/%d", a.Count(), a.Max())
	}
	// With weight-aware thinning the median stays in the long run's
	// range; the old concatenating merge pulled it to 1000000 because
	// the short run contributed 200 of ~264 reservoir samples.
	if p50 := a.Percentile(50); p50 < 25000 || p50 > 75000 {
		t.Fatalf("P50 after weighted merge = %d, want ~50000", p50)
	}

	// Merging in the other direction must thin the receiver's own
	// skip=1 reservoir up to the argument's coarser rate.
	c := NewHistogram(128)
	for i := int64(0); i < 200; i++ {
		c.Observe(1000000)
	}
	d := NewHistogram(128)
	for i := int64(0); i < 100000; i++ {
		d.Observe(i)
	}
	c.Merge(d)
	if len(c.samples) >= c.maxSamples {
		t.Fatalf("merged reservoir has %d samples, bound %d", len(c.samples), c.maxSamples)
	}
	if p50 := c.Percentile(50); p50 < 25000 || p50 > 75000 {
		t.Fatalf("P50 after reverse weighted merge = %d, want ~50000", p50)
	}

	// Two nearly-full same-rate reservoirs: the naive merge exceeded
	// maxSamples; the fixed one re-decimates back under the bound.
	e, f := NewHistogram(128), NewHistogram(128)
	for i := int64(0); i < 100; i++ {
		e.Observe(i)
		f.Observe(i + 100)
	}
	e.Merge(f)
	if len(e.samples) >= e.maxSamples {
		t.Fatalf("same-rate merge reservoir has %d samples, bound %d", len(e.samples), e.maxSamples)
	}
	if e.skip != 2 {
		t.Fatalf("same-rate merge skip = %d, want 2 after one halving", e.skip)
	}
}
