package stats

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Export helpers: the harness prints figures as text tables; these render
// the same series as CSV or JSON for external plotting tools.

// WriteCSV renders labelled series as CSV with one row per x value:
// header "x,<label1>,<label2>,..." followed by data rows. Series are
// aligned by index; missing points render empty.
func WriteCSV(w io.Writer, xName string, series []Series) error {
	if len(series) == 0 {
		_, err := fmt.Fprintln(w, xName)
		return err
	}
	cols := make([]string, 0, len(series)+1)
	cols = append(cols, csvEscape(xName))
	for _, s := range series {
		cols = append(cols, csvEscape(s.Label))
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	n := 0
	for _, s := range series {
		if len(s.X) > n {
			n = len(s.X)
		}
	}
	for i := 0; i < n; i++ {
		row := make([]string, 0, len(series)+1)
		x := ""
		for _, s := range series {
			if i < len(s.X) {
				x = fmt.Sprintf("%g", s.X[i])
				break
			}
		}
		row = append(row, x)
		for _, s := range series {
			if i < len(s.Y) {
				row = append(row, fmt.Sprintf("%g", s.Y[i]))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// csvEscape quotes a field when it contains separators or quotes.
func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// figureJSON is the JSON shape WriteJSON emits.
type figureJSON struct {
	XName  string   `json:"x_name"`
	Series []Series `json:"series"`
}

// WriteJSON renders labelled series as a JSON document.
func WriteJSON(w io.Writer, xName string, series []Series) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(figureJSON{XName: xName, Series: series})
}

// ParseSeriesJSON reads back what WriteJSON produced.
func ParseSeriesJSON(r io.Reader) (string, []Series, error) {
	var f figureJSON
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return "", nil, err
	}
	return f.XName, f.Series, nil
}
