package stats

import (
	"bytes"
	"strings"
	"testing"
)

func sampleSeries() []Series {
	return []Series{
		{Label: "WT", X: []float64{1, 2}, Y: []float64{0.5, 0.6}},
		{Label: "KDD,25%", X: []float64{1, 2}, Y: []float64{0.45, 0.55}},
		{Label: "short", X: []float64{1}, Y: []float64{0.4}},
	}
}

func TestWriteCSV(t *testing.T) {
	var b bytes.Buffer
	if err := WriteCSV(&b, "cache", sampleSeries()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), b.String())
	}
	if lines[0] != `cache,WT,"KDD,25%",short` {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "1,0.5,0.45,0.4" {
		t.Fatalf("row1 = %q", lines[1])
	}
	if lines[2] != "2,0.6,0.55," {
		t.Fatalf("row2 = %q (short series should leave a blank)", lines[2])
	}
}

func TestWriteCSVEmpty(t *testing.T) {
	var b bytes.Buffer
	if err := WriteCSV(&b, "x", nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(b.String()) != "x" {
		t.Fatalf("empty csv = %q", b.String())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	var b bytes.Buffer
	if err := WriteJSON(&b, "readrate", sampleSeries()); err != nil {
		t.Fatal(err)
	}
	xName, series, err := ParseSeriesJSON(&b)
	if err != nil {
		t.Fatal(err)
	}
	if xName != "readrate" || len(series) != 3 {
		t.Fatalf("round trip lost data: %q %d", xName, len(series))
	}
	if series[1].Label != "KDD,25%" || series[1].Y[1] != 0.55 {
		t.Fatalf("series corrupted: %+v", series[1])
	}
}

func TestParseSeriesJSONError(t *testing.T) {
	if _, _, err := ParseSeriesJSON(strings.NewReader("{bad")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestCSVEscape(t *testing.T) {
	if csvEscape("plain") != "plain" {
		t.Fatal("plain escaped")
	}
	if csvEscape(`with"quote`) != `"with""quote"` {
		t.Fatalf("quote escape: %q", csvEscape(`with"quote`))
	}
}
