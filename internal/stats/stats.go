// Package stats collects the metrics the paper's evaluation reports:
// cache hit ratios, SSD write traffic broken down by cause, response-time
// distributions, and SSD lifetime estimates.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// CacheStats accumulates the counters the trace-driven simulator reports
// after each run (paper §IV-A1). All values count 4KB pages or requests.
type CacheStats struct {
	// Request counters.
	Reads      int64 // read requests (pages)
	Writes     int64 // write requests (pages)
	ReadHits   int64
	WriteHits  int64
	ReadMisses int64
	WriteMiss  int64

	// SSD write traffic, broken down by cause (pages written to flash).
	ReadFills    int64 // cache fill on read miss
	WriteAllocs  int64 // data written to DAZ/cache on writes
	DeltaCommits int64 // DEZ pages written (KDD only)
	VersionWrite int64 // new-version pages (LeavO only)
	MetaWrites   int64 // metadata pages written (LeavO per-update, KDD log)
	MetaGCWrites int64 // metadata pages rewritten by log GC (KDD only)

	// Cache management.
	Evictions        int64 // clean-page evictions
	Reclaims         int64 // old/delta page reclaims by the cleaner
	CleanerRuns      int64
	AdmissionRejects int64 // misses not cached (selective admission)

	// RAID-side operations (block I/Os issued to the array).
	RAIDReads        int64
	RAIDWrites       int64
	ParityUpdates    int64 // deferred parity repairs performed
	SmallWritesSaved int64 // writes that skipped the parity update

	// Partial-fault handling (media errors on the cache device).
	MediaRetries   int64 // SSD reads retried after a transient media error
	SSDMediaErrors int64 // SSD media errors that persisted past the retries
	MediaFallbacks int64 // operations served from RAID after losing SSD pages
	RowsHealed     int64 // rows re-materialised and resynced after media loss

	// Whole-device failover (cache health state machine).
	Failovers      int64 // transitions into pass-through (Bypass or Degraded)
	BreakerTrips   int64 // circuit-breaker trips on media-error rate
	BreakerProbes  int64 // half-open probes issued while Degraded
	EmergencyFolds int64 // emergency stale-parity folds run on failover
	FoldRMWs       int64 // rows folded cheaply from NVRAM-staged deltas
	FoldResyncs    int64 // rows folded the hard way via member resync
	PassReads      int64 // reads served in pass-through mode
	PassWrites     int64 // writes served in pass-through mode
	Reattaches     int64 // successful cache re-attachments

	// Online member rebuild (the cache paces the array's rebuild engine).
	RebuildSteps  int64 // rebuild steps pumped between foreground ops
	RebuildRows   int64 // member rows reconstructed by pumped steps
	RebuildsDone  int64 // member rebuilds driven to completion by the pump
	SpareAttaches int64 // hot spares auto-attached to failed members
}

// Requests returns the total number of request pages processed.
func (s *CacheStats) Requests() int64 { return s.Reads + s.Writes }

// Hits returns total cache hits.
func (s *CacheStats) Hits() int64 { return s.ReadHits + s.WriteHits }

// HitRatio returns overall hit ratio in [0,1].
func (s *CacheStats) HitRatio() float64 {
	if s.Requests() == 0 {
		return 0
	}
	return float64(s.Hits()) / float64(s.Requests())
}

// ReadHitRatio returns the read hit ratio in [0,1].
func (s *CacheStats) ReadHitRatio() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.ReadHits) / float64(s.Reads)
}

// SSDWrites returns total pages written to the SSD: the metric Figures 6,
// 8 and 11 plot and the one SSD lifetime is proportional to.
func (s *CacheStats) SSDWrites() int64 {
	return s.ReadFills + s.WriteAllocs + s.DeltaCommits + s.VersionWrite +
		s.MetaWrites + s.MetaGCWrites
}

// MetaShare returns the fraction of SSD write traffic due to metadata,
// the quantity Figure 4 plots.
func (s *CacheStats) MetaShare() float64 {
	tot := s.SSDWrites()
	if tot == 0 {
		return 0
	}
	return float64(s.MetaWrites+s.MetaGCWrites) / float64(tot)
}

// Add accumulates o into s.
func (s *CacheStats) Add(o *CacheStats) {
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.ReadHits += o.ReadHits
	s.WriteHits += o.WriteHits
	s.ReadMisses += o.ReadMisses
	s.WriteMiss += o.WriteMiss
	s.ReadFills += o.ReadFills
	s.WriteAllocs += o.WriteAllocs
	s.DeltaCommits += o.DeltaCommits
	s.VersionWrite += o.VersionWrite
	s.MetaWrites += o.MetaWrites
	s.MetaGCWrites += o.MetaGCWrites
	s.Evictions += o.Evictions
	s.Reclaims += o.Reclaims
	s.CleanerRuns += o.CleanerRuns
	s.AdmissionRejects += o.AdmissionRejects
	s.RAIDReads += o.RAIDReads
	s.RAIDWrites += o.RAIDWrites
	s.ParityUpdates += o.ParityUpdates
	s.SmallWritesSaved += o.SmallWritesSaved
	s.MediaRetries += o.MediaRetries
	s.SSDMediaErrors += o.SSDMediaErrors
	s.MediaFallbacks += o.MediaFallbacks
	s.RowsHealed += o.RowsHealed
	s.Failovers += o.Failovers
	s.BreakerTrips += o.BreakerTrips
	s.BreakerProbes += o.BreakerProbes
	s.EmergencyFolds += o.EmergencyFolds
	s.FoldRMWs += o.FoldRMWs
	s.FoldResyncs += o.FoldResyncs
	s.PassReads += o.PassReads
	s.PassWrites += o.PassWrites
	s.Reattaches += o.Reattaches
	s.RebuildSteps += o.RebuildSteps
	s.RebuildRows += o.RebuildRows
	s.RebuildsDone += o.RebuildsDone
	s.SpareAttaches += o.SpareAttaches
}

func (s *CacheStats) String() string {
	return fmt.Sprintf(
		"reqs=%d hit=%.4f ssdWrites=%d (fill=%d alloc=%d delta=%d ver=%d meta=%d gc=%d) raidR=%d raidW=%d",
		s.Requests(), s.HitRatio(), s.SSDWrites(), s.ReadFills, s.WriteAllocs,
		s.DeltaCommits, s.VersionWrite, s.MetaWrites, s.MetaGCWrites,
		s.RAIDReads, s.RAIDWrites)
}

// Histogram is a latency histogram with power-of-two-ish buckets plus an
// exact mean. Values are arbitrary int64 units (we use nanoseconds).
type Histogram struct {
	count int64
	sum   int64
	min   int64
	max   int64
	// buckets[i] counts values in [2^i, 2^(i+1)); values <1 land in 0.
	buckets [64]int64
	// A bounded reservoir of raw samples for exact percentiles.
	samples    []int64
	maxSamples int
	skip       int64 // reservoir decimation factor once full
}

// NewHistogram returns a histogram keeping at most maxSamples raw values
// for percentile queries (decimated uniformly once the limit is reached).
func NewHistogram(maxSamples int) *Histogram {
	if maxSamples <= 0 {
		maxSamples = 1 << 16
	}
	return &Histogram{maxSamples: maxSamples, skip: 1}
}

// Observe records v.
func (h *Histogram) Observe(v int64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	idx := 0
	for x := v; x > 1 && idx < 63; x >>= 1 {
		idx++
	}
	h.buckets[idx]++
	if h.count%h.skip == 0 {
		h.samples = append(h.samples, v)
		if len(h.samples) >= h.maxSamples {
			// Halve the reservoir, double the decimation.
			half := h.samples[:0]
			for i := 0; i < len(h.samples); i += 2 {
				half = append(half, h.samples[i])
			}
			h.samples = half
			h.skip *= 2
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the exact sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum }

// Buckets returns a copy of the power-of-two bucket counts: buckets[i]
// holds observations v with floor(log2 v) == i (bucket 0 also takes
// v <= 1). Exposition layers (the obs registry) render these as
// cumulative Prometheus buckets.
func (h *Histogram) Buckets() [64]int64 { return h.buckets }

// Mean returns the exact mean of all observations (0 if empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min returns the smallest observation (0 if empty).
func (h *Histogram) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation.
func (h *Histogram) Max() int64 { return h.max }

// Percentile returns the approximate p-th percentile (p in [0,100]) from
// the sample reservoir.
func (h *Histogram) Percentile(p float64) int64 {
	if len(h.samples) == 0 {
		return 0
	}
	s := make([]int64, len(h.samples))
	copy(s, h.samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	idx := int(p / 100 * float64(len(s)-1))
	return s[idx]
}

// Merge folds o into h. Percentile accuracy after merging is limited by
// both reservoirs. o is not modified.
func (h *Histogram) Merge(o *Histogram) {
	if o.count == 0 {
		return
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
	// Each reservoir sample stands for `skip` raw observations, and the
	// two sides may have decimated at different rates (a long run merged
	// with a short one). Thin both sides to the coarser of the two rates
	// before concatenating so neither is over-represented in merged
	// percentiles, then keep halving until the result respects h's
	// reservoir bound (restoring Observe's len < maxSamples invariant).
	hSkip, oSkip := h.skip, o.skip
	if hSkip <= 0 {
		hSkip = 1
	}
	if oSkip <= 0 {
		oSkip = 1
	}
	skip := hSkip
	if oSkip > skip {
		skip = oSkip
	}
	merged := make([]int64, 0, len(h.samples)+len(o.samples))
	merged = thin(merged, h.samples, skip/hSkip)
	merged = thin(merged, o.samples, skip/oSkip)
	if h.maxSamples > 0 {
		for len(merged) >= h.maxSamples {
			half := merged[:0]
			for i := 0; i < len(merged); i += 2 {
				half = append(half, merged[i])
			}
			merged = half
			skip *= 2
		}
	}
	h.samples, h.skip = merged, skip
}

// thin appends every step-th element of s to dst. Decimation factors
// only ever double, so step is always an exact power-of-two ratio of
// two skip rates.
func thin(dst, s []int64, step int64) []int64 {
	for i := 0; i < len(s); i += int(step) {
		dst = append(dst, s[i])
	}
	return dst
}

// LifetimeModel estimates SSD cache lifetime from write traffic, following
// the paper's reasoning: lifetime is inversely proportional to the bytes
// written to flash (§IV-A3 reports lifetime improvement as the ratio of
// write traffics).
type LifetimeModel struct {
	CapacityPages  int64   // SSD capacity in pages
	PagesPerBlock  int64   // flash pages per erase block
	PECycles       int64   // program/erase budget per block (MLC ~10k)
	WriteAmplifier float64 // FTL write amplification factor (>= 1)
}

// DefaultLifetimeModel describes the 1GB MLC cache device used in §IV-B.
func DefaultLifetimeModel(capacityPages int64) LifetimeModel {
	return LifetimeModel{
		CapacityPages:  capacityPages,
		PagesPerBlock:  128,
		PECycles:       10000,
		WriteAmplifier: 1.1,
	}
}

// TotalWritablePages returns how many host page writes the device endures
// before wear-out under this model.
func (m LifetimeModel) TotalWritablePages() float64 {
	return float64(m.CapacityPages) * float64(m.PECycles) / m.WriteAmplifier
}

// LifetimeDays estimates lifetime in days given a host write rate in
// pages/day.
func (m LifetimeModel) LifetimeDays(pagesPerDay float64) float64 {
	if pagesPerDay <= 0 {
		return 0
	}
	return m.TotalWritablePages() / pagesPerDay
}

// Improvement returns how much longer a device lasts writing `mine` pages
// instead of `theirs` for the same workload (the paper's "5.1×" metric).
func Improvement(theirs, mine int64) float64 {
	if mine <= 0 {
		return 0
	}
	return float64(theirs) / float64(mine)
}

// Series is a labelled sequence of (x, y) points: one curve in a figure.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Table renders labelled series as an aligned text table with one row per
// x value, matching how the harness prints each paper figure.
func Table(title, xName string, series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	if len(series) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%-14s", xName)
	for _, s := range series {
		fmt.Fprintf(&b, "%14s", s.Label)
	}
	b.WriteByte('\n')
	for i := range series[0].X {
		fmt.Fprintf(&b, "%-14.4g", series[0].X[i])
		for _, s := range series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, "%14.4f", s.Y[i])
			} else {
				fmt.Fprintf(&b, "%14s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
