package trace

import (
	"strings"
	"testing"
)

// checkTraceSane asserts the geometry invariants every successfully
// parsed trace must satisfy, whatever the input: positive page counts,
// non-negative page addresses and times, and extents that cannot
// overflow when walked.
func checkTraceSane(t *testing.T, tr *Trace) {
	t.Helper()
	for i, r := range tr.Requests {
		if r.Pages < 1 {
			t.Fatalf("request %d: pages %d < 1", i, r.Pages)
		}
		if r.LBA < 0 {
			t.Fatalf("request %d: negative lba %d", i, r.LBA)
		}
		if r.Time < 0 {
			t.Fatalf("request %d: negative time %d", i, r.Time)
		}
		if end := r.LBA + int64(r.Pages); end < r.LBA {
			t.Fatalf("request %d: extent overflows int64", i)
		}
	}
	if tr.MaxLBA() < 0 {
		t.Fatalf("MaxLBA negative")
	}
}

func FuzzParseSPC(f *testing.F) {
	f.Add("0,20941264,8192,W,0.551706\n1,3436288,15872,r,1.25\n")
	f.Add("# comment\n\n0,0,4096,W,0.5\n")
	f.Add("0,-5,8192,W,0.5\n")
	f.Add("0,1,8192,W,NaN\n")
	f.Add("0,9223372036854775807,9223372036854775807,W,1e300\n")
	f.Fuzz(func(t *testing.T, s string) {
		tr, err := ParseSPC("fuzz", strings.NewReader(s))
		if err != nil {
			return
		}
		checkTraceSane(t, tr)
	})
}

func FuzzParseMSR(f *testing.F) {
	f.Add("128166372003061629,hm,0,Write,2449920,8192,1331\n128166372016382155,hm,0,Read,8192,4096,388\n")
	f.Add("5,h,0,Write,0,4096,1\n1,h,0,Read,0,4096,1\n") // backwards time
	f.Add("-1,h,0,Write,0,4096,1\n")
	f.Add("0,h,0,Write,9223372036854775807,9223372036854775807,1\n")
	f.Fuzz(func(t *testing.T, s string) {
		tr, err := ParseMSR("fuzz", strings.NewReader(s))
		if err != nil {
			return
		}
		checkTraceSane(t, tr)
	})
}

func FuzzParseUniform(f *testing.F) {
	f.Add("# uniform trace: u\n5,W,10,2\n9,R,99,1\n")
	f.Add("-1,W,1,1\n")
	f.Add("1,W,-1,1\n")
	f.Add("1,W,1,2147483647\n")
	f.Fuzz(func(t *testing.T, s string) {
		tr, err := ParseUniform("fuzz", strings.NewReader(s))
		if err != nil {
			return
		}
		checkTraceSane(t, tr)
	})
}
