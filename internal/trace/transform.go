package trace

import (
	"kddcache/internal/sim"
)

// Transformations for adapting real traces (which may address terabytes
// over many hours) to a simulated array: address remapping, time scaling,
// and request clipping.

// Remap folds all LBAs into [0, maxPages) with a stride-preserving
// modulo: page p maps to p mod maxPages, keeping sequential runs
// sequential. Multi-page requests that would wrap are split.
func (tr *Trace) Remap(maxPages int64) *Trace {
	if maxPages <= 0 {
		panic("trace: Remap needs a positive page count")
	}
	out := &Trace{Name: tr.Name}
	for _, r := range tr.Requests {
		lba := r.LBA % maxPages
		remaining := int64(r.Pages)
		for remaining > 0 {
			run := remaining
			if lba+run > maxPages {
				run = maxPages - lba
			}
			out.Requests = append(out.Requests, Request{
				Time: r.Time, Op: r.Op, LBA: lba, Pages: int(run),
			})
			remaining -= run
			lba = 0
		}
	}
	return out
}

// Clip keeps only the first n requests.
func (tr *Trace) Clip(n int) *Trace {
	if n > len(tr.Requests) {
		n = len(tr.Requests)
	}
	return &Trace{Name: tr.Name, Requests: tr.Requests[:n]}
}

// TimeWindow keeps requests with Time in [from, to), rebasing timestamps
// to start at zero — the paper replays "each workload for 30 minutes".
func (tr *Trace) TimeWindow(from, to sim.Time) *Trace {
	out := &Trace{Name: tr.Name}
	for _, r := range tr.Requests {
		if r.Time >= from && r.Time < to {
			r.Time -= from
			out.Requests = append(out.Requests, r)
		}
	}
	return out
}

// SpeedUp divides every timestamp by factor (>1 compresses the trace so
// it replays faster; the arrival *order* is unchanged).
func (tr *Trace) SpeedUp(factor float64) *Trace {
	if factor <= 0 {
		panic("trace: SpeedUp needs a positive factor")
	}
	out := &Trace{Name: tr.Name, Requests: make([]Request, len(tr.Requests))}
	copy(out.Requests, tr.Requests)
	for i := range out.Requests {
		out.Requests[i].Time = sim.Time(float64(out.Requests[i].Time) / factor)
	}
	return out
}

// SplitPages expands multi-page requests into single-page requests,
// preserving order and timestamps (some cache studies want page streams).
func (tr *Trace) SplitPages() *Trace {
	out := &Trace{Name: tr.Name}
	for _, r := range tr.Requests {
		for p := 0; p < r.Pages; p++ {
			out.Requests = append(out.Requests, Request{
				Time: r.Time, Op: r.Op, LBA: r.LBA + int64(p), Pages: 1,
			})
		}
	}
	return out
}
