package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"kddcache/internal/sim"
)

// Parser robustness: arbitrary byte soup must produce an error or a valid
// trace — never a panic, never a request with nonsensical geometry.
func TestParsersNeverPanicOnGarbage(t *testing.T) {
	parsers := map[string]func(string) (*Trace, error){
		"spc":     func(s string) (*Trace, error) { return ParseSPC("g", strings.NewReader(s)) },
		"msr":     func(s string) (*Trace, error) { return ParseMSR("g", strings.NewReader(s)) },
		"uniform": func(s string) (*Trace, error) { return ParseUniform("g", strings.NewReader(s)) },
	}
	for name, parse := range parsers {
		f := func(raw []byte) bool {
			tr, err := parse(string(raw))
			if err != nil {
				return true
			}
			for _, r := range tr.Requests {
				if r.Pages < 1 || r.LBA < 0 {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// Near-valid inputs: single corrupted fields must be rejected cleanly.
func TestParsersRejectFieldCorruption(t *testing.T) {
	base := "0,20941264,8192,W,0.551706"
	fields := strings.Split(base, ",")
	for i := range fields {
		mutated := make([]string, len(fields))
		copy(mutated, fields)
		mutated[i] = "\x00\xff!"
		line := strings.Join(mutated, ",")
		if _, err := ParseSPC("m", strings.NewReader(line)); err == nil && i != 0 {
			// Field 0 (ASU) is ignored by the parser, so corruption there
			// is legitimately accepted.
			t.Errorf("spc accepted corrupted field %d: %q", i, line)
		}
	}
}

// Mixed valid and blank/comment lines parse to exactly the valid ones.
func TestParsersSkipNoise(t *testing.T) {
	in := "\n# c\n1,W,5,1\n\n# d\n2,R,6,2\n"
	tr, err := ParseUniform("n", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) != 2 {
		t.Fatalf("parsed %d requests", len(tr.Requests))
	}
}

// Round-trip property: WriteUniform∘ParseUniform is the identity on valid
// traces (microsecond-granular timestamps).
func TestUniformRoundTripProperty(t *testing.T) {
	f := func(times []uint32, lbas []uint16) bool {
		n := len(times)
		if len(lbas) < n {
			n = len(lbas)
		}
		tr := &Trace{Name: "p"}
		for i := 0; i < n; i++ {
			op := Read
			if lbas[i]%2 == 0 {
				op = Write
			}
			tr.Requests = append(tr.Requests, Request{
				Time:  sim2us(int64(times[i])),
				Op:    op,
				LBA:   int64(lbas[i]),
				Pages: 1 + int(lbas[i]%5),
			})
		}
		var b strings.Builder
		if err := WriteUniform(&b, tr); err != nil {
			return false
		}
		got, err := ParseUniform("p", strings.NewReader(b.String()))
		if err != nil {
			return false
		}
		if len(got.Requests) != len(tr.Requests) {
			return false
		}
		for i := range got.Requests {
			if got.Requests[i] != tr.Requests[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// sim2us builds a microsecond-aligned timestamp (the uniform format's
// resolution).
func sim2us(us int64) sim.Time { return sim.Time(us) * sim.Microsecond }
