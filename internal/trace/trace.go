// Package trace defines the uniform block-trace format the simulator
// consumes ("the simulator first converts raw traces into a uniform format
// and then processes trace requests one by one according to the timestamp
// of each request", §IV-A1) and parsers for the two public trace families
// the paper evaluates: SPC (UMass OLTP "Financial") and MSR Cambridge.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"kddcache/internal/blockdev"
	"kddcache/internal/sim"
)

// Op is the request direction.
type Op uint8

// Request directions.
const (
	Read Op = iota
	Write
)

func (o Op) String() string {
	if o == Read {
		return "R"
	}
	return "W"
}

// Request is one I/O in the uniform format: page-addressed, 4KB pages.
type Request struct {
	Time  sim.Time // arrival time
	Op    Op
	LBA   int64 // first page
	Pages int   // page count (>= 1)

	// Tenant is the submitting tenant's index for QoS accounting.
	// Zero — the value every parser default and legacy trace produces —
	// is the untagged/first tenant; the uniform format round-trips it
	// as an optional fifth field.
	Tenant int
}

// Trace is an ordered request stream.
type Trace struct {
	Name     string
	Requests []Request
}

// Stats summarises a trace the way Table I does.
type Stats struct {
	UniqueTotal int64 // distinct pages touched
	UniqueRead  int64
	UniqueWrite int64
	ReadPages   int64 // read requests in pages
	WritePages  int64
	ReadRatio   float64
	Duration    sim.Time
}

// Stats computes the Table I characteristics of the trace.
func (tr *Trace) Stats() Stats {
	read := make(map[int64]struct{})
	written := make(map[int64]struct{})
	union := make(map[int64]struct{})
	var s Stats
	for _, r := range tr.Requests {
		for i := 0; i < r.Pages; i++ {
			p := r.LBA + int64(i)
			union[p] = struct{}{}
			if r.Op == Read {
				read[p] = struct{}{}
				s.ReadPages++
			} else {
				written[p] = struct{}{}
				s.WritePages++
			}
		}
		if r.Time > s.Duration {
			s.Duration = r.Time
		}
	}
	s.UniqueTotal = int64(len(union))
	s.UniqueRead = int64(len(read))
	s.UniqueWrite = int64(len(written))
	if tot := s.ReadPages + s.WritePages; tot > 0 {
		s.ReadRatio = float64(s.ReadPages) / float64(tot)
	}
	return s
}

// MaxLBA returns one past the highest page touched.
func (tr *Trace) MaxLBA() int64 {
	var m int64
	for _, r := range tr.Requests {
		if end := r.LBA + int64(r.Pages); end > m {
			m = end
		}
	}
	return m
}

// SortByTime orders requests by arrival (stable).
func (tr *Trace) SortByTime() {
	sort.SliceStable(tr.Requests, func(i, j int) bool {
		return tr.Requests[i].Time < tr.Requests[j].Time
	})
}

// ---------------------------------------------------------------------------
// SPC format: "ASU,LBA,Size,Opcode,Timestamp". LBA counts 512-byte
// blocks, Size is in bytes, Timestamp in seconds. Example:
// "0,20941264,8192,W,0.551706".

// ParseSPC reads an SPC-format trace. Requests are rounded outward to 4KB
// page boundaries.
func ParseSPC(name string, r io.Reader) (*Trace, error) {
	tr := &Trace{Name: name}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Split(line, ",")
		if len(f) < 5 {
			return nil, fmt.Errorf("trace: spc line %d: want 5 fields, got %d", lineNo, len(f))
		}
		lba512, err := strconv.ParseInt(strings.TrimSpace(f[1]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: spc line %d lba: %v", lineNo, err)
		}
		if lba512 < 0 || lba512 >= maxLBA512 {
			return nil, fmt.Errorf("trace: spc line %d lba %d out of range", lineNo, lba512)
		}
		size, err := strconv.ParseInt(strings.TrimSpace(f[2]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: spc line %d size: %v", lineNo, err)
		}
		if size < 1 || size > maxReqBytes {
			return nil, fmt.Errorf("trace: spc line %d size %d out of range", lineNo, size)
		}
		op, err := parseOp(f[3])
		if err != nil {
			return nil, fmt.Errorf("trace: spc line %d: %v", lineNo, err)
		}
		ts, err := strconv.ParseFloat(strings.TrimSpace(f[4]), 64)
		if err != nil {
			return nil, fmt.Errorf("trace: spc line %d time: %v", lineNo, err)
		}
		if !(ts >= 0 && ts <= maxSeconds) { // also rejects NaN
			return nil, fmt.Errorf("trace: spc line %d time %v out of range", lineNo, ts)
		}
		byteOff := lba512 * 512
		tr.Requests = append(tr.Requests, pageAlign(
			sim.Time(ts*float64(sim.Second)), op, byteOff, size))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	tr.SortByTime()
	return tr, nil
}

// ---------------------------------------------------------------------------
// MSR Cambridge format:
// "Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime" with
// Timestamp in Windows 100ns ticks, Offset and Size in bytes.

// ParseMSR reads an MSR Cambridge trace.
func ParseMSR(name string, r io.Reader) (*Trace, error) {
	tr := &Trace{Name: name}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	var t0 int64 = -1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Split(line, ",")
		if len(f) < 6 {
			return nil, fmt.Errorf("trace: msr line %d: want >=6 fields, got %d", lineNo, len(f))
		}
		ticks, err := strconv.ParseInt(strings.TrimSpace(f[0]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: msr line %d time: %v", lineNo, err)
		}
		op, err := parseOp(f[3])
		if err != nil {
			return nil, fmt.Errorf("trace: msr line %d: %v", lineNo, err)
		}
		if ticks < 0 {
			return nil, fmt.Errorf("trace: msr line %d time %d negative", lineNo, ticks)
		}
		off, err := strconv.ParseInt(strings.TrimSpace(f[4]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: msr line %d offset: %v", lineNo, err)
		}
		if off < 0 || off > maxByteOff {
			return nil, fmt.Errorf("trace: msr line %d offset %d out of range", lineNo, off)
		}
		size, err := strconv.ParseInt(strings.TrimSpace(f[5]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: msr line %d size: %v", lineNo, err)
		}
		if size < 1 || size > maxReqBytes {
			return nil, fmt.Errorf("trace: msr line %d size %d out of range", lineNo, size)
		}
		if t0 < 0 {
			t0 = ticks
		}
		diff := ticks - t0
		if diff < 0 || diff > maxTickSpan {
			return nil, fmt.Errorf("trace: msr line %d time %d outside the trace's span", lineNo, ticks)
		}
		t := sim.Time(diff * 100) // 100ns ticks -> ns
		tr.Requests = append(tr.Requests, pageAlign(t, op, off, size))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	tr.SortByTime()
	return tr, nil
}

// Field sanity bounds. Raw traces come from untrusted files, and several
// fields feed multiplications (512-byte blocks, 100ns ticks, µs→ns) or
// page-count loops; out-of-range values must fail the parse rather than
// overflow int64 or fabricate absurd geometry.
const (
	maxLBA512   = int64(1) << 52         // byte offset stays under 1<<61
	maxByteOff  = int64(1) << 61         // MSR offsets are plain bytes
	maxReqBytes = int64(1) << 40         // 1 TiB single request
	maxSeconds  = float64(1 << 30)       // ~34 years of trace, ns stays in int64
	maxTickSpan = (int64(1) << 62) / 100 // 100ns ticks -> ns without overflow
	maxMicros   = (int64(1) << 62) / 1000
	maxPageLBA  = int64(1) << 50
	maxReqPages = 1 << 20 // 4 GiB single request in pages
	maxTenant   = 1 << 16 // tenant indices are small controller offsets
)

func parseOp(s string) (Op, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "r", "read":
		return Read, nil
	case "w", "write":
		return Write, nil
	default:
		return Read, fmt.Errorf("unknown opcode %q", s)
	}
}

// pageAlign converts a byte extent into a page-addressed request.
func pageAlign(t sim.Time, op Op, byteOff, size int64) Request {
	if size < 1 {
		size = 1
	}
	first := byteOff / blockdev.PageSize
	last := (byteOff + size - 1) / blockdev.PageSize
	return Request{Time: t, Op: op, LBA: first, Pages: int(last - first + 1)}
}

// ---------------------------------------------------------------------------
// Uniform on-disk format: "time_us,op,lba,pages[,tenant]" — what
// cmd/tracegen writes and the replay tools read back. The tenant field
// is optional and omitted when zero, so traces without tenant tagging
// stay byte-identical to the pre-QoS format.

// WriteUniform serialises the trace to the uniform CSV format.
func WriteUniform(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# uniform trace: %s\n", tr.Name); err != nil {
		return err
	}
	for _, r := range tr.Requests {
		var err error
		if r.Tenant != 0 {
			_, err = fmt.Fprintf(bw, "%d,%s,%d,%d,%d\n",
				int64(r.Time)/int64(sim.Microsecond), r.Op, r.LBA, r.Pages, r.Tenant)
		} else {
			_, err = fmt.Fprintf(bw, "%d,%s,%d,%d\n",
				int64(r.Time)/int64(sim.Microsecond), r.Op, r.LBA, r.Pages)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseUniform reads the uniform CSV format.
func ParseUniform(name string, r io.Reader) (*Trace, error) {
	tr := &Trace{Name: name}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Split(line, ",")
		if len(f) != 4 && len(f) != 5 {
			return nil, fmt.Errorf("trace: uniform line %d: want 4 or 5 fields", lineNo)
		}
		us, err := strconv.ParseInt(f[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: uniform line %d time: %v", lineNo, err)
		}
		if us < 0 || us > maxMicros {
			return nil, fmt.Errorf("trace: uniform line %d time %d out of range", lineNo, us)
		}
		op, err := parseOp(f[1])
		if err != nil {
			return nil, fmt.Errorf("trace: uniform line %d: %v", lineNo, err)
		}
		lba, err := strconv.ParseInt(f[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: uniform line %d lba: %v", lineNo, err)
		}
		if lba < 0 || lba > maxPageLBA {
			return nil, fmt.Errorf("trace: uniform line %d lba %d out of range", lineNo, lba)
		}
		pages, err := strconv.Atoi(f[3])
		if err != nil || pages < 1 || pages > maxReqPages {
			return nil, fmt.Errorf("trace: uniform line %d pages: %v (want 1..%d)", lineNo, err, maxReqPages)
		}
		tenant := 0
		if len(f) == 5 {
			tenant, err = strconv.Atoi(f[4])
			if err != nil || tenant < 0 || tenant > maxTenant {
				return nil, fmt.Errorf("trace: uniform line %d tenant: %v (want 0..%d)", lineNo, err, maxTenant)
			}
		}
		tr.Requests = append(tr.Requests, Request{
			Time: sim.Time(us) * sim.Microsecond, Op: op, LBA: lba, Pages: pages, Tenant: tenant,
		})
	}
	return tr, sc.Err()
}
