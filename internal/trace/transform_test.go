package trace

import (
	"testing"
	"testing/quick"

	"kddcache/internal/sim"
)

func TestRemapFoldsAndSplits(t *testing.T) {
	tr := &Trace{Requests: []Request{
		{Time: 1, Op: Read, LBA: 250, Pages: 4},  // folds to 50..53 within 100? no: 250%100=50, 4 pages fit
		{Time: 2, Op: Write, LBA: 98, Pages: 5},  // wraps: 98,99 then 0,1,2
		{Time: 3, Op: Read, LBA: 1000, Pages: 1}, // 1000%100=0
	}}
	out := tr.Remap(100)
	if len(out.Requests) != 4 {
		t.Fatalf("remap produced %d requests, want 4 (one split)", len(out.Requests))
	}
	r0 := out.Requests[0]
	if r0.LBA != 50 || r0.Pages != 4 {
		t.Fatalf("r0 = %+v", r0)
	}
	r1, r2 := out.Requests[1], out.Requests[2]
	if r1.LBA != 98 || r1.Pages != 2 || r2.LBA != 0 || r2.Pages != 3 {
		t.Fatalf("wrap split wrong: %+v %+v", r1, r2)
	}
	if out.Requests[3].LBA != 0 {
		t.Fatalf("fold wrong: %+v", out.Requests[3])
	}
}

func TestRemapPropertyInRange(t *testing.T) {
	f := func(lbas []uint32, max16 uint16) bool {
		max := int64(max16%1000) + 1
		tr := &Trace{}
		for i, l := range lbas {
			tr.Requests = append(tr.Requests, Request{
				Time: sim.Time(i), Op: Read, LBA: int64(l), Pages: 1 + int(l%7),
			})
		}
		out := tr.Remap(max)
		pages := 0
		for _, r := range out.Requests {
			if r.LBA < 0 || r.LBA+int64(r.Pages) > max {
				return false
			}
			pages += r.Pages
		}
		want := 0
		for _, r := range tr.Requests {
			want += r.Pages
		}
		return pages == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRemapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(&Trace{}).Remap(0)
}

func TestClip(t *testing.T) {
	tr := &Trace{Requests: make([]Request, 10)}
	if got := tr.Clip(3); len(got.Requests) != 3 {
		t.Fatalf("Clip(3) kept %d", len(got.Requests))
	}
	if got := tr.Clip(50); len(got.Requests) != 10 {
		t.Fatalf("Clip beyond length kept %d", len(got.Requests))
	}
}

func TestTimeWindowRebases(t *testing.T) {
	tr := &Trace{Requests: []Request{
		{Time: 10}, {Time: 20}, {Time: 30}, {Time: 40},
	}}
	out := tr.TimeWindow(20, 40)
	if len(out.Requests) != 2 {
		t.Fatalf("window kept %d", len(out.Requests))
	}
	if out.Requests[0].Time != 0 || out.Requests[1].Time != 10 {
		t.Fatalf("rebase wrong: %+v", out.Requests)
	}
}

func TestSpeedUp(t *testing.T) {
	tr := &Trace{Requests: []Request{{Time: 100}, {Time: 200}}}
	out := tr.SpeedUp(2)
	if out.Requests[0].Time != 50 || out.Requests[1].Time != 100 {
		t.Fatalf("speedup wrong: %+v", out.Requests)
	}
	// Original untouched.
	if tr.Requests[0].Time != 100 {
		t.Fatal("SpeedUp mutated the source trace")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.SpeedUp(0)
}

func TestSplitPages(t *testing.T) {
	tr := &Trace{Requests: []Request{{Time: 5, Op: Write, LBA: 10, Pages: 3}}}
	out := tr.SplitPages()
	if len(out.Requests) != 3 {
		t.Fatalf("split produced %d", len(out.Requests))
	}
	for i, r := range out.Requests {
		if r.LBA != int64(10+i) || r.Pages != 1 || r.Time != 5 || r.Op != Write {
			t.Fatalf("split req %d = %+v", i, r)
		}
	}
}
