package trace

import (
	"bytes"
	"strings"
	"testing"

	"kddcache/internal/sim"
)

func TestParseSPC(t *testing.T) {
	in := `0,20941264,8192,W,0.551706
0,20939840,8192,W,0.554041
1,3436288,15872,r,1.25
`
	tr, err := ParseSPC("fin", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) != 3 {
		t.Fatalf("parsed %d requests", len(tr.Requests))
	}
	r0 := tr.Requests[0]
	// 20941264 * 512 / 4096 = 2617658
	if r0.Op != Write || r0.LBA != 2617658 || r0.Pages != 2 {
		t.Fatalf("r0 = %+v", r0)
	}
	if r0.Time != sim.Time(0.551706*float64(sim.Second)) {
		t.Fatalf("r0 time = %v", r0.Time)
	}
	r2 := tr.Requests[2]
	if r2.Op != Read || r2.Pages < 4 {
		t.Fatalf("r2 = %+v", r2)
	}
}

func TestParseSPCErrors(t *testing.T) {
	cases := []string{
		"0,x,8192,W,0.5",
		"0,1,y,W,0.5",
		"0,1,8192,Z,0.5",
		"0,1,8192,W,z",
		"0,1,8192",
	}
	for _, in := range cases {
		if _, err := ParseSPC("bad", strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestParseSPCSortsByTime(t *testing.T) {
	in := "0,0,4096,W,2.0\n0,8,4096,W,1.0\n"
	tr, err := ParseSPC("s", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Requests[0].Time > tr.Requests[1].Time {
		t.Fatal("not sorted by time")
	}
}

func TestParseMSR(t *testing.T) {
	in := `128166372003061629,hm,0,Write,2449920,8192,1331
128166372016382155,hm,0,Read,8192,4096,388
`
	tr, err := ParseMSR("hm0", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) != 2 {
		t.Fatalf("parsed %d", len(tr.Requests))
	}
	r0 := tr.Requests[0]
	// Offset 2449920 is not page aligned: bytes [2449920, 2458112) span
	// pages 598..600.
	if r0.Op != Write || r0.LBA != 598 || r0.Pages != 3 || r0.Time != 0 {
		t.Fatalf("r0 = %+v", r0)
	}
	r1 := tr.Requests[1]
	wantT := sim.Time((128166372016382155 - 128166372003061629) * 100)
	if r1.Time != wantT {
		t.Fatalf("r1 time = %v, want %v", r1.Time, wantT)
	}
}

func TestParseMSRErrors(t *testing.T) {
	for _, in := range []string{
		"x,h,0,Write,0,4096,1",
		"1,h,0,Nope,0,4096,1",
		"1,h,0,Write,x,4096,1",
		"1,h,0,Write,0,x,1",
		"1,h,0",
	} {
		if _, err := ParseMSR("bad", strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestUniformRoundTrip(t *testing.T) {
	tr := &Trace{Name: "u", Requests: []Request{
		{Time: 5 * sim.Microsecond, Op: Write, LBA: 10, Pages: 2},
		{Time: 9 * sim.Microsecond, Op: Read, LBA: 99, Pages: 1},
	}}
	var b bytes.Buffer
	if err := WriteUniform(&b, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ParseUniform("u", &b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Requests) != 2 {
		t.Fatalf("round trip lost requests: %d", len(got.Requests))
	}
	for i := range got.Requests {
		if got.Requests[i] != tr.Requests[i] {
			t.Fatalf("req %d: got %+v want %+v", i, got.Requests[i], tr.Requests[i])
		}
	}
}

func TestParseUniformErrors(t *testing.T) {
	for _, in := range []string{"a,W,1,1", "1,Q,1,1", "1,W,b,1", "1,W,1,0", "1,W,1"} {
		if _, err := ParseUniform("bad", strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestStatsAndMaxLBA(t *testing.T) {
	tr := &Trace{Requests: []Request{
		{Time: 1, Op: Read, LBA: 0, Pages: 2},  // pages 0,1 read
		{Time: 2, Op: Write, LBA: 1, Pages: 2}, // pages 1,2 written
		{Time: 3, Op: Read, LBA: 1, Pages: 1},  // page 1 again
	}}
	s := tr.Stats()
	if s.UniqueTotal != 3 || s.UniqueRead != 2 || s.UniqueWrite != 2 {
		t.Fatalf("uniques: %+v", s)
	}
	if s.ReadPages != 3 || s.WritePages != 2 {
		t.Fatalf("pages: %+v", s)
	}
	if s.ReadRatio != 0.6 {
		t.Fatalf("read ratio = %f", s.ReadRatio)
	}
	if s.Duration != 3 {
		t.Fatalf("duration = %v", s.Duration)
	}
	if tr.MaxLBA() != 3 {
		t.Fatalf("MaxLBA = %d", tr.MaxLBA())
	}
}

func TestOpString(t *testing.T) {
	if Read.String() != "R" || Write.String() != "W" {
		t.Fatal("op strings")
	}
}

func TestCommentsAndBlanksSkipped(t *testing.T) {
	in := "# header\n\n0,0,4096,W,0.5\n"
	tr, err := ParseSPC("c", strings.NewReader(in))
	if err != nil || len(tr.Requests) != 1 {
		t.Fatalf("err=%v n=%d", err, len(tr.Requests))
	}
}
