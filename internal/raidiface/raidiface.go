// Package raidiface defines the backend seam between the cache/check/
// harness layers and a concrete array engine. Two engines satisfy it:
// the parity-in-place engine in internal/raid (the paper's RAID-5/6 with
// KDD's delayed parity protocol layered on top) and the log-structured
// engine in internal/lsraid (append-only full-stripe writes, segment GC,
// no parity read-modify-write). Everything above the seam — core.KDD,
// the crash checker, the chaos harness, the figure experiments — talks
// to this interface so the same workloads, fault plans, and crash-site
// sweeps run head-to-head against both architectures.
//
// Shared value types (Stats, ScrubReport, RowFix, Level) stay in
// internal/raid: both engines report through the same structures so the
// experiment and metrics plumbing needs no per-backend cases.
package raidiface

import (
	"kddcache/internal/blockdev"
	"kddcache/internal/obs"
	"kddcache/internal/raid"
	"kddcache/internal/sim"
)

// Array is the full engine surface the rest of the repo consumes. It is
// deliberately the union of what core.KDD needs (the cache.Backend
// subset), what the crash checker drives (fault/rebuild/scrub control),
// and what the harness and CLIs observe (stats, members, locations).
type Array interface {
	// Identity and geometry.
	Name() string
	Pages() int64
	Disks() int
	ChunkPages() int64
	StripePages() int64
	StripeOf(lba int64) int64
	RowPeers(lba int64) []int64
	DataLocation(lba int64) (disk int, page int64)
	ParityLocation(lba int64) (pDisk, qDisk int, page int64)

	// Member access (fault injection, checksum sweeps).
	Member(i int) blockdev.Device
	Injector(i int) *blockdev.FaultInjector

	// Data path.
	ReadPages(t sim.Time, lba int64, count int, buf []byte) (sim.Time, error)
	WritePages(t sim.Time, lba int64, count int, buf []byte) (sim.Time, error)
	WriteNoParity(t sim.Time, lba int64, count int, buf []byte) (sim.Time, error)
	WriteRow(t sim.Time, firstLBA int64, buf []byte) (sim.Time, error)

	// Delayed-parity repair protocol. A backend with no parity debt
	// (log-structured: every stripe is written whole) implements these
	// as cheap no-ops and reports StaleRows() == 0.
	ParityUpdateDelta(t sim.Time, lbas []int64, deltas [][]byte) (sim.Time, error)
	ParityUpdateDeltaBatch(t sim.Time, fixes []raid.RowFix) (sim.Time, error)
	ParityUpdateReconstruct(t sim.Time, lba int64, rowData [][]byte) (sim.Time, error)
	ResyncRow(t sim.Time, lba int64) (sim.Time, error)
	Resync(t sim.Time) (sim.Time, error)
	StaleRows() int

	// Integrity.
	Scrub(t sim.Time) (sim.Time, raid.ScrubReport, error)

	// Fault and health.
	FailDisk(i int)
	FailedDisks() []int
	Healthy() bool
	Survivable() bool
	LostRows() []int64
	ReplaceDisk(t sim.Time, i int, fresh blockdev.Device) (sim.Time, error)

	// Rebuild state machine (core owns pacing and checkpointing).
	AddSpare(dev blockdev.Device) error
	SpareCount() int
	RebuildActive() bool
	RebuildTarget() (disk int, watermark int64, active bool)
	StartRebuild(t sim.Time, i int, fresh blockdev.Device) (sim.Time, error)
	StartSpareRebuild(t sim.Time) (done sim.Time, started bool, err error)
	ResumeRebuild(disk int, watermark int64) error
	CrashRebuildState()
	RebuildStep(t sim.Time, maxRows int) (done sim.Time, rowsDone int, complete bool, err error)

	// Observability.
	SetTracer(tr *obs.Tracer)
	Stats() raid.Stats
	PublishMetrics(reg *obs.Registry)
}

// Compile-time check: the parity engine satisfies the seam.
var _ Array = (*raid.Array)(nil)
