package cache

import (
	"kddcache/internal/blockdev"
	"kddcache/internal/sim"
	"kddcache/internal/stats"
)

// base carries the shared plumbing of the SSD-backed policies: the frame,
// the cache device, the backend, and the data-partition offset (cache
// page i lives at SSD LBA dataStart+i).
type base struct {
	frame     *Frame
	ssd       blockdev.Device
	backend   Backend
	dataStart int64
	st        stats.CacheStats
}

func newBase(ssd blockdev.Device, backend Backend, cachePages, dataStart int64, ways int) base {
	return base{
		frame:     NewFrame(cachePages, ways, backend.StripePages()),
		ssd:       ssd,
		backend:   backend,
		dataStart: dataStart,
	}
}

// cacheLBA maps a slot to its SSD page address.
func (b *base) cacheLBA(slot int32) int64 { return b.dataStart + int64(slot) }

// readSlot reads a cached page from the SSD.
func (b *base) readSlot(t sim.Time, slot int32, buf []byte) (sim.Time, error) {
	return b.ssd.ReadPages(t, b.cacheLBA(slot), 1, buf)
}

// writeSlot writes a cached page to the SSD.
func (b *base) writeSlot(t sim.Time, slot int32, buf []byte) (sim.Time, error) {
	return b.ssd.WritePages(t, b.cacheLBA(slot), 1, buf)
}

// trimSlot discards the SSD page backing a released slot so the FTL can
// reclaim it without relocation.
func (b *base) trimSlot(t sim.Time, slot int32) {
	if tr, ok := b.ssd.(blockdev.Trimmer); ok {
		tr.TrimPages(t, b.cacheLBA(slot), 1) //nolint:errcheck // advisory
	}
}

// allocOrEvict finds a slot in lba's set: a free one, else the LRU slot
// among evictable states. Returns NoSlot if nothing can be evicted.
func (b *base) allocOrEvict(t sim.Time, lba int64, evictable ...State) int32 {
	set := b.frame.SetOf(lba)
	if s := b.frame.AllocFree(set); s != NoSlot {
		return s
	}
	s := b.frame.EvictLRU(set, evictable...)
	if s == NoSlot {
		return NoSlot
	}
	b.st.Evictions++
	b.frame.Release(s, true)
	b.trimSlot(t, s)
	return s
}

// Stats implements Policy.
func (b *base) Stats() *stats.CacheStats { return &b.st }

// Frame exposes the slot frame (tests and the harness inspect it).
func (b *base) Frame() *Frame { return b.frame }

// fillOnMiss allocates and fills a cache slot after a backend read miss.
// The SSD program is issued at `done` (data already in hand) and does not
// extend request latency.
func (b *base) fillOnMiss(done sim.Time, lba int64, buf []byte) {
	slot := b.allocOrEvict(done, lba, Clean)
	if slot == NoSlot {
		return // set pinned solid; serve uncached
	}
	b.frame.Insert(lba, slot, Clean)
	b.st.ReadFills++
	b.writeSlot(done, slot, buf) //nolint:errcheck // background fill
}

// ---------------------------------------------------------------------------
// WT: write-through.

// WT is the write-through baseline: every write goes to both the cache
// and the RAID (with parity update) before completing; reads fill on miss.
type WT struct{ base }

// NewWT builds a write-through cache of cachePages pages whose data
// partition starts at dataStart on the SSD.
func NewWT(ssd blockdev.Device, backend Backend, cachePages, dataStart int64, ways int) *WT {
	return &WT{newBase(ssd, backend, cachePages, dataStart, ways)}
}

// Name implements Policy.
func (w *WT) Name() string { return "WT" }

// Read implements Policy.
func (w *WT) Read(t sim.Time, lba int64, buf []byte) (sim.Time, error) {
	w.st.Reads++
	if slot := w.frame.Lookup(lba); slot != NoSlot {
		w.st.ReadHits++
		w.frame.Touch(slot)
		return w.readSlot(t, slot, buf)
	}
	w.st.ReadMisses++
	w.st.RAIDReads++
	done, err := w.backend.ReadPages(t, lba, 1, buf)
	if err != nil {
		return t, err
	}
	w.fillOnMiss(done, lba, buf)
	return done, nil
}

// Write implements Policy. The write is acknowledged only after both the
// RAID (including parity) and the SSD copy are durable.
func (w *WT) Write(t sim.Time, lba int64, buf []byte) (sim.Time, error) {
	w.st.Writes++
	w.st.RAIDWrites++
	raidDone, err := w.backend.WritePages(t, lba, 1, buf)
	if err != nil {
		return t, err
	}
	var ssdDone sim.Time
	if slot := w.frame.Lookup(lba); slot != NoSlot {
		w.st.WriteHits++
		w.frame.Touch(slot)
		w.st.WriteAllocs++
		ssdDone, err = w.writeSlot(t, slot, buf)
	} else {
		w.st.WriteMiss++
		slot = w.allocOrEvict(t, lba, Clean)
		if slot != NoSlot {
			w.frame.Insert(lba, slot, Clean)
			w.st.WriteAllocs++
			ssdDone, err = w.writeSlot(t, slot, buf)
		}
	}
	if err != nil {
		return t, err
	}
	return sim.MaxTime(raidDone, ssdDone), nil
}

// Clean implements Policy (nothing deferred).
func (w *WT) Clean(t sim.Time, force bool) (sim.Time, error) { return t, nil }

// Flush implements Policy (nothing deferred).
func (w *WT) Flush(t sim.Time) (sim.Time, error) { return t, nil }

// ---------------------------------------------------------------------------
// WA: write-around.

// WA is the write-around baseline: writes bypass the cache entirely
// (invalidating any cached copy) and allocate only on read misses.
type WA struct{ base }

// NewWA builds a write-around cache.
func NewWA(ssd blockdev.Device, backend Backend, cachePages, dataStart int64, ways int) *WA {
	return &WA{newBase(ssd, backend, cachePages, dataStart, ways)}
}

// Name implements Policy.
func (w *WA) Name() string { return "WA" }

// Read implements Policy.
func (w *WA) Read(t sim.Time, lba int64, buf []byte) (sim.Time, error) {
	w.st.Reads++
	if slot := w.frame.Lookup(lba); slot != NoSlot {
		w.st.ReadHits++
		w.frame.Touch(slot)
		return w.readSlot(t, slot, buf)
	}
	w.st.ReadMisses++
	w.st.RAIDReads++
	done, err := w.backend.ReadPages(t, lba, 1, buf)
	if err != nil {
		return t, err
	}
	w.fillOnMiss(done, lba, buf)
	return done, nil
}

// Write implements Policy: straight to RAID; stale cached copies are
// invalidated so later reads refill.
func (w *WA) Write(t sim.Time, lba int64, buf []byte) (sim.Time, error) {
	w.st.Writes++
	w.st.WriteMiss++ // writes never hit a write-around cache
	if slot := w.frame.Lookup(lba); slot != NoSlot {
		w.frame.Release(slot, true)
		w.trimSlot(t, slot)
	}
	w.st.RAIDWrites++
	return w.backend.WritePages(t, lba, 1, buf)
}

// Clean implements Policy (nothing deferred).
func (w *WA) Clean(t sim.Time, force bool) (sim.Time, error) { return t, nil }

// Flush implements Policy (nothing deferred).
func (w *WA) Flush(t sim.Time) (sim.Time, error) { return t, nil }

var (
	_ Policy = (*WT)(nil)
	_ Policy = (*WA)(nil)
)
