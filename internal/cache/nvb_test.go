package cache_test

import (
	"bytes"
	"testing"

	"kddcache/internal/blockdev"
	"kddcache/internal/cache"
	"kddcache/internal/raid"
	"kddcache/internal/sim"
)

func TestNVBReadYourWrites(t *testing.T) {
	s := newStack(t, 512)
	p := cache.NewNVB(s.array, 64)
	for lba := int64(0); lba < 200; lba++ {
		s.write(t, p, lba) // exceeds buffer: destaging happens inline
	}
	s.verify(t, p)
	if _, err := p.Flush(0); err != nil {
		t.Fatal(err)
	}
	if p.Buffered() != 0 {
		t.Fatalf("%d pages left after flush", p.Buffered())
	}
	// Everything durable and parity-consistent: survive a disk loss.
	s.array.FailDisk(1)
	buf := make([]byte, blockdev.PageSize)
	for lba, want := range s.oracle {
		if _, err := s.array.ReadPages(0, lba, 1, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("lba %d wrong after NVB destage", lba)
		}
	}
}

func TestNVBFullStripeDetection(t *testing.T) {
	s := newStack(t, 512)
	p := cache.NewNVB(s.array, 256)
	// Write a complete parity row, then flush: it must go out as a
	// full-stripe write (zero parity reads).
	peers := s.array.RowPeers(0)
	for _, lba := range peers {
		s.write(t, p, lba)
	}
	if _, err := p.Flush(0); err != nil {
		t.Fatal(err)
	}
	st := s.array.Stats()
	if st.ParityReads != 0 {
		t.Fatalf("full-stripe destage read parity %d times", st.ParityReads)
	}
	if p.Stats().SmallWritesSaved == 0 {
		t.Fatal("full-stripe write not counted")
	}
	s.verify(t, p)
}

func TestNVBPartialRowUsesRMW(t *testing.T) {
	s := newStack(t, 512)
	p := cache.NewNVB(s.array, 256)
	s.write(t, p, 0) // single page of a 4-page row
	if _, err := p.Flush(0); err != nil {
		t.Fatal(err)
	}
	if s.array.Stats().ParityReads == 0 {
		t.Fatal("partial destage should RMW")
	}
	s.verify(t, p)
}

func TestNVBBackPressureLatency(t *testing.T) {
	// Once the buffer is full, random writes pay RAID small-write latency
	// — the §I limitation. Sequential full rows keep completing fast.
	var members []blockdev.Device
	for i := 0; i < 5; i++ {
		d := blockdev.NewNullDevice("d", 65536)
		d.Latency = 10 * sim.Millisecond
		members = append(members, d)
	}
	a, err := raid.New(raid.Config{Level: raid.Level5, ChunkPages: 16}, members)
	if err != nil {
		t.Fatal(err)
	}
	p := cache.NewNVB(a, 32)
	rng := sim.NewRNG(3)
	// Fill with random pages (poor locality: rows rarely complete).
	var now sim.Time
	fast, slow := 0, 0
	for i := 0; i < 200; i++ {
		lba := int64(rng.Uint64n(200000))
		done, err := p.Write(now, lba, nil)
		if err != nil {
			t.Fatal(err)
		}
		if done == now {
			fast++
		} else {
			slow++
		}
		now = done
	}
	if fast == 0 || slow == 0 {
		t.Fatalf("expected both instant (%d) and back-pressured (%d) writes", fast, slow)
	}
	// Back-pressured random writes pay ~RMW latency.
	done, err := p.Write(now, int64(rng.Uint64n(200000)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if done-now < 10*sim.Millisecond {
		t.Fatalf("full-buffer random write cost %v; should be disk-bound", done-now)
	}
}

func TestNVBReadsServeFromBufferThenRAID(t *testing.T) {
	s := newStack(t, 512)
	p := cache.NewNVB(s.array, 64)
	data := s.page(9)
	if _, err := p.Write(0, 7, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, blockdev.PageSize)
	if _, err := p.Read(0, 7, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) || p.Stats().ReadHits != 1 {
		t.Fatal("buffered read wrong")
	}
	if _, err := p.Flush(0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Read(0, 7, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) || p.Stats().ReadMisses != 1 {
		t.Fatal("post-destage read wrong")
	}
}

func TestNVBPanicsOnZeroCapacity(t *testing.T) {
	s := newStack(t, 128)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cache.NewNVB(s.array, 0)
}
