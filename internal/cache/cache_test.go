package cache_test

import (
	"bytes"
	"testing"
	"testing/quick"

	"kddcache/internal/blockdev"
	"kddcache/internal/cache"
	"kddcache/internal/raid"
	"kddcache/internal/sim"
)

// stack is a data-mode test rig: RAID-5 over null devices plus an SSD
// null device, with a flat oracle.
type stack struct {
	ssd    *blockdev.NullDevice
	array  *raid.Array
	oracle map[int64][]byte
	rng    *sim.RNG
}

// newArray5 builds a 5-disk RAID-5 over the given members.
func newArray5(members []blockdev.Device) (*raid.Array, error) {
	return raid.New(raid.Config{Level: raid.Level5, ChunkPages: 8}, members)
}

func newStack(t *testing.T, diskPages int64) *stack {
	t.Helper()
	var members []blockdev.Device
	for i := 0; i < 5; i++ {
		members = append(members, blockdev.NewNullDataDevice("d", diskPages))
	}
	a, err := newArray5(members)
	if err != nil {
		t.Fatal(err)
	}
	return &stack{
		ssd:    blockdev.NewNullDataDevice("ssd", 1<<16),
		array:  a,
		oracle: make(map[int64][]byte),
		rng:    sim.NewRNG(99),
	}
}

func (s *stack) page(tag byte) []byte {
	p := make([]byte, blockdev.PageSize)
	for i := range p {
		p[i] = byte(s.rng.Uint64())
	}
	p[0] = tag
	return p
}

func (s *stack) write(t *testing.T, p cache.Policy, lba int64) {
	t.Helper()
	data := s.page(byte(lba))
	if _, err := p.Write(0, lba, data); err != nil {
		t.Fatalf("write %d: %v", lba, err)
	}
	s.oracle[lba] = data
}

func (s *stack) verify(t *testing.T, p cache.Policy) {
	t.Helper()
	buf := make([]byte, blockdev.PageSize)
	for lba, want := range s.oracle {
		if _, err := p.Read(0, lba, buf); err != nil {
			t.Fatalf("read %d: %v", lba, err)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("lba %d mismatch via %s", lba, p.Name())
		}
	}
}

func TestFrameBasics(t *testing.T) {
	f := cache.NewFrame(1024, 64, 32)
	if f.Pages() != 1024 || f.Sets() != 16 || f.Ways() != 64 {
		t.Fatalf("geometry %d/%d/%d", f.Pages(), f.Sets(), f.Ways())
	}
	if f.Count(cache.Free) != 1024 {
		t.Fatal("fresh frame not all free")
	}
	// Same stripe -> same set.
	if f.SetOf(0) != f.SetOf(31) {
		t.Fatal("stripe pages split across sets")
	}
	slot := f.AllocFree(f.SetOf(100))
	if slot == cache.NoSlot {
		t.Fatal("no free slot in fresh frame")
	}
	f.Insert(100, slot, cache.Clean)
	if f.Lookup(100) != slot {
		t.Fatal("lookup broken")
	}
	if f.Count(cache.Clean) != 1 {
		t.Fatal("count not updated")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	f.Release(slot, true)
	if f.Lookup(100) != cache.NoSlot || f.Count(cache.Free) != 1024 {
		t.Fatal("release broken")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFrameLRUEviction(t *testing.T) {
	f := cache.NewFrame(64, 64, 16) // single set
	var slots []int32
	for lba := int64(0); lba < 64; lba++ {
		s := f.AllocFree(0)
		f.Insert(lba*16, s, cache.Clean) // distinct stripes, same set (1 set)
		slots = append(slots, s)
	}
	f.Touch(slots[0]) // make slot 0 most recent
	victim := f.EvictLRU(0, cache.Clean)
	if victim == slots[0] {
		t.Fatal("LRU evicted the most recently used slot")
	}
	if victim != slots[1] {
		t.Fatalf("victim = %d, want %d", victim, slots[1])
	}
	if f.EvictLRU(0, cache.Old) != cache.NoSlot {
		t.Fatal("evicted a state not present")
	}
}

func TestFrameLeastDeltaSet(t *testing.T) {
	f := cache.NewFrame(64, 16, 16) // 4 sets
	// Fill set 0 with deltas.
	for i := 0; i < 4; i++ {
		s := f.AllocFree(0)
		f.MarkDelta(s)
	}
	set := f.LeastDeltaSet()
	if set == 0 {
		t.Fatal("picked the most delta-loaded set")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFrameFixedPartition(t *testing.T) {
	f := cache.NewFrame(64, 16, 16) // 4 sets
	f.SetDataSets(3)
	for lba := int64(0); lba < 1000; lba += 16 {
		if f.SetOf(lba) >= 3 {
			t.Fatal("data mapped into reserved delta sets")
		}
	}
	if s := f.LeastDeltaSet(); s != 3 {
		t.Fatalf("delta set = %d, want 3 (reserved)", s)
	}
	if f.DataSets() != 3 {
		t.Fatal("DataSets accessor wrong")
	}
}

func TestFrameOldestSlots(t *testing.T) {
	f := cache.NewFrame(64, 16, 16)
	var order []int32
	for i := int64(0); i < 8; i++ {
		set := f.SetOf(i * 16)
		s := f.AllocFree(set)
		f.Insert(i*16, s, cache.Clean)
		f.Transition(s, cache.Old)
		order = append(order, s)
	}
	got := f.OldestSlots(cache.Old, 3)
	if len(got) != 3 || got[0] != order[0] || got[1] != order[1] || got[2] != order[2] {
		t.Fatalf("OldestSlots = %v, insertion order %v", got, order)
	}
	if n := len(f.OldestSlots(cache.Old, 100)); n != 8 {
		t.Fatalf("OldestSlots(100) returned %d", n)
	}
}

func TestFrameGeometryPanics(t *testing.T) {
	for _, f := range []func(){
		func() { cache.NewFrame(0, 4, 16) },
		func() { cache.NewFrame(2, 4, 16) },
		func() { cache.NewFrame(64, 0, 16) },
		func() { cache.NewFrame(64, 4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestNossdPassthrough(t *testing.T) {
	s := newStack(t, 256)
	p := cache.NewNossd(s.array)
	for lba := int64(0); lba < 50; lba++ {
		s.write(t, p, lba)
	}
	s.verify(t, p)
	st := p.Stats()
	if st.Hits() != 0 || st.SSDWrites() != 0 {
		t.Fatalf("Nossd stats: %+v", st)
	}
	if p.Name() != "Nossd" {
		t.Fatal("name")
	}
	if _, err := p.Clean(0, true); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Flush(0); err != nil {
		t.Fatal(err)
	}
}

func TestWTReadYourWrites(t *testing.T) {
	s := newStack(t, 256)
	p := cache.NewWT(s.ssd, s.array, 256, 0, 32)
	for lba := int64(0); lba < 100; lba++ {
		s.write(t, p, lba)
	}
	// Overwrite some.
	for lba := int64(0); lba < 100; lba += 3 {
		s.write(t, p, lba)
	}
	s.verify(t, p)
	st := p.Stats()
	if st.WriteHits == 0 {
		t.Fatal("no write hits recorded")
	}
	if st.WriteAllocs == 0 || st.RAIDWrites != st.Writes {
		t.Fatalf("WT write accounting: %+v", st)
	}
	// Parity never delayed under WT.
	if s.array.StaleRows() != 0 {
		t.Fatal("WT left stale parity")
	}
}

func TestWTReadMissFillsAndHits(t *testing.T) {
	s := newStack(t, 256)
	// Pre-populate RAID directly.
	data := s.page(1)
	if _, err := s.array.WritePages(0, 7, 1, data); err != nil {
		t.Fatal(err)
	}
	s.oracle[7] = data
	p := cache.NewWT(s.ssd, s.array, 256, 0, 32)
	buf := make([]byte, blockdev.PageSize)
	if _, err := p.Read(0, 7, buf); err != nil {
		t.Fatal(err)
	}
	if p.Stats().ReadMisses != 1 || p.Stats().ReadFills != 1 {
		t.Fatalf("fill accounting: %+v", p.Stats())
	}
	if _, err := p.Read(0, 7, buf); err != nil {
		t.Fatal(err)
	}
	if p.Stats().ReadHits != 1 {
		t.Fatalf("second read not a hit: %+v", p.Stats())
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("hit served wrong data")
	}
}

func TestWAWritesBypassAndInvalidate(t *testing.T) {
	s := newStack(t, 256)
	p := cache.NewWA(s.ssd, s.array, 256, 0, 32)
	buf := make([]byte, blockdev.PageSize)

	s.write(t, p, 5)
	if p.Stats().SSDWrites() != 0 {
		t.Fatal("WA wrote to SSD on a write")
	}
	// Fill by reading, then overwrite: cached copy must be invalidated.
	if _, err := p.Read(0, 5, buf); err != nil {
		t.Fatal(err)
	}
	if p.Stats().ReadFills != 1 {
		t.Fatal("read did not fill")
	}
	s.write(t, p, 5)
	if _, err := p.Read(0, 5, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, s.oracle[5]) {
		t.Fatal("stale cache served after write-around")
	}
	s.verify(t, p)
}

func TestLeavODelayedParityAndCleaning(t *testing.T) {
	s := newStack(t, 512)
	p := cache.NewLeavO(s.ssd, s.array, 256, 64, 32, 0, 64)
	// Admit pages, then update them (write hits -> old+new versions).
	for lba := int64(0); lba < 60; lba++ {
		s.write(t, p, lba)
	}
	if s.array.StaleRows() != 0 {
		t.Fatal("write misses should use full parity writes")
	}
	for lba := int64(0); lba < 60; lba++ {
		s.write(t, p, lba)
	}
	if p.Stats().WriteHits == 0 || p.Stats().SmallWritesSaved == 0 {
		t.Fatalf("no delayed-parity writes: %+v", p.Stats())
	}
	if s.array.StaleRows() == 0 {
		t.Fatal("no stale parity after no-parity writes")
	}
	s.verify(t, p)

	// Flush repairs all parity; a disk failure must then be survivable.
	if _, err := p.Flush(0); err != nil {
		t.Fatal(err)
	}
	if s.array.StaleRows() != 0 {
		t.Fatal("flush left stale rows")
	}
	s.verify(t, p)
	s.array.FailDisk(2)
	buf := make([]byte, blockdev.PageSize)
	for lba, want := range s.oracle {
		if _, err := s.array.ReadPages(0, lba, 1, buf); err != nil {
			t.Fatalf("degraded read %d: %v", lba, err)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("degraded data mismatch at %d", lba)
		}
	}
}

func TestLeavOSecondUpdateOverwritesNewVersion(t *testing.T) {
	s := newStack(t, 512)
	p := cache.NewLeavO(s.ssd, s.array, 256, 64, 32, 0, 64)
	s.write(t, p, 9) // miss
	s.write(t, p, 9) // hit: old+new
	s.write(t, p, 9) // hit on New: overwrite in place
	s.write(t, p, 9) // again
	s.verify(t, p)
	if p.Stats().VersionWrite < 3 {
		t.Fatalf("version writes = %d", p.Stats().VersionWrite)
	}
	if _, err := p.Flush(0); err != nil {
		t.Fatal(err)
	}
	s.verify(t, p)
}

func TestLeavOMetadataTraffic(t *testing.T) {
	s := newStack(t, 512)
	p := cache.NewLeavO(s.ssd, s.array, 256, 64, 32, 0, 64)
	// Enough mapping updates to force metadata page writes.
	for i := 0; i < 2000; i++ {
		s.write(t, p, int64(i%200))
	}
	if p.Stats().MetaWrites == 0 {
		t.Fatal("LeavO persisted no metadata")
	}
	s.verify(t, p)
}

func TestLeavOEvictionPressure(t *testing.T) {
	s := newStack(t, 2048)
	// Tiny cache: 64 pages, working set 300 pages.
	p := cache.NewLeavO(s.ssd, s.array, 64, 64, 16, 0, 64)
	rng := sim.NewRNG(3)
	for i := 0; i < 3000; i++ {
		s.write(t, p, int64(rng.Uint64n(300)))
	}
	s.verify(t, p)
	if p.Stats().Evictions == 0 {
		t.Fatal("no evictions under pressure")
	}
	if _, err := p.Flush(0); err != nil {
		t.Fatal(err)
	}
	if s.array.StaleRows() != 0 {
		t.Fatal("stale rows survived flush")
	}
}

func TestPoliciesRandomOracleProperty(t *testing.T) {
	f := func(seed uint64) bool {
		s := newStack(t, 1024)
		rng := sim.NewRNG(seed)
		policies := []cache.Policy{
			cache.NewWT(blockdev.NewNullDataDevice("s1", 1<<15), s.array, 128, 0, 16),
		}
		p := policies[0]
		oracle := map[int64][]byte{}
		buf := make([]byte, blockdev.PageSize)
		for i := 0; i < 500; i++ {
			lba := int64(rng.Uint64n(400))
			if rng.Float64() < 0.5 {
				data := s.page(byte(i))
				if _, err := p.Write(0, lba, data); err != nil {
					return false
				}
				oracle[lba] = data
			} else if want, ok := oracle[lba]; ok {
				if _, err := p.Read(0, lba, buf); err != nil {
					return false
				}
				if !bytes.Equal(buf, want) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestHitRatioOrderingWTvsLeavO(t *testing.T) {
	// With a constrained cache and an update-heavy workload, WT should
	// see hit ratios at least as high as LeavO (LeavO spends capacity on
	// redundant versions) — the Figure 5 relationship.
	mk := func() (*stack, *sim.RNG) { return newStack(t, 4096), sim.NewRNG(77) }

	s1, rng1 := mk()
	wt := cache.NewWT(s1.ssd, s1.array, 128, 0, 16)
	s2, rng2 := mk()
	lo := cache.NewLeavO(s2.ssd, s2.array, 128, 64, 16, 0, 64)

	run := func(p cache.Policy, s *stack, rng *sim.RNG) float64 {
		buf := make([]byte, blockdev.PageSize)
		for i := 0; i < 6000; i++ {
			lba := int64(rng.Uint64n(600))
			if rng.Float64() < 0.7 {
				data := s.page(byte(i))
				if _, err := p.Write(0, lba, data); err != nil {
					t.Fatal(err)
				}
			} else {
				p.Read(0, lba, buf) //nolint:errcheck // miss data irrelevant
			}
		}
		return p.Stats().HitRatio()
	}
	hrWT := run(wt, s1, rng1)
	hrLO := run(lo, s2, rng2)
	if hrLO > hrWT+0.02 {
		t.Fatalf("LeavO hit ratio %.3f exceeds WT %.3f", hrLO, hrWT)
	}
}
