package cache

import (
	"fmt"

	"kddcache/internal/blockdev"
	"kddcache/internal/sim"
)

// WB is a write-back cache: writes are acknowledged once they land in the
// SSD; dirty pages reach the RAID only on eviction or flush.
//
// The paper deliberately excludes write-back from its evaluation
// "because it cannot prevent data loss under SSD failures" (§IV-A1).
// It is implemented here so that exclusion is demonstrable rather than
// asserted: TestWriteBackLosesDataOnSSDFailure shows the RPO violation,
// and the policy gives a useful lower bound on write latency.
type WB struct {
	base
	// HighWater/LowWater bound the dirty-page population like KDD's
	// cleaner thresholds.
	HighWater float64
	LowWater  float64
	batch     int
}

// NewWB builds a write-back cache.
func NewWB(ssd blockdev.Device, backend Backend, cachePages, dataStart int64, ways int) *WB {
	// Destaging is paced: each trigger reclaims only a thin band below
	// the high-water mark, so background write-back does not dump
	// thousands of RMWs onto the disks at one instant and starve reads.
	return &WB{
		base:      newBase(ssd, backend, cachePages, dataStart, ways),
		HighWater: 0.4,
		LowWater:  0.37,
		batch:     16,
	}
}

// Name implements Policy.
func (w *WB) Name() string { return "WB" }

// Read implements Policy.
func (w *WB) Read(t sim.Time, lba int64, buf []byte) (sim.Time, error) {
	w.st.Reads++
	if slot := w.frame.Lookup(lba); slot != NoSlot {
		w.st.ReadHits++
		w.frame.Touch(slot)
		return w.readSlot(t, slot, buf)
	}
	w.st.ReadMisses++
	w.st.RAIDReads++
	done, err := w.backend.ReadPages(t, lba, 1, buf)
	if err != nil {
		return t, err
	}
	w.fillOnMiss(done, lba, buf)
	return done, nil
}

// Write implements Policy: SSD-speed acknowledgement; the page is marked
// dirty (reusing the Old state) and written back later.
func (w *WB) Write(t sim.Time, lba int64, buf []byte) (sim.Time, error) {
	w.st.Writes++
	slot := w.frame.Lookup(lba)
	if slot != NoSlot {
		w.st.WriteHits++
		w.frame.Touch(slot)
	} else {
		w.st.WriteMiss++
		slot = w.allocOrEvict(t, lba, Clean)
		if slot == NoSlot {
			// No cacheable slot: degrade to a direct RAID write.
			w.st.RAIDWrites++
			return w.backend.WritePages(t, lba, 1, buf)
		}
		w.frame.Insert(lba, slot, Clean)
	}
	w.st.WriteAllocs++
	done, err := w.writeSlot(t, slot, buf)
	if err != nil {
		return t, err
	}
	w.frame.Transition(slot, Old) // dirty
	if float64(w.frame.Count(Old)) > w.HighWater*float64(w.frame.Pages()) {
		if _, err := w.Clean(done, false); err != nil {
			return t, err
		}
	}
	return done, nil
}

// Clean implements Policy: write dirty pages back to RAID (with parity)
// in LRU order.
func (w *WB) Clean(t sim.Time, force bool) (sim.Time, error) {
	low := int64(w.LowWater * float64(w.frame.Pages()))
	if force {
		low = 0
	}
	done := t
	for w.frame.Count(Old) > 0 && (force || w.frame.Count(Old) > low) {
		victims := w.frame.OldestSlots(Old, w.batch)
		if len(victims) == 0 {
			break
		}
		w.st.CleanerRuns++
		for _, slot := range victims {
			if w.frame.Slot(slot).State != Old {
				continue
			}
			c, err := w.writeBack(t, slot)
			if err != nil {
				return t, err
			}
			done = sim.MaxTime(done, c)
			if !force && w.frame.Count(Old) <= low {
				break
			}
		}
	}
	return done, nil
}

// writeBack flushes one dirty page to the RAID.
func (w *WB) writeBack(t sim.Time, slot int32) (sim.Time, error) {
	lba := w.frame.Slot(slot).RaidLBA
	var buf []byte
	if w.dataModeWB() {
		buf = make([]byte, blockdev.PageSize)
	}
	c, err := w.readSlot(t, slot, buf)
	if err != nil {
		return t, err
	}
	w.st.RAIDWrites++
	c, err = w.backend.WritePages(c, lba, 1, buf)
	if err != nil {
		return t, fmt.Errorf("cache: write-back of lba %d: %w", lba, err)
	}
	w.frame.Transition(slot, Clean)
	w.st.Reclaims++
	return c, nil
}

func (w *WB) dataModeWB() bool {
	if s, ok := w.ssd.(blockdev.Storer); ok {
		return s.Store() != nil
	}
	return false
}

// Flush implements Policy.
func (w *WB) Flush(t sim.Time) (sim.Time, error) { return w.Clean(t, true) }

// DirtyPages returns the count of pages not yet written back: data that
// exists ONLY in the SSD and dies with it.
func (w *WB) DirtyPages() int64 { return w.frame.Count(Old) }

var _ Policy = (*WB)(nil)
