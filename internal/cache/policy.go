package cache

import (
	"kddcache/internal/raid"
	"kddcache/internal/sim"
	"kddcache/internal/stats"
)

// Backend is what a caching policy needs from the primary storage. It is
// the RAID array's surface plus the two delayed-parity interfaces the
// paper adds (§III-A); *raid.Array satisfies it.
type Backend interface {
	Pages() int64
	ReadPages(t sim.Time, lba int64, count int, buf []byte) (sim.Time, error)
	WritePages(t sim.Time, lba int64, count int, buf []byte) (sim.Time, error)
	WriteNoParity(t sim.Time, lba int64, count int, buf []byte) (sim.Time, error)
	// WriteRow writes a full parity row (one page per data chunk, in
	// RowPeers order) with inline parity computation and no reads.
	WriteRow(t sim.Time, firstLBA int64, buf []byte) (sim.Time, error)
	ParityUpdateDelta(t sim.Time, lbas []int64, deltas [][]byte) (sim.Time, error)
	// ParityUpdateDeltaBatch repairs many rows at once with sequential
	// run I/O per member disk (batch reconciliation).
	ParityUpdateDeltaBatch(t sim.Time, fixes []raid.RowFix) (sim.Time, error)
	ParityUpdateReconstruct(t sim.Time, lba int64, rowData [][]byte) (sim.Time, error)
	// ResyncRow recomputes lba's row parity from the current member data
	// (reconstruct-write), clearing any stale mark. Policies fall back to
	// it when a pending delta can no longer be applied — e.g. the old
	// version it XORs against was lost to a media error.
	ResyncRow(t sim.Time, lba int64) (sim.Time, error)
	RowPeers(lba int64) []int64
	StripePages() int64
	StaleRows() int
	// Healthy reports whether all member disks are online. Delayed-parity
	// policies stop deferring while degraded: a second failure before the
	// deferred update would lose data, so staleness must not grow.
	Healthy() bool

	// Online member rebuild (incremental, crash-safe). The policy paces
	// RebuildStep against foreground traffic and persists the watermark
	// from RebuildTarget as a checkpoint; after a crash, ResumeRebuild
	// re-opens the window from that checkpoint.
	RebuildActive() bool
	RebuildTarget() (disk int, watermark int64, active bool)
	RebuildStep(t sim.Time, maxRows int) (done sim.Time, rowsDone int, complete bool, err error)
	ResumeRebuild(disk int, watermark int64) error
	// Hot spares: StartSpareRebuild attaches a parked spare to a failed
	// member (no-op when nothing is failed, no spare is parked, or a
	// rebuild is already running).
	SpareCount() int
	StartSpareRebuild(t sim.Time) (done sim.Time, started bool, err error)
}

// Policy is a cache management scheme over an SSD device and a Backend.
// All requests are page-granular; drivers split multi-page requests.
type Policy interface {
	// Name identifies the policy ("WT", "WA", "LeavO", "KDD-25%", ...).
	Name() string
	// Read serves a one-page read arriving at t; buf may be nil in
	// timing mode.
	Read(t sim.Time, lba int64, buf []byte) (sim.Time, error)
	// Write serves a one-page write arriving at t.
	Write(t sim.Time, lba int64, buf []byte) (sim.Time, error)
	// Clean lets delayed-parity policies make progress (threshold or idle
	// trigger); no-op for WT/WA. Returns the completion of issued work.
	Clean(t sim.Time, force bool) (sim.Time, error)
	// Flush drains ALL delayed state (stale parities) — used before
	// planned failovers and at end of runs.
	Flush(t sim.Time) (sim.Time, error)
	// Stats exposes the accumulated counters.
	Stats() *stats.CacheStats
}

// Nossd is the no-cache baseline the prototype evaluation includes
// (Figure 9): every request goes straight to the RAID array.
type Nossd struct {
	backend Backend
	st      stats.CacheStats
}

// NewNossd returns the cacheless baseline.
func NewNossd(backend Backend) *Nossd { return &Nossd{backend: backend} }

// Name implements Policy.
func (n *Nossd) Name() string { return "Nossd" }

// Read implements Policy.
func (n *Nossd) Read(t sim.Time, lba int64, buf []byte) (sim.Time, error) {
	n.st.Reads++
	n.st.ReadMisses++
	n.st.RAIDReads++
	return n.backend.ReadPages(t, lba, 1, buf)
}

// Write implements Policy.
func (n *Nossd) Write(t sim.Time, lba int64, buf []byte) (sim.Time, error) {
	n.st.Writes++
	n.st.WriteMiss++
	n.st.RAIDWrites++
	return n.backend.WritePages(t, lba, 1, buf)
}

// Clean implements Policy (no-op).
func (n *Nossd) Clean(t sim.Time, force bool) (sim.Time, error) { return t, nil }

// Flush implements Policy (no-op).
func (n *Nossd) Flush(t sim.Time) (sim.Time, error) { return t, nil }

// Stats implements Policy.
func (n *Nossd) Stats() *stats.CacheStats { return &n.st }

var _ Policy = (*Nossd)(nil)
