package cache_test

import (
	"bytes"
	"testing"

	"kddcache/internal/blockdev"
	"kddcache/internal/cache"
	"kddcache/internal/sim"
)

func newPLog(t *testing.T, s *stack, logCap int64) *cache.PLog {
	t.Helper()
	logDev := blockdev.NewNullDataDevice("log", logCap)
	return cache.NewPLog(s.array, logDev, logCap)
}

func TestPLogReadYourWritesAndReconcile(t *testing.T) {
	s := newStack(t, 512)
	p := newPLog(t, s, 64)
	for lba := int64(0); lba < 100; lba++ {
		s.write(t, p, lba)
	}
	// Overwrites (the case parity logging exists for).
	for lba := int64(0); lba < 100; lba += 3 {
		s.write(t, p, lba)
	}
	s.verify(t, p)
	if p.Stats().CleanerRuns == 0 {
		t.Fatal("log never filled/reconciled despite tiny capacity")
	}
	if _, err := p.Flush(0); err != nil {
		t.Fatal(err)
	}
	if s.array.StaleRows() != 0 {
		t.Fatalf("reconcile left %d stale rows", s.array.StaleRows())
	}
	// Parity must now be fully consistent: survive a disk loss.
	s.array.FailDisk(3)
	buf := make([]byte, blockdev.PageSize)
	for lba, want := range s.oracle {
		if _, err := s.array.ReadPages(0, lba, 1, buf); err != nil {
			t.Fatalf("degraded read %d: %v", lba, err)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("lba %d wrong after parity-log reconcile", lba)
		}
	}
}

func TestPLogCoalescesRepeatedUpdates(t *testing.T) {
	s := newStack(t, 512)
	p := newPLog(t, s, 256)
	// Same page updated many times before any reconcile: the accumulated
	// image must still repair parity to the NEWEST content.
	for i := 0; i < 20; i++ {
		s.write(t, p, 7)
	}
	if _, err := p.Flush(0); err != nil {
		t.Fatal(err)
	}
	s.array.FailDisk(0)
	s.verify(t, p) // reads go to (degraded) RAID; must reconstruct newest
}

func TestPLogSavesSmallWrites(t *testing.T) {
	s := newStack(t, 512)
	p := newPLog(t, s, 1024)
	for lba := int64(0); lba < 50; lba++ {
		s.write(t, p, lba)
	}
	st := p.Stats()
	if st.SmallWritesSaved != 50 {
		t.Fatalf("SmallWritesSaved = %d", st.SmallWritesSaved)
	}
	// Parity never updated inline: the array must show zero parity writes
	// before reconcile.
	if s.array.Stats().ParityWrites != 0 {
		t.Fatalf("parity written inline: %d", s.array.Stats().ParityWrites)
	}
}

func TestPLogSequentialAppendIsFast(t *testing.T) {
	// The log's value: appends are sequential on a dedicated disk, so a
	// small write costs ~(1 read + 1 write on data disk) + cheap append,
	// well under a 2-phase RMW.
	var members []blockdev.Device
	for i := 0; i < 5; i++ {
		d := blockdev.NewNullDevice("d", 65536)
		d.Latency = 10 * sim.Millisecond
		members = append(members, d)
	}
	a, err := newArray5(members)
	if err != nil {
		t.Fatal(err)
	}
	logDev := blockdev.NewNullDevice("log", 4096)
	logDev.Latency = time500us()
	p := cache.NewPLog(a, logDev, 4096)
	done, err := p.Write(0, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Read(10ms) then data write(10ms) serialized = 20ms; the log append
	// overlaps. An RMW with parity would also be 20ms BUT occupy four
	// disk slots; here only two data-disk ops were issued.
	if a.Stats().ParityReads != 0 || a.Stats().ParityWrites != 0 {
		t.Fatal("parity touched inline")
	}
	if done > 21*sim.Millisecond {
		t.Fatalf("parity-logged write took %v", done)
	}
}

func time500us() sim.Time { return 500 * sim.Microsecond }

func TestPLogValidation(t *testing.T) {
	s := newStack(t, 128)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cache.NewPLog(s.array, blockdev.NewNullDevice("log", 16), 64)
}
