package cache

import (
	"fmt"
	"sort"

	"kddcache/internal/blockdev"
	"kddcache/internal/raid"
	"kddcache/internal/sim"
	"kddcache/internal/stats"
)

// PLog implements Parity Logging (Stodolsky, Gibson & Holland, ISCA'93 —
// [2] in the paper), the classic small-write optimisation KDD descends
// from: instead of updating parity in place on every small write, the
// parity-update image (old⊕new of the data page) is appended to a
// dedicated log region with fast sequential writes; when the log fills,
// the out-of-date parities are reconciled in one large batch.
//
// Differences from KDD worth measuring: the update images live on DISK
// (sequential-append cheap, but reclamation reads them back), there is no
// read cache at all, and every small write still costs a data-page read
// to form the image. The paper's §V-A cites this lineage; having it as a
// baseline shows what the SSD brings beyond pure parity deferral.
type PLog struct {
	backend Backend
	logDev  blockdev.Device // dedicated log disk
	logCap  int64           // log capacity in pages
	logUsed int64
	// pending accumulates the update images per storage LBA (latest
	// wins, like the paper's parity-update images).
	pending map[int64][]byte // lba -> xor image (nil in timing mode)
	order   []int64          // insertion order for deterministic reconcile
	st      stats.CacheStats
}

// NewPLog builds a parity log over a dedicated device; logCap pages of
// the device are used as the append region.
func NewPLog(backend Backend, logDev blockdev.Device, logCap int64) *PLog {
	if logCap < 1 || logCap > logDev.Pages() {
		panic("cache: bad parity log capacity")
	}
	return &PLog{
		backend: backend,
		logDev:  logDev,
		logCap:  logCap,
		pending: make(map[int64][]byte),
	}
}

// Name implements Policy.
func (p *PLog) Name() string { return "PLog" }

// Stats implements Policy.
func (p *PLog) Stats() *stats.CacheStats { return &p.st }

// Read implements Policy: no cache; straight to the array.
func (p *PLog) Read(t sim.Time, lba int64, buf []byte) (sim.Time, error) {
	p.st.Reads++
	p.st.ReadMisses++
	p.st.RAIDReads++
	return p.backend.ReadPages(t, lba, 1, buf)
}

// Write implements Policy: read old data, write new data without parity,
// append the update image to the log (sequential). Reconcile when full.
func (p *PLog) Write(t sim.Time, lba int64, buf []byte) (sim.Time, error) {
	p.st.Writes++
	p.st.WriteMiss++
	data := buf != nil

	// Read the old version to form the parity-update image.
	var old []byte
	if data {
		old = make([]byte, blockdev.PageSize)
	}
	p.st.RAIDReads++
	c, err := p.backend.ReadPages(t, lba, 1, old)
	if err != nil {
		return t, err
	}
	// Write the new data without touching parity.
	p.st.RAIDWrites++
	dataDone, err := p.backend.WriteNoParity(c, lba, 1, buf)
	if err != nil {
		return t, err
	}
	p.st.SmallWritesSaved++

	// Append the image to the log region (sequential append).
	var img []byte
	if data {
		img = old
		for i := range img {
			img[i] ^= buf[i]
		}
	}
	if prev, ok := p.pending[lba]; ok {
		// Coalesce: the stored image must stay old0⊕newest, so XOR the
		// two images together (old0⊕new1 ⊕ new1⊕new2 = old0⊕new2).
		if data {
			for i := range img {
				img[i] ^= prev[i]
			}
		}
	} else {
		p.order = append(p.order, lba)
	}
	p.pending[lba] = img
	logDone, err := p.logDev.WritePages(t, p.logUsed%p.logCap, 1, img)
	if err != nil {
		return t, err
	}
	p.logUsed++

	done := sim.MaxTime(dataDone, logDone)
	// Reconcile incrementally once the log passes 3/4 occupancy, so the
	// background work is paced instead of arriving as one storm when the
	// region fills ("large sequential accesses when the log disk is
	// full" — amortised here over foreground writes to keep the open
	// queues sane, as production parity-logging implementations do).
	if p.logUsed >= p.logCap {
		c, err := p.reconcile(done, 0) // full drain: out of space
		if err != nil {
			return t, err
		}
		done = c
	} else if p.logUsed >= p.logCap*3/4 {
		// Apply a sizeable ascending-row batch: adjacent rows' parity
		// pages are adjacent on disk, so the sweep is near-sequential —
		// the "large sequential accesses" the design depends on.
		if _, err := p.reconcile(done, 256); err != nil {
			return t, err
		}
	}
	return done, nil
}

// reconcile applies pending update images to their stale parities, oldest
// rows first, and credits the freed log space. maxRows bounds the work
// (0 = drain everything).
func (p *PLog) reconcile(t sim.Time, maxRows int) (sim.Time, error) {
	if len(p.order) == 0 {
		p.logUsed = 0
		return t, nil
	}
	// Charge the sequential read-back of the images being applied.
	done := t

	// Group images by parity row so each row's parity is RMW'd once.
	byRow := make(map[int64][]int64)
	for _, lba := range p.order {
		key := p.backend.RowPeers(lba)[0]
		byRow[key] = append(byRow[key], lba)
	}
	keys := make([]int64, 0, len(byRow))
	for k := range byRow {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	if maxRows > 0 && len(keys) > maxRows {
		keys = keys[:maxRows]
	}
	// Build the batch: the images are applied from the in-memory copies
	// (the on-disk log exists for durability and is read back only on
	// recovery). Adjacent rows' parity pages are adjacent on the member
	// disks, so the batch path reads/writes them in sequential runs —
	// the large accesses the scheme depends on.
	data := p.dataModePL()
	fixes := make([]raid.RowFix, 0, len(keys))
	applied := 0
	appliedSet := make(map[int64]bool)
	for _, k := range keys {
		lbas := byRow[k]
		fix := raid.RowFix{LBAs: lbas}
		if data {
			fix.Deltas = make([][]byte, len(lbas))
			for i, lba := range lbas {
				fix.Deltas[i] = p.pending[lba]
			}
		}
		fixes = append(fixes, fix)
		for _, lba := range lbas {
			appliedSet[lba] = true
			applied++
		}
	}
	p.st.ParityUpdates += int64(len(fixes))
	c, err := p.backend.ParityUpdateDeltaBatch(t, fixes)
	if err != nil {
		return t, fmt.Errorf("cache: parity log reconcile: %w", err)
	}
	done = sim.MaxTime(done, c)
	for lba := range appliedSet {
		delete(p.pending, lba)
	}
	// Compact the insertion order and credit the log space.
	kept := p.order[:0]
	for _, lba := range p.order {
		if !appliedSet[lba] {
			kept = append(kept, lba)
		}
	}
	p.order = kept
	// Reconciliation compacts the region: live images are rewritten to
	// the front (space of superseded duplicates is reclaimed with them).
	p.logUsed = int64(len(p.order))
	p.st.CleanerRuns++
	return done, nil
}

func (p *PLog) dataModePL() bool {
	for _, img := range p.pending {
		return img != nil
	}
	return false
}

// Clean implements Policy: opportunistic reconcile when idle.
func (p *PLog) Clean(t sim.Time, force bool) (sim.Time, error) {
	if p.logUsed == 0 {
		return t, nil
	}
	if force {
		return p.reconcile(t, 0)
	}
	if p.logUsed < p.logCap/2 {
		return t, nil
	}
	return p.reconcile(t, 32)
}

// Flush implements Policy.
func (p *PLog) Flush(t sim.Time) (sim.Time, error) {
	if p.logUsed == 0 {
		return t, nil
	}
	return p.reconcile(t, 0)
}

// LogUsed returns the pages currently in the log region.
func (p *PLog) LogUsed() int64 { return p.logUsed }

var _ Policy = (*PLog)(nil)
