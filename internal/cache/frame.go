// Package cache provides the set-associative SSD-cache frame shared by
// every policy, and the three baseline policies the paper compares KDD
// against: write-through (WT), write-around (WA), and LeavO (Lee et al.,
// SAC'15 — old+new versions with delayed parity).
//
// The cache space is divided into sets of a fixed number of page slots;
// data pages are mapped to sets by hashing their parity stripe so pages
// of one stripe land together and can be reclaimed together (§III-B).
// Replacement is LRU over evictable pages within the set.
package cache

import (
	"fmt"
	"sort"

	"kddcache/internal/blockdev"
)

// State is a cache slot state. Free/Clean/Old/Delta are the paper's page
// states (§III-B); New is used by LeavO for the redundant new version of
// an updated page.
type State uint8

// Slot states.
const (
	Free State = iota
	Clean
	Old
	Delta
	New
)

func (s State) String() string {
	switch s {
	case Free:
		return "free"
	case Clean:
		return "clean"
	case Old:
		return "old"
	case Delta:
		return "delta"
	case New:
		return "new"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// NoSlot marks the absence of a slot index.
const NoSlot = int32(-1)

// Slot is one cache page frame.
type Slot struct {
	State   State
	RaidLBA int64 // storage page cached here (valid for Clean/Old/New)
	LastUse int64 // LRU tick
}

// Frame is the set-associative slot array with an LBA lookup index.
// It tracks slot states only; what the bytes mean is up to the policy.
type Frame struct {
	ways        int
	nsets       int
	dataSets    int // sets available to data pages (== nsets unless fixed-partition)
	stripePages int64
	slots       []Slot
	lookup      map[int64]int32 // RaidLBA -> slot holding its current data
	tick        int64

	// Per-state population counts, for thresholds and zone stats.
	counts [5]int64
	// Per-set Delta-page counts, for KDD's least-loaded DEZ allocation.
	deltaPerSet []int32
	// Per-set Free-slot counts, so allocation scans can skip full sets.
	freePerSet []int32
}

// NewFrame builds a frame of totalPages slots grouped into sets of `ways`
// pages. stripePages controls set mapping: LBAs of one parity stripe map
// to one set. totalPages is rounded down to a multiple of ways.
func NewFrame(totalPages int64, ways int, stripePages int64) *Frame {
	if ways < 1 || totalPages < int64(ways) || stripePages < 1 {
		panic(fmt.Sprintf("cache: bad frame geometry pages=%d ways=%d stripe=%d",
			totalPages, ways, stripePages))
	}
	nsets := int(totalPages / int64(ways))
	f := &Frame{
		ways:        ways,
		nsets:       nsets,
		dataSets:    nsets,
		stripePages: stripePages,
		slots:       make([]Slot, nsets*ways),
		lookup:      make(map[int64]int32),
		deltaPerSet: make([]int32, nsets),
		freePerSet:  make([]int32, nsets),
	}
	f.counts[Free] = int64(len(f.slots))
	for i := range f.freePerSet {
		f.freePerSet[i] = int32(ways)
	}
	return f
}

// Pages returns the usable cache capacity in pages.
func (f *Frame) Pages() int64 { return int64(len(f.slots)) }

// Sets returns the number of cache sets.
func (f *Frame) Sets() int { return f.nsets }

// Ways returns the set associativity.
func (f *Frame) Ways() int { return f.ways }

// Count returns the number of slots in the given state.
func (f *Frame) Count(s State) int64 { return f.counts[s] }

// SetOf maps a storage LBA to its cache set via Fibonacci hashing of the
// parity stripe number. Only the first DataSets sets receive data pages.
func (f *Frame) SetOf(lba int64) int {
	stripe := uint64(lba / f.stripePages)
	h := stripe * 0x9E3779B97F4A7C15
	return int(h % uint64(f.dataSets))
}

// SetDataSets restricts data pages to the first n sets, reserving the
// rest for delta pages — the fixed-partition ablation of §III-B. The
// default (n == Sets()) is the paper's dynamic mixing.
func (f *Frame) SetDataSets(n int) {
	if n < 1 || n > f.nsets {
		panic("cache: bad data-set count")
	}
	f.dataSets = n
}

// DataSets returns the number of sets data pages may occupy.
func (f *Frame) DataSets() int { return f.dataSets }

// SetRange returns the slot index range [lo, hi) of a set.
func (f *Frame) SetRange(set int) (int32, int32) {
	lo := int32(set * f.ways)
	return lo, lo + int32(f.ways)
}

// Lookup returns the slot currently holding the storage page, or NoSlot.
func (f *Frame) Lookup(lba int64) int32 {
	if s, ok := f.lookup[lba]; ok {
		return s
	}
	return NoSlot
}

// Slot returns a pointer to slot i for inspection.
func (f *Frame) Slot(i int32) *Slot { return &f.slots[i] }

// Touch refreshes LRU recency for slot i.
func (f *Frame) Touch(i int32) {
	f.tick++
	f.slots[i].LastUse = f.tick
}

// setState moves slot i to state s, maintaining counts.
func (f *Frame) setState(i int32, s State) {
	old := f.slots[i].State
	if old == s {
		return
	}
	f.counts[old]--
	f.counts[s]++
	set := int(i) / f.ways
	if old == Delta {
		f.deltaPerSet[set]--
	}
	if s == Delta {
		f.deltaPerSet[set]++
	}
	if old == Free {
		f.freePerSet[set]--
	}
	if s == Free {
		f.freePerSet[set]++
	}
	f.slots[i].State = s
}

// Insert binds storage page lba to slot i with the given state and
// freshens its recency. Any previous binding of the slot must have been
// released.
func (f *Frame) Insert(lba int64, i int32, s State) {
	if s == Free || s == Delta {
		panic("cache: Insert with non-data state")
	}
	f.slots[i].RaidLBA = lba
	f.setState(i, s)
	f.lookup[lba] = i
	f.Touch(i)
}

// Rebind repoints the lookup entry for lba to slot i without touching
// slot states (LeavO's new-version promotion).
func (f *Frame) Rebind(lba int64, i int32) { f.lookup[lba] = i }

// Transition changes the state of slot i (e.g. Clean -> Old on a write
// hit), keeping the lookup intact.
func (f *Frame) Transition(i int32, s State) { f.setState(i, s) }

// MarkDelta claims slot i as a DEZ page (no lookup binding).
func (f *Frame) MarkDelta(i int32) {
	f.slots[i].RaidLBA = -1
	f.setState(i, Delta)
}

// Release frees slot i. If drop is true the lookup binding for its
// storage page is removed too (set drop=false when the lookup was already
// rebound elsewhere).
func (f *Frame) Release(i int32, drop bool) {
	if drop && f.slots[i].State != Free && f.slots[i].State != Delta {
		if cur, ok := f.lookup[f.slots[i].RaidLBA]; ok && cur == i {
			delete(f.lookup, f.slots[i].RaidLBA)
		}
	}
	f.slots[i].RaidLBA = -1
	f.setState(i, Free)
}

// AllocFree returns a Free slot in the set, or NoSlot.
func (f *Frame) AllocFree(set int) int32 {
	if f.freePerSet[set] == 0 {
		return NoSlot
	}
	lo, hi := f.SetRange(set)
	for i := lo; i < hi; i++ {
		if f.slots[i].State == Free {
			return i
		}
	}
	return NoSlot
}

// EvictLRU returns the least-recently-used slot in the set whose state is
// in evictable, or NoSlot. The caller releases it.
func (f *Frame) EvictLRU(set int, evictable ...State) int32 {
	lo, hi := f.SetRange(set)
	best := NoSlot
	var bestUse int64
	for i := lo; i < hi; i++ {
		st := f.slots[i].State
		ok := false
		for _, e := range evictable {
			if st == e {
				ok = true
				break
			}
		}
		if !ok {
			continue
		}
		if best == NoSlot || f.slots[i].LastUse < bestUse {
			best = i
			bestUse = f.slots[i].LastUse
		}
	}
	return best
}

// LeastDeltaSet returns the set with the fewest Delta pages that still
// has a Free slot, or -1 ("KDD always chooses a free page from the cache
// set which has the least number of DEZ pages", §III-B). freeHint scans
// lazily; cost is O(sets) which is fine at simulation granularity.
func (f *Frame) LeastDeltaSet() int {
	start := 0
	if f.dataSets < f.nsets {
		start = f.dataSets // fixed partition: deltas only in reserved sets
	}
	best := -1
	var bestDelta int32
	for s := start; s < f.nsets; s++ {
		if f.freePerSet[s] == 0 {
			continue
		}
		if best == -1 || f.deltaPerSet[s] < bestDelta {
			best = s
			bestDelta = f.deltaPerSet[s]
		}
	}
	return best
}

// OldestSlots returns up to n slot indices in the given state across the
// whole cache, least recently used first (the cleaner's victim scan).
func (f *Frame) OldestSlots(state State, n int) []int32 {
	type cand struct {
		i   int32
		use int64
	}
	var cands []cand
	for i := range f.slots {
		if f.slots[i].State == state {
			cands = append(cands, cand{int32(i), f.slots[i].LastUse})
		}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].use < cands[b].use })
	if n > len(cands) {
		n = len(cands)
	}
	out := make([]int32, 0, n)
	for k := 0; k < n; k++ {
		out = append(out, cands[k].i)
	}
	return out
}

// CheckInvariants validates internal consistency (used by tests and the
// property suite): counts match slot states, lookup is a bijection onto
// live data slots, delta counts match.
func (f *Frame) CheckInvariants() error {
	var counts [5]int64
	deltas := make([]int32, f.nsets)
	frees := make([]int32, f.nsets)
	for i := range f.slots {
		st := f.slots[i].State
		counts[st]++
		if st == Delta {
			deltas[i/f.ways]++
		}
		if st == Free {
			frees[i/f.ways]++
		}
	}
	for s := range frees {
		if frees[s] != f.freePerSet[s] {
			return fmt.Errorf("cache: set %d free count %d, cached %d", s, frees[s], f.freePerSet[s])
		}
	}
	for s := State(0); s < 5; s++ {
		if counts[s] != f.counts[s] {
			return fmt.Errorf("cache: state %v count %d, cached %d", s, counts[s], f.counts[s])
		}
	}
	for s := range deltas {
		if deltas[s] != f.deltaPerSet[s] {
			return fmt.Errorf("cache: set %d delta count %d, cached %d", s, deltas[s], f.deltaPerSet[s])
		}
	}
	for lba, i := range f.lookup {
		st := f.slots[i].State
		if st == Free || st == Delta {
			return fmt.Errorf("cache: lookup %d points at %v slot", lba, st)
		}
		if f.slots[i].RaidLBA != lba {
			return fmt.Errorf("cache: lookup %d points at slot holding %d", lba, f.slots[i].RaidLBA)
		}
		if f.SetOf(lba) != int(i)/f.ways && st != New {
			return fmt.Errorf("cache: lba %d mapped outside its set", lba)
		}
	}
	return nil
}

// PageSize re-exported for convenience of policy implementations.
const PageSize = blockdev.PageSize
