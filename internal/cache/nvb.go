package cache

import (
	"sort"

	"kddcache/internal/blockdev"
	"kddcache/internal/sim"
	"kddcache/internal/stats"
)

// NVB models the classic alternative the paper's introduction dismisses:
// "buffering parity/data blocks in Non-volatile RAM ... small writes can
// be reduced to full stripe writes. However, the access time reduction
// they can provide is limited due to the poor locality at the disk I/O
// level" (§I).
//
// Writes land in a small battery-backed buffer instantly; the buffer
// destages a parity row at a time, using a full-stripe write when every
// data page of the row is buffered and read-modify-write otherwise. With
// random small writes, full rows rarely form and the destage rate is
// RMW-bound — so once the buffer fills, write latency collapses to RAID
// small-write speed, which is exactly the limitation KDD removes.
//
// There is no SSD in this policy; reads it cannot serve from the buffer
// go straight to the RAID.
type NVB struct {
	backend  Backend
	capPages int
	buf      map[int64][]byte  // lba -> page (nil values in timing mode)
	rows     map[int64][]int64 // row key (first peer) -> buffered lbas
	st       stats.CacheStats
}

// NewNVB builds an NVRAM write buffer of capPages 4KB pages (NVRAM is
// small "for power and cost efficiency", §V-A — a few thousand pages).
func NewNVB(backend Backend, capPages int) *NVB {
	if capPages < 1 {
		panic("cache: NVB needs capacity")
	}
	return &NVB{
		backend:  backend,
		capPages: capPages,
		buf:      make(map[int64][]byte),
		rows:     make(map[int64][]int64),
	}
}

// Name implements Policy.
func (n *NVB) Name() string { return "NVB" }

// Stats implements Policy.
func (n *NVB) Stats() *stats.CacheStats { return &n.st }

// rowKey identifies lba's parity row by its first peer.
func (n *NVB) rowKey(lba int64) int64 { return n.backend.RowPeers(lba)[0] }

// Read implements Policy: buffered pages are served at NVRAM speed.
func (n *NVB) Read(t sim.Time, lba int64, buf []byte) (sim.Time, error) {
	n.st.Reads++
	if page, ok := n.buf[lba]; ok {
		n.st.ReadHits++
		if buf != nil && page != nil {
			copy(buf, page)
		}
		return t, nil // DRAM-speed; negligible at disk granularity
	}
	n.st.ReadMisses++
	n.st.RAIDReads++
	return n.backend.ReadPages(t, lba, 1, buf)
}

// Write implements Policy: instant while the buffer has room; once full,
// the caller pays for a destage first (back-pressure).
func (n *NVB) Write(t sim.Time, lba int64, buf []byte) (sim.Time, error) {
	n.st.Writes++
	done := t
	if _, ok := n.buf[lba]; !ok && len(n.buf) >= n.capPages {
		c, err := n.destageOne(t)
		if err != nil {
			return t, err
		}
		done = c
	}
	if _, ok := n.buf[lba]; ok {
		n.st.WriteHits++
	} else {
		n.st.WriteMiss++
		key := n.rowKey(lba)
		n.rows[key] = append(n.rows[key], lba)
	}
	var page []byte
	if buf != nil {
		page = make([]byte, blockdev.PageSize)
		copy(page, buf)
	}
	n.buf[lba] = page
	return done, nil
}

// destageOne flushes the row with the most buffered pages (maximising
// full-stripe opportunities) and returns the completion time.
func (n *NVB) destageOne(t sim.Time) (sim.Time, error) {
	var bestKey int64
	best := -1
	// Deterministic scan: collect and sort keys (map order is random).
	keys := make([]int64, 0, len(n.rows))
	for k := range n.rows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		if l := len(n.rows[k]); l > best {
			best = l
			bestKey = k
		}
	}
	if best < 0 {
		return t, nil
	}
	return n.destageRow(t, bestKey)
}

// destageRow writes one row's buffered pages to RAID.
func (n *NVB) destageRow(t sim.Time, key int64) (sim.Time, error) {
	lbas := n.rows[key]
	peers := n.backend.RowPeers(key)
	done := t
	if len(lbas) == len(peers) {
		// Full stripe: one parity computation, no reads.
		var rowBuf []byte
		if n.dataModeNVB() {
			rowBuf = make([]byte, len(peers)*blockdev.PageSize)
			for i, p := range peers {
				copy(rowBuf[i*blockdev.PageSize:], n.buf[p])
			}
		}
		n.st.RAIDWrites += int64(len(peers))
		c, err := n.backend.WriteRow(t, peers[0], rowBuf)
		if err != nil {
			return t, err
		}
		done = c
		n.st.SmallWritesSaved += int64(len(peers))
	} else {
		// Partial row: per-page read-modify-write.
		for _, lba := range lbas {
			n.st.RAIDWrites++
			c, err := n.backend.WritePages(t, lba, 1, n.buf[lba])
			if err != nil {
				return t, err
			}
			done = sim.MaxTime(done, c)
		}
	}
	for _, lba := range lbas {
		delete(n.buf, lba)
	}
	delete(n.rows, key)
	return done, nil
}

func (n *NVB) dataModeNVB() bool {
	// In data mode buffered pages are non-nil.
	for _, p := range n.buf {
		return p != nil
	}
	return false
}

// Clean implements Policy: opportunistic destaging in idle periods.
func (n *NVB) Clean(t sim.Time, force bool) (sim.Time, error) {
	done := t
	for len(n.rows) > 0 {
		c, err := n.destageOne(t)
		if err != nil {
			return t, err
		}
		done = sim.MaxTime(done, c)
		t = c
		if !force && len(n.buf) < n.capPages/2 {
			break
		}
	}
	return done, nil
}

// Flush implements Policy.
func (n *NVB) Flush(t sim.Time) (sim.Time, error) { return n.Clean(t, true) }

// Buffered returns the number of pages currently in NVRAM.
func (n *NVB) Buffered() int { return len(n.buf) }

var _ Policy = (*NVB)(nil)
