package cache_test

import (
	"bytes"
	"testing"

	"kddcache/internal/blockdev"
	"kddcache/internal/cache"
	"kddcache/internal/sim"
)

func TestWriteBackReadYourWrites(t *testing.T) {
	s := newStack(t, 512)
	p := cache.NewWB(s.ssd, s.array, 256, 64, 32)
	for lba := int64(0); lba < 100; lba++ {
		s.write(t, p, lba)
	}
	for lba := int64(0); lba < 100; lba += 2 {
		s.write(t, p, lba)
	}
	s.verify(t, p)
	if _, err := p.Flush(0); err != nil {
		t.Fatal(err)
	}
	s.verify(t, p)
	// After flush everything is durable on RAID.
	buf := make([]byte, blockdev.PageSize)
	for lba, want := range s.oracle {
		if _, err := s.array.ReadPages(0, lba, 1, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("lba %d not durable after flush", lba)
		}
	}
}

func TestWriteBackLatencyIsFlashSpeed(t *testing.T) {
	// WB acknowledges at SSD latency; WT pays the RAID small write.
	mk := func() (blockdev.Device, cache.Backend) {
		var members []blockdev.Device
		for i := 0; i < 5; i++ {
			d := blockdev.NewNullDevice("d", 4096)
			d.Latency = 10 * sim.Millisecond
			members = append(members, d)
		}
		a := mustArray5(t, members)
		ssd := blockdev.NewNullDevice("ssd", 4096)
		ssd.Latency = 300 * sim.Microsecond
		return ssd, a
	}
	ssd1, a1 := mk()
	wb := cache.NewWB(ssd1, a1, 512, 0, 32)
	done, err := wb.Write(0, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if done >= sim.Millisecond {
		t.Fatalf("WB write took %v; should be flash-speed", done)
	}
	ssd2, a2 := mk()
	wt := cache.NewWT(ssd2, a2, 512, 0, 32)
	done, err = wt.Write(0, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if done < 20*sim.Millisecond {
		t.Fatalf("WT write took %v; must pay the RMW", done)
	}
}

// TestWriteBackLosesDataOnSSDFailure demonstrates exactly why the paper
// excludes write-back (§IV-A1): dirty pages exist only in the SSD, so an
// SSD failure before write-back violates the RPO-of-zero guarantee that
// WT/WA/LeavO/KDD all preserve.
func TestWriteBackLosesDataOnSSDFailure(t *testing.T) {
	s := newStack(t, 512)
	p := cache.NewWB(s.ssd, s.array, 256, 64, 32)
	data := s.page(0xD1)
	if _, err := p.Write(0, 42, data); err != nil {
		t.Fatal(err)
	}
	if p.DirtyPages() == 0 {
		t.Fatal("write-back page should be dirty")
	}
	// SSD dies before write-back. The RAID never saw the data.
	buf := make([]byte, blockdev.PageSize)
	if _, err := s.array.ReadPages(0, 42, 1, buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(buf, data) {
		t.Fatal("RAID has the data; write-back should have deferred it")
	}
	// Contrast: KDD/WT/WA/LeavO always dispatch data to RAID first.
	s2 := newStack(t, 512)
	wt := cache.NewWT(s2.ssd, s2.array, 256, 64, 32)
	if _, err := wt.Write(0, 42, data); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.array.ReadPages(0, 42, 1, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("WT failed to make data durable before ack")
	}
}

func TestWriteBackCleanerThresholds(t *testing.T) {
	s := newStack(t, 2048)
	p := cache.NewWB(s.ssd, s.array, 256, 64, 32)
	// Fill with dirty pages past the high-water mark.
	for lba := int64(0); lba < 500; lba++ {
		s.write(t, p, lba)
	}
	if p.Stats().CleanerRuns == 0 {
		t.Fatal("cleaner never ran past high water")
	}
	if got := float64(p.DirtyPages()); got > 0.45*256 {
		t.Fatalf("dirty pages %v above high water after cleaning", got)
	}
	s.verify(t, p)
}

func mustArray5(t *testing.T, members []blockdev.Device) cache.Backend {
	t.Helper()
	a, err := newArray5(members)
	if err != nil {
		t.Fatal(err)
	}
	return a
}
