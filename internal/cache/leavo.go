package cache

import (
	"fmt"

	"kddcache/internal/blockdev"
	"kddcache/internal/metalog"
	"kddcache/internal/sim"
)

// LeavO reproduces Lee et al.'s scheme (SAC'15, [10] in the paper): on a
// write hit it keeps BOTH the old and the new version of the page in the
// SSD and writes the data to RAID without a parity update; stale parities
// are repaired in the background from old⊕new. Compared to KDD it (a)
// spends a whole cache page per update instead of a packed delta, and
// (b) persists every mapping change to flash without the circular log's
// coalescing — the two costs §II-B calls out.
type LeavO struct {
	base
	oldOf map[int64]int32 // storage LBA -> slot holding the old version

	metaStart   int64 // metadata region [metaStart, metaStart+metaPages)
	metaPages   int64
	metaCursor  int64
	metaPending int // mapping updates not yet persisted

	// Cleaning thresholds as fractions of capacity.
	HighWater float64 // start cleaning above this fraction of Old pages
	LowWater  float64 // stop cleaning below this
	batch     int
}

// NewLeavO builds a LeavO cache. The metadata region [metaStart,
// metaStart+metaPages) on the SSD absorbs the per-update metadata writes;
// cache data pages start at dataStart.
func NewLeavO(ssd blockdev.Device, backend Backend, cachePages, dataStart int64,
	ways int, metaStart, metaPages int64) *LeavO {
	if metaPages < 1 {
		panic("cache: LeavO needs a metadata region")
	}
	return &LeavO{
		base:      newBase(ssd, backend, cachePages, dataStart, ways),
		oldOf:     make(map[int64]int32),
		metaStart: metaStart,
		metaPages: metaPages,
		HighWater: 0.2,
		LowWater:  0.1,
		batch:     64,
	}
}

// Name implements Policy.
func (l *LeavO) Name() string { return "LeavO" }

// metaUpdate records n mapping changes; every EntriesPerPage of them
// costs one metadata page program (no coalescing — LeavO has no NVRAM
// log, its map must be durable before the data write is acknowledged).
func (l *LeavO) metaUpdate(t sim.Time, n int) sim.Time {
	l.metaPending += n
	done := t
	for l.metaPending >= metalog.EntriesPerPage {
		l.metaPending -= metalog.EntriesPerPage
		lba := l.metaStart + l.metaCursor%l.metaPages
		l.metaCursor++
		var buf []byte
		if l.dataModeSSD() {
			buf = make([]byte, blockdev.PageSize)
		}
		c, err := l.ssd.WritePages(t, lba, 1, buf)
		if err == nil && c > done {
			done = c
		}
		l.st.MetaWrites++
	}
	return done
}

func (l *LeavO) dataModeSSD() bool {
	if s, ok := l.ssd.(blockdev.Storer); ok {
		return s.Store() != nil
	}
	return false
}

// Read implements Policy.
func (l *LeavO) Read(t sim.Time, lba int64, buf []byte) (sim.Time, error) {
	l.st.Reads++
	if slot := l.frame.Lookup(lba); slot != NoSlot {
		l.st.ReadHits++
		l.frame.Touch(slot)
		return l.readSlot(t, slot, buf)
	}
	l.st.ReadMisses++
	l.st.RAIDReads++
	done, err := l.backend.ReadPages(t, lba, 1, buf)
	if err != nil {
		return t, err
	}
	l.fillLeavO(done, lba, buf)
	return done, nil
}

func (l *LeavO) fillLeavO(done sim.Time, lba int64, buf []byte) {
	slot := l.allocOrEvict(done, lba, Clean)
	if slot == NoSlot {
		return
	}
	l.frame.Insert(lba, slot, Clean)
	l.st.ReadFills++
	l.writeSlot(done, slot, buf) //nolint:errcheck // background fill
	l.metaUpdate(done, 1)
}

// Write implements Policy.
func (l *LeavO) Write(t sim.Time, lba int64, buf []byte) (sim.Time, error) {
	l.st.Writes++
	slot := l.frame.Lookup(lba)
	switch {
	case slot != NoSlot && l.frame.Slot(slot).State == New:
		// Second update: overwrite the new version in place; parity still
		// corresponds to the old version, so no extra bookkeeping.
		l.st.WriteHits++
		l.frame.Touch(slot)
		l.st.VersionWrite++
		ssdDone, err := l.writeSlot(t, slot, buf)
		if err != nil {
			return t, err
		}
		l.st.RAIDWrites++
		raidDone, err := l.backend.WriteNoParity(t, lba, 1, buf)
		if err != nil {
			return t, err
		}
		l.st.SmallWritesSaved++
		done := sim.MaxTime(l.metaUpdate(t, 1), sim.MaxTime(ssdDone, raidDone))
		return done, l.maybeClean(done)

	case slot != NoSlot: // Clean hit: keep old, add new version
		l.st.WriteHits++
		if !l.backend.Healthy() {
			// Degraded: do not grow the stale-parity set (same rationale
			// as KDD); write through in place.
			l.st.WriteAllocs++
			ssdDone, err := l.writeSlot(t, slot, buf)
			if err != nil {
				return t, err
			}
			l.frame.Touch(slot)
			l.st.RAIDWrites++
			raidDone, err := l.backend.WritePages(t, lba, 1, buf)
			if err != nil {
				return t, err
			}
			return sim.MaxTime(ssdDone, raidDone), nil
		}
		// Pin the current copy as Old first so the eviction scan for the
		// new version's slot can never pick it.
		l.frame.Transition(slot, Old)
		newSlot := l.allocOrEvict(t, lba, Clean)
		if newSlot == NoSlot {
			// No room for a second version: revert and degrade to
			// write-through for this request.
			l.frame.Transition(slot, Clean)
			l.st.WriteAllocs++
			ssdDone, err := l.writeSlot(t, slot, buf)
			if err != nil {
				return t, err
			}
			l.frame.Touch(slot)
			l.st.RAIDWrites++
			raidDone, err := l.backend.WritePages(t, lba, 1, buf)
			if err != nil {
				return t, err
			}
			return sim.MaxTime(ssdDone, raidDone), nil
		}
		l.oldOf[lba] = slot
		l.frame.Insert(lba, newSlot, New) // rebinds lookup to the new slot
		l.st.VersionWrite++
		ssdDone, err := l.writeSlot(t, newSlot, buf)
		if err != nil {
			return t, err
		}
		l.st.RAIDWrites++
		raidDone, err := l.backend.WriteNoParity(t, lba, 1, buf)
		if err != nil {
			return t, err
		}
		l.st.SmallWritesSaved++
		done := sim.MaxTime(l.metaUpdate(t, 2), sim.MaxTime(ssdDone, raidDone))
		return done, l.maybeClean(done)

	default: // miss
		l.st.WriteMiss++
		l.st.RAIDWrites++
		raidDone, err := l.backend.WritePages(t, lba, 1, buf)
		if err != nil {
			return t, err
		}
		var ssdDone sim.Time
		if s := l.allocOrEvict(t, lba, Clean); s != NoSlot {
			l.frame.Insert(lba, s, Clean)
			l.st.WriteAllocs++
			ssdDone, err = l.writeSlot(t, s, buf)
			if err != nil {
				return t, err
			}
			l.metaUpdate(t, 1)
		}
		return sim.MaxTime(raidDone, ssdDone), nil
	}
}

// maybeClean triggers background cleaning past the high-water mark.
func (l *LeavO) maybeClean(t sim.Time) error {
	if float64(l.frame.Count(Old)) > l.HighWater*float64(l.frame.Pages()) {
		_, err := l.Clean(t, false)
		return err
	}
	return nil
}

// Clean implements Policy: repair parity for the oldest Old pages, then
// drop the old version and demote the new version to Clean.
func (l *LeavO) Clean(t sim.Time, force bool) (sim.Time, error) {
	low := int64(l.LowWater * float64(l.frame.Pages()))
	done := t
	for l.frame.Count(Old) > 0 && (force || l.frame.Count(Old) > low) {
		victims := l.frame.OldestSlots(Old, l.batch)
		if len(victims) == 0 {
			break
		}
		l.st.CleanerRuns++
		for _, oldSlot := range victims {
			if l.frame.Slot(oldSlot).State != Old {
				continue
			}
			c, err := l.cleanOne(t, oldSlot)
			if err != nil {
				return t, err
			}
			done = sim.MaxTime(done, c)
			if !force && l.frame.Count(Old) <= low {
				break
			}
		}
	}
	return done, nil
}

// cleanOne repairs one page's parity from its old and new versions.
func (l *LeavO) cleanOne(t sim.Time, oldSlot int32) (sim.Time, error) {
	lba := l.frame.Slot(oldSlot).RaidLBA
	newSlot := l.frame.Lookup(lba)
	if newSlot == NoSlot {
		return t, fmt.Errorf("cache: LeavO old page %d has no new version", lba)
	}
	data := l.dataModeSSD()
	var oldBuf, newBuf []byte
	if data {
		oldBuf = make([]byte, blockdev.PageSize)
		newBuf = make([]byte, blockdev.PageSize)
	}
	// Read both versions from the SSD (concurrent thanks to channels).
	phase1 := t
	c, err := l.readSlot(t, oldSlot, oldBuf)
	if err != nil {
		return t, err
	}
	phase1 = sim.MaxTime(phase1, c)
	c, err = l.readSlot(t, newSlot, newBuf)
	if err != nil {
		return t, err
	}
	phase1 = sim.MaxTime(phase1, c)

	var diff []byte
	if data {
		diff = oldBuf
		for i := range diff {
			diff[i] ^= newBuf[i]
		}
	}
	l.st.ParityUpdates++
	done, err := l.backend.ParityUpdateDelta(phase1, []int64{lba}, [][]byte{diff})
	if err != nil {
		return t, err
	}
	// Old version freed, new version becomes the clean current copy.
	l.frame.Release(oldSlot, false)
	l.trimSlot(done, oldSlot)
	delete(l.oldOf, lba)
	l.frame.Transition(newSlot, Clean)
	l.st.Reclaims++
	l.metaUpdate(done, 2)
	return done, nil
}

// Flush implements Policy: repair every stale parity.
func (l *LeavO) Flush(t sim.Time) (sim.Time, error) { return l.Clean(t, true) }

var _ Policy = (*LeavO)(nil)
