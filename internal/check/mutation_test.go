//go:build kddbug

package check

import "testing"

// TestMutationCaught proves the checker can actually fail. The kddbug
// build flips one ordering edge in core.commitDez: DEZ mapping entries
// are logged (and staging drained) BEFORE the DEZ page is durable, with
// no undo on error. A crash on the DEZ write ordinal then leaves the
// metadata log owning pointers into a never-written (or torn) page, so
// recovery serves stale or garbage content for ACKED writes — exactly
// the class of bug exhaustive crash-point exploration exists to catch.
func TestMutationCaught(t *testing.T) {
	o := Options{Seeds: 2, CrashOnly: true}
	rep := Run(o)
	v := rep.Violations()
	if len(v) == 0 {
		t.Fatal("kddbug mutation produced zero violations across every crash point; " +
			"the checker cannot detect the DEZ log-before-durable ordering bug")
	}
	t.Logf("checker caught the mutation (%d violations); first: %s", len(v), v[0])
	t.Logf("replay: go run ./cmd/kddcheck -seed %#x -seeds 1 (kddbug build)", rep.Results[0].Seed)
}
