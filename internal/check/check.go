// Package check is the model-based crash-consistency checker. It runs a
// seeded workload once fault-free while recording the device-op trace,
// enumerates EVERY crash point (each SSD write ordinal, with seeded torn
// tails) and media-fault site (latent and transient, per distinct page on
// the SSD and each array member) from that trace, then replays the same
// workload once per site with that single fault armed. Each replay is
// cross-checked against internal/model's reference semantics: acked
// writes survive, in-flight writes resolve old-or-new and pin, recovery
// replay is idempotent, parity stays reconstructable, and every store's
// page checksums verify.
package check

import (
	"fmt"
	"strings"

	"kddcache/internal/blockdev"
	"kddcache/internal/harness"
)

// Options configures a checker run. Zero values select defaults chosen so
// the exhaustive per-seed site sweep stays in the low hundreds of runs.
type Options struct {
	Seed       uint64 // master seed; 0 = 0xC0FFEE (the chaos harness's master, so its schedules double as regression seeds here)
	Seeds      int    // seeds to explore (0 = 2)
	Ops        int    // workload ops per run (0 = 200)
	Footprint  int64  // distinct user LBAs (0 = 64)
	CachePages int64  // SSD cache frame pages (0 = 128)
	Parallel   int    // site-replay workers (0 = GOMAXPROCS, via harness.FanOut)
	CrashOnly  bool   // explore only crash sites (used by the kddbug mutation self-test)
	// Rebuild selects the rebuild-window scenario: a member is killed at
	// Ops/3 with a hot spare parked, so every site fires against a stack
	// whose pump is rebuilding the array online (RAID-6 geometry, so a
	// member media fault inside the window stays recoverable). Crash sites
	// then cover the rebuild checkpoint/resume path.
	Rebuild bool
	// MediaStride samples every Nth member media-fault site (0 or 1 =
	// exhaustive). Crash sites, whole-SSD kill sites and SSD media sites
	// are never strided — only the member fault fan-out, which the rebuild
	// scenario inflates to every-page-on-every-member because the rebuild
	// itself touches the whole array. The -race -short CI sweep uses this;
	// the stride offset rotates per member so no member goes unsampled.
	MediaStride int
	// Backend picks the array implementation under the cache: "kdd" (the
	// default; parity RAID with the delayed-parity protocol) or "lsraid"
	// (the log-structured backend). The rebuild scenario and the sharded
	// sweep are kdd-only: the former depends on RAID-6 double-fault
	// geometry, the latter pins the sharded plane's own array wiring.
	Backend string
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 0xC0FFEE
	}
	if o.Seeds == 0 {
		o.Seeds = 2
	}
	if o.Ops == 0 {
		o.Ops = 200
	}
	if o.Footprint == 0 {
		o.Footprint = 64
	}
	if o.CachePages == 0 {
		o.CachePages = 128
	}
	if o.Backend == "" {
		o.Backend = "kdd"
	}
	return o
}

// site is one armed fault in one run: a FaultSite plus which device's
// injector it targets (disk < 0 means the SSD).
type site struct {
	dev  string
	disk int
	fs   blockdev.FaultSite
}

func (s site) String() string { return s.dev + " " + s.fs.String() }

// SeedResult is the outcome of one seed's exhaustive site sweep.
type SeedResult struct {
	Index      int
	Seed       uint64
	CrashSites int
	MediaSites int
	KillSites  int // whole-SSD fail-stop sites (cache failover + bypass proof)
	Crashes    int // crash points that actually fired and were recovered
	Violations []string
}

// Report aggregates the checker's results across seeds.
type Report struct {
	Opts    Options
	Kind    string // sweep variant shown in the table heading ("" = single-core)
	Results []SeedResult
}

// Violations flattens all violations, prefixed with their seed.
func (r *Report) Violations() []string {
	var out []string
	for _, res := range r.Results {
		for _, v := range res.Violations {
			out = append(out, fmt.Sprintf("seed %#x: %s", res.Seed, v))
		}
	}
	return out
}

// Table renders the per-seed summary plus a verdict line.
func (r *Report) Table() string {
	var b strings.Builder
	kind := r.Kind
	if kind == "" {
		kind = "exhaustive crash-point and fault-site exploration"
	}
	fmt.Fprintf(&b, "== Check: %s ==\n", kind)
	fmt.Fprintf(&b, "%4s  %-18s %7s %7s %5s %8s %6s\n", "#", "seed", "crash", "media", "kill", "crashes", "viol")
	sites, crashes, viols := 0, 0, 0
	for _, res := range r.Results {
		fmt.Fprintf(&b, "%4d  %-18s %7d %7d %5d %8d %6d\n",
			res.Index, fmt.Sprintf("%#x", res.Seed),
			res.CrashSites, res.MediaSites, res.KillSites, res.Crashes, len(res.Violations))
		sites += res.CrashSites + res.MediaSites + res.KillSites
		crashes += res.Crashes
		viols += len(res.Violations)
	}
	fmt.Fprintf(&b, "%d seeds, %d sites explored, %d crash points recovered, %d violations\n",
		len(r.Results), sites, crashes, viols)
	if viols == 0 {
		b.WriteString("PASS: every acked write survived every crash point and fault site\n")
	} else {
		b.WriteString("FAIL:\n")
		for _, v := range r.Violations() {
			fmt.Fprintf(&b, "  %s\n", v)
		}
	}
	return b.String()
}

// Run executes the checker across o.Seeds seeds. Sites within a seed fan
// out across workers; each site replay is independent, so violations come
// back as data and never abort the sweep.
func Run(o Options) *Report {
	o = o.withDefaults()
	rep := &Report{Opts: o}
	for i := 0; i < o.Seeds; i++ {
		// Same stride as the chaos harness, so its 24 schedule seeds are
		// reachable here as regression seeds.
		seed := o.Seed + uint64(i)*0x9E3779B97F4A7C15
		res := runSeed(seed, o)
		res.Index = i
		rep.Results = append(rep.Results, res)
	}
	return rep
}

// siteOutcome is one site replay's result; violations are data, not
// errors, so the fan-out never cancels early.
type siteOutcome struct {
	crashes    int
	violations []string
}

// runSeed profiles the workload fault-free, enumerates every site from
// the recorded traces, and replays the workload once per site.
func runSeed(seed uint64, o Options) SeedResult {
	res := SeedResult{Seed: seed}

	// Profile run: fault-free, recording the device-op trace on the SSD
	// and every array member. The baseline must be clean — otherwise site
	// failures would be noise on top of a broken stack.
	r := newRig(seed, o)
	r.inj.RecordOps(true)
	for i := 0; i < r.nDisks; i++ {
		r.arr.Injector(i).RecordOps(true)
	}
	r.runOps()
	r.inj.RecordOps(false)
	for i := 0; i < r.nDisks; i++ {
		r.arr.Injector(i).RecordOps(false)
	}
	// Pump activity during the profile run, captured before verify (whose
	// completion drive steps the array directly, not through the pump).
	profileSteps := int(r.kdd.Stats().RebuildSteps)
	r.verify()
	if len(r.violations) > 0 {
		for _, v := range r.violations {
			res.Violations = append(res.Violations, "baseline (no faults): "+v)
		}
		return res
	}

	// Enumerate. Crashes model whole-node power loss. The SSD injector's
	// write ordinals (log, cache frame, DEZ commits) are always crash
	// sites; in the rebuild scenario the rebuild target's member writes
	// are too — every rebuild step writes the target, so the sweep gets a
	// crash point inside the window for every step. Other members
	// contribute media sites only.
	var sites []site
	for _, fs := range blockdev.EnumerateSites(r.inj.Recorded(), seed^0x517E5) {
		if o.CrashOnly && fs.Kind != blockdev.FaultCrashTorn {
			continue
		}
		sites = append(sites, site{dev: "ssd", disk: -1, fs: fs})
	}
	if !o.CrashOnly {
		stride := o.MediaStride
		if stride < 1 {
			stride = 1
		}
		for d := 0; d < r.nDisks; d++ {
			media := 0
			for _, fs := range blockdev.EnumerateSites(r.arr.Injector(d).Recorded(), seed^uint64(d)) {
				if fs.Kind == blockdev.FaultCrashTorn {
					if !o.Rebuild || d != rebuildVictim {
						continue
					}
					// Member pages are write-atomic (the sector-atomicity
					// assumption parity RAID is built on): a power loss
					// mid-write persists nothing, unlike the SSD's torn
					// multi-page log appends.
					fs.TornPages, fs.TornBytes = 0, 0
				} else {
					media++
					if (media-1)%stride != d%stride {
						continue
					}
				}
				sites = append(sites, site{dev: fmt.Sprintf("disk%d", d), disk: d, fs: fs})
			}
		}
		// Whole-SSD fail-stop sites: strided op ordinals at which the cache
		// device dies outright. SSD only — a member fail-stop is the RAID
		// layer's rebuild problem, already covered by the chaos harness.
		for _, fs := range blockdev.EnumerateFailStopSites(r.inj.Recorded(), 8) {
			sites = append(sites, site{dev: "ssd", disk: -1, fs: fs})
		}
	}
	for _, s := range sites {
		switch s.fs.Kind {
		case blockdev.FaultCrashTorn:
			res.CrashSites++
		case blockdev.FaultFailStop:
			res.KillSites++
		default:
			res.MediaSites++
		}
	}
	if o.Rebuild {
		// The rebuild scenario's whole point is crash coverage of the
		// checkpoint/resume path: the pump must actually have stepped, and
		// the sweep must arm at least one crash point per rebuild step.
		if profileSteps == 0 {
			res.Violations = append(res.Violations,
				"profile: rebuild window never pumped a step")
		}
		if res.CrashSites < profileSteps {
			res.Violations = append(res.Violations, fmt.Sprintf(
				"only %d crash sites enumerated for %d rebuild steps",
				res.CrashSites, profileSteps))
		}
	}

	outs, _ := harness.FanOut(o.Parallel, len(sites), func(i int) (siteOutcome, error) {
		return runSite(seed, o, sites[i]), nil
	})
	for i, out := range outs {
		res.Crashes += out.crashes
		for _, v := range out.violations {
			res.Violations = append(res.Violations, fmt.Sprintf("site %s: %s", sites[i], v))
		}
	}
	return res
}

// runSite replays the seeded workload with exactly one fault armed, then
// runs the full verification chain. The workload prefix is identical to
// the profile run, so crash write-ordinals land where they were recorded.
func runSite(seed uint64, o Options, s site) siteOutcome {
	r := newRig(seed, o)
	// An SSD fail-stop inside the rebuild window is a legal double fault:
	// the deltas that died with the cache were the only way to repair
	// stale parity before reconstructing the missing member (§III-E).
	r.allowLost = o.Rebuild && s.disk < 0 && s.fs.Kind == blockdev.FaultFailStop
	if s.disk < 0 {
		r.inj.Arm(s.fs)
	} else {
		r.arr.Injector(s.disk).Arm(s.fs)
	}
	r.runOps()
	if !r.halt {
		r.verify()
		if s.fs.Kind == blockdev.FaultFailStop {
			r.verifyBypassRestore()
		}
	}
	out := siteOutcome{crashes: r.crashes, violations: r.violations}
	if s.fs.Kind == blockdev.FaultCrashTorn && r.crashes == 0 {
		out.violations = append(out.violations, "armed crash point never fired (replay diverged from profile)")
	}
	return out
}
