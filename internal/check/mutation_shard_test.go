//go:build kddbug

package check

import "testing"

// TestMutationCaughtShardBatch proves the sharded sweep can actually
// fail. The kddbug build flips one ordering edge in the metadata log's
// batched flush path: a tagged page's entries leave the NVRAM buffer
// BEFORE the page write is acked. A crash on that write ordinal then
// destroys the only durable copy of those entries — the page is torn or
// absent AND the NVRAM no longer holds them — so recovery forgets acked
// writes whose durability the batch barrier was supposed to carry.
// Exactly the bug class the interleaved-batches crash sweep exists to
// catch; if this test passes without violations, the sweep has no teeth.
func TestMutationCaughtShardBatch(t *testing.T) {
	rep := RunShard(Options{Seeds: 2, Ops: 160, Footprint: 48})
	v := rep.Violations()
	if len(v) == 0 {
		t.Fatal("kddbug mutation produced zero violations across every crash point; " +
			"the shard checker cannot detect the batch-acked-before-durable ordering bug")
	}
	t.Logf("shard checker caught the mutation (%d violations); first: %s", len(v), v[0])
}
