package check

import (
	"fmt"

	"kddcache/internal/blockdev"
	"kddcache/internal/harness"
)

// shardSweepWidths cycles the plane's execution width across seeds. In
// deterministic mode the width cannot change the device-op trace (that
// is the plane's central contract), so each seed picks one width and the
// sweep still covers every grouping the plane supports.
var shardSweepWidths = []int{1, 2, 4, 8}

// RunShard executes the sharded-plane crash sweep across o.Seeds seeds:
// a batched workload over the full plane (eight lanes, one shared
// metadata log with per-lane tagged batch flushes), profiled fault-free,
// then replayed once per SSD write ordinal with a torn-write crash point
// armed. Crashes land with several lanes' metadata batches in flight;
// recovery must demultiplex the shared log back to the lanes, twice,
// identically. Only crash sites are explored — media-fault coverage of
// the engine under each lane is the single-core sweep's job, and the
// plane disables the per-lane breakers (a shared SSD fails as a whole).
func RunShard(o Options) *Report {
	o = o.withDefaults()
	rep := &Report{Opts: o, Kind: "sharded plane, crash points with batches in flight"}
	for i := 0; i < o.Seeds; i++ {
		// Same seed stride as Run, so a violation here replays with the
		// same -seed flag.
		seed := o.Seed + uint64(i)*0x9E3779B97F4A7C15
		res := runShardSeed(seed, shardSweepWidths[i%len(shardSweepWidths)], o)
		res.Index = i
		rep.Results = append(rep.Results, res)
	}
	return rep
}

// runShardSeed profiles one seed's batched workload fault-free, then
// replays it once per enumerated crash site.
func runShardSeed(seed uint64, shards int, o Options) SeedResult {
	res := SeedResult{Seed: seed}

	r := newShardRig(seed, shards, o)
	r.inj.RecordOps(true)
	r.runOps()
	r.inj.RecordOps(false)
	r.verify()
	if len(r.violations) > 0 {
		for _, v := range r.violations {
			res.Violations = append(res.Violations, "baseline (no faults): "+v)
		}
		return res
	}

	var sites []site
	for _, fs := range blockdev.EnumerateSites(r.inj.Recorded(), seed^0x517E5) {
		if fs.Kind != blockdev.FaultCrashTorn {
			continue
		}
		sites = append(sites, site{dev: "ssd", disk: -1, fs: fs})
	}
	res.CrashSites = len(sites)

	outs, _ := harness.FanOut(o.Parallel, len(sites), func(i int) (siteOutcome, error) {
		return runShardSite(seed, shards, o, sites[i]), nil
	})
	for i, out := range outs {
		res.Crashes += out.crashes
		for _, v := range out.violations {
			res.Violations = append(res.Violations, fmt.Sprintf("site %s: %s", sites[i], v))
		}
	}
	return res
}

// runShardSite replays the seeded batched workload with one crash point
// armed, then runs the full verification chain.
func runShardSite(seed uint64, shards int, o Options, s site) siteOutcome {
	r := newShardRig(seed, shards, o)
	r.inj.Arm(s.fs)
	r.runOps()
	if !r.halt {
		r.verify()
	}
	out := siteOutcome{crashes: r.crashes, violations: r.violations}
	if r.crashes == 0 {
		out.violations = append(out.violations, "armed crash point never fired (replay diverged from profile)")
	}
	return out
}
