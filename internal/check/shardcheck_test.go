package check

import (
	"strings"
	"testing"
)

// TestShardCheckerClean sweeps every crash point of the sharded plane's
// batched workload across two seeds (execution widths 1 and 2) and
// expects zero violations: every acked write survives a crash landing
// with multiple lanes' metadata batches in flight, and every recovery
// demultiplexes the shared log identically twice.
func TestShardCheckerClean(t *testing.T) {
	rep := RunShard(Options{Seeds: 2, Ops: 120, Footprint: 48})
	if v := rep.Violations(); len(v) > 0 {
		max := len(v)
		if max > 10 {
			max = 10
		}
		t.Fatalf("shard sweep found %d violations; first %d:\n%s",
			len(v), max, strings.Join(v[:max], "\n"))
	}
	for _, res := range rep.Results {
		if res.CrashSites == 0 {
			t.Fatalf("seed %#x enumerated zero crash sites", res.Seed)
		}
		if res.Crashes < res.CrashSites {
			t.Fatalf("seed %#x: only %d of %d armed crash points fired",
				res.Seed, res.Crashes, res.CrashSites)
		}
	}
	if !strings.Contains(rep.Table(), "sharded plane") {
		t.Fatalf("report table missing the sweep kind:\n%s", rep.Table())
	}
}

// TestShardCheckerDeterministic proves the shard sweep is replayable:
// two runs with identical options render identical reports, at any
// fan-out width.
func TestShardCheckerDeterministic(t *testing.T) {
	o := Options{Seeds: 1, Ops: 96, Footprint: 32, Parallel: 1}
	a := RunShard(o)
	o.Parallel = 4
	b := RunShard(o)
	if a.Table() != b.Table() {
		t.Fatalf("shard reports diverge across fan-out widths:\n--- serial\n%s--- parallel\n%s",
			a.Table(), b.Table())
	}
}
