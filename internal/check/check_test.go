//go:build !kddbug

package check

import "testing"

// TestCheckerCIMode is the deterministic CI sweep: two seeds, every crash
// point and media-fault site enumerated from the profile trace, zero
// violations expected. It also asserts the sweep had teeth — sites were
// actually enumerated and every armed crash point actually fired.
func TestCheckerCIMode(t *testing.T) {
	o := Options{Seeds: 2, Ops: 120, Footprint: 48}
	if testing.Short() {
		// One seed and a smaller workload: the -race sweep in CI runs with
		// -short, where the full site fan-out is ~20x slower than native.
		o = Options{Seeds: 1, Ops: 80, Footprint: 32}
	}
	rep := Run(o)
	if v := rep.Violations(); len(v) > 0 {
		max := len(v)
		if max > 10 {
			max = 10
		}
		t.Fatalf("%d violations (showing %d):\n%s", len(v), max, joinLines(v[:max]))
	}
	for _, res := range rep.Results {
		if res.CrashSites == 0 {
			t.Errorf("seed %#x: no crash sites enumerated", res.Seed)
		}
		if res.MediaSites == 0 {
			t.Errorf("seed %#x: no media-fault sites enumerated", res.Seed)
		}
		if res.KillSites == 0 {
			t.Errorf("seed %#x: no whole-SSD fail-stop sites enumerated", res.Seed)
		}
		if res.Crashes != res.CrashSites {
			t.Errorf("seed %#x: %d crashes recovered but %d crash sites armed",
				res.Seed, res.Crashes, res.CrashSites)
		}
	}
}

// TestCheckerRebuildScenario sweeps every crash point and fault site
// against a stack that is rebuilding a killed member online: crash sites
// inside the rebuild window must resume from the NVRAM checkpoint (twice,
// with equal digests), and no site may cost data despite the member hole.
func TestCheckerRebuildScenario(t *testing.T) {
	o := Options{Seeds: 2, Ops: 120, Footprint: 48, Rebuild: true}
	if testing.Short() {
		// One seed, and member media sites sampled 1-in-12: the rebuild
		// touches every page of every member, so the exhaustive member
		// fault fan-out alone is ~2500 replays — far past the -race CI
		// budget. Crash sites (the checkpoint/resume coverage this
		// scenario exists for) stay exhaustive.
		o = Options{Seeds: 1, Ops: 90, Footprint: 32, Rebuild: true, MediaStride: 12}
	}
	rep := Run(o)
	if v := rep.Violations(); len(v) > 0 {
		max := len(v)
		if max > 10 {
			max = 10
		}
		t.Fatalf("%d violations (showing %d):\n%s", len(v), max, joinLines(v[:max]))
	}
	for _, res := range rep.Results {
		if res.CrashSites == 0 {
			t.Errorf("seed %#x: no crash sites enumerated", res.Seed)
		}
		if res.Crashes != res.CrashSites {
			t.Errorf("seed %#x: %d crashes recovered but %d crash sites armed",
				res.Seed, res.Crashes, res.CrashSites)
		}
	}
}

// TestCheckerDeterministic: the same options must produce the identical
// report — the replay-from-seed promise printed on failure depends on it.
func TestCheckerDeterministic(t *testing.T) {
	o := Options{Seeds: 1, Ops: 60, Footprint: 32}
	a, b := Run(o), Run(o)
	if a.Table() != b.Table() {
		t.Fatalf("reports diverge:\n--- first\n%s--- second\n%s", a.Table(), b.Table())
	}
}

func joinLines(v []string) string {
	out := ""
	for _, s := range v {
		out += "  " + s + "\n"
	}
	return out
}
