package check

import (
	"errors"
	"fmt"

	"kddcache/internal/blockdev"
	"kddcache/internal/core"
	"kddcache/internal/delta"
	"kddcache/internal/lsraid"
	"kddcache/internal/model"
	"kddcache/internal/obs"
	"kddcache/internal/raid"
	"kddcache/internal/raidiface"
	"kddcache/internal/sim"
)

// Checker stack geometry: deliberately smaller than the chaos harness so
// the per-site replay runs (hundreds per seed) stay cheap, while still
// exercising eviction, DEZ packing, cleaning, and parity maintenance.
const (
	checkDisks     = 4
	checkDiskPages = 256
	checkChunk     = 4
	checkWays      = 16
	checkMetaPages = 32

	// rebuildVictim is the member the rebuild scenario kills at Ops/3.
	rebuildVictim = 1
)

// rig is one run's stack: the real KDD+RAID-5 engine on one side, the
// reference model on the other, driven through an identical op stream.
// All rig state is built from the seed, so a run is a pure function of
// (seed, options, armed site) — replaying a violation needs only those.
type rig struct {
	o      Options
	rng    *sim.RNG
	mut    *delta.Mutator
	mdl    *model.Model
	halt   bool
	nDisks int

	members []*blockdev.NullDevice
	arr     raidiface.Array
	inj     *blockdev.FaultInjector // SSD-side injector
	cfg     core.Config
	kdd     *core.KDD
	tr      *obs.Tracer

	pendingLBA int64 // lba of the write in flight at a crash; -1 none
	crashes    int
	violations []string

	// allowLost excuses loud data loss (ErrUnrecoverable reads, LostRows
	// accounting) for sites where losing pages is the spec: a whole-SSD
	// fail-stop inside the rebuild window kills the only copy of the
	// deltas that could repair stale parity, and a stale row plus the
	// missing member exceeds even RAID-6's two-erasure budget. The loss
	// must still be LOUD — silent corruption is never excused.
	allowLost bool
}

func newRig(seed uint64, o Options) *rig {
	r := &rig{
		o:          o,
		rng:        sim.NewRNG(seed),
		mut:        delta.NewMutator(seed^0xD00D, 0.25),
		mdl:        model.New(),
		pendingLBA: -1,
	}
	// The rebuild scenario runs RAID-6 with one extra member: the armed
	// member media faults may fire INSIDE the rebuild window (one member
	// already missing), and the checker's zero-loss assertions only hold
	// if the geometry tolerates that second hole.
	r.nDisks = checkDisks
	level := raid.Level5
	if o.Rebuild {
		r.nDisks = checkDisks + 1
		level = raid.Level6
	}
	var members []blockdev.Device
	for i := 0; i < r.nDisks; i++ {
		d := blockdev.NewNullDataDevice(fmt.Sprintf("d%d", i), checkDiskPages)
		r.members = append(r.members, d)
		members = append(members, d)
	}
	var arr raidiface.Array
	switch o.Backend {
	case "", "kdd":
		a, err := raid.New(raid.Config{Level: level, ChunkPages: checkChunk}, members)
		if err != nil {
			panic(err) // static geometry; cannot fail
		}
		arr = a
	case "lsraid":
		if o.Rebuild {
			panic("check: the rebuild scenario requires the kdd backend (RAID-6 double-fault geometry)")
		}
		// 256 pages / 16 rows = 16 segments of 48 data pages; the logical
		// bound (16-2-2)*48 = 576 comfortably covers the checker footprint.
		a, err := lsraid.New(lsraid.Config{ChunkPages: checkChunk, SegRows: 16, Seed: seed}, members)
		if err != nil {
			panic(err) // static geometry; cannot fail
		}
		arr = a
	default:
		panic(fmt.Sprintf("check: unknown backend %q", o.Backend))
	}
	r.arr = arr
	if o.Rebuild {
		if err := arr.AddSpare(blockdev.NewNullDataDevice("spare", checkDiskPages)); err != nil {
			panic(err)
		}
	}
	// Trace every run: crash sites that leak spans or drive counters
	// negative are checker violations, exactly like torn writes.
	r.tr = obs.NewTracer(obs.NewDigest())
	arr.SetTracer(r.tr)
	inner := blockdev.NewNullDataDevice("ssd", checkMetaPages+o.CachePages)
	r.inj = blockdev.NewFaultInjector(inner, seed^0xFA17)
	r.cfg = core.Config{
		SSD:        r.inj,
		Backend:    arr,
		CachePages: o.CachePages,
		Ways:       checkWays,
		MetaStart:  0,
		MetaPages:  checkMetaPages,
		Codec:      delta.ZRLE{},
		Tracer:     r.tr,
	}
	k, err := core.New(r.cfg)
	if err != nil {
		panic(err)
	}
	r.kdd = k
	return r
}

func (r *rig) violf(format string, args ...any) {
	r.violations = append(r.violations, fmt.Sprintf(format, args...))
}

// lostOK reports whether err is the loud lost-page refusal and the armed
// site makes that loss legal (see allowLost).
func (r *rig) lostOK(err error) bool {
	return r.allowLost && errors.Is(err, raid.ErrUnrecoverable)
}

// anyCrashed reports whether any device's armed crash point has fired.
// Crash points model whole-node power loss, so a member's crash is the
// node's crash: the rig recovers exactly as it does for an SSD crash.
func (r *rig) anyCrashed() bool {
	if r.inj.Crashed() {
		return true
	}
	for i := 0; i < r.nDisks; i++ {
		if r.arr.Injector(i).Crashed() {
			return true
		}
	}
	return false
}

// pickLBA draws from the footprint with a hot front eighth; the draw
// count is fixed, keeping the op stream in lockstep with the profile run
// regardless of which fault site is armed.
func (r *rig) pickLBA() int64 {
	hot := r.rng.Float64() < 0.5
	n := r.rng.Uint64n(uint64(r.o.Footprint))
	if hot {
		return int64(n) / 8
	}
	return int64(n)
}

// runOps replays the seeded workload, recovering whenever the armed
// crash site fires.
func (r *rig) runOps() {
	for i := 0; i < r.o.Ops && !r.halt; i++ {
		if r.o.Rebuild && i == r.o.Ops/3 {
			// Kill a member with a hot spare parked: the pump attaches it
			// at the end of the next operation and rebuilds online under
			// the remaining workload (and under whatever site is armed).
			r.arr.FailDisk(rebuildVictim)
		}
		lba := r.pickLBA()
		if r.rng.Float64() < 0.6 {
			r.doWrite(lba)
		} else {
			r.doRead(lba)
		}
		if r.anyCrashed() {
			r.restore()
		}
	}
}

// foldRetry reports whether err is the loud stale-parity refusal, folding
// the pending deltas so the caller can retry.
func (r *rig) foldRetry(err error) bool {
	if !errors.Is(err, raid.ErrStaleParity) {
		return false
	}
	if _, cerr := r.kdd.Clean(0, true); cerr != nil {
		r.violf("fold after stale-parity refusal: %v", cerr)
		return false
	}
	return true
}

// doWrite writes the next version of lba: a mutation of the model's
// current content, or a fresh random page for first touches. Mutate and
// FillRandom consume fixed draw counts, so content generation stays
// deterministic across sites even after an old-or-new pin diverges the
// page's bytes from the profile run.
func (r *rig) doWrite(lba int64) {
	if _, ok := r.mdl.Value(lba); !ok {
		// An unresolved in-flight write should have been pinned by the
		// post-recovery read; reaching here is a checker bug.
		r.violf("write %d while the model is unresolved", lba)
		return
	}
	page := make([]byte, blockdev.PageSize)
	if v, _ := r.mdl.Value(lba); v != nil {
		copy(page, v)
		r.mut.Mutate(page)
	} else {
		r.mut.FillRandom(page)
	}
	_, err := r.kdd.Write(0, lba, page)
	if err != nil && r.foldRetry(err) {
		_, err = r.kdd.Write(0, lba, page)
	}
	if err == nil {
		r.mdl.Write(lba, page)
		return
	}
	if r.anyCrashed() {
		// The crash hit mid-write: the page may legally resolve to either
		// version, pinned at the first post-recovery read.
		r.mdl.CrashWrite(lba, page)
		r.pendingLBA = lba
		return
	}
	if r.lostOK(err) {
		return // the page was declared lost; the model keeps its old value
	}
	r.violf("write %d failed: %v", lba, err)
}

// doRead reads lba through the cache and cross-checks the model (pinning
// any in-flight write to the observed version).
func (r *rig) doRead(lba int64) {
	buf := make([]byte, blockdev.PageSize)
	_, err := r.kdd.Read(0, lba, buf)
	if err != nil && r.foldRetry(err) {
		_, err = r.kdd.Read(0, lba, buf)
	}
	if err != nil {
		if r.anyCrashed() {
			return // the crash interrupted the read; recovery handles it
		}
		if r.lostOK(err) {
			return
		}
		r.violf("read %d failed: %v", lba, err)
		return
	}
	if err := r.mdl.Check(lba, buf); err != nil {
		r.violf("read %d: %v", lba, err)
	}
}

// restore recovers from the fired crash point: snapshot the NVRAM state,
// restore TWICE from the identical snapshot and compare state digests
// (metadata-log replay must be idempotent), then pin the interrupted
// write via its first post-recovery read.
func (r *rig) restore() {
	r.crashes++
	ctr := r.kdd.Log().Counters()
	buffered := r.kdd.Log().BufferedEntries()
	staging := r.kdd.Staging()
	r.inj.ClearCrash()
	for i := 0; i < r.nDisks; i++ {
		r.arr.Injector(i).ClearCrash()
	}
	// The rebuild watermark is volatile array state: a power failure
	// wipes it, and Restore must resume from the NVRAM checkpoint alone.
	r.arr.CrashRebuildState()
	// The log-structured backend rebuilds its whole L2P map from the
	// NVRAM segment summaries on that same call: replay must be
	// idempotent and land in an invariant-clean state.
	if la, ok := r.arr.(*lsraid.Array); ok {
		d1 := la.StateDigest()
		la.CrashRebuildState()
		if d2 := la.StateDigest(); d1 != d2 {
			r.violf("lsraid replay not idempotent: %016x vs %016x", d1, d2)
		}
		if err := la.CheckInvariants(); err != nil {
			r.violf("lsraid post-replay invariants: %v", err)
		}
	}
	k1, _, err := core.Restore(r.cfg, 0, ctr, buffered, staging)
	if err != nil {
		r.violf("restore after crash: %v", err)
		r.halt = true
		return
	}
	k2, _, err := core.Restore(r.cfg, 0, ctr, buffered, staging)
	if err != nil {
		r.violf("second restore from the same NVRAM snapshot: %v", err)
		r.halt = true
		return
	}
	if d1, d2 := k1.StateDigest(), k2.StateDigest(); d1 != d2 {
		r.violf("recovery not idempotent: state digest %016x vs %016x", d1, d2)
	}
	r.kdd = k2
	if err := r.kdd.CheckInvariants(); err != nil {
		r.violf("post-restore invariants: %v", err)
	}
	r.checkObs("post-restore")
	if lba := r.pendingLBA; lba >= 0 {
		r.pendingLBA = -1
		r.doRead(lba) // pins old-or-new in the model, or flags torn content
	}
}

// verify is the post-workload integrity chain: invariants, model-checked
// cache reads over the whole footprint, flush, stale-row accounting, a
// patrol scrub, direct array reads against the model, a per-page checksum
// sweep of every store, and a degraded re-read proving parity actually
// reconstructs the data.
func (r *rig) verify() {
	if err := r.kdd.CheckInvariants(); err != nil {
		r.violf("invariants: %v", err)
	}
	if la, ok := r.arr.(*lsraid.Array); ok {
		if err := la.CheckInvariants(); err != nil {
			r.violf("lsraid invariants: %v", err)
		}
	}
	// Drive any in-flight rebuild to completion: the checks below (flush,
	// scrub, content sweep, degraded proof) all assume full redundancy.
	for r.arr.RebuildActive() {
		_, _, complete, err := r.arr.RebuildStep(0, 64)
		if err != nil {
			r.violf("rebuild step during verify: %v", err)
			break
		}
		if complete {
			break
		}
	}
	if r.o.Rebuild && !r.allowLost {
		if lost := r.arr.LostRows(); len(lost) > 0 {
			r.violf("rebuild window lost rows %v despite double-fault tolerance", lost)
		}
	}
	for lba := int64(0); lba < r.o.Footprint; lba++ {
		r.doRead(lba)
	}
	if _, err := r.kdd.Flush(0); err != nil {
		r.violf("flush: %v", err)
		return
	}
	if n := r.arr.StaleRows(); n != 0 {
		r.violf("%d stale rows after flush", n)
	}
	if err := r.kdd.CheckInvariants(); err != nil {
		r.violf("post-flush invariants: %v", err)
	}
	_, rep, err := r.arr.Scrub(0)
	if err != nil {
		r.violf("scrub: %v", err)
		return
	}
	if len(rep.Unrecoverable) > 0 && !r.allowLost {
		r.violf("scrub reported unrecoverable rows %v", rep.Unrecoverable)
	}
	zero := make([]byte, blockdev.PageSize)
	buf := make([]byte, blockdev.PageSize)
	for lba := int64(0); lba < r.o.Footprint; lba++ {
		want, ok := r.mdl.Value(lba)
		if !ok {
			r.violf("page %d still unresolved at verify", lba)
			continue
		}
		if want == nil {
			want = zero
		}
		if _, err := r.arr.ReadPages(0, lba, 1, buf); err != nil {
			if r.lostOK(err) {
				continue
			}
			r.violf("array read %d: %v", lba, err)
			continue
		}
		if !bytesEqual(buf, want) {
			r.violf("array content mismatch at %d", lba)
		}
	}
	r.sweepChecksums()
	if !r.arr.Healthy() {
		return
	}
	// Degraded proof: drop one member and re-read the footprint through
	// reconstruction; wrong parity anywhere shows up as a mismatch.
	r.arr.FailDisk(r.rng.Intn(r.nDisks))
	for lba := int64(0); lba < r.o.Footprint; lba++ {
		want, _ := r.mdl.Value(lba)
		if want == nil {
			want = zero
		}
		if _, err := r.arr.ReadPages(0, lba, 1, buf); err != nil {
			if r.lostOK(err) {
				continue
			}
			r.violf("degraded read %d: %v", lba, err)
			continue
		}
		if !bytesEqual(buf, want) {
			r.violf("degraded reconstruction mismatch at %d", lba)
		}
	}
}

// verifyBypassRestore proves recovery is safe and idempotent while the
// cache device is dead. Entering pass-through re-initialised the metadata
// log to empty (NVRAM counters only — no device I/O), so Restore from the
// NVRAM snapshot must come up as a fresh empty cache without touching the
// failed SSD, twice, with identical state digests, and a read through the
// restored instance must still be served from the RAID.
func (r *rig) verifyBypassRestore() {
	if r.kdd.Health() != core.HealthBypass {
		return
	}
	ctr := r.kdd.Log().Counters()
	buffered := r.kdd.Log().BufferedEntries()
	staging := r.kdd.Staging()
	k1, _, err := core.Restore(r.cfg, 0, ctr, buffered, staging)
	if err != nil {
		r.violf("restore with dead ssd: %v", err)
		return
	}
	k2, _, err := core.Restore(r.cfg, 0, ctr, buffered, staging)
	if err != nil {
		r.violf("second restore with dead ssd: %v", err)
		return
	}
	if d1, d2 := k1.StateDigest(), k2.StateDigest(); d1 != d2 {
		r.violf("dead-ssd recovery not idempotent: state digest %016x vs %016x", d1, d2)
	}
	buf := make([]byte, blockdev.PageSize)
	if _, err := k2.Read(0, 0, buf); err != nil {
		if !r.lostOK(err) {
			r.violf("read through dead-ssd-restored instance: %v", err)
		}
	} else if err := r.mdl.Check(0, buf); err != nil {
		r.violf("dead-ssd-restored read 0: %v", err)
	}
	prev := r.kdd
	r.kdd = k2
	r.checkObs("dead-ssd restore")
	r.kdd = prev
}

// checkObs asserts the observability layer survived whatever just
// happened: no span may be leaked open, the tracer recorded no structural
// error, and a metrics snapshot of the current instance must validate
// (no negative counters, no NaN gauges).
func (r *rig) checkObs(when string) {
	if n := r.tr.OpenSpans(); n != 0 {
		r.violf("%s: %d spans leaked open", when, n)
	}
	if err := r.tr.Err(); err != nil {
		r.violf("%s: trace integrity: %v", when, err)
	}
	reg := obs.NewRegistry()
	r.kdd.PublishMetrics(reg)
	obs.PublishCacheStats(reg, r.kdd.Stats())
	r.arr.PublishMetrics(reg)
	if err := reg.Validate(); err != nil {
		r.violf("%s: metrics registry: %v", when, err)
	}
}

// sweepChecksums verifies every page checksum on every store: corruption
// a fault left behind must never sit undetected on a medium.
func (r *rig) sweepChecksums() {
	if st := r.inj.Store(); st != nil {
		for p := int64(0); p < checkMetaPages+r.o.CachePages; p++ {
			if !st.VerifyPage(p) {
				r.violf("ssd checksum mismatch at page %d", p)
			}
		}
	}
	// Sweep through the injectors, not r.members: a spare attach swaps the
	// medium behind member rebuildVictim's injector, and it is the medium
	// actually serving reads that must checksum.
	for i := 0; i < r.nDisks; i++ {
		st := r.arr.Injector(i).Store()
		if st == nil {
			continue
		}
		for p := int64(0); p < checkDiskPages; p++ {
			if !st.VerifyPage(p) {
				r.violf("disk %d checksum mismatch at page %d", i, p)
			}
		}
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
