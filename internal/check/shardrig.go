package check

import (
	"errors"
	"fmt"

	"kddcache/internal/blockdev"
	"kddcache/internal/delta"
	"kddcache/internal/model"
	"kddcache/internal/nvram"
	"kddcache/internal/raid"
	"kddcache/internal/raidiface"
	"kddcache/internal/shard"
	"kddcache/internal/sim"
)

// Sharded-plane checker geometry. The plane fixes shard.Lanes state
// partitions over one shared SSD and one shared metadata log, so the
// cache splits into per-lane slices; the numbers keep every lane big
// enough to evict and clean while the per-site replays stay cheap.
const (
	shardCheckDisks     = 5 // level 5: 4 data + distributed parity
	shardCheckDiskPages = 512
	shardCheckChunk     = 4
	shardCheckWays      = 8
	shardCheckMetaPages = 32
	shardCheckCache     = 128 // 16 pages per lane

	// shardCheckBatch is the plane batch size: big enough that several
	// lanes hold buffered metadata entries when a crash fires mid-batch —
	// the interleaved-batches-in-flight state the sharded sweep exists to
	// crash into.
	shardCheckBatch = 16
)

// shardRig drives one sharded-plane run against the reference model.
// The plane runs in DETERMINISTIC mode: site replays must reproduce the
// profile run's SSD write ordinals exactly, and only the single-stepped
// scheduler makes the device-op trace a pure function of the op stream.
// (Goroutine-mode correctness is proven separately by the plane's own
// race battery; crash-site exploration needs replay fidelity.)
type shardRig struct {
	o      Options
	shards int
	rng    *sim.RNG
	mut    *delta.Mutator
	mdl    *model.Model
	halt   bool

	arr raidiface.Array
	inj *blockdev.FaultInjector
	cfg shard.Config
	p   *shard.Plane

	// pending lists LBAs whose writes were in flight at the crash, in op
	// order; each is pinned old-or-new by its first post-recovery read.
	pending []int64

	crashes    int
	violations []string
}

// plannedOp is one generated batch operation with its oracle content.
type plannedOp struct {
	write   bool
	lba     int64
	content []byte // planned payload for writes
}

func newShardRig(seed uint64, shards int, o Options) *shardRig {
	r := &shardRig{
		o:      o,
		shards: shards,
		rng:    sim.NewRNG(seed),
		mut:    delta.NewMutator(seed^0xD00D, 0.25),
		mdl:    model.New(),
	}
	var members []blockdev.Device
	for i := 0; i < shardCheckDisks; i++ {
		members = append(members, blockdev.NewNullDataDevice(fmt.Sprintf("d%d", i), shardCheckDiskPages))
	}
	arr, err := raid.New(raid.Config{Level: raid.Level5, ChunkPages: shardCheckChunk}, members)
	if err != nil {
		panic(err) // static geometry; cannot fail
	}
	r.arr = arr
	inner := blockdev.NewNullDataDevice("ssd", shardCheckMetaPages+shardCheckCache)
	r.inj = blockdev.NewFaultInjector(inner, seed^0xFA17)
	r.cfg = shard.Config{
		SSD:        r.inj,
		Backend:    arr,
		CachePages: shardCheckCache,
		Ways:       shardCheckWays,
		MetaStart:  0,
		MetaPages:  shardCheckMetaPages,
		Codec:      func(int) delta.Codec { return delta.ZRLE{} },
		Shards:     shards,
		// Deterministic mode (Goroutines false): see the type comment.
		// Coalescing off: a dropped-then-crashed write pair would need a
		// three-valued old-or-new pin, which the model (correctly) rejects.
		Coalesce: false,
	}
	p, err := shard.New(r.cfg)
	if err != nil {
		panic(err)
	}
	r.p = p
	return r
}

func (r *shardRig) violf(format string, args ...any) {
	r.violations = append(r.violations, fmt.Sprintf(format, args...))
}

// pickLBA mirrors the single-core rig's hot-front draw (fixed RNG cost
// per call, so the op stream replays in lockstep at every site).
func (r *shardRig) pickLBA() int64 {
	hot := r.rng.Float64() < 0.5
	n := r.rng.Uint64n(uint64(r.o.Footprint))
	if hot {
		return int64(n) / 8
	}
	return int64(n)
}

// planBatch generates the next batch. Content chains batch-locally: a
// second write to an LBA in the same batch mutates the first's planned
// payload, exactly what the device will hold if both execute.
func (r *shardRig) planBatch() []plannedOp {
	local := make(map[int64][]byte)
	ops := make([]plannedOp, 0, shardCheckBatch)
	for i := 0; i < shardCheckBatch; i++ {
		lba := r.pickLBA()
		if r.rng.Float64() < 0.6 {
			base, ok := local[lba]
			if !ok {
				base, _ = r.mdl.Value(lba)
			}
			page := make([]byte, blockdev.PageSize)
			if base != nil {
				copy(page, base)
				r.mut.Mutate(page)
			} else {
				r.mut.FillRandom(page)
			}
			local[lba] = page
			ops = append(ops, plannedOp{write: true, lba: lba, content: page})
		} else {
			ops = append(ops, plannedOp{write: false, lba: lba})
		}
	}
	return ops
}

// runBatch executes one planned batch on the plane and reconciles every
// result with the model in op order, then recovers if the armed crash
// point fired mid-batch.
func (r *shardRig) runBatch(plan []plannedOp) {
	ops := make([]shard.Op, len(plan))
	for i, po := range plan {
		if po.write {
			ops[i] = shard.Op{Kind: shard.OpWrite, LBA: po.lba, Buf: po.content}
		} else {
			ops[i] = shard.Op{Kind: shard.OpRead, LBA: po.lba, Buf: make([]byte, blockdev.PageSize)}
		}
	}
	res := r.p.RunBatch(0, ops)
	crashed := r.inj.Crashed()
	for i, po := range plan {
		err := res[i].Err
		if errors.Is(err, shard.ErrStopped) {
			// Refused after the plane fail-stopped: the op never started
			// and never reached NVRAM — the model keeps its value.
			continue
		}
		if po.write {
			if err == nil {
				r.mdl.Write(po.lba, po.content)
				continue
			}
			if !crashed {
				r.violf("write %d failed: %v", po.lba, err)
				continue
			}
			// The single op in flight when the power failed: old-or-new,
			// pinned at its first post-recovery read.
			r.mdl.CrashWrite(po.lba, po.content)
			r.pending = append(r.pending, po.lba)
			continue
		}
		if err != nil {
			if !crashed {
				r.violf("read %d failed: %v", po.lba, err)
			}
			continue
		}
		if err := r.mdl.Check(po.lba, ops[i].Buf); err != nil {
			r.violf("read %d: %v", po.lba, err)
		}
	}
	if crashed {
		r.restore()
	}
}

// runOps replays the seeded batched workload.
func (r *shardRig) runOps() {
	batches := r.o.Ops / shardCheckBatch
	if batches < 1 {
		batches = 1
	}
	for b := 0; b < batches && !r.halt; b++ {
		r.runBatch(r.planBatch())
	}
}

// restore recovers the plane from the fired crash point: snapshot the
// NVRAM state (log counters, buffered entries, all the lanes' staging
// buffers), rebuild TWICE from the identical snapshot, and compare the
// plane digest and every per-lane digest — the shared log's
// interleaving-tolerant replay and its per-lane demultiplexing must both
// be idempotent. Then pin every in-flight write via its first
// post-recovery read.
func (r *shardRig) restore() {
	r.crashes++
	ctr := r.p.Log().Counters()
	buffered := r.p.Log().BufferedEntries()
	var stagings [shard.Lanes]*nvram.Staging
	for i := 0; i < shard.Lanes; i++ {
		stagings[i] = r.p.Lane(i).Staging()
	}
	r.inj.ClearCrash()
	p1, _, err := shard.Restore(r.cfg, 0, ctr, buffered, stagings)
	if err != nil {
		r.violf("restore after crash: %v", err)
		r.halt = true
		return
	}
	p2, _, err := shard.Restore(r.cfg, 0, ctr, buffered, stagings)
	if err != nil {
		r.violf("second restore from the same NVRAM snapshot: %v", err)
		r.halt = true
		return
	}
	if d1, d2 := p1.StateDigest(), p2.StateDigest(); d1 != d2 {
		r.violf("recovery not idempotent: plane digest %016x vs %016x", d1, d2)
	}
	for i := 0; i < shard.Lanes; i++ {
		if d1, d2 := p1.Lane(i).StateDigest(), p2.Lane(i).StateDigest(); d1 != d2 {
			r.violf("recovery not idempotent at lane %d: %016x vs %016x", i, d1, d2)
		}
	}
	r.p.Close()
	p1.Close()
	r.p = p2
	if err := r.p.CheckInvariants(); err != nil {
		r.violf("post-restore invariants: %v", err)
	}
	pins, seen := r.pending, make(map[int64]bool)
	r.pending = nil
	for _, lba := range pins {
		if seen[lba] {
			continue
		}
		seen[lba] = true
		buf := make([]byte, blockdev.PageSize)
		if _, err := r.p.Read(0, lba, buf); err != nil {
			r.violf("pin read %d after restore: %v", lba, err)
			continue
		}
		if err := r.mdl.Check(lba, buf); err != nil {
			r.violf("pin read %d: %v", lba, err)
		}
	}
}

// verify is the post-workload integrity chain: quiesce (lane flushes plus
// the final metadata barrier), invariants, a model-checked read of the
// whole footprint through the plane, stale-row accounting, direct array
// reads against the model, and a checksum sweep of every store.
func (r *shardRig) verify() {
	if r.inj.Crashed() {
		r.violf("armed crash point fired outside the workload (replay diverged from profile)")
		return
	}
	if _, err := r.p.Quiesce(0); err != nil {
		r.violf("quiesce: %v", err)
		return
	}
	if err := r.p.CheckInvariants(); err != nil {
		r.violf("invariants: %v", err)
	}
	buf := make([]byte, blockdev.PageSize)
	for lba := int64(0); lba < r.o.Footprint; lba++ {
		if _, err := r.p.Read(0, lba, buf); err != nil {
			r.violf("read %d: %v", lba, err)
			continue
		}
		if err := r.mdl.Check(lba, buf); err != nil {
			r.violf("read %d: %v", lba, err)
		}
	}
	if n := r.arr.StaleRows(); n != 0 {
		r.violf("%d stale rows after quiesce", n)
	}
	zero := make([]byte, blockdev.PageSize)
	for lba := int64(0); lba < r.o.Footprint; lba++ {
		want, ok := r.mdl.Value(lba)
		if !ok {
			r.violf("page %d still unresolved at verify", lba)
			continue
		}
		if want == nil {
			want = zero
		}
		if _, err := r.arr.ReadPages(0, lba, 1, buf); err != nil {
			r.violf("array read %d: %v", lba, err)
			continue
		}
		if !bytesEqual(buf, want) {
			r.violf("array content mismatch at %d", lba)
		}
	}
	r.sweepChecksums()
}

// sweepChecksums verifies every page checksum on the SSD and each member.
func (r *shardRig) sweepChecksums() {
	if st := r.inj.Store(); st != nil {
		for p := int64(0); p < shardCheckMetaPages+shardCheckCache; p++ {
			if !st.VerifyPage(p) {
				r.violf("ssd checksum mismatch at page %d", p)
			}
		}
	}
	for i := 0; i < shardCheckDisks; i++ {
		st := r.arr.Injector(i).Store()
		if st == nil {
			continue
		}
		for p := int64(0); p < shardCheckDiskPages; p++ {
			if !st.VerifyPage(p) {
				r.violf("disk %d checksum mismatch at page %d", i, p)
			}
		}
	}
}
