package lsraid

import (
	"kddcache/internal/blockdev"
	"kddcache/internal/sim"
)

// gcCopyHook, when non-nil (white-box tests only), observes every live
// page the collector copies forward.
var gcCopyHook func(lba int64, data []byte)

// gc reclaims segments until the free count clears the reserve. Victim
// selection is greedy (most dead pages) or cost-benefit ((1-u)/(1+u)
// weighted by age); live pages are copied forward through the normal
// staging path, so they re-enter the log with fresh parity and the old
// segment drops to zero live pages.
func (a *Array) gc(t sim.Time) (sim.Time, error) {
	a.inGC = true
	defer func() { a.inGC = false }()
	done := t
	for a.freeCount <= int64(a.cfg.ReserveSegs) {
		v := a.pickVictim()
		if v < 0 {
			break // nothing reclaimable; the logical-capacity bound keeps this unreachable under load
		}
		c, err := a.collect(t, v)
		if err != nil {
			return done, err
		}
		done = sim.MaxTime(done, c)
		t = c
	}
	return done, nil
}

// pickVictim chooses the next segment to collect: committed, full, not
// open, with at least one dead page.
func (a *Array) pickVictim() int {
	best, bestScore := -1, 0.0
	for s := int64(0); s < a.numSegs; s++ {
		m := &a.segs[s]
		if m.Seq == 0 || int32(s) == a.open || m.Rows < a.cfg.SegRows {
			continue
		}
		dead := a.segPages - int64(a.live[s])
		if dead <= 0 {
			continue
		}
		var score float64
		if a.cfg.Policy == GCCostBenefit {
			u := float64(a.live[s]) / float64(a.segPages)
			age := float64(a.nextSeq - m.Seq + 1)
			score = (1 - u) / (1 + u) * age
		} else {
			score = float64(dead)
		}
		if best < 0 || score > bestScore {
			best, bestScore = int(s), score
		}
	}
	return best
}

// collect copies the victim's live pages forward and frees it. A page is
// live iff the L2P map still names this exact slot as the authoritative
// copy and no newer version sits staged in NVRAM.
func (a *Array) collect(t sim.Time, v int) (sim.Time, error) {
	m := &a.segs[v]
	done := t
	var buf []byte
	if a.dataMode {
		buf = blockdev.GetPage()
		defer blockdev.PutPage(buf)
	}
	for idx, lba := range m.LBAs {
		ph := phys{seg: int32(v), idx: int32(idx)}
		if cur, ok := a.l2p[lba]; !ok || cur != ph {
			continue // dead: overwritten by a later committed copy
		}
		if _, pend := a.pendingIdx[lba]; pend {
			continue // dead: shadowed by a staged newer version
		}
		c, err := a.readPhysInto(t, lba, ph, buf)
		if err != nil {
			return done, err
		}
		done = sim.MaxTime(done, c)
		t = c
		a.stats.GCCopies++
		if gcCopyHook != nil {
			gcCopyHook(lba, buf)
		}
		c, err = a.writePage(t, lba, buf)
		if err != nil {
			return done, err
		}
		done = sim.MaxTime(done, c)
		t = c
	}
	// Free the victim. Mapping entries still naming it belong to pages
	// whose newer version sits staged in NVRAM (copy-forward stages but
	// the row has not committed yet): drop them — reads resolve
	// NVRAM-first and the commit will re-add the mapping.
	for idx, lba := range m.LBAs {
		if cur, ok := a.l2p[lba]; ok && cur == (phys{seg: int32(v), idx: int32(idx)}) {
			if _, pend := a.pendingIdx[lba]; pend {
				delete(a.l2p, lba)
			}
		}
	}
	m.Seq, m.Rows, m.LBAs = 0, 0, m.LBAs[:0]
	a.live[v] = 0
	a.freeCount++
	a.stats.GCSegments++
	if a.open == int32(v) {
		a.open = -1
	}
	return done, nil
}
