// Package lsraid is the log-structured array engine behind the
// raidiface.Array seam: the modern answer to the small-write problem the
// paper's KDD cache attacks with delayed parity. Instead of updating
// parity in place (read-modify-write, or KDD's delta-deferred variant),
// every write is staged into an NVRAM row buffer and flushed as a full
// stripe append into the open segment — data pages plus freshly computed
// parity, no parity reads ever. Overwrites simply make the old physical
// page dead; a segment garbage collector copies surviving pages forward
// and reclaims dead segments (greedy or cost-benefit victim selection,
// after LFS/RAID-on-ZNS practice, arxiv 2402.17963).
//
// Durability model, matching the repo's NVRAM conventions: the segment
// summaries, the L2P-relevant metadata, and the staged row buffer live in
// battery-backed NVRAM (plain fields on the same instance the rig keeps
// across a simulated power loss). The derived lookup state — the L2P map,
// per-segment live counts, the free list — is volatile and is rebuilt by
// replaying the summaries when CrashRebuildState fires, exactly where the
// parity engine forgets its rebuild watermark.
//
// Crash ordering: a row flush writes member data pages, then parity, and
// only then commits the NVRAM metadata (summary append + mapping flip +
// row buffer clear). A crash anywhere mid-flush leaves the metadata
// pointing at the old copies while the staged pages still sit in NVRAM,
// so reads resolve to the new values (served NVRAM-first) and the next
// flush rewrites the same physical row from scratch. Torn member pages
// can only exist in row slots the metadata never referenced.
package lsraid

import (
	"errors"
	"fmt"
	"sort"

	"kddcache/internal/blockdev"
	"kddcache/internal/obs"
	"kddcache/internal/raid"
	"kddcache/internal/raidiface"
	"kddcache/internal/sim"
)

// Errors specific to the log-structured engine. Array-level conditions
// shared with the parity engine (too many failures, unrecoverable pages,
// bad geometry) reuse the internal/raid taxonomy so callers' errors.Is
// checks work unchanged across backends.
var (
	// ErrNoSpace means the log ran out of free segments and GC could not
	// reclaim any: the logical capacity bound was violated (a bug — New
	// enforces enough over-provisioning for GC to always make progress).
	ErrNoSpace = errors.New("lsraid: no free segments (over-provisioning exhausted)")
)

// GCPolicy selects the segment-GC victim heuristic.
type GCPolicy int

const (
	// GCGreedy picks the segment with the most dead pages.
	GCGreedy GCPolicy = iota
	// GCCostBenefit weighs reclaimable space against copy cost and age,
	// (1-u)/(1+u) * age, preferring cold mostly-dead segments (LFS §3.2).
	GCCostBenefit
)

// Config sizes the log-structured array.
type Config struct {
	// ChunkPages is the logical chunk size used for the stripe-geometry
	// surface (StripePages, RowPeers, StripeOf). The cache layers align
	// sets and delta batches to it; it does not constrain the physical
	// log layout. Default 4.
	ChunkPages int64
	// SegRows is the number of member rows per segment. Default 32.
	SegRows int64
	// LogicalPages is the exported capacity. It must leave enough
	// physical headroom for GC to always find a victim with dead pages:
	// at most (segments - reserve - 2) * segment data pages. Default is
	// 3/4 of the physical data capacity, clamped to that bound.
	LogicalPages int64
	// ReserveSegs is the free-segment low watermark that triggers GC
	// (and the headroom copy-forward may consume mid-collection).
	// Default 2.
	ReserveSegs int
	// Policy selects the GC victim heuristic. Default GCGreedy.
	Policy GCPolicy
	// Seed seeds the member fault injectors.
	Seed uint64
}

// phys is a physical page address: a committed slot in a segment.
// idx = rowInSeg*(disks-1) + slot, in summary order.
type phys struct {
	seg int32
	idx int32
}

// segMeta is one segment's NVRAM summary: its allocation sequence number
// (0 = free), how many rows are committed, and the logical LBA of every
// committed data page in write order. It is what replay rebuilds the L2P
// map from, and what the binary summary codec (summary.go) serialises.
type segMeta struct {
	Seq  uint64
	Rows int64
	LBAs []int64
}

// pending is one staged page in the NVRAM row buffer.
type pending struct {
	lba  int64
	data []byte // nil in timing mode
}

// Array is a log-structured parity array over member block devices. It
// satisfies raidiface.Array and cache.Backend.
type Array struct {
	cfg       Config
	disks     []*blockdev.FaultInjector
	diskPages int64 // member capacity in pages
	segPages  int64 // data pages per segment: SegRows * (disks-1)
	numSegs   int64
	logical   int64
	dataMode  bool

	// NVRAM-durable state (survives CrashRebuildState).
	nextSeq uint64
	segs    []segMeta
	open    int32 // open segment index; -1 when none
	rowBuf  []pending

	// Volatile state, rebuilt by replay().
	l2p        map[int64]phys
	live       []int32
	freeCount  int64
	pendingIdx map[int64]int

	// Fault and rebuild state (mirrors internal/raid semantics).
	failed  int
	rebuild *rebuildState
	spares  []blockdev.Device
	lost    map[int64]bool // logical pages declared unrecoverable

	inGC  bool
	stats raid.Stats
	tr    *obs.Tracer
}

// New builds a log-structured array over the member devices, wrapping
// each in a fault injector exactly like raid.New.
func New(cfg Config, members []blockdev.Device) (*Array, error) {
	n := len(members)
	if n < 3 {
		return nil, fmt.Errorf("%w: log-structured RAID needs >=3 disks", raid.ErrBadGeometry)
	}
	if cfg.ChunkPages <= 0 {
		cfg.ChunkPages = 4
	}
	if cfg.SegRows <= 0 {
		cfg.SegRows = 32
	}
	if cfg.ReserveSegs <= 0 {
		cfg.ReserveSegs = 2
	}
	pages := members[0].Pages()
	for _, m := range members[1:] {
		if m.Pages() != pages {
			return nil, fmt.Errorf("%w: member sizes differ", raid.ErrBadGeometry)
		}
	}
	numSegs := pages / cfg.SegRows
	segPages := cfg.SegRows * int64(n-1)
	maxLogical := (numSegs - int64(cfg.ReserveSegs) - 2) * segPages
	if maxLogical <= 0 {
		return nil, fmt.Errorf("%w: %d segments of %d rows leave no logical capacity", raid.ErrBadGeometry, numSegs, cfg.SegRows)
	}
	if cfg.LogicalPages == 0 {
		cfg.LogicalPages = numSegs * segPages * 3 / 4
	}
	if cfg.LogicalPages > maxLogical {
		cfg.LogicalPages = maxLogical
	}
	a := &Array{
		cfg:        cfg,
		diskPages:  pages,
		segPages:   segPages,
		numSegs:    numSegs,
		logical:    cfg.LogicalPages,
		segs:       make([]segMeta, numSegs),
		open:       -1,
		l2p:        make(map[int64]phys),
		live:       make([]int32, numSegs),
		freeCount:  numSegs,
		pendingIdx: make(map[int64]int),
		lost:       make(map[int64]bool),
	}
	for i, m := range members {
		a.disks = append(a.disks, blockdev.NewFaultInjector(m, cfg.Seed^uint64(i)))
	}
	if s, ok := members[0].(blockdev.Storer); ok {
		a.dataMode = s.Store() != nil
	}
	return a, nil
}

// --- identity and geometry ---------------------------------------------

// Name returns the engine name shown in traces and tables.
func (a *Array) Name() string { return "lsraid" }

// Pages returns the logical capacity.
func (a *Array) Pages() int64 { return a.logical }

// Disks returns the member count.
func (a *Array) Disks() int { return len(a.disks) }

// ChunkPages returns the logical chunk size.
func (a *Array) ChunkPages() int64 { return a.cfg.ChunkPages }

// StripePages returns logical pages per stripe. The arithmetic matches a
// parity array of the same width, so cache-set alignment, delta batching
// and the differential battery's digests line up across backends.
func (a *Array) StripePages() int64 { return a.cfg.ChunkPages * int64(len(a.disks)-1) }

// StripeOf returns the stripe number holding the logical page.
func (a *Array) StripeOf(lba int64) int64 { return lba / a.StripePages() }

// RowPeers returns the logical LBAs sharing a parity row with lba in the
// logical geometry (one page per data chunk at the same chunk offset),
// in data-chunk order — same arithmetic as the parity engine.
func (a *Array) RowPeers(lba int64) []int64 {
	sp := a.StripePages()
	stripe, within := lba/sp, lba%sp
	pic := within % a.cfg.ChunkPages
	dc := len(a.disks) - 1
	peers := make([]int64, 0, dc)
	for i := 0; i < dc; i++ {
		peers = append(peers, stripe*sp+int64(i)*a.cfg.ChunkPages+pic)
	}
	return peers
}

// DataLocation returns where lba's data currently lives: the member disk
// and member-local page of its most recent committed copy. A page still
// staged in NVRAM (or never written) has no physical home; (-1, -1) says
// so, and fault-aiming tooling must skip it.
func (a *Array) DataLocation(lba int64) (disk int, page int64) {
	if _, ok := a.pendingIdx[lba]; ok {
		return -1, -1
	}
	ph, ok := a.l2p[lba]
	if !ok {
		return -1, -1
	}
	row, slot := a.physRowSlot(ph)
	return a.dataDisk(row, slot), row
}

// ParityLocation returns the member holding the parity of lba's current
// physical row (qDisk is always -1: single parity). Like DataLocation it
// reports -1 for pages with no committed physical home.
func (a *Array) ParityLocation(lba int64) (pDisk, qDisk int, page int64) {
	ph, ok := a.l2p[lba]
	if !ok {
		return -1, -1, -1
	}
	row, _ := a.physRowSlot(ph)
	return a.parityDisk(row), -1, row
}

// Member returns member i's inner device.
func (a *Array) Member(i int) blockdev.Device { return a.disks[i].Inner() }

// Injector returns member i's fault injector.
func (a *Array) Injector(i int) *blockdev.FaultInjector { return a.disks[i] }

// SetTracer attaches the observability tracer.
func (a *Array) SetTracer(tr *obs.Tracer) { a.tr = tr }

// Stats returns the member-I/O accounting.
func (a *Array) Stats() raid.Stats { return a.stats }

// --- physical layout ----------------------------------------------------

// parityDisk returns the member holding row's parity page (rotated per
// row so parity writes spread over all members, RAID-5 style).
func (a *Array) parityDisk(row int64) int {
	n := len(a.disks)
	return n - 1 - int(row%int64(n))
}

// dataDisk returns the member holding data slot k of row.
func (a *Array) dataDisk(row int64, k int) int {
	n := len(a.disks)
	return (a.parityDisk(row) + 1 + k) % n
}

// physRowSlot converts a phys address to (member row, data slot).
func (a *Array) physRowSlot(ph phys) (row int64, slot int) {
	dc := int64(len(a.disks) - 1)
	rowInSeg := int64(ph.idx) / dc
	return int64(ph.seg)*a.cfg.SegRows + rowInSeg, int(int64(ph.idx) % dc)
}

// segRowCommitted reports whether member row falls inside the committed
// prefix of an allocated segment — i.e. whether its contents are
// meaningful. Uncommitted rows may hold torn garbage from interrupted
// flushes; nothing references them.
func (a *Array) segRowCommitted(row int64) bool {
	seg := row / a.cfg.SegRows
	if seg >= a.numSegs {
		return false
	}
	m := &a.segs[seg]
	return m.Seq != 0 && row%a.cfg.SegRows < m.Rows
}

// --- health and failure -------------------------------------------------

// FailDisk marks member i failed, mirroring the parity engine's
// semantics: failing an active rebuild's target abandons the rebuild.
func (a *Array) FailDisk(i int) {
	if !a.disks[i].Failed() {
		a.disks[i].Fail()
		a.failed++
		if a.rebuild != nil && a.rebuild.disk == i {
			a.rebuild = nil
			a.stats.RebuildsAborted++
		}
	}
}

// noteFailed folds a device-discovered fail-stop (ErrFailed surfacing
// from member I/O) into the array state.
func (a *Array) noteFailed(i int) {
	if !a.disks[i].Failed() {
		a.disks[i].Fail()
	}
	failed := 0
	for _, d := range a.disks {
		if d.Failed() {
			failed++
		}
	}
	if failed != a.failed {
		a.failed = failed
		if a.rebuild != nil && a.disks[a.rebuild.disk].Failed() {
			a.rebuild = nil
			a.stats.RebuildsAborted++
		}
	}
}

// FailedDisks returns the indices of failed members.
func (a *Array) FailedDisks() []int {
	var out []int
	for i, d := range a.disks {
		if d.Failed() {
			out = append(out, i)
		}
	}
	return out
}

// Healthy reports full redundancy: no member failed, no rebuild open.
func (a *Array) Healthy() bool { return a.failed == 0 && a.rebuild == nil }

// Survivable reports whether current failures are within the single-
// parity tolerance.
func (a *Array) Survivable() bool { return a.failed <= 1 }

// LostRows returns the logical pages declared unrecoverable, sorted.
// (The parity engine reports member rows; here the log's physical rows
// move under GC, so the stable name for a loss is the logical page.)
func (a *Array) LostRows() []int64 {
	rows := make([]int64, 0, len(a.lost))
	for r := range a.lost {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
	return rows
}

// missing reports whether member disk's page at row must be treated as
// absent: failed outright, or above an active rebuild's watermark.
func (a *Array) missing(disk int, row int64) bool {
	if a.disks[disk].Failed() {
		return true
	}
	return a.rebuild != nil && a.rebuild.disk == disk && row >= a.rebuild.next
}

// --- parity-protocol surface (no-ops: the log never owes parity) --------

// StaleRows is always zero: every committed row was written whole with
// fresh parity, and uncommitted rows are unreferenced.
func (a *Array) StaleRows() int { return 0 }

// ParityUpdateDelta is a no-op: WriteNoParity already wrote full stripes
// with parity, so there is no debt for the cleaner to repay.
func (a *Array) ParityUpdateDelta(t sim.Time, lbas []int64, deltas [][]byte) (sim.Time, error) {
	return t, nil
}

// ParityUpdateDeltaBatch is a no-op (see ParityUpdateDelta).
func (a *Array) ParityUpdateDeltaBatch(t sim.Time, fixes []raid.RowFix) (sim.Time, error) {
	return t, nil
}

// ParityUpdateReconstruct is a no-op (see ParityUpdateDelta).
func (a *Array) ParityUpdateReconstruct(t sim.Time, lba int64, rowData [][]byte) (sim.Time, error) {
	return t, nil
}

// ResyncRow is a no-op: parity is never stale.
func (a *Array) ResyncRow(t sim.Time, lba int64) (sim.Time, error) { return t, nil }

// Resync is a no-op: parity is never stale.
func (a *Array) Resync(t sim.Time) (sim.Time, error) { return t, nil }

// PublishMetrics writes the engine's accounting into reg. Counter names
// are shared with the parity engine where the meaning matches, so
// dashboards compare backends directly; log-specific series get their
// own names.
func (a *Array) PublishMetrics(reg *obs.Registry) {
	s := a.stats
	reg.SetCounter("raid_data_reads_total", "Member data-page reads for user requests.", s.DataReads)
	reg.SetCounter("raid_data_writes_total", "Member data-page writes for user requests.", s.DataWrites)
	reg.SetCounter("raid_parity_writes_total", "Parity-page writes.", s.ParityWrites)
	reg.SetCounter("raid_degraded_reads_total", "Reconstruct-on-read operations.", s.DegradedRead)
	reg.SetCounter("raid_media_errors_total", "Member reads that returned a media error.", s.MediaErrors)
	reg.SetCounter("raid_read_repairs_total", "Pages reconstructed and rewritten in place.", s.ReadRepairs)
	reg.SetCounter("raid_rebuild_rows_done_total", "Member rows reconstructed by the online rebuild.", s.RebuildRows)
	reg.SetCounter("raid_rebuild_bytes_total", "Bytes written onto rebuild targets.", s.RebuildBytes)
	reg.SetCounter("raid_rebuilds_started_total", "Member rebuilds opened.", s.RebuildsStarted)
	reg.SetCounter("raid_rebuilds_completed_total", "Member rebuilds run to completion.", s.RebuildsCompleted)
	reg.SetCounter("raid_rebuilds_aborted_total", "Member rebuilds abandoned because the target died.", s.RebuildsAborted)
	reg.SetCounter("raid_spare_attaches_total", "Hot spares auto-attached to failed members.", s.SpareAttaches)
	reg.SetCounter("raid_lost_pages_total", "Member pages declared unrecoverable.", s.LostPages)
	reg.SetCounter("lsraid_gc_copies_total", "Live pages copied forward by segment GC.", s.GCCopies)
	reg.SetCounter("lsraid_gc_segments_total", "Segments reclaimed by GC.", s.GCSegments)
	reg.SetGauge("raid_failed_disks", "Currently failed member disks.", float64(a.failed))
	reg.SetGauge("raid_spares", "Hot spares currently parked.", float64(len(a.spares)))
	reg.SetGauge("lsraid_free_segments", "Segments currently free.", float64(a.freeCount))
	reg.SetGauge("lsraid_pending_pages", "Pages staged in the NVRAM row buffer.", float64(len(a.rowBuf)))
	active, watermark := 0.0, 0.0
	if a.rebuild != nil {
		active, watermark = 1, float64(a.rebuild.next)
	}
	reg.SetGauge("raid_rebuild_active", "1 while a member rebuild is in progress.", active)
	reg.SetGauge("raid_rebuild_watermark", "Rows of the rebuild target already reconstructed.", watermark)
}

// Compile-time check: the log-structured engine satisfies the seam.
var _ raidiface.Array = (*Array)(nil)
