package lsraid

// Test hooks and accessors for the white-box property tests.

// SegmentCount and Live expose accounting internals to the tests.
func (a *Array) SegmentCount() int64 { return a.numSegs }
func (a *Array) LivePages() int64 {
	var n int64
	for _, l := range a.live {
		n += int64(l)
	}
	return n
}

// PendingPages reports the staged NVRAM row-buffer depth.
func (a *Array) PendingPages() int { return len(a.rowBuf) }

// encodeSummaryOf re-exports the codec over an arbitrary summary value.
func encodeSummaryOf(seq uint64, rows int64, lbas []int64) []byte {
	return EncodeSummary(&segMeta{Seq: seq, Rows: rows, LBAs: lbas})
}
