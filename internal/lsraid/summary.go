package lsraid

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// The segment-summary codec: the byte representation of one segment's
// NVRAM summary. Layout (little-endian):
//
//	magic   [4]byte  "LSSG"
//	version u8       1
//	seq     uvarint
//	rows    uvarint
//	count   uvarint  number of LBA entries
//	lbas    count × varint, delta-encoded (zig-zag of lba[i]-lba[i-1])
//	crc     u32      CRC-32 (IEEE) of everything above
//
// Delta encoding keeps sequential workloads' summaries small; zig-zag
// keeps backwards deltas cheap. The decoder is hardened against
// arbitrary bytes (fuzzed by FuzzLSRaidSegmentDecode): every length is
// bounded before allocation, every varint checked for truncation, and
// the CRC rejects torn or bit-rotted summaries loudly.

var (
	// ErrBadSummary reports an undecodable segment summary.
	ErrBadSummary = errors.New("lsraid: bad segment summary")

	summaryMagic = [4]byte{'L', 'S', 'S', 'G'}
)

const (
	summaryVersion = 1
	// maxSummaryEntries bounds decode-side allocation: no realistic
	// segment geometry exceeds it, and fuzz inputs cannot make us
	// allocate gigabytes.
	maxSummaryEntries = 1 << 20
)

// EncodeSummary serialises a segment summary.
func EncodeSummary(m *segMeta) []byte {
	buf := make([]byte, 0, 5+3*binary.MaxVarintLen64+len(m.LBAs)*2+4)
	buf = append(buf, summaryMagic[:]...)
	buf = append(buf, summaryVersion)
	buf = binary.AppendUvarint(buf, m.Seq)
	buf = binary.AppendUvarint(buf, uint64(m.Rows))
	buf = binary.AppendUvarint(buf, uint64(len(m.LBAs)))
	prev := int64(0)
	for _, lba := range m.LBAs {
		buf = binary.AppendVarint(buf, lba-prev)
		prev = lba
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf))
	return append(buf, crc[:]...)
}

// DecodeSummary parses an encoded segment summary, rejecting truncated,
// corrupt, or absurd inputs with ErrBadSummary.
func DecodeSummary(b []byte) (segMeta, error) {
	var m segMeta
	if len(b) < 4+1+4 {
		return m, fmt.Errorf("%w: %d bytes", ErrBadSummary, len(b))
	}
	body, crcBytes := b[:len(b)-4], b[len(b)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(crcBytes) {
		return m, fmt.Errorf("%w: crc mismatch", ErrBadSummary)
	}
	if [4]byte(body[:4]) != summaryMagic {
		return m, fmt.Errorf("%w: magic %q", ErrBadSummary, body[:4])
	}
	if body[4] != summaryVersion {
		return m, fmt.Errorf("%w: version %d", ErrBadSummary, body[4])
	}
	rest := body[5:]
	seq, n := binary.Uvarint(rest)
	if n <= 0 {
		return m, fmt.Errorf("%w: truncated seq", ErrBadSummary)
	}
	rest = rest[n:]
	rows, n := binary.Uvarint(rest)
	if n <= 0 {
		return m, fmt.Errorf("%w: truncated rows", ErrBadSummary)
	}
	rest = rest[n:]
	count, n := binary.Uvarint(rest)
	if n <= 0 {
		return m, fmt.Errorf("%w: truncated count", ErrBadSummary)
	}
	rest = rest[n:]
	if count > maxSummaryEntries {
		return m, fmt.Errorf("%w: %d entries", ErrBadSummary, count)
	}
	if rows > count {
		return m, fmt.Errorf("%w: %d rows but %d entries", ErrBadSummary, rows, count)
	}
	if rows > 0 && count%rows != 0 {
		return m, fmt.Errorf("%w: %d entries not a multiple of %d rows", ErrBadSummary, count, rows)
	}
	if rows == 0 && count != 0 {
		return m, fmt.Errorf("%w: %d entries with no rows", ErrBadSummary, count)
	}
	lbas := make([]int64, 0, count)
	prev := int64(0)
	for i := uint64(0); i < count; i++ {
		d, n := binary.Varint(rest)
		if n <= 0 {
			return m, fmt.Errorf("%w: truncated lba %d", ErrBadSummary, i)
		}
		rest = rest[n:]
		lba := prev + d
		if lba < 0 {
			return m, fmt.Errorf("%w: negative lba %d", ErrBadSummary, lba)
		}
		lbas = append(lbas, lba)
		prev = lba
	}
	if len(rest) != 0 {
		return m, fmt.Errorf("%w: %d trailing bytes", ErrBadSummary, len(rest))
	}
	m.Seq = seq
	m.Rows = int64(rows)
	m.LBAs = lbas
	return m, nil
}
