package lsraid

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// replay rebuilds all volatile lookup state — the L2P map, per-segment
// live counts, the free count, the pending index — from the NVRAM
// summaries and staged row buffer. It is the crash-recovery path
// (CrashRebuildState) and must be a pure function of NVRAM state:
// running it twice yields identical state (tested via StateDigest).
func (a *Array) replay() {
	a.inGC = false
	a.l2p = make(map[int64]phys, len(a.l2p))
	a.live = make([]int32, a.numSegs)
	a.pendingIdx = make(map[int64]int, len(a.rowBuf))
	a.freeCount = 0

	// Apply summaries in allocation order: a later segment's mapping of
	// the same LBA supersedes an earlier one's.
	order := make([]int, 0, a.numSegs)
	for s := int64(0); s < a.numSegs; s++ {
		if a.segs[s].Seq != 0 {
			order = append(order, int(s))
		} else {
			a.freeCount++
		}
	}
	sort.Slice(order, func(i, j int) bool { return a.segs[order[i]].Seq < a.segs[order[j]].Seq })
	dc := int64(a.dc())
	for _, s := range order {
		m := &a.segs[s]
		for idx := int64(0); idx < m.Rows*dc; idx++ {
			lba := m.LBAs[idx]
			if prev, ok := a.l2p[lba]; ok {
				a.live[prev.seg]--
			}
			a.l2p[lba] = phys{seg: int32(s), idx: int32(idx)}
			a.live[s]++
		}
	}
	// Staged pages shadow their committed copies.
	for i, p := range a.rowBuf {
		a.pendingIdx[p.lba] = i
		if ph, ok := a.l2p[p.lba]; ok {
			a.live[ph.seg]--
		}
	}
}

// CheckInvariants recomputes the derived state from NVRAM first
// principles and cross-checks the incrementally maintained version, plus
// the segment accounting identity live + dead + free == capacity. It is
// what the property tests (and any rig that wants to) call after
// arbitrary op sequences.
func (a *Array) CheckInvariants() error {
	dc := int64(a.dc())
	// Summary shape.
	var committed int64
	for s := int64(0); s < a.numSegs; s++ {
		m := &a.segs[s]
		if m.Seq == 0 {
			if m.Rows != 0 {
				return fmt.Errorf("lsraid: free segment %d has %d rows", s, m.Rows)
			}
			continue
		}
		if m.Rows < 0 || m.Rows > a.cfg.SegRows {
			return fmt.Errorf("lsraid: segment %d rows %d outside [0,%d]", s, m.Rows, a.cfg.SegRows)
		}
		if int64(len(m.LBAs)) != m.Rows*dc {
			return fmt.Errorf("lsraid: segment %d summary has %d lbas for %d rows", s, len(m.LBAs), m.Rows)
		}
		if int32(s) != a.open && m.Rows != a.cfg.SegRows {
			return fmt.Errorf("lsraid: non-open segment %d is partial (%d rows)", s, m.Rows)
		}
		committed += m.Rows * dc
		// The summary codec must round-trip its own encoding: it is the
		// on-NVRAM representation replay depends on.
		dec, err := DecodeSummary(EncodeSummary(m))
		if err != nil {
			return fmt.Errorf("lsraid: segment %d summary does not round-trip: %v", s, err)
		}
		if dec.Seq != m.Seq || dec.Rows != m.Rows || len(dec.LBAs) != len(m.LBAs) {
			return fmt.Errorf("lsraid: segment %d summary round-trip mismatch", s)
		}
		for i := range m.LBAs {
			if dec.LBAs[i] != m.LBAs[i] {
				return fmt.Errorf("lsraid: segment %d summary lba %d round-trip mismatch", s, i)
			}
		}
	}
	// Recompute the volatile state and compare.
	want := &Array{
		cfg: a.cfg, diskPages: a.diskPages, segPages: a.segPages,
		numSegs: a.numSegs, logical: a.logical, disks: a.disks,
		segs: a.segs, open: a.open, rowBuf: a.rowBuf,
	}
	want.replay()
	if want.freeCount != a.freeCount {
		return fmt.Errorf("lsraid: free count %d, replay says %d", a.freeCount, want.freeCount)
	}
	if len(want.l2p) != len(a.l2p) {
		return fmt.Errorf("lsraid: l2p has %d entries, replay says %d", len(a.l2p), len(want.l2p))
	}
	for lba, ph := range a.l2p {
		if wph, ok := want.l2p[lba]; !ok || wph != ph {
			return fmt.Errorf("lsraid: l2p[%d]=%v, replay says %v (present=%v)", lba, ph, want.l2p[lba], ok)
		}
	}
	var livePages int64
	for s := int64(0); s < a.numSegs; s++ {
		if a.live[s] != want.live[s] {
			return fmt.Errorf("lsraid: live[%d]=%d, replay says %d", s, a.live[s], want.live[s])
		}
		if a.live[s] < 0 {
			return fmt.Errorf("lsraid: live[%d]=%d negative", s, a.live[s])
		}
		if int64(a.live[s]) > a.segs[s].Rows*dc {
			return fmt.Errorf("lsraid: live[%d]=%d exceeds committed %d", s, a.live[s], a.segs[s].Rows*dc)
		}
		livePages += int64(a.live[s])
	}
	if len(a.pendingIdx) != len(a.rowBuf) {
		return fmt.Errorf("lsraid: pending index %d entries for %d staged pages", len(a.pendingIdx), len(a.rowBuf))
	}
	for i, p := range a.rowBuf {
		if a.pendingIdx[p.lba] != i {
			return fmt.Errorf("lsraid: pending index for %d is %d, want %d", p.lba, a.pendingIdx[p.lba], i)
		}
	}
	// Accounting identity: live + dead + free == physical data capacity.
	capacity := a.numSegs * a.segPages
	dead := committed - livePages - a.shadowed()
	free := capacity - committed
	if livePages+a.shadowed()+dead+free != capacity {
		return fmt.Errorf("lsraid: accounting broken: live %d + shadowed %d + dead %d + free %d != capacity %d",
			livePages, a.shadowed(), dead, free, capacity)
	}
	if dead < 0 {
		return fmt.Errorf("lsraid: negative dead pages: committed %d live %d shadowed %d", committed, livePages, a.shadowed())
	}
	if mapped := int64(len(a.l2p)); mapped > a.logical {
		return fmt.Errorf("lsraid: %d mapped pages exceed logical capacity %d", mapped, a.logical)
	}
	return nil
}

// shadowed counts committed pages whose LBA currently resolves to a
// staged NVRAM copy instead (mapped but superseded): they are committed
// yet neither live nor dead until the staged row flushes.
func (a *Array) shadowed() int64 {
	var n int64
	for _, p := range a.rowBuf {
		if _, ok := a.l2p[p.lba]; ok {
			n++
		}
	}
	return n
}

// StateDigest hashes the engine's durable state — the encoded segment
// summaries (in slot order), the open pointer, the sequence counter, and
// the staged row buffer — plus the derived L2P map. Replay idempotence
// (crash, replay, digest; replay again, digest) must hold exactly.
func (a *Array) StateDigest() uint64 {
	h := fnv.New64a()
	var scratch [8]byte
	putU64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			scratch[i] = byte(v >> (8 * i))
		}
		h.Write(scratch[:])
	}
	putU64(uint64(a.numSegs))
	putU64(uint64(a.logical))
	putU64(a.nextSeq)
	putU64(uint64(a.open))
	for s := int64(0); s < a.numSegs; s++ {
		h.Write(EncodeSummary(&a.segs[s]))
	}
	for _, p := range a.rowBuf {
		putU64(uint64(p.lba))
		if p.data != nil {
			h.Write(p.data)
		}
	}
	// The derived map, in deterministic order.
	lbas := make([]int64, 0, len(a.l2p))
	for lba := range a.l2p {
		lbas = append(lbas, lba)
	}
	sort.Slice(lbas, func(i, j int) bool { return lbas[i] < lbas[j] })
	for _, lba := range lbas {
		ph := a.l2p[lba]
		putU64(uint64(lba))
		putU64(uint64(ph.seg)<<32 | uint64(uint32(ph.idx)))
	}
	return h.Sum64()
}

// GCStats exposes the log-specific counters without widening the shared
// raid.Stats surface consumers already read.
func (a *Array) GCStats() (copies, segments int64) {
	return a.stats.GCCopies, a.stats.GCSegments
}

// FreeSegments reports the current free-segment count (tests, gauges).
func (a *Array) FreeSegments() int64 { return a.freeCount }
