package lsraid

import (
	"errors"

	"kddcache/internal/blockdev"
	"kddcache/internal/raid"
	"kddcache/internal/sim"
)

// Scrub walks every committed physical row, repairs single unreadable
// pages from parity (rewriting them in place), and — in data mode —
// verifies the row XORs to zero, recomputing parity when it does not
// (the single-parity attribution rule: data wins, parity is rewritten).
// Rows with a missing member are skipped; the rebuild will heal them.
func (a *Array) Scrub(t sim.Time) (done sim.Time, rep raid.ScrubReport, err error) {
	done = t
	n := len(a.disks)
	var pages [][]byte
	if a.dataMode {
		pages = make([][]byte, n)
		for i := range pages {
			pages[i] = blockdev.GetPage()
			defer blockdev.PutPage(pages[i])
		}
	}
	for seg := int64(0); seg < a.numSegs; seg++ {
		m := &a.segs[seg]
		if m.Seq == 0 {
			continue
		}
		for r := int64(0); r < m.Rows; r++ {
			row := seg*a.cfg.SegRows + r
			c, scanned, serr := a.scrubRow(t, row, pages, &rep)
			if serr != nil {
				return done, rep, serr
			}
			if scanned {
				rep.RowsScanned++
			} else {
				rep.RowsSkipped++
			}
			done = sim.MaxTime(done, c)
			t = c
		}
	}
	return done, rep, nil
}

// scrubRow checks one committed physical row. scanned is false when the
// row was skipped (missing member).
func (a *Array) scrubRow(t sim.Time, row int64, pages [][]byte, rep *raid.ScrubReport) (done sim.Time, scanned bool, err error) {
	n := len(a.disks)
	for d := 0; d < n; d++ {
		if a.missing(d, row) {
			return t, false, nil
		}
	}
	done = t
	bad := -1
	for d := 0; d < n; d++ {
		var buf []byte
		if pages != nil {
			buf = pages[d]
		}
		c, rerr := a.memberRead(t, d, row, buf)
		if rerr != nil {
			if errors.Is(rerr, blockdev.ErrCrashed) {
				return done, true, rerr
			}
			if errors.Is(rerr, blockdev.ErrFailed) {
				a.noteFailed(d)
				return done, false, nil
			}
			a.stats.MediaErrors++
			if bad >= 0 {
				// Two unreadable pages under single parity: loud loss.
				a.scrubLoss(row, rep)
				return done, true, nil
			}
			bad = d
			continue
		}
		done = sim.MaxTime(done, c)
	}
	if bad >= 0 {
		// Reconstruct the single bad page from the others and rewrite it.
		var acc []byte
		if pages != nil {
			acc = blockdev.GetZeroPage()
			defer blockdev.PutPage(acc)
			for d := 0; d < n; d++ {
				if d != bad {
					xorInto(acc, pages[d])
				}
			}
			copy(pages[bad], acc)
		}
		c, werr := a.disks[bad].WritePages(done, row, 1, acc)
		if werr != nil {
			if errors.Is(werr, blockdev.ErrCrashed) {
				return done, true, werr
			}
			a.scrubLoss(row, rep)
			return done, true, nil
		}
		done = c
		rep.MediaRepaired++
	}
	if pages != nil {
		x := blockdev.GetZeroPage()
		defer blockdev.PutPage(x)
		for d := 0; d < n; d++ {
			xorInto(x, pages[d])
		}
		if !allZero(x) {
			pd := a.parityDisk(row)
			p := blockdev.GetZeroPage()
			defer blockdev.PutPage(p)
			for d := 0; d < n; d++ {
				if d != pd {
					xorInto(p, pages[d])
				}
			}
			c, werr := a.disks[pd].WritePages(done, row, 1, p)
			if werr != nil {
				if errors.Is(werr, blockdev.ErrCrashed) {
					return done, true, werr
				}
				a.scrubLoss(row, rep)
				return done, true, nil
			}
			done = c
			rep.ParityFixed++
		}
	}
	return done, true, nil
}

// scrubLoss records the row as unrecoverable and marks its live logical
// pages lost.
func (a *Array) scrubLoss(row int64, rep *raid.ScrubReport) {
	rep.Unrecoverable = append(rep.Unrecoverable, row)
	seg := row / a.cfg.SegRows
	base := (row % a.cfg.SegRows) * int64(a.dc())
	m := &a.segs[seg]
	for k := 0; k < a.dc(); k++ {
		idx := base + int64(k)
		if idx >= int64(len(m.LBAs)) {
			break
		}
		lba := m.LBAs[idx]
		if cur, ok := a.l2p[lba]; ok && cur.seg == int32(seg) && int64(cur.idx) == idx && !a.lost[lba] {
			if _, pend := a.pendingIdx[lba]; pend {
				continue
			}
			a.lost[lba] = true
			a.stats.LostPages++
		}
	}
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}
