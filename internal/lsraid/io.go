package lsraid

import (
	"errors"
	"fmt"

	"kddcache/internal/blockdev"
	"kddcache/internal/raid"
	"kddcache/internal/sim"
)

// mediaRetries bounds re-reads of a member page after ErrMedia before
// redundancy is consulted, matching the parity engine: transient glitches
// clear on retry, latent faults do not.
const mediaRetries = 2

// dc returns data pages per physical row.
func (a *Array) dc() int { return len(a.disks) - 1 }

// ReadPages implements the data-path read. Unwritten pages read as
// zeros, like a fresh volume.
func (a *Array) ReadPages(t sim.Time, lba int64, count int, buf []byte) (sim.Time, error) {
	if err := blockdev.CheckBuf(buf, count); err != nil {
		return t, err
	}
	if lba < 0 || lba+int64(count) > a.logical {
		return t, blockdev.ErrOutOfRange
	}
	done := t
	for i := 0; i < count; i++ {
		c, err := a.readPage(t, lba+int64(i), pageBuf(buf, i))
		if err != nil {
			return done, err
		}
		done = sim.MaxTime(done, c)
		t = c
	}
	return done, nil
}

// WritePages appends the pages to the log via the NVRAM row buffer.
func (a *Array) WritePages(t sim.Time, lba int64, count int, buf []byte) (sim.Time, error) {
	if err := blockdev.CheckBuf(buf, count); err != nil {
		return t, err
	}
	if lba < 0 || lba+int64(count) > a.logical {
		return t, blockdev.ErrOutOfRange
	}
	done := t
	for i := 0; i < count; i++ {
		c, err := a.writePage(t, lba+int64(i), pageBuf(buf, i))
		if err != nil {
			return done, err
		}
		done = sim.MaxTime(done, c)
		t = c
	}
	return done, nil
}

// WriteNoParity exists for the KDD protocol ("write data now, repay
// parity later"). The log has no later: every flush carries parity, so
// this is a plain append — which is exactly the point of the backend.
func (a *Array) WriteNoParity(t sim.Time, lba int64, count int, buf []byte) (sim.Time, error) {
	a.stats.NoParityWr += int64(count)
	return a.WritePages(t, lba, count, buf)
}

// WriteRow writes one logical parity row (one page per data chunk, in
// RowPeers order). The pages just join the log like any other writes;
// full-stripe batching falls out of the row buffer.
func (a *Array) WriteRow(t sim.Time, firstLBA int64, buf []byte) (sim.Time, error) {
	peers := a.RowPeers(firstLBA)
	if err := blockdev.CheckBuf(buf, len(peers)); err != nil {
		return t, err
	}
	done := t
	for i, lba := range peers {
		if lba < 0 || lba >= a.logical {
			return done, blockdev.ErrOutOfRange
		}
		c, err := a.writePage(t, lba, pageBuf(buf, i))
		if err != nil {
			return done, err
		}
		done = sim.MaxTime(done, c)
		t = c
	}
	return done, nil
}

// writePage stages one page into the NVRAM row buffer, deduplicating
// against an already-staged version, and flushes full rows. Staging
// itself is an NVRAM write — free in the device-time model; all member
// I/O happens in commitRow.
func (a *Array) writePage(t sim.Time, lba int64, buf []byte) (sim.Time, error) {
	if a.failed > 1 {
		return t, raid.ErrTooManyFailures
	}
	delete(a.lost, lba) // an overwrite heals a lost page
	var data []byte
	if a.dataMode && buf != nil {
		data = make([]byte, blockdev.PageSize)
		copy(data, buf)
	}
	if i, ok := a.pendingIdx[lba]; ok {
		a.rowBuf[i].data = data
		return t, nil
	}
	if ph, ok := a.l2p[lba]; ok {
		a.live[ph.seg]-- // the committed copy is dead the moment NVRAM holds a newer one
	}
	a.rowBuf = append(a.rowBuf, pending{lba: lba, data: data})
	a.pendingIdx[lba] = len(a.rowBuf) - 1
	return a.drain(t)
}

// drain flushes full rows out of the NVRAM buffer. It is re-entered by
// GC copy-forward (which stages through writePage); the loop structure
// makes that safe — whoever runs first flushes the buffer prefix.
func (a *Array) drain(t sim.Time) (sim.Time, error) {
	done := t
	for len(a.rowBuf) >= a.dc() {
		c, err := a.commitRow(t)
		if err != nil {
			return done, err
		}
		done = sim.MaxTime(done, c)
		t = c
	}
	return done, nil
}

// ensureOpen makes sure an open segment with room exists, running GC
// first when free segments hit the reserve (unless already collecting —
// GC's own flushes draw down the reserve instead of recursing).
func (a *Array) ensureOpen(t sim.Time) (sim.Time, error) {
	if a.open >= 0 && a.segs[a.open].Rows < a.cfg.SegRows {
		return t, nil
	}
	done := t
	if !a.inGC && a.freeCount <= int64(a.cfg.ReserveSegs) {
		c, err := a.gc(t)
		if err != nil {
			return t, err
		}
		done = sim.MaxTime(done, c)
		// GC copy-forward flushes through the normal path and may have
		// opened (and partially filled) a fresh segment already.
		if a.open >= 0 && a.segs[a.open].Rows < a.cfg.SegRows {
			return done, nil
		}
	}
	for s := int64(0); s < a.numSegs; s++ {
		if a.segs[s].Seq == 0 {
			a.segs[s] = segMeta{Seq: a.nextSeq + 1, Rows: 0, LBAs: a.segs[s].LBAs[:0]}
			a.nextSeq++
			a.freeCount--
			a.open = int32(s)
			return done, nil
		}
	}
	return done, ErrNoSpace
}

// commitRow writes the buffer's first full row as an append — data
// pages, then parity, then the NVRAM metadata commit. A crash anywhere
// before the commit leaves the mapping on the old copies and the staged
// pages in NVRAM; the interrupted row is rewritten from scratch later.
func (a *Array) commitRow(t sim.Time) (done sim.Time, err error) {
	done, err = a.ensureOpen(t)
	if err != nil {
		return done, err
	}
	if len(a.rowBuf) < a.dc() {
		// GC's own drain (re-entered through copy-forward) already
		// flushed the prefix we were called for.
		return done, nil
	}
	t = done
	dc := a.dc()
	seg := a.open
	m := &a.segs[seg]
	row := int64(seg)*a.cfg.SegRows + m.Rows
	entries := a.rowBuf[:dc]

	holes := 0
	for k := range entries {
		if a.missing(a.dataDisk(row, k), row) {
			holes++
		}
	}
	if a.missing(a.parityDisk(row), row) {
		holes++
	}
	if holes > 1 {
		return done, raid.ErrTooManyFailures // single parity cannot imply two holes
	}

	var parity []byte
	if a.dataMode {
		parity = blockdev.GetZeroPage()
		defer blockdev.PutPage(parity)
		for _, e := range entries {
			xorInto(parity, e.data)
		}
	}
	for k, e := range entries {
		d := a.dataDisk(row, k)
		if a.missing(d, row) {
			continue // implied by parity; healed when the rebuild watermark passes
		}
		a.stats.DataWrites++
		c, werr := a.disks[d].WritePages(t, row, 1, e.data)
		if werr != nil {
			if !errors.Is(werr, blockdev.ErrFailed) {
				return done, werr
			}
			a.noteFailed(d)
			if a.failed > 1 {
				return done, raid.ErrTooManyFailures
			}
			continue
		}
		done = sim.MaxTime(done, c)
	}
	pd := a.parityDisk(row)
	if !a.missing(pd, row) {
		a.stats.ParityWrites++
		c, werr := a.disks[pd].WritePages(t, row, 1, parity)
		if werr != nil {
			if !errors.Is(werr, blockdev.ErrFailed) {
				return done, werr
			}
			a.noteFailed(pd)
			if a.failed > 1 {
				return done, raid.ErrTooManyFailures
			}
		} else {
			done = sim.MaxTime(done, c)
		}
	}

	// NVRAM commit: flip the mapping, append the summary, release the
	// staged pages. This is the atomic durability point of the flush.
	base := m.Rows * int64(dc)
	for k, e := range entries {
		a.l2p[e.lba] = phys{seg: seg, idx: int32(base + int64(k))}
		a.live[seg]++
		delete(a.pendingIdx, e.lba)
		m.LBAs = append(m.LBAs, e.lba)
	}
	m.Rows++
	a.rowBuf = a.rowBuf[dc:]
	for i, p := range a.rowBuf {
		a.pendingIdx[p.lba] = i
	}
	if len(a.rowBuf) == 0 {
		a.rowBuf = nil // let the backing array go once fully drained
	}
	return done, nil
}

// readPage serves one logical page: NVRAM-staged version first, then the
// committed copy, reconstructing through parity when the member is
// missing or the page is unreadable.
func (a *Array) readPage(t sim.Time, lba int64, buf []byte) (sim.Time, error) {
	if i, ok := a.pendingIdx[lba]; ok {
		if buf != nil {
			if d := a.rowBuf[i].data; d != nil {
				copy(buf, d)
			} else {
				zero(buf)
			}
		}
		return t, nil // NVRAM hit, no device I/O
	}
	if a.lost[lba] {
		return t, fmt.Errorf("%w: page %d lost", raid.ErrUnrecoverable, lba)
	}
	ph, ok := a.l2p[lba]
	if !ok {
		if buf != nil {
			zero(buf)
		}
		return t, nil // never written: fresh-volume zeros
	}
	row, slot := a.physRowSlot(ph)
	d := a.dataDisk(row, slot)
	if a.missing(d, row) {
		a.stats.DegradedRead++
		return a.reconstruct(t, lba, ph, buf, false)
	}
	a.stats.DataReads++
	done, err := a.memberRead(t, d, row, buf)
	if err == nil {
		return done, nil
	}
	if errors.Is(err, blockdev.ErrMedia) {
		a.stats.MediaErrors++
		return a.reconstruct(done, lba, ph, buf, true)
	}
	if errors.Is(err, blockdev.ErrFailed) {
		a.noteFailed(d)
		if a.failed > 1 {
			return done, raid.ErrTooManyFailures
		}
		a.stats.DegradedRead++
		return a.reconstruct(done, lba, ph, buf, false)
	}
	return done, err
}

// memberRead reads one member page with bounded retry on media errors.
func (a *Array) memberRead(t sim.Time, disk int, row int64, buf []byte) (sim.Time, error) {
	done, err := a.disks[disk].ReadPages(t, row, 1, buf)
	for r := 0; err != nil && errors.Is(err, blockdev.ErrMedia) && r < mediaRetries; r++ {
		done, err = a.disks[disk].ReadPages(done, row, 1, buf)
	}
	return done, err
}

// reconstruct rebuilds the page at ph from its row's surviving pages
// (XOR of the other data slots and parity) into buf. With repair set,
// the rebuilt page is also rewritten in place, clearing a latent media
// fault (read-repair).
func (a *Array) reconstruct(t sim.Time, lba int64, ph phys, buf []byte, repair bool) (sim.Time, error) {
	row, slot := a.physRowSlot(ph)
	target := a.dataDisk(row, slot)
	var acc []byte
	if a.dataMode {
		acc = blockdev.GetZeroPage()
		defer blockdev.PutPage(acc)
	}
	var tmp []byte
	if a.dataMode {
		tmp = blockdev.GetPage()
		defer blockdev.PutPage(tmp)
	}
	done := t
	for k := 0; k < a.dc(); k++ {
		if k == slot {
			continue
		}
		c, err := a.readSurvivor(t, a.dataDisk(row, k), row, tmp, acc)
		if err != nil {
			return done, a.declareLost(lba, err)
		}
		done = sim.MaxTime(done, c)
	}
	c, err := a.readSurvivor(t, a.parityDisk(row), row, tmp, acc)
	if err != nil {
		return done, a.declareLost(lba, err)
	}
	done = sim.MaxTime(done, c)
	if buf != nil && acc != nil {
		copy(buf, acc)
	}
	if repair && !a.missing(target, row) {
		if c, werr := a.disks[target].WritePages(done, row, 1, acc); werr == nil {
			done = c
			a.stats.ReadRepairs++
		}
	}
	return done, nil
}

// readSurvivor reads one surviving page of a row being reconstructed and
// folds it into the accumulator. Any failure here is a second hole:
// single parity cannot absorb it.
func (a *Array) readSurvivor(t sim.Time, disk int, row int64, tmp, acc []byte) (sim.Time, error) {
	if a.missing(disk, row) {
		return t, raid.ErrTooManyFailures
	}
	done, err := a.memberRead(t, disk, row, tmp)
	if err != nil {
		if errors.Is(err, blockdev.ErrFailed) {
			a.noteFailed(disk)
		}
		if errors.Is(err, blockdev.ErrMedia) {
			a.stats.MediaErrors++
		}
		return done, err
	}
	if acc != nil {
		xorInto(acc, tmp)
	}
	return done, nil
}

// declareLost records a loud, permanent loss of lba unless the failure
// is the crash signal (which recovery handles, not loss accounting).
func (a *Array) declareLost(lba int64, cause error) error {
	if errors.Is(cause, blockdev.ErrCrashed) {
		return cause
	}
	if !a.lost[lba] {
		a.lost[lba] = true
		a.stats.LostPages++
	}
	return fmt.Errorf("%w: page %d (second fault while reconstructing: %v)", raid.ErrUnrecoverable, lba, cause)
}

// readPhysInto reads the committed page at ph (for GC copy-forward),
// reconstructing it if its member is missing or unreadable.
func (a *Array) readPhysInto(t sim.Time, lba int64, ph phys, buf []byte) (sim.Time, error) {
	row, slot := a.physRowSlot(ph)
	d := a.dataDisk(row, slot)
	if a.missing(d, row) {
		a.stats.DegradedRead++
		return a.reconstruct(t, lba, ph, buf, false)
	}
	done, err := a.memberRead(t, d, row, buf)
	if err == nil {
		return done, nil
	}
	if errors.Is(err, blockdev.ErrMedia) {
		a.stats.MediaErrors++
		return a.reconstruct(done, lba, ph, buf, true)
	}
	if errors.Is(err, blockdev.ErrFailed) {
		a.noteFailed(d)
		if a.failed > 1 {
			return done, raid.ErrTooManyFailures
		}
		a.stats.DegradedRead++
		return a.reconstruct(done, lba, ph, buf, false)
	}
	return done, err
}

// pageBuf returns the i-th page of buf, or nil in timing mode.
func pageBuf(buf []byte, i int) []byte {
	if buf == nil {
		return nil
	}
	return buf[i*blockdev.PageSize : (i+1)*blockdev.PageSize]
}

func zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// xorInto folds src into dst word-at-a-time. src may be nil (timing
// mode), which contributes nothing.
func xorInto(dst, src []byte) {
	if dst == nil || src == nil {
		return
	}
	_ = dst[len(src)-1]
	i := 0
	for ; i+8 <= len(src); i += 8 {
		dst[i] ^= src[i]
		dst[i+1] ^= src[i+1]
		dst[i+2] ^= src[i+2]
		dst[i+3] ^= src[i+3]
		dst[i+4] ^= src[i+4]
		dst[i+5] ^= src[i+5]
		dst[i+6] ^= src[i+6]
		dst[i+7] ^= src[i+7]
	}
	for ; i < len(src); i++ {
		dst[i] ^= src[i]
	}
}
