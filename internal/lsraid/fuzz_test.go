package lsraid

import (
	"bytes"
	"testing"
)

// FuzzLSRaidSegmentDecode throws hostile bytes at the segment-summary
// codec. The decoder must never panic or over-allocate, and any input it
// accepts must re-encode to the canonical byte form and survive a second
// decode (the replay path depends on decode(encode(s)) == s).
func FuzzLSRaidSegmentDecode(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(encodeSummaryOf(0, 0, nil))
	f.Add(encodeSummaryOf(1, 0, nil))
	f.Add(encodeSummaryOf(7, 2, []int64{5, 9, 1, 0, 1 << 40, 3}))
	f.Add(encodeSummaryOf(1<<60, 1, []int64{0, 0, 0}))
	f.Add(encodeSummaryOf(3, 4, []int64{8, 8, 8, 8, 1, 2, 3, 4, 9, 9, 9, 9}))
	// Near-miss corpus: valid prefix, damaged tail.
	bad := encodeSummaryOf(7, 2, []int64{5, 9, 1, 0, 2, 3})
	bad[len(bad)-1] ^= 0xff
	f.Add(bad)
	f.Add([]byte("LSSG"))
	f.Add([]byte("LSSG\x01"))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeSummary(data)
		if err != nil {
			return
		}
		// Accepted: the decode must be canonical.
		enc := EncodeSummary(&m)
		if !bytes.Equal(enc, data) {
			t.Fatalf("accepted non-canonical encoding: %x != %x", data, enc)
		}
		m2, err := DecodeSummary(enc)
		if err != nil {
			t.Fatalf("re-decode of canonical form failed: %v", err)
		}
		if m2.Seq != m.Seq || m2.Rows != m.Rows || len(m2.LBAs) != len(m.LBAs) {
			t.Fatalf("decode not stable: %+v vs %+v", m, m2)
		}
		for i := range m.LBAs {
			if m.LBAs[i] != m2.LBAs[i] {
				t.Fatalf("lba %d not stable", i)
			}
		}
	})
}
