package lsraid

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"kddcache/internal/blockdev"
	"kddcache/internal/obs"
	"kddcache/internal/raid"
	"kddcache/internal/sim"
)

// fillCommitted writes n pages and returns their contents, sized so
// every staged row drains (n must be a multiple of dataDisks).
func fillCommitted(t *testing.T, a *Array, n int64) map[int64][]byte {
	t.Helper()
	want := make(map[int64][]byte, n)
	var tt sim.Time
	for lba := int64(0); lba < n; lba++ {
		p := pageOf(lba, 1)
		want[lba] = p
		done, err := a.WritePages(tt, lba, 1, p)
		if err != nil {
			t.Fatalf("write %d: %v", lba, err)
		}
		tt = done
	}
	if a.PendingPages() != 0 {
		t.Fatalf("%d pages still pending; size the fill to a row multiple", a.PendingPages())
	}
	return want
}

// TestGeometryAndObservability covers the identity/geometry surface and
// the metrics contract: the logical arithmetic must match a parity
// array of the same width, and a metrics snapshot must validate.
func TestGeometryAndObservability(t *testing.T) {
	a := testArray(t, 4, 256, 8)
	if a.Name() != "lsraid" {
		t.Fatalf("name %q", a.Name())
	}
	if a.Disks() != 4 || a.ChunkPages() != 4 || a.StripePages() != 12 {
		t.Fatalf("geometry: disks=%d chunk=%d stripe=%d", a.Disks(), a.ChunkPages(), a.StripePages())
	}
	if a.StripeOf(25) != 25/12 {
		t.Fatalf("StripeOf(25) = %d", a.StripeOf(25))
	}
	// RowPeers must match the parity engine's arithmetic exactly.
	var members []blockdev.Device
	for i := 0; i < 4; i++ {
		members = append(members, blockdev.NewNullDevice(fmt.Sprintf("p%d", i), 256))
	}
	ref, err := raid.New(raid.Config{Level: raid.Level5, ChunkPages: 4}, members)
	if err != nil {
		t.Fatal(err)
	}
	for _, lba := range []int64{0, 3, 11, 12, 25, 47} {
		got, want := a.RowPeers(lba), ref.RowPeers(lba)
		if len(got) != len(want) {
			t.Fatalf("RowPeers(%d): %v vs raid5 %v", lba, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("RowPeers(%d): %v vs raid5 %v", lba, got, want)
			}
		}
	}
	for i := 0; i < 4; i++ {
		if a.Member(i) == nil || a.Injector(i) == nil {
			t.Fatalf("member %d accessors returned nil", i)
		}
	}
	tr := obs.NewTracer(obs.NewDigest())
	a.SetTracer(tr)

	// Unwritten and staged pages have no physical home.
	if d, _ := a.DataLocation(7); d != -1 {
		t.Fatal("unwritten page reported a physical home")
	}
	if p, q, _ := a.ParityLocation(7); p != -1 || q != -1 {
		t.Fatal("unwritten page reported a parity home")
	}
	if _, err := a.WritePages(0, 7, 1, pageOf(7, 1)); err != nil {
		t.Fatal(err)
	}
	if d, _ := a.DataLocation(7); d != -1 {
		t.Fatal("staged page must report no physical home")
	}
	// Complete the staged row before the bulk fill so every row drains.
	for _, lba := range []int64{8, 9} {
		if _, err := a.WritePages(0, lba, 1, pageOf(lba, 1)); err != nil {
			t.Fatal(err)
		}
	}
	fillCommitted(t, a, 24)
	d, row := a.DataLocation(7)
	if d < 0 {
		t.Fatal("committed page has no physical home")
	}
	p, q, prow := a.ParityLocation(7)
	if p < 0 || q != -1 || prow != row || p == d {
		t.Fatalf("parity location (%d,%d,%d) vs data (%d,%d)", p, q, prow, d, row)
	}

	// The parity protocol is inert, including the reconstruct form.
	if _, err := a.ParityUpdateReconstruct(0, 7, nil); err != nil {
		t.Fatal(err)
	}
	gcc, gcs := a.GCStats()
	if gcc != a.Stats().GCCopies || gcs != a.Stats().GCSegments {
		t.Fatal("GCStats disagrees with Stats")
	}
	if a.FreeSegments() <= 0 || a.FreeSegments() > a.SegmentCount() {
		t.Fatalf("free segments %d of %d", a.FreeSegments(), a.SegmentCount())
	}
	reg := obs.NewRegistry()
	a.PublishMetrics(reg)
	if err := reg.Validate(); err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if tr.Err() != nil {
		t.Fatalf("trace: %v", tr.Err())
	}
}

// TestDoubleFaultIsLoud drops two members: the array must refuse writes,
// fail reads of affected pages with ErrUnrecoverable (never silent
// zeros), and account the loss.
func TestDoubleFaultIsLoud(t *testing.T) {
	a := testArray(t, 4, 256, 8)
	want := fillCommitted(t, a, 48)
	a.FailDisk(1)
	a.FailDisk(3)
	if a.Survivable() {
		t.Fatal("two failures reported survivable")
	}
	if fd := a.FailedDisks(); len(fd) != 2 || fd[0] != 1 || fd[1] != 3 {
		t.Fatalf("FailedDisks = %v", fd)
	}
	if _, err := a.WritePages(0, 0, 1, pageOf(0, 2)); !errors.Is(err, raid.ErrTooManyFailures) {
		t.Fatalf("write with two failures: %v", err)
	}
	// A page whose data slot sits on a failed member cannot be served or
	// reconstructed; the failure must be loud.
	buf := make([]byte, blockdev.PageSize)
	loud, served := 0, 0
	for lba := int64(0); lba < 48; lba++ {
		d, _ := a.DataLocation(lba)
		_, err := a.ReadPages(0, lba, 1, buf)
		switch {
		case d == 1 || d == 3:
			if !errors.Is(err, raid.ErrUnrecoverable) {
				t.Fatalf("lba %d on failed member: got %v", lba, err)
			}
			loud++
		default:
			if err != nil {
				t.Fatalf("lba %d on surviving member: %v", lba, err)
			}
			if !bytes.Equal(buf, want[lba]) {
				t.Fatalf("lba %d wrong bytes", lba)
			}
			served++
		}
	}
	if loud == 0 || served == 0 {
		t.Fatalf("degenerate layout: %d loud, %d served", loud, served)
	}
	if len(a.LostRows()) == 0 || a.Stats().LostPages == 0 {
		t.Fatal("loss not accounted")
	}
}

// TestScrubTwoFaultRow seeds latent faults on two members of the same
// committed row: the scrub must report the row unrecoverable and mark
// its live pages lost, loudly.
func TestScrubTwoFaultRow(t *testing.T) {
	a := testArray(t, 4, 256, 8)
	fillCommitted(t, a, 48)
	var victim int64 = -1
	for lba := int64(0); lba < 48; lba++ {
		if d, row := a.DataLocation(lba); d >= 0 {
			p, _, _ := a.ParityLocation(lba)
			a.Injector(d).InjectBadPage(row)
			a.Injector(p).InjectBadPage(row)
			victim = lba
			break
		}
	}
	if victim < 0 {
		t.Fatal("no committed page found")
	}
	_, rep, err := a.Scrub(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Unrecoverable) == 0 {
		t.Fatal("scrub silently passed a double-fault row")
	}
	buf := make([]byte, blockdev.PageSize)
	if _, err := a.ReadPages(0, victim, 1, buf); !errors.Is(err, raid.ErrUnrecoverable) {
		t.Fatalf("read of scrub-lost page: %v", err)
	}
}

// TestReplaceDiskBlocking exercises the administrative replace path and
// its guard rails.
func TestReplaceDiskBlocking(t *testing.T) {
	a := testArray(t, 4, 256, 8)
	want := fillCommitted(t, a, 48)
	// Guards: replacing a healthy member, wrong-size replacements.
	if _, err := a.ReplaceDisk(0, 2, blockdev.NewNullDataDevice("f", 256)); !errors.Is(err, raid.ErrNotDegraded) {
		t.Fatalf("replace healthy member: %v", err)
	}
	if err := a.AddSpare(blockdev.NewNullDataDevice("small", 64)); !errors.Is(err, raid.ErrBadGeometry) {
		t.Fatalf("undersized spare: %v", err)
	}
	a.FailDisk(2)
	if _, err := a.ReplaceDisk(0, 2, blockdev.NewNullDataDevice("small", 64)); !errors.Is(err, raid.ErrBadGeometry) {
		t.Fatalf("undersized replacement: %v", err)
	}
	if _, err := a.ReplaceDisk(0, 2, blockdev.NewNullDataDevice("fresh", 256)); err != nil {
		t.Fatal(err)
	}
	if !a.Healthy() {
		t.Fatal("not healthy after ReplaceDisk")
	}
	buf := make([]byte, blockdev.PageSize)
	a.FailDisk(0) // read everything THROUGH the replaced member
	for lba := int64(0); lba < 48; lba++ {
		if _, err := a.ReadPages(0, lba, 1, buf); err != nil {
			t.Fatalf("read %d: %v", lba, err)
		}
		if !bytes.Equal(buf, want[lba]) {
			t.Fatalf("lba %d wrong after replace", lba)
		}
	}
}

// TestResumeRebuildCheckpoint crashes a rebuild mid-window and resumes
// it from the checkpointed watermark, plus the resume guard rails.
func TestResumeRebuildCheckpoint(t *testing.T) {
	a := testArray(t, 4, 256, 8)
	want := fillCommitted(t, a, 96)
	a.FailDisk(1)
	if _, err := a.StartRebuild(0, 1, blockdev.NewNullDataDevice("fresh", 256)); err != nil {
		t.Fatal(err)
	}
	if _, n, complete, err := a.RebuildStep(0, 40); err != nil || complete || n != 40 {
		t.Fatalf("first step: n=%d complete=%v err=%v", n, complete, err)
	}
	disk, watermark, active := a.RebuildTarget()
	if !active || disk != 1 || watermark != 40 {
		t.Fatalf("target (%d,%d,%v)", disk, watermark, active)
	}
	// Power loss: the watermark is volatile; NVRAM (the core's job)
	// rechecks it in via ResumeRebuild.
	a.CrashRebuildState()
	if a.RebuildActive() {
		t.Fatal("rebuild survived CrashRebuildState")
	}
	if err := a.ResumeRebuild(-1, 0); !errors.Is(err, raid.ErrBadGeometry) {
		t.Fatalf("resume bad disk: %v", err)
	}
	if err := a.ResumeRebuild(1, -5); !errors.Is(err, raid.ErrBadGeometry) {
		t.Fatalf("resume bad watermark: %v", err)
	}
	if err := a.ResumeRebuild(1, 256); err != nil || a.RebuildActive() {
		t.Fatalf("at-end watermark must close the window: %v", err)
	}
	if err := a.ResumeRebuild(1, watermark); err != nil {
		t.Fatal(err)
	}
	for a.RebuildActive() {
		if _, _, _, err := a.RebuildStep(0, 64); err != nil {
			t.Fatal(err)
		}
	}
	if a.Stats().RebuildsCompleted != 1 {
		t.Fatalf("stats: %+v", a.Stats())
	}
	buf := make([]byte, blockdev.PageSize)
	a.FailDisk(3) // prove the resumed rebuild left member 1 byte-correct
	for lba := int64(0); lba < 96; lba++ {
		if _, err := a.ReadPages(0, lba, 1, buf); err != nil {
			t.Fatalf("read %d: %v", lba, err)
		}
		if !bytes.Equal(buf, want[lba]) {
			t.Fatalf("lba %d wrong after resumed rebuild", lba)
		}
	}
	// Resuming onto a failed member is a no-op, not an error.
	if err := a.ResumeRebuild(3, 10); err != nil || a.RebuildActive() {
		t.Fatalf("resume onto failed member: %v active=%v", err, a.RebuildActive())
	}
}

// TestRebuildSecondFaultIsLoud fails a second member mid-rebuild: the
// step must surface ErrUnrecoverable and map the loss to logical pages.
func TestRebuildSecondFaultIsLoud(t *testing.T) {
	a := testArray(t, 4, 256, 8)
	fillCommitted(t, a, 96)
	a.FailDisk(1)
	if _, err := a.StartRebuild(0, 1, blockdev.NewNullDataDevice("fresh", 256)); err != nil {
		t.Fatal(err)
	}
	a.FailDisk(2)
	_, _, _, err := a.RebuildStep(0, 256)
	if !errors.Is(err, raid.ErrUnrecoverable) {
		t.Fatalf("rebuild with second failure: %v", err)
	}
	if a.Stats().LostPages == 0 {
		t.Fatal("second-fault loss not accounted")
	}
}
