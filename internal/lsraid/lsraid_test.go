package lsraid

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"kddcache/internal/blockdev"
	"kddcache/internal/raid"
	"kddcache/internal/sim"
)

// testArray builds a small data-mode log over nDisks members of
// diskPages pages each, with aggressive GC pressure (small segments).
func testArray(t *testing.T, nDisks int, diskPages, segRows int64) *Array {
	t.Helper()
	var members []blockdev.Device
	for i := 0; i < nDisks; i++ {
		members = append(members, blockdev.NewNullDataDevice(fmt.Sprintf("d%d", i), diskPages))
	}
	a, err := New(Config{ChunkPages: 4, SegRows: segRows, Seed: 1}, members)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func pageOf(lba int64, version int) []byte {
	p := make([]byte, blockdev.PageSize)
	for i := range p {
		p[i] = byte(int(lba)*31 + version*7 + i)
	}
	return p
}

// TestWriteReadOverwriteGC drives enough overwrite traffic through a
// small log to force many GC passes, model-checking every read and the
// accounting invariant along the way.
func TestWriteReadOverwriteGC(t *testing.T) {
	for _, policy := range []GCPolicy{GCGreedy, GCCostBenefit} {
		policy := policy
		t.Run(fmt.Sprintf("policy%d", policy), func(t *testing.T) {
			a := testArray(t, 4, 256, 8)
			a.cfg.Policy = policy
			rng := sim.NewRNG(42)
			footprint := int64(96)
			version := make(map[int64]int)
			var tt sim.Time
			for op := 0; op < 6000; op++ {
				lba := int64(rng.Uint64n(uint64(footprint)))
				if rng.Float64() < 0.65 {
					version[lba]++
					done, err := a.WritePages(tt, lba, 1, pageOf(lba, version[lba]))
					if err != nil {
						t.Fatalf("op %d: write %d: %v", op, lba, err)
					}
					tt = done
				} else {
					buf := make([]byte, blockdev.PageSize)
					done, err := a.ReadPages(tt, lba, 1, buf)
					if err != nil {
						t.Fatalf("op %d: read %d: %v", op, lba, err)
					}
					tt = done
					want := make([]byte, blockdev.PageSize)
					if v := version[lba]; v > 0 {
						want = pageOf(lba, v)
					}
					if !bytes.Equal(buf, want) {
						t.Fatalf("op %d: read %d returned wrong bytes", op, lba)
					}
				}
				if op%500 == 0 {
					if err := a.CheckInvariants(); err != nil {
						t.Fatalf("op %d: %v", op, err)
					}
				}
			}
			if err := a.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if a.Stats().GCSegments == 0 {
				t.Fatal("workload never triggered GC; test is not exercising the collector")
			}
			// Full content sweep.
			buf := make([]byte, blockdev.PageSize)
			for lba := int64(0); lba < footprint; lba++ {
				if _, err := a.ReadPages(tt, lba, 1, buf); err != nil {
					t.Fatalf("sweep read %d: %v", lba, err)
				}
				want := make([]byte, blockdev.PageSize)
				if v := version[lba]; v > 0 {
					want = pageOf(lba, v)
				}
				if !bytes.Equal(buf, want) {
					t.Fatalf("sweep read %d wrong bytes", lba)
				}
			}
		})
	}
}

// TestGCNeverCopiesDeadPage is the first lsraid property from the issue:
// every page the collector copies forward must be the CURRENT version of
// its LBA at copy time. Copying a dead (superseded) page would resurrect
// stale data.
func TestGCNeverCopiesDeadPage(t *testing.T) {
	a := testArray(t, 4, 256, 8)
	version := make(map[int64]int)
	bad := 0
	gcCopyHook = func(lba int64, data []byte) {
		want := pageOf(lba, version[lba])
		if !bytes.Equal(data, want) {
			bad++
			t.Errorf("GC copied a dead version of lba %d", lba)
		}
	}
	defer func() { gcCopyHook = nil }()
	rng := sim.NewRNG(7)
	var tt sim.Time
	// The footprint must stay close to the logical capacity so victim
	// segments still hold live pages when the collector fires.
	for op := 0; op < 8000 && bad == 0; op++ {
		lba := int64(rng.Uint64n(uint64(a.Pages() * 3 / 4)))
		version[lba]++
		done, err := a.WritePages(tt, lba, 1, pageOf(lba, version[lba]))
		if err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
		tt = done
	}
	if a.Stats().GCCopies == 0 {
		t.Fatal("workload never made GC copy a live page; property untested")
	}
}

// TestCrashReplayEveryTornSite is the second lsraid property: the L2P
// map must round-trip through crash + replay for every enumerated
// member torn-write site. Member pages are write-atomic (TornPages=0),
// so a crash mid-flush persists nothing of the in-flight page; staging
// precedes member I/O, so the staged (new) version must win after
// replay, for every site, idempotently.
func TestCrashReplayEveryTornSite(t *testing.T) {
	const (
		disks   = 4
		dpages  = 128
		segRows = 8
		fp      = 48
		ops     = 300
	)
	runOps := func(a *Array, version map[int64]int) {
		rng := sim.NewRNG(99)
		var tt sim.Time
		for op := 0; op < ops; op++ {
			lba := int64(rng.Uint64n(fp))
			version[lba]++
			done, err := a.WritePages(tt, lba, 1, pageOf(lba, version[lba]))
			if err != nil {
				if errors.Is(err, blockdev.ErrCrashed) {
					return // crash site fired; stop like a dying node
				}
				panic(err)
			}
			tt = done
		}
	}

	// Profile run: record member op traces.
	prof := testArray(t, disks, dpages, segRows)
	for i := 0; i < disks; i++ {
		prof.Injector(i).RecordOps(true)
	}
	runOps(prof, map[int64]int{})

	sites := 0
	for d := 0; d < disks; d++ {
		for _, fs := range blockdev.EnumerateSites(prof.Injector(d).Recorded(), uint64(d)) {
			if fs.Kind != blockdev.FaultCrashTorn {
				continue
			}
			fs.TornPages, fs.TornBytes = 0, 0 // member pages are write-atomic
			sites++
			a := testArray(t, disks, dpages, segRows)
			a.Injector(d).Arm(fs)
			version := make(map[int64]int)
			runOps(a, version)
			for i := 0; i < disks; i++ {
				a.Injector(i).ClearCrash()
			}
			a.CrashRebuildState() // wipe + replay from NVRAM
			d1 := a.StateDigest()
			a.CrashRebuildState()
			if d2 := a.StateDigest(); d1 != d2 {
				t.Fatalf("site disk%d %s: replay not idempotent: %016x vs %016x", d, fs, d1, d2)
			}
			if err := a.CheckInvariants(); err != nil {
				t.Fatalf("site disk%d %s: %v", d, fs, err)
			}
			// Every write acked at staging time (i.e. all of them,
			// including the in-flight one) must read back current.
			buf := make([]byte, blockdev.PageSize)
			for lba := int64(0); lba < fp; lba++ {
				if _, err := a.ReadPages(0, lba, 1, buf); err != nil {
					t.Fatalf("site disk%d %s: read %d: %v", d, fs, lba, err)
				}
				want := make([]byte, blockdev.PageSize)
				if v := version[lba]; v > 0 {
					want = pageOf(lba, v)
				}
				if !bytes.Equal(buf, want) {
					t.Fatalf("site disk%d %s: lba %d wrong bytes after replay", d, fs, lba)
				}
			}
		}
	}
	if sites == 0 {
		t.Fatal("no member torn-write sites enumerated; profile run recorded nothing")
	}
}

// TestAccountingInvariantRandomOps is the third lsraid property:
// live + dead + free == capacity (plus the full derived-state
// cross-check) after arbitrary op sequences, across several seeds.
func TestAccountingInvariantRandomOps(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			a := testArray(t, 5, 200, 5)
			rng := sim.NewRNG(seed)
			var tt sim.Time
			buf := make([]byte, blockdev.PageSize)
			for op := 0; op < 3000; op++ {
				lba := int64(rng.Uint64n(120))
				var err error
				switch {
				case rng.Float64() < 0.55:
					_, err = a.WritePages(tt, lba, 1, pageOf(lba, op))
				case rng.Float64() < 0.5:
					_, err = a.ReadPages(tt, lba, 1, buf)
				default:
					// Row write through the logical geometry.
					peers := a.RowPeers(lba)
					row := make([]byte, len(peers)*blockdev.PageSize)
					ok := true
					for _, p := range peers {
						if p >= a.Pages() {
							ok = false
						}
					}
					if !ok {
						continue
					}
					_, err = a.WriteRow(tt, peers[0], row)
				}
				if err != nil {
					t.Fatalf("op %d: %v", op, err)
				}
				if op%250 == 0 {
					if err := a.CheckInvariants(); err != nil {
						t.Fatalf("op %d: %v", op, err)
					}
				}
			}
			if err := a.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDegradedReadAndRebuild kills a member, proves reconstruction
// serves the full footprint, rebuilds onto a hot spare, and proves
// direct reads again.
func TestDegradedReadAndRebuild(t *testing.T) {
	a := testArray(t, 4, 256, 8)
	if err := a.AddSpare(blockdev.NewNullDataDevice("spare", 256)); err != nil {
		t.Fatal(err)
	}
	version := make(map[int64]int)
	rng := sim.NewRNG(3)
	var tt sim.Time
	for op := 0; op < 2000; op++ {
		lba := int64(rng.Uint64n(64))
		version[lba]++
		done, err := a.WritePages(tt, lba, 1, pageOf(lba, version[lba]))
		if err != nil {
			t.Fatal(err)
		}
		tt = done
	}
	check := func(stage string) {
		buf := make([]byte, blockdev.PageSize)
		for lba := int64(0); lba < 64; lba++ {
			if _, err := a.ReadPages(tt, lba, 1, buf); err != nil {
				t.Fatalf("%s: read %d: %v", stage, lba, err)
			}
			want := make([]byte, blockdev.PageSize)
			if v := version[lba]; v > 0 {
				want = pageOf(lba, v)
			}
			if !bytes.Equal(buf, want) {
				t.Fatalf("%s: lba %d wrong bytes", stage, lba)
			}
		}
	}
	a.FailDisk(2)
	if a.Healthy() {
		t.Fatal("healthy after FailDisk")
	}
	if !a.Survivable() {
		t.Fatal("single failure must be survivable")
	}
	check("degraded")
	// Writes must keep flowing while degraded.
	for op := 0; op < 500; op++ {
		lba := int64(rng.Uint64n(64))
		version[lba]++
		done, err := a.WritePages(tt, lba, 1, pageOf(lba, version[lba]))
		if err != nil {
			t.Fatalf("degraded write: %v", err)
		}
		tt = done
	}
	check("degraded-after-writes")
	_, started, err := a.StartSpareRebuild(tt)
	if err != nil || !started {
		t.Fatalf("spare rebuild: started=%v err=%v", started, err)
	}
	// Interleave rebuild steps with foreground writes.
	for a.RebuildActive() {
		if _, _, _, err := a.RebuildStep(tt, 16); err != nil {
			t.Fatalf("rebuild step: %v", err)
		}
		lba := int64(rng.Uint64n(64))
		version[lba]++
		done, err := a.WritePages(tt, lba, 1, pageOf(lba, version[lba]))
		if err != nil {
			t.Fatalf("write during rebuild: %v", err)
		}
		tt = done
	}
	if !a.Healthy() {
		t.Fatal("not healthy after rebuild completed")
	}
	check("rebuilt")
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The rebuilt member must be byte-correct: fail a DIFFERENT member
	// and reconstruct through the rebuilt one.
	a.FailDisk(0)
	check("degraded-through-rebuilt")
	if got := a.Stats(); got.RebuildsCompleted != 1 || got.SpareAttaches != 1 {
		t.Fatalf("stats: %+v", got)
	}
}

// TestMediaErrorReadRepair injects a latent media fault under a mapped
// page and proves the read reconstructs, repairs in place, and clears
// the fault.
func TestMediaErrorReadRepair(t *testing.T) {
	a := testArray(t, 4, 256, 8)
	version := map[int64]int{}
	var tt sim.Time
	for lba := int64(0); lba < 24; lba++ {
		version[lba] = 1
		done, err := a.WritePages(tt, lba, 1, pageOf(lba, 1))
		if err != nil {
			t.Fatal(err)
		}
		tt = done
	}
	// Find a committed page and fault it.
	var victim int64 = -1
	var vdisk int
	var vrow int64
	for lba := int64(0); lba < 24; lba++ {
		if d, row := a.DataLocation(lba); d >= 0 {
			victim, vdisk, vrow = lba, d, row
			break
		}
	}
	if victim < 0 {
		t.Fatal("no committed page found")
	}
	a.Injector(vdisk).InjectBadPage(vrow)
	buf := make([]byte, blockdev.PageSize)
	if _, err := a.ReadPages(tt, victim, 1, buf); err != nil {
		t.Fatalf("read with latent fault: %v", err)
	}
	if !bytes.Equal(buf, pageOf(victim, 1)) {
		t.Fatal("reconstructed read returned wrong bytes")
	}
	if a.Stats().ReadRepairs == 0 {
		t.Fatal("read did not repair in place")
	}
	if a.Injector(vdisk).BadPages() != 0 {
		t.Fatal("repair did not clear the latent fault")
	}
	// Direct read now succeeds without reconstruction.
	before := a.Stats().DegradedRead
	if _, err := a.ReadPages(tt, victim, 1, buf); err != nil {
		t.Fatal(err)
	}
	if a.Stats().DegradedRead != before {
		t.Fatal("repaired page still reads degraded")
	}
}

// TestScrubRepairsLatentFaults seeds latent faults across members and
// proves a patrol scrub clears them all.
func TestScrubRepairsLatentFaults(t *testing.T) {
	a := testArray(t, 4, 256, 8)
	var tt sim.Time
	for lba := int64(0); lba < 48; lba++ {
		done, err := a.WritePages(tt, lba, 1, pageOf(lba, 1))
		if err != nil {
			t.Fatal(err)
		}
		tt = done
	}
	faults := 0
	for lba := int64(0); lba < 48 && faults < 5; lba += 11 {
		if d, row := a.DataLocation(lba); d >= 0 {
			a.Injector(d).InjectBadPage(row)
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("no faults injected")
	}
	_, rep, err := a.Scrub(tt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MediaRepaired < int64(faults) {
		t.Fatalf("scrub repaired %d of %d faults", rep.MediaRepaired, faults)
	}
	if len(rep.Unrecoverable) != 0 {
		t.Fatalf("scrub reported unrecoverable rows %v", rep.Unrecoverable)
	}
	for d := 0; d < 4; d++ {
		if a.Injector(d).BadPages() != 0 {
			t.Fatalf("disk %d still has latent faults after scrub", d)
		}
	}
	buf := make([]byte, blockdev.PageSize)
	for lba := int64(0); lba < 48; lba++ {
		if _, err := a.ReadPages(tt, lba, 1, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, pageOf(lba, 1)) {
			t.Fatalf("lba %d wrong after scrub", lba)
		}
	}
}

// TestParityProtocolIsFree asserts the delayed-parity surface is inert:
// no stale rows, no-op parity updates, idempotent resync.
func TestParityProtocolIsFree(t *testing.T) {
	a := testArray(t, 4, 256, 8)
	var tt sim.Time
	if _, err := a.WriteNoParity(tt, 3, 1, pageOf(3, 1)); err != nil {
		t.Fatal(err)
	}
	if a.StaleRows() != 0 {
		t.Fatal("log-structured backend reported stale parity")
	}
	if _, err := a.ParityUpdateDelta(tt, []int64{3}, [][]byte{make([]byte, blockdev.PageSize)}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ParityUpdateDeltaBatch(tt, []raid.RowFix{}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ResyncRow(tt, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Resync(tt); err != nil {
		t.Fatal(err)
	}
}

// TestOutOfRange checks the address guard rails.
func TestOutOfRange(t *testing.T) {
	a := testArray(t, 4, 256, 8)
	buf := make([]byte, blockdev.PageSize)
	if _, err := a.ReadPages(0, a.Pages(), 1, buf); !errors.Is(err, blockdev.ErrOutOfRange) {
		t.Fatalf("read past end: %v", err)
	}
	if _, err := a.WritePages(0, a.Pages(), 1, buf); !errors.Is(err, blockdev.ErrOutOfRange) {
		t.Fatalf("write past end: %v", err)
	}
}

// TestSummaryCodecRoundTrip unit-tests the codec directly (the fuzz
// target explores hostile inputs).
func TestSummaryCodecRoundTrip(t *testing.T) {
	cases := []struct {
		seq  uint64
		rows int64
		lbas []int64
	}{
		{0, 0, nil},
		{1, 0, nil},
		{7, 2, []int64{5, 9, 1, 0, 1 << 40, 3}},
		{1 << 60, 1, []int64{0, 0, 0}},
	}
	for i, c := range cases {
		enc := encodeSummaryOf(c.seq, c.rows, c.lbas)
		dec, err := DecodeSummary(enc)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if dec.Seq != c.seq || dec.Rows != c.rows || len(dec.LBAs) != len(c.lbas) {
			t.Fatalf("case %d: round-trip mismatch: %+v", i, dec)
		}
		for j := range c.lbas {
			if dec.LBAs[j] != c.lbas[j] {
				t.Fatalf("case %d: lba %d mismatch", i, j)
			}
		}
		// A flipped byte must be rejected (CRC).
		mut := append([]byte(nil), enc...)
		mut[len(mut)/2] ^= 0x40
		if _, err := DecodeSummary(mut); err == nil {
			t.Fatalf("case %d: corrupted summary decoded cleanly", i)
		}
	}
	if _, err := DecodeSummary(nil); err == nil {
		t.Fatal("nil summary decoded cleanly")
	}
}

// TestTimingMode runs the engine with nil buffers over timing-mode
// members: bookkeeping must hold without any byte payloads.
func TestTimingMode(t *testing.T) {
	var members []blockdev.Device
	for i := 0; i < 4; i++ {
		members = append(members, blockdev.NewNullDevice(fmt.Sprintf("d%d", i), 256))
	}
	a, err := New(Config{ChunkPages: 4, SegRows: 8}, members)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(11)
	var tt sim.Time
	for op := 0; op < 4000; op++ {
		lba := int64(rng.Uint64n(96))
		if rng.Float64() < 0.7 {
			done, err := a.WritePages(tt, lba, 1, nil)
			if err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			tt = done
		} else {
			done, err := a.ReadPages(tt, lba, 1, nil)
			if err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			tt = done
		}
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if a.Stats().GCSegments == 0 {
		t.Fatal("timing-mode workload never triggered GC")
	}
}
