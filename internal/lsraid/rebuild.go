package lsraid

import (
	"errors"
	"fmt"

	"kddcache/internal/blockdev"
	"kddcache/internal/obs"
	"kddcache/internal/raid"
	"kddcache/internal/sim"
)

// The rebuild state machine mirrors internal/raid's: a volatile row
// watermark routes reads/writes (missing() treats un-rebuilt rows of the
// target as absent), core checkpoints the watermark in NVRAM and resumes
// it after a crash via ResumeRebuild, and CrashRebuildState forgets it.
// The log-structured twist: only committed rows carry meaning, so the
// rebuild reconstructs exactly those and skips free/uncommitted rows —
// a mostly-empty log rebuilds in proportion to its live data, not its
// raw capacity.

type rebuildState struct {
	disk int
	next int64 // watermark: rows [0, next) are reconstructed
}

// AddSpare parks a hot-spare device for automatic attachment.
func (a *Array) AddSpare(dev blockdev.Device) error {
	if dev.Pages() != a.diskPages {
		return fmt.Errorf("%w: spare size mismatch", raid.ErrBadGeometry)
	}
	a.spares = append(a.spares, dev)
	return nil
}

// SpareCount returns the number of parked hot spares.
func (a *Array) SpareCount() int { return len(a.spares) }

// RebuildActive reports whether a member rebuild is in progress.
func (a *Array) RebuildActive() bool { return a.rebuild != nil }

// RebuildTarget returns the member being rebuilt and its row watermark.
func (a *Array) RebuildTarget() (disk int, watermark int64, active bool) {
	if a.rebuild == nil {
		return 0, 0, false
	}
	return a.rebuild.disk, a.rebuild.next, true
}

// StartRebuild swaps failed member i for a fresh device and opens the
// rebuild window at row 0. The log owes no parity, so unlike the parity
// engine there is no resync precondition.
func (a *Array) StartRebuild(t sim.Time, i int, fresh blockdev.Device) (sim.Time, error) {
	if !a.disks[i].Failed() {
		return t, raid.ErrNotDegraded
	}
	if a.rebuild != nil {
		return t, fmt.Errorf("lsraid: rebuild of disk %d already in progress", a.rebuild.disk)
	}
	if fresh.Pages() != a.diskPages {
		return t, fmt.Errorf("%w: replacement size mismatch", raid.ErrBadGeometry)
	}
	a.disks[i].Repair(fresh)
	a.failed--
	a.rebuild = &rebuildState{disk: i, next: 0}
	a.stats.RebuildsStarted++
	return t, nil
}

// StartSpareRebuild attaches a parked hot spare to the lowest-numbered
// failed member and opens its rebuild window.
func (a *Array) StartSpareRebuild(t sim.Time) (done sim.Time, started bool, err error) {
	if a.rebuild != nil || a.failed == 0 || len(a.spares) == 0 {
		return t, false, nil
	}
	target := -1
	for i, d := range a.disks {
		if d.Failed() {
			target = i
			break
		}
	}
	if target < 0 {
		return t, false, nil
	}
	spare := a.spares[0]
	a.spares = a.spares[1:]
	done, err = a.StartRebuild(t, target, spare)
	if err != nil {
		a.spares = append([]blockdev.Device{spare}, a.spares...)
		return t, false, err
	}
	a.stats.SpareAttaches++
	return done, true, nil
}

// ResumeRebuild re-opens a rebuild window from an NVRAM checkpoint after
// a crash, with the same tolerance rules as the parity engine: resuming
// onto a member that has since failed is a no-op, and an at-or-past-end
// watermark closes the window.
func (a *Array) ResumeRebuild(disk int, watermark int64) error {
	if disk < 0 || disk >= len(a.disks) {
		return fmt.Errorf("%w: rebuild checkpoint names disk %d of %d", raid.ErrBadGeometry, disk, len(a.disks))
	}
	if watermark < 0 || watermark > a.diskPages {
		return fmt.Errorf("%w: rebuild checkpoint watermark %d outside [0,%d]", raid.ErrBadGeometry, watermark, a.diskPages)
	}
	if a.disks[disk].Failed() {
		return nil
	}
	if watermark >= a.diskPages {
		a.rebuild = nil
		return nil
	}
	a.rebuild = &rebuildState{disk: disk, next: watermark}
	return nil
}

// CrashRebuildState models power loss: the volatile rebuild watermark is
// forgotten, and the derived L2P/liveness state is rebuilt by replaying
// the NVRAM segment summaries and staged row buffer.
func (a *Array) CrashRebuildState() {
	a.rebuild = nil
	a.replay()
}

// RebuildStep reconstructs up to maxRows member rows of the active
// rebuild and advances the watermark. Uncommitted rows are skipped
// without I/O: nothing references them, and the fresh device's zeros
// are as good as any content there.
func (a *Array) RebuildStep(t sim.Time, maxRows int) (done sim.Time, rowsDone int, complete bool, err error) {
	if a.rebuild == nil {
		return t, 0, true, nil
	}
	if a.tr != nil {
		sp := a.tr.BeginDev(t, obs.PhaseRebuild, a.Name(), a.rebuild.next, maxRows)
		defer func() { sp.End(done) }()
	}
	done = t
	target := a.rebuild.disk
	for rowsDone < maxRows && a.rebuild != nil && a.rebuild.next < a.diskPages {
		row := a.rebuild.next
		if a.segRowCommitted(row) {
			c, rerr := a.rebuildRow(t, target, row)
			if rerr != nil {
				return done, rowsDone, false, rerr
			}
			done = sim.MaxTime(done, c)
			t = c
			a.stats.RebuildBytes += blockdev.PageSize
		}
		a.rebuild.next = row + 1
		rowsDone++
		a.stats.RebuildRows++
	}
	if a.rebuild != nil && a.rebuild.next >= a.diskPages {
		a.rebuild = nil
		a.stats.RebuildsCompleted++
	}
	return done, rowsDone, a.rebuild == nil, nil
}

// rebuildRow reconstructs the target member's page at row (XOR of every
// other member's page — valid for data and parity slots alike) and
// writes it onto the target.
func (a *Array) rebuildRow(t sim.Time, target int, row int64) (sim.Time, error) {
	var acc, tmp []byte
	if a.dataMode {
		acc = blockdev.GetZeroPage()
		defer blockdev.PutPage(acc)
		tmp = blockdev.GetPage()
		defer blockdev.PutPage(tmp)
	}
	done := t
	for d := range a.disks {
		if d == target {
			continue
		}
		if a.disks[d].Failed() {
			return done, a.rebuildLoss(target, row, raid.ErrTooManyFailures)
		}
		a.stats.RebuildReads++
		c, err := a.memberRead(t, d, row, tmp)
		if err != nil {
			return done, a.rebuildLoss(target, row, err)
		}
		done = sim.MaxTime(done, c)
		if acc != nil {
			xorInto(acc, tmp)
		}
	}
	a.stats.RebuildWrite++
	c, err := a.disks[target].WritePages(done, row, 1, acc)
	if err != nil {
		return done, err
	}
	return c, nil
}

// rebuildLoss maps a second fault during row reconstruction onto the
// logical pages stored in that row, so the loss is loud and attributable.
// Crash signals pass through untouched — recovery, not loss.
func (a *Array) rebuildLoss(target int, row int64, cause error) error {
	if errors.Is(cause, blockdev.ErrCrashed) {
		return cause
	}
	seg := row / a.cfg.SegRows
	base := (row % a.cfg.SegRows) * int64(a.dc())
	m := &a.segs[seg]
	for k := 0; k < a.dc(); k++ {
		if base+int64(k) < int64(len(m.LBAs)) {
			lba := m.LBAs[base+int64(k)]
			if cur, ok := a.l2p[lba]; ok && cur.seg == int32(seg) && int64(cur.idx) == base+int64(k) && !a.lost[lba] {
				a.lost[lba] = true
				a.stats.LostPages++
			}
		}
	}
	return fmt.Errorf("%w: row %d hit a second fault during rebuild: %v", raid.ErrUnrecoverable, row, cause)
}

// ReplaceDisk performs an offline (blocking) replace-and-rebuild of
// member i, the administrative path CLIs use.
func (a *Array) ReplaceDisk(t sim.Time, i int, fresh blockdev.Device) (sim.Time, error) {
	done, err := a.StartRebuild(t, i, fresh)
	if err != nil {
		return t, err
	}
	t = done
	for a.rebuild != nil {
		c, _, _, err := a.RebuildStep(t, 1024)
		if err != nil {
			return t, err
		}
		done = sim.MaxTime(done, c)
		t = c
	}
	return done, nil
}
