package hdd

import (
	"testing"

	"kddcache/internal/obs"
)

// TestTracerAndMetrics attaches a tracer to a disk and checks span
// balance plus the per-disk labelled metrics.
func TestTracerAndMetrics(t *testing.T) {
	d := New("hdd7", testCfg(), 1)
	dig := obs.NewDigest()
	tr := obs.NewTracer(dig)
	d.SetTracer(tr)

	if _, err := d.WritePages(0, 0, 8, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadPages(0, 0, 8, nil); err != nil {
		t.Fatal(err)
	}

	if err := tr.Err(); err != nil {
		t.Fatalf("trace integrity: %v", err)
	}
	if n := tr.OpenSpans(); n != 0 {
		t.Fatalf("%d spans left open", n)
	}
	if dig.Spans() != 2 {
		t.Fatalf("sink saw %d spans, want 2", dig.Spans())
	}

	reg := obs.NewRegistry()
	d.PublishMetrics(reg)
	if err := reg.Validate(); err != nil {
		t.Fatal(err)
	}
	if v, ok := reg.Counter(`hdd_reads_total{disk="hdd7"}`); !ok || v != 1 {
		t.Fatalf(`hdd_reads_total{disk="hdd7"} = %d,%v, want 1,true`, v, ok)
	}
	if v, ok := reg.Counter(`hdd_busy_ns_total{disk="hdd7"}`); !ok || v == 0 {
		t.Fatalf("hdd_busy_ns_total = %d,%v, want >0", v, ok)
	}
}
