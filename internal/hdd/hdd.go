// Package hdd models a 7,200 RPM magnetic disk, the primary-storage device
// in the paper's testbed (15× 1TB 7.2k drives behind Linux MD RAID-5).
//
// The model captures the three latency components that make the RAID
// small-write problem expensive — seek, rotation, and media transfer —
// plus sequential-stream detection. The paper disables drive look-ahead
// and the volatile write cache with hdparm, so there is no on-drive
// caching to model: every request pays for real mechanical positioning.
//
// Positioning model: the head position is tracked as the last-accessed
// LBA. Seek time follows the usual square-root-of-distance curve between
// track-to-track and full-stroke values. Rotational delay is uniform in
// [0, one revolution) drawn from a seeded RNG, except for sequential hits
// where both seek and rotation are skipped.
package hdd

import (
	"fmt"

	"kddcache/internal/blockdev"
	"kddcache/internal/obs"
	"kddcache/internal/sim"
)

// Config describes a disk model. The zero value is not usable; start from
// DefaultConfig.
type Config struct {
	Pages int64 // capacity in 4KB pages

	RPM            int      // spindle speed
	TrackToTrack   sim.Time // minimum seek
	FullStroke     sim.Time // maximum seek
	TransferMBps   float64  // sustained media rate
	SeqWindowPages int64    // LBA distance treated as sequential continuation
}

// DefaultConfig returns the 1TB 7,200 RPM drive used in §IV-B.
func DefaultConfig(pages int64) Config {
	return Config{
		Pages:          pages,
		RPM:            7200,
		TrackToTrack:   800 * sim.Microsecond,
		FullStroke:     17 * sim.Millisecond,
		TransferMBps:   150,
		SeqWindowPages: 8,
	}
}

// Disk is a single HDD with a FIFO queue.
type Disk struct {
	name string
	cfg  Config
	q    *sim.Station
	rng  *sim.RNG

	store *blockdev.MemStore // nil in timing mode

	headLBA  int64 // last accessed LBA, for seek distance
	lastEnd  int64 // LBA one past the previous access, for sequentiality
	revTime  sim.Time
	pageXfer sim.Time

	reads, writes   int64
	seqHits         int64
	totalServiceOps int64

	tr *obs.Tracer
}

// SetTracer installs a span tracer (nil disables tracing). Accesses appear
// as dev_read/dev_write spans carrying the disk name.
func (d *Disk) SetTracer(tr *obs.Tracer) { d.tr = tr }

// New returns a timing-mode disk. seed makes rotational delays reproducible.
func New(name string, cfg Config, seed uint64) *Disk {
	return newDisk(name, cfg, seed, nil)
}

// NewData returns a data-mode disk backed by an in-memory store.
func NewData(name string, cfg Config, seed uint64) *Disk {
	return newDisk(name, cfg, seed, blockdev.NewMemStore(cfg.Pages))
}

func newDisk(name string, cfg Config, seed uint64, store *blockdev.MemStore) *Disk {
	if cfg.Pages <= 0 || cfg.RPM <= 0 || cfg.TransferMBps <= 0 {
		panic(fmt.Sprintf("hdd: invalid config %+v", cfg))
	}
	revTime := sim.Time(60.0 / float64(cfg.RPM) * float64(sim.Second))
	bytesPerSec := cfg.TransferMBps * 1e6
	pageXfer := sim.Time(float64(blockdev.PageSize) / bytesPerSec * float64(sim.Second))
	return &Disk{
		name:     name,
		cfg:      cfg,
		q:        sim.NewStation(name, 1),
		rng:      sim.NewRNG(seed),
		store:    store,
		revTime:  revTime,
		pageXfer: pageXfer,
		headLBA:  0,
		lastEnd:  -1,
	}
}

// Name implements blockdev.Device.
func (d *Disk) Name() string { return d.name }

// Pages implements blockdev.Device.
func (d *Disk) Pages() int64 { return d.cfg.Pages }

// Reads returns the number of read operations serviced.
func (d *Disk) Reads() int64 { return d.reads }

// Writes returns the number of write operations serviced.
func (d *Disk) Writes() int64 { return d.writes }

// SeqHits returns how many operations were serviced as sequential
// continuations (no seek, no rotation).
func (d *Disk) SeqHits() int64 { return d.seqHits }

// BusyTime returns total service time issued on the disk arm.
func (d *Disk) BusyTime() sim.Time { return d.q.BusyTime() }

// Store exposes the backing store (nil in timing mode).
func (d *Disk) Store() *blockdev.MemStore { return d.store }

// seekTime returns the seek latency for moving the head `dist` pages.
func (d *Disk) seekTime(dist int64) sim.Time {
	if dist < 0 {
		dist = -dist
	}
	if dist == 0 {
		return 0
	}
	// t = min + (max-min) * sqrt(d / capacity)
	frac := float64(dist) / float64(d.cfg.Pages)
	if frac > 1 {
		frac = 1
	}
	span := float64(d.cfg.FullStroke - d.cfg.TrackToTrack)
	return d.cfg.TrackToTrack + sim.Time(span*sqrt(frac))
}

// sqrt avoids importing math for a single call site; Newton's method is
// plenty for latency modelling and keeps the package dependency-light.
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 24; i++ {
		z -= (z*z - x) / (2 * z)
	}
	return z
}

// serviceTime computes positioning+transfer time for an access and updates
// head state.
func (d *Disk) serviceTime(lba int64, count int) sim.Time {
	var pos sim.Time
	if d.lastEnd >= 0 && lba >= d.lastEnd && lba-d.lastEnd <= d.cfg.SeqWindowPages {
		// Sequential continuation: no seek, negligible rotation.
		d.seqHits++
	} else {
		pos = d.seekTime(lba - d.headLBA)
		// Uniform rotational latency in [0, revolution).
		pos += sim.Time(d.rng.Float64() * float64(d.revTime))
	}
	xfer := sim.Time(int64(count)) * d.pageXfer
	d.headLBA = lba + int64(count) - 1
	d.lastEnd = lba + int64(count)
	d.totalServiceOps++
	return pos + xfer
}

// ReadPages implements blockdev.Device.
func (d *Disk) ReadPages(t sim.Time, lba int64, count int, buf []byte) (done sim.Time, err error) {
	if err := blockdev.CheckRange(lba, count, d.cfg.Pages); err != nil {
		return t, err
	}
	if err := blockdev.CheckBuf(buf, count); err != nil {
		return t, err
	}
	// Explicit End instead of a deferred closure: this is a hot traced
	// function and the defer setup is measurable per call.
	var sp obs.Span
	if d.tr != nil {
		sp = d.tr.BeginDev(t, obs.PhaseDevRead, d.name, lba, count)
	}
	d.reads++
	if d.store != nil && buf != nil {
		for i := 0; i < count; i++ {
			d.store.ReadPage(lba+int64(i), buf[i*blockdev.PageSize:(i+1)*blockdev.PageSize])
		}
	}
	done = d.q.Submit(t, d.serviceTime(lba, count))
	if d.tr != nil {
		sp.End(done)
	}
	return done, nil
}

// WritePages implements blockdev.Device.
func (d *Disk) WritePages(t sim.Time, lba int64, count int, buf []byte) (done sim.Time, err error) {
	if err := blockdev.CheckRange(lba, count, d.cfg.Pages); err != nil {
		return t, err
	}
	if err := blockdev.CheckBuf(buf, count); err != nil {
		return t, err
	}
	var sp obs.Span
	if d.tr != nil {
		sp = d.tr.BeginDev(t, obs.PhaseDevWrite, d.name, lba, count)
	}
	d.writes++
	if d.store != nil && buf != nil {
		for i := 0; i < count; i++ {
			d.store.WritePage(lba+int64(i), buf[i*blockdev.PageSize:(i+1)*blockdev.PageSize])
		}
	}
	done = d.q.Submit(t, d.serviceTime(lba, count))
	if d.tr != nil {
		sp.End(done)
	}
	return done, nil
}

// PublishMetrics writes the disk's service counters into reg, labelled by
// disk name so arrays of members stay distinguishable.
func (d *Disk) PublishMetrics(reg *obs.Registry) {
	l := "{disk=\"" + d.name + "\"}"
	reg.SetCounter("hdd_reads_total"+l, "Read operations serviced.", d.reads)
	reg.SetCounter("hdd_writes_total"+l, "Write operations serviced.", d.writes)
	reg.SetCounter("hdd_seq_hits_total"+l, "Operations serviced as sequential continuations.", d.seqHits)
	reg.SetCounter("hdd_busy_ns_total"+l, "Total arm service time in virtual nanoseconds.", int64(d.q.BusyTime()))
}

var _ blockdev.Device = (*Disk)(nil)
