package hdd

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"kddcache/internal/blockdev"
	"kddcache/internal/sim"
)

func testCfg() Config { return DefaultConfig(1 << 20) } // 4GB disk

func TestRandomAccessLatencyRange(t *testing.T) {
	d := New("hdd0", testCfg(), 1)
	rng := sim.NewRNG(2)
	var now sim.Time
	var total sim.Time
	const n = 2000
	for i := 0; i < n; i++ {
		lba := int64(rng.Uint64n(1 << 20))
		done, err := d.ReadPages(now, lba, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		total += done - now
		now = done
	}
	avg := float64(total) / n / float64(sim.Millisecond)
	// A random 4KB read on a 7.2k disk averages roughly seek(avg) +
	// rotation/2 ≈ 6–14 ms. The paper's Nossd latencies are in this range.
	if avg < 4 || avg > 16 {
		t.Fatalf("average random read latency = %.2fms, want 4–16ms", avg)
	}
}

func TestSequentialMuchFasterThanRandom(t *testing.T) {
	seq := New("seq", testCfg(), 1)
	var now sim.Time
	start := now
	for i := int64(0); i < 1000; i++ {
		done, err := seq.ReadPages(now, 1000+i, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	seqTime := now - start

	rnd := New("rnd", testCfg(), 1)
	rng := sim.NewRNG(3)
	now = 0
	for i := 0; i < 1000; i++ {
		done, err := rnd.ReadPages(now, int64(rng.Uint64n(1<<20)), 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	if seqTime*20 > now {
		t.Fatalf("sequential (%v) should be >20x faster than random (%v)", seqTime, now)
	}
	if seq.SeqHits() < 990 {
		t.Fatalf("SeqHits = %d, want ~999", seq.SeqHits())
	}
}

func TestSeekTimeMonotonic(t *testing.T) {
	d := New("hdd", testCfg(), 1)
	prev := sim.Time(-1)
	for _, dist := range []int64{0, 1, 100, 10000, 1 << 18, 1 << 20} {
		s := d.seekTime(dist)
		if s < prev {
			t.Fatalf("seek time not monotone at dist=%d: %v < %v", dist, s, prev)
		}
		prev = s
	}
	if d.seekTime(1<<20) > d.cfg.FullStroke {
		t.Fatal("full-stroke seek exceeds configured maximum")
	}
	if d.seekTime(-5000) != d.seekTime(5000) {
		t.Fatal("seek not symmetric in direction")
	}
}

func TestQueueingDelaysBackToBack(t *testing.T) {
	d := New("hdd", testCfg(), 1)
	// Two requests arriving at the same instant must serialize.
	d1, _ := d.ReadPages(0, 500000, 1, nil)
	d2, _ := d.ReadPages(0, 10, 1, nil)
	if d2 <= d1 {
		t.Fatalf("second request (%v) should complete after first (%v)", d2, d1)
	}
}

func TestDataModeRoundTrip(t *testing.T) {
	d := NewData("hdd", testCfg(), 1)
	buf := bytes.Repeat([]byte{0x5C}, 3*blockdev.PageSize)
	if _, err := d.WritePages(0, 77, 3, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 3*blockdev.PageSize)
	if _, err := d.ReadPages(0, 77, 3, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, got) {
		t.Fatal("data round trip failed")
	}
	if d.Reads() != 1 || d.Writes() != 1 {
		t.Fatalf("counts %d/%d", d.Reads(), d.Writes())
	}
}

func TestRangeAndBufferChecks(t *testing.T) {
	d := New("hdd", testCfg(), 1)
	if _, err := d.ReadPages(0, 1<<20, 1, nil); !errors.Is(err, blockdev.ErrOutOfRange) {
		t.Fatalf("err = %v", err)
	}
	if _, err := d.WritePages(0, 0, 2, make([]byte, 5)); !errors.Is(err, blockdev.ErrBadBuffer) {
		t.Fatalf("err = %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() sim.Time {
		d := New("hdd", testCfg(), 42)
		rng := sim.NewRNG(7)
		var now sim.Time
		for i := 0; i < 500; i++ {
			now, _ = d.ReadPages(now, int64(rng.Uint64n(1<<20)), 1, nil)
		}
		return now
	}
	if mk() != mk() {
		t.Fatal("same seed produced different timings")
	}
}

func TestSqrtHelper(t *testing.T) {
	for _, x := range []float64{0, 1e-9, 0.25, 1, 2, 100} {
		got := sqrt(x)
		want := math.Sqrt(x)
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("sqrt(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New("bad", Config{}, 1)
}

func TestWriteLatencySimilarToRead(t *testing.T) {
	d := New("hdd", testCfg(), 9)
	done, err := d.WritePages(0, 123456, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if done <= 0 || done > 30*sim.Millisecond {
		t.Fatalf("single write latency %v outside sane range", done)
	}
	if d.BusyTime() != done {
		t.Fatalf("busy time %v != completion %v for single op on idle disk", d.BusyTime(), done)
	}
}
