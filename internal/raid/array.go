package raid

import (
	"errors"
	"fmt"

	"kddcache/internal/blockdev"
	"kddcache/internal/obs"
	"kddcache/internal/sim"
)

// Errors returned by the array.
var (
	ErrTooManyFailures = errors.New("raid: too many failed disks")
	ErrStaleParity     = errors.New("raid: degraded read hit a row with stale parity (data loss window)")
	ErrNeedResync      = errors.New("raid: stale parity rows present; resync before rebuild")
	ErrNotDegraded     = errors.New("raid: no failed disk to rebuild")
	ErrBadGeometry     = errors.New("raid: invalid geometry")
	// ErrUnrecoverable marks a page whose media error cannot be repaired:
	// the row's redundancy is exhausted (or the level has none). It is
	// reported loudly — never served as zeros.
	ErrUnrecoverable = errors.New("raid: page unrecoverable (redundancy exhausted)")
)

// Config describes an array.
type Config struct {
	Level      Level
	ChunkPages int64 // pages per chunk (paper default: 64KB/4KB = 16)
}

// Stats counts member-disk operations by cause.
type Stats struct {
	DataReads    int64 // data-page reads for user requests
	DataWrites   int64 // data-page writes for user requests
	ParityReads  int64 // parity reads (RMW)
	ParityWrites int64 // parity writes
	RebuildReads int64
	RebuildWrite int64
	DegradedRead int64 // reconstruct-on-read operations
	NoParityWr   int64 // writes issued through WriteNoParity
	ParityFixes  int64 // deferred parity updates applied
	MediaErrors  int64 // member reads that returned blockdev.ErrMedia
	ReadRepairs  int64 // single pages reconstructed and rewritten in place

	// Online rebuild and hot spares.
	RebuildRows       int64 // member rows reconstructed by RebuildStep
	RebuildBytes      int64 // bytes written onto rebuild targets
	RebuildsStarted   int64
	RebuildsCompleted int64
	RebuildsAborted   int64 // rebuilds abandoned because the target died
	SpareAttaches     int64 // hot spares auto-attached to failed members
	LostPages         int64 // member pages whose content was declared lost

	// Log-structured backend (internal/lsraid) accounting. The seam
	// shares one Stats struct so experiments and dashboards compare
	// engines field-for-field; the parity engine leaves these zero.
	GCCopies   int64 // live pages copied forward by segment GC
	GCSegments int64 // segments reclaimed by GC
}

// Array is a parity-protected disk array over member block devices.
//
// All member devices must have equal capacity. The array runs in data mode
// when the members carry real bytes (buffers non-nil), or in timing mode
// (nil buffers); parity is byte-accurate in data mode.
type Array struct {
	cfg    Config
	name   string // cached cfg.Level.String(); Name() is on traced hot paths
	geo    layout
	disks  []*blockdev.FaultDevice
	stale  map[int64]bool // rows whose parity is stale (delayed updates)
	failed int            // count of currently failed disks
	stats  Stats
	tr     *obs.Tracer

	// Online rebuild state (rebuild.go). lost maps a member row to the
	// bitmask of disks whose page content there is unrecoverable; such
	// pages read back as ErrUnrecoverable until overwritten.
	rebuild *rebuildState
	spares  []blockdev.Device
	lost    map[int64]uint32

	// Patrol-scrub progress (rows scanned of total, last/current pass).
	scrubRow   int64
	scrubTotal int64
}

// SetTracer installs a span tracer (nil disables tracing). Array entry
// points appear as raid_* spans nested inside the calling operation.
func (a *Array) SetTracer(tr *obs.Tracer) { a.tr = tr }

// New builds an array over the given member devices, wrapping each in a
// FaultDevice for failure injection.
func New(cfg Config, members []blockdev.Device) (*Array, error) {
	n := len(members)
	if n == 0 {
		return nil, fmt.Errorf("%w: no disks", ErrBadGeometry)
	}
	switch cfg.Level {
	case Level0:
		if n < 2 {
			return nil, fmt.Errorf("%w: RAID-0 needs >=2 disks", ErrBadGeometry)
		}
	case Level1:
		if n < 2 {
			return nil, fmt.Errorf("%w: RAID-1 needs >=2 disks", ErrBadGeometry)
		}
	case Level5:
		if n < 3 {
			return nil, fmt.Errorf("%w: RAID-5 needs >=3 disks", ErrBadGeometry)
		}
	case Level6:
		if n < 4 {
			return nil, fmt.Errorf("%w: RAID-6 needs >=4 disks", ErrBadGeometry)
		}
	default:
		return nil, fmt.Errorf("%w: unsupported level %d", ErrBadGeometry, cfg.Level)
	}
	if cfg.ChunkPages <= 0 {
		return nil, fmt.Errorf("%w: chunk must be positive", ErrBadGeometry)
	}
	pages := members[0].Pages()
	for _, m := range members[1:] {
		if m.Pages() != pages {
			return nil, fmt.Errorf("%w: member sizes differ", ErrBadGeometry)
		}
	}
	a := &Array{
		cfg:  cfg,
		name: cfg.Level.String(),
		geo: layout{
			level:      cfg.Level,
			disks:      n,
			chunkPages: cfg.ChunkPages,
			diskPages:  pages,
		},
		stale: make(map[int64]bool),
		lost:  make(map[int64]uint32),
	}
	for _, m := range members {
		a.disks = append(a.disks, blockdev.NewFaultDevice(m))
	}
	return a, nil
}

// Name implements blockdev.Device.
func (a *Array) Name() string { return a.name }

// Pages implements blockdev.Device (logical capacity).
func (a *Array) Pages() int64 { return a.geo.dataPages() }

// Disks returns the number of member disks.
func (a *Array) Disks() int { return len(a.disks) }

// Member returns the inner device of member disk i (for inspection by
// tests and tooling; do not issue I/O through it).
func (a *Array) Member(i int) blockdev.Device { return a.disks[i].Inner() }

// Injector returns the fault injector wrapping member disk i, so tests
// and the chaos harness can arm per-page faults, crash points, and
// probabilistic profiles on individual members.
func (a *Array) Injector(i int) *blockdev.FaultInjector { return a.disks[i] }

// Stats returns a snapshot of operation counters.
func (a *Array) Stats() Stats { return a.stats }

// PublishMetrics writes the array's member-I/O accounting into reg.
func (a *Array) PublishMetrics(reg *obs.Registry) {
	s := a.stats
	reg.SetCounter("raid_data_reads_total", "Member data-page reads for user requests.", s.DataReads)
	reg.SetCounter("raid_data_writes_total", "Member data-page writes for user requests.", s.DataWrites)
	reg.SetCounter("raid_parity_reads_total", "Parity-page reads (read-modify-write).", s.ParityReads)
	reg.SetCounter("raid_parity_writes_total", "Parity-page writes.", s.ParityWrites)
	reg.SetCounter("raid_rebuild_reads_total", "Member reads issued by rebuild.", s.RebuildReads)
	reg.SetCounter("raid_rebuild_writes_total", "Member writes issued by rebuild.", s.RebuildWrite)
	reg.SetCounter("raid_degraded_reads_total", "Reconstruct-on-read operations.", s.DegradedRead)
	reg.SetCounter("raid_noparity_writes_total", "Writes issued through WriteNoParity.", s.NoParityWr)
	reg.SetCounter("raid_parity_fixes_total", "Deferred parity updates applied.", s.ParityFixes)
	reg.SetCounter("raid_media_errors_total", "Member reads that returned a media error.", s.MediaErrors)
	reg.SetCounter("raid_read_repairs_total", "Pages reconstructed and rewritten in place.", s.ReadRepairs)
	reg.SetCounter("raid_rebuild_rows_done_total", "Member rows reconstructed by the online rebuild.", s.RebuildRows)
	reg.SetCounter("raid_rebuild_bytes_total", "Bytes written onto rebuild targets.", s.RebuildBytes)
	reg.SetCounter("raid_rebuilds_started_total", "Member rebuilds opened.", s.RebuildsStarted)
	reg.SetCounter("raid_rebuilds_completed_total", "Member rebuilds run to completion.", s.RebuildsCompleted)
	reg.SetCounter("raid_rebuilds_aborted_total", "Member rebuilds abandoned because the target died.", s.RebuildsAborted)
	reg.SetCounter("raid_spare_attaches_total", "Hot spares auto-attached to failed members.", s.SpareAttaches)
	reg.SetCounter("raid_lost_pages_total", "Member pages declared unrecoverable.", s.LostPages)
	reg.SetGauge("raid_stale_rows", "Rows whose parity is currently stale.", float64(len(a.stale)))
	reg.SetGauge("raid_failed_disks", "Currently failed member disks.", float64(a.failed))
	active, watermark := 0.0, 0.0
	if a.rebuild != nil {
		active, watermark = 1, float64(a.rebuild.next)
	}
	reg.SetGauge("raid_rebuild_active", "1 while a member rebuild is in progress.", active)
	reg.SetGauge("raid_rebuild_watermark", "Rows of the rebuild target already reconstructed.", watermark)
	reg.SetGauge("raid_spares", "Hot spares currently parked.", float64(len(a.spares)))
	reg.SetGauge("raid_lost_rows", "Rows currently holding at least one lost page.", float64(len(a.lost)))
	reg.SetGauge("raid_scrub_progress_rows", "Rows scanned by the last/current patrol scrub pass.", float64(a.scrubRow))
	reg.SetGauge("raid_scrub_total_rows", "Rows a full patrol scrub pass covers.", float64(a.scrubTotal))
}

// StaleRows returns the number of rows with stale parity.
func (a *Array) StaleRows() int { return len(a.stale) }

// Level returns the array's RAID level.
func (a *Array) Level() Level { return a.cfg.Level }

// ChunkPages returns pages per chunk.
func (a *Array) ChunkPages() int64 { return a.geo.chunkPages }

// DataChunks returns data chunks per stripe.
func (a *Array) DataChunks() int { return int(a.geo.dataChunksPerStripe()) }

// StripePages returns logical pages per stripe (the paper's parity-stripe
// granularity for cache-set alignment).
func (a *Array) StripePages() int64 {
	return a.geo.chunkPages * a.geo.dataChunksPerStripe()
}

// StripeOf returns the stripe number holding the logical page.
func (a *Array) StripeOf(lba int64) int64 { return lba / a.StripePages() }

// RowPeers returns the logical LBAs that share a parity row with lba
// (including lba itself), in data-chunk order. A parity row is one page
// per data chunk at the same disk offset — the unit over which P/Q are
// computed.
func (a *Array) RowPeers(lba int64) []int64 {
	l := a.geo.locate(lba)
	dc := int(a.geo.dataChunksPerStripe())
	pic := l.row % a.geo.chunkPages
	peers := make([]int64, 0, dc)
	for i := 0; i < dc; i++ {
		peers = append(peers, a.geo.logicalLBA(l.stripe, i, pic))
	}
	return peers
}

// DataLocation returns the member disk and member-local page holding
// lba's data, so tooling (the chaos harness, scrub tests) can aim
// per-member faults at a specific logical page.
func (a *Array) DataLocation(lba int64) (disk int, page int64) {
	l := a.geo.locate(lba)
	return l.disk, l.row
}

// ParityLocation returns the member disks holding the P (and, for
// RAID-6, Q) parity of lba's row, plus the member-local page. qDisk is
// -1 on single-parity levels; pDisk is -1 on levels without parity.
func (a *Array) ParityLocation(lba int64) (pDisk, qDisk int, page int64) {
	l := a.geo.locate(lba)
	if a.cfg.Level != Level5 && a.cfg.Level != Level6 {
		return -1, -1, l.row
	}
	return l.pDisk, l.qDisk, l.row
}

// pageBuf returns the i-th page of buf, or nil in timing mode.
func pageBuf(buf []byte, i int) []byte {
	if buf == nil {
		return nil
	}
	return buf[i*blockdev.PageSize : (i+1)*blockdev.PageSize]
}

// ReadPages implements blockdev.Device. Failed members trigger degraded
// reconstruction where the level allows it.
func (a *Array) ReadPages(t sim.Time, lba int64, count int, buf []byte) (done sim.Time, err error) {
	if err := blockdev.CheckRange(lba, count, a.Pages()); err != nil {
		return t, err
	}
	if err := blockdev.CheckBuf(buf, count); err != nil {
		return t, err
	}
	var sp obs.Span
	if a.tr != nil {
		sp = a.tr.BeginDev(t, obs.PhaseRAIDRead, a.Name(), lba, count)
	}
	done = t
	for i := 0; i < count; i++ {
		c, err := a.readPage(t, lba+int64(i), pageBuf(buf, i))
		if err != nil {
			sp.End(t)
			return t, err
		}
		if c > done {
			done = c
		}
	}
	sp.End(done)
	return done, nil
}

// mediaRetries bounds re-reads of a member page after ErrMedia before
// redundancy is consulted: transient glitches clear on a retry, latent
// faults and detected bit-rot do not.
const mediaRetries = 2

// memberRead reads one page from member disk with bounded retry on media
// errors, so a transient glitch never escalates into a reconstruction
// (or, worse, aborts one already in progress).
func (a *Array) memberRead(t sim.Time, disk int, row int64, buf []byte) (sim.Time, error) {
	done, err := a.disks[disk].ReadPages(t, row, 1, buf)
	for r := 0; err != nil && errors.Is(err, blockdev.ErrMedia) && r < mediaRetries; r++ {
		done, err = a.disks[disk].ReadPages(done, row, 1, buf)
	}
	return done, err
}

func (a *Array) readPage(t sim.Time, lba int64, buf []byte) (sim.Time, error) {
	l := a.geo.locate(lba)
	if a.cfg.Level == Level1 {
		return a.mirrorRead(t, lba, l, buf)
	}
	if a.pageLost(l.disk, l.row) {
		return t, fmt.Errorf("%w: page %d lost in a rebuild window", ErrUnrecoverable, lba)
	}
	if !a.missing(l.disk, l.row) {
		a.stats.DataReads++
		c, err := a.memberRead(t, l.disk, l.row, buf)
		if err == nil {
			return c, nil
		}
		if !errors.Is(err, blockdev.ErrMedia) {
			return t, err
		}
		// One page of an otherwise healthy member is unreadable: repair
		// just that page from redundancy instead of failing the disk.
		a.stats.MediaErrors++
		return a.readRepair(t, l, buf)
	}
	return a.degradedRead(t, l, buf)
}

// mirrorRead serves a RAID-1 read from the first healthy mirror (rotating
// by LBA to spread load), skipping over mirrors with media errors and
// repairing them from the copy that finally answered.
func (a *Array) mirrorRead(t sim.Time, lba int64, l loc, buf []byte) (sim.Time, error) {
	n := len(a.disks)
	start := int(lba) % n
	var bad []int // mirrors that returned ErrMedia for this page
	anyHealthy := false
	for k := 0; k < n; k++ {
		idx := (start + k) % n
		d := a.disks[idx]
		if a.missing(idx, l.row) {
			continue
		}
		anyHealthy = true
		a.stats.DataReads++
		c, err := d.ReadPages(t, l.row, 1, buf)
		if err == nil {
			// Re-silver any mirror whose copy was unreadable.
			for _, i := range bad {
				a.stats.ReadRepairs++
				if wc, werr := a.disks[i].WritePages(c, l.row, 1, buf); werr == nil {
					c = sim.MaxTime(c, wc)
				}
			}
			return c, nil
		}
		if errors.Is(err, blockdev.ErrMedia) {
			a.stats.MediaErrors++
			bad = append(bad, (start+k)%n)
			continue
		}
		return t, err
	}
	if !anyHealthy {
		return t, ErrTooManyFailures
	}
	return t, fmt.Errorf("%w: page %d unreadable on every mirror", ErrUnrecoverable, lba)
}

// WritePages implements blockdev.Device: the conventional write path with
// immediate parity maintenance. Runs of pages covering an entire parity
// row use reconstruct-write; single pages use read-modify-write — the two
// modes named in §III-A.
func (a *Array) WritePages(t sim.Time, lba int64, count int, buf []byte) (done sim.Time, err error) {
	if err := blockdev.CheckRange(lba, count, a.Pages()); err != nil {
		return t, err
	}
	if err := blockdev.CheckBuf(buf, count); err != nil {
		return t, err
	}
	var sp obs.Span
	if a.tr != nil {
		sp = a.tr.BeginDev(t, obs.PhaseRAIDWrite, a.Name(), lba, count)
	}
	done = t
	for i := 0; i < count; i++ {
		c, err := a.writePage(t, lba+int64(i), pageBuf(buf, i))
		if err != nil {
			sp.End(t)
			return t, err
		}
		if c > done {
			done = c
		}
	}
	sp.End(done)
	return done, nil
}

// writePage performs a small write with parity update.
func (a *Array) writePage(t sim.Time, lba int64, buf []byte) (sim.Time, error) {
	l := a.geo.locate(lba)
	switch a.cfg.Level {
	case Level0:
		a.stats.DataWrites++
		return a.disks[l.disk].WritePages(t, l.row, 1, buf)
	case Level1:
		done := t
		wrote := 0
		for i, d := range a.disks {
			if a.missing(i, l.row) {
				continue
			}
			a.stats.DataWrites++
			c, err := d.WritePages(t, l.row, 1, buf)
			if err != nil {
				return t, err
			}
			wrote++
			if c > done {
				done = c
			}
		}
		if wrote == 0 {
			return t, ErrTooManyFailures
		}
		return done, nil
	case Level5, Level6:
		return a.smallWrite(t, l, buf)
	}
	return t, ErrBadGeometry
}

// smallWrite is the read-modify-write path: read old data and old
// parity(ies) in parallel, then write new data and new parity(ies) in
// parallel — "two read and two write disk I/O operations" (§I) for RAID-5.
func (a *Array) smallWrite(t sim.Time, l loc, buf []byte) (sim.Time, error) {
	dataDev := a.disks[l.disk]
	if a.missing(l.disk, l.row) || a.missing(l.pDisk, l.row) ||
		(l.qDisk >= 0 && a.missing(l.qDisk, l.row)) {
		return a.degradedWrite(t, l, buf)
	}

	var oldData, oldP, oldQ []byte
	if buf != nil {
		oldData = make([]byte, blockdev.PageSize)
		oldP = make([]byte, blockdev.PageSize)
		if l.qDisk >= 0 {
			oldQ = make([]byte, blockdev.PageSize)
		}
	}

	// Phase 1: parallel reads of old data and parity. A latent media
	// error on any of these pages must not fail the write (let alone the
	// member): the old data is reconstructible from the row, and lost
	// parity can be recomputed from the members before folding the diff.
	phase1 := t
	a.stats.DataReads++
	c, err := a.memberRead(t, l.disk, l.row, oldData)
	if err != nil {
		if !errors.Is(err, blockdev.ErrMedia) {
			return t, err
		}
		a.stats.MediaErrors++
		if c, err = a.readRepair(t, l, oldData); err != nil {
			return t, err
		}
	}
	phase1 = sim.MaxTime(phase1, c)
	a.stats.ParityReads++
	c, err = a.memberRead(t, l.pDisk, l.row, oldP)
	if err != nil {
		if c, err = a.rereadParity(t, l.pDisk, l, oldP, err); err != nil {
			return t, err
		}
	}
	phase1 = sim.MaxTime(phase1, c)
	if l.qDisk >= 0 {
		a.stats.ParityReads++
		c, err = a.memberRead(t, l.qDisk, l.row, oldQ)
		if err != nil {
			if c, err = a.rereadParity(t, l.qDisk, l, oldQ, err); err != nil {
				return t, err
			}
		}
		phase1 = sim.MaxTime(phase1, c)
	}

	// Compute new parity: P' = P ^ old ^ new; Q' = Q ^ g^i·(old ^ new).
	var newP, newQ []byte
	if buf != nil {
		diff := make([]byte, blockdev.PageSize)
		copy(diff, oldData)
		xorInto(diff, buf)
		newP = oldP
		xorInto(newP, diff)
		if l.qDisk >= 0 {
			newQ = oldQ
			gfMulInto(newQ, diff, gfPow(l.dataIdx))
		}
	}

	// Phase 2: parallel writes of new data and parity.
	done := phase1
	a.stats.DataWrites++
	c, err = dataDev.WritePages(phase1, l.row, 1, buf)
	if err != nil {
		return t, err
	}
	done = sim.MaxTime(done, c)
	a.stats.ParityWrites++
	c, err = a.disks[l.pDisk].WritePages(phase1, l.row, 1, newP)
	if err != nil {
		return t, err
	}
	done = sim.MaxTime(done, c)
	if l.qDisk >= 0 {
		a.stats.ParityWrites++
		c, err = a.disks[l.qDisk].WritePages(phase1, l.row, 1, newQ)
		if err != nil {
			return t, err
		}
		done = sim.MaxTime(done, c)
	}
	a.clearLost(l.disk, l.row) // the page now holds known bytes again
	return done, nil
}

// rereadParity recovers from a media error on a parity page read inside
// the RMW path. On a stale row the lost copy carried no information, so
// the parity is recomputed from the member data and read back; on a
// current row the copy is recomputed by decoding the row — which, unlike
// a data-only resync, still works when a member is missing (RAID-6
// absorbs the media page plus the rebuild hole as two erasures). Any
// error other than ErrMedia is passed through untouched.
func (a *Array) rereadParity(t sim.Time, disk int, l loc, buf []byte, readErr error) (sim.Time, error) {
	if !errors.Is(readErr, blockdev.ErrMedia) {
		return t, readErr
	}
	a.stats.MediaErrors++
	if a.rowStale(l) {
		done, err := a.resyncRow(t, l.row)
		if err != nil {
			return t, err
		}
		a.stats.ParityFixes++
		c, err := a.disks[disk].ReadPages(done, l.row, 1, buf)
		if err != nil {
			return t, err
		}
		return sim.MaxTime(done, c), nil
	}
	return a.repairParityRow(t, l.row, disk, buf)
}
