package raid

import (
	"errors"
	"fmt"

	"kddcache/internal/blockdev"
	"kddcache/internal/sim"
)

// Errors returned by the array.
var (
	ErrTooManyFailures = errors.New("raid: too many failed disks")
	ErrStaleParity     = errors.New("raid: degraded read hit a row with stale parity (data loss window)")
	ErrNeedResync      = errors.New("raid: stale parity rows present; resync before rebuild")
	ErrNotDegraded     = errors.New("raid: no failed disk to rebuild")
	ErrBadGeometry     = errors.New("raid: invalid geometry")
)

// Config describes an array.
type Config struct {
	Level      Level
	ChunkPages int64 // pages per chunk (paper default: 64KB/4KB = 16)
}

// Stats counts member-disk operations by cause.
type Stats struct {
	DataReads    int64 // data-page reads for user requests
	DataWrites   int64 // data-page writes for user requests
	ParityReads  int64 // parity reads (RMW)
	ParityWrites int64 // parity writes
	RebuildReads int64
	RebuildWrite int64
	DegradedRead int64 // reconstruct-on-read operations
	NoParityWr   int64 // writes issued through WriteNoParity
	ParityFixes  int64 // deferred parity updates applied
}

// Array is a parity-protected disk array over member block devices.
//
// All member devices must have equal capacity. The array runs in data mode
// when the members carry real bytes (buffers non-nil), or in timing mode
// (nil buffers); parity is byte-accurate in data mode.
type Array struct {
	cfg    Config
	geo    layout
	disks  []*blockdev.FaultDevice
	stale  map[int64]bool // rows whose parity is stale (delayed updates)
	failed int            // count of currently failed disks
	stats  Stats
}

// New builds an array over the given member devices, wrapping each in a
// FaultDevice for failure injection.
func New(cfg Config, members []blockdev.Device) (*Array, error) {
	n := len(members)
	if n == 0 {
		return nil, fmt.Errorf("%w: no disks", ErrBadGeometry)
	}
	switch cfg.Level {
	case Level0:
		if n < 2 {
			return nil, fmt.Errorf("%w: RAID-0 needs >=2 disks", ErrBadGeometry)
		}
	case Level1:
		if n < 2 {
			return nil, fmt.Errorf("%w: RAID-1 needs >=2 disks", ErrBadGeometry)
		}
	case Level5:
		if n < 3 {
			return nil, fmt.Errorf("%w: RAID-5 needs >=3 disks", ErrBadGeometry)
		}
	case Level6:
		if n < 4 {
			return nil, fmt.Errorf("%w: RAID-6 needs >=4 disks", ErrBadGeometry)
		}
	default:
		return nil, fmt.Errorf("%w: unsupported level %d", ErrBadGeometry, cfg.Level)
	}
	if cfg.ChunkPages <= 0 {
		return nil, fmt.Errorf("%w: chunk must be positive", ErrBadGeometry)
	}
	pages := members[0].Pages()
	for _, m := range members[1:] {
		if m.Pages() != pages {
			return nil, fmt.Errorf("%w: member sizes differ", ErrBadGeometry)
		}
	}
	a := &Array{
		cfg: cfg,
		geo: layout{
			level:      cfg.Level,
			disks:      n,
			chunkPages: cfg.ChunkPages,
			diskPages:  pages,
		},
		stale: make(map[int64]bool),
	}
	for _, m := range members {
		a.disks = append(a.disks, blockdev.NewFaultDevice(m))
	}
	return a, nil
}

// Name implements blockdev.Device.
func (a *Array) Name() string { return a.cfg.Level.String() }

// Pages implements blockdev.Device (logical capacity).
func (a *Array) Pages() int64 { return a.geo.dataPages() }

// Disks returns the number of member disks.
func (a *Array) Disks() int { return len(a.disks) }

// Member returns the inner device of member disk i (for inspection by
// tests and tooling; do not issue I/O through it).
func (a *Array) Member(i int) blockdev.Device { return a.disks[i].Inner }

// Stats returns a snapshot of operation counters.
func (a *Array) Stats() Stats { return a.stats }

// StaleRows returns the number of rows with stale parity.
func (a *Array) StaleRows() int { return len(a.stale) }

// Level returns the array's RAID level.
func (a *Array) Level() Level { return a.cfg.Level }

// ChunkPages returns pages per chunk.
func (a *Array) ChunkPages() int64 { return a.geo.chunkPages }

// DataChunks returns data chunks per stripe.
func (a *Array) DataChunks() int { return int(a.geo.dataChunksPerStripe()) }

// StripePages returns logical pages per stripe (the paper's parity-stripe
// granularity for cache-set alignment).
func (a *Array) StripePages() int64 {
	return a.geo.chunkPages * a.geo.dataChunksPerStripe()
}

// StripeOf returns the stripe number holding the logical page.
func (a *Array) StripeOf(lba int64) int64 { return lba / a.StripePages() }

// RowPeers returns the logical LBAs that share a parity row with lba
// (including lba itself), in data-chunk order. A parity row is one page
// per data chunk at the same disk offset — the unit over which P/Q are
// computed.
func (a *Array) RowPeers(lba int64) []int64 {
	l := a.geo.locate(lba)
	dc := int(a.geo.dataChunksPerStripe())
	pic := l.row % a.geo.chunkPages
	peers := make([]int64, 0, dc)
	for i := 0; i < dc; i++ {
		peers = append(peers, a.geo.logicalLBA(l.stripe, i, pic))
	}
	return peers
}

// pageBuf returns the i-th page of buf, or nil in timing mode.
func pageBuf(buf []byte, i int) []byte {
	if buf == nil {
		return nil
	}
	return buf[i*blockdev.PageSize : (i+1)*blockdev.PageSize]
}

// ReadPages implements blockdev.Device. Failed members trigger degraded
// reconstruction where the level allows it.
func (a *Array) ReadPages(t sim.Time, lba int64, count int, buf []byte) (sim.Time, error) {
	if err := blockdev.CheckRange(lba, count, a.Pages()); err != nil {
		return t, err
	}
	if err := blockdev.CheckBuf(buf, count); err != nil {
		return t, err
	}
	done := t
	for i := 0; i < count; i++ {
		c, err := a.readPage(t, lba+int64(i), pageBuf(buf, i))
		if err != nil {
			return t, err
		}
		if c > done {
			done = c
		}
	}
	return done, nil
}

func (a *Array) readPage(t sim.Time, lba int64, buf []byte) (sim.Time, error) {
	l := a.geo.locate(lba)
	if a.cfg.Level == Level1 {
		// Read from the first healthy mirror, rotating by LBA to spread
		// load.
		n := len(a.disks)
		start := int(lba) % n
		for k := 0; k < n; k++ {
			d := a.disks[(start+k)%n]
			if d.Failed() {
				continue
			}
			a.stats.DataReads++
			return d.ReadPages(t, l.row, 1, buf)
		}
		return t, ErrTooManyFailures
	}
	if !a.disks[l.disk].Failed() {
		a.stats.DataReads++
		return a.disks[l.disk].ReadPages(t, l.row, 1, buf)
	}
	return a.degradedRead(t, l, buf)
}

// WritePages implements blockdev.Device: the conventional write path with
// immediate parity maintenance. Runs of pages covering an entire parity
// row use reconstruct-write; single pages use read-modify-write — the two
// modes named in §III-A.
func (a *Array) WritePages(t sim.Time, lba int64, count int, buf []byte) (sim.Time, error) {
	if err := blockdev.CheckRange(lba, count, a.Pages()); err != nil {
		return t, err
	}
	if err := blockdev.CheckBuf(buf, count); err != nil {
		return t, err
	}
	done := t
	for i := 0; i < count; i++ {
		c, err := a.writePage(t, lba+int64(i), pageBuf(buf, i))
		if err != nil {
			return t, err
		}
		if c > done {
			done = c
		}
	}
	return done, nil
}

// writePage performs a small write with parity update.
func (a *Array) writePage(t sim.Time, lba int64, buf []byte) (sim.Time, error) {
	l := a.geo.locate(lba)
	switch a.cfg.Level {
	case Level0:
		a.stats.DataWrites++
		return a.disks[l.disk].WritePages(t, l.row, 1, buf)
	case Level1:
		done := t
		wrote := 0
		for _, d := range a.disks {
			if d.Failed() {
				continue
			}
			a.stats.DataWrites++
			c, err := d.WritePages(t, l.row, 1, buf)
			if err != nil {
				return t, err
			}
			wrote++
			if c > done {
				done = c
			}
		}
		if wrote == 0 {
			return t, ErrTooManyFailures
		}
		return done, nil
	case Level5, Level6:
		return a.smallWrite(t, l, buf)
	}
	return t, ErrBadGeometry
}

// smallWrite is the read-modify-write path: read old data and old
// parity(ies) in parallel, then write new data and new parity(ies) in
// parallel — "two read and two write disk I/O operations" (§I) for RAID-5.
func (a *Array) smallWrite(t sim.Time, l loc, buf []byte) (sim.Time, error) {
	dataDev := a.disks[l.disk]
	if dataDev.Failed() || a.disks[l.pDisk].Failed() ||
		(l.qDisk >= 0 && a.disks[l.qDisk].Failed()) {
		return a.degradedWrite(t, l, buf)
	}

	var oldData, oldP, oldQ []byte
	if buf != nil {
		oldData = make([]byte, blockdev.PageSize)
		oldP = make([]byte, blockdev.PageSize)
		if l.qDisk >= 0 {
			oldQ = make([]byte, blockdev.PageSize)
		}
	}

	// Phase 1: parallel reads of old data and parity.
	phase1 := t
	a.stats.DataReads++
	c, err := dataDev.ReadPages(t, l.row, 1, oldData)
	if err != nil {
		return t, err
	}
	phase1 = sim.MaxTime(phase1, c)
	a.stats.ParityReads++
	c, err = a.disks[l.pDisk].ReadPages(t, l.row, 1, oldP)
	if err != nil {
		return t, err
	}
	phase1 = sim.MaxTime(phase1, c)
	if l.qDisk >= 0 {
		a.stats.ParityReads++
		c, err = a.disks[l.qDisk].ReadPages(t, l.row, 1, oldQ)
		if err != nil {
			return t, err
		}
		phase1 = sim.MaxTime(phase1, c)
	}

	// Compute new parity: P' = P ^ old ^ new; Q' = Q ^ g^i·(old ^ new).
	var newP, newQ []byte
	if buf != nil {
		diff := make([]byte, blockdev.PageSize)
		copy(diff, oldData)
		xorInto(diff, buf)
		newP = oldP
		xorInto(newP, diff)
		if l.qDisk >= 0 {
			newQ = oldQ
			gfMulInto(newQ, diff, gfPow(l.dataIdx))
		}
	}

	// Phase 2: parallel writes of new data and parity.
	done := phase1
	a.stats.DataWrites++
	c, err = dataDev.WritePages(phase1, l.row, 1, buf)
	if err != nil {
		return t, err
	}
	done = sim.MaxTime(done, c)
	a.stats.ParityWrites++
	c, err = a.disks[l.pDisk].WritePages(phase1, l.row, 1, newP)
	if err != nil {
		return t, err
	}
	done = sim.MaxTime(done, c)
	if l.qDisk >= 0 {
		a.stats.ParityWrites++
		c, err = a.disks[l.qDisk].WritePages(phase1, l.row, 1, newQ)
		if err != nil {
			return t, err
		}
		done = sim.MaxTime(done, c)
	}
	return done, nil
}
