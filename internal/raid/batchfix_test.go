package raid

import (
	"bytes"
	"testing"

	"kddcache/internal/blockdev"
	"kddcache/internal/sim"
)

// mkDelta returns the XOR image transforming old into new.
func mkDelta(old, new []byte) []byte {
	d := make([]byte, len(old))
	for i := range d {
		d[i] = old[i] ^ new[i]
	}
	return d
}

func TestBatchFixEquivalentToPerRow(t *testing.T) {
	for _, level := range []Level{Level5, Level6} {
		disks := 5
		if level == Level6 {
			disks = 6
		}
		a := newDataArray(t, level, disks, 160, 8)
		oracle := writeAll(t, a, 320)

		// Dirty many pages without parity and remember their deltas.
		rng := sim.NewRNG(3)
		var fixes []RowFix
		byRow := map[int64]*RowFix{}
		for i := 0; i < 120; i++ {
			lba := int64(rng.Uint64n(320))
			if _, seen := byRowLBA(byRow, lba); seen {
				continue // keep one delta per page for clarity
			}
			oldData := oracle[lba]
			newData := fillPage(byte(0x30 + i))
			if _, err := a.WriteNoParity(0, lba, 1, newData); err != nil {
				t.Fatal(err)
			}
			key := a.RowPeers(lba)[0]
			f, ok := byRow[key]
			if !ok {
				f = &RowFix{}
				byRow[key] = f
			}
			f.LBAs = append(f.LBAs, lba)
			f.Deltas = append(f.Deltas, mkDelta(oldData, newData))
			oracle[lba] = newData
		}
		for _, f := range byRow {
			fixes = append(fixes, *f)
		}

		if _, err := a.ParityUpdateDeltaBatch(0, fixes); err != nil {
			t.Fatalf("%v: %v", level, err)
		}
		if a.StaleRows() != 0 {
			t.Fatalf("%v: %d stale rows after batch fix", level, a.StaleRows())
		}
		// Parity must be byte-correct: survive failure(s).
		a.FailDisk(1)
		if level == Level6 {
			a.FailDisk(3)
		}
		verifyAll(t, a, oracle)
	}
}

func byRowLBA(m map[int64]*RowFix, lba int64) (*RowFix, bool) {
	for _, f := range m {
		for _, l := range f.LBAs {
			if l == lba {
				return f, true
			}
		}
	}
	return nil, false
}

func TestBatchFixSequentialRuns(t *testing.T) {
	// Consecutive rows on the same parity disk must coalesce into one
	// device operation per phase.
	var members []blockdev.Device
	for i := 0; i < 5; i++ {
		members = append(members, blockdev.NewNullDevice("d", 4096))
	}
	a, err := New(Config{Level: Level5, ChunkPages: 16}, members)
	if err != nil {
		t.Fatal(err)
	}
	// Rows 0..15 belong to stripe 0: same parity disk, consecutive rows.
	var fixes []RowFix
	for r := int64(0); r < 16; r++ {
		fixes = append(fixes, RowFix{LBAs: []int64{r}}) // page r of chunk 0
	}
	before := members[4].(*blockdev.NullDevice).Reads() // stripe 0 parity on disk 4
	if _, err := a.ParityUpdateDeltaBatch(0, fixes); err != nil {
		t.Fatal(err)
	}
	after := members[4].(*blockdev.NullDevice).Reads()
	if after-before != 1 {
		t.Fatalf("16 consecutive rows issued %d parity reads, want 1 run", after-before)
	}
}

func TestBatchFixDegradedFallsBack(t *testing.T) {
	a := newDataArray(t, Level5, 5, 96, 8)
	oracle := writeAll(t, a, 100)
	lba := int64(5)
	oldData := oracle[lba]
	newData := fillPage(0xAB)
	if _, err := a.WriteNoParity(0, lba, 1, newData); err != nil {
		t.Fatal(err)
	}
	oracle[lba] = newData
	// Fail the parity disk of that row: batch must route through the
	// degraded single-row logic (rebuild-recomputes rule).
	l := a.geo.locate(lba)
	a.FailDisk(l.pDisk)
	if _, err := a.ParityUpdateDeltaBatch(0, []RowFix{{
		LBAs: []int64{lba}, Deltas: [][]byte{mkDelta(oldData, newData)},
	}}); err != nil {
		t.Fatal(err)
	}
	if a.StaleRows() != 0 {
		t.Fatal("degraded row still stale")
	}
}

func TestBatchFixEmptyAndNonParityLevels(t *testing.T) {
	a := newDataArray(t, Level5, 5, 96, 8)
	if _, err := a.ParityUpdateDeltaBatch(0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ParityUpdateDeltaBatch(0, []RowFix{{}}); err != nil {
		t.Fatal(err)
	}
	a0 := newDataArray(t, Level0, 4, 96, 8)
	if _, err := a0.ParityUpdateDeltaBatch(0, []RowFix{{LBAs: []int64{1}}}); err != nil {
		t.Fatal(err)
	}
	_ = bytes.MinRead
}
