package raid

import (
	"bytes"
	"errors"
	"testing"

	"kddcache/internal/blockdev"
)

func memberStore(t *testing.T, a *Array, i int) *blockdev.MemStore {
	t.Helper()
	s, ok := a.Member(i).(blockdev.Storer)
	if !ok || s.Store() == nil {
		t.Fatal("test requires data-mode members")
	}
	return s.Store()
}

func memberReads(t *testing.T, a *Array, i int) int64 {
	t.Helper()
	r, ok := a.Member(i).(interface{ Reads() int64 })
	if !ok {
		t.Fatal("member has no read counter")
	}
	return r.Reads()
}

// A single-page media error on an otherwise healthy member must be healed
// by read-repair: the read succeeds with correct data, the member is NOT
// declared failed, and — verified through per-disk op counters — the very
// next read of the same page is served by the member directly, no
// reconstruction involved.
func TestReadRepairSingleMediaError(t *testing.T) {
	for _, level := range []Level{Level5, Level6} {
		disks := 5
		if level == Level6 {
			disks = 6
		}
		a := newDataArray(t, level, disks, 160, 16)
		oracle := writeAll(t, a, a.Pages())

		lba := int64(37)
		l := a.geo.locate(lba)
		a.Injector(l.disk).InjectBadPage(l.row)

		buf := make([]byte, blockdev.PageSize)
		if _, err := a.ReadPages(0, lba, 1, buf); err != nil {
			t.Fatalf("%v: read with media error: %v", level, err)
		}
		if !bytes.Equal(buf, oracle[lba]) {
			t.Fatalf("%v: read-repair returned wrong data", level)
		}
		if len(a.FailedDisks()) != 0 {
			t.Fatalf("%v: media error failed the member disk", level)
		}
		st := a.Stats()
		if st.MediaErrors != 1 || st.ReadRepairs != 1 {
			t.Fatalf("%v: stats = %+v, want 1 media error / 1 read repair", level, st)
		}

		// The page was rewritten in place: re-reading touches only the
		// data member, proving the repair stuck.
		before := make([]int64, disks)
		for i := range before {
			before[i] = memberReads(t, a, i)
		}
		if _, err := a.ReadPages(0, lba, 1, buf); err != nil {
			t.Fatalf("%v: re-read: %v", level, err)
		}
		for i := range before {
			delta := memberReads(t, a, i) - before[i]
			want := int64(0)
			if i == l.disk {
				want = 1
			}
			if delta != want {
				t.Fatalf("%v: disk %d saw %d reads after repair, want %d", level, i, delta, want)
			}
		}
		verifyAll(t, a, oracle)
	}
}

// RAID-6 can repair a media-lost data page via Q even while the P disk is
// whole-device failed.
func TestReadRepairViaQWithPFailed(t *testing.T) {
	a := newDataArray(t, Level6, 6, 160, 16)
	oracle := writeAll(t, a, a.Pages())
	lba := int64(101)
	l := a.geo.locate(lba)
	a.FailDisk(l.pDisk)
	a.Injector(l.disk).InjectBadPage(l.row)
	buf := make([]byte, blockdev.PageSize)
	if _, err := a.ReadPages(0, lba, 1, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, oracle[lba]) {
		t.Fatal("repair via Q returned wrong data")
	}
}

// When redundancy is exhausted the read must fail loudly, not serve
// zeros or stale bytes.
func TestReadRepairUnrecoverable(t *testing.T) {
	a := newDataArray(t, Level5, 5, 160, 16)
	writeAll(t, a, a.Pages())
	lba := int64(5)
	l := a.geo.locate(lba)
	peers := a.RowPeers(lba)
	l2 := a.geo.locate(peers[1])
	a.Injector(l.disk).InjectBadPage(l.row)
	a.Injector(l2.disk).InjectBadPage(l2.row)
	buf := make([]byte, blockdev.PageSize)
	if _, err := a.ReadPages(0, lba, 1, buf); !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("err = %v, want ErrUnrecoverable", err)
	}
}

// A media error on a row whose parity is stale is inside the
// delayed-parity data-loss window: it must surface as ErrStaleParity.
func TestReadRepairStaleRow(t *testing.T) {
	a := newDataArray(t, Level5, 5, 160, 16)
	oracle := writeAll(t, a, a.Pages())
	lba := int64(12)
	p := oracle[lba]
	p[2] ^= 0xFF
	if _, err := a.WriteNoParity(0, lba, 1, p); err != nil {
		t.Fatal(err)
	}
	// Lose a *different* page of the same (now stale) row.
	peers := a.RowPeers(lba)
	l2 := a.geo.locate(peers[1])
	a.Injector(l2.disk).InjectBadPage(l2.row)
	buf := make([]byte, blockdev.PageSize)
	if _, err := a.ReadPages(0, peers[1], 1, buf); !errors.Is(err, ErrStaleParity) {
		t.Fatalf("err = %v, want ErrStaleParity", err)
	}
}

func TestScrubRepairsLatentAndBitRot(t *testing.T) {
	a := newDataArray(t, Level5, 5, 160, 16)
	oracle := writeAll(t, a, a.Pages())

	// Latent sector error on one member page.
	lbaA := int64(3)
	la := a.geo.locate(lbaA)
	a.Injector(la.disk).InjectBadPage(la.row)

	// Detectable bit-rot (checksum mismatch) on another member page.
	lbaB := int64(400)
	lb := a.geo.locate(lbaB)
	memberStore(t, a, lb.disk).CorruptPage(lb.row, 99)

	// Silent bit-flip on a parity page: only the parity cross-check can
	// see it.
	lbaC := int64(200)
	lc := a.geo.locate(lbaC)
	memberStore(t, a, lc.pDisk).CorruptPageSilently(lc.row, 7)

	_, rep, err := a.Scrub(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MediaRepaired != 2 {
		t.Fatalf("MediaRepaired = %d, want 2 (latent + bit-rot)", rep.MediaRepaired)
	}
	if rep.ParityFixed != 1 {
		t.Fatalf("ParityFixed = %d, want 1 (silent parity flip)", rep.ParityFixed)
	}
	if len(rep.Unrecoverable) != 0 {
		t.Fatalf("unexpected unrecoverable rows: %v", rep.Unrecoverable)
	}
	verifyAll(t, a, oracle)

	// A second pass must find a fully healthy array.
	_, rep2, err := a.Scrub(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.MediaRepaired != 0 || rep2.ParityFixed != 0 || len(rep2.Unrecoverable) != 0 {
		t.Fatalf("second scrub not clean: %+v", rep2)
	}
}

// Stale-parity rows belong to the cleaner: the scrub must leave them
// alone (resyncing them here would race the pending delta application).
func TestScrubSkipsStaleRows(t *testing.T) {
	a := newDataArray(t, Level5, 5, 160, 16)
	oracle := writeAll(t, a, a.Pages())
	lba := int64(48)
	p := oracle[lba]
	p[0] ^= 0xAA
	if _, err := a.WriteNoParity(0, lba, 1, p); err != nil {
		t.Fatal(err)
	}
	stale := a.StaleRows()
	if stale == 0 {
		t.Fatal("WriteNoParity left no stale rows")
	}
	_, rep, err := a.Scrub(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RowsSkipped != int64(stale) {
		t.Fatalf("RowsSkipped = %d, want %d", rep.RowsSkipped, stale)
	}
	if rep.ParityFixed != 0 {
		t.Fatal("scrub touched parity of a stale row")
	}
	if a.StaleRows() != stale {
		t.Fatal("scrub changed the stale-row set")
	}
}

func TestScrubReportsUnrecoverableRows(t *testing.T) {
	a := newDataArray(t, Level5, 5, 160, 16)
	writeAll(t, a, a.Pages())
	lba := int64(64)
	peers := a.RowPeers(lba)
	l0 := a.geo.locate(peers[0])
	l1 := a.geo.locate(peers[1])
	a.Injector(l0.disk).InjectBadPage(l0.row)
	a.Injector(l1.disk).InjectBadPage(l1.row)
	_, rep, err := a.Scrub(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Unrecoverable) != 1 || rep.Unrecoverable[0] != l0.row {
		t.Fatalf("Unrecoverable = %v, want [%d]", rep.Unrecoverable, l0.row)
	}
	// The pages must still read as errors — never silently "repaired".
	buf := make([]byte, blockdev.PageSize)
	if _, err := a.ReadPages(0, peers[0], 1, buf); !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("unrecoverable page served: %v", err)
	}
}

func TestScrubMirrors(t *testing.T) {
	a := newDataArray(t, Level1, 3, 64, 8)
	oracle := writeAll(t, a, a.Pages())
	// Mirror 1 loses a page to a latent error; mirror 2 silently diverges.
	a.Injector(1).InjectBadPage(9)
	memberStore(t, a, 2).CorruptPageSilently(9, 3)
	_, rep, err := a.Scrub(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MediaRepaired != 1 || rep.ParityFixed != 1 {
		t.Fatalf("report = %+v, want 1 media repair + 1 divergence fix", rep)
	}
	verifyAll(t, a, oracle)
	buf := make([]byte, blockdev.PageSize)
	for i := 0; i < 3; i++ {
		if err := memberStore(t, a, i).ReadPageChecked(9, buf); err != nil {
			t.Fatalf("mirror %d still bad: %v", i, err)
		}
		want := make([]byte, blockdev.PageSize)
		memberStore(t, a, 0).ReadPage(9, want)
		if !bytes.Equal(buf, want) {
			t.Fatalf("mirror %d diverges after scrub", i)
		}
	}
}

func TestResyncRowClearsStaleAndRepairsParity(t *testing.T) {
	a := newDataArray(t, Level5, 5, 160, 16)
	oracle := writeAll(t, a, a.Pages())
	lba := int64(80)
	p := oracle[lba]
	p[5] ^= 0x55
	if _, err := a.WriteNoParity(0, lba, 1, p); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ResyncRow(0, lba); err != nil {
		t.Fatal(err)
	}
	if a.StaleRows() != 0 {
		t.Fatal("ResyncRow left the row stale")
	}
	_, rep, err := a.Scrub(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ParityFixed != 0 || len(rep.Unrecoverable) != 0 {
		t.Fatalf("parity inconsistent after ResyncRow: %+v", rep)
	}
	verifyAll(t, a, oracle)
}
