package raid

import (
	"fmt"
	"sort"

	"kddcache/internal/blockdev"
	"kddcache/internal/obs"
	"kddcache/internal/sim"
)

// This file implements the online, resumable member rebuild (§III-E: "if
// a HDD fails, KDD first updates all parity blocks using the parity_update
// interface and then triggers the rebuilding process").
//
// The rebuild is a per-array state machine with a row watermark:
//
//	(degraded) ──StartRebuild──▶ rebuilding(next=0)
//	rebuilding ──RebuildStep───▶ rebuilding(next+=rows)
//	rebuilding ──next==rows────▶ (healthy)
//	rebuilding ──target fails──▶ (degraded, rebuild abandoned)
//
// Rows below the watermark are fully reconstructed onto the replacement
// device: foreground reads hit it directly and writes maintain its parity
// like any healthy member. Rows at or above the watermark are treated as
// missing — reads reconstruct from the survivors and writes fold into the
// surviving redundancy — even though the replacement device is physically
// readable (it holds unwritten zeros there). The watermark is the single
// source of truth for that routing; see Array.missing.
//
// The watermark is volatile software state: a power failure forgets it
// (CrashRebuildState) and recovery must resume from the checkpoint the
// cache engine persists in NVRAM (core.Restore → ResumeRebuild). Resuming
// at an older watermark is always safe — re-rebuilding a row writes the
// same bytes.

// rebuildState tracks one in-progress member rebuild.
type rebuildState struct {
	disk int   // member being rebuilt
	next int64 // watermark: rows [0, next) are reconstructed
}

// ResyncError reports that a rebuild could not start because stale parity
// rows could not all be resynchronised first (§III-E ordering). It wraps
// ErrNeedResync so existing errors.Is checks keep working, and carries the
// stale-row count the caller would otherwise have to re-derive.
type ResyncError struct {
	StaleRows int   // rows still stale when the resync gave up
	Err       error // first row-level failure
}

func (e *ResyncError) Error() string {
	return fmt.Sprintf("raid: %d stale parity rows could not be resynced before rebuild: %v", e.StaleRows, e.Err)
}

// Unwrap makes errors.Is(err, ErrNeedResync) hold.
func (e *ResyncError) Unwrap() error { return ErrNeedResync }

// missing reports whether member disk's page at row must be treated as
// absent: the device is failed outright, or it is the target of an active
// rebuild and the row is still above the watermark (physically readable,
// but holding unwritten zeros, not data).
func (a *Array) missing(disk int, row int64) bool {
	if a.disks[disk].Failed() {
		return true
	}
	return a.rebuild != nil && disk == a.rebuild.disk && row >= a.rebuild.next
}

// rowErasures counts the missing pages of one row (data + parity).
func (a *Array) rowErasures(rl rowLoc) int {
	er := 0
	for _, disk := range rl.dataDisks {
		if a.missing(disk, rl.row) {
			er++
		}
	}
	if rl.pDisk >= 0 && a.missing(rl.pDisk, rl.row) {
		er++
	}
	if rl.qDisk >= 0 && a.missing(rl.qDisk, rl.row) {
		er++
	}
	return er
}

// pageLost reports whether the logical content of disk's page at row has
// been lost (redundancy exhausted during a rebuild window). Lost pages are
// served loudly as ErrUnrecoverable until something overwrites them.
func (a *Array) pageLost(disk int, row int64) bool {
	return a.lost[row]&(1<<uint(disk)) != 0
}

// clearLost drops the lost mark for one page (it was just overwritten).
func (a *Array) clearLost(disk int, row int64) {
	if m, ok := a.lost[row]; ok {
		m &^= 1 << uint(disk)
		if m == 0 {
			delete(a.lost, row)
		} else {
			a.lost[row] = m
		}
	}
}

// markLost records that disk's page at row is unrecoverable.
func (a *Array) markLost(disk int, row int64) {
	if !a.pageLost(disk, row) {
		a.lost[row] |= 1 << uint(disk)
		a.stats.LostPages++
	}
}

// LostRows returns the rows holding at least one unrecoverable page, in
// ascending order.
func (a *Array) LostRows() []int64 {
	rows := make([]int64, 0, len(a.lost))
	for r := range a.lost {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
	return rows
}

// AddSpare parks a hot-spare device for automatic attachment when a
// member fails. The spare must match the member geometry.
func (a *Array) AddSpare(dev blockdev.Device) error {
	if dev.Pages() != a.geo.diskPages {
		return fmt.Errorf("%w: spare size mismatch", ErrBadGeometry)
	}
	a.spares = append(a.spares, dev)
	return nil
}

// SpareCount returns the number of parked hot spares.
func (a *Array) SpareCount() int { return len(a.spares) }

// RebuildActive reports whether a member rebuild is in progress.
func (a *Array) RebuildActive() bool { return a.rebuild != nil }

// RebuildTarget returns the member being rebuilt and its row watermark.
// active is false when no rebuild is running.
func (a *Array) RebuildTarget() (disk int, watermark int64, active bool) {
	if a.rebuild == nil {
		return 0, 0, false
	}
	return a.rebuild.disk, a.rebuild.next, true
}

// StartRebuild swaps failed member i for a fresh device and opens the
// rebuild window at row 0. Stale parity rows are resynchronised first
// (§III-E: parity_update precedes rebuild) — automatically, so callers
// need not know the ordering. Rows whose staleness cannot be repaired
// (the failed member holds their data, so reconstruct-write is impossible)
// have that page marked lost and are healed to a defined state when the
// watermark passes them.
func (a *Array) StartRebuild(t sim.Time, i int, fresh blockdev.Device) (sim.Time, error) {
	if !a.disks[i].Failed() {
		return t, ErrNotDegraded
	}
	if a.rebuild != nil {
		return t, fmt.Errorf("raid: rebuild of disk %d already in progress", a.rebuild.disk)
	}
	if fresh.Pages() != a.geo.diskPages {
		return t, fmt.Errorf("%w: replacement size mismatch", ErrBadGeometry)
	}
	done, err := a.resyncForRebuild(t, i)
	if err != nil {
		return t, err
	}
	a.disks[i].Repair(fresh)
	a.failed--
	a.rebuild = &rebuildState{disk: i, next: 0}
	a.stats.RebuildsStarted++
	return done, nil
}

// StartSpareRebuild attaches a parked hot spare to the lowest-numbered
// failed member and opens its rebuild window. started is false when there
// is nothing to do (no failure, no spare, or a rebuild already running).
func (a *Array) StartSpareRebuild(t sim.Time) (done sim.Time, started bool, err error) {
	if a.rebuild != nil || a.failed == 0 || len(a.spares) == 0 {
		return t, false, nil
	}
	target := -1
	for i, d := range a.disks {
		if d.Failed() {
			target = i
			break
		}
	}
	if target < 0 {
		return t, false, nil
	}
	spare := a.spares[0]
	a.spares = a.spares[1:]
	done, err = a.StartRebuild(t, target, spare)
	if err != nil {
		a.spares = append([]blockdev.Device{spare}, a.spares...)
		return t, false, err
	}
	a.stats.SpareAttaches++
	return done, true, nil
}

// resyncForRebuild repairs every stale parity row before the rebuild of
// disk i opens. Rows that cannot be resynced because disk i holds their
// data (stale parity + missing data = no reconstruction) get that page
// marked lost; any other failure aborts with a typed ResyncError carrying
// the remaining stale-row count.
func (a *Array) resyncForRebuild(t sim.Time, i int) (sim.Time, error) {
	if len(a.stale) == 0 {
		return t, nil
	}
	rows := make([]int64, 0, len(a.stale))
	for r := range a.stale {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(x, y int) bool { return rows[x] < rows[y] })
	done := t
	for _, row := range rows {
		c, err := a.resyncRow(t, row)
		if err == nil {
			done = sim.MaxTime(done, c)
			t = c
			continue
		}
		if err == ErrTooManyFailures || a.rowHasData(i, row) {
			// The failed member holds data of this stale row: its content
			// is gone (the data-loss window §III-E closes by folding
			// parity BEFORE rebuild). Account for it loudly and let the
			// rebuild heal the row to a defined (zero-filled) state.
			a.markLost(i, row)
			delete(a.stale, row)
			continue
		}
		return t, &ResyncError{StaleRows: len(a.stale), Err: err}
	}
	return done, nil
}

// rowHasData reports whether disk i holds a data page (not parity) in row.
func (a *Array) rowHasData(i int, row int64) bool {
	rl := a.geo.locateRow(row / a.geo.chunkPages)
	for _, disk := range rl.dataDisks {
		if disk == i {
			return true
		}
	}
	return false
}

// ResumeRebuild re-opens a rebuild window after a crash, from the
// checkpoint recovery read out of NVRAM. The checkpoint is written after
// every step, so watermark never exceeds the rows actually reconstructed;
// resuming at an older watermark merely re-rebuilds rows, which is
// idempotent. Resuming onto a member that has since failed (the target
// died before the crash and the checkpoint never caught up) is a no-op:
// the rebuild is dead and a spare attach must start a fresh one.
func (a *Array) ResumeRebuild(disk int, watermark int64) error {
	if disk < 0 || disk >= len(a.disks) {
		return fmt.Errorf("%w: rebuild checkpoint names disk %d of %d", ErrBadGeometry, disk, len(a.disks))
	}
	if watermark < 0 || watermark > a.geo.diskPages {
		return fmt.Errorf("%w: rebuild checkpoint watermark %d outside [0,%d]", ErrBadGeometry, watermark, a.geo.diskPages)
	}
	if a.disks[disk].Failed() {
		return nil
	}
	if watermark >= a.geo.diskPages {
		a.rebuild = nil
		return nil
	}
	a.rebuild = &rebuildState{disk: disk, next: watermark}
	return nil
}

// CrashRebuildState models the power-failure loss of the volatile rebuild
// tracker: the watermark lives in array software state, not on any
// device, so a crash forgets it. Rigs call this when simulating a crash;
// recovery must then ResumeRebuild from the NVRAM checkpoint or the
// un-rebuilt region would silently be served as valid zeros.
func (a *Array) CrashRebuildState() { a.rebuild = nil }

// RebuildStep reconstructs up to maxRows rows of the active rebuild and
// advances the watermark. It returns the rows actually reconstructed and
// whether the rebuild completed (also true when none is active). The
// caller paces these steps against foreground traffic (the KDD engine's
// token bucket, or a driver loop).
func (a *Array) RebuildStep(t sim.Time, maxRows int) (done sim.Time, rowsDone int, complete bool, err error) {
	if a.rebuild == nil {
		return t, 0, true, nil
	}
	if a.tr != nil {
		sp := a.tr.BeginDev(t, obs.PhaseRebuild, a.Name(), a.rebuild.next, maxRows)
		defer func() { sp.End(done) }()
	}
	done = t
	target := a.rebuild.disk
	for rowsDone < maxRows && a.rebuild != nil && a.rebuild.next < a.geo.diskPages {
		row := a.rebuild.next
		c, err := a.rebuildRow(t, target, row)
		if err != nil {
			return done, rowsDone, false, err
		}
		done = sim.MaxTime(done, c)
		t = c // rebuild rows are serialized background work
		a.rebuild.next = row + 1
		rowsDone++
		a.stats.RebuildRows++
		a.stats.RebuildBytes += blockdev.PageSize
	}
	if a.rebuild != nil && a.rebuild.next >= a.geo.diskPages {
		a.rebuild = nil
		a.stats.RebuildsCompleted++
	}
	return done, rowsDone, a.rebuild == nil, nil
}

// rebuildRow reconstructs the target member's page at row and writes it.
func (a *Array) rebuildRow(t sim.Time, target int, row int64) (done sim.Time, err error) {
	if a.tr != nil {
		sp := a.tr.BeginDev(t, obs.PhaseRebuildRow, a.Name(), row, 1)
		defer func() { sp.End(done) }()
	}
	dataMode := a.dataMode()
	var page []byte

	switch a.cfg.Level {
	case Level1:
		src := -1
		for j := range a.disks {
			if j != target && !a.missing(j, row) {
				src = j
				break
			}
		}
		if src == -1 {
			return t, ErrTooManyFailures
		}
		page = pageScratch(dataMode)
		c, err := a.readMember(t, src, row, page)
		if err != nil {
			return t, err
		}
		t = c
	case Level5, Level6:
		usable := a.geo.diskPages - a.geo.diskPages%a.geo.chunkPages
		if row >= usable {
			// Tail rows beyond the last whole chunk carry no logical data;
			// a fresh device already holds zeros there.
			page = pageScratch(dataMode)
			break
		}
		rl := a.geo.locateRow(row / a.geo.chunkPages)
		rl.row = row
		if a.stale[row] || a.pageLost(target, row) {
			// Stale parity or an already-lost target page: heal to a
			// defined state instead of reconstructing. Rows with lost
			// pages on OTHER members only are physically consistent (the
			// loss was healed when their own rebuild passed them) and take
			// the normal path below.
			return a.rebuildDamagedRow(t, target, rl)
		}
		st, c, err := a.readRow(t, rl, nil)
		if err != nil {
			return t, err
		}
		defer st.release()
		t = c
		if !a.recoverable(st) {
			// A second member failed inside the rebuild window and this
			// row's erasures exceed the level's tolerance (RAID-5 with a
			// concurrent failure). Account for every missing page loudly
			// and move on — the surviving members still serve their own
			// pages directly.
			for _, idx := range st.missingD {
				a.markLost(rl.dataDisks[idx], row)
			}
			if st.missingP {
				a.markLost(rl.pDisk, row)
			}
			if st.missingQ {
				a.markLost(rl.qDisk, row)
			}
			return t, nil
		}
		if dataMode {
			if err := a.solveRow(st); err != nil {
				return t, err
			}
			switch {
			case rl.pDisk == target:
				page = st.p
			case rl.qDisk == target:
				page = st.q
			default:
				for i, disk := range rl.dataDisks {
					if disk == target {
						page = st.data[i]
						break
					}
				}
			}
		}
		if page == nil {
			page = pageScratch(dataMode)
			defer putScratch(page) // distinct from st's pages: no double-put
		}
	default:
		return t, ErrTooManyFailures
	}

	a.stats.RebuildWrite++
	c, err := a.disks[target].WritePages(t, row, 1, page)
	if err != nil {
		return t, err
	}
	return c, nil
}

// rebuildDamagedRow heals a stale or partially-lost row to a defined
// state: lost data pages are zero-filled, and parity is recomputed from
// the surviving data plus those zeros, so the row becomes internally
// consistent while reads of the lost pages keep failing loudly until
// something overwrites them. A stale row whose target holds parity is the
// benign case — parity is simply recomputed from the (all readable) data.
// Rows damaged beyond the target (a second member also lost pages) are
// left alone — writing anything there would destroy evidence.
func (a *Array) rebuildDamagedRow(t sim.Time, target int, rl rowLoc) (sim.Time, error) {
	targetIsData := target != rl.pDisk && target != rl.qDisk
	if a.stale[rl.row] && targetIsData {
		// Stale parity cannot reconstruct the target's data: the page is
		// gone (normally already accounted by StartRebuild's resync).
		a.markLost(target, rl.row)
	}
	if a.lost[rl.row]&^(1<<uint(target)) != 0 {
		return t, nil
	}
	dataMode := a.dataMode()
	var p, q []byte
	if dataMode {
		p = blockdev.GetZeroPage()
		defer blockdev.PutPage(p)
		if rl.qDisk >= 0 {
			q = blockdev.GetZeroPage()
			defer blockdev.PutPage(q)
		}
	}
	tmp := pageScratch(dataMode)
	defer putScratch(tmp)
	done := t
	for i, disk := range rl.dataDisks {
		if disk == target {
			continue // lost page: defined as zeros, contributes nothing
		}
		if a.missing(disk, rl.row) {
			return t, nil // second failure on a damaged row: leave it
		}
		c, err := a.readMember(t, disk, rl.row, tmp)
		if err != nil {
			return t, err
		}
		done = sim.MaxTime(done, c)
		if dataMode {
			xorInto(p, tmp)
			if q != nil {
				gfMulInto(q, tmp, gfPow(i))
			}
		}
	}
	// Write the target's page: recomputed parity when it holds P/Q, a
	// defined zero page when its data is lost (a fresh device holds zeros
	// already, but a resumed rebuild may be re-walking the row).
	page := pageScratch(dataMode)
	switch target {
	case rl.pDisk:
		page = p
	case rl.qDisk:
		page = q
	}
	a.stats.RebuildWrite++
	c, err := a.disks[target].WritePages(done, rl.row, 1, page)
	if err != nil {
		return t, err
	}
	done = sim.MaxTime(done, c)
	if rl.pDisk >= 0 && rl.pDisk != target && !a.missing(rl.pDisk, rl.row) {
		a.stats.ParityWrites++
		if c, err = a.disks[rl.pDisk].WritePages(done, rl.row, 1, p); err != nil {
			return t, err
		}
		done = sim.MaxTime(done, c)
	}
	if rl.qDisk >= 0 && rl.qDisk != target && !a.missing(rl.qDisk, rl.row) {
		a.stats.ParityWrites++
		if c, err = a.disks[rl.qDisk].WritePages(done, rl.row, 1, q); err != nil {
			return t, err
		}
		done = sim.MaxTime(done, c)
	}
	delete(a.stale, rl.row)
	return done, nil
}
