package raid

import (
	"sort"

	"kddcache/internal/blockdev"
	"kddcache/internal/sim"
)

// RowFix is one parity row's repair work for ParityUpdateDeltaBatch: the
// data LBAs whose deltas must be folded into the row's parity, and the
// raw XOR images (old⊕new) per LBA (nil slices in timing mode).
type RowFix struct {
	LBAs   []int64
	Deltas [][]byte
}

// ParityUpdateDeltaBatch repairs many rows' parities at once, reading and
// writing each member disk's stale parity pages in consecutive runs —
// the "large sequential accesses" batch reconciliation that parity
// logging (Stodolsky et al.) and MD-style resync rely on. Behaviour is
// equivalent to calling ParityUpdateDelta per row; only the I/O pattern
// (and therefore the timing) differs.
func (a *Array) ParityUpdateDeltaBatch(t sim.Time, fixes []RowFix) (sim.Time, error) {
	if a.cfg.Level != Level5 && a.cfg.Level != Level6 {
		return t, nil
	}
	type rowWork struct {
		row  int64
		fix  RowFix
		p, q []byte // parity pages in flight (data mode)
	}
	// Group rows by their P disk (Q handled alongside).
	byDisk := make(map[int][]*rowWork)
	for _, f := range fixes {
		if len(f.LBAs) == 0 {
			continue
		}
		l := a.geo.locate(f.LBAs[0])
		pFailed := a.disks[l.pDisk].Failed()
		qFailed := l.qDisk >= 0 && a.disks[l.qDisk].Failed()
		if pFailed || qFailed {
			// Degraded rows take the single-row path, which knows the
			// fold-into-survivor and rebuild-will-recompute rules.
			if _, err := a.ParityUpdateDelta(t, f.LBAs, f.Deltas); err != nil {
				return t, err
			}
			continue
		}
		byDisk[l.pDisk] = append(byDisk[l.pDisk], &rowWork{row: l.row, fix: f})
	}

	dataMode := a.dataMode()
	done := t
	for disk, rows := range byDisk {
		sort.Slice(rows, func(i, j int) bool { return rows[i].row < rows[j].row })

		// Phase 1: read stale parities in consecutive runs.
		phase1 := t
		for start := 0; start < len(rows); {
			end := start + 1
			for end < len(rows) && rows[end].row == rows[end-1].row+1 {
				end++
			}
			n := end - start
			var buf []byte
			if dataMode {
				buf = make([]byte, n*blockdev.PageSize)
			}
			a.stats.ParityReads += int64(n)
			c, err := a.disks[disk].ReadPages(t, rows[start].row, n, buf)
			if err != nil {
				return t, err
			}
			phase1 = sim.MaxTime(phase1, c)
			if dataMode {
				for i := 0; i < n; i++ {
					rows[start+i].p = buf[i*blockdev.PageSize : (i+1)*blockdev.PageSize]
				}
			}
			start = end
		}

		// Q parities (RAID-6) read per matching row from the Q disks.
		if a.cfg.Level == Level6 {
			for _, rw := range rows {
				l := a.geo.locate(rw.fix.LBAs[0])
				var qbuf []byte
				if dataMode {
					qbuf = make([]byte, blockdev.PageSize)
				}
				a.stats.ParityReads++
				c, err := a.disks[l.qDisk].ReadPages(t, l.row, 1, qbuf)
				if err != nil {
					return t, err
				}
				phase1 = sim.MaxTime(phase1, c)
				rw.q = qbuf
			}
		}

		// Fold deltas in memory.
		if dataMode {
			for _, rw := range rows {
				for i, lba := range rw.fix.LBAs {
					if rw.fix.Deltas == nil || rw.fix.Deltas[i] == nil {
						continue
					}
					li := a.geo.locate(lba)
					xorInto(rw.p, rw.fix.Deltas[i])
					if rw.q != nil {
						gfMulInto(rw.q, rw.fix.Deltas[i], gfPow(li.dataIdx))
					}
				}
			}
		}

		// Phase 2: write repaired parities back in runs.
		for start := 0; start < len(rows); {
			end := start + 1
			for end < len(rows) && rows[end].row == rows[end-1].row+1 {
				end++
			}
			n := end - start
			var buf []byte
			if dataMode {
				buf = make([]byte, n*blockdev.PageSize)
				for i := 0; i < n; i++ {
					copy(buf[i*blockdev.PageSize:], rows[start+i].p)
				}
			}
			a.stats.ParityWrites += int64(n)
			a.stats.ParityFixes += int64(n)
			c, err := a.disks[disk].WritePages(phase1, rows[start].row, n, buf)
			if err != nil {
				return t, err
			}
			done = sim.MaxTime(done, c)
			start = end
		}
		if a.cfg.Level == Level6 {
			for _, rw := range rows {
				l := a.geo.locate(rw.fix.LBAs[0])
				a.stats.ParityWrites++
				c, err := a.disks[l.qDisk].WritePages(phase1, l.row, 1, rw.q)
				if err != nil {
					return t, err
				}
				done = sim.MaxTime(done, c)
			}
		}
		for _, rw := range rows {
			delete(a.stale, rw.row)
		}
	}
	return done, nil
}
