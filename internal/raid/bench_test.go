package raid

import (
	"testing"

	"kddcache/internal/blockdev"
	"kddcache/internal/sim"
)

func benchArray(b *testing.B, data bool) *Array {
	b.Helper()
	var members []blockdev.Device
	for i := 0; i < 5; i++ {
		if data {
			members = append(members, blockdev.NewNullDataDevice("d", 65536))
		} else {
			members = append(members, blockdev.NewNullDevice("d", 65536))
		}
	}
	a, err := New(Config{Level: Level5, ChunkPages: 16}, members)
	if err != nil {
		b.Fatal(err)
	}
	return a
}

// BenchmarkSmallWrite measures the RAID-5 read-modify-write path — the
// "small write problem" the whole paper is about.
func BenchmarkSmallWrite(b *testing.B) {
	a := benchArray(b, true)
	page := make([]byte, blockdev.PageSize)
	rng := sim.NewRNG(1)
	b.SetBytes(blockdev.PageSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.WritePages(0, int64(rng.Uint64n(200000)), 1, page); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWriteNoParity measures KDD's write-hit fast path.
func BenchmarkWriteNoParity(b *testing.B) {
	a := benchArray(b, true)
	page := make([]byte, blockdev.PageSize)
	rng := sim.NewRNG(1)
	b.SetBytes(blockdev.PageSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.WriteNoParity(0, int64(rng.Uint64n(200000)), 1, page); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParityP computes XOR parity over a 4-page row.
func BenchmarkParityP(b *testing.B) {
	pages := make([][]byte, 4)
	rng := sim.NewRNG(2)
	for i := range pages {
		pages[i] = make([]byte, blockdev.PageSize)
		for j := range pages[i] {
			pages[i][j] = byte(rng.Uint64())
		}
	}
	p := make([]byte, blockdev.PageSize)
	b.SetBytes(4 * blockdev.PageSize)
	for i := 0; i < b.N; i++ {
		for j := range p {
			p[j] = 0
		}
		for _, d := range pages {
			xorInto(p, d)
		}
	}
}

// BenchmarkParityQ computes RAID-6 Q parity (GF multiply-accumulate).
func BenchmarkParityQ(b *testing.B) {
	pages := make([][]byte, 4)
	rng := sim.NewRNG(2)
	for i := range pages {
		pages[i] = make([]byte, blockdev.PageSize)
		for j := range pages[i] {
			pages[i][j] = byte(rng.Uint64())
		}
	}
	q := make([]byte, blockdev.PageSize)
	b.SetBytes(4 * blockdev.PageSize)
	for i := 0; i < b.N; i++ {
		for j := range q {
			q[j] = 0
		}
		for k, d := range pages {
			gfMulInto(q, d, gfPow(k))
		}
	}
}

// BenchmarkDegradedRead measures single-erasure reconstruction.
func BenchmarkDegradedRead(b *testing.B) {
	a := benchArray(b, true)
	page := make([]byte, blockdev.PageSize)
	for lba := int64(0); lba < 1024; lba++ {
		if _, err := a.WritePages(0, lba, 1, page); err != nil {
			b.Fatal(err)
		}
	}
	a.FailDisk(0)
	buf := make([]byte, blockdev.PageSize)
	rng := sim.NewRNG(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.ReadPages(0, int64(rng.Uint64n(1024)), 1, buf); err != nil {
			b.Fatal(err)
		}
	}
}
