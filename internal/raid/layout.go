package raid

import "fmt"

// Level identifies the array organisation.
type Level int

// Supported RAID levels.
const (
	Level0 Level = 0
	Level1 Level = 1
	Level5 Level = 5
	Level6 Level = 6
)

func (l Level) String() string { return fmt.Sprintf("RAID-%d", int(l)) }

// parityDisks returns how many disks per stripe hold parity.
func (l Level) parityDisks() int {
	switch l {
	case Level5:
		return 1
	case Level6:
		return 2
	default:
		return 0
	}
}

// faultTolerance returns how many simultaneous disk losses are survivable.
func (l Level) faultTolerance(disks int) int {
	switch l {
	case Level1:
		return disks - 1
	case Level5:
		return 1
	case Level6:
		return 2
	default:
		return 0
	}
}

// loc pins one logical page onto the array.
type loc struct {
	stripe  int64 // stripe number
	row     int64 // disk LBA: stripe*chunkPages + pageInChunk
	dataIdx int   // index of the page's chunk among the stripe's data chunks
	disk    int   // disk holding the data page
	pDisk   int   // disk holding P parity for this stripe (-1 if none)
	qDisk   int   // disk holding Q parity (-1 if none)
}

// layout computes address mapping for an array.
type layout struct {
	level      Level
	disks      int
	chunkPages int64
	diskPages  int64 // capacity of each member disk
}

// dataChunksPerStripe returns the number of data chunks in one stripe.
func (g *layout) dataChunksPerStripe() int64 {
	if g.level == Level1 {
		return 1
	}
	return int64(g.disks - g.level.parityDisks())
}

// dataPages returns the logical capacity in pages: every disk LBA is one
// row, and each row carries one page per data chunk.
func (g *layout) dataPages() int64 {
	usableRows := g.diskPages - g.diskPages%g.chunkPages // whole chunks only
	return usableRows * g.dataChunksPerStripe()
}

// locate maps a logical page number to its physical location.
// Left-symmetric rotation: parity starts on the last disk and moves left
// each stripe; data chunks wrap around starting just after the parity
// (after Q for RAID-6), matching the Linux MD default layout.
func (g *layout) locate(lba int64) loc {
	dc := g.dataChunksPerStripe()
	stripePages := g.chunkPages * dc
	stripe := lba / stripePages
	off := lba % stripePages
	dataIdx := int(off / g.chunkPages)
	pageInChunk := off % g.chunkPages
	row := stripe*g.chunkPages + pageInChunk

	l := loc{stripe: stripe, row: row, dataIdx: dataIdx, pDisk: -1, qDisk: -1}
	switch g.level {
	case Level0:
		l.disk = dataIdx
	case Level1:
		l.disk = 0 // primary copy; mirrors handled by the array
	case Level5:
		p := g.disks - 1 - int(stripe%int64(g.disks))
		l.pDisk = p
		l.disk = (p + 1 + dataIdx) % g.disks
	case Level6:
		p := g.disks - 1 - int(stripe%int64(g.disks))
		q := (p + 1) % g.disks
		l.pDisk = p
		l.qDisk = q
		l.disk = (q + 1 + dataIdx) % g.disks
	}
	return l
}

// rowLoc describes a full parity row (same disk LBA across the stripe):
// which disks hold the data pages (in data-chunk order) and parity.
type rowLoc struct {
	row       int64
	dataDisks []int
	pDisk     int
	qDisk     int
}

// locateRow expands the row containing disk LBA `row` within `stripe`.
func (g *layout) locateRow(stripe int64) rowLoc {
	dc := int(g.dataChunksPerStripe())
	rl := rowLoc{pDisk: -1, qDisk: -1}
	switch g.level {
	case Level0:
		for i := 0; i < dc; i++ {
			rl.dataDisks = append(rl.dataDisks, i)
		}
	case Level1:
		rl.dataDisks = []int{0}
	case Level5:
		p := g.disks - 1 - int(stripe%int64(g.disks))
		rl.pDisk = p
		for i := 0; i < dc; i++ {
			rl.dataDisks = append(rl.dataDisks, (p+1+i)%g.disks)
		}
	case Level6:
		p := g.disks - 1 - int(stripe%int64(g.disks))
		q := (p + 1) % g.disks
		rl.pDisk = p
		rl.qDisk = q
		for i := 0; i < dc; i++ {
			rl.dataDisks = append(rl.dataDisks, (q+1+i)%g.disks)
		}
	}
	return rl
}

// logicalLBA is the inverse of locate for a (stripe, dataIdx, pageInChunk).
func (g *layout) logicalLBA(stripe int64, dataIdx int, pageInChunk int64) int64 {
	dc := g.dataChunksPerStripe()
	return stripe*g.chunkPages*dc + int64(dataIdx)*g.chunkPages + pageInChunk
}
