package raid

import (
	"testing"

	"kddcache/internal/obs"
)

// TestTracerAndMetrics attaches a tracer to a data-mode array, runs
// every instrumented path, and checks the spans balance and the
// published metrics validate.
func TestTracerAndMetrics(t *testing.T) {
	a := newDataArray(t, Level5, 5, 256, 8)
	dig := obs.NewDigest()
	tr := obs.NewTracer(dig)
	a.SetTracer(tr)

	oracle := writeAll(t, a, 64)
	verifyAll(t, a, oracle)

	p := fillPage(0xAB)
	if _, err := a.WriteNoParity(0, 8, 1, p); err != nil {
		t.Fatal(err)
	}
	delta := make([]byte, len(p))
	for i := range delta {
		delta[i] = p[i] ^ oracle[8][i]
	}
	if _, err := a.ParityUpdateDelta(0, []int64{8}, [][]byte{delta}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ResyncRow(0, 16); err != nil {
		t.Fatal(err)
	}

	if err := tr.Err(); err != nil {
		t.Fatalf("trace integrity: %v", err)
	}
	if n := tr.OpenSpans(); n != 0 {
		t.Fatalf("%d spans left open", n)
	}
	if dig.Spans() == 0 {
		t.Fatal("no spans reached the sink")
	}

	reg := obs.NewRegistry()
	a.PublishMetrics(reg)
	if err := reg.Validate(); err != nil {
		t.Fatal(err)
	}
	if v, ok := reg.Counter("raid_data_writes_total"); !ok || v == 0 {
		t.Fatalf("raid_data_writes_total = %d,%v, want >0", v, ok)
	}
	if v, ok := reg.Counter("raid_noparity_writes_total"); !ok || v == 0 {
		t.Fatalf("raid_noparity_writes_total = %d,%v, want >0", v, ok)
	}
}
