package raid

import (
	"errors"

	"kddcache/internal/blockdev"
	"kddcache/internal/obs"
	"kddcache/internal/sim"
)

// This file implements the two interfaces the paper adds between the SSD
// cache and the RAID storage (§III-A): write-without-parity-update and
// parity-update, plus full-row reconstruct writes.

// WriteNoParity writes count data pages without touching parity, marking
// the affected rows stale. This is KDD's write-hit fast path: one disk
// write instead of the 4-I/O read-modify-write.
func (a *Array) WriteNoParity(t sim.Time, lba int64, count int, buf []byte) (done sim.Time, err error) {
	if err := blockdev.CheckRange(lba, count, a.Pages()); err != nil {
		return t, err
	}
	if err := blockdev.CheckBuf(buf, count); err != nil {
		return t, err
	}
	if a.cfg.Level != Level5 && a.cfg.Level != Level6 {
		// Non-parity levels have nothing to delay; fall back.
		return a.WritePages(t, lba, count, buf)
	}
	var sp obs.Span
	if a.tr != nil {
		sp = a.tr.BeginDev(t, obs.PhaseRAIDWriteNP, a.Name(), lba, count)
	}
	done = t
	for i := 0; i < count; i++ {
		l := a.geo.locate(lba + int64(i))
		if a.rebuild != nil || a.missing(l.disk, l.row) || a.lost[l.row] != 0 {
			// Inside a rebuild window a new stale row would widen the loss
			// surface (stale parity plus a missing member page cannot be
			// reconstructed), and damaged rows must heal through the full
			// parity path. Fall back to the immediate-parity write.
			c, err := a.writePage(t, lba+int64(i), pageBuf(buf, i))
			if err != nil {
				sp.End(t)
				return t, err
			}
			done = sim.MaxTime(done, c)
			continue
		}
		a.stats.DataWrites++
		a.stats.NoParityWr++
		c, err := a.disks[l.disk].WritePages(t, l.row, 1, pageBuf(buf, i))
		if err != nil {
			sp.End(t)
			return t, err
		}
		a.stale[a.staleKey(l)] = true
		done = sim.MaxTime(done, c)
	}
	sp.End(done)
	return done, nil
}

// staleKey identifies a parity row globally: disk row × one entry.
func (a *Array) staleKey(l loc) int64 { return l.row }

// rowStale reports whether the parity row holding l is stale.
func (a *Array) rowStale(l loc) bool { return a.stale[l.row] }

// ParityUpdateDelta repairs the parity of lba's row by XOR-ing the
// decompressed delta (old data ⊕ current data) into the stale parity:
// the read-modify-write flavour of the paper's background parity update
// (§III-D). delta may be nil in timing mode. Deltas for several pages of
// the same row can be applied in one call via lbas/deltas pairs.
func (a *Array) ParityUpdateDelta(t sim.Time, lbas []int64, deltas [][]byte) (done sim.Time, err error) {
	if len(lbas) == 0 {
		return t, nil
	}
	l := a.geo.locate(lbas[0])
	for _, x := range lbas[1:] {
		if a.geo.locate(x).row != l.row {
			panic("raid: ParityUpdateDelta spans multiple rows")
		}
	}
	if a.cfg.Level != Level5 && a.cfg.Level != Level6 {
		return t, nil
	}
	if a.tr != nil {
		sp := a.tr.BeginDev(t, obs.PhaseParityRMW, a.Name(), lbas[0], len(lbas))
		defer func() { sp.End(done) }()
	}
	if !a.rowStale(l) {
		// Parity already reflects the member data — a resync healed the
		// row after a media error (or a crash interrupted the cleanup that
		// follows one). Folding old⊕new deltas into fresh parity would
		// corrupt it; the deltas are simply obsolete.
		return t, nil
	}
	pFailed := a.missing(l.pDisk, l.row)
	qFailed := l.qDisk >= 0 && a.missing(l.qDisk, l.row)
	if pFailed && (l.qDisk < 0 || qFailed) {
		// Every parity device of this row is lost. The data disks hold
		// the current data (KDD always dispatches data), so the rebuild
		// will recompute this parity from scratch; nothing to repair now
		// and no read can consult the dead parity in the meantime.
		delete(a.stale, l.row)
		a.stats.ParityFixes++
		return t, nil
	}
	if pFailed || qFailed {
		// RAID-6 with one parity member lost: fold the deltas into the
		// surviving one; the dead one is recomputed by rebuild.
		done := t
		for i, lbaI := range lbas {
			var diff []byte
			if deltas != nil {
				diff = deltas[i]
			}
			li := a.geo.locate(lbaI)
			rl := a.geo.locateRow(li.stripe)
			rl.row = li.row
			c, err := a.applyParityDiff(t, li, rl, diff, !pFailed, !qFailed)
			if err != nil {
				if errors.Is(err, blockdev.ErrMedia) {
					// The surviving copy is ALSO unreadable: every fold
					// target is gone, so recompute parity from the member
					// data outright (the resync accounts any page the dead
					// member takes with it).
					a.stats.MediaErrors++
					done, err = a.resyncRow(t, l.row)
					if err != nil {
						return t, err
					}
					a.stats.ParityFixes++
					return done, nil
				}
				return t, err
			}
			done = sim.MaxTime(done, c)
		}
		delete(a.stale, l.row)
		a.stats.ParityFixes++
		return done, nil
	}

	var p, q []byte
	data := deltas != nil
	if data {
		p = blockdev.GetZeroPage() // stays zero if its read goes media-bad
		defer blockdev.PutPage(p)
		if l.qDisk >= 0 {
			q = blockdev.GetZeroPage()
			defer blockdev.PutPage(q)
		}
	}

	// Read stale parity, tracking each copy separately. A media-bad copy
	// loses its RMW fold target, but on RAID-6 the deltas still fold into
	// the surviving copy, after which the bad one is recomputed from a
	// full-row decode. Only when every copy is unreadable does the repair
	// fall back to recomputing parity from the current member data (the
	// members always hold the current bytes, so the resync result IS the
	// state the deltas were driving toward; they become obsolete and the
	// stale mark is cleared by the resync).
	phase1 := t
	pBad, qBad := false, false
	a.stats.ParityReads++
	c, err := a.memberRead(t, l.pDisk, l.row, p)
	if err != nil {
		if !errors.Is(err, blockdev.ErrMedia) {
			return t, err
		}
		a.stats.MediaErrors++
		pBad = true
	} else {
		phase1 = sim.MaxTime(phase1, c)
	}
	if l.qDisk >= 0 {
		a.stats.ParityReads++
		c, err = a.memberRead(t, l.qDisk, l.row, q)
		if err != nil {
			if !errors.Is(err, blockdev.ErrMedia) {
				return t, err
			}
			a.stats.MediaErrors++
			qBad = true
		} else {
			phase1 = sim.MaxTime(phase1, c)
		}
	}
	if pBad && (l.qDisk < 0 || qBad) {
		done, err := a.resyncRow(t, l.row)
		if err != nil {
			return t, err
		}
		a.stats.ParityFixes++
		return done, nil
	}

	// Fold every delta into the readable copy (or copies).
	if data {
		for i, lbaI := range lbas {
			if deltas[i] == nil {
				continue
			}
			li := a.geo.locate(lbaI)
			if !pBad {
				xorInto(p, deltas[i])
			}
			if q != nil && !qBad {
				gfMulInto(q, deltas[i], gfPow(li.dataIdx))
			}
		}
	}

	// Write repaired parity.
	done = phase1
	a.stats.ParityFixes++
	if !pBad {
		a.stats.ParityWrites++
		c, err = a.disks[l.pDisk].WritePages(phase1, l.row, 1, p)
		if err != nil {
			return t, err
		}
		done = sim.MaxTime(done, c)
	}
	if l.qDisk >= 0 && !qBad {
		a.stats.ParityWrites++
		c, err = a.disks[l.qDisk].WritePages(phase1, l.row, 1, q)
		if err != nil {
			return t, err
		}
		done = sim.MaxTime(done, c)
	}
	delete(a.stale, l.row)
	if pBad || qBad {
		// The row is current again through the surviving copy; recompute
		// the unreadable one from a row decode now, so a cleared transient
		// can never resurface its stale bytes as valid parity.
		bad := l.pDisk
		if qBad {
			bad = l.qDisk
		}
		c, err := a.repairParityRow(done, l.row, bad, nil)
		if err != nil {
			return t, err
		}
		done = sim.MaxTime(done, c)
	}
	return done, nil
}

// ParityUpdateReconstruct recomputes the parity of lba's row from the
// caller-provided current data pages (one per data chunk, in RowPeers
// order) and writes it: the reconstruct-write flavour, used when every
// data block of the stripe is resident in the SSD cache so no disk reads
// are needed. rowData may be nil in timing mode.
func (a *Array) ParityUpdateReconstruct(t sim.Time, lba int64, rowData [][]byte) (done sim.Time, err error) {
	l := a.geo.locate(lba)
	if a.cfg.Level != Level5 && a.cfg.Level != Level6 {
		return t, nil
	}
	if a.tr != nil {
		sp := a.tr.BeginDev(t, obs.PhaseParityRecon, a.Name(), lba, 1)
		defer func() { sp.End(done) }()
	}
	pOK := !a.missing(l.pDisk, l.row)
	qOK := l.qDisk >= 0 && !a.missing(l.qDisk, l.row)
	if !pOK && (l.qDisk < 0 || !qOK) {
		// All parity members lost: rebuild recomputes from data.
		delete(a.stale, l.row)
		a.stats.ParityFixes++
		return t, nil
	}
	var p, q []byte
	if rowData != nil {
		dc := int(a.geo.dataChunksPerStripe())
		if len(rowData) != dc {
			panic("raid: ParityUpdateReconstruct needs one page per data chunk")
		}
		p = blockdev.GetZeroPage()
		defer blockdev.PutPage(p)
		if l.qDisk >= 0 {
			q = blockdev.GetZeroPage()
			defer blockdev.PutPage(q)
		}
		for i, d := range rowData {
			xorInto(p, d)
			if q != nil {
				gfMulInto(q, d, gfPow(i))
			}
		}
	}
	done = t
	a.stats.ParityFixes++
	if pOK {
		a.stats.ParityWrites++
		c, err := a.disks[l.pDisk].WritePages(t, l.row, 1, p)
		if err != nil {
			return t, err
		}
		done = sim.MaxTime(done, c)
	}
	if qOK {
		a.stats.ParityWrites++
		c, err := a.disks[l.qDisk].WritePages(t, l.row, 1, q)
		if err != nil {
			return t, err
		}
		done = sim.MaxTime(done, c)
	}
	delete(a.stale, l.row)
	return done, nil
}

// WriteRow performs a full-row write (one page per data chunk at the same
// row, in RowPeers order) computing parity inline with no reads: the
// full-stripe write that NVRAM buffering schemes aim for. buf holds the
// data pages back to back and may be nil in timing mode.
func (a *Array) WriteRow(t sim.Time, firstLBA int64, buf []byte) (sim.Time, error) {
	l := a.geo.locate(firstLBA)
	rl := a.geo.locateRow(l.stripe)
	rl.row = l.row
	dc := len(rl.dataDisks)
	if err := blockdev.CheckBuf(buf, dc); err != nil {
		return t, err
	}
	var p, q []byte
	if buf != nil {
		p = blockdev.GetZeroPage()
		defer blockdev.PutPage(p)
		if rl.qDisk >= 0 {
			q = blockdev.GetZeroPage()
			defer blockdev.PutPage(q)
		}
		for i := 0; i < dc; i++ {
			d := pageBuf(buf, i)
			xorInto(p, d)
			if q != nil {
				gfMulInto(q, d, gfPow(i))
			}
		}
	}
	done := t
	for i, disk := range rl.dataDisks {
		if a.missing(disk, l.row) {
			continue // reconstructible from the new parity after rebuild
		}
		a.stats.DataWrites++
		c, err := a.disks[disk].WritePages(t, l.row, 1, pageBuf(buf, i))
		if err != nil {
			return t, err
		}
		done = sim.MaxTime(done, c)
	}
	if rl.pDisk >= 0 && !a.missing(rl.pDisk, l.row) {
		a.stats.ParityWrites++
		c, err := a.disks[rl.pDisk].WritePages(t, l.row, 1, p)
		if err != nil {
			return t, err
		}
		done = sim.MaxTime(done, c)
	}
	if rl.qDisk >= 0 && !a.missing(rl.qDisk, l.row) {
		a.stats.ParityWrites++
		c, err := a.disks[rl.qDisk].WritePages(t, l.row, 1, q)
		if err != nil {
			return t, err
		}
		done = sim.MaxTime(done, c)
	}
	// Every page of the row now holds defined content (missing members are
	// reconstructible from the fresh parity), so any lost marks are healed.
	delete(a.stale, l.row)
	delete(a.lost, l.row)
	return done, nil
}
